// Package index implements a landmark-based distance oracle: pruned
// 2-hop-style label entries built 64 landmarks at a time with the
// MS-BFS kernel, answering point distance/reachability queries in
// microseconds instead of a full traversal per query.
//
// Each vertex v carries two sorted label sets (one for symmetric
// graphs): out(v) holds (rank, d(v→ℓ)) for landmarks ℓ reachable from
// v, in(v) holds (rank, d(ℓ→v)) for landmarks reaching v. A query
// merge-joins the two label arrays on landmark rank:
//
//	UB(s,t) = min over ℓ ∈ out(s)∩in(t) of d(s→ℓ) + d(ℓ→t)
//	LB(s,t) = max over common in-labels of d(ℓ→t) − d(ℓ→s), and
//	          over common out-labels of d(s→ℓ) − d(t→ℓ)
//
// Both bounds follow from the triangle inequality over exact BFS
// depths. The answer is certified exact when the bounds pinch
// (UB == LB), when either endpoint is itself a landmark (then the join
// IS the distance, including "no join" = unreachable), or — on covered
// symmetric graphs — when no join exists at all (every component holds
// a landmark, so no common landmark means different components).
// Anything else is a bound, and the serving layer falls back to an
// exact BFS.
//
// Labels are post-pruned PLL-style: inserting landmarks in rank order,
// an entry (r, d) at v is dropped when the already-committed labels
// prove a join of value ≤ d. Pruned entries are always covered by a
// committed witness of equal value (label distances are true
// distances), so pruning shrinks labels without loosening UB for
// landmark-involved pairs — the exactness claims above survive it.
package index

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"fastbfs/graph"
	"fastbfs/internal/msbfs"
	"fastbfs/internal/par"
	"fastbfs/internal/xrand"
)

// MaxLandmarks caps the landmark count: ranks pack into 16 bits of a
// label entry, alongside a 16-bit depth.
const MaxLandmarks = 0xFFFF

// unreached16 is the in-build sentinel for "landmark does not reach
// this vertex"; it bounds representable depths to maxDepth16.
const unreached16 = 0xFFFF

// maxDepth16 is the largest BFS depth a label entry can carry. A graph
// with a landmark eccentricity beyond it (a path of ~65k+ vertices)
// cannot be indexed with this format and Build reports ErrDepthRange.
const maxDepth16 = 0xFFFE

// ErrDepthRange reports a graph whose BFS depths exceed the 16-bit
// label encoding; such graphs are served without an index.
var ErrDepthRange = errors.New("index: BFS depth exceeds 16-bit label range")

// Policy selects how landmarks are chosen.
type Policy uint32

const (
	// PolicyDegree ranks landmarks by descending out-degree (ties by
	// vertex id) — hubs lie on many shortest paths, so high-degree
	// landmarks maximize the chance the UB join is tight.
	PolicyDegree Policy = iota
	// PolicyRandom draws landmarks from a seeded permutation — the
	// unbiased baseline the degree policy is benchmarked against.
	PolicyRandom
)

// ParsePolicy maps the CLI/API spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "degree":
		return PolicyDegree, nil
	case "random":
		return PolicyRandom, nil
	}
	return 0, fmt.Errorf("index: unknown landmark policy %q (want degree or random)", s)
}

func (p Policy) String() string {
	switch p {
	case PolicyDegree:
		return "degree"
	case PolicyRandom:
		return "random"
	}
	return fmt.Sprintf("policy(%d)", uint32(p))
}

// Options configure an index build.
type Options struct {
	// Landmarks is the number of primary landmarks (default 64 — one
	// full MS-BFS batch). Coverage extension on symmetric graphs may
	// add more, up to MaxLandmarks.
	Landmarks int
	// Policy selects the landmark ranking (default PolicyDegree).
	Policy Policy
	// Seed drives PolicyRandom selection; ignored by PolicyDegree.
	Seed uint64
	// Symmetric declares the graph symmetric: one label set per vertex,
	// single-sided sweeps, and component-coverage extension that makes
	// negative reachability answers exact.
	Symmetric bool
	// Workers bounds build parallelism; <=0 means GOMAXPROCS.
	Workers int
	// In optionally supplies a prebuilt in-adjacency (transpose) for
	// directed graphs, saving the build its own TransposeParallel.
	In *graph.Graph
}

// Answer is the oracle's verdict on one (s, t) pair.
type Answer struct {
	// Dist is the exact distance when Exact (−1 = proven unreachable);
	// meaningless otherwise.
	Dist int32
	// Exact reports whether Dist is certified; when false the caller
	// must fall back to a real traversal (UB/LB remain valid bounds).
	Exact bool
	// UB is the best upper bound on the distance, −1 if no label join
	// exists (the index cannot prove reachability).
	UB int32
	// LB is the best lower bound on the distance, valid whenever s
	// can reach t.
	LB int32
}

// Index is a built landmark labeling for one graph snapshot. The label
// arrays are CSR-shaped (offsets + packed entries) so the whole
// structure mmaps directly from its on-disk artifact.
//
// A label entry packs rank<<16 | depth into a uint32; entries within a
// vertex's slice are sorted by rank (insertion order during the build),
// which is what lets Query merge-join two labels in one linear pass.
type Index struct {
	// Landmarks maps rank → vertex id.
	Landmarks []uint32
	// Symmetric mirrors Options.Symmetric; when set, the In arrays
	// alias the Out arrays.
	Symmetric bool
	// Covered reports that every vertex has at least one label entry
	// (symmetric builds only) — the precondition for exact negative
	// reachability.
	Covered bool
	// Policy and Seed record how Landmarks was chosen, so a lost
	// artifact can be rebuilt with identical parameters.
	Policy Policy
	Seed   uint64
	// GraphV and GraphE pin the graph snapshot this index answers for.
	GraphV uint64
	GraphE uint64

	// OutOff/OutLab are the out-label CSR: entries for vertex v live in
	// OutLab[OutOff[v]:OutOff[v+1]].
	OutOff []int64
	OutLab []uint32
	// InOff/InLab are the in-label CSR; for symmetric indexes they are
	// the same slices as OutOff/OutLab.
	InOff []int64
	InLab []uint32

	// rank maps landmark vertex → rank, rebuilt on load (not stored).
	rank map[uint32]uint16
	// mappedBytes is the mmap length when the arrays alias a mapping.
	mappedBytes int
}

func packEntry(rank uint16, depth uint16) uint32 {
	return uint32(rank)<<16 | uint32(depth)
}

// Matches reports whether the index was built for a graph with this
// shape. It is a snapshot guard, not a content hash: the serving layer
// pairs artifacts with graph files by path, this catches the obvious
// mismatches (wrong file, regenerated graph).
func (ix *Index) Matches(g *graph.Graph) bool {
	return ix.GraphV == uint64(g.NumVertices()) && ix.GraphE == uint64(g.NumEdges())
}

// LabelBytes is the resident footprint of the label arrays (the
// dominant term; landmark list and offsets included).
func (ix *Index) LabelBytes() int64 {
	b := int64(len(ix.Landmarks))*4 + int64(len(ix.OutOff))*8 + int64(len(ix.OutLab))*4
	if !ix.Symmetric {
		b += int64(len(ix.InOff))*8 + int64(len(ix.InLab))*4
	}
	return b
}

// MappedBytes reports the byte length of the underlying mapping when
// the index was loaded via mmap, 0 for heap-resident indexes.
func (ix *Index) MappedBytes() int { return ix.mappedBytes }

// Entries returns the total number of label entries (both sides).
func (ix *Index) Entries() int64 {
	if ix.Symmetric {
		return int64(len(ix.OutLab))
	}
	return int64(len(ix.OutLab)) + int64(len(ix.InLab))
}

// buildRank derives the vertex→rank map from Landmarks.
func (ix *Index) buildRank() {
	ix.rank = make(map[uint32]uint16, len(ix.Landmarks))
	for r, v := range ix.Landmarks {
		ix.rank[v] = uint16(r)
	}
}

// IsLandmark reports whether v is a landmark of this index.
func (ix *Index) IsLandmark(v uint32) bool {
	_, ok := ix.rank[v]
	return ok
}

func (ix *Index) outLabel(v uint32) []uint32 {
	return ix.OutLab[ix.OutOff[v]:ix.OutOff[v+1]]
}

func (ix *Index) inLabel(v uint32) []uint32 {
	return ix.InLab[ix.InOff[v]:ix.InOff[v+1]]
}

// ubJoin merge-joins two rank-sorted labels and returns the minimum
// summed depth over common ranks, or -1 when no rank is shared.
func ubJoin(a, b []uint32) int32 {
	best := int32(-1)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ra, rb := a[i]>>16, b[j]>>16
		switch {
		case ra < rb:
			i++
		case ra > rb:
			j++
		default:
			s := int32(a[i]&0xFFFF) + int32(b[j]&0xFFFF)
			if best < 0 || s < best {
				best = s
			}
			i++
			j++
		}
	}
	return best
}

// lbJoin merge-joins two rank-sorted labels and returns the maximum of
// depth(b) − depth(a) over common ranks (0 when no rank is shared or
// every difference is negative).
func lbJoin(a, b []uint32) int32 {
	best := int32(0)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ra, rb := a[i]>>16, b[j]>>16
		switch {
		case ra < rb:
			i++
		case ra > rb:
			j++
		default:
			if d := int32(b[j]&0xFFFF) - int32(a[i]&0xFFFF); d > best {
				best = d
			}
			i++
			j++
		}
	}
	return best
}

// Query answers the point distance s→t. It never traverses the graph:
// cost is one or two merge-joins over the endpoint labels.
func (ix *Index) Query(s, t uint32) Answer {
	if s == t {
		return Answer{Dist: 0, Exact: true, UB: 0, LB: 0}
	}
	outS, inT := ix.outLabel(s), ix.inLabel(t)
	ub := ubJoin(outS, inT)

	// Lower bound: s≠t gives 1 for free; label joins tighten it.
	lb := int32(1)
	if !ix.Symmetric {
		if d := lbJoin(ix.inLabel(s), inT); d > lb {
			lb = d
		}
		if d := lbJoin(ix.outLabel(t), outS); d > lb {
			lb = d
		}
	} else {
		// One label set: |d(ℓ,s) − d(ℓ,t)| bounds from both sides.
		if d := lbJoin(outS, inT); d > lb {
			lb = d
		}
		if d := lbJoin(inT, outS); d > lb {
			lb = d
		}
	}

	// Landmark endpoints make the join itself exact: out(ℓ) holds
	// (rank(ℓ), 0), so the join reproduces d(ℓ→t) (or d(s→ℓ)) whenever
	// the target is reachable, and finds nothing precisely when it is
	// not — pruning only drops entries that committed witnesses replay.
	landmarkEnd := ix.IsLandmark(s) || ix.IsLandmark(t)

	if ub < 0 {
		exact := landmarkEnd || (ix.Symmetric && ix.Covered)
		return Answer{Dist: -1, Exact: exact, UB: -1, LB: lb}
	}
	if landmarkEnd || ub == lb {
		return Answer{Dist: ub, Exact: true, UB: ub, LB: lb}
	}
	return Answer{Dist: -1, Exact: false, UB: ub, LB: lb}
}

// selectLandmarks ranks the primary landmark set per the policy.
func selectLandmarks(g *graph.Graph, opt Options) []uint32 {
	n := g.NumVertices()
	l := opt.Landmarks
	if l > n {
		l = n
	}
	if l > MaxLandmarks {
		l = MaxLandmarks
	}
	switch opt.Policy {
	case PolicyRandom:
		perm := xrand.New(opt.Seed).Perm(n)
		return append([]uint32(nil), perm[:l]...)
	default:
		order := make([]uint32, n)
		for i := range order {
			order[i] = uint32(i)
		}
		sort.SliceStable(order, func(i, j int) bool {
			return g.Degree(order[i]) > g.Degree(order[j])
		})
		return append([]uint32(nil), order[:l]...)
	}
}

// builder accumulates per-vertex label slices during construction; the
// CSR flattening happens once at the end.
type builder struct {
	g       *graph.Graph
	tr      *graph.Graph // nil for symmetric builds
	workers int
	out     [][]uint32
	in      [][]uint32 // aliases out for symmetric builds
	marks   []uint32
}

// insertBatch runs the prune-and-commit pass for one sweep batch.
// distF[k][v] = d(batch[k]→v); distB[k][v] = d(v→batch[k]) (same slice
// for symmetric builds). Lanes commit in rank order so every prune
// decision sees exactly the lower-ranked committed labels.
func (b *builder) insertBatch(batch []uint32, distF, distB [][]uint16) error {
	n := b.g.NumVertices()
	for k, lm := range batch {
		rank := uint16(len(b.marks))
		b.marks = append(b.marks, lm)
		// Self entries first: they are what makes landmark-endpoint
		// joins exact, and the prune pass below reads them.
		self := packEntry(rank, 0)
		b.out[lm] = append(b.out[lm], self)
		if b.tr != nil {
			b.in[lm] = append(b.in[lm], self)
		}
		outL, inL := b.out[lm], b.in[lm]
		dF, dB := distF[k], distB[k]
		err := par.For(b.workers, n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if uint32(v) == lm {
					continue
				}
				// In-entry at v: d(ℓ→v). Keep only if the committed
				// labels cannot already prove a join this good.
				if d := dF[v]; d != unreached16 {
					if ub := ubJoin(outL, b.in[v]); ub < 0 || ub > int32(d) {
						b.in[v] = append(b.in[v], packEntry(rank, d))
					}
				}
				if b.tr == nil {
					continue
				}
				// Out-entry at v: d(v→ℓ), pruned against out(v)⋈in(ℓ).
				if d := dB[v]; d != unreached16 {
					if ub := ubJoin(b.out[v], inL); ub < 0 || ub > int32(d) {
						b.out[v] = append(b.out[v], packEntry(rank, d))
					}
				}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// sweepBatch runs the MS-BFS sweeps for one landmark batch and extracts
// compact uint16 depth arrays, releasing the 8-byte DP arrays before
// the next batch.
func (b *builder) sweepBatch(ctx context.Context, batch []uint32) (distF, distB [][]uint16, err error) {
	n := b.g.NumVertices()
	extract := func(res *msbfs.Result) ([][]uint16, error) {
		d := make([][]uint16, len(batch))
		for k := range batch {
			d[k] = make([]uint16, n)
			if _, err := res.DepthsInto(k, d[k], unreached16); err != nil {
				if errors.Is(err, msbfs.ErrDepthOverflow) {
					return nil, fmt.Errorf("%w: landmark %d", ErrDepthRange, batch[k])
				}
				return nil, err
			}
		}
		return d, nil
	}
	if b.tr == nil {
		res, err := msbfs.RunHybridContext(ctx, b.g, nil, batch, b.workers)
		if err != nil {
			return nil, nil, err
		}
		distF, err = extract(res)
		if err != nil {
			return nil, nil, err
		}
		return distF, distF, nil
	}
	fwd, err := msbfs.RunHybridContext(ctx, b.g, b.tr, batch, b.workers)
	if err != nil {
		return nil, nil, err
	}
	if distF, err = extract(fwd); err != nil {
		return nil, nil, err
	}
	fwd = nil
	bwd, err := msbfs.RunHybridContext(ctx, b.tr, b.g, batch, b.workers)
	if err != nil {
		return nil, nil, err
	}
	if distB, err = extract(bwd); err != nil {
		return nil, nil, err
	}
	return distF, distB, nil
}

// singletonComponent reports that v's component is {v} in a symmetric
// graph: every incident edge is a self-loop. Such vertices are covered
// by a sweep-free landmark (the self entry is the whole labeling).
func singletonComponent(g *graph.Graph, v uint32) bool {
	for _, u := range g.Neighbors1(v) {
		if u != v {
			return false
		}
	}
	return true
}

// Build constructs the labeling for g. For directed graphs pass
// opt.Symmetric=false and, optionally, a prebuilt transpose in opt.In;
// for symmetric graphs the build is single-sided and finishes with a
// coverage pass so negative reachability answers are exact.
func Build(ctx context.Context, g *graph.Graph, opt Options) (*Index, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, errors.New("index: empty graph")
	}
	if opt.Landmarks <= 0 {
		opt.Landmarks = msbfs.MaxLanes
	}
	if opt.Workers <= 0 {
		opt.Workers = par.DefaultWorkers()
	}

	b := &builder{g: g, workers: opt.Workers}
	if !opt.Symmetric {
		b.tr = opt.In
		if b.tr == nil {
			b.tr = g.TransposeParallel(opt.Workers)
		} else if b.tr.NumVertices() != n {
			return nil, fmt.Errorf("index: transpose has %d vertices, graph has %d", b.tr.NumVertices(), n)
		}
	}
	b.out = make([][]uint32, n)
	if b.tr != nil {
		b.in = make([][]uint32, n)
	} else {
		b.in = b.out
	}
	b.marks = make([]uint32, 0, opt.Landmarks)

	primary := selectLandmarks(g, opt)
	for lo := 0; lo < len(primary); lo += msbfs.MaxLanes {
		hi := min(lo+msbfs.MaxLanes, len(primary))
		batch := primary[lo:hi]
		distF, distB, err := b.sweepBatch(ctx, batch)
		if err != nil {
			return nil, err
		}
		if err := b.insertBatch(batch, distF, distB); err != nil {
			return nil, err
		}
	}

	// Coverage extension (symmetric only): promote a vertex from every
	// unlabeled component to landmark until no vertex is label-less, so
	// "no common landmark" certifies "different components". Singleton
	// components (the isolated-vertex flood of an RMAT graph) commit
	// their self entry directly; real components get sweep batches.
	covered := false
	if opt.Symmetric {
		covered = true
		for v := uint32(0); int(v) < n; v++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if len(b.out[v]) != 0 {
				continue
			}
			if len(b.marks) >= MaxLandmarks {
				covered = false
				break
			}
			if singletonComponent(g, v) {
				rank := uint16(len(b.marks))
				b.marks = append(b.marks, v)
				b.out[v] = append(b.out[v], packEntry(rank, 0))
				continue
			}
			// One sweep covers this whole component (and possibly
			// others further along); batch up to 64 uncovered
			// non-singleton vertices to amortize the sweep.
			batch := []uint32{v}
			for u := v + 1; int(u) < n && len(batch) < msbfs.MaxLanes; u++ {
				if len(b.out[u]) == 0 && !singletonComponent(g, u) {
					batch = append(batch, u)
				}
			}
			if len(b.marks)+len(batch) > MaxLandmarks {
				batch = batch[:MaxLandmarks-len(b.marks)]
			}
			distF, distB, err := b.sweepBatch(ctx, batch)
			if err != nil {
				return nil, err
			}
			if err := b.insertBatch(batch, distF, distB); err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	ix := &Index{
		Landmarks: b.marks,
		Symmetric: opt.Symmetric,
		Covered:   covered,
		Policy:    opt.Policy,
		Seed:      opt.Seed,
		GraphV:    uint64(n),
		GraphE:    uint64(g.NumEdges()),
	}
	ix.OutOff, ix.OutLab = flatten(b.out)
	if opt.Symmetric {
		ix.InOff, ix.InLab = ix.OutOff, ix.OutLab
	} else {
		ix.InOff, ix.InLab = flatten(b.in)
	}
	ix.buildRank()
	return ix, nil
}

// flatten converts per-vertex label slices to the CSR layout.
func flatten(lab [][]uint32) ([]int64, []uint32) {
	off := make([]int64, len(lab)+1)
	total := int64(0)
	for v, l := range lab {
		off[v] = total
		total += int64(len(l))
	}
	off[len(lab)] = total
	flat := make([]uint32, 0, total)
	for _, l := range lab {
		flat = append(flat, l...)
	}
	return off, flat
}
