package index

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fastbfs/graph/gen"
	"fastbfs/internal/xrand"
)

// buildSmall builds a real artifact to seed corpus-based tests.
func buildSmall(t testing.TB, symmetric bool) *Index {
	t.Helper()
	g, err := gen.RMAT(gen.Graph500Params(8, 8), 21)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Landmarks: 12}
	if symmetric {
		g = g.Symmetrize()
		opt.Symmetric = true
	}
	ix, err := Build(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, symmetric := range []bool{false, true} {
		ix := buildSmall(t, symmetric)
		enc := ix.Encode()
		if int64(len(enc)) != ix.EncodedSize() {
			t.Fatalf("EncodedSize %d, actual %d", ix.EncodedSize(), len(enc))
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(dec.Encode(), enc) {
			t.Fatal("re-encode not canonical")
		}
		if dec.Symmetric != ix.Symmetric || dec.Covered != ix.Covered ||
			dec.Policy != ix.Policy || dec.Seed != ix.Seed {
			t.Fatalf("metadata drift: %+v", dec)
		}
	}
}

// TestDecodeTornAndFlipped is the property half of the format contract:
// every truncation is a typed error, and every single-bit flip is a
// typed error (checksum or structural) — never a silent wrong answer,
// never a panic.
func TestDecodeTornAndFlipped(t *testing.T) {
	ix := buildSmall(t, true)
	enc := ix.Encode()

	for _, cut := range []int{0, 1, idxHeaderLen - 1, idxHeaderLen, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("torn file (%d of %d bytes) decoded", cut, len(enc))
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("torn file (%d bytes): untyped error %v", cut, err)
		}
	}

	rng := xrand.New(0xF11)
	for i := 0; i < 200; i++ {
		pos := rng.Intn(len(enc))
		bit := byte(1) << uint(rng.Intn(8))
		mut := append([]byte(nil), enc...)
		mut[pos] ^= bit
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at byte %d accepted", pos)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("bit flip at byte %d: untyped error %v", pos, err)
		}
	}
}

func TestLoadMissingAndTornFile(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "absent.idx")); err == nil {
		t.Fatal("loading a missing artifact succeeded")
	}
	ix := buildSmall(t, false)
	path := filepath.Join(dir, "g.idx")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	enc := ix.Encode()
	if err := os.WriteFile(path, enc[:len(enc)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	for _, load := range []func(string) (*Index, error){Load, LoadMmap} {
		if _, err := load(path); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("torn artifact load: got %v, want typed corruption", err)
		}
	}
}

// FuzzDecodeIndex mirrors FuzzManifestReplay: arbitrary bytes must
// never panic, and any input that decodes must re-encode to the exact
// same bytes (the format has one canonical representation).
func FuzzDecodeIndex(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(idxMagic))
	for _, symmetric := range []bool{false, true} {
		ix := buildSmall(f, symmetric)
		enc := ix.Encode()
		f.Add(enc)
		f.Add(enc[:len(enc)-3])
		mut := append([]byte(nil), enc...)
		mut[idxHeaderLen+5] ^= 0x40
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if !bytes.Equal(ix.Encode(), data) {
			t.Fatal("accepted input is not canonical")
		}
	})
}
