//go:build !unix

package index

// LoadMmap falls back to the heap loader on platforms without the mmap
// syscall surface this package targets.
func LoadMmap(path string) (*Index, error) {
	return Load(path)
}
