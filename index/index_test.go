package index

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/xrand"
)

// refDist computes the exact distance s→t with the serial reference.
func refDist(t *testing.T, g *graph.Graph, s, d uint32) int32 {
	t.Helper()
	res, err := bfs.RunSerial(g, s)
	if err != nil {
		t.Fatalf("serial BFS from %d: %v", s, err)
	}
	return res.Depth(d)
}

// refRow computes the full exact distance row from s.
func refRow(t *testing.T, g *graph.Graph, s uint32) []int32 {
	t.Helper()
	res, err := bfs.RunSerial(g, s)
	if err != nil {
		t.Fatalf("serial BFS from %d: %v", s, err)
	}
	row := make([]int32, g.NumVertices())
	for v := range row {
		row[v] = res.Depth(uint32(v))
	}
	return row
}

// checkParity asserts the oracle's contract for one graph against the
// serial reference over sampled sources: exact answers match serial
// depths, bounds always bracket the truth, a UB join is always a real
// path witness, and landmark endpoints are always exact.
func checkParity(t *testing.T, g *graph.Graph, ix *Index, sources []uint32, rng *xrand.Gen) (exactPairs, totalPairs int) {
	t.Helper()
	n := g.NumVertices()
	for _, s := range sources {
		row := refRow(t, g, s)
		targets := make([]uint32, 0, 64)
		for i := 0; i < 48; i++ {
			targets = append(targets, uint32(rng.Intn(n)))
		}
		// Landmark endpoints must be exact; probe a few explicitly.
		for i := 0; i < 8 && i < len(ix.Landmarks); i++ {
			targets = append(targets, ix.Landmarks[i])
		}
		for _, d := range targets {
			ref := row[d]
			a := ix.Query(s, d)
			totalPairs++
			if a.Exact {
				exactPairs++
				if a.Dist != ref {
					t.Fatalf("Query(%d,%d): exact dist %d, serial %d", s, d, a.Dist, ref)
				}
			}
			if a.UB >= 0 && (ref < 0 || a.UB < ref) {
				t.Fatalf("Query(%d,%d): UB %d below serial %d (a join must witness a path)", s, d, a.UB, ref)
			}
			if ref >= 0 && a.LB > ref {
				t.Fatalf("Query(%d,%d): LB %d above serial %d", s, d, a.LB, ref)
			}
			if ix.IsLandmark(s) || ix.IsLandmark(d) {
				if !a.Exact {
					t.Fatalf("Query(%d,%d): landmark endpoint not exact", s, d)
				}
			}
			if ix.Symmetric && ix.Covered && !a.Exact && ref < 0 {
				t.Fatalf("Query(%d,%d): covered symmetric index left unreachable pair inexact", s, d)
			}
		}
	}
	return exactPairs, totalPairs
}

func sampleSources(ix *Index, n int, rng *xrand.Gen) []uint32 {
	srcs := []uint32{0, uint32(n - 1)}
	for i := 0; i < 6; i++ {
		srcs = append(srcs, uint32(rng.Intn(n)))
	}
	if len(ix.Landmarks) > 0 {
		srcs = append(srcs, ix.Landmarks[0], ix.Landmarks[len(ix.Landmarks)-1])
	}
	return srcs
}

func TestParityRMATDirected(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(10, 8), 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{PolicyDegree, PolicyRandom} {
		ix, err := Build(context.Background(), g, Options{Landmarks: 32, Policy: pol, Seed: 99})
		if err != nil {
			t.Fatalf("build (%v): %v", pol, err)
		}
		if ix.Symmetric || ix.Covered {
			t.Fatalf("directed build marked symmetric=%v covered=%v", ix.Symmetric, ix.Covered)
		}
		rng := xrand.New(0xD1CE)
		exact, total := checkParity(t, g, ix, sampleSources(ix, g.NumVertices(), rng), rng)
		if exact == 0 {
			t.Fatalf("policy %v: no exact answers out of %d pairs", pol, total)
		}
		t.Logf("policy %v: %d/%d pairs exact, %d landmarks, %d entries",
			pol, exact, total, len(ix.Landmarks), ix.Entries())
	}
}

func TestParityRMATSymmetric(t *testing.T) {
	g0, err := gen.RMAT(gen.Graph500Params(10, 8), 11)
	if err != nil {
		t.Fatal(err)
	}
	g := g0.Symmetrize()
	ix, err := Build(context.Background(), g, Options{Landmarks: 32, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Covered {
		t.Fatal("symmetric RMAT build not covered (coverage extension failed)")
	}
	rng := xrand.New(0xBEEF)
	exact, total := checkParity(t, g, ix, sampleSources(ix, g.NumVertices(), rng), rng)
	t.Logf("symmetric rmat: %d/%d exact, %d landmarks (incl. coverage)", exact, total, len(ix.Landmarks))
}

func TestParityGrid(t *testing.T) {
	g, err := gen.Grid2D(30, 30, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(context.Background(), g, Options{Landmarks: 16, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(0x617D)
	checkParity(t, g, ix, sampleSources(ix, g.NumVertices(), rng), rng)
	// Grid distances are Manhattan by construction; a landmark endpoint
	// query must reproduce that exactly.
	corner := ix.Query(ix.Landmarks[0], 0)
	if !corner.Exact {
		t.Fatal("landmark corner query not exact")
	}
}

func TestParityStar(t *testing.T) {
	// Star: hub 0 connected to all spokes, undirected. Every pair is at
	// distance ≤ 2 through the hub, and the degree policy must pick the
	// hub first — making every query exact with one landmark.
	n := 501
	edges := make([]graph.Edge, 0, 2*(n-1))
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: uint32(v)}, graph.Edge{U: uint32(v), V: 0})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(context.Background(), g, Options{Landmarks: 4, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Landmarks[0] != 0 {
		t.Fatalf("degree policy picked %d over the hub", ix.Landmarks[0])
	}
	rng := xrand.New(0x57A7)
	for i := 0; i < 400; i++ {
		s, d := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		a := ix.Query(s, d)
		want := int32(2)
		switch {
		case s == d:
			want = 0
		case s == 0 || d == 0:
			want = 1
		}
		if a.Exact {
			if a.Dist != want {
				t.Fatalf("star Query(%d,%d) = %d, want %d", s, d, a.Dist, want)
			}
			continue
		}
		// Spoke-to-spoke pairs sit strictly between the bounds (UB 2
		// through the hub, LB 1) unless both spokes are landmarks — the
		// honest "fall back to BFS" case. The bounds must still pinch
		// the truth.
		if ix.IsLandmark(s) || ix.IsLandmark(d) {
			t.Fatalf("star Query(%d,%d): landmark endpoint not exact", s, d)
		}
		if a.UB != 2 || a.LB != 1 {
			t.Fatalf("star Query(%d,%d): bounds UB=%d LB=%d, want 2/1", s, d, a.UB, a.LB)
		}
	}
}

func TestParityDisconnectedAndSelfLoops(t *testing.T) {
	// Three islands: a path 0-1-2-3, a triangle 10-11-12 with self-loops
	// on every vertex, and isolated vertices (some with self-loops).
	edges := []graph.Edge{}
	und := func(u, v uint32) {
		edges = append(edges, graph.Edge{U: u, V: v}, graph.Edge{U: v, V: u})
	}
	und(0, 1)
	und(1, 2)
	und(2, 3)
	und(10, 11)
	und(11, 12)
	und(12, 10)
	for _, v := range []uint32{10, 11, 12, 5, 7} {
		edges = append(edges, graph.Edge{U: v, V: v})
	}
	g, err := graph.FromEdges(16, edges)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(context.Background(), g, Options{Landmarks: 2, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Covered {
		t.Fatal("coverage extension failed on disconnected graph")
	}
	for s := uint32(0); s < 16; s++ {
		row := refRow(t, g, s)
		for d := uint32(0); d < 16; d++ {
			a := ix.Query(s, d)
			if !a.Exact {
				t.Fatalf("Query(%d,%d) not exact on covered toy graph (UB=%d LB=%d)", s, d, a.UB, a.LB)
			}
			if a.Dist != row[d] {
				t.Fatalf("Query(%d,%d) = %d, serial %d", s, d, a.Dist, row[d])
			}
		}
	}
}

func TestParityDirectedReachability(t *testing.T) {
	// Directed chain 0→1→2→3 plus a detached cycle 8→9→8: landmark
	// endpoints must certify one-way unreachability exactly.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 8, V: 9}, {U: 9, V: 8}}
	g, err := graph.FromEdges(10, edges)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(context.Background(), g, Options{Landmarks: 10})
	if err != nil {
		t.Fatal(err)
	}
	for s := uint32(0); s < 10; s++ {
		row := refRow(t, g, s)
		for d := uint32(0); d < 10; d++ {
			a := ix.Query(s, d)
			// Every vertex is a landmark here, so everything is exact.
			if !a.Exact {
				t.Fatalf("Query(%d,%d) not exact with all-vertex landmarks", s, d)
			}
			if a.Dist != row[d] {
				t.Fatalf("Query(%d,%d) = %d, serial %d", s, d, a.Dist, row[d])
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(9, 8), 3)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Landmarks: 24, Policy: PolicyRandom, Seed: 42}
	a, err := Build(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("two builds with identical options produced different artifacts")
	}
}

func TestBuildCancel(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(10, 8), 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, g, Options{Landmarks: 64, Symmetric: true}); err == nil {
		t.Fatal("build with canceled context succeeded")
	}
}

// TestRoundTripQueriesIdentical is the unload/reload leg of the parity
// harness: answers from the built index, a heap-decoded copy, and an
// mmap-mounted artifact must be identical bit for bit.
func TestRoundTripQueriesIdentical(t *testing.T) {
	g0, err := gen.RMAT(gen.Graph500Params(10, 8), 13)
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]struct {
		g   *graph.Graph
		opt Options
	}{
		"symmetric": {g0.Symmetrize(), Options{Landmarks: 24, Symmetric: true}},
		"directed":  {g0, Options{Landmarks: 24, Policy: PolicyRandom, Seed: 5}},
	} {
		built, err := Build(context.Background(), cfg.g, cfg.opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		path := filepath.Join(t.TempDir(), "g.idx")
		if err := built.Save(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		heap, err := Load(path)
		if err != nil {
			t.Fatalf("%s: heap load: %v", name, err)
		}
		mapped, err := LoadMmap(path)
		if err != nil {
			t.Fatalf("%s: mmap load: %v", name, err)
		}
		if !heap.Matches(cfg.g) || !mapped.Matches(cfg.g) {
			t.Fatalf("%s: reloaded index does not match its graph", name)
		}
		rng := xrand.New(0x10AD)
		n := cfg.g.NumVertices()
		for i := 0; i < 3000; i++ {
			s, d := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			a0, a1, a2 := built.Query(s, d), heap.Query(s, d), mapped.Query(s, d)
			if a0 != a1 || a0 != a2 {
				t.Fatalf("%s: Query(%d,%d) diverges across load paths: built=%+v heap=%+v mmap=%+v",
					name, s, d, a0, a1, a2)
			}
		}
	}
}

func TestDepthRangeRejected(t *testing.T) {
	// A directed path longer than maxDepth16 cannot be encoded.
	n := maxDepth16 + 3
	edges := make([]graph.Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, graph.Edge{U: uint32(v), V: uint32(v + 1)})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(context.Background(), g, Options{Landmarks: 1})
	if err == nil {
		t.Fatal("build on 65k-deep path succeeded; depths cannot fit 16 bits")
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"degree": PolicyDegree, "": PolicyDegree, "Random": PolicyRandom} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("closeness"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
