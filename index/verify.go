package index

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Resident re-verification for index artifacts, mirroring the graph
// package: Checksum re-hashes the canonical encoding of the resident
// labeling, FooterCRC reads the artifact's recorded CRC, and
// VerifyResident compares them so a background scrubber can detect
// silent corruption of a mounted index. Index artifacts always carry a
// footer (no legacy form), so there is no vacuous-verify case.

// verifyChunk is the granularity at which Checksum feeds pace: small
// enough that a rate-limited scrubber sleeps often, large enough that
// the CRC loop stays vectorized.
const verifyChunk = 1 << 20

// Checksum recomputes the canonical CRC32 of the index: the same bytes
// Encode hashes before emitting the footer. pace, when non-nil, is
// called with the byte count after each chunk for rate limiting.
func (ix *Index) Checksum(pace func(bytes int)) uint32 {
	enc := ix.Encode()
	body := enc[:len(enc)-idxFooterLen]
	var crc uint32
	for off := 0; off < len(body); off += verifyChunk {
		end := min(off+verifyChunk, len(body))
		crc = crc32.Update(crc, crc32.IEEETable, body[off:end])
		if pace != nil {
			pace(end - off)
		}
	}
	return crc
}

// FooterCRC reads the integrity footer of an index artifact without
// decoding it. Unlike graph files the footer is mandatory.
func FooterCRC(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if st.Size() < int64(idxHeaderLen+idxFooterLen) {
		return 0, fmt.Errorf("%w: %d bytes is smaller than header plus footer", ErrCorrupt, st.Size())
	}
	var foot [idxFooterLen]byte
	if _, err := f.ReadAt(foot[:], st.Size()-int64(idxFooterLen)); err != nil {
		return 0, fmt.Errorf("index: reading footer: %w", err)
	}
	if string(foot[4:]) != idxCRCMagic {
		return 0, fmt.Errorf("%w: bad footer magic %q", ErrCorrupt, foot[4:])
	}
	return binary.LittleEndian.Uint32(foot[:4]), nil
}

// VerifyResident checks a resident index against its on-disk artifact's
// CRC32 footer. A mismatch wraps ErrChecksum; pace is forwarded to
// Checksum for rate limiting.
func VerifyResident(ix *Index, path string, pace func(int)) error {
	want, err := FooterCRC(path)
	if err != nil {
		return err
	}
	if got := ix.Checksum(pace); got != want {
		return fmt.Errorf("%w: artifact %s footer declares %#08x, resident labeling hashes to %#08x",
			ErrChecksum, path, want, got)
	}
	return nil
}
