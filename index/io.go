package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"unsafe"
)

// hostLittleEndian reports whether multi-byte integers can alias the
// file's little-endian encoding directly (same check as graph's mmap
// loader).
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// Binary format: fixed header, the landmark and label arrays in
// little-endian order with 8-byte section alignment, then the same
// CRC32 footer discipline as graph files. Every multi-byte array
// section starts 8-aligned (pads are written as zero bytes and must
// decode as zero), which is what lets LoadMmap alias int64 slices
// straight into the mapping.
//
//	magic     [8]byte "FBFSIDX1"
//	version   uint32  (= 1)
//	flags     uint32  bit0 = two-sided (directed), bit1 = covered
//	V         uint64  graph vertex count
//	E         uint64  graph edge count
//	L         uint64  landmark count
//	seed      uint64  landmark-selection seed
//	policy    uint32  landmark-selection policy
//	reserved  uint32  (= 0)
//	landmarks L × uint32, zero-padded to 8
//	outOff    (V+1) × int64
//	outLab    No × uint32, zero-padded to 8   (No = outOff[V])
//	inOff     (V+1) × int64    } two-sided files only
//	inLab     Ni × uint32, zero-padded to 8   (Ni = inOff[V])
//	crc       uint32  CRC32 (IEEE) of every byte above
//	fmagic    [8]byte "FBFSCRC1"
//
// Unlike graph files there is no legacy footerless form: the footer is
// mandatory, the declared lengths must match the file size exactly, and
// pad bytes must be zero — Decode(Encode(x)) is byte-identical, so a
// valid file has exactly one representation (the fuzz harness checks
// this canonical-re-encode property).
const idxMagic = "FBFSIDX1"

// idxCRCMagic is the footer magic, shared spelling with graph files.
const idxCRCMagic = "FBFSCRC1"

// idxVersion is the current format version.
const idxVersion = 1

// idxHeaderLen is the fixed prefix through the reserved word.
const idxHeaderLen = 8 + 4 + 4 + 8 + 8 + 8 + 8 + 4 + 4

// idxFooterLen is the integrity footer: CRC32 + footer magic.
const idxFooterLen = 4 + len(idxCRCMagic)

const (
	flagTwoSided = 1 << 0
	flagCovered  = 1 << 1
)

// ErrCorrupt is the sentinel wrapped by structural decode failures:
// bad magic, impossible lengths, non-canonical padding, truncation.
var ErrCorrupt = errors.New("index: corrupt index file")

// ErrChecksum is the sentinel wrapped by CRC-mismatch failures — the
// payload shape parsed but the bytes are not what was written.
var ErrChecksum = errors.New("index: checksum mismatch")

// maxIndexVertices mirrors graph.MaxVertices: a header declaring more
// is hostile or rotten, not data.
const maxIndexVertices = 1 << 31

// maxLabelEntries bounds a declared label array: 2^40 entries (4 TiB)
// is far past single-node memory.
const maxLabelEntries = 1 << 40

func pad8(n int) int { return (8 - n%8) % 8 }

// EncodedSize returns the exact artifact size in bytes.
func (ix *Index) EncodedSize() int64 {
	sz := int64(idxHeaderLen)
	sz += int64(len(ix.Landmarks))*4 + int64(pad8(len(ix.Landmarks)*4))
	sz += int64(len(ix.OutOff)) * 8
	sz += int64(len(ix.OutLab))*4 + int64(pad8(len(ix.OutLab)*4))
	if ix.twoSided() {
		sz += int64(len(ix.InOff)) * 8
		sz += int64(len(ix.InLab))*4 + int64(pad8(len(ix.InLab)*4))
	}
	return sz + int64(idxFooterLen)
}

func (ix *Index) twoSided() bool { return !ix.Symmetric }

// Encode serializes the index to its canonical byte form.
func (ix *Index) Encode() []byte {
	buf := make([]byte, 0, ix.EncodedSize())
	buf = append(buf, idxMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, idxVersion)
	flags := uint32(0)
	if ix.twoSided() {
		flags |= flagTwoSided
	}
	if ix.Covered {
		flags |= flagCovered
	}
	buf = binary.LittleEndian.AppendUint32(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, ix.GraphV)
	buf = binary.LittleEndian.AppendUint64(buf, ix.GraphE)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(ix.Landmarks)))
	buf = binary.LittleEndian.AppendUint64(buf, ix.Seed)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.Policy))
	buf = binary.LittleEndian.AppendUint32(buf, 0) // reserved

	appendU32s := func(xs []uint32) {
		for _, x := range xs {
			buf = binary.LittleEndian.AppendUint32(buf, x)
		}
		for i := 0; i < pad8(len(xs)*4); i++ {
			buf = append(buf, 0)
		}
	}
	appendI64s := func(xs []int64) {
		for _, x := range xs {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
		}
	}
	appendU32s(ix.Landmarks)
	appendI64s(ix.OutOff)
	appendU32s(ix.OutLab)
	if ix.twoSided() {
		appendI64s(ix.InOff)
		appendU32s(ix.InLab)
	}

	crc := crc32.ChecksumIEEE(buf)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	buf = append(buf, idxCRCMagic...)
	return buf
}

// cursor is a bounds-checked reader over the decode buffer; every
// failure is a typed ErrCorrupt, never a panic — Decode runs on
// attacker-controlled bytes under the fuzzer. With alias set (mmap
// loads on little-endian hosts) the array readers return views over
// the buffer instead of heap copies; the format's 8-aligned section
// layout plus a page-aligned mapping base keeps the views aligned, and
// a misaligned buffer silently degrades to copying.
type cursor struct {
	b     []byte
	off   int
	alias bool
}

func (c *cursor) take(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.b) || c.off+n < c.off {
		return nil, fmt.Errorf("%w: truncated at offset %d (need %d bytes)", ErrCorrupt, c.off, n)
	}
	p := c.b[c.off : c.off+n]
	c.off += n
	return p, nil
}

func (c *cursor) u32() (uint32, error) {
	p, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(p), nil
}

func (c *cursor) u64() (uint64, error) {
	p, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(p), nil
}

// decodeHeader parses and validates the fixed header, returning the
// dimensions needed to lay out the rest of the file.
type idxHeader struct {
	flags  uint32
	v, e   uint64
	l      uint64
	seed   uint64
	policy uint32
}

func (c *cursor) header() (h idxHeader, err error) {
	magic, err := c.take(len(idxMagic))
	if err != nil {
		return h, err
	}
	if string(magic) != idxMagic {
		return h, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	ver, err := c.u32()
	if err != nil {
		return h, err
	}
	if ver != idxVersion {
		return h, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, ver)
	}
	if h.flags, err = c.u32(); err != nil {
		return h, err
	}
	if h.flags&^uint32(flagTwoSided|flagCovered) != 0 {
		return h, fmt.Errorf("%w: unknown flags %#x", ErrCorrupt, h.flags)
	}
	if h.v, err = c.u64(); err != nil {
		return h, err
	}
	if h.e, err = c.u64(); err != nil {
		return h, err
	}
	if h.l, err = c.u64(); err != nil {
		return h, err
	}
	if h.seed, err = c.u64(); err != nil {
		return h, err
	}
	if h.policy, err = c.u32(); err != nil {
		return h, err
	}
	reserved, err := c.u32()
	if err != nil {
		return h, err
	}
	if reserved != 0 {
		return h, fmt.Errorf("%w: nonzero reserved word", ErrCorrupt)
	}
	if h.v == 0 || h.v > maxIndexVertices {
		return h, fmt.Errorf("%w: vertex count %d out of range", ErrCorrupt, h.v)
	}
	if h.l > MaxLandmarks {
		return h, fmt.Errorf("%w: landmark count %d exceeds %d", ErrCorrupt, h.l, MaxLandmarks)
	}
	return h, nil
}

func (c *cursor) u32s(n int) ([]uint32, error) {
	p, err := c.take(n * 4)
	if err != nil {
		return nil, err
	}
	var xs []uint32
	if c.alias && n > 0 && uintptr(unsafe.Pointer(&p[0]))%4 == 0 {
		xs = unsafe.Slice((*uint32)(unsafe.Pointer(&p[0])), n)
	} else {
		xs = make([]uint32, n)
		for i := range xs {
			xs[i] = binary.LittleEndian.Uint32(p[i*4:])
		}
	}
	if err := c.zeroPad(pad8(n * 4)); err != nil {
		return nil, err
	}
	return xs, nil
}

func (c *cursor) i64s(n int) ([]int64, error) {
	p, err := c.take(n * 8)
	if err != nil {
		return nil, err
	}
	var xs []int64
	if c.alias && n > 0 && uintptr(unsafe.Pointer(&p[0]))%8 == 0 {
		xs = unsafe.Slice((*int64)(unsafe.Pointer(&p[0])), n)
	} else {
		xs = make([]int64, n)
		for i := range xs {
			xs[i] = int64(binary.LittleEndian.Uint64(p[i*8:]))
		}
	}
	return xs, nil
}

func (c *cursor) zeroPad(n int) error {
	p, err := c.take(n)
	if err != nil {
		return err
	}
	for _, b := range p {
		if b != 0 {
			return fmt.Errorf("%w: nonzero pad byte", ErrCorrupt)
		}
	}
	return nil
}

// validOffsets checks an offset array is a well-formed CSR spine:
// starts at 0, non-decreasing, final value bounded.
func validOffsets(off []int64, what string) error {
	if off[0] != 0 {
		return fmt.Errorf("%w: %s offsets start at %d", ErrCorrupt, what, off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("%w: %s offsets decrease at %d", ErrCorrupt, what, i)
		}
	}
	if off[len(off)-1] > maxLabelEntries {
		return fmt.Errorf("%w: %s label count %d out of range", ErrCorrupt, what, off[len(off)-1])
	}
	return nil
}

// validEntries checks label entries: ranks in range and strictly
// increasing within each vertex (the merge-join precondition), depths
// within the encodable range.
func validEntries(off []int64, lab []uint32, l uint64, what string) error {
	for v := 0; v+1 < len(off); v++ {
		prev := int64(-1)
		for _, e := range lab[off[v]:off[v+1]] {
			rank := int64(e >> 16)
			if rank >= int64(l) {
				return fmt.Errorf("%w: %s label rank %d >= landmark count %d", ErrCorrupt, what, rank, l)
			}
			if rank <= prev {
				return fmt.Errorf("%w: %s labels of vertex %d not rank-sorted", ErrCorrupt, what, v)
			}
			if e&0xFFFF > maxDepth16 {
				return fmt.Errorf("%w: %s label depth out of range at vertex %d", ErrCorrupt, what, v)
			}
			prev = rank
		}
	}
	return nil
}

// Decode parses a complete index artifact. It accepts arbitrary bytes
// without panicking; structural problems return ErrCorrupt, payload
// bit-rot returns ErrChecksum. The returned index owns fresh heap
// slices (use LoadMmap to alias a file instead).
func Decode(data []byte) (*Index, error) {
	return decode(data, false)
}

// decode is Decode with an aliasing switch: alias=true hands the
// returned index views over data (the mmap path) instead of copies —
// validation is identical either way.
func decode(data []byte, alias bool) (*Index, error) {
	if len(data) < idxHeaderLen+idxFooterLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than header+footer", ErrCorrupt, len(data))
	}
	foot := data[len(data)-idxFooterLen:]
	if string(foot[4:]) != idxCRCMagic {
		return nil, fmt.Errorf("%w: missing footer magic", ErrCorrupt)
	}
	body := data[:len(data)-idxFooterLen]

	c := &cursor{b: body, alias: alias && hostLittleEndian()}
	h, err := c.header()
	if err != nil {
		return nil, err
	}
	ix := &Index{
		Symmetric: h.flags&flagTwoSided == 0,
		Covered:   h.flags&flagCovered != 0,
		Policy:    Policy(h.policy),
		Seed:      h.seed,
		GraphV:    h.v,
		GraphE:    h.e,
	}
	if ix.Landmarks, err = c.u32s(int(h.l)); err != nil {
		return nil, err
	}
	for _, lm := range ix.Landmarks {
		if uint64(lm) >= h.v {
			return nil, fmt.Errorf("%w: landmark %d out of vertex range", ErrCorrupt, lm)
		}
	}
	if ix.OutOff, err = c.i64s(int(h.v) + 1); err != nil {
		return nil, err
	}
	if err := validOffsets(ix.OutOff, "out"); err != nil {
		return nil, err
	}
	if ix.OutLab, err = c.u32s(int(ix.OutOff[h.v])); err != nil {
		return nil, err
	}
	if ix.twoSided() {
		if ix.InOff, err = c.i64s(int(h.v) + 1); err != nil {
			return nil, err
		}
		if err := validOffsets(ix.InOff, "in"); err != nil {
			return nil, err
		}
		if ix.InLab, err = c.u32s(int(ix.InOff[h.v])); err != nil {
			return nil, err
		}
	} else {
		ix.InOff, ix.InLab = ix.OutOff, ix.OutLab
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-c.off)
	}

	// Structure parsed; now the bytes must be the bytes that were
	// written. CRC last so a torn tail reads as corruption above, and a
	// bit flip inside the arrays reads as a checksum failure here.
	want := binary.LittleEndian.Uint32(foot[:4])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: payload crc %#x, footer %#x", ErrChecksum, got, want)
	}
	if err := validEntries(ix.OutOff, ix.OutLab, h.l, "out"); err != nil {
		return nil, err
	}
	if ix.twoSided() {
		if err := validEntries(ix.InOff, ix.InLab, h.l, "in"); err != nil {
			return nil, err
		}
	}
	ix.buildRank()
	return ix, nil
}

// Save writes the artifact atomically: temp file in the destination
// directory, fsync, rename, directory fsync. A crash mid-save leaves
// at worst a *.tmp orphan, never a torn file under the final name —
// the invariant the manifest journal relies on when it records a build
// as durable.
func (ix *Index) Save(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("index: creating temp artifact: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(ix.Encode()); err != nil {
		return fmt.Errorf("index: writing artifact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("index: syncing artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(tmpName)
		return fmt.Errorf("index: closing artifact: %w", err)
	}
	tmp = nil
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("index: publishing artifact: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and decodes an artifact into heap memory.
func Load(path string) (*Index, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
