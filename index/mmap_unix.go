//go:build unix

package index

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// LoadMmap loads an index artifact by mapping it read-only: the label
// CSR arrays alias the mapping directly, so remounting a multi-hundred-
// megabyte labeling on warm restart costs page-cache hits, not a parse.
// Validation is identical to Load — the CRC32 footer and all structural
// invariants are checked over the mapped bytes before the index is
// returned, so a torn or bit-rotted artifact is rejected here exactly
// like a heap load would.
//
// The file must not be modified or truncated while mapped (MAP_SHARED;
// truncation turns reads into SIGBUS). The mapping is released by a
// finalizer when the Index becomes unreachable. Big-endian hosts fall
// back to the heap loader.
func LoadMmap(path string) (*Index, error) {
	if !hostLittleEndian() {
		return Load(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(idxHeaderLen+idxFooterLen) {
		return nil, fmt.Errorf("index: mmap %s: %w: %d bytes is shorter than header+footer", path, ErrCorrupt, size)
	}
	if size > int64(^uint(0)>>1) {
		return nil, fmt.Errorf("index: mmap %s: file size %d overflows the address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("index: mmap %s: %w", path, err)
	}
	ix, err := decode(data, true)
	if err != nil {
		_ = syscall.Munmap(data)
		return nil, fmt.Errorf("index: mmap %s: %w", path, err)
	}
	ix.mappedBytes = int(size)
	runtime.SetFinalizer(ix, func(*Index) { _ = syscall.Munmap(data) })
	return ix, nil
}
