// Package graph500 implements the benchmark methodology the paper
// targets (its Toy++ row is Graph500 scale 28, and §I motivates the
// whole work with the benchmark's single-node rankings): Kronecker graph
// construction (kernel 1), repeated validated BFS from sampled roots
// (kernel 2), and TEPS statistics including the official harmonic mean.
package graph500

import (
	"fmt"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/stats"
)

// Spec describes one benchmark problem.
type Spec struct {
	// Scale is log2 of the vertex count (Graph500 "SCALE").
	Scale int
	// EdgeFactor is edges per vertex; the official value is 16.
	EdgeFactor int
	// Roots is how many BFS roots to sample (officially 64; default 8
	// here to keep laptop runs short).
	Roots int
	// Seed fixes the generated graph and root sample.
	Seed uint64
	// SkipValidation skips per-root validation (for timing-only runs).
	SkipValidation bool
}

func (s Spec) withDefaults() Spec {
	if s.EdgeFactor == 0 {
		s.EdgeFactor = 16
	}
	if s.Roots == 0 {
		s.Roots = 8
	}
	if s.Seed == 0 {
		s.Seed = 20100521
	}
	return s
}

// RootResult records one kernel-2 invocation.
type RootResult struct {
	Root      uint32
	TEPS      float64
	Visited   int64
	Levels    int
	Elapsed   time.Duration
	Validated bool
}

// Report is a full benchmark outcome.
type Report struct {
	Spec         Spec
	Vertices     int
	Edges        int64
	Construction time.Duration
	Roots        []RootResult

	// HarmonicMeanTEPS is the official Graph500 statistic.
	HarmonicMeanTEPS float64
	// Mean/Min/Max summarize the per-root TEPS sample.
	MeanTEPS, MinTEPS, MaxTEPS float64
}

// Run executes kernels 1 and 2 with the given traversal options.
func Run(spec Spec, o bfs.Options) (*Report, error) {
	spec = spec.withDefaults()
	if spec.Scale < 1 || spec.Scale > 30 {
		return nil, fmt.Errorf("graph500: scale %d out of range [1,30]", spec.Scale)
	}
	t0 := time.Now()
	g, err := gen.Kronecker(spec.Scale, spec.EdgeFactor, spec.Seed)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Spec:         spec,
		Vertices:     g.NumVertices(),
		Edges:        g.NumEdges(),
		Construction: time.Since(t0),
	}

	e, err := bfs.NewEngine(g, o)
	if err != nil {
		return nil, err
	}
	for _, root := range SampleRoots(g, spec.Roots, spec.Seed) {
		res, err := e.Run(root)
		if err != nil {
			return nil, err
		}
		rr := RootResult{
			Root:    root,
			TEPS:    res.MTEPS() * 1e6,
			Visited: res.Visited,
			Levels:  res.Steps,
			Elapsed: res.Elapsed,
		}
		if !spec.SkipValidation {
			if err := bfs.Validate(g, res); err != nil {
				return nil, fmt.Errorf("graph500: root %d failed validation: %w", root, err)
			}
			rr.Validated = true
		}
		rep.Roots = append(rep.Roots, rr)
	}
	rep.finish()
	return rep, nil
}

// SampleRoots returns up to n deterministic roots with nonzero degree,
// spread across the vertex range the way the reference code samples.
func SampleRoots(g *graph.Graph, n int, seed uint64) []uint32 {
	if n < 1 {
		n = 1
	}
	var roots []uint32
	step := g.NumVertices()/(n*4) + 1
	offset := int(seed % uint64(step+1))
	for v := offset; v < g.NumVertices() && len(roots) < n; v += step {
		if g.Degree(uint32(v)) > 0 {
			roots = append(roots, uint32(v))
		}
	}
	for v := 0; v < g.NumVertices() && len(roots) < n; v++ {
		if g.Degree(uint32(v)) > 0 {
			roots = append(roots, uint32(v))
		}
	}
	return roots
}

// finish computes the summary statistics.
func (r *Report) finish() {
	if len(r.Roots) == 0 {
		return
	}
	var invSum float64
	teps := make([]float64, len(r.Roots))
	for i, rr := range r.Roots {
		teps[i] = rr.TEPS
		if rr.TEPS > 0 {
			invSum += 1 / rr.TEPS
		}
	}
	if invSum > 0 {
		r.HarmonicMeanTEPS = float64(len(r.Roots)) / invSum
	}
	s := stats.Summarize(teps)
	r.MeanTEPS, r.MinTEPS, r.MaxTEPS = s.Mean, s.Min, s.Max
}

// String renders the report in the style of the official output.
func (r *Report) String() string {
	return fmt.Sprintf(
		"SCALE %d edgefactor %d: %d vertices, %d edges, construction %v; "+
			"%d roots: harmonic_mean_TEPS %.3e (mean %.3e, min %.3e, max %.3e)",
		r.Spec.Scale, r.Spec.EdgeFactor, r.Vertices, r.Edges,
		r.Construction.Round(time.Millisecond), len(r.Roots),
		r.HarmonicMeanTEPS, r.MeanTEPS, r.MinTEPS, r.MaxTEPS)
}
