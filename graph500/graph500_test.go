package graph500

import (
	"strings"
	"testing"

	"fastbfs/bfs"
	"fastbfs/graph/gen"
)

func TestRunSmall(t *testing.T) {
	rep, err := Run(Spec{Scale: 12, EdgeFactor: 8, Roots: 4, Seed: 3}, bfs.Default(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Vertices != 1<<12 {
		t.Errorf("vertices = %d", rep.Vertices)
	}
	if rep.Edges != 2*8<<12 {
		t.Errorf("edges = %d", rep.Edges)
	}
	if len(rep.Roots) != 4 {
		t.Fatalf("roots = %d", len(rep.Roots))
	}
	for _, rr := range rep.Roots {
		if !rr.Validated {
			t.Errorf("root %d not validated", rr.Root)
		}
		if rr.TEPS <= 0 || rr.Visited <= 0 || rr.Levels <= 0 {
			t.Errorf("degenerate root result: %+v", rr)
		}
	}
	if rep.HarmonicMeanTEPS <= 0 {
		t.Error("no harmonic mean")
	}
	// The harmonic mean never exceeds the arithmetic mean.
	if rep.HarmonicMeanTEPS > rep.MeanTEPS+1e-9 {
		t.Errorf("harmonic %v > mean %v", rep.HarmonicMeanTEPS, rep.MeanTEPS)
	}
	if rep.MinTEPS > rep.MaxTEPS {
		t.Error("min > max")
	}
	if !strings.Contains(rep.String(), "harmonic_mean_TEPS") {
		t.Errorf("report rendering: %s", rep.String())
	}
}

func TestRunSkipValidation(t *testing.T) {
	rep, err := Run(Spec{Scale: 10, EdgeFactor: 4, Roots: 2, Seed: 5, SkipValidation: true}, bfs.Default(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range rep.Roots {
		if rr.Validated {
			t.Error("validation ran despite SkipValidation")
		}
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Run(Spec{Scale: 0}, bfs.Default(1)); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := Run(Spec{Scale: 99}, bfs.Default(1)); err == nil {
		t.Error("scale 99 accepted")
	}
}

func TestSampleRoots(t *testing.T) {
	g, err := gen.Kronecker(12, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	roots := SampleRoots(g, 8, 7)
	if len(roots) != 8 {
		t.Fatalf("sampled %d roots", len(roots))
	}
	seen := map[uint32]bool{}
	for _, r := range roots {
		if g.Degree(r) == 0 {
			t.Errorf("root %d has no edges", r)
		}
		if seen[r] {
			t.Errorf("duplicate root %d", r)
		}
		seen[r] = true
	}
	// Deterministic for a fixed seed.
	again := SampleRoots(g, 8, 7)
	for i := range roots {
		if roots[i] != again[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestDefaults(t *testing.T) {
	s := Spec{Scale: 10}.withDefaults()
	if s.EdgeFactor != 16 || s.Roots != 8 || s.Seed == 0 {
		t.Errorf("defaults wrong: %+v", s)
	}
}
