module fastbfs

go 1.22
