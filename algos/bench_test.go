package algos

import (
	"testing"

	"fastbfs/graph"
	"fastbfs/graph/gen"
)

// BenchmarkMatching measures Hopcroft-Karp on a random bipartite graph
// — the "graph matching" application of the paper's abstract, whose
// inner loop is BFS layering.
func BenchmarkMatching(b *testing.B) {
	const nL, nR, deg = 1 << 12, 1 << 12, 4
	src, err := gen.UniformRandom(nL, deg, 3)
	if err != nil {
		b.Fatal(err)
	}
	var edges []graph.Edge
	for u := 0; u < nL; u++ {
		for _, v := range src.Neighbors1(uint32(u)) {
			edges = append(edges, graph.Edge{U: uint32(u), V: uint32(nL + int(v)%nR)})
		}
	}
	g, err := graph.FromEdges(nL+nR, edges)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := MaximumBipartiteMatching(g, nL)
		if err != nil {
			b.Fatal(err)
		}
		if m.Size == 0 {
			b.Fatal("empty matching")
		}
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g, err := gen.Grid2D(256, 256, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, count := ConnectedComponents(g); count != 1 {
			b.Fatal("grid split")
		}
	}
}

func BenchmarkIsBipartite(b *testing.B) {
	g, err := gen.Grid2D(256, 256, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := IsBipartite(g); !ok {
			b.Fatal("grid not bipartite")
		}
	}
}
