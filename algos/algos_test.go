package algos

import (
	"testing"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReachable(t *testing.T) {
	g := mustGraph(t, 5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	ok, d, err := Reachable(g, 0, 2, bfs.Options{Workers: 2})
	if err != nil || !ok || d != 2 {
		t.Fatalf("Reachable(0,2) = %v,%d,%v", ok, d, err)
	}
	ok, d, err = Reachable(g, 0, 4, bfs.Options{Workers: 2})
	if err != nil || ok || d != -1 {
		t.Fatalf("Reachable(0,4) = %v,%d,%v", ok, d, err)
	}
}

func TestHopPath(t *testing.T) {
	// A grid has many shortest paths; any one returned must be valid.
	g, _ := gen.Grid2D(12, 12, 0, 1)
	res, err := bfs.Run(g, 0, bfs.Default(2))
	if err != nil {
		t.Fatal(err)
	}
	target := uint32(12*12 - 1)
	path, err := HopPath(res, target)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != 0 || path[len(path)-1] != target {
		t.Fatalf("endpoints wrong: %v", path)
	}
	if len(path) != int(res.Depth(target))+1 {
		t.Fatalf("path length %d, depth %d", len(path), res.Depth(target))
	}
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(path[i-1], path[i]) {
			t.Fatalf("non-edge (%d,%d) in path", path[i-1], path[i])
		}
	}
	// Unreachable target.
	iso := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}})
	res2, _ := bfs.Run(iso, 0, bfs.Options{Workers: 1})
	if _, err := HopPath(res2, 2); err != ErrUnreachable {
		t.Errorf("want ErrUnreachable, got %v", err)
	}
}

func TestKHopCounts(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	counts, err := KHopCounts(g, 0, 2, bfs.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if _, err := KHopCounts(g, 0, -1, bfs.Options{}); err == nil {
		t.Error("negative maxHop accepted")
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two triangles and an isolated vertex, symmetric.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3}}
	g := mustGraph(t, 7, edges).Symmetrize()
	labels, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("first triangle split")
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Error("second triangle split")
	}
	if labels[0] == labels[3] || labels[6] == labels[0] || labels[6] == labels[3] {
		t.Error("components merged")
	}
	// Ids are assigned by smallest vertex: 0, then 3, then 6.
	if labels[0] != 0 || labels[3] != 1 || labels[6] != 2 {
		t.Errorf("label order: %v", labels)
	}
}

func TestConnectedComponentsGrid(t *testing.T) {
	g, _ := gen.Grid2D(20, 20, 0, 1)
	_, count := ConnectedComponents(g)
	if count != 1 {
		t.Fatalf("grid components = %d", count)
	}
}

func TestIsBipartite(t *testing.T) {
	// Even cycle: bipartite.
	even := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}}).Symmetrize()
	if ok, sides := IsBipartite(even); !ok {
		t.Error("even cycle not bipartite")
	} else if sides[0] == sides[1] || sides[0] != sides[2] {
		t.Errorf("coloring wrong: %v", sides)
	}
	// Odd cycle: not bipartite.
	odd := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}).Symmetrize()
	if ok, _ := IsBipartite(odd); ok {
		t.Error("odd cycle reported bipartite")
	}
	// The generator's stress graph is bipartite by construction.
	stress, _ := gen.StressBipartite(1000, 4, 2)
	if ok, _ := IsBipartite(stress.Symmetrize()); !ok {
		t.Error("stress graph not bipartite")
	}
	// Grids are bipartite (checkerboard).
	grid, _ := gen.Grid2D(9, 9, 0, 1)
	if ok, _ := IsBipartite(grid); !ok {
		t.Error("grid not bipartite")
	}
}

func TestPseudoDiameter(t *testing.T) {
	// Path graph: double sweep is exact.
	g, _ := gen.Grid2D(1, 50, 0, 0)
	d, err := PseudoDiameter(g, 25, bfs.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d != 49 {
		t.Fatalf("path pseudo-diameter = %d, want 49", d)
	}
	// Grid: exact too (corner to corner).
	grid, _ := gen.Grid2D(10, 15, 0, 0)
	d, err = PseudoDiameter(grid, 7*15+8, bfs.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d != 9+14 {
		t.Fatalf("grid pseudo-diameter = %d, want 23", d)
	}
}

// bipartiteEdges builds a bipartite graph for matching tests: left
// [0,nL), right [nL, nL+nR).
func bipartiteEdges(t *testing.T, nL, nR int, pairs [][2]int) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	for _, p := range pairs {
		edges = append(edges, graph.Edge{U: uint32(p[0]), V: uint32(nL + p[1])})
	}
	return mustGraph(t, nL+nR, edges)
}

func TestMatchingPerfect(t *testing.T) {
	// 3x3 with a perfect matching.
	g := bipartiteEdges(t, 3, 3, [][2]int{{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 2}})
	m, err := MaximumBipartiteMatching(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size != 3 {
		t.Fatalf("size = %d, want 3", m.Size)
	}
	if err := VerifyMatching(g, 3, m); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingNeedsAugmentation(t *testing.T) {
	// The greedy matching (0-0, 1-1) blocks vertex 2; Hopcroft-Karp must
	// find the augmenting path 2 -> 1 -> 1 -> 0 -> 0 -> ... rearranged.
	g := bipartiteEdges(t, 3, 3, [][2]int{{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}})
	m, err := MaximumBipartiteMatching(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size != 3 {
		t.Fatalf("size = %d, want 3", m.Size)
	}
	if err := VerifyMatching(g, 3, m); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingDeficient(t *testing.T) {
	// Koenig-style deficiency: three left vertices share two right ones.
	g := bipartiteEdges(t, 3, 2, [][2]int{{0, 0}, {1, 0}, {2, 0}, {1, 1}})
	m, err := MaximumBipartiteMatching(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size != 2 {
		t.Fatalf("size = %d, want 2", m.Size)
	}
	if err := VerifyMatching(g, 3, m); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingEmptyAndErrors(t *testing.T) {
	g := mustGraph(t, 4, nil)
	m, err := MaximumBipartiteMatching(g, 2)
	if err != nil || m.Size != 0 {
		t.Fatalf("empty graph: %v, size %d", err, m.Size)
	}
	if _, err := MaximumBipartiteMatching(g, 9); err == nil {
		t.Error("nLeft > n accepted")
	}
	bad := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}})
	if _, err := MaximumBipartiteMatching(bad, 2); err == nil {
		t.Error("left-to-left edge accepted")
	}
}

// TestMatchingRandomAgainstBound: on random bipartite graphs, the
// matching size must match a simple exhaustive augmenting-path
// reference.
func TestMatchingRandomAgainstBound(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		const nL, nR = 24, 20
		g, err := gen.UniformRandom(nL, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild as bipartite: left u -> right (u's neighbors mod nR).
		var edges []graph.Edge
		for u := 0; u < nL; u++ {
			for _, v := range g.Neighbors1(uint32(u)) {
				edges = append(edges, graph.Edge{U: uint32(u), V: uint32(nL + int(v)%nR)})
			}
		}
		bg := mustGraph(t, nL+nR, edges)
		m, err := MaximumBipartiteMatching(bg, nL)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyMatching(bg, nL, m); err != nil {
			t.Fatal(err)
		}
		if want := slowMatching(bg, nL, nR); m.Size != want {
			t.Fatalf("seed %d: HK size %d, reference %d", seed, m.Size, want)
		}
	}
}

// slowMatching is the O(V*E) Hungarian-augmentation reference.
func slowMatching(g *graph.Graph, nL, nR int) int {
	matchR := make([]int, nR)
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		for _, v := range g.Neighbors1(uint32(u)) {
			r := int(v) - nL
			if seen[r] {
				continue
			}
			seen[r] = true
			if matchR[r] == -1 || try(matchR[r], seen) {
				matchR[r] = u
				return true
			}
		}
		return false
	}
	size := 0
	for u := 0; u < nL; u++ {
		if try(u, make([]bool, nR)) {
			size++
		}
	}
	return size
}
