package algos

import (
	"fmt"

	"fastbfs/graph"
)

// unmatched marks a free vertex in the matching arrays.
const unmatched = ^uint32(0)

// Matching is a maximum bipartite matching: MatchL[u] is the right
// vertex matched to left vertex u (or ^0 when free), and symmetrically
// for MatchR.
type Matching struct {
	MatchL, MatchR []uint32
	Size           int
}

// MaximumBipartiteMatching computes a maximum matching of a bipartite
// graph with the Hopcroft–Karp algorithm — the "graph matching" workload
// of the paper's abstract, whose inner loop is exactly the layered BFS
// this library optimizes. Vertices [0, nLeft) form the left side; every
// edge must go from a left vertex to a right vertex (ids >= nLeft).
//
// Complexity: O(E * sqrt(V)) — each phase runs one BFS layering over the
// free left vertices followed by layered DFS augmentation, and at most
// O(sqrt(V)) phases occur.
func MaximumBipartiteMatching(g *graph.Graph, nLeft int) (*Matching, error) {
	n := g.NumVertices()
	if nLeft < 0 || nLeft > n {
		return nil, fmt.Errorf("algos: nLeft %d outside [0, %d]", nLeft, n)
	}
	for u := 0; u < nLeft; u++ {
		for _, v := range g.Neighbors1(uint32(u)) {
			if int(v) < nLeft {
				return nil, fmt.Errorf("algos: edge (%d,%d) stays on the left side", u, v)
			}
		}
	}
	nRight := n - nLeft
	m := &Matching{
		MatchL: make([]uint32, nLeft),
		MatchR: make([]uint32, nRight),
	}
	for i := range m.MatchL {
		m.MatchL[i] = unmatched
	}
	for i := range m.MatchR {
		m.MatchR[i] = unmatched
	}

	const infDist = ^uint32(0)
	dist := make([]uint32, nLeft)
	queue := make([]uint32, 0, nLeft)

	// bfsLayer builds the alternating-path level graph from the free
	// left vertices and reports whether any augmenting path exists.
	bfsLayer := func() bool {
		queue = queue[:0]
		for u := 0; u < nLeft; u++ {
			if m.MatchL[u] == unmatched {
				dist[u] = 0
				queue = append(queue, uint32(u))
			} else {
				dist[u] = infDist
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors1(u) {
				w := m.MatchR[v-uint32(nLeft)]
				if w == unmatched {
					found = true
					continue
				}
				if dist[w] == infDist {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	// dfsAugment extends one augmenting path along the level graph.
	var dfsAugment func(u uint32) bool
	dfsAugment = func(u uint32) bool {
		for _, v := range g.Neighbors1(u) {
			r := v - uint32(nLeft)
			w := m.MatchR[r]
			if w == unmatched || (dist[w] == dist[u]+1 && dfsAugment(w)) {
				m.MatchL[u] = v
				m.MatchR[r] = u
				return true
			}
		}
		dist[u] = infDist // dead end: prune for this phase
		return false
	}

	for bfsLayer() {
		for u := 0; u < nLeft; u++ {
			if m.MatchL[u] == unmatched && dist[u] == 0 {
				if dfsAugment(uint32(u)) {
					m.Size++
				}
			}
		}
	}
	return m, nil
}

// VerifyMatching checks structural validity: mutual consistency of the
// two arrays, every matched pair connected by a graph edge, and the
// size field accurate. It does not check maximality.
func VerifyMatching(g *graph.Graph, nLeft int, m *Matching) error {
	size := 0
	for u, v := range m.MatchL {
		if v == unmatched {
			continue
		}
		size++
		if int(v) < nLeft || int(v) >= g.NumVertices() {
			return fmt.Errorf("algos: match %d->%d leaves the right side", u, v)
		}
		if m.MatchR[int(v)-nLeft] != uint32(u) {
			return fmt.Errorf("algos: match %d->%d not mutual", u, v)
		}
		if !g.HasEdge(uint32(u), v) {
			return fmt.Errorf("algos: matched pair (%d,%d) is not an edge", u, v)
		}
	}
	if size != m.Size {
		return fmt.Errorf("algos: size field %d, actual %d", m.Size, size)
	}
	for r, u := range m.MatchR {
		if u != unmatched && m.MatchL[u] != uint32(r+nLeft) {
			return fmt.Errorf("algos: right match %d->%d not mutual", r+nLeft, u)
		}
	}
	return nil
}
