package algos_test

import (
	"fmt"

	"fastbfs/algos"
	"fastbfs/bfs"
	"fastbfs/graph"
)

// ExampleReachable answers an s-t reachability query.
func ExampleReachable() {
	g, _ := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	ok, hops, _ := algos.Reachable(g, 0, 2, bfs.Options{Workers: 1})
	fmt.Println(ok, hops)
	// Output: true 2
}

// ExampleMaximumBipartiteMatching matches workers (left) to tasks
// (right) with Hopcroft–Karp.
func ExampleMaximumBipartiteMatching() {
	// Workers 0..2, tasks 3..5; edges are qualifications.
	g, _ := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 3}, {U: 1, V: 3}, {U: 1, V: 4}, {U: 2, V: 4}, {U: 2, V: 5},
	})
	m, _ := algos.MaximumBipartiteMatching(g, 3)
	fmt.Println("matched pairs:", m.Size)
	// Output: matched pairs: 3
}

// ExampleConnectedComponents labels an undirected graph's components.
func ExampleConnectedComponents() {
	g, _ := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 3, V: 4}})
	labels, count := algos.ConnectedComponents(g.Symmetrize())
	fmt.Println(count, labels)
	// Output: 3 [0 0 1 2 2]
}
