// Package algos builds the graph algorithms the paper motivates BFS
// with — "graph traversal is a key component in graph algorithms such as
// reachability and graph matching" (§Abstract) — on top of the fastbfs
// engine: s-t reachability, hop paths, k-hop neighborhoods, connected
// components, bipartiteness, pseudo-diameter, and Hopcroft–Karp maximum
// bipartite matching.
package algos

import (
	"errors"
	"fmt"

	"fastbfs/bfs"
	"fastbfs/graph"
)

// ErrUnreachable reports that no path exists between the queried
// vertices.
var ErrUnreachable = errors.New("algos: target unreachable from source")

// Reachable reports whether t is reachable from s, and at how many hops.
func Reachable(g *graph.Graph, s, t uint32, o bfs.Options) (bool, int32, error) {
	res, err := bfs.Run(g, s, o)
	if err != nil {
		return false, -1, err
	}
	d := res.Depth(t)
	return d >= 0, d, nil
}

// HopPath returns one shortest (by hop count) path from res.Source to t,
// reconstructed from the BFS parents, inclusive of both endpoints.
func HopPath(res *bfs.Result, t uint32) ([]uint32, error) {
	if res.Depth(t) < 0 {
		return nil, ErrUnreachable
	}
	path := make([]uint32, 0, res.Depth(t)+1)
	for v := t; ; {
		path = append(path, v)
		if v == res.Source {
			break
		}
		p := res.Parent(v)
		if p < 0 {
			return nil, fmt.Errorf("algos: broken parent chain at %d", v)
		}
		v = uint32(p)
	}
	// Reverse into source-to-target order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// KHopCounts returns the number of vertices at each hop distance
// 0..maxHop from source (the degrees-of-separation histogram).
func KHopCounts(g *graph.Graph, source uint32, maxHop int, o bfs.Options) ([]int64, error) {
	if maxHop < 0 {
		return nil, fmt.Errorf("algos: negative maxHop %d", maxHop)
	}
	res, err := bfs.Run(g, source, o)
	if err != nil {
		return nil, err
	}
	counts := make([]int64, maxHop+1)
	for v := 0; v < g.NumVertices(); v++ {
		if d := res.Depth(uint32(v)); d >= 0 && int(d) <= maxHop {
			counts[d]++
		}
	}
	return counts, nil
}

// ConnectedComponents labels the connected components of a symmetric
// (undirected) graph: labels[v] is the component id in [0, count), with
// component ids assigned in order of their smallest vertex. Directed
// inputs should be Symmetrize()d first (the result is then the weakly
// connected components).
func ConnectedComponents(g *graph.Graph) (labels []uint32, count int) {
	n := g.NumVertices()
	labels = make([]uint32, n)
	for i := range labels {
		labels[i] = ^uint32(0)
	}
	queue := make([]uint32, 0, 1024)
	for v := 0; v < n; v++ {
		if labels[v] != ^uint32(0) {
			continue
		}
		id := uint32(count)
		count++
		labels[v] = id
		queue = append(queue[:0], uint32(v))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range g.Neighbors1(u) {
				if labels[w] == ^uint32(0) {
					labels[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return labels, count
}

// IsBipartite two-colors a symmetric graph by BFS; ok reports success
// and sides holds 0/1 colors for visited vertices (-1 for isolated
// pieces are colored as encountered — every vertex gets a side).
func IsBipartite(g *graph.Graph) (ok bool, sides []int8) {
	n := g.NumVertices()
	sides = make([]int8, n)
	for i := range sides {
		sides[i] = -1
	}
	queue := make([]uint32, 0, 1024)
	for v := 0; v < n; v++ {
		if sides[v] != -1 {
			continue
		}
		sides[v] = 0
		queue = append(queue[:0], uint32(v))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			su := sides[u]
			for _, w := range g.Neighbors1(u) {
				if sides[w] == -1 {
					sides[w] = 1 - su
					queue = append(queue, w)
				} else if sides[w] == su {
					return false, sides
				}
			}
		}
	}
	return true, sides
}

// PseudoDiameter estimates the graph diameter by the classic double
// sweep: BFS from start, then BFS from the farthest vertex found. The
// result is a lower bound on the true diameter, exact on trees.
func PseudoDiameter(g *graph.Graph, start uint32, o bfs.Options) (int32, error) {
	res, err := bfs.Run(g, start, o)
	if err != nil {
		return 0, err
	}
	far, maxD := start, int32(0)
	for v := 0; v < g.NumVertices(); v++ {
		if d := res.Depth(uint32(v)); d > maxD {
			maxD, far = d, uint32(v)
		}
	}
	res, err = bfs.Run(g, far, o)
	if err != nil {
		return 0, err
	}
	maxD = 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := res.Depth(uint32(v)); d > maxD {
			maxD = d
		}
	}
	return maxD, nil
}
