package par

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestBarrierRounds(t *testing.T) {
	const workers, rounds = 8, 50
	b := NewBarrier(workers)
	var phase [workers]int32
	Run(workers, func(w int) {
		for r := 0; r < rounds; r++ {
			atomic.StoreInt32(&phase[w], int32(r))
			b.Wait()
			// After the barrier, every worker must be at round r.
			for i := 0; i < workers; i++ {
				if p := atomic.LoadInt32(&phase[i]); p < int32(r) {
					t.Errorf("worker %d at phase %d during round %d", i, p, r)
				}
			}
			b.Wait()
		}
	})
}

func TestBarrierSingle(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 10; i++ {
		b.Wait() // must never block
	}
}

func TestBarrierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestRunAllWorkersExecute(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	Run(7, func(w int) {
		mu.Lock()
		seen[w] = true
		mu.Unlock()
	})
	if len(seen) != 7 {
		t.Fatalf("saw %d workers, want 7", len(seen))
	}
}

func TestRangeProperties(t *testing.T) {
	f := func(n16 uint16, w8 uint8) bool {
		n := int(n16)
		workers := int(w8)%16 + 1
		// Coverage: ranges tile [0, n) exactly.
		pos := 0
		for w := 0; w < workers; w++ {
			lo, hi := Range(n, w, workers)
			if lo != pos || hi < lo {
				return false
			}
			// Balance: sizes differ by at most one.
			if hi-lo > n/workers+1 {
				return false
			}
			pos = hi
		}
		return pos == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRange64Properties(t *testing.T) {
	f := func(n32 uint32, w8 uint8) bool {
		n := int64(n32)
		workers := int(w8)%16 + 1
		pos := int64(0)
		for w := 0; w < workers; w++ {
			lo, hi := Range64(n, w, workers)
			if lo != pos || hi < lo {
				return false
			}
			pos = hi
		}
		return pos == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		for _, n := range []int{0, 1, 3, 100, 1001} {
			marks := make([]int32, n)
			For(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&marks[i], 1)
				}
			})
			for i, m := range marks {
				if m != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, m)
				}
			}
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Error("DefaultWorkers < 1")
	}
}

// TestRunRecoversPanic: a panicking worker must surface as a *PanicError
// from Run — with worker id, value and stack — not crash the process,
// and the other workers must still run.
func TestRunRecoversPanic(t *testing.T) {
	var ran int32
	err := Run(4, func(w int) {
		if w == 2 {
			panic("injected")
		}
		atomic.AddInt32(&ran, 1)
	})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PanicError", err)
	}
	if pe.Worker != 2 || pe.Value != "injected" {
		t.Errorf("PanicError = worker %d value %v", pe.Worker, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !strings.Contains(pe.Error(), "worker 2") {
		t.Errorf("message %q lacks worker id", pe.Error())
	}
	if atomic.LoadInt32(&ran) != 3 {
		t.Errorf("%d surviving workers ran, want 3", ran)
	}
}

// TestRunRecoversPanicSingleWorker: the inline workers==1 path recovers
// too.
func TestRunRecoversPanicSingleWorker(t *testing.T) {
	if err := Run(1, func(int) { panic("solo") }); err == nil {
		t.Fatal("single-worker panic not surfaced")
	}
}

// TestPanicErrorUnwrap: a panic with an error value stays errors.Is-able
// through the wrapper.
func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := fmt.Errorf("sentinel")
	err := Run(2, func(w int) {
		if w == 0 {
			panic(sentinel)
		}
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("errors.Is failed through PanicError: %v", err)
	}
}

// TestForRecoversPanic mirrors Run's contract on the range helper.
func TestForRecoversPanic(t *testing.T) {
	if err := For(4, 100, func(lo, hi int) { panic("range") }); err == nil {
		t.Fatal("For swallowed a worker panic")
	}
	if err := For(1, 10, func(lo, hi int) { panic("inline") }); err == nil {
		t.Fatal("inline For swallowed a panic")
	}
}

// TestBarrierBreak: breaking a barrier releases current waiters with
// false, fails all later waits, and Reset rearms it.
func TestBarrierBreak(t *testing.T) {
	const workers = 4
	b := NewBarrier(workers)
	var falses int32
	err := Run(workers, func(w int) {
		if w == 0 {
			// Give the others time to block, then poison the barrier —
			// the panic-isolation path in the traversal engine.
			time.Sleep(10 * time.Millisecond)
			b.Break()
			return
		}
		if ok := b.Wait(); !ok {
			atomic.AddInt32(&falses, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if falses != workers-1 {
		t.Fatalf("%d waiters saw the break, want %d", falses, workers-1)
	}
	if b.Wait() {
		t.Error("broken barrier accepted a new waiter")
	}
	b.Reset()
	// Rearmed: a full cohort passes again.
	var passes int32
	if err := Run(workers, func(w int) {
		if b.Wait() {
			atomic.AddInt32(&passes, 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if passes != workers {
		t.Fatalf("%d passes after Reset, want %d", passes, workers)
	}
}
