package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestBarrierRounds(t *testing.T) {
	const workers, rounds = 8, 50
	b := NewBarrier(workers)
	var phase [workers]int32
	Run(workers, func(w int) {
		for r := 0; r < rounds; r++ {
			atomic.StoreInt32(&phase[w], int32(r))
			b.Wait()
			// After the barrier, every worker must be at round r.
			for i := 0; i < workers; i++ {
				if p := atomic.LoadInt32(&phase[i]); p < int32(r) {
					t.Errorf("worker %d at phase %d during round %d", i, p, r)
				}
			}
			b.Wait()
		}
	})
}

func TestBarrierSingle(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 10; i++ {
		b.Wait() // must never block
	}
}

func TestBarrierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestRunAllWorkersExecute(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	Run(7, func(w int) {
		mu.Lock()
		seen[w] = true
		mu.Unlock()
	})
	if len(seen) != 7 {
		t.Fatalf("saw %d workers, want 7", len(seen))
	}
}

func TestRangeProperties(t *testing.T) {
	f := func(n16 uint16, w8 uint8) bool {
		n := int(n16)
		workers := int(w8)%16 + 1
		// Coverage: ranges tile [0, n) exactly.
		pos := 0
		for w := 0; w < workers; w++ {
			lo, hi := Range(n, w, workers)
			if lo != pos || hi < lo {
				return false
			}
			// Balance: sizes differ by at most one.
			if hi-lo > n/workers+1 {
				return false
			}
			pos = hi
		}
		return pos == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRange64Properties(t *testing.T) {
	f := func(n32 uint32, w8 uint8) bool {
		n := int64(n32)
		workers := int(w8)%16 + 1
		pos := int64(0)
		for w := 0; w < workers; w++ {
			lo, hi := Range64(n, w, workers)
			if lo != pos || hi < lo {
				return false
			}
			pos = hi
		}
		return pos == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		for _, n := range []int{0, 1, 3, 100, 1001} {
			marks := make([]int32, n)
			For(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&marks[i], 1)
				}
			})
			for i, m := range marks {
				if m != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, m)
				}
			}
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Error("DefaultWorkers < 1")
	}
}
