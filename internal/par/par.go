// Package par provides the minimal parallel-runtime pieces the traversal
// engine needs: a reusable barrier, a fixed pool of persistent workers,
// and helpers to divide index ranges among workers.
//
// The paper's implementation uses pinned pthreads with hand-rolled
// barriers between the phases of every BFS step. Go offers no thread
// pinning, so the pool is a fixed set of goroutines whose index doubles
// as the "hardware thread id" used by the simulated socket topology
// (see internal/numa).
package par

import (
	"runtime"
	"sync"
)

// Barrier is a reusable synchronization barrier for a fixed number of
// participants. The zero value is not usable; create one with NewBarrier.
//
// It is a classic sense-reversing barrier guarded by a mutex and cond.
// On the oversubscribed single-core hosts this repo targets, a blocking
// barrier beats spinning; on many-core hosts the cost is amortized by the
// per-step work between barriers.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	sense bool
}

// NewBarrier returns a barrier for n participants. n must be >= 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("par: NewBarrier with n < 1")
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n participants have called Wait, then releases
// them together. It may be reused for any number of rounds.
func (b *Barrier) Wait() {
	b.mu.Lock()
	sense := b.sense
	b.count++
	if b.count == b.n {
		b.count = 0
		b.sense = !b.sense
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for b.sense == sense {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// N returns the number of participants.
func (b *Barrier) N() int { return b.n }

// Run launches workers goroutines each executing body(worker) and waits
// for all of them. Bodies typically synchronize internally with a Barrier
// shared across the workers.
func Run(workers int, body func(worker int)) {
	if workers < 1 {
		panic("par: Run with workers < 1")
	}
	if workers == 1 {
		body(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			body(w)
		}(w)
	}
	wg.Wait()
}

// DefaultWorkers returns a sensible worker count: GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Range returns the half-open sub-range [lo, hi) of the n items assigned
// to worker w out of workers, using the balanced block distribution
// (first n%workers workers get one extra item).
func Range(n, w, workers int) (lo, hi int) {
	q, r := n/workers, n%workers
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return
}

// For runs body(i) for every i in [0, n) split across the given number of
// workers with the static block distribution. It is a convenience for
// embarrassingly parallel loops outside the engine's step loop (graph
// construction, validation).
func For(workers, n int, body func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			body(0, n)
		}
		return
	}
	Run(workers, func(w int) {
		lo, hi := Range(n, w, workers)
		if lo < hi {
			body(lo, hi)
		}
	})
}

// Range64 is Range for 64-bit sizes.
func Range64(n int64, w, workers int) (lo, hi int64) {
	q, r := n/int64(workers), n%int64(workers)
	lo = int64(w)*q + int64(min(w, int(r)))
	hi = lo + q
	if int64(w) < r {
		hi++
	}
	return
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
