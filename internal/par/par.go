// Package par provides the minimal parallel-runtime pieces the traversal
// engine needs: a reusable barrier, a fixed pool of persistent workers,
// and helpers to divide index ranges among workers.
//
// The paper's implementation uses pinned pthreads with hand-rolled
// barriers between the phases of every BFS step. Go offers no thread
// pinning, so the pool is a fixed set of goroutines whose index doubles
// as the "hardware thread id" used by the simulated socket topology
// (see internal/numa).
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Barrier is a reusable synchronization barrier for a fixed number of
// participants. The zero value is not usable; create one with NewBarrier.
//
// It is a classic sense-reversing barrier guarded by a mutex and cond.
// On the oversubscribed single-core hosts this repo targets, a blocking
// barrier beats spinning; on many-core hosts the cost is amortized by the
// per-step work between barriers.
//
// A barrier can be poisoned with Break: every current and future Wait
// returns false immediately, so a cohort whose member died (panicked)
// drains instead of deadlocking. Reset rearms a broken barrier once all
// participants have returned.
type Barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	sense  bool
	broken bool
}

// NewBarrier returns a barrier for n participants. n must be >= 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("par: NewBarrier with n < 1")
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n participants have called Wait, then releases
// them together, returning true. It may be reused for any number of
// rounds. If the barrier is (or becomes) broken, Wait returns false
// immediately for every participant.
func (b *Barrier) Wait() bool {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		return false
	}
	sense := b.sense
	b.count++
	if b.count == b.n {
		b.count = 0
		b.sense = !b.sense
		b.mu.Unlock()
		b.cond.Broadcast()
		return true
	}
	for b.sense == sense && !b.broken {
		b.cond.Wait()
	}
	ok := !b.broken
	b.mu.Unlock()
	return ok
}

// Break poisons the barrier: all participants currently blocked in Wait
// are released with a false return, as is every later Wait. It is safe to
// call from any goroutine (typically a panic handler) and is idempotent.
func (b *Barrier) Break() {
	b.mu.Lock()
	b.broken = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Reset rearms the barrier for a fresh cohort. It must only be called
// when no goroutine is blocked in Wait (e.g. between engine runs, after
// every worker has returned).
func (b *Barrier) Reset() {
	b.mu.Lock()
	b.count = 0
	b.broken = false
	b.mu.Unlock()
}

// N returns the number of participants.
func (b *Barrier) N() int { return b.n }

// PanicError reports a panic recovered from a pool worker, preserving the
// worker id, the panic value and the goroutine stack at the panic site.
type PanicError struct {
	Worker int
	Value  any
	Stack  []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: worker %d panicked: %v", e.Worker, e.Value)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As see through the recovery wrapper.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Run launches workers goroutines each executing body(worker) and waits
// for all of them. Bodies typically synchronize internally with a Barrier
// shared across the workers.
//
// A panic in any body is recovered and surfaced as a *PanicError (the
// first one wins) instead of crashing the process; the remaining workers
// still run to completion. Bodies that block on a shared Barrier must
// arrange to Break it on panic — see the engine's worker wrapper — or the
// surviving workers would wait forever for the dead participant.
func Run(workers int, body func(worker int)) error {
	if workers < 1 {
		panic("par: Run with workers < 1")
	}
	var (
		mu    sync.Mutex
		first *PanicError
	)
	call := func(w int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if first == nil {
					first = &PanicError{Worker: w, Value: r, Stack: debug.Stack()}
				}
				mu.Unlock()
			}
		}()
		body(w)
	}
	if workers == 1 {
		call(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				call(w)
			}(w)
		}
		wg.Wait()
	}
	if first != nil {
		return first
	}
	return nil
}

// DefaultWorkers returns a sensible worker count: GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Range returns the half-open sub-range [lo, hi) of the n items assigned
// to worker w out of workers, using the balanced block distribution
// (first n%workers workers get one extra item).
func Range(n, w, workers int) (lo, hi int) {
	q, r := n/workers, n%workers
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return
}

// For runs body(i) for every i in [0, n) split across the given number of
// workers with the static block distribution. It is a convenience for
// embarrassingly parallel loops outside the engine's step loop (graph
// construction, validation). Like Run, a panicking body surfaces as a
// *PanicError rather than crashing the process.
func For(workers, n int, body func(lo, hi int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n <= 0 {
			return nil
		}
		return Run(1, func(int) { body(0, n) })
	}
	return Run(workers, func(w int) {
		lo, hi := Range(n, w, workers)
		if lo < hi {
			body(lo, hi)
		}
	})
}

// Range64 is Range for 64-bit sizes.
func Range64(n int64, w, workers int) (lo, hi int64) {
	q, r := n/int64(workers), n%int64(workers)
	lo = int64(w)*q + int64(min(w, int(r)))
	hi = lo + q
	if int64(w) < r {
		hi++
	}
	return
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
