package msbfs

import (
	"testing"

	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/core"
)

// TestHybridSweepMatchesSerial runs hybrid multi-source sweeps over
// directed and undirected RMAT graphs at several batch sizes and worker
// counts, demanding per-lane serial parity.
func TestHybridSweepMatchesSerial(t *testing.T) {
	directed, err := gen.RMAT(gen.Graph500Params(11, 8), 3)
	if err != nil {
		t.Fatal(err)
	}
	p := gen.Graph500Params(11, 8)
	p.Undirected = true
	undirected, err := gen.RMAT(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *graph.Graph
		in   *graph.Graph
	}{
		{"directed", directed, directed.Transpose()},
		{"undirected", undirected, nil}, // nil in: symmetric shortcut
	}
	for _, tc := range cases {
		for _, lanes := range []int{1, 7, 64} {
			for _, workers := range []int{1, 4} {
				sources := make([]uint32, lanes)
				for k := range sources {
					sources[k] = uint32((k * 131) % tc.g.NumVertices())
				}
				res, err := RunHybrid(tc.g, tc.in, sources, workers)
				if err != nil {
					t.Fatal(err)
				}
				checkLanesMatchSerial(t, tc.g, res)
				if len(res.Directions) != res.Steps {
					t.Fatalf("%s/l%d/w%d: %d directions for %d steps",
						tc.name, lanes, workers, len(res.Directions), res.Steps)
				}
				if res.EdgesScanned <= 0 || res.LaneEdges < res.EdgesScanned {
					t.Fatalf("%s/l%d/w%d: accounting EdgesScanned=%d LaneEdges=%d",
						tc.name, lanes, workers, res.EdgesScanned, res.LaneEdges)
				}
			}
		}
	}
}

// TestHybridSweepSwitches checks a dense full batch on a scale-free
// graph actually takes bottom-up levels (the whole point), and that the
// plain sweep reports no directions.
func TestHybridSweepSwitches(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(12, 16), 9)
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]uint32, 64)
	for k := range sources {
		sources[k] = uint32(k)
	}
	res, err := RunHybrid(g, g.Transpose(), sources, 4)
	if err != nil {
		t.Fatal(err)
	}
	saw := false
	for _, d := range res.Directions {
		if d == core.DirBottomUp {
			saw = true
		}
	}
	if !saw {
		t.Errorf("no bottom-up level on scale-12/ef16 batch (dirs=%s)",
			core.DirectionString(res.Directions))
	}
	plain, err := Run(g, sources, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Directions != nil {
		t.Error("plain sweep reported directions")
	}
	// Both sweeps must agree on every lane (depths both serial-exact).
	for k := range sources {
		for v := 0; v < g.NumVertices(); v++ {
			if res.Depth(k, uint32(v)) != plain.Depth(k, uint32(v)) {
				t.Fatalf("lane %d vertex %d: hybrid %d, plain %d",
					k, v, res.Depth(k, uint32(v)), plain.Depth(k, uint32(v)))
			}
		}
	}
}
