package msbfs

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"fastbfs/graph"
	"fastbfs/internal/core"
	"fastbfs/internal/par"
)

// Hybrid multi-source sweep: the direction-optimizing rule of the
// single-source engine applied to the bit-parallel MS-BFS. MS-BFS is
// unusually well placed for bottom-up levels because its frontier is
// ALREADY a dense per-vertex structure (the visit masks), so switching
// direction costs nothing — no array↔bitmap conversion at all. A
// bottom-up level iterates the vertices with unseen lanes and scans
// in-neighbors until every lane has found a parent (the multi-source
// analogue of first-parent early exit: the scan stops when the
// remaining-lanes mask drains, not after one hit).

// RunHybrid performs one direction-optimizing multi-source sweep. in is
// the in-adjacency used by bottom-up levels; nil asserts g is symmetric
// (g then serves as its own in-adjacency). Depths per lane are exactly
// those of independent BFS runs. workers <= 0 means GOMAXPROCS.
func RunHybrid(g, in *graph.Graph, sources []uint32, workers int) (*Result, error) {
	return RunHybridContext(context.Background(), g, in, sources, workers)
}

// RunHybridContext is RunHybrid under a context, checked between levels.
// The α/β thresholds are the engine defaults (core.DefaultAlpha/Beta).
func RunHybridContext(ctx context.Context, g, in *graph.Graph, sources []uint32, workers int) (*Result, error) {
	lanes := len(sources)
	if lanes == 0 {
		return nil, errors.New("msbfs: empty source batch")
	}
	if lanes > MaxLanes {
		return nil, fmt.Errorf("msbfs: %d sources exceeds MaxLanes (%d)", lanes, MaxLanes)
	}
	n := g.NumVertices()
	for k, s := range sources {
		if int(s) >= n {
			return nil, fmt.Errorf("msbfs: source %d (lane %d) out of range", s, k)
		}
	}
	if in == nil {
		in = g
	}
	if in.NumVertices() != n {
		return nil, fmt.Errorf("msbfs: in-adjacency has %d vertices, graph %d", in.NumVertices(), n)
	}
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	start := time.Now()
	seen := make([]uint64, n)
	visit := make([]uint64, n)
	visitNext := make([]uint64, n)
	dp := make([][]uint64, lanes)
	for k := range dp {
		dp[k] = make([]uint64, n)
	}
	if err := par.For(workers, n, func(lo, hi int) {
		for _, lane := range dp {
			s := lane[lo:hi]
			for i := range s {
				s[i] = core.INF
			}
		}
	}); err != nil {
		return nil, err
	}

	frontier := make([]uint32, 0, lanes)
	for k, s := range sources {
		if seen[s] == 0 {
			frontier = append(frontier, s)
		}
		bit := uint64(1) << uint(k)
		seen[s] |= bit
		visit[s] |= bit
		dp[k][s] = core.PackDP(s, 0)
	}

	ws := make([]workerAcc, workers)
	next := make([]uint32, 0, 1024)
	res := &Result{Sources: append([]uint32(nil), sources...), DP: dp}

	dir := core.DirTopDown
	muEdges := g.NumEdges()

	for depth := uint32(1); len(frontier) > 0; depth++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Steps = int(depth)
		res.Directions = append(res.Directions, dir)

		var levelScanned int64
		if dir == core.DirTopDown {
			scanTopDown(g, frontier, visit, seen, visitNext, dp, ws, depth, workers)
		} else {
			scanBottomUp(in, batchMask(lanes), visit, seen, visitNext, dp, ws, depth, workers)
		}
		for w := range ws {
			levelScanned += ws[w].edgesScanned
			res.EdgesScanned += ws[w].edgesScanned
			res.LaneEdges += ws[w].laneEdges
		}

		// Retire the old frontier's visit masks, then commit the new one
		// (workers own the vertices they discovered, so writes are
		// disjoint — in bottom-up levels by vertex-range construction).
		if err := par.For(workers, len(frontier), func(lo, hi int) {
			for _, v := range frontier[lo:hi] {
				visit[v] = 0
			}
		}); err != nil {
			return nil, err
		}
		if err := par.Run(workers, func(w int) {
			for _, v := range ws[w].touched {
				nv := visitNext[v]
				visitNext[v] = 0
				seen[v] |= nv
				visit[v] = nv
			}
		}); err != nil {
			return nil, err
		}

		next = next[:0]
		for w := range ws {
			next = append(next, ws[w].touched...)
		}

		// Direction decision for the next level (engine α/β rule).
		if dir == core.DirTopDown {
			muEdges -= levelScanned
			if muEdges < 0 {
				muEdges = 0
			}
			var scout int64
			for _, v := range next {
				scout += int64(g.Offsets[v+1] - g.Offsets[v])
			}
			if len(next) > 0 && float64(scout) > float64(muEdges)/core.DefaultAlpha {
				dir = core.DirBottomUp
			}
		} else if len(next) < len(frontier) &&
			float64(len(next)) <= float64(n)/core.DefaultBeta {
			dir = core.DirTopDown
		}

		frontier, next = next, frontier
	}

	res.Elapsed = time.Since(start)
	return res, nil
}

// scanTopDown is the plain MS-BFS level scan (same kernel as
// RunContext): expand every frontier vertex once for all its lanes.
func scanTopDown(g *graph.Graph, frontier []uint32, visit, seen, visitNext []uint64,
	dp [][]uint64, ws []workerAcc, depth uint32, workers int) {
	var cursor atomic.Int64
	mustRun(par.Run(workers, func(w int) {
		acc := &ws[w]
		acc.touched = acc.touched[:0]
		var es, le int64
		for {
			base := int(cursor.Add(scanChunk)) - scanChunk
			if base >= len(frontier) {
				break
			}
			for _, v := range frontier[base:min(base+scanChunk, len(frontier))] {
				mask := visit[v]
				adj := g.Neighbors1(v)
				es += int64(len(adj))
				le += int64(bits.OnesCount64(mask)) * int64(len(adj))
				pdp := core.PackDP(v, depth)
				for _, u := range adj {
					d := mask &^ seen[u]
					if d == 0 {
						continue
					}
					old := orUint64(&visitNext[u], d)
					if old == 0 {
						acc.touched = append(acc.touched, u)
					}
					for b := d &^ old; b != 0; b &= b - 1 {
						dp[bits.TrailingZeros64(b)][u] = pdp
					}
				}
			}
		}
		acc.edgesScanned, acc.laneEdges = es, le
	}))
}

// batchMask returns the mask of live lanes.
func batchMask(lanes int) uint64 {
	return ^uint64(0) >> uint(64-lanes)
}

// scanBottomUp runs one bottom-up level: every vertex with unseen lanes
// scans its in-neighbors, claiming a parent per lane, and stops as soon
// as no lane remains. Workers take contiguous vertex ranges, so every
// write — DP cells, visitNext, the touched list — is worker-exclusive
// and the kernel needs no atomics.
func scanBottomUp(in *graph.Graph, mask uint64, visit, seen, visitNext []uint64,
	dp [][]uint64, ws []workerAcc, depth uint32, workers int) {
	n := in.NumVertices()
	mustRun(par.Run(workers, func(w int) {
		acc := &ws[w]
		acc.touched = acc.touched[:0]
		var es, le int64
		lo, hi := par.Range(n, w, workers)
		for v := lo; v < hi; v++ {
			rem := mask &^ seen[v]
			if rem == 0 {
				continue
			}
			var nv uint64
			for _, u := range in.Neighbors1(uint32(v)) {
				es++
				le += int64(bits.OnesCount64(rem))
				d := visit[u] & rem
				if d == 0 {
					continue
				}
				pdp := core.PackDP(u, depth)
				for b := d; b != 0; b &= b - 1 {
					dp[bits.TrailingZeros64(b)][v] = pdp
				}
				nv |= d
				rem &^= d
				if rem == 0 {
					break
				}
			}
			if nv != 0 {
				visitNext[uint32(v)] = nv
				acc.touched = append(acc.touched, uint32(v))
			}
		}
		acc.edgesScanned, acc.laneEdges = es, le
	}))
}

// mustRun panics on par.Run pool errors (nil worker counts are
// validated by the callers, so the only failure mode is a worker panic,
// which par.Run re-raises anyway).
func mustRun(err error) {
	if err != nil {
		panic(err)
	}
}
