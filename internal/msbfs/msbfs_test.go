package msbfs

import (
	"errors"
	"context"
	"testing"

	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/core"
)

// checkLanesMatchSerial asserts every lane's depths equal an independent
// serial run from that lane's source.
func checkLanesMatchSerial(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	for k, s := range res.Sources {
		ref, err := core.SerialBFS(g, s)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			want := ref.Depth(uint32(v))
			got := res.Depth(k, uint32(v))
			if got != want {
				t.Fatalf("lane %d (source %d): depth(%d) = %d, want %d", k, s, v, got, want)
			}
		}
		// Parents must form a valid tree edge: parent at depth-1 with an
		// edge to the child (any valid parent is acceptable).
		for v := 0; v < g.NumVertices(); v++ {
			d := res.Depth(k, uint32(v))
			if d <= 0 {
				continue
			}
			p := res.Parent(k, uint32(v))
			if p < 0 || ref.Depth(uint32(p)) != d-1 {
				t.Fatalf("lane %d: parent(%d) = %d at depth %d, child depth %d",
					k, v, p, ref.Depth(uint32(p)), d)
			}
			if !g.HasEdge(uint32(p), uint32(v)) {
				t.Fatalf("lane %d: parent edge (%d,%d) not in graph", k, p, v)
			}
		}
	}
}

func TestFullBatchMatchesSerialRMAT(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(11, 8), 3)
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]uint32, MaxLanes)
	for k := range sources {
		sources[k] = uint32((k * 37) % g.NumVertices())
	}
	res, err := Run(g, sources, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkLanesMatchSerial(t, g, res)
	if res.LaneEdges < res.EdgesScanned {
		t.Errorf("LaneEdges %d < EdgesScanned %d: batch shared nothing", res.LaneEdges, res.EdgesScanned)
	}
}

func TestSmallBatchesAndShapes(t *testing.T) {
	grid, err := gen.Grid2D(40, 40, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	stress, err := gen.StressBipartite(2000, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ur, err := gen.UniformRandom(3000, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		g       *graph.Graph
		sources []uint32
	}{
		{"grid-1", grid, []uint32{0}},
		{"grid-3", grid, []uint32{0, 799, 1599}},
		{"stress-5", stress, []uint32{0, 1, 2, 1999, 1000}},
		{"ur-dup", ur, []uint32{5, 5, 9}}, // duplicate sources share a lane mask
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.g, tc.sources, 0)
			if err != nil {
				t.Fatal(err)
			}
			checkLanesMatchSerial(t, tc.g, res)
		})
	}
}

func TestStepsMatchEngineCounting(t *testing.T) {
	// A grid from corner 0 has depth rows+cols-2; the engine counts one
	// extra level for the empty-frontier detection, and so must we.
	g, err := gen.Grid2D(10, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.SerialBFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, []uint32{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != ref.Steps {
		t.Fatalf("Steps = %d, want %d", res.Steps, ref.Steps)
	}
}

func TestBatchErrors(t *testing.T) {
	g, _ := gen.UniformRandom(100, 4, 1)
	if _, err := Run(g, nil, 0); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := Run(g, make([]uint32, MaxLanes+1), 0); err == nil {
		t.Error("oversized batch accepted")
	}
	if _, err := Run(g, []uint32{100}, 0); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	g, _ := gen.UniformRandom(5000, 8, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, g, []uint32{0, 1, 2, 3}, 0); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestLaneEdgesEqualSumOfSerialRuns(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(10, 8), 5)
	if err != nil {
		t.Fatal(err)
	}
	sources := []uint32{0, 3, 9, 27, 81}
	res, err := Run(g, sources, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, s := range sources {
		ref, err := core.SerialBFS(g, s)
		if err != nil {
			t.Fatal(err)
		}
		want += ref.EdgesTraversed
	}
	if res.LaneEdges != want {
		t.Fatalf("LaneEdges = %d, want Σ serial EdgesTraversed = %d", res.LaneEdges, want)
	}
}

func TestDepthsInto(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(9, 8), 13)
	if err != nil {
		t.Fatal(err)
	}
	sources := []uint32{0, 5, 100}
	res, err := Run(g, sources, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	dst := make([]uint16, n)
	for lane := range sources {
		maxD, err := res.DepthsInto(lane, dst, 0xFFFF)
		if err != nil {
			t.Fatal(err)
		}
		var wantMax uint32
		for v := 0; v < n; v++ {
			want := res.Depth(lane, uint32(v))
			if want < 0 {
				if dst[v] != 0xFFFF {
					t.Fatalf("lane %d vertex %d: got %d, want unreached", lane, v, dst[v])
				}
				continue
			}
			if int32(dst[v]) != want {
				t.Fatalf("lane %d vertex %d: got %d, want %d", lane, v, dst[v], want)
			}
			if uint32(want) > wantMax {
				wantMax = uint32(want)
			}
		}
		if maxD != wantMax {
			t.Fatalf("lane %d: max depth %d, want %d", lane, maxD, wantMax)
		}
	}
	// Length mismatch and unrepresentable depths are typed errors.
	if _, err := res.DepthsInto(0, dst[:n-1], 0xFFFF); err == nil {
		t.Fatal("short dst accepted")
	}
	if _, err := res.DepthsInto(0, dst, 1); !errors.Is(err, ErrDepthOverflow) {
		t.Fatalf("unreached=1 on a multi-level BFS: got %v, want ErrDepthOverflow", err)
	}
}
