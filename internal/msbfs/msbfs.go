// Package msbfs implements batched multi-source breadth-first search:
// up to 64 traversals of one graph executed as a single bit-parallel
// sweep (MS-BFS, after Then et al., "The More the Merrier: Efficient
// Multi-Source Graph Traversal").
//
// Each source occupies one bit lane of a 64-bit word; per vertex the
// kernel keeps a seen mask (lanes that have visited it) and a visit
// mask (lanes whose current frontier contains it). One scan of an
// active vertex's adjacency list serves every lane whose bit is set, so
// a batch of B sources traverses each shared edge roughly once instead
// of B times — that is where the aggregate-throughput win over running
// B independent engines comes from (cf. Buluç & Madduri on aggregating
// traversal work items into batches).
//
// The sweep is level-synchronous like the single-source engine, so per
// lane the computed depths are exactly those of an independent BFS from
// that lane's source. Lane ownership of discovery is decided by an
// atomic OR on the next-visit word: the worker that transitions a bit
// from 0 to 1 writes that lane's packed parent/depth word, so every
// (vertex, lane) cell has exactly one writer and the kernel is clean
// under the race detector.
package msbfs

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"fastbfs/graph"
	"fastbfs/internal/core"
	"fastbfs/internal/par"
)

// MaxLanes is the largest batch one sweep can carry: one source per bit
// of the per-vertex visited word.
const MaxLanes = 64

// scanChunk is the dynamic work-claiming granularity of the frontier
// scan; small enough to balance RMAT degree skew, large enough that the
// atomic cursor is cold.
const scanChunk = 256

// Result is the outcome of one multi-source sweep.
type Result struct {
	// Sources are the batch sources; lane k traversed from Sources[k].
	Sources []uint32
	// DP holds one packed parent/depth array per lane (core.PackDP
	// layout, core.INF = unvisited). Unlike the single-source engine,
	// these arrays are freshly allocated per sweep and owned by the
	// caller.
	DP [][]uint64
	// Steps is the number of sweep levels (the max depth reached by any
	// lane, plus the final empty-frontier detection level — the same
	// counting as the engine's Result.Steps for the deepest lane).
	Steps int
	// EdgesScanned counts adjacency entries the sweep actually read —
	// the real memory traffic.
	EdgesScanned int64
	// LaneEdges is Σ over lanes of the edges an independent per-source
	// run would have traversed (popcount-weighted scans). It is the
	// aggregate-TEPS numerator comparable against the sum of individual
	// runs; LaneEdges/EdgesScanned is the sharing factor the batch won.
	// Hybrid sweeps weight bottom-up entries by the lanes still seeking
	// a parent when the entry was examined.
	LaneEdges int64
	Elapsed   time.Duration
	// Directions records the per-level expansion choice of a hybrid
	// sweep (RunHybrid*); nil for plain sweeps.
	Directions []core.Direction
}

// Depth returns lane k's BFS depth of v, or -1 if unreached.
func (r *Result) Depth(lane int, v uint32) int32 {
	dp := r.DP[lane][v]
	if dp == core.INF {
		return -1
	}
	return int32(uint32(dp))
}

// Parent returns lane k's BFS parent of v, or -1 if unreached.
func (r *Result) Parent(lane int, v uint32) int64 {
	dp := r.DP[lane][v]
	if dp == core.INF {
		return -1
	}
	return int64(dp >> 32)
}

// ErrDepthOverflow reports a lane whose BFS depth does not fit the
// caller's compact depth encoding (DepthsInto).
var ErrDepthOverflow = errors.New("msbfs: lane depth exceeds encoding range")

// DepthsInto extracts one lane's depth array into dst as compact uint16
// values, writing unreached for unvisited vertices. It is the handoff
// from a sweep's packed parent/depth arrays to consumers that only need
// distances — notably the landmark-labeling index builder, which keeps
// 2-byte distances per (landmark, vertex) pair and releases the 8-byte
// DP arrays as soon as a batch is extracted. Returns the lane's maximum
// reached depth; a depth >= unreached cannot be represented and yields
// ErrDepthOverflow. len(dst) must equal the vertex count of the sweep.
func (r *Result) DepthsInto(lane int, dst []uint16, unreached uint16) (uint32, error) {
	dp := r.DP[lane]
	if len(dst) != len(dp) {
		return 0, fmt.Errorf("msbfs: DepthsInto dst has %d entries, lane has %d", len(dst), len(dp))
	}
	var maxDepth uint32
	for v, x := range dp {
		if x == core.INF {
			dst[v] = unreached
			continue
		}
		d := uint32(x)
		if d >= uint32(unreached) {
			return 0, fmt.Errorf("%w: depth %d at vertex %d (limit %d)", ErrDepthOverflow, d, v, unreached)
		}
		if d > maxDepth {
			maxDepth = d
		}
		dst[v] = uint16(d)
	}
	return maxDepth, nil
}

// AggregateMTEPS is the batch throughput in millions of per-lane
// equivalent edges per second — directly comparable to summing the
// MTEPS of len(Sources) independent runs.
func (r *Result) AggregateMTEPS() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.LaneEdges) / s / 1e6
}

// workerAcc is one scan worker's private accumulator.
type workerAcc struct {
	touched      []uint32 // vertices this worker first-discovered this level
	edgesScanned int64
	laneEdges    int64
	_            [4]uint64 // pad against false sharing of the counters
}

// Run performs one multi-source sweep from sources (1..MaxLanes of
// them; duplicates allowed — duplicate lanes produce identical arrays).
// workers <= 0 means GOMAXPROCS.
func Run(g *graph.Graph, sources []uint32, workers int) (*Result, error) {
	return RunContext(context.Background(), g, sources, workers)
}

// RunContext is Run under a context, checked between levels: like the
// single-source engine, cancellation aborts within one level and
// returns ctx.Err().
func RunContext(ctx context.Context, g *graph.Graph, sources []uint32, workers int) (*Result, error) {
	lanes := len(sources)
	if lanes == 0 {
		return nil, errors.New("msbfs: empty source batch")
	}
	if lanes > MaxLanes {
		return nil, fmt.Errorf("msbfs: %d sources exceeds MaxLanes (%d)", lanes, MaxLanes)
	}
	n := g.NumVertices()
	for k, s := range sources {
		if int(s) >= n {
			return nil, fmt.Errorf("msbfs: source %d (lane %d) out of range", s, k)
		}
	}
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	start := time.Now()
	seen := make([]uint64, n)
	visit := make([]uint64, n)
	visitNext := make([]uint64, n)
	dp := make([][]uint64, lanes)
	for k := range dp {
		dp[k] = make([]uint64, n)
	}
	if err := par.For(workers, n, func(lo, hi int) {
		for _, lane := range dp {
			s := lane[lo:hi]
			for i := range s {
				s[i] = core.INF
			}
		}
	}); err != nil {
		return nil, err
	}

	frontier := make([]uint32, 0, lanes)
	for k, s := range sources {
		if seen[s] == 0 {
			frontier = append(frontier, s)
		}
		bit := uint64(1) << uint(k)
		seen[s] |= bit
		visit[s] |= bit
		dp[k][s] = core.PackDP(s, 0)
	}

	ws := make([]workerAcc, workers)
	next := make([]uint32, 0, 1024)
	res := &Result{Sources: append([]uint32(nil), sources...), DP: dp}

	for depth := uint32(1); len(frontier) > 0; depth++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Steps = int(depth)

		// Scan: expand every active vertex once for all its lanes.
		// seen is frozen for the whole level, so the unsynchronized
		// reads below are safe; visitNext is claimed by atomic OR.
		var cursor atomic.Int64
		f := frontier
		if err := par.Run(workers, func(w int) {
			acc := &ws[w]
			acc.touched = acc.touched[:0]
			var es, le int64
			for {
				base := int(cursor.Add(scanChunk)) - scanChunk
				if base >= len(f) {
					break
				}
				for _, v := range f[base:min(base+scanChunk, len(f))] {
					mask := visit[v]
					adj := g.Neighbors1(v)
					es += int64(len(adj))
					le += int64(bits.OnesCount64(mask)) * int64(len(adj))
					pdp := core.PackDP(v, depth)
					for _, u := range adj {
						d := mask &^ seen[u]
						if d == 0 {
							continue
						}
						old := orUint64(&visitNext[u], d)
						if old == 0 {
							acc.touched = append(acc.touched, u)
						}
						// Bits this worker transitioned 0→1: it is the
						// unique writer of those lanes' DP cells.
						for b := d &^ old; b != 0; b &= b - 1 {
							dp[bits.TrailingZeros64(b)][u] = pdp
						}
					}
				}
			}
			acc.edgesScanned, acc.laneEdges = es, le
		}); err != nil {
			return nil, err
		}
		for w := range ws {
			res.EdgesScanned += ws[w].edgesScanned
			res.LaneEdges += ws[w].laneEdges
		}

		// Retire the old frontier's visit masks, then commit the new
		// one: each worker owns exactly the vertices it discovered
		// (first-setter), so the commit writes are disjoint.
		if err := par.For(workers, len(frontier), func(lo, hi int) {
			for _, v := range frontier[lo:hi] {
				visit[v] = 0
			}
		}); err != nil {
			return nil, err
		}
		if err := par.Run(workers, func(w int) {
			for _, v := range ws[w].touched {
				nv := visitNext[v]
				visitNext[v] = 0
				seen[v] |= nv
				visit[v] = nv
			}
		}); err != nil {
			return nil, err
		}

		next = next[:0]
		for w := range ws {
			next = append(next, ws[w].touched...)
		}
		frontier, next = next, frontier
	}

	res.Elapsed = time.Since(start)
	return res, nil
}

// orUint64 atomically ORs v into *p and returns the previous value
// (CAS loop; sync/atomic.OrUint64 needs go 1.23 and go.mod pins 1.22).
func orUint64(p *uint64, v uint64) uint64 {
	for {
		old := atomic.LoadUint64(p)
		if old&v == v {
			return old
		}
		if atomic.CompareAndSwapUint64(p, old, old|v) {
			return old
		}
	}
}
