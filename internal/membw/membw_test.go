package membw

import (
	"testing"
	"time"
)

// quick returns fast, tiny measurement options for tests.
func quick() Options {
	return Options{
		BufferBytes: 8 << 20,
		CachedBytes: 64 << 10,
		Workers:     2,
		MinDuration: 10 * time.Millisecond,
	}
}

func TestMeasureSane(t *testing.T) {
	r := Measure(quick())
	if r.SeqReadGBs <= 0 || r.SeqWriteGBs <= 0 || r.CachedReadGBs <= 0 {
		t.Fatalf("non-positive bandwidth: %+v", r)
	}
	if r.RandomReadNS <= 0 {
		t.Fatalf("non-positive latency: %+v", r)
	}
	// Plausibility: any machine reads under 10 TB/s and over 10 MB/s.
	for name, v := range map[string]float64{
		"read": r.SeqReadGBs, "write": r.SeqWriteGBs, "cached": r.CachedReadGBs,
	} {
		if v < 0.01 || v > 10000 {
			t.Errorf("%s bandwidth implausible: %v GB/s", name, v)
		}
	}
	// Random dependent reads are far slower than streaming: the
	// per-element stream cost at SeqReadGBs is under a nanosecond on any
	// modern machine, while a dependent miss is tens of ns.
	if r.RandomReadNS < 1 {
		t.Errorf("random-read latency %v ns implausibly low", r.RandomReadNS)
	}
}

func TestCachedFasterThanDRAM(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts cached/DRAM bandwidth ratios")
	}
	r := Measure(quick())
	// A 64 KiB working set should stream at least as fast as an 8 MiB
	// one; allow slack for timer noise on busy CI hosts.
	if r.CachedReadGBs < 0.5*r.SeqReadGBs {
		t.Errorf("cached read %v GB/s slower than DRAM read %v GB/s",
			r.CachedReadGBs, r.SeqReadGBs)
	}
}

func TestDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.BufferBytes != 256<<20 || o.CachedBytes != 128<<10 {
		t.Errorf("size defaults: %+v", o)
	}
	if o.Workers < 1 || o.MinDuration <= 0 {
		t.Errorf("defaults: %+v", o)
	}
}
