//go:build race

package membw

const raceEnabled = true
