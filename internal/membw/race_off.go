//go:build !race

package membw

// raceEnabled reports whether the binary was built with the race
// detector, whose per-access instrumentation distorts bandwidth ratios.
const raceEnabled = false
