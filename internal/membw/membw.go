// Package membw measures this host's achievable memory bandwidths with
// Molka-style streaming microbenchmarks — the methodology behind the
// paper's Table I ("Benchmarking efforts such as the work by Molka et
// al. have indicated the read and write bandwidths..."). The results
// calibrate a model.Platform for hosts other than the paper's Nehalem.
package membw

import (
	"time"

	"fastbfs/internal/par"
	"fastbfs/internal/xrand"
)

// Result holds measured characteristics in the model's units (GB/s =
// 1e9 bytes per second).
type Result struct {
	// SeqReadGBs is the streaming read bandwidth over a buffer far
	// larger than the LLC.
	SeqReadGBs float64
	// SeqWriteGBs is the streaming write bandwidth.
	SeqWriteGBs float64
	// CachedReadGBs is the streaming read bandwidth over an L2-sized
	// buffer (the LLC/L2 path proxy).
	CachedReadGBs float64
	// RandomReadNS is the average dependent random-read latency over a
	// DRAM-resident buffer — the latency BFS hides with prefetch and
	// rearrangement.
	RandomReadNS float64
}

// Options sizes the measurement.
type Options struct {
	// BufferBytes is the DRAM working-set size; default 256 MiB.
	BufferBytes int
	// CachedBytes is the cache-resident working-set size; default 128 KiB.
	CachedBytes int
	// Workers streams in parallel for the bandwidth tests; default all.
	Workers int
	// MinDuration per measurement; default 100 ms.
	MinDuration time.Duration
}

func (o Options) withDefaults() Options {
	if o.BufferBytes == 0 {
		o.BufferBytes = 256 << 20
	}
	if o.CachedBytes == 0 {
		o.CachedBytes = 128 << 10
	}
	if o.Workers == 0 {
		o.Workers = par.DefaultWorkers()
	}
	if o.MinDuration == 0 {
		o.MinDuration = 100 * time.Millisecond
	}
	return o
}

// Measure runs all microbenchmarks. It allocates O(BufferBytes).
func Measure(o Options) Result {
	o = o.withDefaults()
	words := o.BufferBytes / 8
	buf := make([]uint64, words)
	for i := range buf {
		buf[i] = uint64(i)
	}
	r := Result{
		SeqReadGBs:  streamRead(buf, o),
		SeqWriteGBs: streamWrite(buf, o),
	}
	small := make([]uint64, o.CachedBytes/8)
	for i := range small {
		small[i] = uint64(i)
	}
	r.CachedReadGBs = streamRead(small, o)
	r.RandomReadNS = pointerChase(buf, o)
	return r
}

// sink defeats dead-code elimination across the measurement loops.
var sink uint64

// mustPar re-raises a recovered worker panic on the measuring goroutine;
// the measurement APIs have no error channel.
func mustPar(err error) {
	if err != nil {
		panic(err)
	}
}

func streamRead(buf []uint64, o Options) float64 {
	var bytes int64
	start := time.Now()
	for time.Since(start) < o.MinDuration {
		sums := make([]uint64, o.Workers)
		mustPar(par.Run(o.Workers, func(w int) {
			lo, hi := par.Range(len(buf), w, o.Workers)
			var s uint64
			seg := buf[lo:hi]
			for i := 0; i+8 <= len(seg); i += 8 {
				s += seg[i] + seg[i+1] + seg[i+2] + seg[i+3] +
					seg[i+4] + seg[i+5] + seg[i+6] + seg[i+7]
			}
			sums[w] = s
		}))
		for _, s := range sums {
			sink += s
		}
		bytes += int64(len(buf)) * 8
	}
	return float64(bytes) / time.Since(start).Seconds() / 1e9
}

func streamWrite(buf []uint64, o Options) float64 {
	var bytes int64
	start := time.Now()
	for pass := uint64(1); time.Since(start) < o.MinDuration; pass++ {
		mustPar(par.Run(o.Workers, func(w int) {
			lo, hi := par.Range(len(buf), w, o.Workers)
			seg := buf[lo:hi]
			for i := range seg {
				seg[i] = pass
			}
		}))
		bytes += int64(len(buf)) * 8
	}
	return float64(bytes) / time.Since(start).Seconds() / 1e9
}

// pointerChase measures dependent random-read latency by walking a
// random cycle through the buffer.
func pointerChase(buf []uint64, o Options) float64 {
	// Build a random permutation cycle over a stride-spread subset so
	// hardware prefetchers cannot follow it.
	n := len(buf)
	if n > 1<<22 {
		n = 1 << 22
	}
	perm := xrand.New(42).Perm(n)
	for i := 0; i < n; i++ {
		next := perm[(i+1)%n]
		buf[perm[i]] = uint64(next)
	}
	var hops int64
	idx := uint64(perm[0])
	start := time.Now()
	for time.Since(start) < o.MinDuration {
		for k := 0; k < 4096; k++ {
			idx = buf[idx]
		}
		hops += 4096
	}
	sink += idx
	return float64(time.Since(start).Nanoseconds()) / float64(hops)
}
