package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"fastbfs/internal/numa"
)

func sample() *RunTrace {
	rt := &RunTrace{}
	rt.Add(StepMetrics{Step: 1, Frontier: 1, Edges: 8, NewVertices: 7, PBVEntries: 10,
		Phase1: time.Millisecond, Phase2: 2 * time.Millisecond, Rearr: time.Millisecond / 2})
	rt.Add(StepMetrics{Step: 2, Frontier: 7, Edges: 56, NewVertices: 40, PBVEntries: 60,
		Phase1: 3 * time.Millisecond, Phase2: 4 * time.Millisecond})
	rt.Finish()
	return rt
}

func TestFinishAggregates(t *testing.T) {
	rt := sample()
	if rt.TotalEdges != 64 {
		t.Errorf("TotalEdges = %d", rt.TotalEdges)
	}
	if rt.TotalVertices != 47 {
		t.Errorf("TotalVertices = %d", rt.TotalVertices)
	}
	if rt.TotalPBV != 70 {
		t.Errorf("TotalPBV = %d", rt.TotalPBV)
	}
	if rt.MaxFrontier != 7 {
		t.Errorf("MaxFrontier = %d", rt.MaxFrontier)
	}
	if rt.Depth() != 2 {
		t.Errorf("Depth = %d", rt.Depth())
	}
	if rt.TimePhase1 != 4*time.Millisecond || rt.TimePhase2 != 6*time.Millisecond {
		t.Errorf("phase times wrong: %v %v", rt.TimePhase1, rt.TimePhase2)
	}
	if rt.String() == "" {
		t.Error("empty String")
	}
}

func TestAvgTraversedDegree(t *testing.T) {
	rt := sample()
	want := 64.0 / 47.0
	if got := rt.AvgTraversedDegree(); got != want {
		t.Errorf("rho' = %v, want %v", got, want)
	}
	empty := &RunTrace{}
	empty.Finish()
	if empty.AvgTraversedDegree() != 0 {
		t.Error("empty trace rho' != 0")
	}
}

func TestFinishIdempotent(t *testing.T) {
	rt := sample()
	e1 := rt.TotalEdges
	rt.Finish()
	if rt.TotalEdges != e1 {
		t.Error("Finish is not idempotent")
	}
}

func TestAlphaFallback(t *testing.T) {
	rt := &RunTrace{}
	if got := rt.Alpha(numa.StructAdj, 2); got != 0.5 {
		t.Errorf("no-traffic Alpha = %v, want 0.5", got)
	}
	rt.Traffic = numa.NewTraffic(2)
	rt.Traffic.Add(numa.StructAdj, 0, 0, 90)
	rt.Traffic.Add(numa.StructAdj, 1, 0, 10)
	if got := rt.Alpha(numa.StructAdj, 2); got != 0.9 {
		t.Errorf("Alpha = %v, want 0.9", got)
	}
}

func TestWriteCSV(t *testing.T) {
	rt := sample()
	var buf bytes.Buffer
	if err := rt.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 steps
		t.Fatalf("CSV lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "step,direction,frontier,edges") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,T,1,8,7,10,") {
		t.Errorf("first row wrong: %q", lines[1])
	}
}

func TestPhaseCyclesPerEdge(t *testing.T) {
	rt := sample()
	// 4ms over 64 edges at 1 GHz = 62500 cycles/edge for Phase-I.
	p1, p2, r := rt.PhaseCyclesPerEdge(1.0)
	if p1 != 62500 {
		t.Errorf("p1 = %v", p1)
	}
	if p2 != 93750 {
		t.Errorf("p2 = %v", p2)
	}
	if r != 7812.5 {
		t.Errorf("rearr = %v", r)
	}
	empty := &RunTrace{}
	empty.Finish()
	if a, b, c := empty.PhaseCyclesPerEdge(1.0); a != 0 || b != 0 || c != 0 {
		t.Error("empty trace produced nonzero cycles")
	}
}
