// Package trace collects per-step and per-run metrics from instrumented
// traversals: frontier sizes, traversed edges, bin occupancy, phase wall
// times, the socket-access fractions (α) consumed by the analytical
// model, and byte counts per the paper's Appendix-A accounting.
package trace

import (
	"fmt"
	"time"

	"fastbfs/internal/numa"
)

// StepMetrics records one BFS step (one frontier expansion).
type StepMetrics struct {
	Step        int
	Frontier    int64 // |BV^C| entries processed this step
	Edges       int64 // adjacency entries examined
	NewVertices int64 // vertices assigned a depth this step
	PBVEntries  int64 // bin entries written in Phase-I (incl. markers)
	SharedBins  int   // bins split across sockets by the division
	DupAppends  int64 // duplicate next-frontier appends (benign races)
	BottomUp    bool  // level expanded bottom-up (direction-optimizing)

	Phase1, Phase2, Rearr time.Duration

	// Per-step access skews (the paper's α is per step: "a property of
	// the boundary states for a given step"). Zero when accounting is
	// off.
	AlphaAdj, AlphaPBV, AlphaDP float64

	// MaxSocketShare is the largest fraction of this step's Phase-II
	// entries assigned to one socket: 1/N_S when perfectly balanced
	// (the load-balanced scheme by construction), up to 1.0 when the
	// static scheme leaves all work on one socket (the paper's stress
	// case). Zero for single-phase runs or when accounting is off.
	MaxSocketShare float64
}

// RunTrace aggregates a whole traversal.
type RunTrace struct {
	Steps   []StepMetrics
	Traffic *numa.Traffic // nil when socket accounting is off

	// Totals, filled by Finish.
	TotalEdges    int64
	TotalVertices int64
	TotalPBV      int64
	TotalDup      int64
	MaxFrontier   int64
	TimePhase1    time.Duration
	TimePhase2    time.Duration
	TimeRearr     time.Duration
}

// Add appends one step's metrics.
func (rt *RunTrace) Add(m StepMetrics) { rt.Steps = append(rt.Steps, m) }

// Finish computes the aggregate fields from the recorded steps.
func (rt *RunTrace) Finish() {
	rt.TotalEdges, rt.TotalVertices, rt.TotalPBV, rt.TotalDup, rt.MaxFrontier = 0, 0, 0, 0, 0
	rt.TimePhase1, rt.TimePhase2, rt.TimeRearr = 0, 0, 0
	for _, s := range rt.Steps {
		rt.TotalEdges += s.Edges
		rt.TotalVertices += s.NewVertices
		rt.TotalPBV += s.PBVEntries
		rt.TotalDup += s.DupAppends
		if s.Frontier > rt.MaxFrontier {
			rt.MaxFrontier = s.Frontier
		}
		rt.TimePhase1 += s.Phase1
		rt.TimePhase2 += s.Phase2
		rt.TimeRearr += s.Rearr
	}
}

// Depth returns the number of steps (the paper's D).
func (rt *RunTrace) Depth() int { return len(rt.Steps) }

// AvgTraversedDegree returns ρ' = |E'| / |V'|.
func (rt *RunTrace) AvgTraversedDegree() float64 {
	if rt.TotalVertices == 0 {
		return 0
	}
	return float64(rt.TotalEdges) / float64(rt.TotalVertices)
}

// Alpha returns the measured run-aggregate α for structure st, or
// 1/sockets if no traffic was recorded. Prefer WeightedAlpha for model
// inputs: aggregating over the run averages away per-step skew (a
// bipartite stress graph alternates which socket is hot, so the
// aggregate is balanced even though every individual step is maximally
// skewed).
func (rt *RunTrace) Alpha(st numa.Structure, sockets int) float64 {
	if rt.Traffic == nil {
		return 1 / float64(sockets)
	}
	return rt.Traffic.Alpha(st)
}

// WeightedAlpha returns the edge-weighted mean of the per-step α values
// for structure st — the skew the paper's per-step model sees. Falls
// back to the run aggregate when steps carry no per-step skews.
func (rt *RunTrace) WeightedAlpha(st numa.Structure, sockets int) float64 {
	var num, den float64
	for _, s := range rt.Steps {
		var a float64
		switch st {
		case numa.StructAdj:
			a = s.AlphaAdj
		case numa.StructPBV:
			a = s.AlphaPBV
		case numa.StructDP:
			a = s.AlphaDP
		}
		if a <= 0 || s.Edges == 0 {
			continue
		}
		num += a * float64(s.Edges)
		den += float64(s.Edges)
	}
	if den == 0 {
		return rt.Alpha(st, sockets)
	}
	return num / den
}

// String renders a compact per-run summary.
func (rt *RunTrace) String() string {
	return fmt.Sprintf("steps=%d V'=%d E'=%d rho'=%.2f maxFrontier=%d dup=%d t1=%v t2=%v tR=%v",
		rt.Depth(), rt.TotalVertices, rt.TotalEdges, rt.AvgTraversedDegree(),
		rt.MaxFrontier, rt.TotalDup, rt.TimePhase1, rt.TimePhase2, rt.TimeRearr)
}

// PhaseCyclesPerEdge converts the measured phase times to cycles per
// traversed edge at the given core frequency (GHz), the unit of the
// paper's Figure 8.
func (rt *RunTrace) PhaseCyclesPerEdge(freqGHz float64) (p1, p2, rearr float64) {
	if rt.TotalEdges == 0 {
		return 0, 0, 0
	}
	f := freqGHz / float64(rt.TotalEdges) // cycles per ns per edge
	p1 = float64(rt.TimePhase1.Nanoseconds()) * f
	p2 = float64(rt.TimePhase2.Nanoseconds()) * f
	rearr = float64(rt.TimeRearr.Nanoseconds()) * f
	return
}
