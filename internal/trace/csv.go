package trace

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV exports the per-step metrics as CSV for external plotting —
// the frontier-shape and phase-time series behind the paper's figures.
func (rt *RunTrace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"step", "direction", "frontier", "edges", "new_vertices", "pbv_entries",
		"shared_bins", "phase1_ns", "phase2_ns", "rearrange_ns",
		"alpha_adj", "alpha_pbv", "alpha_dp", "max_socket_share",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range rt.Steps {
		dir := "T"
		if s.BottomUp {
			dir = "B"
		}
		rec := []string{
			fmt.Sprint(s.Step),
			dir,
			fmt.Sprint(s.Frontier),
			fmt.Sprint(s.Edges),
			fmt.Sprint(s.NewVertices),
			fmt.Sprint(s.PBVEntries),
			fmt.Sprint(s.SharedBins),
			fmt.Sprint(s.Phase1.Nanoseconds()),
			fmt.Sprint(s.Phase2.Nanoseconds()),
			fmt.Sprint(s.Rearr.Nanoseconds()),
			fmt.Sprintf("%.4f", s.AlphaAdj),
			fmt.Sprintf("%.4f", s.AlphaPBV),
			fmt.Sprintf("%.4f", s.AlphaDP),
			fmt.Sprintf("%.4f", s.MaxSocketShare),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
