// Package bitmap implements the paper's VIS structures: the auxiliary
// "visited" arrays that filter main-memory accesses to the depth/parent
// array, in every variant compared in Figure 4.
//
//   - Bitmap: one bit per vertex, updated with plain (non LOCK-prefixed)
//     loads and stores — the paper's atomic-free scheme. A concurrent
//     store may drop a sibling bit within the same word; callers repair
//     this benign race by re-checking the DP entry (paper §III-A).
//   - AtomicBitmap: one bit per vertex updated with Compare-And-Swap —
//     the Agarwal et al. baseline the paper compares against.
//   - ByteMap: one byte per vertex with plain stores. Byte stores cannot
//     clobber neighbors, but the structure is 8x larger (footnote 2 of
//     the paper: usable when |V| <= |C|).
//
// Partition arithmetic for the cache-resident partitioned variant
// (N_VIS) lives in Partitions.
package bitmap

import "sync/atomic"

// VIS is the operation set the traversal engine needs from a visited
// structure. TrySet marks v visited and reports whether the caller may
// proceed to the DP check: implementations return false only when the
// vertex was definitely already visited.
type VIS interface {
	// TrySet marks v. The return value is false if v was definitely
	// visited before this call; true means the caller must verify
	// against DP (the atomic-free variants can return true for a vertex
	// that a racing thread is concurrently visiting).
	TrySet(v uint32) bool
	// Reset clears all bits for a new traversal.
	Reset()
	// SizeBytes reports the memory footprint, which drives the
	// cache-partitioning decision.
	SizeBytes() int64
}

// Bitmap is the atomic-free bit-per-vertex VIS. Loads and stores use
// sync/atomic Load/Store on 32-bit words, which compile to plain MOVs on
// x86-64 — the Go-visible equivalent of the paper's unlocked accesses —
// keeping the race-detector silent while preserving the algorithm's
// benign lost-update window within a word.
type Bitmap struct {
	words []uint32
}

// NewBitmap returns a Bitmap covering n vertices.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint32, (n+31)/32)}
}

// TrySet implements VIS with the paper's Figure 2(b) protocol.
func (b *Bitmap) TrySet(v uint32) bool {
	w := v >> 5
	bit := uint32(1) << (v & 31)
	old := atomic.LoadUint32(&b.words[w])
	if old&bit != 0 {
		return false // definitely visited
	}
	// Plain store: may drop a bit a racing thread set in the same word
	// (the paper's scenario (2)); the DP guard repairs it.
	atomic.StoreUint32(&b.words[w], old|bit)
	return true
}

// Get reports whether v's bit is set. A false result may be stale under
// concurrency (benign, per the VIS protocol).
func (b *Bitmap) Get(v uint32) bool {
	return atomic.LoadUint32(&b.words[v>>5])&(1<<(v&31)) != 0
}

// Reset clears the bitmap.
func (b *Bitmap) Reset() { clearWords(b.words) }

// SizeBytes implements VIS.
func (b *Bitmap) SizeBytes() int64 { return int64(len(b.words)) * 4 }

// Words exposes the raw word array for bulk operations that manage
// their own synchronization: the bottom-up kernel reads frontier words
// directly in its inner loop and writes next-frontier words it owns
// exclusively (worker vertex ranges are word-aligned).
func (b *Bitmap) Words() []uint32 { return b.words }

// Or sets v's bit with a CAS loop, safe against concurrent Or calls on
// the same word. It is the frontier→bitmap conversion primitive: the
// per-worker next-frontier arrays hold arbitrary vertex ids, so two
// workers can land in one word. (TrySet's plain store is NOT safe here —
// a dropped frontier bit would lose a vertex, not just duplicate work.)
func (b *Bitmap) Or(v uint32) {
	w := &b.words[v>>5]
	bit := uint32(1) << (v & 31)
	for {
		old := atomic.LoadUint32(w)
		if old&bit != 0 {
			return
		}
		if atomic.CompareAndSwapUint32(w, old, old|bit) {
			return
		}
	}
}

// ClearWords zeroes the word range [lo, hi) — the per-worker share of a
// bulk clear (each worker clears only words it owns).
func (b *Bitmap) ClearWords(lo, hi int) {
	w := b.words[lo:hi]
	for i := range w {
		w[i] = 0
	}
}

// NumWords returns the length of the word array (32 vertices per word).
func (b *Bitmap) NumWords() int { return len(b.words) }

// AtomicBitmap is the CAS-based bit-per-vertex VIS used as the
// atomic-operations baseline (Figure 4's "A. Vis" series). TrySet is
// exact: it returns true for exactly one caller per vertex.
type AtomicBitmap struct {
	words []uint32
}

// NewAtomicBitmap returns an AtomicBitmap covering n vertices.
func NewAtomicBitmap(n int) *AtomicBitmap {
	return &AtomicBitmap{words: make([]uint32, (n+31)/32)}
}

// TrySet sets v's bit with a CAS loop (LOCK CMPXCHG on x86) and reports
// whether this call was the one that set it.
func (a *AtomicBitmap) TrySet(v uint32) bool {
	w := v >> 5
	bit := uint32(1) << (v & 31)
	for {
		old := atomic.LoadUint32(&a.words[w])
		if old&bit != 0 {
			return false
		}
		if atomic.CompareAndSwapUint32(&a.words[w], old, old|bit) {
			return true
		}
	}
}

// Get reports whether v's bit is set.
func (a *AtomicBitmap) Get(v uint32) bool {
	return atomic.LoadUint32(&a.words[v>>5])&(1<<(v&31)) != 0
}

// Reset clears the bitmap.
func (a *AtomicBitmap) Reset() { clearWords(a.words) }

// SizeBytes implements VIS.
func (a *AtomicBitmap) SizeBytes() int64 { return int64(len(a.words)) * 4 }

// ByteMap is the byte-per-vertex atomic-free VIS (paper footnote 2).
// Byte-granularity stores are architecturally atomic, so no sibling bits
// can be lost; the only race is two threads claiming the same vertex,
// repaired by the DP guard as usual.
type ByteMap struct {
	bytes []uint32 // packed 4 flags per word to keep atomic ops available
}

// NewByteMap returns a ByteMap covering n vertices.
func NewByteMap(n int) *ByteMap {
	return &ByteMap{bytes: make([]uint32, (n+3)/4)}
}

// TrySet implements VIS with one byte per vertex.
func (m *ByteMap) TrySet(v uint32) bool {
	w := v >> 2
	shift := (v & 3) * 8
	old := atomic.LoadUint32(&m.bytes[w])
	if old&(0xff<<shift) != 0 {
		return false
	}
	atomic.StoreUint32(&m.bytes[w], old|(1<<shift))
	return true
}

// Get reports whether v's byte is set.
func (m *ByteMap) Get(v uint32) bool {
	return atomic.LoadUint32(&m.bytes[v>>2])&(0xff<<((v&3)*8)) != 0
}

// Reset clears the map.
func (m *ByteMap) Reset() { clearWords(m.bytes) }

// SizeBytes implements VIS.
func (m *ByteMap) SizeBytes() int64 { return int64(len(m.bytes)) * 4 }

func clearWords(w []uint32) {
	for i := range w {
		w[i] = 0
	}
}

// Partitions returns N_VIS, the number of vertex-range partitions needed
// for the bit-structure of numVertices vertices to stay resident in a
// last-level cache of llcBytes while leaving half the cache for the other
// structures: N_VIS = ceil(|V| / (4*|C|)), at least 1 (paper §III-A).
func Partitions(numVertices int, llcBytes int64) int {
	if llcBytes <= 0 {
		return 1
	}
	visBytes := (int64(numVertices) + 7) / 8
	half := llcBytes / 2
	if half == 0 {
		half = 1
	}
	n := int((visBytes + half - 1) / half)
	if n < 1 {
		n = 1
	}
	return n
}

// NextPow2 returns the smallest power of two >= x (x >= 1).
func NextPow2(x int) int {
	if x < 1 {
		return 1
	}
	p := 1
	for p < x {
		p <<= 1
	}
	return p
}

// Log2 returns floor(log2(x)) for x >= 1.
func Log2(x int) int {
	l := 0
	for x > 1 {
		x >>= 1
		l++
	}
	return l
}
