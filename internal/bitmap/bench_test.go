package bitmap

import "testing"

// The VIS probe/update is the per-edge inner operation of Phase-II; the
// paper's Figure 2 contrast (atomic vs atomic-free) in microcosm.

func benchTrySet(b *testing.B, v VIS) {
	const n = 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.TrySet(uint32(i) & (n - 1))
	}
}

func BenchmarkVISUpdateBitmap(b *testing.B) { benchTrySet(b, NewBitmap(1<<20)) }

func BenchmarkVISUpdateAtomic(b *testing.B) { benchTrySet(b, NewAtomicBitmap(1<<20)) }

func BenchmarkVISUpdateByte(b *testing.B) { benchTrySet(b, NewByteMap(1<<20)) }

func BenchmarkVISReset(b *testing.B) {
	v := NewBitmap(1 << 20)
	b.SetBytes(1 << 17) // |V|/8 bytes cleared per op
	for i := 0; i < b.N; i++ {
		v.Reset()
	}
}
