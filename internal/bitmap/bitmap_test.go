package bitmap

import (
	"sync"
	"testing"
	"testing/quick"
)

func kinds(n int) map[string]VIS {
	return map[string]VIS{
		"bitmap": NewBitmap(n),
		"atomic": NewAtomicBitmap(n),
		"byte":   NewByteMap(n),
	}
}

func TestTrySetSerial(t *testing.T) {
	const n = 1000
	for name, v := range kinds(n) {
		for i := uint32(0); i < n; i++ {
			if !v.TrySet(i) {
				t.Fatalf("%s: first TrySet(%d) = false", name, i)
			}
		}
		for i := uint32(0); i < n; i++ {
			if v.TrySet(i) {
				t.Fatalf("%s: second TrySet(%d) = true", name, i)
			}
		}
	}
}

func TestReset(t *testing.T) {
	const n = 257
	for name, v := range kinds(n) {
		for i := uint32(0); i < n; i++ {
			v.TrySet(i)
		}
		v.Reset()
		for i := uint32(0); i < n; i++ {
			if !v.TrySet(i) {
				t.Fatalf("%s: TrySet(%d) false after Reset", name, i)
			}
		}
	}
}

func TestGetMatchesTrySet(t *testing.T) {
	b := NewBitmap(500)
	a := NewAtomicBitmap(500)
	m := NewByteMap(500)
	for i := uint32(0); i < 500; i += 3 {
		b.TrySet(i)
		a.TrySet(i)
		m.TrySet(i)
	}
	for i := uint32(0); i < 500; i++ {
		want := i%3 == 0
		if b.Get(i) != want {
			t.Fatalf("Bitmap.Get(%d) = %v", i, !want)
		}
		if a.Get(i) != want {
			t.Fatalf("AtomicBitmap.Get(%d) = %v", i, !want)
		}
		if m.Get(i) != want {
			t.Fatalf("ByteMap.Get(%d) = %v", i, !want)
		}
	}
}

// TestAtomicExactlyOnce: the CAS bitmap must admit exactly one winner
// per vertex under contention.
func TestAtomicExactlyOnce(t *testing.T) {
	const n, goroutines = 4096, 8
	a := NewAtomicBitmap(n)
	wins := make([]int32, n)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint32(0); i < n; i++ {
				if a.TrySet(i) {
					// Winner; count without atomics is fine since only
					// one goroutine can win per index.
					wins[i]++
				}
			}
		}()
	}
	wg.Wait()
	for i, w := range wins {
		if w != 1 {
			t.Fatalf("vertex %d won %d times", i, w)
		}
	}
}

// TestBitmapEventuallySet: the atomic-free bitmap may admit several
// "winners" (that is the benign race), but after concurrent setting every
// touched bit must read back set — a bit can never be lost once all
// writers to its word have finished and each write happened-after the
// reads that justified it in a serial sense. We verify the single-writer
// case per word with concurrent writers on different words.
func TestBitmapDisjointWordsConcurrent(t *testing.T) {
	const n = 32 * 64
	b := NewBitmap(n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine owns whole words: no lost updates possible.
			for w := g; w < 64; w += 8 {
				for bit := 0; bit < 32; bit++ {
					b.TrySet(uint32(w*32 + bit))
				}
			}
		}(g)
	}
	wg.Wait()
	for i := uint32(0); i < n; i++ {
		if !b.Get(i) {
			t.Fatalf("bit %d lost despite disjoint words", i)
		}
	}
}

func TestPartitions(t *testing.T) {
	cases := []struct {
		vertices int
		llc      int64
		want     int
	}{
		{1 << 10, 8 << 20, 1},
		{256 << 20, 16 << 20, 4}, // the paper's worked example (§III-A)
		{256 << 20, 8 << 20, 8},  // our Nehalem LLC
		{64 << 20, 8 << 20, 2},   // bit array 8 MB vs half-LLC 4 MB
		{16 << 20, 8 << 20, 1},   // 2 MB VIS fits half of 8 MB LLC
		{1, 8 << 20, 1},          // degenerate
		{1 << 20, 0, 1},          // no cache info: single partition
	}
	for _, c := range cases {
		if got := Partitions(c.vertices, c.llc); got != c.want {
			t.Errorf("Partitions(%d, %d) = %d, want %d", c.vertices, c.llc, got, c.want)
		}
	}
}

func TestPartitionsProperty(t *testing.T) {
	f := func(v32 uint32, llcMB uint8) bool {
		v := int(v32%(1<<28)) + 1
		llc := (int64(llcMB%64) + 1) << 20
		n := Partitions(v, llc)
		if n < 1 {
			return false
		}
		// Each partition's VIS slice must fit in half the LLC.
		perPart := (int64(v)/8 + int64(n) - 1) / int64(n)
		return perPart <= llc/2+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 1024: 10, 1025: 10}
	for in, want := range cases {
		if got := Log2(in); got != want {
			t.Errorf("Log2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	if NewBitmap(64).SizeBytes() != 8 {
		t.Error("Bitmap(64) should be 8 bytes")
	}
	if NewByteMap(64).SizeBytes() != 64 {
		t.Error("ByteMap(64) should be 64 bytes")
	}
	if NewAtomicBitmap(64).SizeBytes() != 8 {
		t.Error("AtomicBitmap(64) should be 8 bytes")
	}
}
