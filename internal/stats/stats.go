// Package stats provides small numeric helpers and fixed-width table
// rendering for the benchmark harness's paper-style reports.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{Header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: 3 significant decimals for
// small magnitudes, thousands-grouped integers for large ones.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case math.IsInf(v, 0):
		return "inf"
	case v == math.Trunc(v) && math.Abs(v) >= 1000:
		return GroupInt(int64(v))
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// GroupInt renders an integer with thousands separators.
func GroupInt(v int64) string {
	s := fmt.Sprintf("%d", v)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, b.String())
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Summary describes a sample of float64 observations.
type Summary struct {
	N              int
	Min, Max, Mean float64
	Median, StdDev float64
}

// Summarize computes summary statistics of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	s.Median = sorted[s.N/2]
	if s.N%2 == 0 {
		s.Median = (sorted[s.N/2-1] + sorted[s.N/2]) / 2
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if s.N > 1 {
		s.StdDev = math.Sqrt(sq / float64(s.N-1))
	}
	return s
}

// GeoMean returns the geometric mean of positive values, 0 otherwise.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// HumanBytes renders a byte count in binary units.
func HumanBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// HumanCount renders a count with M/K suffixes the way the paper's
// tables do (e.g. "61.57 M").
func HumanCount(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.2f B", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.2f M", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1f K", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
