package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", 1.0)
	tab.AddRow("longer-name", 123456.0)
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("missing separator: %q", lines[1])
	}
	// Columns align: the "value" header starts at the same offset in
	// every line.
	col := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][col:], "1.00") {
		t.Errorf("misaligned column:\n%s", s)
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0.1234:     "0.123",
		1.5:        "1.50",
		123.45:     "123.5",
		1234567:    "1,234,567",
		math.NaN(): "nan",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatFloat(math.Inf(1)); got != "inf" {
		t.Errorf("FormatFloat(+inf) = %q", got)
	}
}

func TestGroupInt(t *testing.T) {
	cases := map[int64]string{
		0:        "0",
		999:      "999",
		1000:     "1,000",
		-1234567: "-1,234,567",
	}
	for in, want := range cases {
		if got := GroupInt(in); got != want {
			t.Errorf("GroupInt(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("bounds wrong: %+v", s)
	}
	if s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("center wrong: %+v", s)
	}
	if math.Abs(s.StdDev-1.29099) > 1e-4 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary not zero")
	}
	one := Summarize([]float64{7})
	if one.Median != 7 || one.StdDev != 0 {
		t.Errorf("singleton summary: %+v", one)
	}
}

func TestSummarizeProperty(t *testing.T) {
	f := func(raw []int32) bool {
		xs := make([]float64, len(raw))
		for i, x := range raw {
			xs[i] = float64(x) // bounded magnitudes: the sum cannot overflow
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); g != 4 {
		t.Errorf("GeoMean(2,8) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v", g)
	}
	if g := GeoMean([]float64{1, -1}); g != 0 {
		t.Errorf("GeoMean with negative = %v", g)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("Ratio(6,3)")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio(1,0) should be 0")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512 B",
		8 << 20:   "8.0 MiB",
		256 << 10: "256.0 KiB",
		3 << 30:   "3.0 GiB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestHumanCount(t *testing.T) {
	cases := map[int64]string{
		42:            "42",
		61_570_000:    "61.57 M",
		4_096_000_000: "4.10 B",
		50_000:        "50.0 K",
	}
	for in, want := range cases {
		if got := HumanCount(in); got != want {
			t.Errorf("HumanCount(%d) = %q, want %q", in, got, want)
		}
	}
}
