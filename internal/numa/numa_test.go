package numa

import (
	"testing"
	"testing/quick"
)

func TestTopologyValidation(t *testing.T) {
	if _, err := NewTopology(100, 3, 4); err == nil {
		t.Error("non-power-of-two sockets accepted")
	}
	if _, err := NewTopology(100, 4, 2); err == nil {
		t.Error("workers < sockets accepted")
	}
	if _, err := NewTopology(0, 1, 1); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestHomeSocketCoversAllSockets(t *testing.T) {
	for _, sockets := range []int{1, 2, 4} {
		for _, n := range []int{1, 7, 64, 1000, 1 << 20} {
			topo, err := NewTopology(n, sockets, sockets*2)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[int]bool{}
			step := n/64 + 1
			for v := 0; v < n; v += step {
				s := topo.HomeSocket(uint32(v))
				if s < 0 || s >= sockets {
					t.Fatalf("HomeSocket(%d) = %d with %d sockets", v, s, sockets)
				}
				seen[s] = true
			}
			// The first vertex is always on socket 0; the last on the
			// last non-empty socket.
			if !seen[0] {
				t.Errorf("socket 0 owns nothing (n=%d sockets=%d)", n, sockets)
			}
		}
	}
}

// TestHomeSocketBalance: with |V_NS| rounded to a power of two, the
// socket ranges are contiguous, ordered, and the paper's shift formula
// holds: Socket_Id(v) = v >> log2(|V_NS|).
func TestHomeSocketContiguous(t *testing.T) {
	topo, err := NewTopology(1000, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for v := 0; v < 1000; v++ {
		s := topo.HomeSocket(uint32(v))
		if s < prev {
			t.Fatalf("socket map not monotone at %d", v)
		}
		if s != prev && s != prev+1 {
			t.Fatalf("socket map jumps at %d: %d -> %d", v, prev, s)
		}
		prev = s
		if want := v >> topo.VNSShift(); want < 4 && s != want {
			t.Fatalf("HomeSocket(%d) = %d, shift formula gives %d", v, s, want)
		}
	}
}

func TestSocketOfWorkers(t *testing.T) {
	topo, err := NewTopology(100, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 8; w++ {
		want := 0
		if w >= 4 {
			want = 1
		}
		if got := topo.SocketOf(w); got != want {
			t.Errorf("SocketOf(%d) = %d, want %d", w, got, want)
		}
	}
	lo, hi := topo.WorkersOf(0)
	if lo != 0 || hi != 4 {
		t.Errorf("WorkersOf(0) = [%d,%d), want [0,4)", lo, hi)
	}
	lo, hi = topo.WorkersOf(1)
	if lo != 4 || hi != 8 {
		t.Errorf("WorkersOf(1) = [%d,%d), want [4,8)", lo, hi)
	}
}

// TestWorkersPartition: WorkersOf ranges tile [0, Workers) for any
// worker/socket combination.
func TestWorkersPartition(t *testing.T) {
	f := func(w8, s8 uint8) bool {
		sockets := 1 << (s8 % 3)
		workers := int(w8%32) + sockets
		topo, err := NewTopology(1000, sockets, workers)
		if err != nil {
			return false
		}
		pos := 0
		for s := 0; s < sockets; s++ {
			lo, hi := topo.WorkersOf(s)
			if lo != pos || hi < lo {
				return false
			}
			for w := lo; w < hi; w++ {
				if topo.SocketOf(w) != s {
					return false
				}
			}
			pos = hi
		}
		return pos == workers
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrafficAccounting(t *testing.T) {
	tr := NewTraffic(2)
	tr.Add(StructAdj, 0, 0, 100) // local
	tr.Add(StructAdj, 1, 0, 50)  // remote
	tr.Add(StructDP, 1, 1, 10)   // local
	if tr.Total(StructAdj) != 150 {
		t.Errorf("Total(Adj) = %d", tr.Total(StructAdj))
	}
	if tr.Local(StructAdj) != 100 || tr.Remote(StructAdj) != 50 {
		t.Errorf("local/remote split wrong: %d/%d", tr.Local(StructAdj), tr.Remote(StructAdj))
	}
	if got := tr.RemoteFraction(StructAdj); got != 50.0/150 {
		t.Errorf("RemoteFraction = %v", got)
	}
	// α: socket 0 served 100 of 150 Adj bytes.
	if got := tr.Alpha(StructAdj); got != 100.0/150 {
		t.Errorf("Alpha(Adj) = %v, want 2/3", got)
	}
	// Unused structure: balanced default.
	if got := tr.Alpha(StructPBV); got != 0.5 {
		t.Errorf("Alpha(PBV) = %v, want 0.5", got)
	}
}

func TestTrafficMergeReset(t *testing.T) {
	a, b := NewTraffic(2), NewTraffic(2)
	a.Add(StructVIS, 0, 1, 5)
	b.Add(StructVIS, 1, 1, 7)
	a.Merge(b)
	if a.Total(StructVIS) != 12 {
		t.Errorf("merged total = %d", a.Total(StructVIS))
	}
	if a.Remote(StructVIS) != 5 {
		t.Errorf("merged remote = %d", a.Remote(StructVIS))
	}
	a.Reset()
	if a.Total(StructVIS) != 0 || a.Alpha(StructVIS) != 0.5 {
		t.Error("Reset incomplete")
	}
}

func TestStructureNames(t *testing.T) {
	for _, s := range Structures() {
		if s.String() == "?" {
			t.Errorf("structure %d has no name", s)
		}
	}
}

// TestNoEmptySockets is the regression for the ceil-block bug: worker
// counts like 5 or 6 on 4 sockets must still give every socket at least
// one worker (an empty socket would orphan its bins under the static
// scheme).
func TestNoEmptySockets(t *testing.T) {
	for sockets := 1; sockets <= 8; sockets *= 2 {
		for workers := sockets; workers <= 4*sockets+1; workers++ {
			topo, err := NewTopology(1000, sockets, workers)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < sockets; s++ {
				lo, hi := topo.WorkersOf(s)
				if hi <= lo {
					t.Fatalf("sockets=%d workers=%d: socket %d has no workers [%d,%d)",
						sockets, workers, s, lo, hi)
				}
			}
		}
	}
}
