// Package numa models the multi-socket topology the paper's algorithm is
// designed around. Go offers no thread pinning or NUMA-aware allocation,
// so the topology here is *simulated*: a fixed pool of workers is
// partitioned into socket groups, every major data structure has a
// "home socket" map identical to the paper's
//
//	Socket_Id(v) = v >> log2(|V_NS|),  |V_NS| = 2^ceil(log2(|V|/N_S)),
//
// and an accounting layer charges each access class as local or remote.
// The measured local/remote fractions become the α parameters of the
// analytical model (Eqns IV.3/IV.4), which carries the multi-socket
// performance shape on hosts without real multi-socket hardware.
package numa

import "fmt"

// Topology describes the simulated machine: how many sockets and how the
// worker pool maps onto them.
type Topology struct {
	Sockets int // number of sockets (power of two)
	Workers int // total workers; divided contiguously across sockets
	// vnsShift is log2(|V_NS|): the home socket of vertex v is
	// v >> vnsShift.
	vnsShift uint
	numV     int
}

// NewTopology builds a topology for numVertices vertices. sockets must be
// a power of two >= 1 and workers >= sockets.
func NewTopology(numVertices, sockets, workers int) (*Topology, error) {
	if sockets < 1 || sockets&(sockets-1) != 0 {
		return nil, fmt.Errorf("numa: sockets must be a power of two, got %d", sockets)
	}
	if workers < sockets {
		return nil, fmt.Errorf("numa: workers (%d) < sockets (%d)", workers, sockets)
	}
	if numVertices < 1 {
		return nil, fmt.Errorf("numa: no vertices")
	}
	// |V_NS| = 2^ceil(log2(|V|/N_S)) (paper §III-C(1)).
	per := (numVertices + sockets - 1) / sockets
	shift := uint(0)
	for (1 << shift) < per {
		shift++
	}
	return &Topology{Sockets: sockets, Workers: workers, vnsShift: shift, numV: numVertices}, nil
}

// VNSShift returns log2(|V_NS|).
func (t *Topology) VNSShift() uint { return t.vnsShift }

// HomeSocket returns the socket owning vertex v's slice of Adj, DP and
// VIS.
func (t *Topology) HomeSocket(v uint32) int {
	s := int(v >> t.vnsShift)
	if s >= t.Sockets {
		s = t.Sockets - 1
	}
	return s
}

// SocketOf returns the socket a worker belongs to. Workers are divided
// into contiguous balanced blocks (sizes differ by at most one), so
// every socket owns at least one worker whenever Workers >= Sockets —
// an engine invariant: a worker-less socket would leave its statically
// assigned bins unprocessed.
func (t *Topology) SocketOf(worker int) int {
	q, r := t.Workers/t.Sockets, t.Workers%t.Sockets
	if worker < r*(q+1) {
		return worker / (q + 1)
	}
	return r + (worker-r*(q+1))/q
}

// WorkersOf returns the half-open worker range [lo, hi) of a socket.
func (t *Topology) WorkersOf(socket int) (lo, hi int) {
	q, r := t.Workers/t.Sockets, t.Workers%t.Sockets
	lo = socket*q + min(socket, r)
	hi = lo + q
	if socket < r {
		hi++
	}
	return
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Structure identifies an access class for traffic accounting; the
// classes match the α terms of the analytical model.
type Structure int

// Access classes, one per α term of the model.
const (
	StructAdj Structure = iota // adjacency array reads
	StructBV                   // boundary-vertex array traffic
	StructPBV                  // potential-boundary-vertex bin traffic
	StructDP                   // depth/parent updates
	StructVIS                  // visited-structure traffic
	numStructures
)

// String names the structure.
func (s Structure) String() string {
	switch s {
	case StructAdj:
		return "Adj"
	case StructBV:
		return "BV"
	case StructPBV:
		return "PBV"
	case StructDP:
		return "DP"
	case StructVIS:
		return "VIS"
	}
	return "?"
}

// Traffic accumulates bytes per (structure, home socket) and derived
// local/remote splits. It is written by one goroutine at a time (the
// engine aggregates per-worker counts between barriers), so it needs no
// synchronization of its own.
type Traffic struct {
	sockets int
	// bySocket[s][st] = bytes of structure st whose home is socket s.
	bySocket [][numStructures]int64
	// local/remote split as charged by the accessing worker's socket.
	local, remote [numStructures]int64
}

// NewTraffic returns a Traffic accountant for the given socket count.
func NewTraffic(sockets int) *Traffic {
	return &Traffic{sockets: sockets, bySocket: make([][numStructures]int64, sockets)}
}

// Add charges bytes of structure st homed on homeSocket, accessed by a
// worker on fromSocket.
func (tr *Traffic) Add(st Structure, homeSocket, fromSocket int, bytes int64) {
	tr.bySocket[homeSocket][st] += bytes
	if homeSocket == fromSocket {
		tr.local[st] += bytes
	} else {
		tr.remote[st] += bytes
	}
}

// Merge adds other into tr.
func (tr *Traffic) Merge(other *Traffic) {
	for s := range other.bySocket {
		for st := 0; st < int(numStructures); st++ {
			tr.bySocket[s][st] += other.bySocket[s][st]
		}
	}
	for st := 0; st < int(numStructures); st++ {
		tr.local[st] += other.local[st]
		tr.remote[st] += other.remote[st]
	}
}

// Reset zeroes the accountant.
func (tr *Traffic) Reset() {
	for s := range tr.bySocket {
		tr.bySocket[s] = [numStructures]int64{}
	}
	tr.local = [numStructures]int64{}
	tr.remote = [numStructures]int64{}
}

// Total returns total bytes charged to structure st.
func (tr *Traffic) Total(st Structure) int64 { return tr.local[st] + tr.remote[st] }

// Local returns locally served bytes of structure st.
func (tr *Traffic) Local(st Structure) int64 { return tr.local[st] }

// Remote returns cross-socket bytes of structure st.
func (tr *Traffic) Remote(st Structure) int64 { return tr.remote[st] }

// Alpha returns the model's α for structure st: the maximum over sockets
// of the fraction of st's bytes homed on that socket. With perfectly
// even access it equals 1/N_S; 1.0 means one socket serves everything.
func (tr *Traffic) Alpha(st Structure) float64 {
	var total, max int64
	for s := range tr.bySocket {
		b := tr.bySocket[s][st]
		total += b
		if b > max {
			max = b
		}
	}
	if total == 0 {
		return 1 / float64(tr.sockets)
	}
	return float64(max) / float64(total)
}

// RemoteFraction returns the fraction of st's traffic that crossed
// sockets.
func (tr *Traffic) RemoteFraction(st Structure) float64 {
	t := tr.Total(st)
	if t == 0 {
		return 0
	}
	return float64(tr.remote[st]) / float64(t)
}

// Structures lists all access classes, for iteration in reports.
func Structures() []Structure {
	return []Structure{StructAdj, StructBV, StructPBV, StructDP, StructVIS}
}
