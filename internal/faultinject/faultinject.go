// Package faultinject is the deterministic chaos harness behind the
// serving stack's fault-injection points: a small vocabulary of named
// sites threaded through the query path (engine steps, pool acquires,
// multi-source sweeps, graph loads, client behaviour) and an Injector
// that decides, per site and per occurrence, whether to impose an
// artificial delay, fail the operation with an error, or panic.
//
// Determinism is the whole point. Every decision of the Plan injector
// is a pure hash of (Seed, site, key) — never a draw from shared
// mutable RNG state — so the k-th occurrence of a site always receives
// the same decision regardless of goroutine scheduling, and a chaos
// soak replays its fault pattern from a single seed.
//
// Production cost: injection is enabled by passing a non-nil Injector
// to the component under test (serve.Config.Injector). A nil injector
// disables every site; the call sites reduce to one predictable
// nil-check branch each, and no faultinject code runs.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"fastbfs/internal/xrand"
)

// Site names one injection point. Sites are part of the chaos plan's
// public vocabulary: a Plan maps each site it wants to disturb to a
// Rule.
type Site string

// Injection sites threaded through the serving stack's query path.
const (
	// SiteEngineStep fires inside a running engine, once per completed
	// traversal step (via the engine's StepHook): delays there simulate
	// slow traversals, panics a crash mid-run with live worker state.
	SiteEngineStep Site = "engine.step"
	// SiteAcquire fires when the dispatcher acquires a pooled engine:
	// errors there simulate spurious ErrEngineBusy / pool failures.
	SiteAcquire Site = "pool.acquire"
	// SiteSweep fires before a batched multi-source sweep: panics there
	// crash a whole round rather than a single engine.
	SiteSweep Site = "sweep.run"
	// SiteGraphLoad fires inside the graph-load path: the loader's
	// reader starts failing with the rule's error after a hash-chosen
	// byte offset, exercising mid-stream I/O failures.
	SiteGraphLoad Site = "graph.load"
	// SiteClientDrop is decided by chaos clients themselves (the serve
	// package never consults it): a firing client abandons its query
	// mid-wait, simulating a disconnecting or timing-out caller.
	SiteClientDrop Site = "client.drop"
	// SiteClientStall is also client-side: a firing client sleeps
	// before reading its response, simulating slow consumers.
	SiteClientStall Site = "client.stall"
	// SiteCoordSend fires in the cluster coordinator's RPC client just
	// before each per-shard request attempt: errors there simulate
	// requests lost on the wire (the client retries with jittered
	// backoff), delays simulate slow links.
	SiteCoordSend Site = "coord.send"
	// SiteShardExpand fires in a shard's expand handler before a round
	// is processed: errors fail the RPC (the coordinator retries
	// against the shard's idempotent round protocol), panics crash the
	// handler mid-round.
	SiteShardExpand Site = "shard.expand"
	// SiteCoordFailover fires on each lease renewal tick of an active
	// coordinator: an injected error suppresses that renewal, so a
	// healthy standby observes an expiring lease and takes over — the
	// deterministic way to force a coordinator failover without killing
	// the process (the deposed coordinator then exercises the fencing
	// path).
	SiteCoordFailover Site = "coord.failover"
	// SiteShardLease fires in a shard's fence-admission check, before
	// the fencing token of a round request is compared: errors fail the
	// request (a retryable 500, not a fencing rejection), delays slow
	// admission to widen failover races.
	SiteShardLease Site = "shard.lease"
	// SiteCoordDiverge fires in the coordinator's replica receive path,
	// after a replica's expand response decodes cleanly: a firing fault
	// deterministically corrupts that one replica's response before the
	// audit compares it against its siblings — the way to prove a
	// divergent (silently corrupted) replica answer is never served.
	SiteCoordDiverge Site = "coord.diverge"
	// SiteShardStall fires in a shard's expand handler as a delay-only
	// gray failure: the shard is alive and will eventually answer
	// correctly, but slowly enough that an unhedged coordinator round
	// would stall on it.
	SiteShardStall Site = "shard.stall"
	// SiteScrubCorrupt fires once per artifact per scrub pass in the
	// serving tier's integrity scrubber: a firing fault makes the scrub
	// report a checksum mismatch for that artifact, exercising the
	// quarantine → remount/rebuild recovery path without touching disk.
	SiteScrubCorrupt Site = "scrub.corrupt"
	// SiteManifestAppend fires in the manifest journal's append path
	// before the frame is written: errors simulate disk faults (ENOSPC,
	// EIO) and flip the manifest into degraded non-durable mode until a
	// probe append succeeds.
	SiteManifestAppend Site = "manifest.append"
)

// ErrInjected is the default error carried by injected failures; chaos
// tests use it (via errors.Is) to tell synthetic faults from real bugs.
var ErrInjected = errors.New("faultinject: injected fault")

// Decision is an injector's verdict for one occurrence of a site.
// The zero value means "no fault: proceed normally".
type Decision struct {
	// Delay is an artificial latency to impose before proceeding.
	Delay time.Duration
	// Err, when non-nil, fails the operation with this error.
	Err error
	// Panic requests a panic at the site (recovered by the containment
	// machinery under test). It wins over Err.
	Panic bool
}

// Fault reports whether the decision injects a failure (error or panic).
func (d Decision) Fault() bool { return d.Err != nil || d.Panic }

// Injector decides the fate of each occurrence of each site. Callers
// identify occurrences with a key (typically a per-site sequence
// number); implementations must be safe for concurrent use and pure in
// (site, key).
type Injector interface {
	Decide(site Site, key uint64) Decision
}

// Decide is the nil-safe entry point call sites use: a nil injector
// never injects.
func Decide(inj Injector, site Site, key uint64) Decision {
	if inj == nil {
		return Decision{}
	}
	return inj.Decide(site, key)
}

// Rule is one site's fault profile inside a Plan. Probabilities are
// evaluated independently: an occurrence can be both delayed and
// failed.
type Rule struct {
	// FaultProb is the probability in [0,1] that an occurrence fails
	// (with Err, or a panic when Panic is set).
	FaultProb float64
	// Err is the injected failure; nil means ErrInjected.
	Err error
	// Panic makes a firing fault panic instead of returning Err.
	Panic bool
	// DelayProb is the probability in [0,1] that an occurrence is
	// delayed; the actual delay is hash-scaled in (0, MaxDelay].
	DelayProb float64
	// MaxDelay bounds the injected latency.
	MaxDelay time.Duration
}

// Plan is the deterministic seed-hashed injector. Construct it with a
// Seed and per-site Rules; sites without a rule are never disturbed.
// SetEnabled(false) turns the whole plan off at runtime (the chaos
// soak's "injection stops" phase) without changing decision keys, so
// re-enabling resumes the same deterministic sequence.
type Plan struct {
	// Seed drives every decision.
	Seed uint64
	// Rules maps each disturbed site to its fault profile.
	Rules map[Site]Rule

	disabled atomic.Bool
}

// Per-purpose hash domains: the fault roll, the delay roll and the
// delay magnitude must be independent streams per (site, key).
const (
	domFault = 0x6661756c74 // "fault"
	domDelay = 0x64656c6179 // "delay"
	domScale = 0x7363616c65 // "scale"
)

// SetEnabled atomically enables or disables the plan; a disabled plan
// decides "no fault" everywhere.
func (p *Plan) SetEnabled(on bool) { p.disabled.Store(!on) }

// Enabled reports whether the plan is currently injecting.
func (p *Plan) Enabled() bool { return !p.disabled.Load() }

// Decide implements Injector: a pure hash of (Seed, site, key).
func (p *Plan) Decide(site Site, key uint64) Decision {
	if p == nil || p.disabled.Load() {
		return Decision{}
	}
	rule, ok := p.Rules[site]
	if !ok {
		return Decision{}
	}
	var d Decision
	if rule.DelayProb > 0 && p.roll(site, key, domDelay) < rule.DelayProb {
		// Hash-scaled in (0, MaxDelay]: never zero, so a firing delay
		// is always observable.
		frac := p.roll(site, key, domScale)
		d.Delay = time.Duration(float64(rule.MaxDelay)*frac) + 1
	}
	if rule.FaultProb > 0 && p.roll(site, key, domFault) < rule.FaultProb {
		if rule.Panic {
			d.Panic = true
		} else if rule.Err != nil {
			d.Err = rule.Err
		} else {
			d.Err = ErrInjected
		}
	}
	return d
}

// roll maps (Seed, site, key, domain) to a uniform float64 in [0, 1).
func (p *Plan) roll(site Site, key uint64, domain uint64) float64 {
	h := xrand.SplitMix64(p.Seed ^ domain)
	for _, b := range []byte(site) {
		h = xrand.SplitMix64(h ^ uint64(b))
	}
	h = xrand.SplitMix64(h ^ key)
	return float64(h>>11) / (1 << 53)
}

// PanicValue is what injected panics carry, so recovery paths and logs
// can attribute a crash to the harness rather than a real bug.
type PanicValue struct {
	Site Site
	Key  uint64
}

func (v PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (key %d)", v.Site, v.Key)
}

// Sequencer hands out per-site occurrence keys: one atomic counter per
// site, so each site sees the deterministic key sequence 0, 1, 2, ...
// regardless of how occurrences interleave across sites.
type Sequencer struct {
	engineStep     atomic.Uint64
	acquire        atomic.Uint64
	sweep          atomic.Uint64
	graphLoad      atomic.Uint64
	coordSend      atomic.Uint64
	shardExpand    atomic.Uint64
	coordFailover  atomic.Uint64
	shardLease     atomic.Uint64
	coordDiverge   atomic.Uint64
	shardStall     atomic.Uint64
	scrubCorrupt   atomic.Uint64
	manifestAppend atomic.Uint64
	other          atomic.Uint64
}

// Next returns the next key for site.
func (s *Sequencer) Next(site Site) uint64 {
	switch site {
	case SiteEngineStep:
		return s.engineStep.Add(1) - 1
	case SiteAcquire:
		return s.acquire.Add(1) - 1
	case SiteSweep:
		return s.sweep.Add(1) - 1
	case SiteGraphLoad:
		return s.graphLoad.Add(1) - 1
	case SiteCoordSend:
		return s.coordSend.Add(1) - 1
	case SiteShardExpand:
		return s.shardExpand.Add(1) - 1
	case SiteCoordFailover:
		return s.coordFailover.Add(1) - 1
	case SiteShardLease:
		return s.shardLease.Add(1) - 1
	case SiteCoordDiverge:
		return s.coordDiverge.Add(1) - 1
	case SiteShardStall:
		return s.shardStall.Add(1) - 1
	case SiteScrubCorrupt:
		return s.scrubCorrupt.Add(1) - 1
	case SiteManifestAppend:
		return s.manifestAppend.Add(1) - 1
	default:
		return s.other.Add(1) - 1
	}
}
