package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func testPlan(seed uint64) *Plan {
	return &Plan{
		Seed: seed,
		Rules: map[Site]Rule{
			SiteEngineStep: {FaultProb: 0.25, Panic: true, DelayProb: 0.5, MaxDelay: time.Millisecond},
			SiteAcquire:    {FaultProb: 0.5},
			SiteGraphLoad:  {FaultProb: 1, Err: errors.New("disk on fire")},
		},
	}
}

// TestPlanDeterministic: the same (seed, site, key) always yields the
// same decision, including under concurrent querying.
func TestPlanDeterministic(t *testing.T) {
	p := testPlan(42)
	const n = 4096
	want := make([]Decision, n)
	for k := range want {
		want[k] = p.Decide(SiteEngineStep, uint64(k))
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := testPlan(42) // independent instance, same seed
			for k := 0; k < n; k++ {
				got := q.Decide(SiteEngineStep, uint64(k))
				if got != want[k] {
					errs[w] = errors.New("decision diverged across instances")
					return
				}
				if got2 := p.Decide(SiteEngineStep, uint64(k)); got2 != want[k] {
					errs[w] = errors.New("decision diverged under concurrency")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPlanRates: firing frequencies track the configured probabilities,
// and distinct seeds give distinct sequences.
func TestPlanRates(t *testing.T) {
	p := testPlan(1)
	const n = 20000
	faults, delays := 0, 0
	for k := 0; k < n; k++ {
		d := p.Decide(SiteEngineStep, uint64(k))
		if d.Panic {
			faults++
		}
		if d.Delay > 0 {
			delays++
			if d.Delay > time.Millisecond+1 {
				t.Fatalf("delay %v exceeds MaxDelay", d.Delay)
			}
		}
	}
	if f := float64(faults) / n; f < 0.2 || f > 0.3 {
		t.Errorf("fault rate %.3f, want ~0.25", f)
	}
	if f := float64(delays) / n; f < 0.45 || f > 0.55 {
		t.Errorf("delay rate %.3f, want ~0.5", f)
	}
	q := testPlan(2)
	same := 0
	for k := 0; k < n; k++ {
		if p.Decide(SiteAcquire, uint64(k)).Fault() == q.Decide(SiteAcquire, uint64(k)).Fault() {
			same++
		}
	}
	if same == n {
		t.Error("seeds 1 and 2 produced identical fault sequences")
	}
}

// TestPlanSiteIndependence: the same key must not fire identically
// across sites (site is part of the hash).
func TestPlanSiteIndependence(t *testing.T) {
	p := &Plan{Seed: 7, Rules: map[Site]Rule{
		SiteAcquire: {FaultProb: 0.5},
		SiteSweep:   {FaultProb: 0.5},
	}}
	same := 0
	const n = 4096
	for k := 0; k < n; k++ {
		if p.Decide(SiteAcquire, uint64(k)).Fault() == p.Decide(SiteSweep, uint64(k)).Fault() {
			same++
		}
	}
	if same == n || same == 0 {
		t.Errorf("sites perfectly correlated (%d/%d): site not hashed in", same, n)
	}
}

// TestPlanDefaults: unruled sites never fire; default error is
// ErrInjected; disabled plans are inert; nil injectors are safe.
func TestPlanDefaults(t *testing.T) {
	p := testPlan(3)
	for k := 0; k < 1000; k++ {
		if d := p.Decide(SiteClientDrop, uint64(k)); d != (Decision{}) {
			t.Fatalf("unruled site fired: %+v", d)
		}
	}
	fired := false
	for k := 0; k < 64 && !fired; k++ {
		if d := p.Decide(SiteAcquire, uint64(k)); d.Err != nil {
			fired = true
			if !errors.Is(d.Err, ErrInjected) {
				t.Errorf("default error %v is not ErrInjected", d.Err)
			}
		}
	}
	if !fired {
		t.Fatal("FaultProb 0.5 never fired in 64 draws")
	}
	if d := p.Decide(SiteGraphLoad, 0); d.Err == nil || errors.Is(d.Err, ErrInjected) {
		t.Errorf("custom rule error not honored: %v", d.Err)
	}

	p.SetEnabled(false)
	if p.Enabled() {
		t.Error("Enabled() true after SetEnabled(false)")
	}
	for k := 0; k < 1000; k++ {
		if d := p.Decide(SiteGraphLoad, uint64(k)); d != (Decision{}) {
			t.Fatalf("disabled plan fired: %+v", d)
		}
	}
	p.SetEnabled(true)
	if d := p.Decide(SiteGraphLoad, 0); d.Err == nil {
		t.Error("re-enabled plan did not resume injecting")
	}

	if d := Decide(nil, SiteAcquire, 0); d != (Decision{}) {
		t.Errorf("nil injector fired: %+v", d)
	}
}

// TestSequencer: per-site counters are independent and dense.
func TestSequencer(t *testing.T) {
	var s Sequencer
	for i := uint64(0); i < 10; i++ {
		if k := s.Next(SiteAcquire); k != i {
			t.Fatalf("acquire key %d, want %d", k, i)
		}
	}
	if k := s.Next(SiteSweep); k != 0 {
		t.Fatalf("sweep counter shared with acquire: first key %d", k)
	}
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Next(SiteEngineStep)
			}
		}()
	}
	wg.Wait()
	if k := s.Next(SiteEngineStep); k != goroutines*per {
		t.Fatalf("concurrent keys not dense: next = %d, want %d", k, goroutines*per)
	}
}
