package validate

import (
	"testing"

	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/core"
)

func TestValidAccepted(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(11, 8), 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.New(g, core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Result(g, res); err != nil {
		t.Fatal(err)
	}
}

func TestSerialAccepted(t *testing.T) {
	g, _ := gen.Grid2D(20, 20, 0, 1)
	res, err := core.SerialBFS(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := Result(g, res); err != nil {
		t.Fatal(err)
	}
}

func corrupt(t *testing.T) (*graph.Graph, *core.Result) {
	t.Helper()
	g, _ := gen.UniformRandom(200, 6, 9)
	res, err := core.SerialBFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Copy DP so corruption does not alias other tests.
	dp := append([]uint64(nil), res.DP...)
	res.DP = dp
	return g, res
}

func TestDetectsWrongSourceDepth(t *testing.T) {
	g, res := corrupt(t)
	res.DP[res.Source] = core.PackDP(res.Source, 3)
	if Result(g, res) == nil {
		t.Error("wrong source depth accepted")
	}
}

func TestDetectsWrongParentDepth(t *testing.T) {
	g, res := corrupt(t)
	// Find a vertex at depth 2 and give it a depth-2 parent's depth.
	for v := 0; v < g.NumVertices(); v++ {
		if res.Depth(uint32(v)) == 2 {
			p, _ := core.UnpackDP(res.DP[v])
			res.DP[v] = core.PackDP(p, 3) // now depth(parent)+1 != depth
			break
		}
	}
	if Result(g, res) == nil {
		t.Error("inconsistent parent depth accepted")
	}
}

func TestDetectsNonEdgeParent(t *testing.T) {
	g, res := corrupt(t)
	for v := 0; v < g.NumVertices(); v++ {
		d := res.Depth(uint32(v))
		if d <= 0 {
			continue
		}
		// Point the parent at some same-depth-minus-one vertex with no
		// edge to v, if one exists.
		for u := 0; u < g.NumVertices(); u++ {
			if res.Depth(uint32(u)) == d-1 && !g.HasEdge(uint32(u), uint32(v)) {
				res.DP[v] = core.PackDP(uint32(u), uint32(d))
				if Result(g, res) == nil {
					t.Error("non-edge parent accepted")
				}
				return
			}
		}
	}
	t.Skip("no corruptible vertex found")
}

func TestDetectsDepthMismatch(t *testing.T) {
	g, res := corrupt(t)
	// Claim some unvisited... all are visited in UR; instead bump a leaf
	// vertex depth by 2 while keeping its parent consistent is hard —
	// just clear a visited vertex entirely: reference comparison fails.
	for v := g.NumVertices() - 1; v > 0; v-- {
		if res.Depth(uint32(v)) > 0 {
			res.DP[v] = core.INF
			break
		}
	}
	if Result(g, res) == nil {
		t.Error("missing vertex accepted")
	}
}

func TestSameDepthsLengthMismatch(t *testing.T) {
	g, res := corrupt(t)
	short := &core.Result{Source: res.Source, DP: res.DP[:10]}
	if SameDepths(res, short) == nil {
		t.Error("length mismatch accepted")
	}
	_ = g
}
