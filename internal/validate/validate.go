// Package validate checks BFS traversal outputs the way the Graph500
// specification does: the result must be a valid BFS tree with exact
// level labels, even though the parallel engine's benign races allow
// different (equally valid) parents run to run.
package validate

import (
	"fmt"

	"fastbfs/graph"
	"fastbfs/internal/core"
	"fastbfs/internal/par"
)

// Result validates a traversal over g from source:
//
//  1. the source has depth 0 and itself as parent;
//  2. every visited vertex v != source has a visited parent p with
//     depth(v) == depth(p)+1 and an edge (p, v) in the graph;
//  3. every edge (u, v) out of a visited u satisfies
//     depth(v) <= depth(u)+1 and v visited (level consistency);
//  4. depths equal the serial reference exactly, and exactly the
//     reference's vertex set is visited.
//
// It returns the first violation found, or nil.
func Result(g *graph.Graph, r *core.Result) error {
	n := g.NumVertices()
	if len(r.DP) != n {
		return fmt.Errorf("validate: DP length %d != %d vertices", len(r.DP), n)
	}
	if d := r.Depth(r.Source); d != 0 {
		return fmt.Errorf("validate: source depth = %d, want 0", d)
	}
	if p := r.Parent(r.Source); p != int64(r.Source) {
		return fmt.Errorf("validate: source parent = %d, want %d", p, r.Source)
	}

	// (2) parent/depth/edge consistency, in parallel.
	errs := make([]error, par.DefaultWorkers())
	if err := par.Run(len(errs), func(w int) {
		lo, hi := par.Range(n, w, len(errs))
		for v := lo; v < hi; v++ {
			dv := r.Depth(uint32(v))
			if dv < 0 || uint32(v) == r.Source {
				continue
			}
			p := r.Parent(uint32(v))
			if p < 0 || int(p) >= n {
				errs[w] = fmt.Errorf("validate: vertex %d has invalid parent %d", v, p)
				return
			}
			dpth := r.Depth(uint32(p))
			if dpth != dv-1 {
				errs[w] = fmt.Errorf("validate: vertex %d depth %d but parent %d depth %d",
					v, dv, p, dpth)
				return
			}
			if !g.HasEdge(uint32(p), uint32(v)) {
				errs[w] = fmt.Errorf("validate: no edge from parent %d to vertex %d", p, v)
				return
			}
		}
	}); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// (3) level consistency over all edges of visited vertices.
	if err := par.Run(len(errs), func(w int) {
		lo, hi := par.Range(n, w, len(errs))
		for u := lo; u < hi; u++ {
			du := r.Depth(uint32(u))
			if du < 0 {
				continue
			}
			for _, v := range g.Neighbors1(uint32(u)) {
				dv := r.Depth(v)
				if dv < 0 {
					errs[w] = fmt.Errorf("validate: visited %d has unvisited neighbor %d", u, v)
					return
				}
				if dv > du+1 {
					errs[w] = fmt.Errorf("validate: edge (%d,%d) spans depths %d -> %d", u, v, du, dv)
					return
				}
			}
		}
	}); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// (4) exact depths against the serial reference.
	ref, err := core.SerialBFS(g, r.Source)
	if err != nil {
		return err
	}
	return SameDepths(ref, r)
}

// SameDepths checks that two results visit the same vertex set with
// identical depths (parents may legitimately differ).
func SameDepths(want, got *core.Result) error {
	if len(want.DP) != len(got.DP) {
		return fmt.Errorf("validate: DP length mismatch %d != %d", len(want.DP), len(got.DP))
	}
	n := len(want.DP)
	errs := make([]error, par.DefaultWorkers())
	if err := par.Run(len(errs), func(w int) {
		lo, hi := par.Range(n, w, len(errs))
		for v := lo; v < hi; v++ {
			dw, dg := want.Depth(uint32(v)), got.Depth(uint32(v))
			if dw != dg {
				errs[w] = fmt.Errorf("validate: vertex %d depth %d, reference %d", v, dg, dw)
				return
			}
		}
	}); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
