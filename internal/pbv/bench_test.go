package pbv

import (
	"testing"

	"fastbfs/internal/par"
)

// BenchmarkBuildLayout measures the per-step Phase-II division setup for
// 16 workers x 16 bins.
func BenchmarkBuildLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := BuildLayout(16, 16, func(w, bn int) int { return w*31 + bn*17 })
		if l.Total() == 0 {
			b.Fatal("empty layout")
		}
	}
}

// BenchmarkSlice measures mapping a worker's share onto bin segments.
func BenchmarkSlice(b *testing.B) {
	l := BuildLayout(16, 16, func(w, bn int) int { return 100 + w + bn })
	var segs []Segment
	for i := 0; i < b.N; i++ {
		w := i & 15
		lo, hi := par.Range64(l.Total(), w, 16)
		segs = l.Slice(lo, hi, segs[:0])
	}
	_ = segs
}

// BenchmarkRecoverParent measures the split-point backward scan in a
// realistic marker density (one marker per ~8 entries).
func BenchmarkRecoverParent(b *testing.B) {
	seg := make([]uint32, 1<<12)
	for i := range seg {
		if i%9 == 0 {
			seg[i] = EncodeMarker(uint32(i))
		} else {
			seg[i] = uint32(i)
		}
	}
	for i := 0; i < b.N; i++ {
		if _, ok := RecoverParent(seg, len(seg)-1-(i&7)); !ok {
			b.Fatal("no parent found")
		}
	}
}
