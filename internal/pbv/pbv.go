// Package pbv implements the Potential Boundary Vertex machinery of the
// paper's two-phase traversal: the per-(worker, bin) intermediate arrays
// written by Phase-I, the two entry encodings (parent markers vs
// (parent, vertex) pairs), and the load-balanced division of the bins
// across sockets and threads for Phase-II (paper §III-B3).
package pbv

import (
	"sort"

	"fastbfs/internal/par"
)

// MarkerBit marks an entry as a parent marker in the marker encoding.
// Vertex ids must therefore stay below 2^31 (graph.MaxVertices).
const MarkerBit = 1 << 31

// EncodeMarker returns the marker entry for parent u.
func EncodeMarker(u uint32) uint32 { return u | MarkerBit }

// IsMarker reports whether an entry is a parent marker.
func IsMarker(x uint32) bool { return x&MarkerBit != 0 }

// DecodeMarker returns the parent id of a marker entry.
func DecodeMarker(x uint32) uint32 { return x &^ MarkerBit }

// Encoding selects how Phase-I writes bin entries.
type Encoding int

// Encodings. Auto selects Pair when N_PBV >= average frontier degree
// (paper footnote 4: pairs are more space-efficient there), Marker
// otherwise.
const (
	EncodingAuto Encoding = iota
	EncodingMarker
	EncodingPair
)

// String names the encoding.
func (e Encoding) String() string {
	switch e {
	case EncodingAuto:
		return "auto"
	case EncodingMarker:
		return "marker"
	case EncodingPair:
		return "pair"
	}
	return "?"
}

// Choose resolves EncodingAuto for the given bin count and average
// degree of the current frontier.
func (e Encoding) Choose(numBins int, avgDegree float64) Encoding {
	if e != EncodingAuto {
		return e
	}
	if float64(numBins) >= avgDegree {
		return EncodingPair
	}
	return EncodingMarker
}

// Set is one worker's N_PBV bins. Capacity is retained across steps; the
// engine allocates one Set per worker once per Run.
type Set struct {
	Bins [][]uint32
}

// NewSet returns a Set with numBins empty bins.
func NewSet(numBins int) *Set {
	return &Set{Bins: make([][]uint32, numBins)}
}

// Reset truncates every bin, keeping capacity.
func (s *Set) Reset() {
	for i := range s.Bins {
		s.Bins[i] = s.Bins[i][:0]
	}
}

// Entries returns the total number of entries across the bins.
func (s *Set) Entries() int64 {
	var n int64
	for _, b := range s.Bins {
		n += int64(len(b))
	}
	return n
}

// Layout is the bin-major concatenation of all workers' bins:
// segment (b, w) holds worker w's entries for bin b, and segments are
// ordered b-major so that each socket's Phase-II share is a contiguous
// run of (mostly whole) bins — the paper's "each socket is assigned a few
// complete bins, and at most two partial bins".
type Layout struct {
	W, B   int
	prefix []int64 // len W*B+1; prefix[SegIndex(b,w)] = global start
}

// BuildLayout computes the layout from segment lengths.
func BuildLayout(workers, bins int, lenOf func(w, b int) int) *Layout {
	l := &Layout{W: workers, B: bins, prefix: make([]int64, workers*bins+1)}
	pos := int64(0)
	for b := 0; b < bins; b++ {
		for w := 0; w < workers; w++ {
			l.prefix[l.SegIndex(b, w)] = pos
			pos += int64(lenOf(w, b))
		}
	}
	l.prefix[workers*bins] = pos
	return l
}

// SegIndex returns the linear segment index of (bin, worker).
func (l *Layout) SegIndex(b, w int) int { return b*l.W + w }

// SegBinWorker inverts SegIndex.
func (l *Layout) SegBinWorker(seg int) (b, w int) { return seg / l.W, seg % l.W }

// Total returns the total number of entries.
func (l *Layout) Total() int64 { return l.prefix[len(l.prefix)-1] }

// BinStart returns the global position where bin b begins.
func (l *Layout) BinStart(b int) int64 { return l.prefix[l.SegIndex(b, 0)] }

// BinLen returns the number of entries in bin b across all workers.
func (l *Layout) BinLen(b int) int64 {
	end := l.Total()
	if b+1 < l.B {
		end = l.BinStart(b + 1)
	}
	return end - l.BinStart(b)
}

// Segment describes a piece of one worker's bin assigned to a processor.
type Segment struct {
	Bin, Worker int
	Lo, Hi      int // local offsets within Bins[Worker][Bin]
}

// Slice maps the global half-open range [lo, hi) to per-segment local
// ranges, appending them to out.
func (l *Layout) Slice(lo, hi int64, out []Segment) []Segment {
	if lo >= hi {
		return out
	}
	// First segment containing lo: the last prefix <= lo.
	seg := sort.Search(len(l.prefix), func(i int) bool { return l.prefix[i] > lo }) - 1
	for pos := lo; pos < hi && seg < l.W*l.B; seg++ {
		segStart := l.prefix[seg]
		segEnd := l.prefix[seg+1]
		if segEnd <= pos {
			continue
		}
		s, e := pos, hi
		if segEnd < e {
			e = segEnd
		}
		b, w := l.SegBinWorker(seg)
		out = append(out, Segment{Bin: b, Worker: w, Lo: int(s - segStart), Hi: int(e - segStart)})
		pos = e
	}
	return out
}

// SharedBins counts bins whose entries straddle a boundary of the
// load-balanced division into nShares (sockets): the paper's cross-socket
// communication metric ("share at most two bins with other sockets").
func (l *Layout) SharedBins(nShares int) int {
	shared := 0
	for b := 0; b < l.B; b++ {
		start, end := l.BinStart(b), l.BinStart(b)+l.BinLen(b)
		if start == end {
			continue
		}
		// A bin is shared if a share boundary falls strictly inside it.
		for s := 1; s < nShares; s++ {
			lo, _ := par.Range64(l.Total(), s, nShares)
			if lo > start && lo < end {
				shared++
				break
			}
		}
	}
	return shared
}

// RecoverParent returns the parent in effect at local offset lo of a
// marker-encoded segment by scanning backwards to the nearest marker.
// Phase-I always writes a marker before the first vertex entry of a
// segment, so the scan is guaranteed to hit one. ok is false only for an
// empty or malformed segment.
func RecoverParent(seg []uint32, lo int) (parent uint32, ok bool) {
	for i := lo; i >= 0; i-- {
		if IsMarker(seg[i]) {
			return DecodeMarker(seg[i]), true
		}
	}
	return 0, false
}
