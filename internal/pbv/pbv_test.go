package pbv

import (
	"testing"
	"testing/quick"

	"fastbfs/internal/par"
)

func TestMarkerRoundTrip(t *testing.T) {
	for _, u := range []uint32{0, 1, 12345, 1<<31 - 1} {
		m := EncodeMarker(u)
		if !IsMarker(m) {
			t.Fatalf("EncodeMarker(%d) not recognized", u)
		}
		if DecodeMarker(m) != u {
			t.Fatalf("DecodeMarker(EncodeMarker(%d)) = %d", u, DecodeMarker(m))
		}
		if IsMarker(u) {
			t.Fatalf("plain id %d misread as marker", u)
		}
	}
}

func TestEncodingChoose(t *testing.T) {
	if EncodingAuto.Choose(16, 8.0) != EncodingPair {
		t.Error("want pair when bins >= degree")
	}
	if EncodingAuto.Choose(2, 8.0) != EncodingMarker {
		t.Error("want marker when bins < degree")
	}
	if EncodingMarker.Choose(16, 8.0) != EncodingMarker {
		t.Error("explicit marker overridden")
	}
	if EncodingPair.Choose(2, 8.0) != EncodingPair {
		t.Error("explicit pair overridden")
	}
}

func TestSetReset(t *testing.T) {
	s := NewSet(4)
	s.Bins[0] = append(s.Bins[0], 1, 2, 3)
	s.Bins[3] = append(s.Bins[3], 4)
	if s.Entries() != 4 {
		t.Fatalf("Entries = %d, want 4", s.Entries())
	}
	s.Reset()
	if s.Entries() != 0 {
		t.Fatalf("Entries after Reset = %d", s.Entries())
	}
	if cap(s.Bins[0]) < 3 {
		t.Error("Reset dropped capacity")
	}
}

// buildTestLayout makes a 3-worker, 4-bin layout with known lengths.
func buildTestLayout() (*Layout, [][]int) {
	lens := [][]int{ // [worker][bin]
		{2, 0, 5, 1},
		{3, 1, 0, 2},
		{0, 4, 2, 2},
	}
	l := BuildLayout(3, 4, func(w, b int) int { return lens[w][b] })
	return l, lens
}

func TestLayoutTotals(t *testing.T) {
	l, lens := buildTestLayout()
	var want int64
	for _, row := range lens {
		for _, n := range row {
			want += int64(n)
		}
	}
	if l.Total() != want {
		t.Fatalf("Total = %d, want %d", l.Total(), want)
	}
	// Bin lengths sum across workers.
	for b := 0; b < 4; b++ {
		var wantBin int64
		for w := 0; w < 3; w++ {
			wantBin += int64(lens[w][b])
		}
		if l.BinLen(b) != wantBin {
			t.Fatalf("BinLen(%d) = %d, want %d", b, l.BinLen(b), wantBin)
		}
	}
}

// TestLayoutSliceCoverage: dividing [0, Total) into k ranges must visit
// every (bin, worker, offset) exactly once, bin-major.
func TestLayoutSliceCoverage(t *testing.T) {
	l, lens := buildTestLayout()
	for _, shares := range []int{1, 2, 3, 5, 23} {
		visited := map[[3]int]int{}
		var segs []Segment
		for s := 0; s < shares; s++ {
			lo, hi := par.Range64(l.Total(), s, shares)
			segs = l.Slice(lo, hi, segs[:0])
			for _, sg := range segs {
				if sg.Lo >= sg.Hi {
					t.Fatalf("empty segment emitted: %+v", sg)
				}
				if sg.Hi > lens[sg.Worker][sg.Bin] {
					t.Fatalf("segment overruns: %+v (len %d)", sg, lens[sg.Worker][sg.Bin])
				}
				for i := sg.Lo; i < sg.Hi; i++ {
					visited[[3]int{sg.Bin, sg.Worker, i}]++
				}
			}
		}
		var total int
		for k, c := range visited {
			if c != 1 {
				t.Fatalf("shares=%d: position %v visited %d times", shares, k, c)
			}
			total++
		}
		if int64(total) != l.Total() {
			t.Fatalf("shares=%d: visited %d of %d positions", shares, total, l.Total())
		}
	}
}

// TestLayoutSliceProperty: random layouts, random divisions — exact
// tiling, no overlaps.
func TestLayoutSliceProperty(t *testing.T) {
	f := func(seed uint8, shares8 uint8) bool {
		w := int(seed%3) + 1
		b := int(seed/3%4) + 1
		shares := int(shares8%6) + 1
		l := BuildLayout(w, b, func(wk, bn int) int { return (wk*7 + bn*3 + int(seed)) % 5 })
		var count int64
		var segs []Segment
		for s := 0; s < shares; s++ {
			lo, hi := par.Range64(l.Total(), s, shares)
			segs = l.Slice(lo, hi, segs[:0])
			for _, sg := range segs {
				count += int64(sg.Hi - sg.Lo)
			}
		}
		return count == l.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSharedBins(t *testing.T) {
	// One bin only: any multi-share division shares it.
	l := BuildLayout(1, 1, func(w, b int) int { return 100 })
	if got := l.SharedBins(2); got != 1 {
		t.Errorf("single fat bin: SharedBins(2) = %d, want 1", got)
	}
	// Two equal bins across two shares: boundary falls exactly between
	// bins — nothing shared.
	l = BuildLayout(1, 2, func(w, b int) int { return 50 })
	if got := l.SharedBins(2); got != 0 {
		t.Errorf("aligned bins: SharedBins(2) = %d, want 0", got)
	}
	// Paper's bound: a contiguous division into N_S shares can split at
	// most N_S-1 bins.
	l = BuildLayout(2, 8, func(w, b int) int { return w + b })
	for _, ns := range []int{2, 4} {
		if got := l.SharedBins(ns); got > ns-1 {
			t.Errorf("SharedBins(%d) = %d, exceeds %d", ns, got, ns-1)
		}
	}
}

func TestRecoverParent(t *testing.T) {
	seg := []uint32{EncodeMarker(5), 10, 11, EncodeMarker(7), 12}
	cases := map[int]uint32{0: 5, 1: 5, 2: 5, 3: 7, 4: 7}
	for lo, want := range cases {
		got, ok := RecoverParent(seg, lo)
		if !ok || got != want {
			t.Errorf("RecoverParent(seg, %d) = %d,%v want %d", lo, got, ok, want)
		}
	}
	if _, ok := RecoverParent([]uint32{1, 2, 3}, 2); ok {
		t.Error("RecoverParent found a parent in a marker-free segment")
	}
}
