// Package xrand provides small, fast, deterministic random number
// generators used by the graph generators and the benchmark harness.
//
// The package exists so that every generated graph is reproducible from a
// single uint64 seed, independent of the Go version's math/rand behaviour,
// and so that independent parallel streams can be split cheaply (one
// SplitMix64 step per stream).
package xrand

import "math"

// SplitMix64 is the mixing function of the SplitMix64 generator
// (Steele, Lea, Flood; JPDC 2014). It maps a counter to a well mixed
// 64-bit value and is used both directly and to seed Gen streams.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Gen is a xoshiro256**-class generator. The zero value is NOT valid;
// construct one with New. Gen is not safe for concurrent use; split one
// stream per goroutine with Split.
type Gen struct {
	s [4]uint64
}

// New returns a generator deterministically derived from seed.
// Distinct seeds give independent-looking streams.
func New(seed uint64) *Gen {
	var g Gen
	g.Seed(seed)
	return &g
}

// Seed resets the generator state from a single 64-bit seed.
func (g *Gen) Seed(seed uint64) {
	// Expand the seed through SplitMix64 as recommended by the xoshiro
	// authors; guards against the all-zero state.
	s := seed
	for i := range g.s {
		s = SplitMix64(s)
		g.s[i] = s
	}
	if g.s[0]|g.s[1]|g.s[2]|g.s[3] == 0 {
		g.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (g *Gen) Uint64() uint64 {
	result := rotl(g.s[1]*5, 7) * 9
	t := g.s[1] << 17
	g.s[2] ^= g.s[0]
	g.s[3] ^= g.s[1]
	g.s[1] ^= g.s[2]
	g.s[0] ^= g.s[3]
	g.s[2] ^= t
	g.s[3] = rotl(g.s[3], 45)
	return result
}

// Split derives a new independent generator from this one, advancing the
// parent. It is the cheap way to hand one stream to each worker.
func (g *Gen) Split() *Gen {
	return New(g.Uint64())
}

// Uint32 returns a uniform 32-bit value.
func (g *Gen) Uint32() uint32 { return uint32(g.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (g *Gen) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(g.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (g *Gen) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// For the graph-generation workloads a simple high-multiply without
	// rejection would bias at most 1 part in 2^64/n; we keep the rejection
	// loop so property tests over small n see exact uniformity bounds.
	for {
		v := g.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			_ = lo
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform value in [0, 1).
func (g *Gen) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n) as uint32 ids.
func (g *Gen) Perm(n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf samples integers in [0, n) with P(k) proportional to 1/(k+1)^s,
// using inverse-CDF over a precomputed table. It models the heavy-tailed
// degree targets of the social-network analogues.
type Zipf struct {
	cdf []float64
	g   *Gen
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s > 0.
func NewZipf(g *Gen, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, g: g}
}

// Next returns the next Zipf-distributed value.
func (z *Zipf) Next() int {
	u := z.g.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
