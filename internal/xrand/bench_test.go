package xrand

import "testing"

func BenchmarkUint64(b *testing.B) {
	g := New(1)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += g.Uint64()
	}
	_ = s
}

func BenchmarkUint64n(b *testing.B) {
	g := New(1)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += g.Uint64n(1000003)
	}
	_ = s
}

func BenchmarkZipf(b *testing.B) {
	z := NewZipf(New(1), 10000, 1.1)
	var s int
	for i := 0; i < b.N; i++ {
		s += z.Next()
	}
	_ = s
}
