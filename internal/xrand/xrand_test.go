package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between distinct seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	g := New(7)
	a := g.Split()
	b := g.Split()
	if a.Uint64() == b.Uint64() {
		t.Error("split streams start identically")
	}
}

func TestUint64nProperty(t *testing.T) {
	g := New(3)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := g.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnBounds(t *testing.T) {
	g := New(5)
	for i := 0; i < 10000; i++ {
		v := g.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	g := New(11)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[g.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(13)
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(17)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := g.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if int(v) >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation", n)
			}
			seen[v] = true
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := New(19)
	z := NewZipf(g, 100, 1.2)
	var counts [100]int
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	if counts[0] <= counts[1] {
		t.Errorf("Zipf head not dominant: %d vs %d", counts[0], counts[1])
	}
}

func TestSplitMix64Avalanche(t *testing.T) {
	// Flipping one input bit should change ~half the output bits.
	base := SplitMix64(12345)
	totalFlips := 0
	for b := 0; b < 64; b++ {
		d := base ^ SplitMix64(12345^(1<<b))
		n := 0
		for x := d; x != 0; x &= x - 1 {
			n++
		}
		totalFlips += n
	}
	avg := float64(totalFlips) / 64
	if avg < 24 || avg > 40 {
		t.Errorf("avalanche average %.1f bits, want ~32", avg)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	g := New(0)
	if g.Uint64() == 0 && g.Uint64() == 0 {
		t.Error("zero seed produced degenerate stream")
	}
}
