// Package frontier manages the per-thread boundary-vertex arrays
// (BV_t^C / BV_t^N of the paper) and the TLB-miss-reducing rearrangement
// of the next frontier (paper §III-B3(b), after Kim et al.'s radix
// partitioning).
package frontier

import "sort"

// Frontier is the set of per-worker boundary-vertex arrays for one side
// (current or next). Capacity is retained across steps.
type Frontier struct {
	Arrays [][]uint32
}

// New returns a Frontier with one empty array per worker.
func New(workers int) *Frontier {
	return &Frontier{Arrays: make([][]uint32, workers)}
}

// Reset truncates all arrays, keeping capacity.
func (f *Frontier) Reset() {
	for i := range f.Arrays {
		f.Arrays[i] = f.Arrays[i][:0]
	}
}

// Total returns the total number of boundary vertices.
func (f *Frontier) Total() int64 {
	var n int64
	for _, a := range f.Arrays {
		n += int64(len(a))
	}
	return n
}

// Layout is the prefix-sum view of a Frontier used to divide the current
// frontier among workers by contiguous global ranges.
type Layout struct {
	prefix []int64
}

// BuildLayout computes prefix sums over the worker arrays.
func BuildLayout(f *Frontier) *Layout {
	l := &Layout{prefix: make([]int64, len(f.Arrays)+1)}
	for i, a := range f.Arrays {
		l.prefix[i+1] = l.prefix[i] + int64(len(a))
	}
	return l
}

// Total returns the frontier size.
func (l *Layout) Total() int64 { return l.prefix[len(l.prefix)-1] }

// Start returns the global start position of worker w's array.
func (l *Layout) Start(w int) int64 { return l.prefix[w] }

// Segment is a sub-range of one worker's array.
type Segment struct {
	Worker int
	Lo, Hi int
}

// Slice maps the global half-open range [lo, hi) onto per-array local
// ranges, appending to out.
func (l *Layout) Slice(lo, hi int64, out []Segment) []Segment {
	if lo >= hi {
		return out
	}
	w := sort.Search(len(l.prefix), func(i int) bool { return l.prefix[i] > lo }) - 1
	for pos := lo; pos < hi && w < len(l.prefix)-1; w++ {
		start, end := l.prefix[w], l.prefix[w+1]
		if end <= pos {
			continue
		}
		s, e := pos, hi
		if end < e {
			e = end
		}
		out = append(out, Segment{Worker: w, Lo: int(s - start), Hi: int(e - start)})
		pos = e
	}
	return out
}

// Rearranger performs the paper's one-pass histogram rearrangement: the
// vertices of a next-frontier array are regrouped so that vertices whose
// adjacency lists live in the same memory region (a group of pages
// covered together by the TLB) are adjacent, before Phase-I of the next
// step streams through them.
//
// Region key: for a CSR graph the adjacency bytes of vertex v start at
// 4*Offsets[v], so region(v) = v >> shift is an exact proxy when vertex
// ids and adjacency offsets grow together, which CSR guarantees.
type Rearranger struct {
	shift  uint
	counts []int32
	tmp    []uint32
}

// NewRearranger builds a Rearranger with the given region shift and
// region count.
func NewRearranger(shift uint, regions int) *Rearranger {
	return &Rearranger{shift: shift, counts: make([]int32, regions)}
}

// RegionShift computes the rearrangement shift for a graph with
// numVertices vertices and adjBytes bytes of adjacency data, a TLB that
// covers tlbEntries pages of pageBytes each. The number of regions is
// ceil(totalPages / tlbEntries) rounded up to a power of two (paper: "the
// total number of pages occupied by the Adj array divided by the number
// of simultaneous pages held in the TLB").
func RegionShift(numVertices int, adjBytes int64, pageBytes int64, tlbEntries int) (shift uint, regions int) {
	if pageBytes <= 0 || tlbEntries <= 0 || numVertices == 0 {
		return 32, 1
	}
	pages := (adjBytes + pageBytes - 1) / pageBytes
	r := int((pages + int64(tlbEntries) - 1) / int64(tlbEntries))
	if r < 1 {
		r = 1
	}
	// Round region span (in vertices) to a power of two for shift math.
	span := (numVertices + r - 1) / r
	shift = 0
	for (1 << shift) < span {
		shift++
	}
	regions = (numVertices-1)>>shift + 1
	return shift, regions
}

// Rearrange regroups bv in place by region, stable within regions:
// histogram, scatter into a temporary array, copy back (the paper's
// three passes). It reuses internal buffers across calls.
func (r *Rearranger) Rearrange(bv []uint32) {
	if len(bv) < 2 || len(r.counts) < 2 {
		return
	}
	for i := range r.counts {
		r.counts[i] = 0
	}
	for _, v := range bv {
		r.counts[v>>r.shift]++
	}
	if cap(r.tmp) < len(bv) {
		r.tmp = make([]uint32, len(bv))
	}
	tmp := r.tmp[:len(bv)]
	// Exclusive prefix sums into cursors.
	sum := int32(0)
	for i, c := range r.counts {
		r.counts[i] = sum
		sum += c
	}
	for _, v := range bv {
		reg := v >> r.shift
		tmp[r.counts[reg]] = v
		r.counts[reg]++
	}
	copy(bv, tmp)
}

// Regions returns the number of regions the Rearranger uses.
func (r *Rearranger) Regions() int { return len(r.counts) }
