package frontier

import (
	"testing"

	"fastbfs/internal/xrand"
)

// BenchmarkRearrange measures the paper's §III-B3(b) histogram
// rearrangement on a random 256K-vertex frontier with 256 TLB regions.
func BenchmarkRearrange(b *testing.B) {
	g := xrand.New(1)
	bv := make([]uint32, 1<<18)
	orig := make([]uint32, len(bv))
	for i := range orig {
		orig[i] = g.Uint32() & (1<<20 - 1)
	}
	r := NewRearranger(12, 256)
	b.SetBytes(int64(len(bv)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(bv, orig)
		r.Rearrange(bv)
	}
}

// BenchmarkLayoutSlice measures frontier division bookkeeping.
func BenchmarkLayoutSlice(b *testing.B) {
	f := New(16)
	for w := range f.Arrays {
		f.Arrays[w] = make([]uint32, 1000+w*100)
	}
	l := BuildLayout(f)
	var segs []Segment
	for i := 0; i < b.N; i++ {
		lo := int64(i % 1000)
		segs = l.Slice(lo, lo+5000, segs[:0])
	}
	_ = segs
}
