package frontier

import (
	"sort"
	"testing"
	"testing/quick"

	"fastbfs/internal/par"
)

func TestFrontierTotals(t *testing.T) {
	f := New(3)
	f.Arrays[0] = append(f.Arrays[0], 1, 2)
	f.Arrays[2] = append(f.Arrays[2], 3)
	if f.Total() != 3 {
		t.Fatalf("Total = %d, want 3", f.Total())
	}
	f.Reset()
	if f.Total() != 0 {
		t.Fatalf("Total after Reset = %d", f.Total())
	}
}

func TestLayoutSliceCoverage(t *testing.T) {
	f := New(4)
	f.Arrays[0] = []uint32{1, 2, 3}
	f.Arrays[1] = nil
	f.Arrays[2] = []uint32{4}
	f.Arrays[3] = []uint32{5, 6}
	l := BuildLayout(f)
	if l.Total() != 6 {
		t.Fatalf("Total = %d", l.Total())
	}
	for _, shares := range []int{1, 2, 3, 6, 10} {
		var got []uint32
		var segs []Segment
		for s := 0; s < shares; s++ {
			lo, hi := par.Range64(l.Total(), s, shares)
			segs = l.Slice(lo, hi, segs[:0])
			for _, sg := range segs {
				got = append(got, f.Arrays[sg.Worker][sg.Lo:sg.Hi]...)
			}
		}
		if len(got) != 6 {
			t.Fatalf("shares=%d: covered %d of 6", shares, len(got))
		}
		for i, v := range got {
			if v != uint32(i+1) {
				t.Fatalf("shares=%d: order broken at %d: %v", shares, i, got)
			}
		}
	}
}

func TestLayoutStart(t *testing.T) {
	f := New(2)
	f.Arrays[0] = []uint32{9, 9}
	f.Arrays[1] = []uint32{9}
	l := BuildLayout(f)
	if l.Start(0) != 0 || l.Start(1) != 2 || l.Start(2) != 3 {
		t.Errorf("Start values wrong: %d %d %d", l.Start(0), l.Start(1), l.Start(2))
	}
}

func TestRegionShift(t *testing.T) {
	// 1M vertices, 64 MB adjacency, 4 KiB pages, 64-entry TLB:
	// 16384 pages / 64 = 256 regions => span 4096 vertices => shift 12.
	shift, regions := RegionShift(1<<20, 64<<20, 4096, 64)
	if shift != 12 {
		t.Errorf("shift = %d, want 12", shift)
	}
	if regions != 256 {
		t.Errorf("regions = %d, want 256", regions)
	}
	// Degenerate inputs fall back to one region.
	if _, r := RegionShift(0, 0, 0, 0); r != 1 {
		t.Errorf("degenerate regions = %d, want 1", r)
	}
	// Tiny adjacency: single region.
	if _, r := RegionShift(100, 100, 4096, 64); r != 1 {
		t.Errorf("tiny adjacency regions = %d, want 1", r)
	}
}

func TestRearrangeGroupsByRegion(t *testing.T) {
	r := NewRearranger(4, 16) // region = v >> 4
	bv := []uint32{200, 5, 100, 6, 201, 7, 101}
	r.Rearrange(bv)
	// All region-0 (5,6,7), then region-6 (100,101), then region-12
	// (200,201), stable within regions.
	want := []uint32{5, 6, 7, 100, 101, 200, 201}
	for i := range want {
		if bv[i] != want[i] {
			t.Fatalf("got %v, want %v", bv, want)
		}
	}
}

// TestRearrangePermutationProperty: rearrangement is a permutation that
// sorts by region and is stable within regions.
func TestRearrangePermutationProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		bv := make([]uint32, len(raw))
		for i, x := range raw {
			bv[i] = uint32(x)
		}
		orig := append([]uint32(nil), bv...)
		r := NewRearranger(8, 1<<8)
		r.Rearrange(bv)
		// Permutation: same multiset.
		a := append([]uint32(nil), orig...)
		b := append([]uint32(nil), bv...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		// Region-sorted.
		for i := 1; i < len(bv); i++ {
			if bv[i]>>8 < bv[i-1]>>8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRearrangeReuse(t *testing.T) {
	r := NewRearranger(2, 64)
	for round := 0; round < 5; round++ {
		bv := []uint32{60, 1, 30, 2, 61, 3}
		r.Rearrange(bv)
		for i := 1; i < len(bv); i++ {
			if bv[i]>>2 < bv[i-1]>>2 {
				t.Fatalf("round %d: not region-sorted: %v", round, bv)
			}
		}
	}
}

func TestRearrangeSmall(t *testing.T) {
	r := NewRearranger(4, 16)
	r.Rearrange(nil)           // no-op
	r.Rearrange([]uint32{42})  // no-op
	one := NewRearranger(0, 1) // single region
	bv := []uint32{3, 1, 2}
	one.Rearrange(bv)
	if bv[0] != 3 || bv[1] != 1 || bv[2] != 2 {
		t.Errorf("single-region rearrange must be identity, got %v", bv)
	}
}
