package core

import (
	"fmt"
	"math"
	"testing"

	"fastbfs/graph"
	"fastbfs/graph/gen"
)

// hybridGraphs returns graphs with distinct direction-switch behavior:
// low-diameter scale-free graphs (both directednesses), a high-diameter
// symmetric grid, star graphs (the extreme bottom-up case), and a messy
// hand-built graph with self-loops and disconnected vertices.
func hybridGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	gs := map[string]*graph.Graph{}
	var err error
	if gs["rmat-directed"], err = gen.RMAT(gen.Graph500Params(12, 8), 2); err != nil {
		tb.Fatal(err)
	}
	undirected := gen.Graph500Params(12, 8)
	undirected.Undirected = true
	if gs["rmat-undirected"], err = gen.RMAT(undirected, 3); err != nil {
		tb.Fatal(err)
	}
	if gs["grid"], err = gen.Grid2D(64, 64, 0, 3); err != nil {
		tb.Fatal(err)
	}
	// Directed star: source reaches every leaf at depth 1; the bottom-up
	// scan of any leaf must find parent 0 via the transpose.
	star := make([]graph.Edge, 0, 2047)
	for v := uint32(1); v < 2048; v++ {
		star = append(star, graph.Edge{U: 0, V: v})
	}
	if gs["star-out"], err = graph.FromEdges(2048, star); err != nil {
		tb.Fatal(err)
	}
	gs["star-sym"] = gs["star-out"].Symmetrize()
	// Self-loops, a small cycle, and vertices 8..63 disconnected except
	// for an isolated component {40,41} unreachable from 0.
	messy := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 2, V: 3}, {U: 3, V: 3}, {U: 3, V: 4}, {U: 40, V: 41},
	}
	if gs["messy"], err = graph.FromEdges(64, messy); err != nil {
		tb.Fatal(err)
	}
	return gs
}

// inAdjFor returns the InAdj hook for g: nil for symmetric graphs (the
// engine then uses g itself), a transpose thunk otherwise.
func inAdjFor(name string, g *graph.Graph) func() *graph.Graph {
	switch name {
	case "rmat-undirected", "grid", "star-sym":
		return nil
	}
	return func() *graph.Graph { return g.TransposeParallel(0) }
}

func checkParents(t *testing.T, g *graph.Graph, res *Result, source uint32, label string) {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		dp := res.DP[v]
		if dp == INF {
			continue
		}
		p, d := UnpackDP(dp)
		if uint32(v) == source {
			if d != 0 || p != source {
				t.Fatalf("%s: source DP = (%d,%d)", label, p, d)
			}
			continue
		}
		if !g.HasEdge(p, uint32(v)) {
			t.Fatalf("%s: parent %d of %d is not an in-neighbor", label, p, v)
		}
		pd := res.Depth(p)
		if pd < 0 || uint32(pd)+1 != d {
			t.Fatalf("%s: depth(%d)=%d but parent %d has depth %d", label, v, d, p, pd)
		}
	}
}

// TestHybridMatchesSerial demands exact depth equality with the serial
// reference and valid parents for hybrid runs across graphs, VIS kinds,
// worker counts and α corners — including forced bottom-up (α=+Inf,
// switch at level 2) and never-switch (α→0⁺, pure top-down).
func TestHybridMatchesSerial(t *testing.T) {
	alphas := []struct {
		name        string
		alpha, beta float64
	}{
		{"default", 0, 0},
		// α=+Inf switches at level 2; β=+Inf sets the return threshold
		// n/β to zero, so every later level stays bottom-up.
		{"forced", math.Inf(1), math.Inf(1)},
		{"never", 1e-12, 0},
	}
	for name, g := range hybridGraphs(t) {
		ref, err := SerialBFS(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, vis := range []VISKind{VISNone, VISAtomicBit, VISByte, VISPartitioned} {
			for _, workers := range []int{1, 3, 8} {
				for _, a := range alphas {
					label := fmt.Sprintf("%s/%v/w%d/%s", name, vis, workers, a.name)
					cfg := Config{
						Workers: workers, VIS: vis,
						Scheme: SchemeLoadBalanced, Rearrange: true,
						CacheBytes: 1 << 12, // tiny LLC: forces N_VIS > 1
						Hybrid:     true, Alpha: a.alpha, Beta: a.beta,
						InAdj: inAdjFor(name, g),
					}
					e, err := New(g, cfg)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					res, err := e.Run(0)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					sameDepths(t, g, ref, res, label)
					checkParents(t, g, res, 0, label)
					if res.Visited != ref.Visited {
						t.Fatalf("%s: visited %d, want %d", label, res.Visited, ref.Visited)
					}
					if len(res.Directions) != res.Steps {
						t.Fatalf("%s: %d directions for %d steps", label, len(res.Directions), res.Steps)
					}
					switch a.name {
					case "never":
						for lvl, d := range res.Directions {
							if d != DirTopDown {
								t.Fatalf("%s: level %d went bottom-up with α→0", label, lvl+1)
							}
						}
					case "forced":
						if res.Directions[0] != DirTopDown {
							t.Fatalf("%s: level 1 must be top-down", label)
						}
						// The last level's frontier can have zero out-degree,
						// in which case scout=0 fails the strict m_f > m_u/α
						// test even at α=+Inf; all interior levels must flip.
						for lvl := 1; lvl < len(res.Directions)-1; lvl++ {
							if res.Directions[lvl] != DirBottomUp {
								t.Fatalf("%s: α=+Inf level %d not bottom-up (%s)",
									label, lvl+1, DirectionString(res.Directions))
							}
						}
					}
				}
			}
		}
	}
}

// TestHybridManySources sweeps sources on the directed RMAT graph with
// default α/β: the realistic mixed trajectory (top-down → bottom-up →
// top-down) must stay exact from any root.
func TestHybridManySources(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(13, 16), 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.Workers = 4
	cfg.Hybrid = true
	cfg.InAdj = func() *graph.Graph { return g.TransposeParallel(0) }
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawBottomUp := false
	for _, src := range []uint32{0, 1, 17, 4095, 8191} {
		ref, err := SerialBFS(g, src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("src=%d dirs=%s", src, DirectionString(res.Directions))
		sameDepths(t, g, ref, res, label)
		checkParents(t, g, res, src, label)
		for _, d := range res.Directions {
			if d == DirBottomUp {
				sawBottomUp = true
			}
		}
	}
	if !sawBottomUp {
		t.Error("default α never selected bottom-up on a scale-13 RMAT")
	}
}

// TestHybridTransposeCachedAcrossRuns asserts InAdj is invoked at most
// once per Engine regardless of how many runs switch to bottom-up — the
// serve-pool amortization contract.
func TestHybridTransposeCachedAcrossRuns(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(11, 8), 5)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	cfg := DefaultConfig(1)
	cfg.Workers = 2
	cfg.Hybrid = true
	cfg.Alpha = math.Inf(1) // every run switches
	cfg.InAdj = func() *graph.Graph { calls++; return g.Transpose() }
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Run(uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 1 {
		t.Fatalf("InAdj called %d times, want 1", calls)
	}
}

// TestHybridInstrumented checks the per-level trace marks bottom-up
// steps and stays internally consistent.
func TestHybridInstrumented(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(11, 8), 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.Workers = 3
	cfg.Hybrid = true
	cfg.Instrument = true
	cfg.InAdj = func() *graph.Graph { return g.Transpose() }
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace")
	}
	if len(res.Trace.Steps) != len(res.Directions) {
		t.Fatalf("trace has %d steps, directions %d", len(res.Trace.Steps), len(res.Directions))
	}
	for i, s := range res.Trace.Steps {
		if s.BottomUp != (res.Directions[i] == DirBottomUp) {
			t.Fatalf("step %d: trace BottomUp=%v, direction %v", i+1, s.BottomUp, res.Directions[i])
		}
	}
	if res.Trace.TotalEdges != res.EdgesTraversed {
		t.Fatalf("trace edges %d != result %d", res.Trace.TotalEdges, res.EdgesTraversed)
	}
}
