package core

import (
	"testing"

	"fastbfs/graph/gen"
	"fastbfs/internal/frontier"
	"fastbfs/internal/pbv"
)

// runOnePhase1 drives a single Phase-I over a seeded frontier and
// returns the engine for bin inspection. Uses one worker so the full
// frontier lands in its bins.
func runOnePhase1(t *testing.T, enc pbv.Encoding, batch bool) *Engine {
	t.Helper()
	g, err := gen.UniformRandom(4096, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workers: 1, Sockets: 1, VIS: VISPartitioned,
		Scheme: SchemeLoadBalanced, Encoding: enc,
		BatchBinning: batch, CacheBytes: 1 << 12, // several partitions
	}
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed a frontier of a few vertices and run Phase-I by hand.
	e.cur.Arrays[0] = append(e.cur.Arrays[0][:0], 1, 2, 3, 100, 2000)
	e.curLayout = frontier.BuildLayout(e.cur)
	e.phase1(e.ws[0], 1)
	return e
}

// TestPhase1MarkerInvariants: in the marker encoding, every bin starts
// with a marker, every vertex entry is preceded (somewhere) by its
// parent's marker, and every entry's bin matches its vertex range.
func TestPhase1MarkerInvariants(t *testing.T) {
	for _, batch := range []bool{false, true} {
		e := runOnePhase1(t, pbv.EncodingMarker, batch)
		frontier := map[uint32]bool{1: true, 2: true, 3: true, 100: true, 2000: true}
		totalEntries := 0
		for b, bin := range e.ws[0].bins.Bins {
			if len(bin) == 0 {
				continue
			}
			if !pbv.IsMarker(bin[0]) {
				t.Fatalf("batch=%v bin %d does not start with a marker", batch, b)
			}
			var parent uint32
			seenVertex := false
			for _, x := range bin {
				if pbv.IsMarker(x) {
					parent = pbv.DecodeMarker(x)
					if !frontier[parent] {
						t.Fatalf("batch=%v marker for non-frontier parent %d", batch, parent)
					}
					continue
				}
				seenVertex = true
				totalEntries++
				if int(x>>e.geo.binShift) != b {
					t.Fatalf("batch=%v vertex %d landed in bin %d, want %d",
						batch, x, b, x>>e.geo.binShift)
				}
				// The current parent must actually have x as a neighbor.
				found := false
				for _, w := range e.g.Neighbors1(parent) {
					if w == x {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("batch=%v entry %d attributed to non-parent %d", batch, x, parent)
				}
			}
			if !seenVertex {
				t.Fatalf("batch=%v bin %d holds only markers", batch, b)
			}
		}
		if totalEntries != 5*12 {
			t.Fatalf("batch=%v binned %d vertex entries, want %d", batch, totalEntries, 5*12)
		}
	}
}

// TestPhase1PairInvariants: in the pair encoding every bin has even
// length and each (parent, vertex) pair is a real edge in the right bin.
func TestPhase1PairInvariants(t *testing.T) {
	e := runOnePhase1(t, pbv.EncodingPair, false)
	total := 0
	for b, bin := range e.ws[0].bins.Bins {
		if len(bin)%2 != 0 {
			t.Fatalf("bin %d has odd length %d", b, len(bin))
		}
		for i := 0; i < len(bin); i += 2 {
			parent, v := bin[i], bin[i+1]
			if int(v>>e.geo.binShift) != b {
				t.Fatalf("vertex %d in bin %d, want %d", v, b, v>>e.geo.binShift)
			}
			if !e.g.HasEdge(parent, v) {
				t.Fatalf("pair (%d,%d) is not an edge", parent, v)
			}
			total++
		}
	}
	if total != 5*12 {
		t.Fatalf("binned %d pairs, want %d", total, 5*12)
	}
}

// TestPhase1EdgeCount: the per-worker edge counter equals the summed
// degree of the frontier.
func TestPhase1EdgeCount(t *testing.T) {
	e := runOnePhase1(t, pbv.EncodingMarker, false)
	if e.ws[0].edges != 5*12 {
		t.Fatalf("edges = %d, want %d", e.ws[0].edges, 5*12)
	}
}

// TestLazyMarkersSaveSpace: the lazy marker emission must write no more
// than one marker per (parent, touched bin) pair — strictly fewer
// entries than the paper's eager enqueue-into-every-bin variant when a
// parent's neighbors miss some bins.
func TestLazyMarkersSaveSpace(t *testing.T) {
	e := runOnePhase1(t, pbv.EncodingMarker, false)
	nVIS, nPBV := e.Geometry()
	_ = nVIS
	entries := e.ws[0].bins.Entries()
	eager := int64(5*nPBV + 5*12) // markers in every bin + all neighbors
	if entries > eager {
		t.Fatalf("entries %d exceed eager bound %d", entries, eager)
	}
	if entries < 5*12 {
		t.Fatalf("entries %d below neighbor count", entries)
	}
}
