package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fastbfs/graph"
)

// asyncQueue is an unbounded multi-producer multi-consumer chunk queue
// with quiescence detection: pending counts chunks queued or being
// processed, and when it reaches zero every waiter is released.
// An unbounded queue is essential — with a bounded one, all workers can
// block producing while nobody consumes.
type asyncQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	chunks  [][]uint32
	pending int
	done    bool
}

func newAsyncQueue() *asyncQueue {
	q := &asyncQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a chunk; the matching finish must be called when the
// chunk has been fully processed.
func (q *asyncQueue) push(chunk []uint32) {
	q.mu.Lock()
	q.chunks = append(q.chunks, chunk)
	q.pending++
	q.mu.Unlock()
	q.cond.Signal()
}

// pop dequeues a chunk, blocking until one is available or the traversal
// has quiesced (ok == false).
func (q *asyncQueue) pop() (chunk []uint32, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.chunks) == 0 && !q.done {
		q.cond.Wait()
	}
	if q.done && len(q.chunks) == 0 {
		return nil, false
	}
	chunk = q.chunks[len(q.chunks)-1]
	q.chunks = q.chunks[:len(q.chunks)-1]
	return chunk, true
}

// finish marks one popped chunk (and all pushes it caused) complete.
func (q *asyncQueue) finish() {
	q.mu.Lock()
	q.pending--
	quiesced := q.pending == 0
	if quiesced {
		q.done = true
	}
	q.mu.Unlock()
	if quiesced {
		q.cond.Broadcast()
	}
}

// AsyncBFS is the asynchronous (label-correcting) traversal the paper
// contrasts with synchronous approaches in §I: no barriers or steps —
// workers relax vertices from a shared work pool as they arrive, so a
// vertex's depth can be lowered several times and its out-edges
// re-examined ("this may result in multiple updates for a single vertex
// and consequent work inefficiency"). The result is a correct BFS depth
// assignment; parents are whichever relaxation won.
//
// The paper cites this class as the historical approach for very
// high-diameter graphs; BenchmarkAsyncVsSync quantifies the trade-off,
// and Result.Appends/Result.Visited is the work-inefficiency ratio.
func AsyncBFS(g *graph.Graph, source uint32, workers int) (*Result, error) {
	n := g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("core: source %d out of range", source)
	}
	if workers < 1 {
		workers = 1
	}
	dp := make([]uint64, n)
	for i := range dp {
		dp[i] = INF
	}
	start := time.Now()
	dp[source] = PackDP(source, 0)

	const chunkCap = 256
	q := newAsyncQueue()
	q.push([]uint32{source})
	var edges, relaxations int64

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var out []uint32
			var localEdges, localRelax int64
			for {
				chunk, ok := q.pop()
				if !ok {
					break
				}
				for _, u := range chunk {
					// Re-read the current depth: it may have improved
					// since u was enqueued.
					du := uint32(atomic.LoadUint64(&dp[u]))
					adj := g.Neighbors[g.Offsets[u]:g.Offsets[u+1]]
					localEdges += int64(len(adj))
					for _, v := range adj {
						nd := du + 1
						for {
							cur := atomic.LoadUint64(&dp[v])
							if uint32(cur) <= nd {
								break
							}
							if atomic.CompareAndSwapUint64(&dp[v], cur, PackDP(u, nd)) {
								localRelax++
								out = append(out, v)
								if len(out) == chunkCap {
									q.push(out)
									out = nil
								}
								break
							}
						}
					}
				}
				if len(out) > 0 {
					q.push(out)
					out = nil
				}
				q.finish()
			}
			atomic.AddInt64(&edges, localEdges)
			atomic.AddInt64(&relaxations, localRelax)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var visited int64
	maxDepth := 0
	for _, d := range dp {
		if d == INF {
			continue
		}
		visited++
		if int(uint32(d)) > maxDepth {
			maxDepth = int(uint32(d))
		}
	}
	return &Result{
		Source:         source,
		DP:             dp,
		Steps:          maxDepth,
		EdgesTraversed: edges,
		Visited:        visited,
		Appends:        relaxations + 1, // +1: the source
		Elapsed:        elapsed,
	}, nil
}
