package core

import (
	"testing"

	"fastbfs/graph"
	"fastbfs/graph/gen"
)

// TestSingleVertex: a one-vertex graph terminates in one step.
func TestSingleVertex(t *testing.T) {
	g, err := graph.FromEdges(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []func() (*Result, error){
		func() (*Result, error) { e, _ := New(g, DefaultConfig(1)); return e.Run(0) },
		func() (*Result, error) { return SerialBFS(g, 0) },
		func() (*Result, error) { return AsyncBFS(g, 0, 2) },
		func() (*Result, error) { return WorkStealingBFS(g, 0, 2) },
	} {
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Visited != 1 || res.Depth(0) != 0 {
			t.Fatalf("single vertex: visited=%d depth=%d", res.Visited, res.Depth(0))
		}
	}
}

// TestSelfLoops: self-loops are traversed but never revisit.
func TestSelfLoops(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{
		{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 1}, {U: 1, V: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 3 {
		t.Fatalf("visited = %d", res.Visited)
	}
	if res.Depth(0) != 0 || res.Depth(1) != 1 || res.Depth(2) != 2 {
		t.Fatalf("depths: %d %d %d", res.Depth(0), res.Depth(1), res.Depth(2))
	}
}

// TestDuplicateEdges: parallel edges (kept by the generators, as in the
// paper) must not duplicate visits, and the traversed-edge count counts
// each adjacency entry.
func TestDuplicateEdges(t *testing.T) {
	g, err := graph.FromEdges(2, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 1}, {U: 0, V: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 2 || res.EdgesTraversed != 3 {
		t.Fatalf("visited=%d edges=%d", res.Visited, res.EdgesTraversed)
	}
}

// TestDisconnectedSource: a source in a small component must not leak
// into others, across all schemes.
func TestDisconnectedSource(t *testing.T) {
	// Component A: vertices 0..9 ring; component B: 10..99 UR island.
	edges := make([]graph.Edge, 0, 600)
	for i := 0; i < 10; i++ {
		edges = append(edges, graph.Edge{U: uint32(i), V: uint32((i + 1) % 10)})
	}
	island, _ := gen.UniformRandom(90, 5, 3)
	for u := 0; u < 90; u++ {
		for _, v := range island.Neighbors1(uint32(u)) {
			edges = append(edges, graph.Edge{U: uint32(u + 10), V: v + 10})
		}
	}
	g, err := graph.FromEdges(100, edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{SchemeSinglePhase, SchemeSocketAware, SchemeLoadBalanced} {
		cfg := DefaultConfig(2)
		cfg.Scheme = scheme
		e, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Visited != 10 {
			t.Fatalf("%v: visited %d, want 10", scheme, res.Visited)
		}
		for v := 10; v < 100; v++ {
			if res.Depth(uint32(v)) != -1 {
				t.Fatalf("%v: leaked into island at %d", scheme, v)
			}
		}
	}
}

// TestHighDiameterAllSchemes: a pure path (diameter = V-1) exercises
// thousands of near-empty frontiers — the regime where synchronous
// schemes pay maximal barrier overhead but must stay correct.
func TestHighDiameterAllSchemes(t *testing.T) {
	g, err := gen.Grid2D(1, 3000, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{SchemeSinglePhase, SchemeLoadBalanced} {
		cfg := DefaultConfig(2)
		cfg.Scheme = scheme
		cfg.Workers = 4
		e, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Visited != 3000 || res.Depth(2999) != 2999 {
			t.Fatalf("%v: visited=%d farDepth=%d", scheme, res.Visited, res.Depth(2999))
		}
	}
}

// TestNamesAreStable: the String methods feed table legends.
func TestNamesAreStable(t *testing.T) {
	wantVIS := map[VISKind]string{
		VISNone: "no-VIS", VISAtomicBit: "atomic-bit", VISByte: "AF-byte",
		VISBit: "AF-bit", VISPartitioned: "AF-partitioned",
	}
	for k, want := range wantVIS {
		if k.String() != want {
			t.Errorf("VIS %d = %q, want %q", k, k.String(), want)
		}
	}
	wantScheme := map[Scheme]string{
		SchemeSinglePhase: "no-ms-opt", SchemeSocketAware: "ms-aware",
		SchemeLoadBalanced: "ms-load-balanced",
	}
	for s, want := range wantScheme {
		if s.String() != want {
			t.Errorf("scheme %d = %q, want %q", s, s.String(), want)
		}
	}
	if VISKind(99).String() != "?" || Scheme(99).String() != "?" {
		t.Error("unknown ids must render as ?")
	}
}

// TestAwkwardWorkerCounts is the engine-level regression for the
// empty-socket bug: worker counts that do not divide the socket count
// evenly (5 or 6 workers on 4 sockets) must still traverse completely
// under every scheme.
func TestAwkwardWorkerCounts(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(11, 8), 13)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SerialBFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{5, 6, 7, 9} {
		for _, scheme := range []Scheme{SchemeSinglePhase, SchemeSocketAware, SchemeLoadBalanced} {
			cfg := DefaultConfig(4)
			cfg.Workers = workers
			cfg.Scheme = scheme
			e, err := New(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Visited != ref.Visited {
				t.Fatalf("workers=%d %v: visited %d, want %d",
					workers, scheme, res.Visited, ref.Visited)
			}
			sameDepths(t, g, ref, res, "awkward")
		}
	}
}
