package core

import (
	"fmt"
	"time"

	"fastbfs/graph"
)

// SerialBFS is the textbook queue-based traversal (paper Figure 1,
// sequential). It is the correctness reference for the parallel engine
// and the single-thread baseline of the benchmark harness.
func SerialBFS(g *graph.Graph, source uint32) (*Result, error) {
	n := g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("core: source %d out of range", source)
	}
	dp := make([]uint64, n)
	for i := range dp {
		dp[i] = INF
	}
	start := time.Now()
	dp[source] = PackDP(source, 0)
	queue := make([]uint32, 0, 1024)
	queue = append(queue, source)
	var edges int64
	steps := 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := uint32(dp[u])
		if int(du)+1 > steps {
			steps = int(du) + 1
		}
		adj := g.Neighbors[g.Offsets[u]:g.Offsets[u+1]]
		edges += int64(len(adj))
		for _, v := range adj {
			if dp[v] == INF {
				dp[v] = PackDP(u, du+1)
				queue = append(queue, v)
			}
		}
	}
	return &Result{
		Source:         source,
		DP:             dp,
		Steps:          steps,
		EdgesTraversed: edges,
		Visited:        int64(len(queue)),
		Appends:        int64(len(queue)),
		Elapsed:        time.Since(start),
	}, nil
}
