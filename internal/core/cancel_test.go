package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"fastbfs/graph/gen"
	"fastbfs/internal/par"
)

// TestRunContextExpired: an already-expired context must return its
// error before any step starts — no work, no state disturbance.
func TestRunContextExpired(t *testing.T) {
	g, err := gen.UniformRandom(2000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := e.RunContext(ctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: got %v, want context.DeadlineExceeded", err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := e.RunContext(ctx2, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: got %v, want context.Canceled", err)
	}
	// The engine is untouched and still runs.
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SerialBFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameDepths(t, g, ref, res, "after expired-context runs")
}

// TestRunContextMidTraversalCancel: cancellation mid-traversal must
// return ctx.Err() promptly (within about a step), leave no goroutines
// behind, and leave the engine reusable for a subsequent full run.
func TestRunContextMidTraversalCancel(t *testing.T) {
	// A long path: ~20000 steps of tiny work, so cancellation hits the
	// step loop mid-flight rather than after completion.
	g, err := gen.Grid2D(1, 20000, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.Workers = 4
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = e.RunContext(ctx, 0)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		// The run may legitimately win the race on a fast machine; only
		// a wrong error kind is a failure.
		if err != nil {
			t.Fatalf("mid-run cancel: got %v, want context.Canceled or success", err)
		}
		t.Skip("traversal completed before cancellation fired")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; not prompt", elapsed)
	}

	// No leaked workers: the pool drains on abort.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, got)
	}

	// Reusable: the next uncancelled run completes and is correct.
	res, err := e.Run(0)
	if err != nil {
		t.Fatalf("run after cancel: %v", err)
	}
	ref, err := SerialBFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameDepths(t, g, ref, res, "rerun after cancel")
	if res.Steps != ref.Steps {
		t.Errorf("rerun steps %d, want %d", res.Steps, ref.Steps)
	}
}

// TestRunContextDeadlineDuringRun: a deadline that expires mid-run
// surfaces as DeadlineExceeded.
func TestRunContextDeadlineDuringRun(t *testing.T) {
	g, err := gen.Grid2D(1, 20000, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.Workers = 2
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	if _, err := e.RunContext(ctx, 0); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-run deadline: got %v, want context.DeadlineExceeded or success", err)
	}
}

// TestWorkerPanicSurfacesAsError: a panic inside a traversal worker must
// come back as an error from Run — with the barrier poisoned so the
// remaining workers drain instead of deadlocking — and the engine must
// recover fully on the next run.
func TestWorkerPanicSurfacesAsError(t *testing.T) {
	g, err := gen.UniformRandom(5000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.Workers = 4
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SerialBFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Sabotage the adjacency mid-engine: an out-of-range neighbor id
	// makes a worker index past the DP array and panic — the kind of
	// corruption a real deployment meets on bad input.
	saved := g.Neighbors[100]
	g.Neighbors[100] = 1 << 30
	done := make(chan error, 1)
	go func() {
		_, err := e.Run(0)
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("panicked worker deadlocked the engine instead of erroring")
	}
	if err == nil {
		t.Fatal("worker panic did not surface as an error")
	}
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T (%v) does not wrap *par.PanicError", err, err)
	}
	if !strings.Contains(err.Error(), "aborted") {
		t.Errorf("error %q does not mention the abort", err)
	}

	// Repair the graph; the same engine must run correctly again.
	g.Neighbors[100] = saved
	res, err := e.Run(0)
	if err != nil {
		t.Fatalf("run after panic: %v", err)
	}
	sameDepths(t, g, ref, res, "rerun after panic")
}
