package core

import (
	"testing"
	"testing/quick"

	"fastbfs/graph/gen"
	"fastbfs/internal/numa"
	"fastbfs/internal/pbv"
)

func TestPackDPRoundTrip(t *testing.T) {
	f := func(parent, depth uint32) bool {
		p, d := UnpackDP(PackDP(parent, depth))
		return p == parent && d == depth
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// INF is not a reachable packed value for valid ids/depths: parent
	// ids stay below 2^31 (graph.MaxVertices).
	if PackDP(1<<31-1, ^uint32(0)) == INF {
		t.Error("valid pack collides with INF")
	}
}

func TestConfigValidation(t *testing.T) {
	g, _ := gen.UniformRandom(100, 4, 1)
	bad := []Config{
		{Sockets: 3},              // not a power of two
		{Sockets: 2, Workers: -1}, // withDefaults clamps Workers>=Sockets, so force negative
	}
	for i, cfg := range bad {
		if i == 1 {
			// Workers below Sockets is raised, not an error; force an
			// invalid value that survives defaulting.
			c := cfg.withDefaults()
			c.Workers = 0
			if err := c.validate(g); err == nil {
				t.Errorf("case %d: invalid config accepted", i)
			}
			continue
		}
		if _, err := New(g, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(g, Config{VIS: VISKind(42)}); err == nil {
		t.Error("unknown VIS accepted")
	}
	if _, err := New(g, Config{Scheme: Scheme(42)}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers < 1 || c.Sockets != 1 {
		t.Errorf("defaults: %+v", c)
	}
	if c.CacheBytes != 8<<20 || c.L2Bytes != 256<<10 {
		t.Errorf("cache defaults: %+v", c)
	}
	if c.PageBytes != 4096 || c.TLBEntries != 64 {
		t.Errorf("TLB defaults: %+v", c)
	}
	// Workers never below sockets.
	c = Config{Workers: 1, Sockets: 4}.withDefaults()
	if c.Workers < 4 {
		t.Errorf("workers %d < sockets", c.Workers)
	}
}

// TestGeometry checks the paper's §III-C(1) bin arithmetic: N_PBV =
// N_S * next_pow2(N_VIS), bins align with sockets, and every vertex maps
// to a valid bin on its home socket.
func TestGeometry(t *testing.T) {
	for _, tc := range []struct {
		vertices   int
		sockets    int
		cacheBytes int64
		vis        VISKind
		wantNVIS   int
	}{
		{1 << 16, 2, 8 << 20, VISPartitioned, 1},
		{1 << 20, 2, 1 << 12, VISPartitioned, 64}, // 128 KiB VIS / 2 KiB half-LLC
		{1 << 20, 2, 8 << 20, VISBit, 1},          // unpartitioned kinds force 1
		{1 << 16, 4, 1 << 10, VISPartitioned, 16},
	} {
		g, err := gen.UniformRandom(tc.vertices, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Sockets: tc.sockets, Workers: tc.sockets, VIS: tc.vis,
			Scheme: SchemeLoadBalanced, CacheBytes: tc.cacheBytes}
		e, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nVIS, nPBV := e.Geometry()
		if nVIS != tc.wantNVIS {
			t.Errorf("V=%d C=%d: N_VIS = %d, want %d", tc.vertices, tc.cacheBytes, nVIS, tc.wantNVIS)
		}
		if nPBV%tc.sockets != 0 {
			t.Errorf("N_PBV %d not a multiple of sockets %d", nPBV, tc.sockets)
		}
		perSocket := nPBV / tc.sockets
		if perSocket&(perSocket-1) != 0 {
			t.Errorf("bins per socket %d not a power of two", perSocket)
		}
		// Every vertex's bin lies in its home socket's bin range.
		topo, _ := numa.NewTopology(tc.vertices, tc.sockets, tc.sockets)
		for v := 0; v < tc.vertices; v += tc.vertices/97 + 1 {
			b := int(uint32(v) >> e.geo.binShift)
			if b >= nPBV {
				t.Fatalf("vertex %d bin %d out of range %d", v, b, nPBV)
			}
			if got, want := b>>e.geo.extraBits, topo.HomeSocket(uint32(v)); got != want {
				t.Fatalf("vertex %d bin %d maps to socket %d, home %d", v, b, got, want)
			}
		}
	}
}

// TestEncodingResolution checks the footnote-4 auto heuristic as the
// engine applies it.
func TestEncodingResolution(t *testing.T) {
	dense, _ := gen.UniformRandom(1<<14, 32, 1)
	e, err := New(dense, Config{Sockets: 2, Workers: 2, VIS: VISPartitioned})
	if err != nil {
		t.Fatal(err)
	}
	if e.Encoding() != pbv.EncodingMarker {
		t.Errorf("dense graph: encoding %v, want marker (N_PBV=2 < deg 32)", e.Encoding())
	}
	sparse, _ := gen.UniformRandom(1<<20, 2, 1)
	e, err = New(sparse, Config{Sockets: 2, Workers: 2, VIS: VISPartitioned,
		CacheBytes: 1 << 12}) // many partitions -> many bins
	if err != nil {
		t.Fatal(err)
	}
	if e.Encoding() != pbv.EncodingPair {
		t.Errorf("sparse graph with many bins: encoding %v, want pair", e.Encoding())
	}
}

// TestInstrumentConsistency: trace totals must agree with the Result
// counters, and the per-step alphas must be sane probabilities.
func TestInstrumentConsistency(t *testing.T) {
	g, _ := gen.RMAT(gen.Graph500Params(12, 8), 5)
	cfg := DefaultConfig(2)
	cfg.Instrument = true
	cfg.Workers = 4
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	rt := res.Trace
	if rt == nil {
		t.Fatal("no trace")
	}
	if rt.TotalEdges != res.EdgesTraversed {
		t.Errorf("trace edges %d != %d", rt.TotalEdges, res.EdgesTraversed)
	}
	if rt.TotalVertices != res.Appends-1 { // trace excludes the seeded source
		t.Errorf("trace vertices %d, appends %d", rt.TotalVertices, res.Appends)
	}
	for _, s := range rt.Steps {
		for name, a := range map[string]float64{
			"adj": s.AlphaAdj, "pbv": s.AlphaPBV, "dp": s.AlphaDP,
		} {
			if a < 0.5-1e-9 || a > 1+1e-9 {
				t.Errorf("step %d: alpha %s = %v outside [1/2, 1]", s.Step, name, a)
			}
		}
		if s.SharedBins > 1 { // 2 sockets: at most N_S-1 = 1 shared bin
			t.Errorf("step %d: %d shared bins with 2 sockets", s.Step, s.SharedBins)
		}
	}
}

// TestStressAlphaIsSkewed: on the bipartite stress graph every step's
// frontier lives on one socket, so the per-step α must be ~1 even though
// the run aggregate is balanced — the distinction the paper draws.
func TestStressAlphaIsSkewed(t *testing.T) {
	g, err := gen.StressBipartite(1<<14, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.Instrument = true
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	rt := res.Trace
	w := rt.WeightedAlpha(numa.StructAdj, 2)
	if w < 0.95 {
		t.Errorf("stress per-step weighted alphaAdj = %v, want ~1", w)
	}
	agg := rt.Alpha(numa.StructAdj, 2)
	if agg > 0.65 {
		t.Errorf("stress run-aggregate alphaAdj = %v, want ~0.5 (sides alternate)", agg)
	}
}

// TestMaxStepsGuard: an engine with MaxSteps below the graph depth must
// fail loudly instead of looping.
func TestMaxStepsGuard(t *testing.T) {
	g, _ := gen.Grid2D(1, 100, 0, 1) // a path: depth 99
	cfg := DefaultConfig(1)
	cfg.MaxSteps = 5
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0); err == nil {
		t.Error("step-limit overrun not reported")
	}
}

// TestMaxSocketShare: the static scheme's imbalance on the stress graph
// must register near 1.0 per step (one socket owns every entry), while
// the load-balanced division stays at ~1/N_S — the exact contrast
// Figure 5 measures.
func TestMaxSocketShare(t *testing.T) {
	g, err := gen.StressBipartite(1<<14, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	shares := func(scheme Scheme) (min, max float64) {
		cfg := DefaultConfig(2)
		cfg.Scheme = scheme
		cfg.Instrument = true
		e, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		min, max = 2, 0
		for _, s := range res.Trace.Steps {
			// Tiny steps (a handful of entries) round unevenly; the
			// balance property concerns substantial steps.
			if s.PBVEntries < 100 {
				continue
			}
			if s.MaxSocketShare < min {
				min = s.MaxSocketShare
			}
			if s.MaxSocketShare > max {
				max = s.MaxSocketShare
			}
		}
		return min, max
	}
	_, awareMax := shares(SchemeSocketAware)
	if awareMax < 0.95 {
		t.Errorf("static scheme max share = %v, want ~1 on stress graph", awareMax)
	}
	lbMin, lbMax := shares(SchemeLoadBalanced)
	if lbMax > 0.55 || lbMin < 0.45 {
		t.Errorf("balanced shares [%v, %v], want ~0.5", lbMin, lbMax)
	}
}
