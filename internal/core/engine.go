package core

import (
	"context"
	"fmt"
	"time"

	"fastbfs/graph"
	"fastbfs/internal/bitmap"
	"fastbfs/internal/frontier"
	"fastbfs/internal/numa"
	"fastbfs/internal/par"
	"fastbfs/internal/pbv"
	"fastbfs/internal/trace"
)

// INF is the depth/parent word of an unvisited vertex.
const INF = ^uint64(0)

// PackDP packs a parent id and depth into one DP word (parent high,
// depth low) — the paper stores depth and parent together so one store
// claims the vertex.
func PackDP(parent, depth uint32) uint64 { return uint64(parent)<<32 | uint64(depth) }

// UnpackDP splits a DP word.
func UnpackDP(dp uint64) (parent, depth uint32) {
	return uint32(dp >> 32), uint32(dp)
}

// workerState is the per-worker slice of the traversal state. Fields are
// only touched by the owning worker during a phase; worker 0 aggregates
// the metric fields between barriers.
type workerState struct {
	id     int
	socket int

	bins       *pbv.Set
	lastParent []uint32 // per bin: last parent written (marker encoding)
	rearr      *frontier.Rearranger

	fsegs []frontier.Segment
	psegs []pbv.Segment

	// Step-local metrics.
	edges   int64
	appends int64
	nextDeg int64 // out-degree sum of vertices this worker claimed (hybrid m_f)
	traffic *numa.Traffic

	sink uint64 // prefetch sink; defeats dead-code elimination
}

// Engine runs BFS traversals over one graph with one configuration.
// It retains all large buffers across Run calls so repeated traversals
// (the benchmark pattern: five roots per graph) do not reallocate.
// An Engine must not be used from multiple goroutines at once, and the
// Result of a Run aliases engine storage that the next Run overwrites.
type Engine struct {
	g    *graph.Graph
	cfg  Config
	topo *numa.Topology
	geo  geometry
	enc  pbv.Encoding // resolved from cfg.Encoding for this graph

	dp        []uint64
	visBit    *bitmap.Bitmap
	visByte   *bitmap.ByteMap
	visAtomic *bitmap.AtomicBitmap

	cur, nxt *frontier.Frontier
	ws       []*workerState
	bar      *par.Barrier

	// Hybrid (direction-optimizing) state, allocated when cfg.Hybrid.
	// in is the in-adjacency used by bottom-up scans; it is resolved
	// lazily on the first switch and cached for the Engine's lifetime,
	// so repeated Runs (the serve pool pattern) pay the transpose once.
	in       *graph.Graph
	frontBit *bitmap.Bitmap // dense frontier bitmap (bottom-up levels)
	nextBit  *bitmap.Bitmap // dense next-frontier bitmap (bottom-up levels)

	// ctx is the context of the Run in progress. Worker 0 polls it
	// between phase barriers so cancellation aborts within one step.
	ctx context.Context

	// Shared step state, written by worker 0 between barriers; the
	// mutex-based barrier provides the happens-before edges.
	curLayout   *frontier.Layout
	p2Layout    *pbv.Layout
	stop        bool
	err         error
	steps       int
	totEdges    int64
	totApps     int64
	runTrace    *trace.RunTrace
	stepTraffic *numa.Traffic
	stepMark    time.Time

	// Hybrid step state (also worker-0-written between barriers).
	dir       Direction   // direction of the step in progress
	dirs      []Direction // per-level directions of the run
	buConvert bool        // pending array→bitmap frontier conversion
	muEdges   int64       // m_u: edges not yet examined top-down
	awake     int64       // current frontier size (n_f)
}

// New builds an Engine for g with cfg (defaults applied).
func New(g *graph.Graph, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(g); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	topo, err := numa.NewTopology(n, cfg.Sockets, cfg.Workers)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g:    g,
		cfg:  cfg,
		topo: topo,
		geo:  deriveGeometry(n, cfg, topo.VNSShift()),
		dp:   make([]uint64, n),
		cur:  frontier.New(cfg.Workers),
		nxt:  frontier.New(cfg.Workers),
		bar:  par.NewBarrier(cfg.Workers),
	}
	switch cfg.VIS {
	case VISAtomicBit:
		e.visAtomic = bitmap.NewAtomicBitmap(n)
	case VISByte:
		e.visByte = bitmap.NewByteMap(n)
	case VISBit, VISPartitioned:
		e.visBit = bitmap.NewBitmap(n)
	}
	if cfg.Hybrid {
		e.frontBit = bitmap.NewBitmap(n)
		e.nextBit = bitmap.NewBitmap(n)
	}
	avgDeg := 0.0
	if n > 0 {
		avgDeg = float64(g.NumEdges()) / float64(n)
	}
	e.enc = cfg.Encoding.Choose(e.geo.nPBV, avgDeg)

	shift, regions := frontier.RegionShift(n, 4*g.NumEdges(), cfg.PageBytes, cfg.TLBEntries)
	e.ws = make([]*workerState, cfg.Workers)
	for w := range e.ws {
		st := &workerState{
			id:         w,
			socket:     topo.SocketOf(w),
			bins:       pbv.NewSet(e.geo.nPBV),
			lastParent: make([]uint32, e.geo.nPBV),
		}
		if cfg.Rearrange {
			st.rearr = frontier.NewRearranger(shift, regions)
		}
		if cfg.Instrument {
			st.traffic = numa.NewTraffic(cfg.Sockets)
		}
		e.ws[w] = st
	}
	return e, nil
}

// Config returns the effective configuration (defaults resolved).
func (e *Engine) Config() Config { return e.cfg }

// Geometry exposes the derived bin/partition parameters for reporting:
// N_VIS cache partitions and N_PBV bins.
func (e *Engine) Geometry() (nVIS, nPBV int) { return e.geo.nVIS, e.geo.nPBV }

// Encoding returns the resolved PBV encoding.
func (e *Engine) Encoding() pbv.Encoding { return e.enc }

// Result reports one traversal. DP aliases engine storage valid until
// the next Run.
type Result struct {
	Source uint32
	// DP holds the packed parent/depth word per vertex; INF = unvisited.
	DP []uint64
	// Steps is the number of frontier expansions (the graph depth D).
	Steps int
	// EdgesTraversed counts adjacency entries examined (the TEPS
	// numerator, work-based as in the paper).
	EdgesTraversed int64
	// Visited is the number of vertices assigned a depth (|V'|).
	Visited int64
	// Appends counts next-frontier insertions; Appends-Visited is the
	// benign-race duplicate work (paper: <=0.2%).
	Appends int64
	Elapsed time.Duration
	// Trace is non-nil when the engine was configured with Instrument.
	Trace *trace.RunTrace
	// Directions records how each level expanded (hybrid runs only;
	// nil otherwise). Like DP it aliases engine storage valid until the
	// next Run.
	Directions []Direction
}

// Depth returns the BFS depth of v, or -1 if unreached.
func (r *Result) Depth(v uint32) int32 {
	dp := r.DP[v]
	if dp == INF {
		return -1
	}
	return int32(uint32(dp))
}

// Parent returns the BFS parent of v, or -1 if unreached.
func (r *Result) Parent(v uint32) int64 {
	dp := r.DP[v]
	if dp == INF {
		return -1
	}
	return int64(dp >> 32)
}

// MTEPS returns the traversal rate in millions of traversed edges per
// second.
func (r *Result) MTEPS() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.EdgesTraversed) / s / 1e6
}

// Run performs a BFS from source.
func (e *Engine) Run(source uint32) (*Result, error) {
	return e.RunContext(context.Background(), source)
}

// RunContext performs a BFS from source under ctx. Worker 0 checks the
// context between phase barriers, so cancellation or a deadline aborts
// the traversal within one step and Run returns ctx.Err(). The engine
// stays reusable after a canceled run: the next Run resets all state.
func (e *Engine) RunContext(ctx context.Context, source uint32) (*Result, error) {
	n := e.g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("core: source %d out of range", source)
	}
	if err := ctx.Err(); err != nil {
		return nil, err // expired before any step started
	}
	e.ctx = ctx
	// Rearm the barrier in case a previous run was aborted by a panic.
	e.bar.Reset()
	// Reset the traversal state.
	if err := par.For(e.cfg.Workers, n, func(lo, hi int) {
		dp := e.dp[lo:hi]
		for i := range dp {
			dp[i] = INF
		}
	}); err != nil {
		return nil, err
	}
	switch {
	case e.visAtomic != nil:
		e.visAtomic.Reset()
	case e.visByte != nil:
		e.visByte.Reset()
	case e.visBit != nil:
		e.visBit.Reset()
	}
	e.cur.Reset()
	e.nxt.Reset()
	e.stop, e.err, e.steps, e.totEdges, e.totApps = false, nil, 0, 0, 0
	e.dir, e.dirs, e.buConvert = DirTopDown, e.dirs[:0], false
	e.muEdges, e.awake = e.g.NumEdges(), 1
	e.runTrace = nil
	if e.cfg.Instrument {
		e.runTrace = &trace.RunTrace{Traffic: numa.NewTraffic(e.cfg.Sockets)}
		if e.stepTraffic == nil {
			e.stepTraffic = numa.NewTraffic(e.cfg.Sockets)
		}
		for _, st := range e.ws {
			st.traffic.Reset()
		}
	}

	e.dp[source] = PackDP(source, 0)
	switch {
	case e.visAtomic != nil:
		e.visAtomic.TrySet(source)
	case e.visByte != nil:
		e.visByte.TrySet(source)
	case e.visBit != nil:
		e.visBit.TrySet(source)
	}
	e.cur.Arrays[0] = append(e.cur.Arrays[0][:0], source)
	e.totApps = 1 // the seeded source counts as visited work

	start := time.Now()
	// A panicking worker poisons the barrier before re-panicking so the
	// surviving workers drain instead of deadlocking; par.Run recovers
	// the panic and returns it as an error.
	runErr := par.Run(e.cfg.Workers, func(w int) {
		defer func() {
			if r := recover(); r != nil {
				e.bar.Break()
				panic(r)
			}
		}()
		e.worker(w)
	})
	elapsed := time.Since(start)
	if runErr != nil {
		return nil, fmt.Errorf("core: traversal aborted: %w", runErr)
	}
	if e.err != nil {
		return nil, e.err
	}

	var visited int64
	var vparts = make([]int64, e.cfg.Workers)
	if err := par.Run(e.cfg.Workers, func(w int) {
		lo, hi := par.Range(n, w, e.cfg.Workers)
		var c int64
		for _, dp := range e.dp[lo:hi] {
			if dp != INF {
				c++
			}
		}
		vparts[w] = c
	}); err != nil {
		return nil, err
	}
	for _, c := range vparts {
		visited += c
	}
	if e.runTrace != nil {
		e.runTrace.Finish()
	}
	res := &Result{
		Source:         source,
		DP:             e.dp,
		Steps:          e.steps,
		EdgesTraversed: e.totEdges,
		Visited:        visited,
		Appends:        e.totApps,
		Elapsed:        elapsed,
		Trace:          e.runTrace,
	}
	if e.cfg.Hybrid {
		res.Directions = e.dirs
	}
	return res, nil
}

// worker is the per-goroutine step loop (paper Figure 3).
func (e *Engine) worker(w int) {
	st := e.ws[w]
	maxSteps := e.cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = e.g.NumVertices() + 1
	}
	twoPhase := e.cfg.Scheme != SchemeSinglePhase

	for step := uint32(1); ; step++ {
		if w == 0 {
			if e.dir == DirTopDown {
				e.curLayout = frontier.BuildLayout(e.cur)
			}
			e.stepMark = time.Now()
		}
		// The context is NOT checked here: between the end-of-step barrier
		// and this one the other workers read e.stop unsynchronized, so a
		// write from worker 0 in this window could be seen by some workers
		// and not others, splitting the cohort and deadlocking the barrier.
		// Worker 0 polls ctx only inside its exclusive windows (mid-phase
		// and finishStep), which the barriers order against every read.
		if !e.bar.Wait() || e.stop {
			return
		}

		// e.dir was written by worker 0 in the previous finishStep; the
		// barrier above orders that write against this read, so the whole
		// cohort takes the same branch (the two paths use different
		// barrier counts — divergence would deadlock).
		if e.dir == DirBottomUp {
			if !e.bottomUpStep(st, step, maxSteps) {
				return
			}
			continue
		}

		var m trace.StepMetrics
		var tPhase1, tPhase2 time.Duration
		if twoPhase {
			e.phase1(st, step)
			if !e.bar.Wait() {
				return
			}
			if w == 0 {
				if err := e.ctx.Err(); err != nil {
					e.err, e.stop = err, true
				} else {
					tPhase1 = time.Since(e.stepMark)
					e.p2Layout = pbv.BuildLayout(e.cfg.Workers, e.geo.nPBV, func(wk, b int) int {
						return len(e.ws[wk].bins.Bins[b])
					})
					e.stepMark = time.Now()
				}
			}
			if !e.bar.Wait() || e.stop {
				return
			}
			e.phase2(st, step)
		} else {
			e.direct(st, step)
		}
		if !e.bar.Wait() {
			return
		}

		var tRearr time.Duration
		if e.cfg.Rearrange {
			if w == 0 {
				tPhase2 = time.Since(e.stepMark)
				e.stepMark = time.Now()
			}
			if !e.bar.Wait() {
				return
			}
			if st.rearr != nil {
				st.rearr.Rearrange(e.nxt.Arrays[w])
			}
			if !e.bar.Wait() {
				return
			}
			if w == 0 {
				tRearr = time.Since(e.stepMark)
			}
		} else if w == 0 {
			tPhase2 = time.Since(e.stepMark)
		}

		if w == 0 {
			if !twoPhase {
				tPhase1, tPhase2 = tPhase2, 0
			}
			m.Step = int(step)
			m.Frontier = e.curLayout.Total()
			m.Phase1, m.Phase2, m.Rearr = tPhase1, tPhase2, tRearr
			e.finishStep(step, maxSteps, &m)
		}
		if !e.bar.Wait() {
			return
		}
		if e.stop {
			return
		}
	}
}

// finishStep aggregates metrics, swaps frontiers and decides termination.
// Runs on worker 0 between barriers.
func (e *Engine) finishStep(step uint32, maxSteps int, m *trace.StepMetrics) {
	bu := e.dir == DirBottomUp
	for _, st := range e.ws {
		m.Edges += st.edges
		m.NewVertices += st.appends
		if !bu && e.cfg.Scheme != SchemeSinglePhase {
			m.PBVEntries += st.bins.Entries()
		}
		st.edges, st.appends = 0, 0
	}
	e.totEdges += m.Edges
	e.totApps += m.NewVertices
	e.steps = int(step)

	if e.runTrace != nil {
		if !bu && e.p2Layout != nil && e.cfg.Scheme != SchemeSinglePhase {
			if e.cfg.Scheme == SchemeLoadBalanced {
				m.SharedBins = e.p2Layout.SharedBins(e.cfg.Sockets)
			}
			if total := e.p2Layout.Total(); total > 0 {
				var widest int64
				for s := 0; s < e.cfg.Sockets; s++ {
					lo, hi := e.socketSpan(s)
					if hi-lo > widest {
						widest = hi - lo
					}
				}
				m.MaxSocketShare = float64(widest) / float64(total)
			}
		}
		// Aggregate this step's traffic first: α is per step (the hot
		// socket can alternate between steps, as on the stress graph).
		e.stepTraffic.Reset()
		for _, st := range e.ws {
			e.stepTraffic.Merge(st.traffic)
			st.traffic.Reset()
		}
		m.AlphaAdj = e.stepTraffic.Alpha(numa.StructAdj)
		m.AlphaPBV = e.stepTraffic.Alpha(numa.StructPBV)
		m.AlphaDP = e.stepTraffic.Alpha(numa.StructDP)
		e.runTrace.Traffic.Merge(e.stepTraffic)
		e.runTrace.Add(*m)
	}

	if e.cfg.StepHook != nil {
		// Exclusive window: only worker 0 runs here, between barriers,
		// so a panicking hook unwinds through the same poison-the-
		// barrier path as any other worker-0 crash.
		e.cfg.StepHook(int(step))
	}

	total := e.nxt.Total()
	e.cur, e.nxt = e.nxt, e.cur
	e.nxt.Reset()
	if e.cfg.Hybrid {
		e.directionStep(m, total)
		e.awake = total
	}
	if total == 0 {
		e.stop = true
	} else if int(step) >= maxSteps {
		e.stop = true
		e.err = fmt.Errorf("core: step limit %d exceeded (cycle in step accounting?)", maxSteps)
	} else if err := e.ctx.Err(); err != nil {
		e.stop = true
		e.err = err
	}
}
