package core

import (
	"fmt"
	"testing"

	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/pbv"
)

// testGraphs returns a small zoo of graphs exercising distinct regimes.
func testGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	gs := map[string]*graph.Graph{}
	var err error
	if gs["ur"], err = gen.UniformRandom(5000, 8, 1); err != nil {
		tb.Fatal(err)
	}
	if gs["rmat"], err = gen.RMAT(gen.Graph500Params(12, 8), 2); err != nil {
		tb.Fatal(err)
	}
	if gs["grid"], err = gen.Grid2D(64, 64, 0, 3); err != nil {
		tb.Fatal(err)
	}
	if gs["stress"], err = gen.StressBipartite(4096, 6, 4); err != nil {
		tb.Fatal(err)
	}
	if gs["path"], err = gen.Grid2D(1, 4000, 0, 0); err != nil {
		tb.Fatal(err)
	}
	return gs
}

func sameDepths(t *testing.T, g *graph.Graph, want, got *Result, label string) {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		if want.Depth(uint32(v)) != got.Depth(uint32(v)) {
			t.Fatalf("%s: vertex %d depth = %d, want %d",
				label, v, got.Depth(uint32(v)), want.Depth(uint32(v)))
		}
	}
}

// TestEngineMatchesSerial runs every (VIS, scheme, encoding, workers,
// sockets) combination on every test graph and demands exact depth
// equality with the serial reference.
func TestEngineMatchesSerial(t *testing.T) {
	for name, g := range testGraphs(t) {
		ref, err := SerialBFS(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, vis := range []VISKind{VISNone, VISAtomicBit, VISByte, VISBit, VISPartitioned} {
			for _, scheme := range []Scheme{SchemeSinglePhase, SchemeSocketAware, SchemeLoadBalanced} {
				for _, enc := range []pbv.Encoding{pbv.EncodingMarker, pbv.EncodingPair} {
					for _, workers := range []int{1, 3, 8} {
						for _, sockets := range []int{1, 2} {
							if workers < sockets {
								continue
							}
							label := fmt.Sprintf("%s/%v/%v/%v/w%d/s%d",
								name, vis, scheme, enc, workers, sockets)
							cfg := Config{
								Workers: workers, Sockets: sockets,
								VIS: vis, Scheme: scheme, Encoding: enc,
								Rearrange: true, BatchBinning: workers%2 == 0,
								PrefetchDist: 4,
								CacheBytes:   1 << 12, // tiny LLC: forces N_VIS > 1
							}
							e, err := New(g, cfg)
							if err != nil {
								t.Fatalf("%s: %v", label, err)
							}
							res, err := e.Run(0)
							if err != nil {
								t.Fatalf("%s: %v", label, err)
							}
							sameDepths(t, g, ref, res, label)
							if res.Visited != ref.Visited {
								t.Fatalf("%s: visited %d, want %d", label, res.Visited, ref.Visited)
							}
						}
					}
				}
			}
		}
	}
}

// TestEngineReuse checks that one engine produces correct results for
// several roots in sequence (buffer reuse).
func TestEngineReuse(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(11, 8), 7)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []uint32{0, 1, 17, 500, 2047} {
		ref, err := SerialBFS(g, src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		sameDepths(t, g, ref, res, fmt.Sprintf("src=%d", src))
	}
}
