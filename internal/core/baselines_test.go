package core

import (
	"fmt"
	"testing"
)

// TestAsyncMatchesSerial: the label-correcting traversal must converge
// to exactly the serial depths on every graph family, at any worker
// count.
func TestAsyncMatchesSerial(t *testing.T) {
	for name, g := range testGraphs(t) {
		ref, err := SerialBFS(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 7} {
			res, err := AsyncBFS(g, 0, workers)
			if err != nil {
				t.Fatal(err)
			}
			sameDepths(t, g, ref, res, fmt.Sprintf("async/%s/w%d", name, workers))
			if res.Visited != ref.Visited {
				t.Fatalf("async/%s/w%d: visited %d, want %d", name, workers, res.Visited, ref.Visited)
			}
			if res.Steps != ref.Steps-1 && res.Steps != ref.Steps {
				// Steps for async is the max depth; serial counts levels.
				t.Fatalf("async/%s/w%d: steps %d vs serial %d", name, workers, res.Steps, ref.Steps)
			}
		}
	}
}

// TestAsyncWorkInefficiency: relaxation counts are at least the visited
// count (each visited vertex is relaxed at least once) — and the excess
// is the work inefficiency the paper attributes to asynchronous schemes.
func TestAsyncWorkInefficiency(t *testing.T) {
	g := testGraphs(t)["rmat"]
	res, err := AsyncBFS(g, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appends < res.Visited {
		t.Errorf("relaxations %d < visited %d", res.Appends, res.Visited)
	}
	// Edges examined is at least the synchronous traversal's count.
	ref, _ := SerialBFS(g, 0)
	if res.EdgesTraversed < ref.EdgesTraversed {
		t.Errorf("async examined %d edges, serial %d", res.EdgesTraversed, ref.EdgesTraversed)
	}
}

// TestWorkStealingMatchesSerial: the Leiserson-style comparator must be
// exactly correct too (its CAS claims admit no duplicate work).
func TestWorkStealingMatchesSerial(t *testing.T) {
	for name, g := range testGraphs(t) {
		ref, err := SerialBFS(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			res, err := WorkStealingBFS(g, 0, workers)
			if err != nil {
				t.Fatal(err)
			}
			sameDepths(t, g, ref, res, fmt.Sprintf("ws/%s/w%d", name, workers))
			if res.Appends != res.Visited {
				t.Fatalf("ws/%s: CAS claims must be exact: appends %d visited %d",
					name, res.Appends, res.Visited)
			}
		}
	}
}

func TestBaselineSourceValidation(t *testing.T) {
	g := testGraphs(t)["ur"]
	if _, err := AsyncBFS(g, 1<<30, 2); err == nil {
		t.Error("async accepted out-of-range source")
	}
	if _, err := WorkStealingBFS(g, 1<<30, 2); err == nil {
		t.Error("work-stealing accepted out-of-range source")
	}
	if _, err := SerialBFS(g, 1<<30); err == nil {
		t.Error("serial accepted out-of-range source")
	}
	// workers < 1 is clamped, not an error.
	if _, err := AsyncBFS(g, 0, 0); err != nil {
		t.Errorf("async rejected workers=0: %v", err)
	}
	if _, err := WorkStealingBFS(g, 0, -1); err != nil {
		t.Errorf("work-stealing rejected workers=-1: %v", err)
	}
}

// TestAsyncIsolatedSource: a source with no outgoing edges terminates
// immediately with one visited vertex.
func TestAsyncIsolatedSource(t *testing.T) {
	g := testGraphs(t)["rmat"]
	// Find an isolated vertex (R-MAT has them).
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(uint32(v)) == 0 {
			res, err := AsyncBFS(g, uint32(v), 4)
			if err != nil {
				t.Fatal(err)
			}
			if res.Visited != 1 || res.Steps != 0 {
				t.Fatalf("isolated source: visited=%d steps=%d", res.Visited, res.Steps)
			}
			return
		}
	}
	t.Skip("no isolated vertex found")
}
