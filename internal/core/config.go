// Package core implements the paper's BFS traversal engine: the
// atomic-free cache-resident VIS protocol (§III-A), the two-phase
// Potential-Boundary-Vertex traversal with socket-aware and load-balanced
// work division (§III-B), frontier rearrangement for TLB locality, and
// the baselines the paper compares against (no-VIS, atomic bitmap,
// single-phase).
package core

import (
	"fmt"

	"fastbfs/graph"
	"fastbfs/internal/bitmap"
	"fastbfs/internal/par"
	"fastbfs/internal/pbv"
)

// VISKind selects the visited-structure variant (Figure 4 of the paper).
type VISKind int

// VIS variants.
const (
	// VISNone checks the DP array directly per neighbor (the paper's
	// first baseline scheme).
	VISNone VISKind = iota
	// VISAtomicBit is a bit per vertex updated with CAS — the Agarwal et
	// al. baseline ("A. Vis").
	VISAtomicBit
	// VISByte is a byte per vertex with atomic-free updates.
	VISByte
	// VISBit is a bit per vertex with atomic-free updates, unpartitioned.
	VISBit
	// VISPartitioned is the paper's scheme: atomic-free bits with the
	// vertex range partitioned so each partition's slice stays
	// cache-resident (N_VIS from the configured LLC size).
	VISPartitioned
)

// String names the VIS kind as in Figure 4's legend.
func (k VISKind) String() string {
	switch k {
	case VISNone:
		return "no-VIS"
	case VISAtomicBit:
		return "atomic-bit"
	case VISByte:
		return "AF-byte"
	case VISBit:
		return "AF-bit"
	case VISPartitioned:
		return "AF-partitioned"
	}
	return "?"
}

// Direction labels how one BFS level expanded the frontier: top-down
// (the paper's Phase-I/II machinery) or bottom-up (each unvisited vertex
// scans its in-neighbors for a frontier parent, Beamer-style).
type Direction uint8

// Level directions.
const (
	DirTopDown Direction = iota
	DirBottomUp
)

// String renders the direction as one letter ("T"/"B") — the compact
// per-level trace format.
func (d Direction) String() string {
	if d == DirBottomUp {
		return "B"
	}
	return "T"
}

// DirectionString renders a per-level direction slice, e.g. "TTBBBT".
func DirectionString(dirs []Direction) string {
	b := make([]byte, len(dirs))
	for i, d := range dirs {
		b[i] = d.String()[0]
	}
	return string(b)
}

// Direction-switch defaults (Beamer et al.'s α/β, as adopted by GAP).
const (
	DefaultAlpha = 15.0
	DefaultBeta  = 18.0
)

// Scheme selects the multi-socket work-distribution strategy
// (Figure 5 of the paper).
type Scheme int

// Work-distribution schemes.
const (
	// SchemeSinglePhase performs no multi-socket optimization: one phase,
	// spatially incoherent VIS/DP updates from every socket.
	SchemeSinglePhase Scheme = iota
	// SchemeSocketAware bins neighbors in Phase-I and statically assigns
	// each socket its own bins: zero cross-socket VIS/DP traffic, but
	// load imbalance when bins fill unevenly.
	SchemeSocketAware
	// SchemeLoadBalanced is the paper's scheme: bins are divided so every
	// socket processes an equal number of PBV entries, sharing at most
	// two boundary bins per division point.
	SchemeLoadBalanced
)

// String names the scheme as in Figure 5's legend.
func (s Scheme) String() string {
	switch s {
	case SchemeSinglePhase:
		return "no-ms-opt"
	case SchemeSocketAware:
		return "ms-aware"
	case SchemeLoadBalanced:
		return "ms-load-balanced"
	}
	return "?"
}

// Config controls an Engine. The zero value is completed by defaults:
// one simulated socket, all available workers, the paper's VIS and
// load-balanced scheme, rearrangement on, Nehalem-like cache geometry.
type Config struct {
	// Workers is the number of goroutines in the traversal pool.
	Workers int
	// Sockets is the number of simulated sockets (power of two). Workers
	// are divided into contiguous per-socket groups.
	Sockets int
	// VIS selects the visited-structure variant.
	VIS VISKind
	// Scheme selects the multi-socket work distribution.
	Scheme Scheme
	// Rearrange enables the TLB rearrangement of the next frontier.
	Rearrange bool
	// BatchBinning computes Phase-I bin indices in blocks of eight — the
	// scalar analogue of the paper's SSE binning.
	BatchBinning bool
	// Encoding selects the PBV entry encoding; EncodingAuto follows the
	// paper's footnote-4 heuristic.
	Encoding pbv.Encoding
	// PrefetchDist is the software-prefetch lookahead (entries ahead in
	// the frontier whose offsets are touched early); 0 disables.
	PrefetchDist int
	// CacheBytes is the (simulated) LLC capacity driving N_VIS.
	CacheBytes int64
	// L2Bytes is the per-core L2 size, used by the analytical model.
	L2Bytes int64
	// PageBytes and TLBEntries drive the rearrangement region size.
	PageBytes  int64
	TLBEntries int
	// Instrument enables per-step metrics and socket-traffic accounting.
	Instrument bool
	// MaxSteps bounds the step loop as a safety net; 0 means |V|+1.
	MaxSteps int

	// Hybrid enables direction-optimizing traversal: levels whose
	// frontier out-edge sum m_f exceeds m_u/Alpha (m_u = edges not yet
	// explored top-down) run bottom-up, returning top-down once the
	// frontier shrinks below |V|/Beta (Beamer's heuristic).
	Hybrid bool
	// Alpha is the top-down→bottom-up switch threshold divisor; larger
	// switches earlier (+Inf forces bottom-up from level 2, a value
	// near 0 never switches). <= 0 means DefaultAlpha.
	Alpha float64
	// Beta is the bottom-up→top-down return divisor; the engine stays
	// bottom-up while the frontier holds more than |V|/Beta vertices or
	// keeps growing. <= 0 means DefaultBeta.
	Beta float64
	// InAdj supplies the in-adjacency graph for bottom-up scans of a
	// directed graph; it is invoked at most once, on the first switch to
	// bottom-up. nil asserts the graph is symmetric (the graph itself
	// serves as its own in-adjacency).
	InAdj func() *graph.Graph
	// StepHook, when non-nil, is invoked by the coordinating worker once
	// per completed traversal step, inside the same exclusive window
	// that checks the run context (so it is ordered against every other
	// worker by the step barriers). It exists for the fault-injection
	// harness: a hook may sleep (slow-traversal injection) or panic
	// (mid-run crash injection; the panic poisons the step barrier and
	// is recovered by the parallel runtime, surfacing as an error from
	// Run). Leave nil in production.
	StepHook func(step int)
}

// DefaultConfig returns the paper's best configuration for the given
// number of simulated sockets.
func DefaultConfig(sockets int) Config {
	return Config{
		Sockets:      sockets,
		VIS:          VISPartitioned,
		Scheme:       SchemeLoadBalanced,
		Rearrange:    true,
		BatchBinning: true,
		PrefetchDist: 8,
	}
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = par.DefaultWorkers()
	}
	if c.Sockets == 0 {
		c.Sockets = 1
	}
	if c.Workers < c.Sockets {
		c.Workers = c.Sockets
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 8 << 20
	}
	if c.L2Bytes == 0 {
		c.L2Bytes = 256 << 10
	}
	if c.PageBytes == 0 {
		c.PageBytes = 4096
	}
	if c.TLBEntries == 0 {
		c.TLBEntries = 64
	}
	if c.Alpha <= 0 {
		c.Alpha = DefaultAlpha
	}
	if c.Beta <= 0 {
		c.Beta = DefaultBeta
	}
	return c
}

// validate rejects impossible configurations.
func (c Config) validate(g *graph.Graph) error {
	if c.Sockets < 1 || c.Sockets&(c.Sockets-1) != 0 {
		return fmt.Errorf("core: sockets must be a power of two, got %d", c.Sockets)
	}
	if c.Workers < 1 {
		return fmt.Errorf("core: workers must be >= 1, got %d", c.Workers)
	}
	if g.NumVertices() == 0 {
		return fmt.Errorf("core: empty graph")
	}
	if g.NumVertices() > graph.MaxVertices {
		return fmt.Errorf("core: graph exceeds MaxVertices")
	}
	if c.VIS < VISNone || c.VIS > VISPartitioned {
		return fmt.Errorf("core: unknown VIS kind %d", c.VIS)
	}
	if c.Scheme < SchemeSinglePhase || c.Scheme > SchemeLoadBalanced {
		return fmt.Errorf("core: unknown scheme %d", c.Scheme)
	}
	return nil
}

// derived geometry: bins and partitions (paper §III-C(1)).
type geometry struct {
	nVIS      int  // cache partitions of the VIS structure
	extraBits uint // log2(bins per socket)
	binShift  uint // bin(v) = v >> binShift
	nPBV      int  // total bins = Sockets << extraBits
}

func deriveGeometry(numVertices int, cfg Config, vnsShift uint) geometry {
	nVIS := 1
	if cfg.VIS == VISPartitioned {
		nVIS = bitmap.Partitions(numVertices, cfg.CacheBytes)
	}
	extra := uint(bitmap.Log2(bitmap.NextPow2(nVIS)))
	if extra > vnsShift {
		extra = vnsShift
	}
	return geometry{
		nVIS:      nVIS,
		extraBits: extra,
		binShift:  vnsShift - extra,
		nPBV:      cfg.Sockets << extra,
	}
}
