package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fastbfs/graph"
)

// WorkStealingBFS is a simplified Leiserson-&-Schardl-style parallel BFS
// (the Figure 7 comparator for the University-of-Florida graphs): level
// synchronous with dynamic intra-level load balancing — workers claim
// fixed-size chunks of the shared frontier from an atomic cursor, the
// moral equivalent of Cilk++'s bag splitting — and CAS-based vertex
// claims. It maintains no VIS filter, performs no binning and no
// locality optimization, which is exactly the gap the paper attributes
// its 2–10x advantage to.
func WorkStealingBFS(g *graph.Graph, source uint32, workers int) (*Result, error) {
	n := g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("core: source %d out of range", source)
	}
	if workers < 1 {
		workers = 1
	}
	dp := make([]uint64, n)
	for i := range dp {
		dp[i] = INF
	}
	start := time.Now()
	dp[source] = PackDP(source, 0)

	const chunk = 128
	frontier := []uint32{source}
	nexts := make([][]uint32, workers)
	var edges int64
	steps := 0

	for len(frontier) > 0 {
		steps++
		depth := uint32(steps)
		var cursor int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				out := nexts[w][:0]
				var localEdges int64
				for {
					lo := atomic.AddInt64(&cursor, chunk) - chunk
					if lo >= int64(len(frontier)) {
						break
					}
					hi := lo + chunk
					if hi > int64(len(frontier)) {
						hi = int64(len(frontier))
					}
					for _, u := range frontier[lo:hi] {
						adj := g.Neighbors[g.Offsets[u]:g.Offsets[u+1]]
						localEdges += int64(len(adj))
						for _, v := range adj {
							// CAS claim: exactly one parent wins.
							if atomic.LoadUint64(&dp[v]) != INF {
								continue
							}
							if atomic.CompareAndSwapUint64(&dp[v], INF, PackDP(u, depth)) {
								out = append(out, v)
							}
						}
					}
				}
				nexts[w] = out
				atomic.AddInt64(&edges, localEdges)
			}(w)
		}
		wg.Wait()
		frontier = frontier[:0]
		for w := range nexts {
			frontier = append(frontier, nexts[w]...)
		}
	}
	elapsed := time.Since(start)

	var visited int64
	for _, d := range dp {
		if d != INF {
			visited++
		}
	}
	return &Result{
		Source:         source,
		DP:             dp,
		Steps:          steps,
		EdgesTraversed: edges,
		Visited:        visited,
		Appends:        visited,
		Elapsed:        elapsed,
	}, nil
}
