package core

import (
	"math/bits"
	"time"

	"fastbfs/internal/numa"
	"fastbfs/internal/par"
	"fastbfs/internal/trace"
)

// Bottom-up traversal (the direction-optimizing extension, after Beamer
// et al.): when the frontier's out-edge sum m_f grows past a fraction of
// the unexplored edges m_u, it is cheaper to flip the loop — each
// UNVISITED vertex scans its in-neighbors and stops at the first one
// found in the frontier — than to expand the frontier outward. On
// low-diameter RMAT graphs the middle levels touch nearly every edge
// top-down; bottom-up's early exit skips most of them.
//
// Integration with the paper's machinery:
//
//   - Worker ranges are WORD-ALIGNED over the frontier bitmaps (32
//     vertices per 32-bit word), so every bottom-up write — the DP
//     claim, the VIS bit, the next-frontier bit — lands in storage only
//     the owning worker touches. The kernel therefore needs no atomics
//     and no DP recheck: claims are exclusive by construction, which is
//     strictly stronger than the top-down atomic-free + recheck
//     discipline and composes with it across the step barrier.
//   - The scan order is sequential over the vertex range, which visits
//     the N_VIS cache partitions in ascending order: the active VIS/DP
//     slice stays LLC-resident exactly as in the top-down phases.
//   - Claimed vertices are appended to the regular per-worker next
//     arrays as well as the next-frontier bitmap, so a bottom-up→
//     top-down transition is free (finishStep's swap works unchanged)
//     and frontier totals need no bitmap popcount.

// buWords returns the word range [lo, hi) of the frontier bitmaps owned
// by worker w.
func (e *Engine) buWords(w int) (lo, hi int) {
	return par.Range(e.nextBit.NumWords(), w, e.cfg.Workers)
}

// bottomUpStep runs one bottom-up level: the optional array→bitmap
// frontier conversion, this worker's share of the in-neighbor scan, and
// (on worker 0) the step finish. Returns false when the worker must
// exit — a broken barrier or a stop decision.
func (e *Engine) bottomUpStep(st *workerState, step uint32, maxSteps int) bool {
	w := st.id
	wLo, wHi := e.buWords(w)
	// Clear this worker's share of the next-frontier bitmap. No barrier
	// needed: the scan sets next-frontier bits only in this same range.
	e.nextBit.ClearWords(wLo, wHi)

	if e.buConvert {
		// First bottom-up level after a top-down one: materialize the
		// frontier bitmap from the per-worker frontier arrays. Each
		// worker clears its own word range, then (after a barrier) ORs
		// its own array in — the array holds arbitrary vertex ids, so
		// two workers can collide in a word and Or must CAS.
		e.frontBit.ClearWords(wLo, wHi)
		if !e.bar.Wait() {
			return false
		}
		for _, u := range e.cur.Arrays[w] {
			e.frontBit.Or(u)
		}
		if !e.bar.Wait() {
			return false
		}
	}

	e.bottomUp(st, step, wLo, wHi)
	if !e.bar.Wait() {
		return false
	}

	if w == 0 {
		var m trace.StepMetrics
		m.Step = int(step)
		m.Frontier = e.awake
		m.BottomUp = true
		m.Phase1 = time.Since(e.stepMark)
		e.finishStep(step, maxSteps, &m)
	}
	if !e.bar.Wait() {
		return false
	}
	return !e.stop
}

// bottomUp scans this worker's vertex range for unvisited vertices and
// claims a frontier parent for each via early-exiting in-neighbor scan.
func (e *Engine) bottomUp(st *workerState, depth uint32, wLo, wHi int) {
	n := uint32(e.g.NumVertices())
	in := e.in
	front := e.frontBit.Words()
	nextW := e.nextBit.Words()
	next := e.nxt.Arrays[st.id]

	var visWords []uint32
	if e.visBit != nil {
		visWords = e.visBit.Words()
	}

	for wi := wLo; wi < wHi; wi++ {
		// Full-word skip: a set VIS bit implies a visited vertex (TrySet
		// always precedes the claim-or-duplicate outcome, and the step
		// barrier orders both), so an all-ones word holds no work. The
		// converse does not hold — dropped sibling bits — which is why
		// the per-vertex test below is against DP, the authority.
		if visWords != nil && visWords[wi] == ^uint32(0) {
			continue
		}
		base := uint32(wi) << 5
		limit := n - base
		if limit > 32 {
			limit = 32
		}
		var claimed uint32
		for b := uint32(0); b < limit; b++ {
			v := base + b
			if e.dp[v] != INF {
				continue
			}
			adj := in.Neighbors[in.Offsets[v]:in.Offsets[v+1]]
			scanned := 0
			for _, u := range adj {
				scanned++
				if front[u>>5]&(1<<(u&31)) != 0 {
					e.dp[v] = PackDP(u, depth)
					claimed |= 1 << b
					next = append(next, v)
					st.appends++
					break
				}
			}
			st.edges += int64(scanned)
			if e.cfg.Instrument {
				st.traffic.Add(numa.StructAdj, e.topo.HomeSocket(v), st.socket,
					2*cacheLine+4*int64(scanned))
			}
		}
		if claimed != 0 {
			nextW[wi] |= claimed
			// Mirror the claims into the VIS structure so later top-down
			// levels skip them at probe cost, not DP cost.
			switch {
			case visWords != nil:
				visWords[wi] |= claimed
			case e.visByte != nil:
				for c := claimed; c != 0; c &= c - 1 {
					e.visByte.TrySet(base + uint32(bits.TrailingZeros32(c)))
				}
			case e.visAtomic != nil:
				for c := claimed; c != 0; c &= c - 1 {
					e.visAtomic.TrySet(base + uint32(bits.TrailingZeros32(c)))
				}
			}
			if e.cfg.Instrument {
				for c := claimed; c != 0; c &= c - 1 {
					e.chargeVisit(st, base+uint32(bits.TrailingZeros32(c)))
				}
			}
		}
	}
	e.nxt.Arrays[st.id] = next
}

// directionStep records the finished level's direction and decides the
// next one (Beamer's α/β heuristic in the GAP formulation). Runs on
// worker 0 inside finishStep, after the frontier swap: `total` is the
// size of the frontier the next level will expand.
func (e *Engine) directionStep(m *trace.StepMetrics, total int64) {
	e.dirs = append(e.dirs, e.dir)
	e.buConvert = false
	if e.dir == DirTopDown {
		// m_u shrinks by the edges this top-down step examined (bottom-up
		// steps leave it alone, matching GAP: the estimate only needs to
		// be conservative).
		e.muEdges -= m.Edges
		if e.muEdges < 0 {
			e.muEdges = 0
		}
		var scout int64 // m_f: out-edge sum of the frontier just produced
		for _, st := range e.ws {
			scout += st.nextDeg
			st.nextDeg = 0
		}
		if total > 0 && float64(scout) > float64(e.muEdges)/e.cfg.Alpha {
			e.dir = DirBottomUp
			e.buConvert = true
			if e.in == nil {
				// First switch ever: resolve the in-adjacency. cfg.InAdj
				// may run a parallel transpose — safe here because par.Run
				// spawns fresh goroutines rather than borrowing this pool.
				if e.cfg.InAdj != nil {
					e.in = e.cfg.InAdj()
				} else {
					e.in = e.g // symmetric graph is its own in-adjacency
				}
			}
		}
	} else {
		// Stay bottom-up while the frontier keeps growing or remains a
		// large fraction of the graph; otherwise return top-down. The
		// next arrays already hold the frontier in vertex order, so the
		// return costs nothing.
		if total >= e.awake || float64(total) > float64(e.g.NumVertices())/e.cfg.Beta {
			// The bitmap stays the frontier representation: swap.
			e.frontBit, e.nextBit = e.nextBit, e.frontBit
		} else {
			e.dir = DirTopDown
		}
	}
}
