package core

import (
	"sync/atomic"

	"fastbfs/internal/numa"
	"fastbfs/internal/par"
	"fastbfs/internal/pbv"
)

const cacheLine = 64

// phase1Range computes the global frontier range [lo, hi) a worker must
// expand this step, per the configured scheme.
func (e *Engine) phase1Range(st *workerState) (lo, hi int64) {
	total := e.curLayout.Total()
	if e.cfg.Scheme == SchemeSocketAware {
		// Threads divide the frontier enqueued by their own socket
		// (paper §III-B3(a), non-load-balanced variant).
		wl, wh := e.topo.WorkersOf(st.socket)
		base := e.curLayout.Start(wl)
		span := e.curLayout.Start(wh) - base
		il, ih := par.Range64(span, st.id-wl, wh-wl)
		return base + il, base + ih
	}
	// Load-balanced (and single-phase): even global division.
	return par.Range64(total, st.id, e.cfg.Workers)
}

// phase1 expands the assigned frontier slice, binning each neighbor into
// the Potential Boundary Vertex arrays by vertex range (paper Phase-I).
func (e *Engine) phase1(st *workerState, step uint32) {
	st.bins.Reset()
	for i := range st.lastParent {
		st.lastParent[i] = ^uint32(0)
	}
	lo, hi := e.phase1Range(st)
	st.fsegs = e.curLayout.Slice(lo, hi, st.fsegs[:0])

	pair := e.enc == pbv.EncodingPair
	for _, sg := range st.fsegs {
		arr := e.cur.Arrays[sg.Worker][sg.Lo:sg.Hi]
		if e.cfg.Instrument {
			st.traffic.Add(numa.StructBV, e.topo.SocketOf(sg.Worker), st.socket, 4*int64(len(arr)))
		}
		for k, u := range arr {
			if pf := k + e.cfg.PrefetchDist; e.cfg.PrefetchDist > 0 && pf < len(arr) {
				// Software prefetch stand-in: touch the offset entry of a
				// vertex a fixed distance ahead so its cache line is in
				// flight before the dependent adjacency load.
				st.sink += uint64(e.g.Offsets[arr[pf]])
			}
			adj := e.g.Neighbors[e.g.Offsets[u]:e.g.Offsets[u+1]]
			st.edges += int64(len(adj))
			if e.cfg.Instrument {
				st.traffic.Add(numa.StructAdj, e.topo.HomeSocket(u), st.socket,
					2*cacheLine+4*int64(len(adj)))
			}
			if pair {
				e.binPair(st, u, adj)
			} else if e.cfg.BatchBinning {
				e.binMarkerBatch(st, u, adj)
			} else {
				e.binMarker(st, u, adj)
			}
		}
	}
	if e.cfg.Instrument {
		// PBV writes land in the worker's local allocation; write
		// traffic doubles for the read-for-ownership (paper item 1.4).
		st.traffic.Add(numa.StructPBV, st.socket, st.socket, 8*st.bins.Entries())
	}
}

// binMarker appends the neighbors of u to their bins in the marker
// encoding: a parent marker precedes the first neighbor that lands in a
// bin after another vertex last wrote to it.
func (e *Engine) binMarker(st *workerState, u uint32, adj []uint32) {
	shift := e.geo.binShift
	bins := st.bins.Bins
	for _, v := range adj {
		b := v >> shift
		bb := bins[b]
		if st.lastParent[b] != u {
			bb = append(bb, pbv.EncodeMarker(u))
			st.lastParent[b] = u
		}
		bins[b] = append(bb, v)
	}
}

// binMarkerBatch is binMarker with bin indices computed in blocks of
// eight — the scalar analogue of the paper's SSE binning (§III-C(4)).
func (e *Engine) binMarkerBatch(st *workerState, u uint32, adj []uint32) {
	shift := e.geo.binShift
	bins := st.bins.Bins
	var bidx [8]uint32
	j := 0
	for ; j+8 <= len(adj); j += 8 {
		blk := adj[j : j+8 : j+8]
		for k := 0; k < 8; k++ {
			bidx[k] = blk[k] >> shift
		}
		for k := 0; k < 8; k++ {
			b := bidx[k]
			bb := bins[b]
			if st.lastParent[b] != u {
				bb = append(bb, pbv.EncodeMarker(u))
				st.lastParent[b] = u
			}
			bins[b] = append(bb, blk[k])
		}
	}
	for ; j < len(adj); j++ {
		v := adj[j]
		b := v >> shift
		bb := bins[b]
		if st.lastParent[b] != u {
			bb = append(bb, pbv.EncodeMarker(u))
			st.lastParent[b] = u
		}
		bins[b] = append(bb, v)
	}
}

// binPair appends (parent, vertex) pairs — the footnote-4 encoding,
// chosen when N_PBV >= the average degree.
func (e *Engine) binPair(st *workerState, u uint32, adj []uint32) {
	shift := e.geo.binShift
	bins := st.bins.Bins
	for _, v := range adj {
		b := v >> shift
		bins[b] = append(bins[b], u, v)
	}
}

// socketSpan returns the global PBV range assigned to a socket this
// step under the configured scheme.
func (e *Engine) socketSpan(socket int) (lo, hi int64) {
	total := e.p2Layout.Total()
	if e.cfg.Scheme == SchemeSocketAware {
		// Static: socket owns exactly its own bins (vertex range).
		binLo := socket << e.geo.extraBits
		binHi := binLo + 1<<e.geo.extraBits
		lo = e.p2Layout.BinStart(binLo)
		if binHi >= e.geo.nPBV {
			hi = total
		} else {
			hi = e.p2Layout.BinStart(binHi)
		}
		return lo, hi
	}
	// Load-balanced: equal entry counts per socket (paper's scheme;
	// at most two bins shared across a boundary).
	return par.Range64(total, socket, e.cfg.Sockets)
}

// phase2Range computes the global PBV range a worker scans this step.
func (e *Engine) phase2Range(st *workerState) (lo, hi int64) {
	sl, sh := e.socketSpan(st.socket)
	wl, wh := e.topo.WorkersOf(st.socket)
	il, ih := par.Range64(sh-sl, st.id-wl, wh-wl)
	lo, hi = sl+il, sl+ih
	if e.enc == pbv.EncodingPair {
		// Pair entries occupy two words; all segment lengths are even,
		// so rounding both bounds down keeps the division exact.
		lo &^= 1
		hi &^= 1
	}
	return lo, hi
}

// phase2 scans the assigned PBV entries, performs the atomic-free
// VIS/DP update, and emits the next frontier (paper Phase-II).
func (e *Engine) phase2(st *workerState, step uint32) {
	lo, hi := e.phase2Range(st)
	st.psegs = e.p2Layout.Slice(lo, hi, st.psegs[:0])
	next := e.nxt.Arrays[st.id]

	for _, sg := range st.psegs {
		arr := e.ws[sg.Worker].bins.Bins[sg.Bin]
		if e.cfg.Instrument {
			st.traffic.Add(numa.StructPBV, e.topo.SocketOf(sg.Worker), st.socket,
				4*int64(sg.Hi-sg.Lo))
		}
		if e.enc == pbv.EncodingPair {
			for i := sg.Lo; i < sg.Hi; i += 2 {
				next = e.visit(st, arr[i+1], arr[i], step, next)
			}
			continue
		}
		parent := uint32(0)
		if sg.Lo > 0 {
			// The segment is split mid-stream: recover the parent in
			// effect by scanning back to the nearest marker.
			if p, ok := pbv.RecoverParent(arr, sg.Lo-1); ok {
				parent = p
			}
		}
		for i := sg.Lo; i < sg.Hi; i++ {
			x := arr[i]
			if pbv.IsMarker(x) {
				parent = pbv.DecodeMarker(x)
				continue
			}
			next = e.visit(st, x, parent, step, next)
		}
	}
	e.nxt.Arrays[st.id] = next
}

// direct is the single-phase baseline (no multi-socket optimization):
// expand and update in one pass, exactly Figure 1 of the paper but with
// the configured VIS structure and atomic-free updates.
func (e *Engine) direct(st *workerState, step uint32) {
	lo, hi := e.phase1Range(st)
	st.fsegs = e.curLayout.Slice(lo, hi, st.fsegs[:0])
	next := e.nxt.Arrays[st.id]
	for _, sg := range st.fsegs {
		arr := e.cur.Arrays[sg.Worker][sg.Lo:sg.Hi]
		if e.cfg.Instrument {
			st.traffic.Add(numa.StructBV, e.topo.SocketOf(sg.Worker), st.socket, 4*int64(len(arr)))
		}
		for k, u := range arr {
			if pf := k + e.cfg.PrefetchDist; e.cfg.PrefetchDist > 0 && pf < len(arr) {
				st.sink += uint64(e.g.Offsets[arr[pf]])
			}
			adj := e.g.Neighbors[e.g.Offsets[u]:e.g.Offsets[u+1]]
			st.edges += int64(len(adj))
			if e.cfg.Instrument {
				st.traffic.Add(numa.StructAdj, e.topo.HomeSocket(u), st.socket,
					2*cacheLine+4*int64(len(adj)))
			}
			for _, v := range adj {
				next = e.visit(st, v, u, step, next)
			}
		}
	}
	e.nxt.Arrays[st.id] = next
}

// visit applies the configured visited protocol to neighbor v with the
// given parent and depth, appending v to next on success.
//
// Atomic-free kinds follow paper Figure 2(b): the VIS probe may race
// (a plain store can drop a sibling bit, and two threads can pass the
// probe for the same vertex); the DP load repairs the first case and
// bounds the second to duplicate same-depth work.
func (e *Engine) visit(st *workerState, v, parent, depth uint32, next []uint32) []uint32 {
	switch e.cfg.VIS {
	case VISNone:
		// Direct DP check per neighbor (baseline: full DP traffic).
	case VISAtomicBit:
		// Exact claim via LOCK CMPXCHG; no DP re-check needed.
		if !e.visAtomic.TrySet(v) {
			return next
		}
		atomic.StoreUint64(&e.dp[v], PackDP(parent, depth))
		st.appends++
		if e.cfg.Hybrid {
			st.nextDeg += int64(e.g.Offsets[v+1] - e.g.Offsets[v])
		}
		if e.cfg.Instrument {
			e.chargeVisit(st, v)
		}
		return append(next, v)
	case VISByte:
		if !e.visByte.TrySet(v) {
			return next
		}
	default: // VISBit, VISPartitioned
		if !e.visBit.TrySet(v) {
			return next
		}
	}
	if e.cfg.Instrument {
		st.traffic.Add(numa.StructVIS, e.topo.HomeSocket(v), st.socket, 1)
	}
	if atomic.LoadUint64(&e.dp[v]) != INF {
		return next
	}
	atomic.StoreUint64(&e.dp[v], PackDP(parent, depth))
	st.appends++
	if e.cfg.Hybrid {
		// m_f for the direction heuristic. The benign duplicate-claim race
		// can double-count a vertex's degree; the heuristic tolerates it.
		st.nextDeg += int64(e.g.Offsets[v+1] - e.g.Offsets[v])
	}
	if e.cfg.Instrument {
		e.chargeVisit(st, v)
	}
	return append(next, v)
}

// chargeVisit accounts the DP update and next-frontier append of a newly
// visited vertex.
func (e *Engine) chargeVisit(st *workerState, v uint32) {
	// DP update: read-modify-write of a full cache line (paper item 2.3).
	st.traffic.Add(numa.StructDP, e.topo.HomeSocket(v), st.socket, 2*cacheLine)
	// BV^N append is local (paper item 2.4: write + RFO).
	st.traffic.Add(numa.StructBV, st.socket, st.socket, 8)
}
