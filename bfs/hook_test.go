package bfs_test

import (
	"errors"
	"sync/atomic"
	"testing"

	"fastbfs/bfs"
	"fastbfs/graph/gen"
	"fastbfs/internal/par"
)

// TestStepHookPanicRecovered: a panicking StepHook (the chaos harness's
// mid-run crash injection) surfaces as a *par.PanicError from Run
// instead of crashing the process, and the engine remains reusable with
// exact depths afterwards.
func TestStepHookPanicRecovered(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(10, 8), 7)
	if err != nil {
		t.Fatal(err)
	}
	var arm atomic.Bool
	opts := bfs.Default(1)
	opts.StepHook = func(step int) {
		if arm.Load() && step == 2 {
			panic("injected: crash at step 2")
		}
	}
	e, err := bfs.NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	want, err := bfs.RunSerial(g, 3)
	if err != nil {
		t.Fatal(err)
	}

	arm.Store(true)
	if _, err := e.Run(3); err == nil {
		t.Fatal("panicking hook did not abort the run")
	} else {
		var pe *par.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want a *par.PanicError", err)
		}
	}

	// The engine recovers: the next run is exact.
	arm.Store(false)
	res, err := e.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if res.Depth(uint32(v)) != want.Depth(uint32(v)) {
			t.Fatalf("depth(%d) after recovered panic = %d, want %d", v, res.Depth(uint32(v)), want.Depth(uint32(v)))
		}
	}
}

// TestStepHookSeesEveryStep: the hook fires once per completed step and
// never perturbs results.
func TestStepHookSeesEveryStep(t *testing.T) {
	g, err := gen.Grid2D(30, 30, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	opts := bfs.Default(1)
	opts.StepHook = func(step int) { calls.Add(1) }
	res, err := bfs.Run(g, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if int(calls.Load()) != res.Steps {
		t.Fatalf("hook called %d times over %d steps", calls.Load(), res.Steps)
	}
	want, err := bfs.RunSerial(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if res.Depth(uint32(v)) != want.Depth(uint32(v)) {
			t.Fatalf("hooked run diverged at %d", v)
		}
	}
}
