package bfs

// White-box tests of the engine reuse contract the serve package's
// pool depends on: full state reset between runs (including after a
// cancelled run) and the ErrEngineBusy concurrency guard.

import (
	"context"
	"errors"
	"testing"
	"time"

	"fastbfs/graph/gen"
)

// TestEngineReuseMatchesFreshEngines runs one engine across many
// sources and checks every run's depths are identical to a freshly
// constructed engine's — i.e. no state leaks between runs.
func TestEngineReuseMatchesFreshEngines(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(11, 8), 9)
	if err != nil {
		t.Fatal(err)
	}
	o := Default(2)
	reused, err := NewEngine(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		source := uint32((i * 173) % g.NumVertices())
		got, err := reused.Run(source)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewEngine(g, o)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Run(source)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if got.Depth(uint32(v)) != want.Depth(uint32(v)) {
				t.Fatalf("run %d (source %d): depth(%d) = %d, want %d",
					i, source, v, got.Depth(uint32(v)), want.Depth(uint32(v)))
			}
		}
		if got.Visited != want.Visited || got.Steps != want.Steps {
			t.Fatalf("run %d: visited/steps %d/%d, want %d/%d",
				i, got.Visited, got.Steps, want.Visited, want.Steps)
		}
	}
}

// TestEngineReuseAfterCancelledRun aborts a traversal mid-flight and
// checks the next run on the same engine is byte-identical to a fresh
// engine's.
func TestEngineReuseAfterCancelledRun(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(13, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	o := Default(1)
	e, err := NewEngine(g, o)
	if err != nil {
		t.Fatal(err)
	}

	// An already-expired context: aborts before the first step.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(expired, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired ctx: err = %v, want Canceled", err)
	}
	// A context that dies mid-traversal (if the machine is fast enough
	// to finish first, the run simply succeeds — both paths must leave
	// the engine clean).
	tight, cancel2 := context.WithTimeout(context.Background(), 200*time.Microsecond)
	defer cancel2()
	if _, err := e.RunContext(tight, 1); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("tight ctx: unexpected err %v", err)
	}

	for _, source := range []uint32{0, 7, 4099} {
		got, err := e.Run(source)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewEngine(g, o)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Run(source)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if got.Depth(uint32(v)) != want.Depth(uint32(v)) {
				t.Fatalf("after cancel, source %d: depth(%d) = %d, want %d",
					source, v, got.Depth(uint32(v)), want.Depth(uint32(v)))
			}
		}
	}
}

// TestConcurrentRunReturnsEngineBusy locks the engine the way an
// in-flight traversal does and checks an overlapping Run fails fast
// with ErrEngineBusy, then works again once released.
func TestConcurrentRunReturnsEngineBusy(t *testing.T) {
	g, err := gen.UniformRandom(2000, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, Default(1))
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	if _, err := e.Run(0); !errors.Is(err, ErrEngineBusy) {
		t.Fatalf("overlapping Run: err = %v, want ErrEngineBusy", err)
	}
	if _, err := e.RunContext(context.Background(), 0); !errors.Is(err, ErrEngineBusy) {
		t.Fatalf("overlapping RunContext: err = %v, want ErrEngineBusy", err)
	}
	e.mu.Unlock()
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, res); err != nil {
		t.Fatal(err)
	}
}
