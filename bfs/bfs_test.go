package bfs_test

import (
	"testing"
	"testing/quick"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
)

func TestRunDefaultMatchesSerial(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(12, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bfs.RunSerial(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bfs.Run(g, 0, bfs.Default(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != ref.Visited || res.Steps != ref.Steps {
		t.Fatalf("visited/steps = %d/%d, want %d/%d",
			res.Visited, res.Steps, ref.Visited, ref.Steps)
	}
	if err := bfs.Validate(g, res); err != nil {
		t.Fatal(err)
	}
}

func TestZeroOptionsWork(t *testing.T) {
	g, _ := gen.UniformRandom(2000, 8, 5)
	res, err := bfs.Run(g, 0, bfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bfs.Validate(g, res); err != nil {
		t.Fatal(err)
	}
}

func TestInstrumentedRun(t *testing.T) {
	g, _ := gen.RMAT(gen.Graph500Params(11, 8), 2)
	o := bfs.Default(2)
	o.Instrument = true
	res, err := bfs.Run(g, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("instrumented run produced no trace")
	}
	if res.Trace.TotalEdges != res.EdgesTraversed {
		t.Errorf("trace edges %d != result edges %d", res.Trace.TotalEdges, res.EdgesTraversed)
	}
	if res.Trace.Depth() < res.Steps {
		t.Errorf("trace depth %d < steps %d", res.Trace.Depth(), res.Steps)
	}
	if res.Trace.Traffic == nil {
		t.Error("no traffic accounting")
	}
}

func TestDuplicateWorkBounded(t *testing.T) {
	// The paper reports <=0.2% duplicate updates from the benign races;
	// on this host contention is lower, but duplicates must stay rare.
	g, _ := gen.UniformRandom(50000, 16, 4)
	o := bfs.Default(2)
	o.Workers = 8
	res, err := bfs.Run(g, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	dups := res.Appends - res.Visited
	if dups < 0 {
		t.Fatalf("appends %d < visited %d", res.Appends, res.Visited)
	}
	if float64(dups) > 0.01*float64(res.Visited) {
		t.Errorf("duplicate rate %d/%d exceeds 1%%", dups, res.Visited)
	}
}

func TestResultAccessors(t *testing.T) {
	g, _ := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	res, err := bfs.Run(g, 0, bfs.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth(0) != 0 || res.Parent(0) != 0 {
		t.Error("source accessors wrong")
	}
	if res.Depth(1) != 1 || res.Parent(1) != 0 {
		t.Error("child accessors wrong")
	}
	if res.Depth(2) != -1 || res.Parent(2) != -1 {
		t.Error("unreached accessors wrong")
	}
	if res.MTEPS() < 0 {
		t.Error("negative MTEPS")
	}
}

func TestBadInputs(t *testing.T) {
	g, _ := gen.UniformRandom(100, 4, 1)
	if _, err := bfs.Run(g, 100, bfs.Options{}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := bfs.Run(g, 0, bfs.Options{Sockets: 3}); err == nil {
		t.Error("non-power-of-two sockets accepted")
	}
	if _, err := bfs.NewEngine(&graph.Graph{}, bfs.Options{}); err == nil {
		t.Error("empty graph accepted")
	}
}

// TestPropertyRandomGraphs: for arbitrary random graphs, every option
// combination yields exactly the serial depths. This is the engine-level
// BFS invariant under testing/quick.
func TestPropertyRandomGraphs(t *testing.T) {
	f := func(seed uint64, degree8 uint8, scheme8, vis8 uint8) bool {
		n := 1500
		degree := int(degree8%12) + 1
		g, err := gen.UniformRandom(n, degree, seed)
		if err != nil {
			return false
		}
		o := bfs.Options{
			Workers: 4,
			Sockets: 2,
			VIS:     bfs.VISKind(vis8 % 5),
			Scheme:  bfs.Scheme(scheme8 % 3),
			// Small LLC to exercise partitioning paths.
			CacheBytes: 4096,
			Rearrange:  seed%2 == 0,
		}
		res, err := bfs.Run(g, uint32(seed%uint64(n)), o)
		if err != nil {
			return false
		}
		ref, err := bfs.RunSerial(g, uint32(seed%uint64(n)))
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if res.Depth(uint32(v)) != ref.Depth(uint32(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestGeometryScalesWithCache: shrinking the simulated LLC must increase
// the number of VIS partitions and PBV bins (paper §III-A).
func TestGeometryScalesWithCache(t *testing.T) {
	g, _ := gen.UniformRandom(1<<16, 4, 1)
	big, err := bfs.NewEngine(g, bfs.Default(2))
	if err != nil {
		t.Fatal(err)
	}
	small := bfs.Default(2)
	small.CacheBytes = 1 << 10 // 1 KiB: |VIS| = 8 KiB => 16 partitions
	tiny, err := bfs.NewEngine(g, small)
	if err != nil {
		t.Fatal(err)
	}
	bigVIS, bigPBV := big.Geometry()
	smallVIS, smallPBV := tiny.Geometry()
	if bigVIS != 1 {
		t.Errorf("big-cache N_VIS = %d, want 1", bigVIS)
	}
	if smallVIS <= bigVIS || smallPBV <= bigPBV {
		t.Errorf("shrinking cache did not add partitions: N_VIS %d->%d, N_PBV %d->%d",
			bigVIS, smallVIS, bigPBV, smallPBV)
	}
}
