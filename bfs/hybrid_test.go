package bfs_test

import (
	"fmt"
	"math/rand"
	"testing"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
)

// TestHybridRandomizedParity runs hybrid traversals from random sources
// over randomly parameterized directed and undirected graphs and holds
// them to the full Graph500 validation (valid BFS tree + exact depths
// vs the serial reference).
func TestHybridRandomizedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		scale := 9 + rng.Intn(3)
		ef := 4 + rng.Intn(12)
		p := gen.Graph500Params(scale, ef)
		p.Undirected = trial%2 == 0
		g, err := gen.RMAT(p, uint64(trial)+10)
		if err != nil {
			t.Fatal(err)
		}
		o := bfs.Default(1)
		o.Workers = 1 + rng.Intn(7)
		o.Hybrid = true
		o.Symmetric = p.Undirected
		// Randomize the switch thresholds around the defaults so trials
		// exercise different T/B trajectories.
		o.Alpha = bfs.DefaultAlpha * (0.25 + 2*rng.Float64())
		o.Beta = bfs.DefaultBeta * (0.25 + 2*rng.Float64())
		e, err := bfs.NewEngine(g, o)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 3; q++ {
			src := uint32(rng.Intn(g.NumVertices()))
			res, err := e.Run(src)
			if err != nil {
				t.Fatal(err)
			}
			if err := bfs.Validate(g, res); err != nil {
				t.Fatalf("trial %d src %d (α=%.1f β=%.1f dirs=%s): %v",
					trial, src, o.Alpha, o.Beta,
					bfs.DirectionString(res.Directions), err)
			}
		}
	}
}

// TestHybridDirectedAsymmetry pins the correctness hinge of directed
// bottom-up: a graph where out- and in-adjacency disagree maximally. A
// bottom-up scan that consulted out-neighbors instead of the transpose
// would invent parents across non-edges.
func TestHybridDirectedAsymmetry(t *testing.T) {
	// Layered DAG: layer L has 64 vertices, all edges point L → L+1,
	// plus a chain through layer heads so depths are nontrivial.
	const layers, width = 8, 64
	var edges []graph.Edge
	for l := 0; l < layers-1; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < 4; j++ {
				u := uint32(l*width + i)
				v := uint32((l+1)*width + (i+j*13)%width)
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	g, err := graph.FromEdges(layers*width, edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		o := bfs.Default(1)
		o.Workers = workers
		o.Hybrid = true
		o.Alpha = 1e6 // switch as soon as possible
		res, err := bfs.Run(g, 0, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := bfs.Validate(g, res); err != nil {
			t.Fatalf("w%d dirs=%s: %v", workers, bfs.DirectionString(res.Directions), err)
		}
		saw := false
		for _, d := range res.Directions {
			if d == bfs.DirBottomUp {
				saw = true
			}
		}
		if !saw {
			t.Fatalf("w%d: no bottom-up level despite α=1e6 (dirs=%s)",
				workers, bfs.DirectionString(res.Directions))
		}
	}
}

// TestHybridEngineResultShape covers the Result extras the API promises.
func TestHybridEngineResultShape(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(10, 8), 3)
	if err != nil {
		t.Fatal(err)
	}
	o := bfs.Default(1)
	o.Hybrid = true
	res, err := bfs.Run(g, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Directions) != res.Steps {
		t.Fatalf("Directions has %d entries for %d steps", len(res.Directions), res.Steps)
	}
	if s := bfs.DirectionString(res.Directions); len(s) != res.Steps {
		t.Fatalf("DirectionString %q wrong length", s)
	}
	// Non-hybrid runs must not report directions.
	plain, err := bfs.Run(g, 0, bfs.Default(1))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Directions != nil {
		t.Fatalf("non-hybrid run reported directions %v", plain.Directions)
	}
	_ = fmt.Sprint(res.MTEPS())
}
