package bfs_test

import (
	"fmt"

	"fastbfs/bfs"
	"fastbfs/graph"
)

// ExampleRun traverses a small hand-built graph with the paper's default
// configuration.
func ExampleRun() {
	// A diamond: 0 -> {1,2} -> 3.
	g, err := graph.FromEdges(4, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
	})
	if err != nil {
		panic(err)
	}
	res, err := bfs.Run(g, 0, bfs.Default(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("visited:", res.Visited)
	fmt.Println("depth of 3:", res.Depth(3))
	// Output:
	// visited: 4
	// depth of 3: 2
}

// ExampleRunSerial shows the reference traversal used for validation.
func ExampleRunSerial() {
	g, _ := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	res, _ := bfs.RunSerial(g, 0)
	fmt.Println(res.Depth(0), res.Depth(1), res.Depth(2))
	// Output: 0 1 2
}

// ExampleValidate demonstrates the Graph500-style result checking.
func ExampleValidate() {
	g, _ := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	res, _ := bfs.Run(g, 0, bfs.Options{Workers: 2, VIS: bfs.VISBit})
	fmt.Println(bfs.Validate(g, res) == nil)
	// Output: true
}
