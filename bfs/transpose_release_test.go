package bfs

// White-box regression tests for the per-graph transpose cache: before
// ReleaseInAdjacency existed, the package-level sync.Map pinned every
// graph that ever ran a hybrid traversal — and its transpose — for the
// process lifetime, so serving daemons leaked both CSRs on every
// unload/eviction.

import (
	"testing"

	"fastbfs/graph"
	"fastbfs/graph/gen"
)

// transposeCount counts live entries in the package cache.
func transposeCount() int {
	n := 0
	transposes.Range(func(any, any) bool { n++; return true })
	return n
}

func TestReleaseInAdjacency(t *testing.T) {
	g1, err := gen.UniformRandom(500, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gen.UniformRandom(500, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := transposeCount()

	in1 := InAdjacency(g1)
	InAdjacency(g2)
	if got := transposeCount(); got != base+2 {
		t.Fatalf("cache holds %d entries after 2 InAdjacency calls, want %d", got, base+2)
	}
	if !InAdjacencyCached(g1) || !InAdjacencyCached(g2) {
		t.Fatal("InAdjacencyCached false for cached graphs")
	}

	if !ReleaseInAdjacency(g1) {
		t.Fatal("ReleaseInAdjacency found no entry for g1")
	}
	if InAdjacencyCached(g1) {
		t.Fatal("g1 still cached after release")
	}
	if got := transposeCount(); got != base+1 {
		t.Fatalf("cache holds %d entries after release, want %d — the map did not shrink", got, base+1)
	}
	if ReleaseInAdjacency(g1) {
		t.Fatal("second release of g1 claimed to find an entry")
	}

	// A rebuilt transpose after release must be a fresh, equivalent CSR.
	in1b := InAdjacency(g1)
	if in1b == in1 {
		t.Fatal("InAdjacency after release returned the released transpose")
	}
	if in1b.NumEdges() != in1.NumEdges() || in1b.NumVertices() != in1.NumVertices() {
		t.Fatal("rebuilt transpose differs from original")
	}

	ReleaseInAdjacency(g1)
	ReleaseInAdjacency(g2)
	if got := transposeCount(); got != base {
		t.Fatalf("cache holds %d entries after releasing all, want %d", got, base)
	}
	if ReleaseInAdjacency(&graph.Graph{}) {
		t.Fatal("release of a never-cached graph claimed to find an entry")
	}
}
