// Package bfs is the public API of fastbfs: a multi-core, (simulated)
// multi-socket breadth-first search engine reproducing Chhugani et al.,
// "Fast and Efficient Graph Traversal Algorithm for CPUs: Maximizing
// Single-Node Efficiency" (IPDPS 2012).
//
// Quick use:
//
//	g, _ := gen.UniformRandom(1<<20, 16, 1)
//	res, _ := bfs.Run(g, 0, bfs.Options{})
//	fmt.Println(res.MTEPS(), res.Steps)
//
// The engine implements the paper's atomic-free cache-resident VIS
// protocol, two-phase socket-aware traversal with load-balanced bin
// division, and TLB-friendly frontier rearrangement — plus every
// baseline the paper compares against, selected through Options.
//
// # Engine reuse contract
//
// An Engine allocates its VIS/DP/PBV buffers once in NewEngine and
// fully resets them at the start of every Run/RunContext, so one Engine
// may serve any number of traversals from any sources — including after
// a run aborted by context cancellation — and each run's depths are
// identical to those of a freshly constructed engine. Two invariants
// bound the reuse:
//
//   - One traversal at a time. An Engine is NOT safe for concurrent
//     Run/RunContext calls; an overlapping call fails fast with
//     ErrEngineBusy instead of corrupting state. Callers that need
//     concurrency run a pool of engines over the same graph (see the
//     serve package).
//   - Result.DP aliases engine storage. It is valid only until the next
//     Run on the same engine; copy it first if it must outlive the run.
package bfs

import (
	"context"
	"errors"
	"sync"

	"fastbfs/graph"
	"fastbfs/internal/core"
	"fastbfs/internal/pbv"
	"fastbfs/internal/validate"
)

// ErrEngineBusy is returned by Engine.Run/RunContext when another
// traversal is already in progress on the same Engine. The engine is
// unharmed; retry after the in-flight run completes, or use one engine
// per concurrent caller.
var ErrEngineBusy = errors.New("bfs: engine busy: concurrent Run on one Engine")

// VISKind selects the visited-structure variant (paper Figure 4).
type VISKind = core.VISKind

// VIS variants, from the paper's Figure 4 legend.
const (
	// VISNone checks the depth array directly per neighbor.
	VISNone = core.VISNone
	// VISAtomicBit is the CAS bitmap (Agarwal et al. baseline).
	VISAtomicBit = core.VISAtomicBit
	// VISByte is the atomic-free byte-per-vertex structure.
	VISByte = core.VISByte
	// VISBit is the atomic-free bit-per-vertex structure.
	VISBit = core.VISBit
	// VISPartitioned is the paper's cache-resident partitioned bitmap.
	VISPartitioned = core.VISPartitioned
)

// Scheme selects the multi-socket work distribution (paper Figure 5).
type Scheme = core.Scheme

// Work-distribution schemes, from the paper's Figure 5 legend.
const (
	// SchemeSinglePhase has no multi-socket optimization.
	SchemeSinglePhase = core.SchemeSinglePhase
	// SchemeSocketAware statically assigns each socket its own bins.
	SchemeSocketAware = core.SchemeSocketAware
	// SchemeLoadBalanced is the paper's balanced bin division.
	SchemeLoadBalanced = core.SchemeLoadBalanced
)

// Direction labels how a hybrid traversal expanded one level.
type Direction = core.Direction

// Level directions (Result.Directions entries for hybrid runs).
const (
	DirTopDown  = core.DirTopDown
	DirBottomUp = core.DirBottomUp
)

// DirectionString renders a per-level direction slice, e.g. "TTBBT".
func DirectionString(dirs []Direction) string { return core.DirectionString(dirs) }

// Direction-switch defaults (Beamer's α/β as adopted by GAP).
const (
	DefaultAlpha = core.DefaultAlpha
	DefaultBeta  = core.DefaultBeta
)

// Encoding selects the Potential-Boundary-Vertex entry encoding.
type Encoding = pbv.Encoding

// PBV encodings (paper footnote 4). Auto applies the paper's heuristic.
const (
	EncodingAuto   = pbv.EncodingAuto
	EncodingMarker = pbv.EncodingMarker
	EncodingPair   = pbv.EncodingPair
)

// Options configures a traversal. The zero value requests the paper's
// best single-socket configuration on all available cores.
type Options struct {
	// Workers is the goroutine pool size; 0 means GOMAXPROCS.
	Workers int
	// Sockets is the simulated socket count (power of two); 0 means 1.
	Sockets int
	// VIS selects the visited structure; the zero value is VISNone, so
	// set it explicitly (Default() selects VISPartitioned).
	VIS VISKind
	// Scheme selects the work distribution; zero is SchemeSinglePhase.
	Scheme Scheme
	// Rearrange enables TLB-friendly frontier rearrangement.
	Rearrange bool
	// BatchBinning computes bin indices in blocks (SIMD analogue).
	BatchBinning bool
	// Encoding selects the PBV encoding.
	Encoding Encoding
	// PrefetchDist is the adjacency-prefetch lookahead; 0 disables.
	PrefetchDist int
	// CacheBytes is the simulated LLC size driving VIS partitioning;
	// 0 means 8 MiB (the paper's Nehalem).
	CacheBytes int64
	// L2Bytes is the per-core L2 size; 0 means 256 KiB.
	L2Bytes int64
	// PageBytes and TLBEntries size the rearrangement regions;
	// 0 means 4096 and 64.
	PageBytes  int64
	TLBEntries int
	// Instrument collects per-step metrics and socket-traffic α values.
	Instrument bool
	// MaxSteps bounds the step loop as a safety net; 0 means |V|+1.
	MaxSteps int

	// Hybrid enables direction-optimizing traversal: heavy middle levels
	// run bottom-up (each unvisited vertex scans in-neighbors for a
	// frontier parent), light levels top-down. Result.Directions records
	// the per-level choice. Directed graphs transparently build and cache
	// a transpose on the first switch (see InAdjacency); set Symmetric to
	// skip that when every edge is known to have its reverse.
	Hybrid bool
	// Alpha is the top-down→bottom-up switch divisor (switch when
	// m_f > m_u/α); larger switches earlier. 0 means DefaultAlpha.
	Alpha float64
	// Beta is the bottom-up→top-down return divisor (return when the
	// frontier stops growing and holds < |V|/β vertices). 0 means
	// DefaultBeta.
	Beta float64
	// Symmetric asserts every edge has its reverse, letting hybrid runs
	// use the graph as its own in-adjacency instead of a transpose.
	// Asserting it on a directed graph silently corrupts parents.
	Symmetric bool

	// StepHook, when non-nil, is called once per completed traversal
	// step from the engine's coordinating worker. It exists for the
	// chaos/fault-injection harness (see internal/faultinject and the
	// serve package): a hook may sleep to simulate a slow traversal or
	// panic to simulate a mid-run crash — the panic is recovered by the
	// parallel runtime and surfaces as an error from Run, leaving the
	// engine reusable. Leave nil in production.
	StepHook func(step int)
}

// Default returns the paper's best configuration for the given simulated
// socket count.
func Default(sockets int) Options {
	return Options{
		Sockets:      sockets,
		VIS:          VISPartitioned,
		Scheme:       SchemeLoadBalanced,
		Rearrange:    true,
		BatchBinning: true,
		PrefetchDist: 8,
	}
}

func (o Options) config(g *graph.Graph) core.Config {
	cfg := core.Config{
		Workers:      o.Workers,
		Sockets:      o.Sockets,
		VIS:          o.VIS,
		Scheme:       o.Scheme,
		Rearrange:    o.Rearrange,
		BatchBinning: o.BatchBinning,
		Encoding:     o.Encoding,
		PrefetchDist: o.PrefetchDist,
		CacheBytes:   o.CacheBytes,
		L2Bytes:      o.L2Bytes,
		PageBytes:    o.PageBytes,
		TLBEntries:   o.TLBEntries,
		Instrument:   o.Instrument,
		MaxSteps:     o.MaxSteps,
		Hybrid:       o.Hybrid,
		Alpha:        o.Alpha,
		Beta:         o.Beta,
		StepHook:     o.StepHook,
	}
	if o.Hybrid && !o.Symmetric {
		cfg.InAdj = func() *graph.Graph { return InAdjacency(g) }
	}
	return cfg
}

// transposeEntry pairs a once with its built transpose.
type transposeEntry struct {
	once sync.Once
	in   *graph.Graph
}

// transposes caches one in-adjacency per graph identity.
var transposes sync.Map // *graph.Graph -> *transposeEntry

// InAdjacency returns the transpose of g, building it in parallel on
// first use and caching it per graph identity until ReleaseInAdjacency.
// All hybrid engines over the same *graph.Graph — notably a serve pool —
// share one transpose, and concurrent first calls build it exactly once.
//
// The cache keys on graph identity, so it pins both g and its transpose
// until released: long-lived processes that retire graphs (unload, LRU
// eviction, atomic replacement) MUST call ReleaseInAdjacency on the
// outgoing graph or both CSRs stay reachable forever.
func InAdjacency(g *graph.Graph) *graph.Graph {
	v, _ := transposes.LoadOrStore(g, &transposeEntry{})
	e := v.(*transposeEntry)
	e.once.Do(func() { e.in = g.TransposeParallel(0) })
	return e.in
}

// ReleaseInAdjacency drops the cached transpose of g, unpinning g and
// its transpose for the garbage collector. It reports whether an entry
// existed. Callers still holding the transpose pointer may keep using
// it; a later InAdjacency on the same graph simply rebuilds.
func ReleaseInAdjacency(g *graph.Graph) bool {
	_, ok := transposes.LoadAndDelete(g)
	return ok
}

// InAdjacencyCached reports whether a transpose of g is currently
// cached (including one still being built). It exists so lifecycle
// layers can regression-test that retiring a graph released its
// transpose.
func InAdjacencyCached(g *graph.Graph) bool {
	_, ok := transposes.Load(g)
	return ok
}

// Result is a traversal outcome; see core.Result for field semantics.
type Result = core.Result

// Engine runs repeated traversals over one graph without reallocating;
// create one with NewEngine when running many roots (the Graph500 and
// benchmark pattern). See the package doc's "Engine reuse contract" for
// the rules reusers rely on.
type Engine struct {
	mu sync.Mutex // serializes Run/RunContext; TryLock → ErrEngineBusy
	e  *core.Engine
}

// NewEngine prepares an engine for g with the given options.
func NewEngine(g *graph.Graph, o Options) (*Engine, error) {
	e, err := core.New(g, o.config(g))
	if err != nil {
		return nil, err
	}
	return &Engine{e: e}, nil
}

// Run traverses from source. The Result's DP slice aliases engine
// storage and is overwritten by the next Run. A concurrent Run on the
// same engine returns ErrEngineBusy.
func (e *Engine) Run(source uint32) (*Result, error) {
	return e.RunContext(context.Background(), source)
}

// RunContext traverses from source under ctx: cancellation or a deadline
// aborts the traversal within one step and returns ctx.Err(). An
// already-expired context returns its error without starting a step. The
// engine remains reusable after an aborted run. A concurrent call while
// another traversal is in flight returns ErrEngineBusy.
func (e *Engine) RunContext(ctx context.Context, source uint32) (*Result, error) {
	if !e.mu.TryLock() {
		return nil, ErrEngineBusy
	}
	defer e.mu.Unlock()
	return e.e.RunContext(ctx, source)
}

// Geometry reports the derived cache-partition and bin counts
// (N_VIS, N_PBV).
func (e *Engine) Geometry() (nVIS, nPBV int) { return e.e.Geometry() }

// Run is the one-shot convenience: build an engine and traverse once.
func Run(g *graph.Graph, source uint32, o Options) (*Result, error) {
	return RunContext(context.Background(), g, source, o)
}

// RunContext is Run under a context; see Engine.RunContext for the
// cancellation semantics.
func RunContext(ctx context.Context, g *graph.Graph, source uint32, o Options) (*Result, error) {
	e, err := NewEngine(g, o)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx, source)
}

// RunSerial performs the reference single-threaded traversal.
func RunSerial(g *graph.Graph, source uint32) (*Result, error) {
	return core.SerialBFS(g, source)
}

// RunAsync performs an asynchronous (label-correcting) traversal — the
// barrier-free alternative class the paper contrasts in §I. Depths are
// exact; Result.Appends/Result.Visited measures the redundant-work
// penalty asynchronous schemes pay. workers <= 0 means one.
func RunAsync(g *graph.Graph, source uint32, workers int) (*Result, error) {
	return core.AsyncBFS(g, source, workers)
}

// RunWorkStealing performs a simplified Leiserson-&-Schardl-style
// traversal (dynamic chunk claiming, CAS vertex claims, no VIS filter or
// locality optimization) — the Figure 7 comparator. workers <= 0 means
// one.
func RunWorkStealing(g *graph.Graph, source uint32, workers int) (*Result, error) {
	return core.WorkStealingBFS(g, source, workers)
}

// Validate checks that r is a correct BFS tree for g (Graph500-style
// checks plus exact depth equality with the serial reference).
func Validate(g *graph.Graph, r *Result) error { return validate.Result(g, r) }
