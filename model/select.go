package model

// Configuration selection: the model stops merely predicting and starts
// deciding. SelectVIS turns the Figure 4 family of predictions into a
// choice — the paper's central claim is exactly that Eqns IV.1–IV.4 are
// accurate enough to pick the right representation per graph instead of
// hardcoding one (§IV, §V-C).

// selectableVariants are the representations the tuner may pick among,
// in preference order for ties. The atomic bitmap is excluded: its
// LOCK-prefix penalty makes it dominated by AF-bit at every size, and
// the engine keeps it only as the Agarwal et al. baseline.
var selectableVariants = []VISVariant{
	VariantPartitioned, VariantBit, VariantByte, VariantNone,
}

// SelectVIS evaluates PredictVIS for every atomic-free Figure 4 variant
// and returns the one with the lowest predicted cycles per traversed
// edge, with its prediction. Ties (and near-ties within one part in a
// thousand) keep the earlier variant in preference order, so the
// paper's partitioned scheme wins unless the model sees a real gap —
// e.g. no-VIS on graphs whose depth array is cache-resident anyway.
func SelectVIS(p Platform, w Workload, sockets int) (VISVariant, Prediction, error) {
	var (
		best     VISVariant
		bestPred Prediction
		have     bool
	)
	for _, v := range selectableVariants {
		pred, err := PredictVIS(p, w, sockets, v)
		if err != nil {
			return 0, Prediction{}, err
		}
		if !have || pred.CyclesPerEdge < bestPred.CyclesPerEdge*0.999 {
			best, bestPred, have = v, pred, true
		}
	}
	return best, bestPred, nil
}
