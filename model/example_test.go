package model_test

import (
	"fmt"

	"fastbfs/model"
)

// ExamplePredict evaluates the paper's worked example (§V-C) on the
// Table I platform for one and two sockets.
func ExamplePredict() {
	p := model.NehalemX5570()
	w := model.WorkedExampleWorkload()
	for _, sockets := range []int{1, 2} {
		pr, err := model.Predict(p, w, sockets)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%d socket(s): %.2f cycles/edge\n", sockets, pr.CyclesPerEdge)
	}
	// Output:
	// 1 socket(s): 6.90 cycles/edge
	// 2 socket(s): 3.23 cycles/edge
}

// ExampleDataTransfers reproduces the Appendix D byte accounting.
func ExampleDataTransfers() {
	t := model.DataTransfers(model.NehalemX5570(), model.WorkedExampleWorkload())
	fmt.Printf("Phase-I %.1f B/edge, Phase-II %.1f B/edge\n",
		t.Phase1DDR(), t.Phase2DDR())
	// Output: Phase-I 21.7 B/edge, Phase-II 13.5 B/edge
}
