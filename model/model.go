// Package model implements the paper's analytical performance model
// (§IV and Appendix A–C): per-edge data-transfer volumes for each phase
// (Eqns IV.1a–IV.1d), single-socket execution time (Eqn IV.2), the
// effective multi-socket bandwidth of each data structure under the
// load-balanced division (Eqn IV.3), and the VIS cache-bandwidth model
// (Eqn IV.4).
//
// Units follow the paper: bandwidths in GB/s (1e9 bytes), frequency in
// GHz, transfers in bytes per traversed edge, times in cycles per
// traversed edge.
package model

import (
	"fmt"
	"math"
)

// Platform holds the machine constants of the paper's Table I. All
// bandwidths are per socket except BQPI, which is per link direction.
type Platform struct {
	Name           string
	Sockets        int // sockets the physical machine has
	CoresPerSocket int
	FreqGHz        float64 // core frequency
	BMem           float64 // achievable DDR bandwidth per socket (GB/s)
	BMemMax        float64 // peak DDR bandwidth per socket (GB/s)
	BLLCToL2       float64 // LLC->L2 read bandwidth per socket (GB/s)
	BL2ToLLC       float64 // L2->LLC write bandwidth per socket (GB/s)
	BQPI           float64 // cross-socket link bandwidth per direction (GB/s)
	LLCBytes       int64   // last-level cache per socket
	L2Bytes        int64   // private L2 per core
	CacheLine      int64   // bytes
	GFlops         float64 // per socket, reported in Table I
}

// NehalemX5570 returns the paper's evaluation platform (Table I): a
// dual-socket Intel Xeon X5570 at 2.93 GHz.
func NehalemX5570() Platform {
	return Platform{
		Name:           "2S Intel Xeon X5570 (Nehalem-EP)",
		Sockets:        2,
		CoresPerSocket: 4,
		FreqGHz:        2.93,
		BMem:           22,
		BMemMax:        32,
		BLLCToL2:       85,
		BL2ToLLC:       26,
		BQPI:           11,
		LLCBytes:       8 << 20,
		L2Bytes:        256 << 10,
		CacheLine:      64,
		GFlops:         94,
	}
}

// NehalemEX7560 returns a 4-socket Intel Xeon X7560 (Nehalem-EX), the
// platform the paper projects onto in §V-B ("our model further predicts
// that we will scale by another 1.8X on a 4-socket Nehalem-EX system")
// and the machine behind Agarwal et al.'s 4-socket numbers. Bandwidths
// are estimates in the style of the Molka et al. benchmarks the paper
// uses for Table I: Nehalem-EX's buffered SMI memory path delivers less
// achievable DDR bandwidth per socket than EP's direct DDR3, and the
// uncore runs slower.
func NehalemEX7560() Platform {
	return Platform{
		Name:           "4S Intel Xeon X7560 (Nehalem-EX)",
		Sockets:        4,
		CoresPerSocket: 8,
		FreqGHz:        2.26,
		BMem:           17,
		BMemMax:        25,
		BLLCToL2:       55,
		BL2ToLLC:       20,
		BQPI:           9.6,
		LLCBytes:       24 << 20,
		L2Bytes:        256 << 10,
		CacheLine:      64,
		GFlops:         72,
	}
}

// TimePerEdgeNS converts a prediction on platform p to nanoseconds per
// traversed edge, for cross-platform comparisons (cycles are only
// comparable at one frequency).
func (pr Prediction) TimePerEdgeNS(p Platform) float64 {
	if p.FreqGHz <= 0 {
		return 0
	}
	return pr.CyclesPerEdge / p.FreqGHz
}

// Workload describes one traversal for prediction. The α fields are the
// maximum fraction of accesses to a structure served by any one socket's
// memory (paper §IV); zero means the balanced value 1/N_S.
type Workload struct {
	Vertices int64 // |V|
	Visited  int64 // |V'| — vertices assigned a depth
	Edges    int64 // |E'| — traversed edges
	Depth    int   // D — number of steps
	NPBV     int   // bins
	NVIS     int   // VIS cache partitions

	AlphaAdj float64
	AlphaBV  float64
	AlphaPBV float64
	AlphaDP  float64
}

// RhoPrime returns ρ' = |E'|/|V'|, the average traversed degree.
func (w Workload) RhoPrime() float64 {
	if w.Visited == 0 {
		return 0
	}
	return float64(w.Edges) / float64(w.Visited)
}

// VISBytes returns |VIS| = |V|/8 bytes.
func (w Workload) VISBytes() float64 { return float64(w.Vertices) / 8 }

// validate reports unusable workloads.
func (w Workload) validate() error {
	if w.Visited <= 0 || w.Edges <= 0 || w.Vertices <= 0 {
		return fmt.Errorf("model: workload needs positive V, V', E'")
	}
	if w.Depth <= 0 || w.NPBV <= 0 || w.NVIS <= 0 {
		return fmt.Errorf("model: workload needs positive Depth, NPBV, NVIS")
	}
	return nil
}

// Transfers is the per-edge DDR byte volume of each access class, split
// the way Appendix A derives them. Sums reproduce Eqns IV.1a/IV.1b/IV.1d.
type Transfers struct {
	// Phase-I (Eqn IV.1a): frontier read, adjacency pointer+list reads,
	// PBV writes (with read-for-ownership).
	Phase1BV  float64 // 4/ρ'
	Phase1Adj float64 // 2L/ρ' + 4
	Phase1PBV float64 // 8·N_PBV/ρ' + 8

	// Phase-II (Eqn IV.1b): PBV read, VIS refill, DP update, BV^N write.
	Phase2PBV float64 // 4·N_PBV/ρ' + 4
	Phase2VIS float64 // (|V|/|V'|)·(D/8)/ρ'
	Phase2DP  float64 // 2L/ρ'
	Phase2BV  float64 // 8/ρ'

	// Phase-II LLC traffic (Eqn IV.1c), before the L2-fit factor.
	Phase2LLCWrite float64 // L/ρ'  (flush of updated VIS lines)
	Phase2LLCRead  float64 // L     (per-edge VIS probe)

	// Rearrangement (Eqn IV.1d).
	Rearrange float64 // 24/ρ'
}

// Phase1DDR returns the Eqn IV.1a total.
func (t Transfers) Phase1DDR() float64 { return t.Phase1BV + t.Phase1Adj + t.Phase1PBV }

// Phase2DDR returns the Eqn IV.1b total.
func (t Transfers) Phase2DDR() float64 {
	return t.Phase2PBV + t.Phase2VIS + t.Phase2DP + t.Phase2BV
}

// Phase2LLC returns the Eqn IV.1c total before the L2-fit factor.
func (t Transfers) Phase2LLC() float64 { return t.Phase2LLCWrite + t.Phase2LLCRead }

// DataTransfers evaluates Eqns IV.1a–IV.1d for the workload on the
// given platform (the cache line size is the only platform input).
func DataTransfers(p Platform, w Workload) Transfers {
	rho := w.RhoPrime()
	l := float64(p.CacheLine)
	return Transfers{
		Phase1BV:  4 / rho,
		Phase1Adj: 2*l/rho + 4,
		Phase1PBV: 8*float64(w.NPBV)/rho + 8,

		Phase2PBV: 4*float64(w.NPBV)/rho + 4,
		Phase2VIS: float64(w.Vertices) / float64(w.Visited) * float64(w.Depth) / 8 / rho,
		Phase2DP:  2 * l / rho,
		Phase2BV:  8 / rho,

		Phase2LLCWrite: l / rho,
		Phase2LLCRead:  l,

		Rearrange: 24 / rho,
	}
}

// L2Fit returns the probability factor of Eqn IV.1c generalized to N_S
// sockets (Appendix D: the effective cache size scales with the socket
// count): max(0, 1 - N_S·|L2| / (|VIS|/N_VIS)).
func L2Fit(p Platform, w Workload, sockets int) float64 {
	part := w.VISBytes() / float64(w.NVIS)
	if part <= 0 {
		return 0
	}
	fit := 1 - float64(sockets)*float64(p.L2Bytes)/part
	if fit < 0 {
		return 0
	}
	return fit
}

// EffectiveBandwidth evaluates Eqn IV.3: the aggregate bandwidth (GB/s)
// at which a structure with access skew alpha is served by sockets
// sockets under the paper's load-balanced division. It degrades to
// N_S·B_M for balanced access and is capped by it.
func EffectiveBandwidth(p Platform, alpha float64, sockets int) float64 {
	ns := float64(sockets)
	peak := ns * p.BMem
	if sockets == 1 {
		return p.BMem
	}
	ap := (alpha - 1/ns) / (ns - 1)
	if ap <= 1e-12 {
		return peak
	}
	qpi := math.Min(p.BQPI, ap*p.BMemMax/(1/ns+ap))
	b := 1 / (1/(ns*p.BLLCToL2) + ap/qpi)
	return math.Min(b, peak)
}

// NonBalancedBandwidth returns the effective bandwidth without load
// balancing: all accesses to the hot socket are served locally, so the
// aggregate rate is B_M/alpha (Appendix C).
func NonBalancedBandwidth(p Platform, alpha float64, sockets int) float64 {
	if alpha <= 0 {
		return float64(sockets) * p.BMem
	}
	b := p.BMem / alpha
	return math.Min(b, float64(sockets)*p.BMem)
}

// VISCyclesPerEdge evaluates the Eqn IV.4 cache-bandwidth model: cycles
// per traversed edge spent moving VIS lines between LLC and L2, on
// sockets sockets, after the L2-fit factor. Per visited vertex the VIS
// line is read ≈ρ' times from LLC and written back once; with load
// balancing the updated line may additionally cross QPI, which proceeds
// in parallel with LLC traffic (the max term).
func VISCyclesPerEdge(p Platform, w Workload, sockets int, fit float64) float64 {
	rho := w.RhoPrime()
	if rho <= 0 {
		return 0
	}
	ns := float64(sockets)
	l := float64(p.CacheLine)
	llc := l*rho/(ns*p.BLLCToL2) + l/(ns*p.BL2ToLLC) // ns per vertex
	perVertex := llc
	if sockets > 1 {
		perVertex = math.Max(llc, l/p.BQPI)
	}
	return fit * p.FreqGHz * perVertex / rho
}

// Prediction is the model output for one workload at one socket count.
type Prediction struct {
	Sockets   int
	Transfers Transfers
	L2Fit     float64

	CyclesPhase1    float64 // cycles per traversed edge
	CyclesPhase2    float64
	CyclesRearrange float64
	CyclesPerEdge   float64

	EdgesPerSec float64
	MTEPS       float64
}

// String renders the prediction in one line.
func (pr Prediction) String() string {
	return fmt.Sprintf("%d socket(s): %.2f cyc/edge (P1 %.2f, P2 %.2f, rearr %.2f, fit %.2f) = %.0f MTEPS",
		pr.Sockets, pr.CyclesPerEdge, pr.CyclesPhase1, pr.CyclesPhase2,
		pr.CyclesRearrange, pr.L2Fit, pr.MTEPS)
}

// Predict evaluates the full model. For sockets == 1 it reproduces
// Eqn IV.2; for more sockets each structure's DDR bytes are divided by
// its Eqn IV.3 effective bandwidth, and the VIS cache term follows
// Eqn IV.4.
func Predict(p Platform, w Workload, sockets int) (Prediction, error) {
	if err := w.validate(); err != nil {
		return Prediction{}, err
	}
	if sockets < 1 {
		return Prediction{}, fmt.Errorf("model: sockets %d < 1", sockets)
	}
	t := DataTransfers(p, w)
	fit := L2Fit(p, w, sockets)
	ns := float64(sockets)

	alpha := func(a float64) float64 {
		if a <= 0 {
			return 1 / ns
		}
		return a
	}
	bAdj := EffectiveBandwidth(p, alpha(w.AlphaAdj), sockets)
	bBV := EffectiveBandwidth(p, alpha(w.AlphaBV), sockets)
	bPBV := EffectiveBandwidth(p, alpha(w.AlphaPBV), sockets)
	bDP := EffectiveBandwidth(p, alpha(w.AlphaDP), sockets)
	f := p.FreqGHz

	cy1 := f * (t.Phase1BV/bBV + t.Phase1Adj/bAdj + t.Phase1PBV/bPBV)
	cy2ddr := f * (t.Phase2PBV/bPBV + t.Phase2VIS/bDP + t.Phase2DP/bDP + t.Phase2BV/bBV)
	cy2llc := VISCyclesPerEdge(p, w, sockets, fit)
	cyR := f * t.Rearrange / bBV

	pr := Prediction{
		Sockets:         sockets,
		Transfers:       t,
		L2Fit:           fit,
		CyclesPhase1:    cy1,
		CyclesPhase2:    cy2ddr + cy2llc,
		CyclesRearrange: cyR,
	}
	pr.CyclesPerEdge = pr.CyclesPhase1 + pr.CyclesPhase2 + pr.CyclesRearrange
	if pr.CyclesPerEdge > 0 {
		pr.EdgesPerSec = p.FreqGHz * 1e9 / pr.CyclesPerEdge
		pr.MTEPS = pr.EdgesPerSec / 1e6
	}
	return pr, nil
}

// PredictStatic models the socket-aware scheme without load balancing
// (the middle scheme of Figure 5): the two-phase division keeps every
// VIS/DP access local, but each structure is served at the non-balanced
// rate B_M/α (Appendix C), and the hot socket's share of the VIS cache
// traffic bounds the LLC term (the busiest socket handles an α fraction
// of all entries on its single LLC interface).
func PredictStatic(p Platform, w Workload, sockets int) (Prediction, error) {
	if err := w.validate(); err != nil {
		return Prediction{}, err
	}
	if sockets < 1 {
		return Prediction{}, fmt.Errorf("model: sockets %d < 1", sockets)
	}
	t := DataTransfers(p, w)
	fit := L2Fit(p, w, sockets)
	ns := float64(sockets)
	alpha := func(a float64) float64 {
		if a <= 0 {
			return 1 / ns
		}
		return a
	}
	bAdj := NonBalancedBandwidth(p, alpha(w.AlphaAdj), sockets)
	bBal := EffectiveBandwidth(p, 1/ns, sockets) // BV/PBV are local per socket
	bDP := NonBalancedBandwidth(p, alpha(w.AlphaDP), sockets)
	f := p.FreqGHz
	cy1 := f * (t.Phase1BV/bBal + t.Phase1Adj/bAdj + t.Phase1PBV/bBal)
	// The hot socket processes an α fraction of PBV entries on one LLC:
	// scale the balanced all-socket VIS term by α·N_S.
	hot := alpha(w.AlphaDP) * ns
	cy2 := f*(t.Phase2PBV/bBal+t.Phase2VIS/bDP+t.Phase2DP/bDP+t.Phase2BV/bBal) +
		VISCyclesPerEdge(p, w, sockets, fit)*hot
	pr := Prediction{
		Sockets: sockets, Transfers: t, L2Fit: fit,
		CyclesPhase1: cy1, CyclesPhase2: cy2,
		CyclesRearrange: f * t.Rearrange / bBal,
	}
	pr.CyclesPerEdge = pr.CyclesPhase1 + pr.CyclesPhase2 + pr.CyclesRearrange
	if pr.CyclesPerEdge > 0 {
		pr.EdgesPerSec = p.FreqGHz * 1e9 / pr.CyclesPerEdge
		pr.MTEPS = pr.EdgesPerSec / 1e6
	}
	return pr, nil
}

// PredictSinglePhase models the no-multi-socket-optimization baseline
// (the first scheme of Figure 5): one phase, so no PBV traffic, but
// three penalties the two-phase division removes —
//
//   - VIS/DP lines are updated from every socket, so each newly visited
//     vertex's VIS and DP lines ping-pong across QPI with probability
//     (1 - 1/N_S);
//   - the skewed vertex-indexed structures (DP, per-step VIS refill) are
//     served at the non-balanced bandwidth B_M/α;
//   - the VIS cache traffic cannot aggregate both sockets' LLC interfaces
//     (the paper's key load-balancing benefit), so the Eqn IV.4 term is
//     evaluated with a single socket's bandwidth.
func PredictSinglePhase(p Platform, w Workload, sockets int) (Prediction, error) {
	if err := w.validate(); err != nil {
		return Prediction{}, err
	}
	t := DataTransfers(p, w)
	t.Phase1PBV, t.Phase2PBV = 0, 0
	fit := L2Fit(p, w, 1) // no aggregate cache without locality
	ns := float64(sockets)
	rho := w.RhoPrime()
	alphaDP := w.AlphaDP
	if alphaDP <= 0 {
		alphaDP = 1 / ns
	}
	bHot := NonBalancedBandwidth(p, alphaDP, sockets)
	bBal := EffectiveBandwidth(p, 1/ns, sockets)
	f := p.FreqGHz
	cy1 := f * (t.Phase1BV/bBal + t.Phase1Adj/bBal)
	cy2 := f*(t.Phase2VIS/bHot+t.Phase2DP/bHot+t.Phase2BV/bBal) +
		VISCyclesPerEdge(p, w, 1, fit)
	var cyPing float64
	if sockets > 1 && rho > 0 {
		// Write-invalidate ping-pong: every VIS update invalidates the
		// other sockets' copies, which must refetch over QPI before
		// their next probe of that line. The dirty-line probability per
		// probe scales with the write:read ratio 1/ρ' (the paper: "for
		// large degrees, most of the cross-socket VIS traffic is
		// read-only rather than read-write ... hence lower latency and
		// bandwidth requirements"), and each refetch plus the original
		// migration moves ~3 lines (VIS + DP read + write-back).
		dirty := 4 / rho
		if dirty > 1 {
			dirty = 1
		}
		l := float64(p.CacheLine)
		cyPing = f * (1 - 1/ns) * (3*l/rho + dirty*l) / p.BQPI
	}
	pr := Prediction{
		Sockets: sockets, Transfers: t, L2Fit: fit,
		CyclesPhase1: cy1, CyclesPhase2: cy2 + cyPing, CyclesRearrange: f * t.Rearrange / bBal,
	}
	pr.CyclesPerEdge = pr.CyclesPhase1 + pr.CyclesPhase2 + pr.CyclesRearrange
	if pr.CyclesPerEdge > 0 {
		pr.EdgesPerSec = p.FreqGHz * 1e9 / pr.CyclesPerEdge
		pr.MTEPS = pr.EdgesPerSec / 1e6
	}
	return pr, nil
}
