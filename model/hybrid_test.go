package model

import (
	"testing"

	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/core"
)

// TestPredictDirectionsReplaysEngine feeds the per-level profile of an
// instrumented pure top-down run into PredictDirections and demands the
// exact direction sequence the hybrid engine then chooses. Workers=1
// keeps the engine's scout sums free of benign-race double counting, so
// prediction and execution must agree level for level.
func TestPredictDirectionsReplaysEngine(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g, err := gen.RMAT(gen.Graph500Params(12, 8), seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(1)
		cfg.Workers = 1
		cfg.Instrument = true
		td, err := core.New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := td.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		frontier := make([]int64, len(ref.Trace.Steps))
		edges := make([]int64, len(ref.Trace.Steps))
		for i, s := range ref.Trace.Steps {
			frontier[i] = s.Frontier
			edges[i] = s.Edges
		}
		want := PredictDirections(int64(g.NumVertices()), g.NumEdges(), frontier, edges, 0, 0)

		hcfg := cfg
		hcfg.Instrument = false
		hcfg.Hybrid = true
		hcfg.InAdj = func() *graph.Graph { return g.Transpose() }
		he, err := core.New(g, hcfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := he.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Directions) != len(want) {
			t.Fatalf("seed %d: predicted %d levels, engine ran %d (%s)",
				seed, len(want), len(res.Directions), core.DirectionString(res.Directions))
		}
		for l, bu := range want {
			if got := res.Directions[l] == core.DirBottomUp; got != bu {
				t.Fatalf("seed %d: level %d predicted bottomUp=%v, engine %s",
					seed, l+1, bu, core.DirectionString(res.Directions))
			}
		}
		if PredictedSwitchLevel(want) == 0 {
			t.Errorf("seed %d: no switch predicted on a scale-12 RMAT", seed)
		}
	}
}

// TestPredictHybridSane checks the blended prediction's basic shape: a
// bottom-up phase that examines far fewer edges per vertex must beat
// the pure top-down prediction, and the blend must sit between its two
// components.
func TestPredictHybridSane(t *testing.T) {
	p := NehalemX5570()
	w := Workload{
		Vertices: 1 << 20, Visited: 1 << 19, Edges: 4 << 20, Depth: 3,
		NPBV: 8, NVIS: 4,
	}
	b := BUWorkload{
		Vertices: 1 << 20, Scanned: 1 << 19, Edges: 3 << 20, Claimed: 400_000,
		Levels: 3,
	}
	hp, err := PredictHybrid(p, w, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hp.BUCyclesEdge <= 0 || hp.CyclesPerEdge <= 0 || hp.MTEPS <= 0 {
		t.Fatalf("degenerate prediction: %+v", hp)
	}
	lo, hi := hp.BUCyclesEdge, hp.TopDown.CyclesPerEdge
	if lo > hi {
		lo, hi = hi, lo
	}
	if hp.CyclesPerEdge < lo || hp.CyclesPerEdge > hi {
		t.Fatalf("blend %.2f outside [%.2f, %.2f]", hp.CyclesPerEdge, lo, hi)
	}
	if hp.BytesPerEdge <= 0 {
		t.Fatalf("bytes/edge %.2f", hp.BytesPerEdge)
	}
	// Early exit means fewer bytes per bottom-up edge than a top-down
	// edge pays across its three phases on this workload.
	tdBytes := hp.TopDown.Transfers.Phase1DDR() + hp.TopDown.Transfers.Phase2DDR() +
		hp.TopDown.Transfers.Rearrange
	if hp.BU.DDR() >= tdBytes {
		t.Fatalf("bottom-up %.1f B/edge not below top-down %.1f", hp.BU.DDR(), tdBytes)
	}
	// Validation errors surface.
	if _, err := PredictHybrid(p, w, BUWorkload{}, 1); err == nil {
		t.Fatal("empty bottom-up workload accepted")
	}
}

// TestPredictDirectionsCorners pins the α corners the engine tests pin:
// a huge α switches at level 2, a tiny α never switches.
func TestPredictDirectionsCorners(t *testing.T) {
	frontier := []int64{1, 100, 5000, 2000, 10}
	edges := []int64{100, 5000, 40000, 4000, 20}
	never := PredictDirections(1_000_000, 50_000, frontier, edges, 1e-12, 0)
	for l, bu := range never {
		if bu {
			t.Fatalf("α→0 predicted bottom-up at level %d", l+1)
		}
	}
	forced := PredictDirections(1_000_000, 50_000, frontier, edges, 1e18, 1e18)
	if forced[0] {
		t.Fatal("level 1 cannot be bottom-up")
	}
	for l := 1; l < len(forced)-1; l++ {
		if !forced[l] {
			t.Fatalf("α huge: level %d not bottom-up", l+1)
		}
	}
}
