package model

import "testing"

// TestSelectVISAgreesWithArgmin pins that SelectVIS returns the true
// cycles/edge argmin over the selectable variants (modulo the 0.1%
// near-tie preference for earlier variants) across workload scales.
func TestSelectVISAgreesWithArgmin(t *testing.T) {
	p := NehalemX5570()
	for _, vertices := range []int64{1 << 20, 16 << 20, 64 << 20, 256 << 20} {
		nvis := 1
		if vertices >= 256<<20 {
			nvis = 2
		}
		w := urWorkload(vertices, 8, nvis)
		got, gotPred, err := SelectVIS(p, w, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range selectableVariants {
			pred, err := PredictVIS(p, w, 2, v)
			if err != nil {
				t.Fatal(err)
			}
			if pred.CyclesPerEdge < gotPred.CyclesPerEdge*0.999 {
				t.Errorf("|V|=%dM: selected %v (%.2f cyc/edge) but %v is cheaper (%.2f)",
					vertices>>20, got, gotPred.CyclesPerEdge, v, pred.CyclesPerEdge)
			}
		}
	}
}

// TestSelectVISLargeGraphAvoidsNone: the Figure 4 regime the selector
// exists for — once DP outgrows the LLC, no-VIS pays the paper's
// 1.7-2.7x penalty and must not be chosen.
func TestSelectVISLargeGraphAvoidsNone(t *testing.T) {
	w := urWorkload(256<<20, 8, 2)
	got, _, err := SelectVIS(NehalemX5570(), w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got == VariantNone {
		t.Error("selector picked no-VIS on an LLC-overflowing graph")
	}
}

// TestSelectVISNeverAtomic: the atomic bitmap is the baseline the paper
// beats, not a candidate; it must stay out of selections.
func TestSelectVISNeverAtomic(t *testing.T) {
	for _, vertices := range []int64{1 << 16, 1 << 20, 64 << 20} {
		w := urWorkload(vertices, 16, 1)
		got, _, err := SelectVIS(NehalemX5570(), w, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got == VariantAtomicBit {
			t.Fatalf("|V|=%d: selector picked the atomic baseline", vertices)
		}
	}
}
