package model

import (
	"math"
	"testing"
)

func within(t *testing.T, got, want, tol float64, label string) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > tol {
			t.Errorf("%s = %v, want ~0", label, got)
		}
		return
	}
	if r := math.Abs(got-want) / math.Abs(want); r > tol {
		t.Errorf("%s = %.4g, want %.4g (off by %.1f%%, tol %.0f%%)",
			label, got, want, 100*r, 100*tol)
	}
}

// TestWorkedExampleTransfers checks Eqns IV.1a–IV.1d against the paper's
// Appendix D numbers for the R-MAT |V|=8M, degree-8 example.
func TestWorkedExampleTransfers(t *testing.T) {
	p := NehalemX5570()
	w := WorkedExampleWorkload()
	within(t, w.RhoPrime(), 15.3, 0.01, "rho'")
	tr := DataTransfers(p, w)
	within(t, tr.Phase1DDR(), 21.7, 0.01, "Phase-I DDR bytes/edge")
	within(t, tr.Phase2DDR(), 13.54, 0.01, "Phase-II DDR bytes/edge")
	within(t, tr.Phase2LLC()*L2Fit(p, w, 1), 51.1, 0.01, "Phase-II LLC bytes/edge")
	within(t, tr.Rearrange, 1.6, 0.02, "rearrangement bytes/edge")
}

// TestWorkedExampleSingleSocket checks Eqn IV.2 against Appendix D:
// Phase-I 2.88 cycles/edge, Phase-II 1.8 + (1-1/4)*2.67 = 3.80.
func TestWorkedExampleSingleSocket(t *testing.T) {
	p := NehalemX5570()
	w := WorkedExampleWorkload()
	pr, err := Predict(p, w, 1) // α is irrelevant on one socket
	if err != nil {
		t.Fatal(err)
	}
	within(t, L2Fit(p, w, 1), 0.75, 0.01, "L2 fit factor")
	within(t, pr.CyclesPhase1, 2.88, 0.02, "Phase-I cycles/edge")
	within(t, pr.CyclesPhase2, 3.80, 0.02, "Phase-II cycles/edge")
	within(t, pr.CyclesRearrange, 0.21, 0.05, "rearrangement cycles/edge")
}

// TestWorkedExampleDualSocket checks the multi-socket composition
// against the paper's final numbers: 3.47 cycles/edge, 844 M edges/s.
// The paper's own arithmetic carries ±5–10% (its stated model accuracy),
// so the assertion tolerance is 10%.
func TestWorkedExampleDualSocket(t *testing.T) {
	p := NehalemX5570()
	w := WorkedExampleWorkload()
	pr, err := Predict(p, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	within(t, L2Fit(p, w, 2), 0.5, 0.01, "dual-socket L2 fit")
	within(t, pr.CyclesPerEdge, 3.47, 0.10, "dual-socket cycles/edge")
	within(t, pr.MTEPS, 844, 0.10, "dual-socket MTEPS")
	if pr.CyclesPhase2 >= 3.80 {
		t.Errorf("dual-socket Phase-II (%v cycles/edge) should beat single-socket 3.80", pr.CyclesPhase2)
	}
}

// TestEffectiveBandwidthAppendixC checks the Eqn IV.3 example from
// Appendix C: N_S=4, α=0.7 gives ≈2.7·B_M with load balancing versus
// ≈1.42·B_M without.
func TestEffectiveBandwidthAppendixC(t *testing.T) {
	p := NehalemX5570()
	within(t, EffectiveBandwidth(p, 0.7, 4)/p.BMem, 2.7, 0.03, "balanced B'(0.7, 4)/BM")
	within(t, NonBalancedBandwidth(p, 0.7, 4)/p.BMem, 1.42, 0.01, "non-balanced B'(0.7,4)/BM")
}

// TestEffectiveBandwidthProperties checks monotonicity and limits of
// Eqn IV.3 across the α range.
func TestEffectiveBandwidthProperties(t *testing.T) {
	p := NehalemX5570()
	for _, ns := range []int{1, 2, 4, 8} {
		prev := math.Inf(1)
		for a := 1 / float64(ns); a <= 1.0001; a += 0.05 {
			b := EffectiveBandwidth(p, a, ns)
			if b <= 0 {
				t.Fatalf("B'(%v,%d) = %v <= 0", a, ns, b)
			}
			if b > float64(ns)*p.BMem+1e-9 {
				t.Fatalf("B'(%v,%d) = %v exceeds %d sockets' DDR", a, ns, b, ns)
			}
			if b > prev+1e-9 {
				t.Fatalf("B' increased with skew at α=%v, ns=%d", a, ns)
			}
			prev = b
		}
		// Balanced access uses all sockets' bandwidth.
		within(t, EffectiveBandwidth(p, 1/float64(ns), ns), float64(ns)*p.BMem, 0.001, "balanced B'")
	}
	// Load balancing beats the static scheme across the skew range the
	// paper observes (α up to ~0.8; Eqn IV.3 itself crosses over only at
	// extreme α≈1 with 2 sockets, where QPI dominates).
	for _, a := range []float64{0.5, 0.6, 0.7, 0.8} {
		if EffectiveBandwidth(p, a, 2) < NonBalancedBandwidth(p, a, 2)-1e-9 {
			t.Errorf("balanced < non-balanced at α=%v", a)
		}
	}
}

// TestPredictScaling checks that the model predicts socket scaling in
// the range the paper reports (≈1.9–2X for balanced 2-socket runs).
func TestPredictScaling(t *testing.T) {
	p := NehalemX5570()
	w := WorkedExampleWorkload()
	w.AlphaAdj = 0.5 // perfectly balanced UR-like workload
	p1, err := Predict(p, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Predict(p, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Near-linear DDR scaling plus the superlinear LLC effect the paper
	// notes (the L2-fit factor drops from 3/4 to 1/2 on two sockets).
	scale := p1.CyclesPerEdge / p2.CyclesPerEdge
	if scale < 1.7 || scale > 2.3 {
		t.Errorf("2-socket scaling %v outside [1.7, 2.3]", scale)
	}
}

// TestFourSocketProjection reproduces the paper's §V-B projection:
// "Our model further predicts that we will scale by another 1.8X on a
// 4-socket Nehalem-EX system." We project the worked example from 2 to
// 4 sockets on the modeled platform.
func TestFourSocketProjection(t *testing.T) {
	ep := NehalemX5570()
	ex := NehalemEX7560()
	w := WorkedExampleWorkload()
	p2, err := Predict(ep, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := Predict(ex, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Compare wall time per edge, not cycles (the platforms clock
	// differently).
	scale := p2.TimePerEdgeNS(ep) / p4.TimePerEdgeNS(ex)
	if scale < 1.55 || scale > 2.05 {
		t.Errorf("EX-4S over EP-2S = %.2f, paper projects ~1.8", scale)
	}
}

// TestL2FitBounds exercises the fit factor across VIS sizes.
func TestL2FitBounds(t *testing.T) {
	p := NehalemX5570()
	for _, v := range []int64{1 << 10, 1 << 20, 1 << 23, 1 << 26, 1 << 28} {
		w := Workload{Vertices: v, Visited: v / 2, Edges: v * 4, Depth: 6, NPBV: 2, NVIS: 1}
		f := L2Fit(p, w, 1)
		if f < 0 || f > 1 {
			t.Errorf("L2Fit(|V|=%d) = %v outside [0,1]", v, f)
		}
	}
	// Tiny VIS fully fits: factor 0; huge VIS: factor near 1.
	small := Workload{Vertices: 1 << 10, Visited: 512, Edges: 4096, Depth: 4, NPBV: 2, NVIS: 1}
	if f := L2Fit(p, small, 1); f != 0 {
		t.Errorf("small VIS fit = %v, want 0", f)
	}
	huge := Workload{Vertices: 1 << 28, Visited: 1 << 27, Edges: 1 << 30, Depth: 6, NPBV: 2, NVIS: 1}
	if f := L2Fit(p, huge, 1); f < 0.99 {
		t.Errorf("huge VIS fit = %v, want ~1", f)
	}
}

// TestPredictErrors checks input validation.
func TestPredictErrors(t *testing.T) {
	p := NehalemX5570()
	if _, err := Predict(p, Workload{}, 1); err == nil {
		t.Error("Predict accepted empty workload")
	}
	if _, err := Predict(p, WorkedExampleWorkload(), 0); err == nil {
		t.Error("Predict accepted 0 sockets")
	}
	if _, err := PredictSinglePhase(p, Workload{}, 2); err == nil {
		t.Error("PredictSinglePhase accepted empty workload")
	}
}

// TestSinglePhaseSlower: the paper's Figure 5 shows the unoptimized
// scheme consistently losing to the load-balanced two-phase scheme on
// skewed multi-socket workloads.
func TestSinglePhaseSlower(t *testing.T) {
	p := NehalemX5570()
	w := WorkedExampleWorkload()
	w.AlphaDP = 0.6
	lb, err := Predict(p, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := PredictSinglePhase(p, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.MTEPS >= lb.MTEPS {
		t.Errorf("single-phase %v MTEPS >= load-balanced %v MTEPS", sp.MTEPS, lb.MTEPS)
	}
}
