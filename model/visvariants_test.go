package model

import (
	"testing"
)

// urWorkload builds a UR-graph workload at the paper's Figure 4 scale:
// all vertices visited, degree d, depth ~log(V)/log(d)+2.
func urWorkload(vertices int64, degree int, nVIS int) Workload {
	return Workload{
		Vertices: vertices,
		Visited:  vertices,
		Edges:    vertices * int64(degree),
		Depth:    8,
		NPBV:     2 * nVIS,
		NVIS:     nVIS,
	}
}

func predictVariant(t *testing.T, w Workload, v VISVariant) Prediction {
	t.Helper()
	pr, err := PredictVIS(NehalemX5570(), w, 2, v)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestFig4ShapeSmallGraph: for graphs whose DP array fits the caches
// (|V| <= 1M), the no-VIS scheme is not significantly penalized
// (paper: "random access does not degrade performance significantly").
func TestFig4ShapeSmallGraph(t *testing.T) {
	w := urWorkload(1<<20, 8, 1)
	none := predictVariant(t, w, VariantNone)
	bit := predictVariant(t, w, VariantBit)
	rel := bit.MTEPS / none.MTEPS
	if rel > 1.6 || rel < 0.7 {
		t.Errorf("small graph: bit/none = %.2f, want near parity", rel)
	}
}

// TestFig4ShapeLargeGraph: once DP outgrows the LLC the paper sees a
// 1.7–2.7× drop for no-VIS versus the best scheme, growing with |V|.
func TestFig4ShapeLargeGraph(t *testing.T) {
	rel64 := 0.0
	for _, v := range []int64{64 << 20, 256 << 20} {
		nvis := 1
		if v == 256<<20 {
			nvis = 2
		}
		w := urWorkload(v, 8, nvis)
		none := predictVariant(t, w, VariantNone)
		best := predictVariant(t, w, VariantPartitioned)
		rel := best.MTEPS / none.MTEPS
		if rel < 1.4 || rel > 3.2 {
			t.Errorf("|V|=%dM: best/none = %.2f, want in [1.4, 3.2]", v>>20, rel)
		}
		// The paper's gap grows with |V| (1.7x -> 2.7x); the model keeps
		// it at least flat (the partitioned scheme also pays more bins
		// at 256M, which the measured gap absorbs elsewhere).
		if v == 64<<20 {
			rel64 = rel
		} else if rel < rel64-0.15 {
			t.Errorf("gap should not shrink with |V|: %.2f at 64M vs %.2f at 256M", rel64, rel)
		}
	}
}

// TestFig4AtomicNearNoVIS: the paper finds the atomic bitmap "only 10%
// faster at best (and sometimes even slower) than not maintaining any
// VIS array" on large graphs.
func TestFig4AtomicNearNoVIS(t *testing.T) {
	w := urWorkload(64<<20, 8, 1)
	none := predictVariant(t, w, VariantNone)
	atomic := predictVariant(t, w, VariantAtomicBit)
	rel := atomic.MTEPS / none.MTEPS
	if rel < 0.75 || rel > 1.35 {
		t.Errorf("atomic/none = %.2f, want near parity (paper: <=1.1x)", rel)
	}
	// And clearly below the atomic-free bit scheme.
	bit := predictVariant(t, w, VariantBit)
	if atomic.MTEPS >= bit.MTEPS {
		t.Errorf("atomic (%.0f) should lose to atomic-free bit (%.0f)", atomic.MTEPS, bit.MTEPS)
	}
}

// TestFig4ByteVsBit: while the byte map fits the LLC it beats no-VIS
// (paper: 1.4–2x at 8M); beyond 16M vertices it stops fitting and the
// bit scheme wins by 1.4–1.9x.
func TestFig4ByteVsBit(t *testing.T) {
	mid := urWorkload(8<<20, 8, 1)
	noneMid := predictVariant(t, mid, VariantNone)
	byteMid := predictVariant(t, mid, VariantByte)
	if rel := byteMid.MTEPS / noneMid.MTEPS; rel < 1.2 {
		t.Errorf("8M: byte/none = %.2f, want >= 1.2 (paper 1.4-2x)", rel)
	}
	big := urWorkload(64<<20, 8, 1)
	byteBig := predictVariant(t, big, VariantByte)
	bitBig := predictVariant(t, big, VariantBit)
	rel := bitBig.MTEPS / byteBig.MTEPS
	if rel < 1.2 || rel > 2.4 {
		t.Errorf("64M: bit/byte = %.2f, want in [1.2, 2.4] (paper 1.4-1.9x)", rel)
	}
}

// TestFig4PartitioningHelpsOnlyWhenNeeded: partitioning wins once the
// bit structure itself exceeds the cache budget (paper: +1.3x at 256M)
// and degenerates to the bit scheme on smaller graphs.
func TestFig4Partitioning(t *testing.T) {
	small := urWorkload(8<<20, 8, 1)
	if p, b := predictVariant(t, small, VariantPartitioned), predictVariant(t, small, VariantBit); p.MTEPS != b.MTEPS {
		t.Errorf("8M: partitioned (%.0f) != bit (%.0f) despite N_VIS=1", p.MTEPS, b.MTEPS)
	}
	huge := urWorkload(256<<20, 8, 4) // the paper uses N_VIS = 4 at 256M
	part := predictVariant(t, huge, VariantPartitioned)
	bit := predictVariant(t, huge, VariantBit)
	rel := part.MTEPS / bit.MTEPS
	if rel < 1.1 || rel > 1.7 {
		t.Errorf("256M: partitioned/bit = %.2f, want in [1.1, 1.7] (paper ~1.3x)", rel)
	}
}

// TestPredictVISPartitionedEqualsPredict: the partitioned variant is by
// definition the base model.
func TestPredictVISPartitionedEqualsPredict(t *testing.T) {
	w := WorkedExampleWorkload()
	a, err := PredictVIS(NehalemX5570(), w, 2, VariantPartitioned)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Predict(NehalemX5570(), w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.CyclesPerEdge != b.CyclesPerEdge {
		t.Errorf("partitioned variant %.3f != Predict %.3f", a.CyclesPerEdge, b.CyclesPerEdge)
	}
}

func TestPredictVISErrors(t *testing.T) {
	if _, err := PredictVIS(NehalemX5570(), Workload{}, 2, VariantBit); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := PredictVIS(NehalemX5570(), WorkedExampleWorkload(), 2, VISVariant(99)); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestVariantNames(t *testing.T) {
	for v := VariantNone; v <= VariantPartitioned; v++ {
		if v.String() == "?" {
			t.Errorf("variant %d unnamed", v)
		}
	}
}
