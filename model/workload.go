package model

import (
	"fastbfs/internal/numa"
	"fastbfs/internal/trace"
)

// WorkloadFromTrace extracts a model workload from an instrumented run:
// measured |V'|, |E'|, depth and the per-structure α access skews.
// numVertices is |V|; nPBV/nVIS come from the engine geometry.
func WorkloadFromTrace(numVertices int, rt *trace.RunTrace, nPBV, nVIS, sockets int) Workload {
	w := Workload{
		Vertices: int64(numVertices),
		Visited:  rt.TotalVertices,
		Edges:    rt.TotalEdges,
		Depth:    rt.Depth(),
		NPBV:     nPBV,
		NVIS:     nVIS,
	}
	if rt.Traffic != nil {
		// Per-step, edge-weighted skews: the hot socket can alternate
		// between steps (stress graphs), which a run aggregate hides.
		w.AlphaAdj = rt.WeightedAlpha(numa.StructAdj, sockets)
		w.AlphaBV = rt.Traffic.Alpha(numa.StructBV)
		w.AlphaPBV = rt.WeightedAlpha(numa.StructPBV, sockets)
		w.AlphaDP = rt.WeightedAlpha(numa.StructDP, sockets)
	}
	return w
}

// WorkedExampleWorkload returns the paper's §V-C / Appendix D example:
// an R-MAT graph with |V| = 8M, degree 8, of which |V'| = 4M vertices
// and |E'| = 61.2M edges are traversed (ρ' = 15.3), D = 6, N_PBV = 2,
// N_VIS = 1, and the measured dual-socket skew α_Adj = 0.6.
//
// Paper results for it: Phase-I 21.7 B/edge, Phase-II 13.54 B/edge,
// Phase-II LLC 51.1 B/edge, rearrangement 1.6 B/edge; single-socket
// 2.88 (Phase-I) and 3.80 (Phase-II) cycles/edge; dual-socket total
// 3.47 cycles/edge = 844 M edges/s.
// The paper quotes |V'| = 4M and |E'| = 61.2M (ρ' = 15.3) but computes
// the L2-fit factor from |VIS| = 1 MiB, i.e. |V| = 2^23; we therefore use
// binary vertex counts and scale |E'| to hold ρ' = 15.3 exactly. The DP
// skew equals the Adj skew since both are indexed by the same neighbor
// ids.
func WorkedExampleWorkload() Workload {
	visited := int64(4) << 20
	return Workload{
		Vertices: 8 << 20,
		Visited:  visited,
		Edges:    int64(15.3 * float64(visited)),
		Depth:    6,
		NPBV:     2,
		NVIS:     1,
		AlphaAdj: 0.6,
		AlphaDP:  0.6,
	}
}
