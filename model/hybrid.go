package model

import "fmt"

// Direction-optimizing extension of the analytical model. A hybrid
// traversal splits its levels into top-down ones (Eqns IV.1a–IV.1d
// apply unchanged) and bottom-up ones, whose per-edge transfer volume
// follows the same Appendix-A accounting style below. The model also
// replays the engine's α/β switch rule over a per-level profile, so the
// switch level is predictable from a single instrumented top-down run.

// Heuristic defaults, matching the engine (core.DefaultAlpha/Beta);
// kept literal so model stays free of internal dependencies.
const (
	defaultAlpha = 15.0
	defaultBeta  = 18.0
)

// BUWorkload aggregates the bottom-up levels of one hybrid traversal.
type BUWorkload struct {
	Vertices int64 // |V|
	Scanned  int64 // unvisited vertices examined across bottom-up levels
	Edges    int64 // in-adjacency entries examined (early-exit bounded)
	Claimed  int64 // vertices claimed (new vertices of those levels)
	Levels   int   // number of bottom-up levels
}

// RhoBU returns the edges examined per claimed vertex — the bottom-up
// analogue of ρ'. Early exit keeps it far below the average in-degree
// on scale-free graphs (most vertices find a parent within a few
// probes), which is exactly the hybrid win.
func (b BUWorkload) RhoBU() float64 {
	if b.Claimed == 0 {
		return 0
	}
	return float64(b.Edges) / float64(b.Claimed)
}

// SigmaBU returns the edges examined per scanned vertex, which prices
// the sequential per-vertex costs (DP test, offset reads).
func (b BUWorkload) SigmaBU() float64 {
	if b.Scanned == 0 {
		return 0
	}
	return float64(b.Edges) / float64(b.Scanned)
}

func (b BUWorkload) validate() error {
	if b.Vertices <= 0 || b.Edges <= 0 || b.Scanned <= 0 || b.Claimed <= 0 {
		return fmt.Errorf("model: bottom-up workload needs positive V, scanned, edges, claimed")
	}
	if b.Levels <= 0 {
		return fmt.Errorf("model: bottom-up workload needs positive level count")
	}
	return nil
}

// BUTransfers is the per-examined-edge DDR/LLC byte volume of a
// bottom-up level, Appendix-A style. With σ = edges per scanned vertex
// and ρ_bu = edges per claimed vertex:
type BUTransfers struct {
	// DDR terms.
	DPScan   float64 // 8/σ: sequential unvisited test over the DP array
	InAdj    float64 // 16/σ + 4: offset pair per scanned vertex + entries
	FrontDDR float64 // (|V|/8)·levels/|E_bu|: frontier-bitmap refill per level
	DPWrite  float64 // 2L/ρ_bu: claim write (read-for-ownership + write-back)
	Append   float64 // 8/ρ_bu: next-frontier array append (write + RFO)

	// LLC term: the random frontier-bitmap probe per examined edge is
	// served from cache once resident (the refill above pays the DDR
	// cost), exactly like the top-down VIS probe in Eqn IV.1c.
	FrontLLC float64 // L
}

// DDR returns the bottom-up DDR bytes per examined edge.
func (t BUTransfers) DDR() float64 {
	return t.DPScan + t.InAdj + t.FrontDDR + t.DPWrite + t.Append
}

// BottomUpDataTransfers evaluates the bottom-up transfer volumes for
// the aggregated bottom-up levels.
func BottomUpDataTransfers(p Platform, b BUWorkload) BUTransfers {
	sigma := b.SigmaBU()
	rho := b.RhoBU()
	l := float64(p.CacheLine)
	return BUTransfers{
		DPScan:   8 / sigma,
		InAdj:    16/sigma + 4,
		FrontDDR: float64(b.Vertices) / 8 * float64(b.Levels) / float64(b.Edges),
		DPWrite:  2 * l / rho,
		Append:   8 / rho,
		FrontLLC: l,
	}
}

// HybridPrediction is the model output for a hybrid traversal: the
// top-down levels' prediction, the bottom-up cycles-per-edge term, and
// the edge-weighted blend.
type HybridPrediction struct {
	TopDown       Prediction
	BU            BUTransfers
	BUCyclesEdge  float64 // cycles per bottom-up examined edge
	CyclesPerEdge float64 // edge-weighted blend over both level kinds
	BytesPerEdge  float64 // blended DDR bytes per examined edge
	EdgesPerSec   float64
	MTEPS         float64
}

// String renders the hybrid prediction in one line.
func (hp HybridPrediction) String() string {
	return fmt.Sprintf("hybrid: %.2f cyc/edge (TD %.2f, BU %.2f), %.1f B/edge = %.0f MTEPS",
		hp.CyclesPerEdge, hp.TopDown.CyclesPerEdge, hp.BUCyclesEdge,
		hp.BytesPerEdge, hp.MTEPS)
}

// PredictHybrid evaluates the blended model: w describes the TOP-DOWN
// levels only (its Edges field is the top-down examined-edge count) and
// b the bottom-up levels. Bottom-up DP/frontier writes are all local by
// construction — the kernel's word-aligned ownership — so the bottom-up
// DDR terms are priced at the balanced effective bandwidth; only the
// in-adjacency reads inherit the workload's adjacency skew.
func PredictHybrid(p Platform, w Workload, b BUWorkload, sockets int) (HybridPrediction, error) {
	td, err := Predict(p, w, sockets)
	if err != nil {
		return HybridPrediction{}, err
	}
	if err := b.validate(); err != nil {
		return HybridPrediction{}, err
	}
	t := BottomUpDataTransfers(p, b)
	ns := float64(sockets)
	alpha := func(a float64) float64 {
		if a <= 0 {
			return 1 / ns
		}
		return a
	}
	bAdj := EffectiveBandwidth(p, alpha(w.AlphaAdj), sockets)
	bBal := EffectiveBandwidth(p, 1/ns, sockets)
	f := p.FreqGHz
	ddr := f * ((t.InAdj+t.DPScan)/bAdj + (t.FrontDDR+t.DPWrite+t.Append)/bBal)
	// Frontier-bitmap probes stream through the LLC→L2 interface of all
	// sockets, like the Eqn IV.4 read term.
	llc := f * t.FrontLLC / (ns * p.BLLCToL2)
	hp := HybridPrediction{
		TopDown:      td,
		BU:           t,
		BUCyclesEdge: ddr + llc,
	}
	tdE, buE := float64(w.Edges), float64(b.Edges)
	hp.CyclesPerEdge = (tdE*td.CyclesPerEdge + buE*hp.BUCyclesEdge) / (tdE + buE)
	hp.BytesPerEdge = (tdE*(td.Transfers.Phase1DDR()+td.Transfers.Phase2DDR()+td.Transfers.Rearrange) +
		buE*t.DDR()) / (tdE + buE)
	if hp.CyclesPerEdge > 0 {
		hp.EdgesPerSec = p.FreqGHz * 1e9 / hp.CyclesPerEdge
		hp.MTEPS = hp.EdgesPerSec / 1e6
	}
	return hp, nil
}

// PredictDirections replays the engine's α/β direction rule over a pure
// TOP-DOWN per-level profile — frontier[l] vertices entering level l and
// edges[l] adjacency entries examined there (both direction-independent:
// the level sets are the same however a level is expanded, and edges[l+1]
// equals the out-degree sum m_f of the frontier level l produces). The
// returned slice marks each level the hybrid engine would run bottom-up.
// alpha/beta <= 0 select the engine defaults. totalEdges is |E|.
func PredictDirections(vertices, totalEdges int64, frontier, edges []int64, alpha, beta float64) []bool {
	if alpha <= 0 {
		alpha = defaultAlpha
	}
	if beta <= 0 {
		beta = defaultBeta
	}
	mu := totalEdges
	dirs := make([]bool, len(frontier))
	bu := false
	for l := range frontier {
		dirs[l] = bu
		var next, scout int64
		if l+1 < len(frontier) {
			next = frontier[l+1]
			scout = edges[l+1]
		}
		if !bu {
			mu -= edges[l]
			if mu < 0 {
				mu = 0
			}
			if next > 0 && float64(scout) > float64(mu)/alpha {
				bu = true
			}
		} else if next < frontier[l] && float64(next) <= float64(vertices)/beta {
			bu = false
		}
	}
	return dirs
}

// PredictedSwitchLevel returns the 1-based first bottom-up level of a
// PredictDirections result, or 0 when the traversal stays top-down.
func PredictedSwitchLevel(dirs []bool) int {
	for i, bu := range dirs {
		if bu {
			return i + 1
		}
	}
	return 0
}
