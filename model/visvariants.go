package model

import "fmt"

// VISVariant identifies a visited-structure representation for Figure 4
// modeling.
type VISVariant int

// Figure 4 variants.
const (
	VariantNone VISVariant = iota
	VariantAtomicBit
	VariantByte
	VariantBit
	VariantPartitioned
)

// String names the variant as in Figure 4's legend.
func (v VISVariant) String() string {
	switch v {
	case VariantNone:
		return "no-VIS"
	case VariantAtomicBit:
		return "atomic-bit"
	case VariantByte:
		return "AF-byte"
	case VariantBit:
		return "AF-bit"
	case VariantPartitioned:
		return "AF-partitioned"
	}
	return "?"
}

// AtomicPenaltyCyclesPerEdge is the empirically calibrated cost of the
// LOCK-prefixed update path: atomic operations act as memory fences that
// serialize surrounding loads (paper §II "Latency hiding", citing [15]).
// The paper observes the atomic bitmap is at best ~10% faster than no
// VIS structure at all; six cycles per traversed edge (≈90 cycles per
// visited vertex at ρ'=15) reproduces that relationship on the worked
// example.
const AtomicPenaltyCyclesPerEdge = 6.0

// PredictVIS evaluates the model for one Figure 4 VIS representation.
// It extends Predict with the cache-residence effects §III-A describes:
//
//   - no-VIS: every edge probes the DP array directly. While DP
//     (8·|V| bytes) fits the aggregate LLC the probes are served from
//     cache; beyond that each probe misses with the overflow fraction
//     and pulls a full line from DRAM ("can require a bandwidth of as
//     much as an entire cache-line per depth access").
//   - atomic-bit: the bit structure's traffic plus the serialization
//     penalty of LOCK-prefixed updates.
//   - byte: a |V|-byte structure — 8× the bit footprint, so it overflows
//     the LLC 8× earlier ("for larger graphs the byte-structure stops
//     fitting in LLC").
//   - bit: a |V|/8-byte structure, unpartitioned (N_VIS forced to 1);
//     overflows only for very large graphs ("for very large graphs of
//     256M or beyond, even the bit-structure does not fit").
//   - partitioned: the paper's scheme (exactly Predict): N_VIS keeps
//     every active partition resident.
func PredictVIS(p Platform, w Workload, sockets int, variant VISVariant) (Prediction, error) {
	switch variant {
	case VariantPartitioned:
		return Predict(p, w, sockets)

	case VariantBit, VariantAtomicBit:
		wb := w
		wb.NVIS = 1
		pr, err := Predict(p, wb, sockets)
		if err != nil {
			return pr, err
		}
		extra := overflowCycles(p, wb, sockets, wb.VISBytes())
		pr.CyclesPhase2 += extra
		if variant == VariantAtomicBit {
			pr.CyclesPhase2 += AtomicPenaltyCyclesPerEdge
		}
		return finishPrediction(p, pr), nil

	case VariantByte:
		wb := w
		wb.NVIS = 1
		pr, err := Predict(p, wb, sockets)
		if err != nil {
			return pr, err
		}
		// The refill term (IV.1b's D·|VIS| bytes per traversal) grows 8×,
		// as does the structure used for the L2-fit and overflow checks.
		byteBytes := float64(w.Vertices)
		rho := w.RhoPrime()
		extraRefill := p.FreqGHz * (8 - 1) * float64(w.Vertices) / float64(w.Visited) *
			float64(w.Depth) / 8 / rho / (float64(sockets) * p.BMem)
		pr.CyclesPhase2 += extraRefill + overflowCycles(p, wb, sockets, byteBytes)
		// A byte structure puts 8x the footprint pressure on the LLC/L2
		// path: recompute the fit factor with the byte footprint.
		fitByte := 1 - float64(sockets)*float64(p.L2Bytes)/byteBytes
		if fitByte < 0 {
			fitByte = 0
		}
		pr.CyclesPhase2 += VISCyclesPerEdge(p, wb, sockets, fitByte) -
			VISCyclesPerEdge(p, wb, sockets, pr.L2Fit)
		pr.L2Fit = fitByte
		return finishPrediction(p, pr), nil

	case VariantNone:
		wb := w
		wb.NVIS = 1
		if err := wb.validate(); err != nil {
			return Prediction{}, err
		}
		t := DataTransfers(p, wb)
		t.Phase2VIS = 0 // no auxiliary structure to refill
		ns := float64(sockets)
		alpha := func(a float64) float64 {
			if a <= 0 {
				return 1 / ns
			}
			return a
		}
		bAdj := EffectiveBandwidth(p, alpha(w.AlphaAdj), sockets)
		bBal := EffectiveBandwidth(p, 1/ns, sockets)
		bDP := EffectiveBandwidth(p, alpha(w.AlphaDP), sockets)
		f := p.FreqGHz
		l := float64(p.CacheLine)
		cy1 := f * (t.Phase1BV/bBal + t.Phase1Adj/bAdj + t.Phase1PBV/bBal)
		// Per-edge DP probe: LLC-served while DP fits, DRAM line (plus
		// page walk) beyond.
		dpBytes := 8 * float64(w.Vertices)
		ovf := overflowFraction(p, sockets, dpBytes)
		cy2 := f * (t.Phase2PBV/bBal + t.Phase2DP/bDP + t.Phase2BV/bBal)
		cy2 += f * l * (1 - ovf) / (ns * p.BLLCToL2) // cache-served probes
		cy2 += randomProbeCycles(p, sockets, dpBytes, bDP)
		pr := Prediction{
			Sockets: sockets, Transfers: t, L2Fit: 0,
			CyclesPhase1: cy1, CyclesPhase2: cy2,
			CyclesRearrange: f * t.Rearrange / bBal,
		}
		return finishPrediction(p, pr), nil
	}
	return Prediction{}, fmt.Errorf("model: unknown VIS variant %d", variant)
}

// TLBCoverageBytes is the address range the Nehalem second-level TLB
// covers (512 entries x 4 KiB pages). Random probes into structures far
// beyond this range take a page walk whose PTE fetches also go to DRAM
// when the data itself is uncached — the TLB-miss cost the paper's
// rearrangement optimization targets (§III-B3(b)).
const TLBCoverageBytes = 512 * 4096

// overflowFraction returns the fraction of random probes into a
// structure of `bytes` bytes that miss an aggregate cache of
// N_S · |C| / 2 (half the LLC, the paper's residency budget).
func overflowFraction(p Platform, sockets int, bytes float64) float64 {
	budget := float64(sockets) * float64(p.LLCBytes) / 2
	if bytes <= budget || bytes <= 0 {
		return 0
	}
	return 1 - budget/bytes
}

// randomProbeCycles charges one spatially incoherent probe per traversed
// edge into a structure of structBytes bytes served at bandwidth bw:
// probes that miss the cache budget pull a full line from DRAM, and —
// when the structure also dwarfs the TLB coverage — a page-walk line
// besides ("each access involves cache and TLB misses", §II).
func randomProbeCycles(p Platform, sockets int, structBytes, bw float64) float64 {
	ovf := overflowFraction(p, sockets, structBytes)
	if ovf == 0 {
		return 0
	}
	tlb := 0.0
	if structBytes > TLBCoverageBytes {
		tlb = 1 - TLBCoverageBytes/structBytes
	}
	return p.FreqGHz * ovf * float64(p.CacheLine) * (1 + tlb) / bw
}

// VISProbeReuseFactor discounts the overflow penalty of probes into a
// VIS structure: one cache line covers 512 vertices of a bit array (64
// of a byte map), so within a step many probes hit lines a recent probe
// already pulled in. The factor is calibrated so the partitioned scheme
// gains ≈1.3× over the unpartitioned bit array at |V| = 256M, the
// paper's measured benefit.
const VISProbeReuseFactor = 0.3

// overflowCycles charges the extra DRAM traffic of VIS probes that miss
// the LLC when the structure exceeds the residency budget, discounted
// for line reuse across the vertices a line covers.
func overflowCycles(p Platform, w Workload, sockets int, visBytes float64) float64 {
	ns := float64(sockets)
	return VISProbeReuseFactor * randomProbeCycles(p, sockets, visBytes, ns*p.BMem)
}

// finishPrediction recomputes the totals after phase adjustments.
func finishPrediction(p Platform, pr Prediction) Prediction {
	pr.CyclesPerEdge = pr.CyclesPhase1 + pr.CyclesPhase2 + pr.CyclesRearrange
	if pr.CyclesPerEdge > 0 {
		pr.EdgesPerSec = p.FreqGHz * 1e9 / pr.CyclesPerEdge
		pr.MTEPS = pr.EdgesPerSec / 1e6
	} else {
		pr.EdgesPerSec, pr.MTEPS = 0, 0
	}
	return pr
}
