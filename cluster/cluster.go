// Package cluster projects multi-node BFS performance from single-node
// traversal rates — the analysis behind the paper's headline comparison
// ("our single-node BFS ... matches that of a 256-node system ... ranked
// in the November 2010 Graph500 list") and its cost argument for
// maximizing single-node efficiency (§I: powering clusters costs up to
// 50% of total cost of ownership).
//
// The model is the standard 1-D partitioned level-synchronous BFS the
// paper cites ([8], [11]): vertices are range-partitioned over nodes,
// each step expands the local frontier slice and ships every discovered
// remote neighbor to its owner, so per traversed edge a (1 - 1/N)
// fraction crosses the network. Per-step all-to-all latency adds a
// diameter-proportional term.
package cluster

import (
	"fmt"
	"math"
)

// Config describes a cluster of identical nodes.
type Config struct {
	// Nodes is the node count.
	Nodes int
	// NodeTEPS is one node's local traversal rate (traversed edges per
	// second) when working from memory, e.g. a measured or modeled
	// single-node figure.
	NodeTEPS float64
	// LinkBandwidth is each node's usable network bandwidth in bytes/s
	// (e.g. ~1e9 for DDR InfiniBand of the paper's era).
	LinkBandwidth float64
	// StepLatency is one all-to-all exchange latency in seconds
	// (software + switch; ~50-200 µs for 2010-era MPI collectives).
	StepLatency float64
	// BytesPerEdge is the wire cost of one remote discovery
	// (vertex id + parent id + framing; 12 by default).
	BytesPerEdge float64
	// Efficiency derates the per-node rate for the overheads the paper
	// lists for distributed BFS (serialization, buffer packing, work
	// imbalance across nodes); 1 = none, typical published values are
	// 0.3-0.7. Default 0.5.
	Efficiency float64
}

func (c Config) withDefaults() Config {
	if c.BytesPerEdge == 0 {
		c.BytesPerEdge = 12
	}
	if c.Efficiency == 0 {
		c.Efficiency = 0.5
	}
	return c
}

func (c Config) validate() error {
	c = c.withDefaults()
	if c.Nodes < 1 {
		return fmt.Errorf("cluster: nodes %d < 1", c.Nodes)
	}
	if c.NodeTEPS <= 0 {
		return fmt.Errorf("cluster: NodeTEPS must be positive")
	}
	if c.LinkBandwidth <= 0 {
		return fmt.Errorf("cluster: LinkBandwidth must be positive")
	}
	if c.Efficiency < 0 || c.Efficiency > 1 {
		return fmt.Errorf("cluster: Efficiency %v outside [0,1]", c.Efficiency)
	}
	return nil
}

// Workload describes the traversal being projected.
type Workload struct {
	// Edges is |E'|, the traversed edge count.
	Edges int64
	// Depth is the number of level-synchronous steps.
	Depth int
}

// Prediction is the projected cluster performance.
type Prediction struct {
	Nodes int
	// TEPS is the projected aggregate traversal rate.
	TEPS float64
	// ComputeSeconds, NetworkSeconds and LatencySeconds are the three
	// cost components; the bottleneck is their max + the latency term.
	ComputeSeconds float64
	NetworkSeconds float64
	LatencySeconds float64
	// NetworkBound reports whether the interconnect, not compute, limits
	// the run.
	NetworkBound bool
}

// Predict projects the traversal rate of w on cluster c.
func Predict(c Config, w Workload) (Prediction, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return Prediction{}, err
	}
	if w.Edges <= 0 || w.Depth <= 0 {
		return Prediction{}, fmt.Errorf("cluster: workload needs positive edges and depth")
	}
	n := float64(c.Nodes)
	e := float64(w.Edges)

	compute := e / (n * c.NodeTEPS * c.Efficiency)
	remoteFrac := 1 - 1/n
	network := e * remoteFrac * c.BytesPerEdge / (n * c.LinkBandwidth)
	latency := float64(w.Depth) * c.StepLatency

	total := math.Max(compute, network) + latency
	return Prediction{
		Nodes:          c.Nodes,
		TEPS:           e / total,
		ComputeSeconds: compute,
		NetworkSeconds: network,
		LatencySeconds: latency,
		NetworkBound:   network > compute,
	}, nil
}

// NodesToMatch returns the smallest node count at which cluster c
// (its Nodes field is ignored) reaches targetTEPS on workload w, or an
// error if even maxNodes cannot (the network/latency terms put a ceiling
// on achievable rates).
func NodesToMatch(c Config, w Workload, targetTEPS float64, maxNodes int) (int, error) {
	if targetTEPS <= 0 {
		return 0, fmt.Errorf("cluster: target must be positive")
	}
	for n := 1; n <= maxNodes; n *= 2 {
		c.Nodes = n
		pr, err := Predict(c, w)
		if err != nil {
			return 0, err
		}
		if pr.TEPS >= targetTEPS {
			// Binary-search the exact count in (n/2, n].
			lo, hi := n/2+1, n
			for lo < hi {
				mid := (lo + hi) / 2
				c.Nodes = mid
				pm, err := Predict(c, w)
				if err != nil {
					return 0, err
				}
				if pm.TEPS >= targetTEPS {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			return lo, nil
		}
	}
	return 0, fmt.Errorf("cluster: target %.3g TEPS unreachable within %d nodes", targetTEPS, maxNodes)
}

// Era2010Cluster returns parameters representative of the commodity
// clusters on the November 2010 Graph500 list the paper compares
// against: DDR InfiniBand (~1 GB/s usable per node), ~100 µs collective
// latency, and the modest per-node BFS rates of pre-optimization
// distributed codes.
func Era2010Cluster(nodeTEPS float64) Config {
	return Config{
		NodeTEPS:      nodeTEPS,
		LinkBandwidth: 1e9,
		StepLatency:   100e-6,
		BytesPerEdge:  12,
		Efficiency:    0.5,
	}
}
