package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fastbfs/graph"
)

// Sim executes a real (in-process) distributed BFS: the 1-D partitioned
// level-synchronous algorithm of the multi-node systems the paper cites
// ([8] BlueGene/L, [11] Buluç & Madduri) and positions its single-node
// engine as a building block for. Vertices are range-partitioned across
// simulated nodes; each step every node expands its owned slice of the
// frontier and ships discovered neighbors to their owners, who claim
// unvisited vertices and build the next frontier.
//
// Besides serving as an executable model of the paper's §I scaling
// argument, the simulation measures the communication volume that
// cluster.Predict assumes analytically (the (1 - 1/N) remote fraction).
type Sim struct {
	g      *graph.Graph
	nodes  int
	shift  uint // owner(v) = v >> shift
	depths []int32
}

// NewSim partitions g across nodes (power of two) for simulation.
func NewSim(g *graph.Graph, nodes int) (*Sim, error) {
	if nodes < 1 || nodes&(nodes-1) != 0 {
		return nil, fmt.Errorf("cluster: nodes must be a power of two, got %d", nodes)
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty graph")
	}
	per := (n + nodes - 1) / nodes
	shift := uint(0)
	for (1 << shift) < per {
		shift++
	}
	return &Sim{g: g, nodes: nodes, shift: shift}, nil
}

// Owner returns the node owning vertex v.
func (s *Sim) Owner(v uint32) int {
	o := int(v >> s.shift)
	if o >= s.nodes {
		o = s.nodes - 1
	}
	return o
}

// ownedRange returns the half-open vertex range [lo, hi) owned by node.
// High nodes can own empty ranges when the graph is much smaller than
// nodes << shift.
func (s *Sim) ownedRange(node int) (lo, hi int) {
	n := s.g.NumVertices()
	lo = node << s.shift
	hi = (node + 1) << s.shift
	if node == s.nodes-1 || hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}

// message is one discovered (vertex, parent) pair in flight.
type message struct {
	vertex, parent uint32
}

// SimResult reports a simulated distributed traversal.
type SimResult struct {
	Source  uint32
	Depth   []int32 // -1 = unreached
	Parent  []int64 // -1 = unreached
	Steps   int
	Visited int64
	// EdgesTraversed counts adjacency entries examined across nodes.
	EdgesTraversed int64
	// LocalMsgs/RemoteMsgs count discovered pairs that stayed on the
	// expanding node versus crossing to another owner.
	LocalMsgs, RemoteMsgs int64
	// BytesOnWire is RemoteMsgs x 8 (vertex + parent ids).
	BytesOnWire int64
	// PerStepRemote holds the remote message count per step.
	PerStepRemote []int64
	// Recovery reports the cost of surviving an injected fault plan;
	// all-zero for a fault-free run.
	Recovery RecoveryStats
}

// RemoteFraction returns the fraction of discoveries that crossed nodes
// (the model assumes 1 - 1/N for uniformly spread neighbors).
func (r *SimResult) RemoteFraction() float64 {
	t := r.LocalMsgs + r.RemoteMsgs
	if t == 0 {
		return 0
	}
	return float64(r.RemoteMsgs) / float64(t)
}

// Run performs the distributed traversal from source. Each node runs as
// a goroutine per step; exchanges are all-to-all message slices. ctx is
// checked at every step boundary, so simulated runs honor cancellation
// and deadlines exactly like bfs.RunContext.
func (s *Sim) Run(ctx context.Context, source uint32) (*SimResult, error) {
	return s.RunFaulty(ctx, source, nil)
}

// RunFaulty performs the distributed traversal from source while
// injecting the faults of plan (nil means none) and exercising the
// recovery protocol: per-step coordinated checkpoints, acknowledged
// batch delivery with bounded retry + exponential backoff, and
// crash detection with replay from the last checkpoint. ctx is checked
// at every step boundary. The committed depths are always identical to
// the fault-free run; recovery cost is reported in SimResult.Recovery.
func (s *Sim) RunFaulty(ctx context.Context, source uint32, plan *FaultPlan) (*SimResult, error) {
	n := s.g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("cluster: source %d out of range", source)
	}
	if plan != nil {
		if err := plan.validate(s.nodes); err != nil {
			return nil, err
		}
		p := plan.withDefaults()
		plan = &p
	}
	depth := make([]int32, n)
	parent := make([]int64, n)
	for i := range depth {
		depth[i] = -1
		parent[i] = -1
	}
	depth[source] = 0
	parent[source] = int64(source)

	res := &SimResult{Source: source, Depth: depth, Parent: parent}
	rec := &res.Recovery

	// frontiers[node] is the node's owned slice of the current frontier.
	frontiers := make([][]uint32, s.nodes)
	frontiers[s.Owner(source)] = []uint32{source}
	// outboxes[from][to] carries discoveries between steps.
	outboxes := make([][][]message, s.nodes)
	// dup[from][to] flags batches the wire delivered twice this step.
	dup := make([][]bool, s.nodes)
	for i := range outboxes {
		outboxes[i] = make([][]message, s.nodes)
		dup[i] = make([]bool, s.nodes)
	}
	edges := make([]int64, s.nodes)
	crashFired := make([]bool, 0)
	if plan != nil {
		crashFired = make([]bool, len(plan.Crashes))
	}
	var ck checkpoint

	for step := int32(1); ; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		total := 0
		for _, f := range frontiers {
			total += len(f)
		}
		if total == 0 {
			break
		}
		res.Steps = int(step)

		// Coordinated checkpoint of the committed state: every node's
		// owned depth/parent slice plus its frontier. A crash during
		// this step rolls all nodes back here.
		if plan != nil {
			rec.CheckpointBytes += ck.save(depth, parent, frontiers)
		}

		// round counts replays of this step after a crash; faults are
		// re-drawn per round, so a replay faces fresh wire conditions.
		for round := 0; ; round++ {
			stepLocal, stepRemote, err := s.attemptStep(step, round, plan, depth, parent, frontiers, outboxes, dup, edges, rec)
			if err != nil {
				return nil, err
			}

			// Crash detection at the step barrier: a node scheduled to
			// die this step missed its acks. Its volatile state (every
			// claim since the checkpoint) is gone; the survivors roll
			// back with it and the step replays after the restart.
			fired := false
			if plan != nil {
				stall := 0
				for i, c := range plan.Crashes {
					if crashFired[i] || c.Step != int(step) {
						continue
					}
					crashFired[i] = true
					fired = true
					rec.Crashes++
					if c.Downtime > stall {
						stall = c.Downtime
					}
					// The dead node loses everything since the last
					// checkpoint — model it explicitly so only a real
					// restore can bring the depths back.
					lo, hi := s.ownedRange(c.Node)
					for v := lo; v < hi; v++ {
						depth[v] = -1
						parent[v] = -1
					}
					frontiers[c.Node] = frontiers[c.Node][:0]
				}
				if fired {
					rec.StallSteps += stall
					rec.ReplayedSteps++
					rec.RestoredBytes += ck.restore(depth, parent, frontiers)
					continue
				}
			}

			// Commit: base traffic/work accounting counts the committed
			// attempt once, so a faulted run's Local/RemoteMsgs and
			// EdgesTraversed equal the fault-free run's.
			res.LocalMsgs += stepLocal
			res.RemoteMsgs += stepRemote
			res.PerStepRemote = append(res.PerStepRemote, stepRemote)
			if round > 0 {
				rec.ReshippedEntries += stepRemote
			}
			break
		}
	}

	for _, e := range edges {
		res.EdgesTraversed += e
	}
	for _, d := range depth {
		if d >= 0 {
			res.Visited++
		}
	}
	res.BytesOnWire = res.RemoteMsgs * 8
	return res, nil
}

// attemptStep runs one execution of step (expand, exchange, claim),
// injecting wire faults from plan, and returns the attempt's local and
// remote message counts. Every replay of a step expands the identical
// checkpoint-restored frontier, so edge work is charged on round 0 only
// — the committed attempt's counts are the same by construction, and
// EdgesTraversed stays equal to the fault-free run's.
func (s *Sim) attemptStep(step int32, round int, plan *FaultPlan,
	depth []int32, parent []int64, frontiers [][]uint32,
	outboxes [][][]message, dup [][]bool, edges []int64,
	rec *RecoveryStats) (stepLocal, stepRemote int64, err error) {

	// Expand: every node scans its owned frontier concurrently and
	// fills its outboxes (no shared writes: one goroutine per node).
	attemptEdges := make([]int64, s.nodes)
	var wg sync.WaitGroup
	wg.Add(s.nodes)
	for node := 0; node < s.nodes; node++ {
		go func(node int) {
			defer wg.Done()
			if plan != nil {
				if d := plan.slowDelay(node); d > 0 {
					time.Sleep(d)
				}
			}
			out := outboxes[node]
			for i := range out {
				out[i] = out[i][:0]
			}
			for _, u := range frontiers[node] {
				adj := s.g.Neighbors[s.g.Offsets[u]:s.g.Offsets[u+1]]
				attemptEdges[node] += int64(len(adj))
				for _, v := range adj {
					out[s.Owner(v)] = append(out[s.Owner(v)], message{v, u})
				}
			}
		}(node)
	}
	wg.Wait()

	// Exchange: local batches move by memcpy; remote batches cross the
	// simulated wire, where the plan may drop or duplicate them. Every
	// delivery attempt is acknowledged; a lost batch is retransmitted
	// with exponential backoff until it lands or attempts run out.
	for from := 0; from < s.nodes; from++ {
		for to := 0; to < s.nodes; to++ {
			c := int64(len(outboxes[from][to]))
			dup[from][to] = false
			if from == to {
				stepLocal += c
				continue
			}
			stepRemote += c
			if plan == nil || c == 0 {
				continue
			}
			attempt := 1
			for plan.chance(plan.DropProb, faultDrop, int(step), round, attempt, from, to) {
				rec.DroppedBatches++
				if attempt == plan.MaxAttempts {
					return 0, 0, fmt.Errorf(
						"cluster: step %d: batch %d->%d (%d entries) lost after %d delivery attempts",
						step, from, to, c, attempt)
				}
				rec.RetriedBatches++
				rec.ReshippedEntries += c
				rec.Backoff += plan.backoff().Delay(attempt, backoffKey(int(step), round, from, to))
				attempt++
			}
			if plan.chance(plan.DupProb, faultDup, int(step), round, 0, from, to) {
				rec.DuplicatedBatches++
				dup[from][to] = true
			}
		}
	}

	// Claim: each owner processes its inbox concurrently; owners have
	// exclusive write access to their vertex range, so no locks. The
	// depth test makes claims idempotent: a duplicated batch re-offers
	// every entry and changes nothing.
	wg.Add(s.nodes)
	for node := 0; node < s.nodes; node++ {
		go func(node int) {
			defer wg.Done()
			next := frontiers[node][:0]
			for from := 0; from < s.nodes; from++ {
				deliveries := 1
				if dup[from][node] {
					deliveries = 2
				}
				for d := 0; d < deliveries; d++ {
					for _, m := range outboxes[from][node] {
						if depth[m.vertex] == -1 {
							depth[m.vertex] = step
							parent[m.vertex] = int64(m.parent)
							next = append(next, m.vertex)
						}
					}
				}
			}
			frontiers[node] = next
		}(node)
	}
	wg.Wait()

	// Charge edge work only once per committed step: the caller discards
	// a crashed attempt by rolling back state and calling again, so we
	// overwrite rather than accumulate within a step.
	if round == 0 {
		for i, e := range attemptEdges {
			edges[i] += e
		}
	}
	return stepLocal, stepRemote, nil
}
