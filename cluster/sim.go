package cluster

import (
	"fmt"
	"sync"

	"fastbfs/graph"
)

// Sim executes a real (in-process) distributed BFS: the 1-D partitioned
// level-synchronous algorithm of the multi-node systems the paper cites
// ([8] BlueGene/L, [11] Buluç & Madduri) and positions its single-node
// engine as a building block for. Vertices are range-partitioned across
// simulated nodes; each step every node expands its owned slice of the
// frontier and ships discovered neighbors to their owners, who claim
// unvisited vertices and build the next frontier.
//
// Besides serving as an executable model of the paper's §I scaling
// argument, the simulation measures the communication volume that
// cluster.Predict assumes analytically (the (1 - 1/N) remote fraction).
type Sim struct {
	g      *graph.Graph
	nodes  int
	shift  uint // owner(v) = v >> shift
	depths []int32
}

// NewSim partitions g across nodes (power of two) for simulation.
func NewSim(g *graph.Graph, nodes int) (*Sim, error) {
	if nodes < 1 || nodes&(nodes-1) != 0 {
		return nil, fmt.Errorf("cluster: nodes must be a power of two, got %d", nodes)
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty graph")
	}
	per := (n + nodes - 1) / nodes
	shift := uint(0)
	for (1 << shift) < per {
		shift++
	}
	return &Sim{g: g, nodes: nodes, shift: shift}, nil
}

// Owner returns the node owning vertex v.
func (s *Sim) Owner(v uint32) int {
	o := int(v >> s.shift)
	if o >= s.nodes {
		o = s.nodes - 1
	}
	return o
}

// message is one discovered (vertex, parent) pair in flight.
type message struct {
	vertex, parent uint32
}

// SimResult reports a simulated distributed traversal.
type SimResult struct {
	Source  uint32
	Depth   []int32 // -1 = unreached
	Parent  []int64 // -1 = unreached
	Steps   int
	Visited int64
	// EdgesTraversed counts adjacency entries examined across nodes.
	EdgesTraversed int64
	// LocalMsgs/RemoteMsgs count discovered pairs that stayed on the
	// expanding node versus crossing to another owner.
	LocalMsgs, RemoteMsgs int64
	// BytesOnWire is RemoteMsgs x 8 (vertex + parent ids).
	BytesOnWire int64
	// PerStepRemote holds the remote message count per step.
	PerStepRemote []int64
}

// RemoteFraction returns the fraction of discoveries that crossed nodes
// (the model assumes 1 - 1/N for uniformly spread neighbors).
func (r *SimResult) RemoteFraction() float64 {
	t := r.LocalMsgs + r.RemoteMsgs
	if t == 0 {
		return 0
	}
	return float64(r.RemoteMsgs) / float64(t)
}

// Run performs the distributed traversal from source. Each node runs as
// a goroutine per step; exchanges are all-to-all message slices.
func (s *Sim) Run(source uint32) (*SimResult, error) {
	n := s.g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("cluster: source %d out of range", source)
	}
	depth := make([]int32, n)
	parent := make([]int64, n)
	for i := range depth {
		depth[i] = -1
		parent[i] = -1
	}
	depth[source] = 0
	parent[source] = int64(source)

	res := &SimResult{Source: source, Depth: depth, Parent: parent}

	// frontiers[node] is the node's owned slice of the current frontier.
	frontiers := make([][]uint32, s.nodes)
	frontiers[s.Owner(source)] = []uint32{source}
	// outboxes[from][to] carries discoveries between steps.
	outboxes := make([][][]message, s.nodes)
	for i := range outboxes {
		outboxes[i] = make([][]message, s.nodes)
	}
	edges := make([]int64, s.nodes)

	for step := int32(1); ; step++ {
		total := 0
		for _, f := range frontiers {
			total += len(f)
		}
		if total == 0 {
			break
		}
		res.Steps = int(step)

		// Expand: every node scans its owned frontier concurrently and
		// fills its outboxes (no shared writes: one goroutine per node).
		var wg sync.WaitGroup
		wg.Add(s.nodes)
		for node := 0; node < s.nodes; node++ {
			go func(node int) {
				defer wg.Done()
				out := outboxes[node]
				for i := range out {
					out[i] = out[i][:0]
				}
				for _, u := range frontiers[node] {
					adj := s.g.Neighbors[s.g.Offsets[u]:s.g.Offsets[u+1]]
					edges[node] += int64(len(adj))
					for _, v := range adj {
						out[s.Owner(v)] = append(out[s.Owner(v)], message{v, u})
					}
				}
			}(node)
		}
		wg.Wait()

		// Exchange accounting.
		var stepRemote int64
		for from := 0; from < s.nodes; from++ {
			for to := 0; to < s.nodes; to++ {
				c := int64(len(outboxes[from][to]))
				if from == to {
					res.LocalMsgs += c
				} else {
					res.RemoteMsgs += c
					stepRemote += c
				}
			}
		}
		res.PerStepRemote = append(res.PerStepRemote, stepRemote)

		// Claim: each owner processes its inbox concurrently; owners have
		// exclusive write access to their vertex range, so no locks.
		wg.Add(s.nodes)
		for node := 0; node < s.nodes; node++ {
			go func(node int) {
				defer wg.Done()
				next := frontiers[node][:0]
				for from := 0; from < s.nodes; from++ {
					for _, m := range outboxes[from][node] {
						if depth[m.vertex] == -1 {
							depth[m.vertex] = step
							parent[m.vertex] = int64(m.parent)
							next = append(next, m.vertex)
						}
					}
				}
				frontiers[node] = next
			}(node)
		}
		wg.Wait()
	}

	for _, e := range edges {
		res.EdgesTraversed += e
	}
	for _, d := range depth {
		if d >= 0 {
			res.Visited++
		}
	}
	res.BytesOnWire = res.RemoteMsgs * 8
	return res, nil
}
