package cluster

import (
	"time"

	"fastbfs/internal/xrand"
)

// Backoff computes bounded exponential retry delays with deterministic
// jitter. It is shared by the simulated cluster's acked-delivery
// accounting (FaultPlan) and the real coordinator's RPC client
// (cluster/coord): both face the same failure mode — after a correlated
// fault (a crashed shard, a congested link) every sender retries, and a
// fixed schedule makes all of them retry at the same instant, turning
// one incident into a synchronized retry storm. Jitter decorrelates the
// senders; making it a pure hash of (Seed, key, attempt) keeps runs
// reproducible from a single seed, which the whole fault-injection
// stack depends on.
type Backoff struct {
	// Base is the delay before the first retry (attempt 1). Zero or
	// negative means 1ms.
	Base time.Duration
	// Max caps the exponential growth. Zero or negative means uncapped.
	Max time.Duration
	// Jitter is the fraction of each delay that is randomized, in
	// [0, 1]: attempt k waits in [(1-Jitter)·d, d] where d is the capped
	// exponential delay. 0 reproduces the fixed schedule.
	Jitter float64
	// Seed drives the deterministic jitter stream.
	Seed uint64
}

// Delay returns the wait before retry attempt (1-based) of the
// operation identified by key. Distinct keys draw independent jitter,
// so concurrent senders retrying the same attempt spread out instead of
// firing together; the same (Seed, key, attempt) always returns the
// same delay.
func (b Backoff) Delay(attempt int, key uint64) time.Duration {
	base := b.Base
	if base <= 0 {
		base = time.Millisecond
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt; i++ {
		if b.Max > 0 && d >= b.Max {
			break
		}
		if d > 1<<61 { // doubling again would overflow time.Duration
			break
		}
		d <<= 1
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	j := b.Jitter
	if j <= 0 {
		return d
	}
	if j > 1 {
		j = 1
	}
	h := xrand.SplitMix64(b.Seed ^ xrand.SplitMix64(key))
	h = xrand.SplitMix64(h ^ uint64(attempt))
	u := float64(h>>11) / (1 << 53) // uniform in [0, 1)
	out := time.Duration(float64(d) * (1 - j*u))
	if out < 1 {
		out = 1 // a scheduled retry always waits a nonzero beat
	}
	return out
}
