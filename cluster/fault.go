package cluster

import (
	"fmt"
	"time"

	"fastbfs/internal/xrand"
)

// FaultPlan is a deterministic, seed-driven fault schedule for a
// simulated distributed traversal: node crashes with restart, per-batch
// message drop/duplication on the simulated wire, and injected slow
// nodes. The same plan against the same graph and source reproduces the
// exact same fault sequence and recovery metrics — every random decision
// is a pure hash of (Seed, step, replay round, attempt, from, to), never
// a draw from shared mutable RNG state, so goroutine scheduling cannot
// perturb it.
//
// The recovery machinery a plan exercises is the standard one for
// level-synchronous distributed BFS: a coordinated checkpoint of each
// node's owned depth slice and frontier at every step boundary,
// acknowledged batch delivery with bounded retry and exponential
// backoff, and crash detection followed by replay of the interrupted
// step from the last checkpoint once the node restarts. Under any plan
// the traversal either commits depths identical to the serial reference
// or returns a descriptive error — never wrong answers, never a hang.
type FaultPlan struct {
	// Seed drives every probabilistic decision in the plan.
	Seed uint64
	// Crashes schedules node failures; entries whose Step exceeds the
	// traversal's step count never fire.
	Crashes []Crash
	// DropProb is the probability that one delivery attempt of a remote
	// batch is lost in flight; the sender retries with exponential
	// backoff up to MaxAttempts. Must be in [0, 1).
	DropProb float64
	// DupProb is the probability that a successfully delivered remote
	// batch arrives twice; claims are idempotent, so duplicates cost
	// work but never correctness. Must be in [0, 1).
	DupProb float64
	// MaxAttempts bounds delivery attempts per batch per step; when all
	// attempts drop, the traversal aborts with an error rather than
	// committing a partial step. 0 means 8.
	MaxAttempts int
	// BackoffBase is the simulated first-retry backoff; attempt k waits
	// up to BackoffBase << (k-1), jittered (see BackoffJitter). It is
	// accounted in RecoveryStats.Backoff, not slept. 0 means 1ms.
	BackoffBase time.Duration
	// BackoffJitter randomizes each retry delay downward by up to this
	// fraction (deterministically, keyed by the retry's coordinates), so
	// simultaneous retransmissions across node pairs spread out instead
	// of re-colliding on a fixed schedule. 0 means 0.5; negative
	// disables jitter (the old fixed backoff).
	BackoffJitter float64
	// Slow injects per-step processing delay (actually slept) into the
	// expand phase of the named nodes — the straggler scenario. It skews
	// wall-clock only; metrics and depths stay deterministic.
	Slow []SlowNode
}

// Crash schedules one node failure: the node dies midway through step
// Step (after expanding, while claiming — its volatile state since the
// last checkpoint is lost) and restarts Downtime steps later, restoring
// its slices from the checkpoint. The interrupted step then replays.
type Crash struct {
	// Node is the crashing node's index.
	Node int
	// Step is the 1-based traversal step during which the crash hits.
	Step int
	// Downtime is how many step-times the node stays down before its
	// restart completes; the level-synchronous traversal stalls for all
	// of them (no other node can claim the dead node's vertex range).
	Downtime int
}

// SlowNode injects Delay of real sleep into node Node's expand phase on
// every step.
type SlowNode struct {
	Node  int
	Delay time.Duration
}

func (p *FaultPlan) withDefaults() FaultPlan {
	q := *p
	if q.MaxAttempts == 0 {
		q.MaxAttempts = 8
	}
	if q.BackoffBase == 0 {
		q.BackoffBase = time.Millisecond
	}
	if q.BackoffJitter == 0 {
		q.BackoffJitter = 0.5
	}
	if q.BackoffJitter < 0 {
		q.BackoffJitter = 0
	}
	return q
}

// backoff returns the plan's retry-delay schedule: exponential from
// BackoffBase with deterministic jitter, shared with the coordinator's
// RPC client via cluster.Backoff.
func (p *FaultPlan) backoff() Backoff {
	return Backoff{Base: p.BackoffBase, Jitter: p.BackoffJitter, Seed: p.Seed}
}

// backoffKey packs a retry's coordinates into the jitter key: each
// (step, round, from, to) stream jitters independently.
func backoffKey(step, round, from, to int) uint64 {
	return uint64(step)<<40 ^ uint64(round)<<28 ^ uint64(from)<<14 ^ uint64(to)
}

func (p *FaultPlan) validate(nodes int) error {
	if p.DropProb < 0 || p.DropProb >= 1 {
		return fmt.Errorf("cluster: DropProb %v outside [0,1)", p.DropProb)
	}
	if p.DupProb < 0 || p.DupProb >= 1 {
		return fmt.Errorf("cluster: DupProb %v outside [0,1)", p.DupProb)
	}
	if p.MaxAttempts < 0 {
		return fmt.Errorf("cluster: MaxAttempts %d < 0", p.MaxAttempts)
	}
	for _, c := range p.Crashes {
		if c.Node < 0 || c.Node >= nodes {
			return fmt.Errorf("cluster: crash node %d outside [0,%d)", c.Node, nodes)
		}
		if c.Step < 1 {
			return fmt.Errorf("cluster: crash step %d < 1", c.Step)
		}
		if c.Downtime < 0 {
			return fmt.Errorf("cluster: crash downtime %d < 0", c.Downtime)
		}
	}
	for _, s := range p.Slow {
		if s.Node < 0 || s.Node >= nodes {
			return fmt.Errorf("cluster: slow node %d outside [0,%d)", s.Node, nodes)
		}
		if s.Delay < 0 {
			return fmt.Errorf("cluster: slow delay %v < 0", s.Delay)
		}
	}
	return nil
}

// Decision kinds keyed into the fault hash; distinct constants keep the
// drop and duplication streams independent.
const (
	faultDrop = 1 + iota
	faultDup
)

// chance returns a deterministic pseudo-random decision with the given
// probability, keyed by the full coordinates of the decision point.
// round is the step's replay count, so a replayed step re-draws its
// faults instead of deterministically re-hitting the same ones.
func (p *FaultPlan) chance(prob float64, kind, step, round, attempt, from, to int) bool {
	if prob <= 0 {
		return false
	}
	h := p.Seed
	h = xrand.SplitMix64(h ^ uint64(kind))
	h = xrand.SplitMix64(h ^ uint64(step)<<32 ^ uint64(round))
	h = xrand.SplitMix64(h ^ uint64(attempt)<<32 ^ uint64(from)<<16 ^ uint64(to))
	return float64(h>>11)/(1<<53) < prob
}

// slowDelay returns the injected expand delay for node, or 0.
func (p *FaultPlan) slowDelay(node int) time.Duration {
	for _, s := range p.Slow {
		if s.Node == node {
			return s.Delay
		}
	}
	return 0
}

// RecoveryStats reports what surviving an injected fault schedule cost.
// All fields are zero for a fault-free run.
type RecoveryStats struct {
	// Crashes is the number of node failures that actually fired.
	Crashes int
	// ReplayedSteps counts step executions that were rolled back and
	// re-run from the last checkpoint after a crash.
	ReplayedSteps int
	// StallSteps counts step-times the whole traversal waited for a
	// crashed node to restart (its Downtime).
	StallSteps int
	// DroppedBatches counts remote batch delivery attempts lost in
	// flight; RetriedBatches counts the retransmissions that recovered
	// them.
	DroppedBatches, RetriedBatches int64
	// DuplicatedBatches counts batches delivered twice; the idempotent
	// claim protocol absorbs them.
	DuplicatedBatches int64
	// ReshippedEntries counts (vertex, parent) pairs sent more than
	// once — by batch retransmission or by step replay.
	ReshippedEntries int64
	// CheckpointBytes is the total volume written to stable storage for
	// per-step checkpoints (depth + parent + frontier, per node).
	CheckpointBytes int64
	// RestoredBytes is the volume read back during crash recovery.
	RestoredBytes int64
	// Backoff is the simulated cumulative retransmission backoff.
	Backoff time.Duration
}

// checkpoint is the coordinated per-step snapshot the recovery protocol
// rolls back to: the full depth/parent arrays (the union of every node's
// owned slice) and each node's frontier.
type checkpoint struct {
	depth     []int32
	parent    []int64
	frontiers [][]uint32
}

// save copies the committed traversal state into the checkpoint,
// reusing its buffers, and returns the logical checkpoint volume (what
// each node would write for its owned slice plus frontier).
func (c *checkpoint) save(depth []int32, parent []int64, frontiers [][]uint32) int64 {
	c.depth = append(c.depth[:0], depth...)
	c.parent = append(c.parent[:0], parent...)
	if c.frontiers == nil {
		c.frontiers = make([][]uint32, len(frontiers))
	}
	bytes := int64(len(depth)) * 12 // 4 (depth) + 8 (parent) per owned vertex
	for i, f := range frontiers {
		c.frontiers[i] = append(c.frontiers[i][:0], f...)
		bytes += int64(len(f)) * 4
	}
	return bytes
}

// restore copies the checkpoint back over the live state and returns
// the volume read.
func (c *checkpoint) restore(depth []int32, parent []int64, frontiers [][]uint32) int64 {
	copy(depth, c.depth)
	copy(parent, c.parent)
	bytes := int64(len(depth)) * 12
	for i := range frontiers {
		frontiers[i] = append(frontiers[i][:0], c.frontiers[i]...)
		bytes += int64(len(c.frontiers[i])) * 4
	}
	return bytes
}
