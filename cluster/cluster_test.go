package cluster

import (
	"testing"
)

// toyWorkload approximates the Graph500 Toy+ class runs of the Nov 2010
// list: ~1B traversed edges, small diameter.
func toyWorkload() Workload {
	return Workload{Edges: 1 << 30, Depth: 8}
}

func TestPredictSingleNode(t *testing.T) {
	c := Era2010Cluster(100e6)
	c.Nodes = 1
	pr, err := Predict(c, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	// One node: no network term, rate = NodeTEPS * Efficiency.
	if pr.NetworkSeconds != 0 {
		t.Errorf("single node has network time %v", pr.NetworkSeconds)
	}
	want := 100e6 * 0.5
	if ratio := pr.TEPS / want; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("single-node TEPS = %g, want ~%g", pr.TEPS, want)
	}
}

func TestPredictScalesThenSaturates(t *testing.T) {
	w := toyWorkload()
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		c := Era2010Cluster(50e6)
		c.Nodes = n
		pr, err := Predict(c, w)
		if err != nil {
			t.Fatal(err)
		}
		if pr.TEPS < prev*0.99 {
			t.Errorf("TEPS fell from %g to %g at %d nodes", prev, pr.TEPS, n)
		}
		prev = pr.TEPS
	}
	// With fast nodes the interconnect binds and scaling turns
	// sublinear: 32 fast nodes deliver well under 32x one node.
	c := Era2010Cluster(500e6)
	c.Nodes = 1
	one, _ := Predict(c, w)
	c.Nodes = 32
	many, _ := Predict(c, w)
	if !many.NetworkBound {
		t.Error("fast nodes at 32x should be network-bound")
	}
	if many.TEPS > 20*one.TEPS {
		t.Errorf("implausible scaling for network-bound run: %g vs %g", many.TEPS, one.TEPS)
	}
}

// TestHeadlineClaim reproduces the paper's flagship comparison: a single
// node at the paper's optimized ~850 MTEPS rate requires a large cluster
// of nodes running era-typical per-node rates (tens of MTEPS after
// distribution overheads) to match — the paper cites 256 nodes on the
// Nov 2010 Graph500 list.
func TestHeadlineClaim(t *testing.T) {
	const paperSingleNode = 850e6 // the paper's dual-socket Nehalem rate
	// Era-typical distributed per-node traversal rate before this
	// paper's optimizations: tens of MTEPS (Agarwal et al. report
	// ~300-600 MTEPS *after* optimization on 4 sockets; cluster codes of
	// the Nov 2010 list averaged far less per node).
	c := Era2010Cluster(20e6)
	nodes, err := NodesToMatch(c, toyWorkload(), paperSingleNode, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if nodes < 64 || nodes > 1024 {
		t.Errorf("nodes to match single node = %d, want order hundreds (paper: 256)", nodes)
	}
}

func TestNetworkBound(t *testing.T) {
	// Fast nodes + slow network: the interconnect must be the limit.
	c := Config{Nodes: 64, NodeTEPS: 1e9, LinkBandwidth: 1e8, StepLatency: 1e-4, Efficiency: 1}
	pr, err := Predict(c, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if !pr.NetworkBound {
		t.Error("expected a network-bound prediction")
	}
	// And a latency floor: huge depth with tiny work.
	deep := Workload{Edges: 1 << 10, Depth: 10000}
	pr, err = Predict(c, deep)
	if err != nil {
		t.Fatal(err)
	}
	if pr.LatencySeconds < 1.0 {
		t.Errorf("latency term %v, want >= 1s for 10000 steps at 100us", pr.LatencySeconds)
	}
}

func TestNodesToMatchExact(t *testing.T) {
	c := Era2010Cluster(100e6)
	w := toyWorkload()
	n, err := NodesToMatch(c, w, 400e6, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	// The found count reaches the target...
	c.Nodes = n
	pr, _ := Predict(c, w)
	if pr.TEPS < 400e6 {
		t.Errorf("%d nodes give only %g TEPS", n, pr.TEPS)
	}
	// ...and one fewer does not.
	if n > 1 {
		c.Nodes = n - 1
		pr, _ = Predict(c, w)
		if pr.TEPS >= 400e6 {
			t.Errorf("%d nodes already reach the target; NodesToMatch overshot", n-1)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Predict(Config{}, toyWorkload()); err == nil {
		t.Error("zero config accepted")
	}
	c := Era2010Cluster(1e8)
	c.Nodes = 1
	if _, err := Predict(c, Workload{}); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := NodesToMatch(c, toyWorkload(), -1, 10); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := NodesToMatch(Era2010Cluster(1), toyWorkload(), 1e12, 4); err == nil {
		t.Error("unreachable target did not error")
	}
	bad := Era2010Cluster(1e8)
	bad.Efficiency = 2
	bad.Nodes = 1
	if _, err := Predict(bad, toyWorkload()); err == nil {
		t.Error("efficiency > 1 accepted")
	}
}
