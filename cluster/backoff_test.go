package cluster

import (
	"context"
	"testing"
	"time"

	"fastbfs/graph/gen"
)

// TestBackoffSchedule: delays grow exponentially from Base, cap at Max,
// jitter stays inside [(1-Jitter)·d, d], and the same (Seed, key,
// attempt) always returns the same delay while distinct keys decorrelate.
func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: 0.5, Seed: 42}
	for attempt := 1; attempt <= 8; attempt++ {
		d := b.Base << (attempt - 1)
		if d > b.Max {
			d = b.Max
		}
		lo := time.Duration(float64(d) * (1 - b.Jitter))
		for key := uint64(0); key < 64; key++ {
			got := b.Delay(attempt, key)
			if got < lo || got > d {
				t.Fatalf("attempt %d key %d: delay %v outside [%v, %v]", attempt, key, got, lo, d)
			}
			if again := b.Delay(attempt, key); again != got {
				t.Fatalf("attempt %d key %d: non-deterministic delay %v vs %v", attempt, key, got, again)
			}
		}
	}
	// Jitter must actually spread concurrent retriers of the same
	// attempt: 64 keys collapsing to one instant is the retry storm the
	// helper exists to break up.
	seen := map[time.Duration]bool{}
	for key := uint64(0); key < 64; key++ {
		seen[b.Delay(3, key)] = true
	}
	if len(seen) < 16 {
		t.Errorf("64 keys produced only %d distinct delays; jitter not spreading retries", len(seen))
	}
	// Jitter 0 reproduces the fixed schedule.
	fixed := Backoff{Base: time.Millisecond, Seed: 1}
	for attempt := 1; attempt <= 5; attempt++ {
		if got, want := fixed.Delay(attempt, 9), time.Millisecond<<(attempt-1); got != want {
			t.Fatalf("fixed schedule attempt %d: %v, want %v", attempt, got, want)
		}
	}
	// Zero-value Backoff is usable: 1ms base, uncapped, no jitter.
	var zero Backoff
	if got := zero.Delay(1, 0); got != time.Millisecond {
		t.Errorf("zero-value first delay %v, want 1ms", got)
	}
	if got := zero.Delay(100, 0); got <= 0 {
		t.Errorf("deep attempt overflowed to %v", got)
	}
}

// TestFaultyBackoffJittered: a faulted run's accumulated backoff is no
// longer an exact sum of Base<<k — the jittered schedule undercuts the
// fixed one — and stays deterministic across runs (covered structurally
// by TestFaultDeterminism; here we pin the jitter actually engaging).
func TestFaultyBackoffJittered(t *testing.T) {
	g, err := gen.UniformRandom(4000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	jittered := &FaultPlan{Seed: 7, DropProb: 0.15}
	fixed := &FaultPlan{Seed: 7, DropProb: 0.15, BackoffJitter: -1}
	rj, err := sim.RunFaulty(context.Background(), 0, jittered)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := sim.RunFaulty(context.Background(), 0, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if rj.Recovery.RetriedBatches == 0 {
		t.Fatal("plan produced no retries; test is vacuous")
	}
	if rj.Recovery.RetriedBatches != rf.Recovery.RetriedBatches {
		t.Fatalf("jitter changed the retry count: %d vs %d (it must only change delays)",
			rj.Recovery.RetriedBatches, rf.Recovery.RetriedBatches)
	}
	if rj.Recovery.Backoff >= rf.Recovery.Backoff {
		t.Errorf("jittered backoff %v not below fixed %v across %d retries",
			rj.Recovery.Backoff, rf.Recovery.Backoff, rj.Recovery.RetriedBatches)
	}
}

// TestSimRunHonorsContext: the ctx threaded through Run (not just
// RunFaulty) aborts between steps.
func TestSimRunHonorsContext(t *testing.T) {
	g, err := gen.UniformRandom(2000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.Run(ctx, 0); err != context.Canceled {
		t.Fatalf("canceled Run: got %v, want context.Canceled", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if _, err := sim.Run(ctx2, 0); err != nil {
		t.Fatalf("Run under live deadline: %v", err)
	}
}
