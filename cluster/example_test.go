package cluster_test

import (
	"fmt"

	"fastbfs/cluster"
)

// ExampleNodesToMatch reproduces the paper's cluster-equivalence
// analysis: how many era-2010 cluster nodes match one optimized
// single-node rate.
func ExampleNodesToMatch() {
	c := cluster.Era2010Cluster(20e6) // 20 MTEPS per node after overheads
	w := cluster.Workload{Edges: 1 << 30, Depth: 8}
	nodes, err := cluster.NodesToMatch(c, w, 850e6, 1<<20)
	if err != nil {
		panic(err)
	}
	fmt.Println(nodes >= 64 && nodes <= 512)
	// Output: true
}
