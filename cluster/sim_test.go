package cluster

import (
	"context"
	"math"
	"testing"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
)

// TestSimMatchesSerial: the distributed traversal must produce exactly
// the single-node depths on every graph family, at every node count.
func TestSimMatchesSerial(t *testing.T) {
	for name, build := range map[string]func() (*graph.Graph, error){
		"ur":     func() (*graph.Graph, error) { return gen.UniformRandom(4000, 8, 1) },
		"rmat":   func() (*graph.Graph, error) { return gen.RMAT(gen.Graph500Params(11, 8), 2) },
		"grid":   func() (*graph.Graph, error) { return gen.Grid2D(50, 50, 0, 3) },
		"stress": func() (*graph.Graph, error) { return gen.StressBipartite(2048, 6, 4) },
	} {
		g, err := build()
		if err != nil {
			t.Fatal(err)
		}
		ref, err := bfs.RunSerial(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, nodes := range []int{1, 2, 4, 8} {
			sim, err := NewSim(g, nodes)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(context.Background(), 0)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < g.NumVertices(); v++ {
				if res.Depth[v] != ref.Depth(uint32(v)) {
					t.Fatalf("%s nodes=%d: vertex %d depth %d, want %d",
						name, nodes, v, res.Depth[v], ref.Depth(uint32(v)))
				}
			}
			if res.Visited != ref.Visited {
				t.Fatalf("%s nodes=%d: visited %d, want %d", name, nodes, res.Visited, ref.Visited)
			}
			if res.EdgesTraversed != ref.EdgesTraversed {
				t.Fatalf("%s nodes=%d: edges %d, want %d",
					name, nodes, res.EdgesTraversed, ref.EdgesTraversed)
			}
		}
	}
}

// TestSimRemoteFraction: for uniformly spread neighbors the remote
// message fraction approaches the model's (1 - 1/N) assumption.
func TestSimRemoteFraction(t *testing.T) {
	g, err := gen.UniformRandom(1<<14, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{2, 4, 8} {
		sim, err := NewSim(g, nodes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - 1/float64(nodes)
		if got := res.RemoteFraction(); math.Abs(got-want) > 0.02 {
			t.Errorf("nodes=%d: remote fraction %.3f, model assumes %.3f", nodes, got, want)
		}
		if res.BytesOnWire != res.RemoteMsgs*8 {
			t.Errorf("wire bytes inconsistent")
		}
		if len(res.PerStepRemote) != res.Steps {
			t.Errorf("per-step series length %d, steps %d", len(res.PerStepRemote), res.Steps)
		}
	}
}

// TestSimSingleNodeNoTraffic: with one node everything is local.
func TestSimSingleNodeNoTraffic(t *testing.T) {
	g, _ := gen.UniformRandom(1000, 8, 1)
	sim, err := NewSim(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteMsgs != 0 || res.BytesOnWire != 0 {
		t.Errorf("single node produced remote traffic: %d msgs", res.RemoteMsgs)
	}
}

// TestSimParentsAreEdges: every assigned parent must be a real edge
// endpoint one level up.
func TestSimParentsAreEdges(t *testing.T) {
	g, _ := gen.RMAT(gen.Graph500Params(10, 8), 5)
	sim, _ := NewSim(g, 4)
	res, err := sim.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		d := res.Depth[v]
		if d <= 0 {
			continue
		}
		p := uint32(res.Parent[v])
		if res.Depth[p] != d-1 {
			t.Fatalf("vertex %d parent %d at depth %d, want %d", v, p, res.Depth[p], d-1)
		}
		if !g.HasEdge(p, uint32(v)) {
			t.Fatalf("parent edge (%d,%d) missing", p, v)
		}
	}
}

// TestSimValidation rejects bad inputs.
func TestSimValidation(t *testing.T) {
	g, _ := gen.UniformRandom(100, 4, 1)
	if _, err := NewSim(g, 3); err == nil {
		t.Error("non-power-of-two nodes accepted")
	}
	sim, _ := NewSim(g, 2)
	if _, err := sim.Run(context.Background(), 1000); err == nil {
		t.Error("out-of-range source accepted")
	}
}
