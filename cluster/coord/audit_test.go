package coord

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"testing"
	"time"

	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/faultinject"
)

// newAuditCluster is newReplicaCluster with per-shard injectors (flat
// group-major index), for tests that disturb one replica only.
func newAuditCluster(t *testing.T, g *graph.Graph, groups, replicas int, injs []*faultinject.Plan) *testCluster {
	t.Helper()
	tc := newReplicaCluster(t, g, groups, replicas, nil, nil)
	// Rebuild the shards whose slot has an injector; the servers and URLs
	// stay, only the handler behind the proxy changes.
	for u, inj := range injs {
		if inj == nil {
			continue
		}
		s, err := NewReplicaShard(g, u/replicas, u%replicas, groups, "", inj)
		if err != nil {
			t.Fatal(err)
		}
		tc.shards[u] = s
		tc.proxies[u].inner = s.Handler()
	}
	return tc
}

// divergeSeed scans for an injection seed whose coord.diverge rolls,
// over rounds [0,maxRound) of a groups x replicas cluster, corrupt at
// least one reply before round needBy and confine every group's
// firings to a single replica. The first divergence evicts that
// replica for the epoch, so confinement guarantees the surviving
// majority stays honest — and unanimous — for every later round.
func divergeSeed(t *testing.T, groups, replicas int, prob float64, maxRound, needBy uint32) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 100000; seed++ {
		p := &faultinject.Plan{Seed: seed, Rules: map[faultinject.Site]faultinject.Rule{
			faultinject.SiteCoordDiverge: {FaultProb: prob},
		}}
		early := false
		ok := true
		for gid := 0; gid < groups && ok; gid++ {
			liar := -1
			for r := uint32(0); r < maxRound && ok; r++ {
				for rep := 0; rep < replicas; rep++ {
					u := gid*replicas + rep
					key := uint64(u)<<32 | uint64(r)
					if !p.Decide(faultinject.SiteCoordDiverge, key).Fault() {
						continue
					}
					if liar == -1 {
						liar = rep
					}
					if rep != liar {
						ok = false
						break
					}
					if r < needBy {
						early = true
					}
				}
			}
		}
		if ok && early {
			return seed
		}
	}
	t.Fatal("no usable divergence seed found")
	return 0
}

// TestAuditOutvotesDivergentReplica: with R=3 and injected silent
// corruption of minority replica responses, the quorum audit serves the
// honest bytes — depths stay exactly serial, every corrupted response
// is counted as a detected divergence, and the epoch never restarts
// (the corrupt replica is simply outvoted and evicted).
func TestAuditOutvotesDivergentReplica(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(9, 8), 42)
	if err != nil {
		t.Fatal(err)
	}
	want, levels := serialDepths(t, g, 1)
	seed := divergeSeed(t, 2, 3, 0.08, uint32(len(levels))+2, 6)
	tc := newReplicaCluster(t, g, 2, 3, nil, nil)
	tc.cfg.AuditReplicas = true
	tc.cfg.Injector = &faultinject.Plan{Seed: seed, Rules: map[faultinject.Site]faultinject.Rule{
		faultinject.SiteCoordDiverge: {FaultProb: 0.08},
	}}
	c := tc.open(t)
	res, err := c.Run(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	assertExactDepths(t, res, want)
	if res.Divergences == 0 {
		t.Fatal("injected corrupt replica responses but no divergence was detected")
	}
	if res.EpochRestarts != 0 {
		t.Fatalf("minority divergence escalated to %d epoch restarts; the quorum should absorb it", res.EpochRestarts)
	}
}

// TestAuditWithoutQuorumNeverServesCorruption: with R=2 a divergence
// has no strict majority — the coordinator cannot tell which replica
// is lying, so it must refuse to serve either answer. The injection key
// is (replica, round), so every restarted epoch re-corrupts the same
// round and the run ends in a typed ErrDiverged instead of a silently
// wrong result.
func TestAuditWithoutQuorumNeverServesCorruption(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(9, 8), 42)
	if err != nil {
		t.Fatal(err)
	}
	// Any seed that corrupts at least one reply in the first rounds will
	// do: a 2-replica group with one corrupt member has no majority.
	seed := uint64(0)
	p := &faultinject.Plan{Rules: map[faultinject.Site]faultinject.Rule{
		faultinject.SiteCoordDiverge: {FaultProb: 0.25},
	}}
	for s := uint64(1); seed == 0 && s < 10000; s++ {
		p.Seed = s
		for u := 0; u < 4; u++ {
			if p.Decide(faultinject.SiteCoordDiverge, uint64(u)<<32|1).Fault() {
				seed = s
				break
			}
		}
	}
	if seed == 0 {
		t.Fatal("no usable divergence seed found")
	}
	tc := newReplicaCluster(t, g, 2, 2, nil, nil)
	tc.cfg.AuditReplicas = true
	tc.cfg.Injector = &faultinject.Plan{Seed: seed, Rules: map[faultinject.Site]faultinject.Rule{
		faultinject.SiteCoordDiverge: {FaultProb: 0.25},
	}}
	c := tc.open(t)
	res, err := c.Run(context.Background(), 1)
	if err == nil {
		t.Fatalf("run served a result despite an unresolvable divergence: %+v", res)
	}
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("unresolvable divergence surfaced as %v, want ErrDiverged", err)
	}
}

// stallSeed scans for a shard.stall seed whose first few injected
// delays (sequencer keys 0..n-1) all exceed floor, so every epoch's
// first expand on the stalled shard reliably overstays the hedge.
func stallSeed(t *testing.T, n int, max time.Duration, floor time.Duration) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 10000; seed++ {
		p := &faultinject.Plan{Seed: seed, Rules: map[faultinject.Site]faultinject.Rule{
			faultinject.SiteShardStall: {DelayProb: 1, MaxDelay: max},
		}}
		ok := true
		for k := 0; k < n; k++ {
			if p.Decide(faultinject.SiteShardStall, uint64(k)).Delay < floor {
				ok = false
				break
			}
		}
		if ok {
			return seed
		}
	}
	t.Fatal("no usable stall seed found")
	return 0
}

// TestHedgeAbandonsGrayStalledReplica: one replica stalls every expand
// (alive, heartbeating, just slow — a gray failure). The hedge stops
// waiting a fixed budget after the sibling's valid response, abandons
// the straggler for the epoch, and the traversal stays exact and fast.
// Repeated queries then prove the hedged rounds leak no in-flight
// request goroutines: the cancelled stragglers' goroutines exit, so
// the count settles back between queries instead of growing.
func TestHedgeAbandonsGrayStalledReplica(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g, err := gen.RMAT(gen.Graph500Params(9, 8), 42)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := serialDepths(t, g, 1)
	const queries = 5
	stall := &faultinject.Plan{
		Seed: stallSeed(t, queries, 2*time.Second, 500*time.Millisecond),
		Rules: map[faultinject.Site]faultinject.Rule{
			faultinject.SiteShardStall: {DelayProb: 1, MaxDelay: 2 * time.Second},
		},
	}
	// Group 0, replica 1 is the gray-failed straggler.
	tc := newAuditCluster(t, g, 2, 2, []*faultinject.Plan{nil, stall, nil, nil})
	tc.cfg.HedgeAfter = 25 * time.Millisecond
	tc.cfg.AuditReplicas = true
	client := &http.Client{}
	tc.cfg.Client = client
	c := tc.open(t)

	settle := func(limit int, what string) {
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > limit {
			if time.Now().After(deadline) {
				t.Fatalf("%s: goroutines stuck at %d, limit %d", what, runtime.NumGoroutine(), limit)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	var elapsed time.Duration
	for q := 0; q < queries; q++ {
		start := time.Now()
		res, err := c.Run(context.Background(), 1)
		if err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
		elapsed = time.Since(start)
		assertExactDepths(t, res, want)
		if res.Hedges == 0 || res.HedgeWins == 0 {
			t.Fatalf("query %d: stalled replica never hedged (hedges %d, wins %d)", q, res.Hedges, res.HedgeWins)
		}
		if res.Failovers == 0 {
			t.Fatalf("query %d: hedged straggler was not abandoned for the epoch", q)
		}
		if res.EpochRestarts != 0 {
			t.Fatalf("query %d: hedge escalated to %d epoch restarts", q, res.EpochRestarts)
		}
	}
	// The stall is up to 2s per expand; a hedged traversal must not have
	// waited it out.
	if elapsed > 1500*time.Millisecond {
		t.Fatalf("hedged traversal took %v; the straggler stalled the epoch", elapsed)
	}
	// All in-flight request goroutines from the hedged rounds must drain:
	// stragglers were cancelled, and their server handlers finish their
	// injected sleeps well within the settle window.
	for _, srv := range tc.servers {
		srv.Close()
	}
	client.CloseIdleConnections()
	settle(baseline+2, "after drain")
}
