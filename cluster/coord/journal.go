// The coordinator journal: a crash-recoverable record of the cluster's
// coordination state — membership (GroupAssignment), the coordination
// lease with its fencing token (Lease), and the in-flight traversal's
// per-round state (EpochState) — kept under a state directory with the
// same durability discipline as serve/manifest.go:
//
//	state.log   append-only journal of framed HA records
//	state.snap  snapshot of the current state at some compaction point
//
// Every append is written and fsync'd before the caller proceeds, so a
// journaled round or lease survives any later crash. A crash mid-append
// leaves a torn tail: on open the log is scanned frame by frame and
// truncated at the first frame that is short, oversized, or fails its
// record's CRC — recovery keeps the longest valid prefix and NEVER
// refuses to boot (TornBytes reports what was dropped). After
// SnapshotEvery appends the current state is compacted into state.snap
// (tmp + fsync + rename + dir fsync, then the log is truncated); a
// corrupt snapshot is ignored, since the log retains everything since
// the last successful compaction.
//
// Records fold into the state monotonically — lease tokens never
// regress, epoch state only advances — so the same code path absorbs
// sequential replay, duplicated mirror pushes from an active
// coordinator, and out-of-order delivery.
package coord

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

const (
	journalMagic   = "FBFSCJL1"
	coordSnapMagic = "FBFSCJS1"

	journalLogName  = "state.log"
	journalSnapName = "state.snap"

	// maxJournalFrame bounds one framed record; an EpochState over the
	// largest legal graph fits well inside it.
	maxJournalFrame = 1 << 30

	// DefaultJournalSnapshotEvery is the compaction threshold when
	// OpenJournal is given zero.
	DefaultJournalSnapshotEvery = 256
)

// JournalState is the coordination state a journal has accumulated.
// The record pointers are shared, not copied — treat them as immutable.
type JournalState struct {
	Lease      *Lease
	Assignment *GroupAssignment
	Epoch      *EpochState
}

// Journal is the coordinator's durable state log. All methods are safe
// for concurrent use.
type Journal struct {
	mu      sync.Mutex
	dir     string
	f       *os.File
	every   int
	records int
	state   JournalState

	// TornBytes is how many bytes of torn tail were truncated at open
	// (0 = the log was clean). SnapshotCorrupt reports that state.snap
	// existed but failed validation and was ignored.
	TornBytes       int64
	SnapshotCorrupt bool

	// Mirror, when non-nil, observes every successfully appended record
	// (encoded bytes) — the active coordinator's hook for pushing state
	// to its standby. It runs under the journal lock and must not block.
	Mirror func(rec []byte)

	countedRecords int // valid records folded during replayLog
}

// errStaleRecord marks a record the monotone fold refused: an older
// lease token or an earlier epoch state. Journal.Apply skips these
// silently; direct appends surface them.
var errStaleRecord = errors.New("coord: journal record is stale")

// OpenJournal opens (creating if needed) the coordinator journal in
// dir, replaying state.snap and then state.log. snapshotEvery <= 0 gets
// DefaultJournalSnapshotEvery.
func OpenJournal(dir string, snapshotEvery int) (*Journal, error) {
	if snapshotEvery <= 0 {
		snapshotEvery = DefaultJournalSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	j := &Journal{dir: dir, every: snapshotEvery}

	// Snapshot first: the log holds only records since its compaction.
	if snap, err := os.ReadFile(filepath.Join(dir, journalSnapName)); err == nil {
		if err := j.applyFrames(snap, coordSnapMagic); err != nil {
			j.SnapshotCorrupt = true
			j.state = JournalState{} // half-applied snapshot is worthless
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}

	path := filepath.Join(dir, journalLogName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j.f = f
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	if len(raw) == 0 {
		if err := j.reset(); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	if len(raw) < len(journalMagic) || string(raw[:len(journalMagic)]) != journalMagic {
		// Not our log at all: keep the snapshot's state, start the log
		// over. Refusing to boot would make one bad byte fatal.
		j.TornBytes = int64(len(raw))
		if err := j.reset(); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	consumed := j.replayLog(raw[len(journalMagic):]) + int64(len(journalMagic))
	if consumed < int64(len(raw)) {
		j.TornBytes = int64(len(raw)) - consumed
		if err := f.Truncate(consumed); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	j.records = j.countedRecords
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// replayLog folds valid frames from b (the log body past the magic)
// into the state, returning the byte count of the valid prefix.
func (j *Journal) replayLog(b []byte) int64 {
	var consumed int64
	j.countedRecords = 0
	for len(b) >= 4 {
		n := le32(b)
		if n > maxJournalFrame || uint64(n)+4 > uint64(len(b)) {
			break
		}
		rec := b[4 : 4+n]
		if _, err := j.fold(rec); err != nil {
			break
		}
		consumed += int64(4 + n)
		j.countedRecords++
		b = b[4+n:]
	}
	return consumed
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// applyFrames validates a magic-prefixed concatenation of frames and
// folds every record in; any failure poisons the whole buffer.
func (j *Journal) applyFrames(b []byte, magic string) error {
	if len(b) < len(magic) || string(b[:len(magic)]) != magic {
		return fmt.Errorf("%w: bad journal magic", ErrWire)
	}
	frames, err := SplitFrames(b[len(magic):])
	if err != nil {
		return err
	}
	for _, rec := range frames {
		if _, err := j.fold(rec); err != nil && !errors.Is(err, errStaleRecord) {
			return err
		}
	}
	return nil
}

// fold decodes one record by its magic and merges it into the state
// monotonically. Stale records (older lease token, earlier epoch state)
// return errStaleRecord; garbage returns ErrWire.
func (j *Journal) fold(rec []byte) (any, error) {
	if len(rec) < 8 {
		return nil, fmt.Errorf("%w: %d-byte journal record", ErrWire, len(rec))
	}
	switch string(rec[:8]) {
	case leaseMagic:
		l, err := DecodeLease(rec)
		if err != nil {
			return nil, err
		}
		if cur := j.state.Lease; cur != nil && l.Token < cur.Token {
			return nil, errStaleRecord
		}
		j.state.Lease = l
		return l, nil
	case assignmentMagic:
		a, err := DecodeGroupAssignment(rec)
		if err != nil {
			return nil, err
		}
		j.state.Assignment = a
		return a, nil
	case epochMagic:
		e, err := DecodeEpochState(rec)
		if err != nil {
			return nil, err
		}
		if cur := j.state.Epoch; cur != nil {
			if e.Epoch < cur.Epoch {
				return nil, errStaleRecord
			}
			if e.Epoch == cur.Epoch && !e.Done && (cur.Done || e.Round < cur.Round) {
				return nil, errStaleRecord
			}
		}
		j.state.Epoch = e
		return e, nil
	default:
		return nil, fmt.Errorf("%w: unknown journal record magic %q", ErrWire, rec[:8])
	}
}

// reset rewrites the log as empty (magic only).
func (j *Journal) reset() error {
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.WriteAt([]byte(journalMagic), 0); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	_, err := j.f.Seek(0, 2)
	j.records = 0
	return err
}

// State returns the journal's current accumulated state.
func (j *Journal) State() JournalState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Dir returns the journal's state directory.
func (j *Journal) Dir() string { return j.dir }

// AppendLease durably records l. Stale tokens are refused.
func (j *Journal) AppendLease(l *Lease) error { return j.append(l.Encode()) }

// AppendAssignment durably records a.
func (j *Journal) AppendAssignment(a *GroupAssignment) error { return j.append(a.Encode()) }

// AppendEpoch durably records e. Regressions within an epoch are refused.
func (j *Journal) AppendEpoch(e *EpochState) error { return j.append(e.Encode()) }

// Apply validates an already-encoded record (as received from a mirror
// push or a state poll), folds it in monotonically and journals it.
// Stale records are skipped without error (applied = false) so
// duplicated and reordered delivery never bloats the log.
func (j *Journal) Apply(rec []byte) (applied bool, err error) {
	err = j.append(rec)
	if errors.Is(err, errStaleRecord) {
		return false, nil
	}
	return err == nil, err
}

// append folds rec into the state and, if it was news, frames, writes
// and fsyncs it before returning.
func (j *Journal) append(rec []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.fold(rec); err != nil {
		return err
	}
	frame := AppendFrame(make([]byte, 0, 4+len(rec)), rec)
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.records++
	if j.Mirror != nil {
		j.Mirror(rec)
	}
	if j.records >= j.every {
		if err := j.compact(); err != nil {
			return fmt.Errorf("coord: journal compaction: %w", err)
		}
	}
	return nil
}

// compact writes the current state to state.snap (atomically, durably)
// and then truncates the log. A crash between the rename and the
// truncate merely replays the log's records onto the snapshot — the
// monotone fold makes that a no-op.
func (j *Journal) compact() error {
	snap := []byte(coordSnapMagic)
	if j.state.Lease != nil {
		snap = AppendFrame(snap, j.state.Lease.Encode())
	}
	if j.state.Assignment != nil {
		snap = AppendFrame(snap, j.state.Assignment.Encode())
	}
	if j.state.Epoch != nil {
		snap = AppendFrame(snap, j.state.Epoch.Encode())
	}
	tmp := filepath.Join(j.dir, journalSnapName+".tmp")
	if err := writeFileSync(tmp, snap); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, journalSnapName)); err != nil {
		return err
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	return j.reset()
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
