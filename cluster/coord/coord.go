package coord

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fastbfs/cluster"
	"fastbfs/internal/faultinject"
)

// Config parameterizes a Coordinator. The zero value of every field is
// replaced with a usable default, so Coordinator{Shards: urls} works.
type Config struct {
	// Shards lists the shard base URLs in group-major order: with R
	// replicas per group, Shards[g*R+r] is replica r of group g. Every
	// replica of a group serves the same vertex partition with the same
	// round protocol, so the coordinator can use any of them
	// interchangeably within a round.
	Shards []string
	// Replicas is the replica-group width R (default 1: every group is
	// a single shard, the pre-replication topology). len(Shards) must
	// be a multiple of Replicas.
	Replicas int
	// Fence is the coordinator's fencing token, carried in every shard
	// request. Shards remember the highest token they have admitted and
	// reject lower ones with ErrFenced, so a deposed coordinator whose
	// lease was taken over cannot corrupt its successor's rounds. 0 is
	// the legacy unfenced protocol.
	Fence uint64
	// Journal, when non-nil, durably records the in-flight epoch's
	// per-round candidate frontiers before each round is sent and a
	// completion marker when the traversal finishes, so a standby
	// coordinator can Resume the query without an epoch restart.
	Journal *Journal
	// RPCTimeout bounds each individual request attempt (default 5s).
	RPCTimeout time.Duration
	// MaxAttempts is the guaranteed per-round attempt budget per shard
	// before the recovery clock can declare it dead (default 4).
	MaxAttempts int
	// Backoff schedules the delay between retries. A zero value gets
	// 50ms base, 2s cap, 0.5 jitter.
	Backoff cluster.Backoff
	// RecoveryBudget is how long past its last sign of life (heartbeat
	// or round start, whichever is later) a failing shard may stay
	// unreachable before it is declared dead and the round fails over
	// to the group's surviving replicas — or, when none remain, the run
	// degrades (default 15s).
	RecoveryBudget time.Duration
	// HeartbeatInterval paces the health prober (default 500ms).
	HeartbeatInterval time.Duration
	// MaxEpochRestarts bounds full-traversal restarts caused by shards
	// that lost their round state (default 3).
	MaxEpochRestarts int
	// HedgeAfter is how long past a round's first valid replica response
	// a group keeps waiting for its stragglers before abandoning them
	// for the epoch (the hedge, protecting rounds from gray-failed
	// slow-but-alive replicas). Zero derives the budget adaptively from
	// the p99 of recently observed healthy RPC latencies; negative
	// disables hedging.
	HedgeAfter time.Duration
	// AuditReplicas makes the coordinator cross-check every replica's
	// expand response (CRC32 of the canonical frame bytes) instead of
	// serving the first success. Replicas run the round protocol in
	// deterministic lockstep, so honest responses are byte-identical and
	// any divergence is proof of silent corruption: the quorum answer is
	// served and divergent minority replicas are marked dead for the
	// epoch with ErrDiverged. Meaningful only with Replicas >= 2.
	AuditReplicas bool
	// Injector, when non-nil, disturbs the coordinator's send path
	// (faultinject.SiteCoordSend) for chaos tests.
	Injector *faultinject.Plan
	// Client issues the HTTP requests; http.DefaultClient when nil.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.Backoff == (cluster.Backoff{}) {
		c.Backoff = cluster.Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}
	}
	if c.RecoveryBudget <= 0 {
		c.RecoveryBudget = 15 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.MaxEpochRestarts <= 0 {
		c.MaxEpochRestarts = 3
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return c
}

// Result is a distributed traversal's outcome. When every replica group
// kept at least one live member (failures failed over within the
// group), Depth is exactly the serial BFS depth array. When an entire
// group stayed dead past the recovery budget, Incomplete is set and
// Depth covers only the reachable subset the surviving groups computed
// — dead groups' ranges read -1, and vertices whose only paths ran
// through dead groups may read -1 or an overestimate of their true
// depth.
type Result struct {
	Source uint32
	Depth  []int32
	// Rounds is the number of BFS levels executed (claiming rounds).
	Rounds int
	// Visited counts vertices with Depth >= 0.
	Visited int64
	// ClaimedPerRound[r] is the cluster-wide number of vertices first
	// reached at depth r — the BFS level sizes, for round-for-round
	// validation against a serial run. (A resumed traversal only
	// observes the rounds from its resume point on.)
	ClaimedPerRound []int64
	// Epoch identifies the (final) epoch that produced Depth.
	Epoch uint64
	// Incomplete marks a degraded result (a whole group stayed dead).
	Incomplete bool
	// DeadShards lists the replica-group ids declared fully dead, in id
	// order. (With Replicas == 1 a group is a single shard, matching
	// the field's historical meaning.)
	DeadShards []int
	// Retries counts failed request attempts that were retried.
	Retries int
	// EpochRestarts counts full-traversal restarts.
	EpochRestarts int
	// Failovers counts replicas declared dead for the epoch while their
	// group stayed usable — each one is a failure the replication layer
	// absorbed without degrading the result.
	Failovers int
	// Divergences counts replica responses outvoted by their group's
	// quorum under AuditReplicas — with deterministic lockstep replicas,
	// each one is a silent corruption that was detected and never served.
	Divergences int
	// Hedges counts rounds where a group stopped waiting for a straggler
	// replica after the hedge budget elapsed; HedgeWins counts those
	// where an already-arrived sibling response let the round proceed
	// without the straggler.
	Hedges    int
	HedgeWins int
}

// Coordinator drives level-synchronous distributed BFS over HTTP shard
// workers, surviving shard crashes, lost messages and restarts. With
// Replicas > 1 it additionally fails rounds over to secondary replicas,
// keeping results exact through the loss of any proper subset of a
// group.
type Coordinator struct {
	cfg Config
	seq faultinject.Sequencer

	// Discovered at Open: the cluster-wide vertex count and each
	// group's owned range (validated to tile [0, n)).
	groups int
	n      int
	lo     []uint32
	hi     []uint32

	lastContact []atomic.Int64 // unix nanos of last successful contact per URL
	retries     atomic.Int64   // failed attempts retried this Run (parallel senders)
	failovers   atomic.Int64   // replicas declared dead while their group survived
	divergences atomic.Int64   // replica responses outvoted by their group's quorum
	hedges      atomic.Int64   // rounds that abandoned a straggler after the hedge budget
	hedgeWins   atomic.Int64   // hedged rounds that proceeded on a sibling's response

	latMu   sync.Mutex
	latRing [64]time.Duration // recent successful expand RPC latencies
	latLen  int
	latPos  int
}

// errEpochRestart is the internal signal that a shard lost its round
// state and the epoch must be re-run from round 0.
var errEpochRestart = errors.New("coord: shard lost round state; epoch restart required")

// errShardDead is the internal signal that a shard exhausted its
// recovery budget this round.
var errShardDead = errors.New("coord: shard declared dead")

// ErrDiverged marks a replica whose expand response disagreed with its
// group's quorum answer under AuditReplicas. Replicas execute the round
// protocol in deterministic lockstep, so honest responses to one round
// are byte-identical and any divergence is proof of silent corruption;
// the quorum answer is served and the divergent replica is dead for the
// epoch. Wrapped into a returned error only when no strict majority
// exists (e.g. two replicas, two different answers) — the coordinator
// then restarts the epoch rather than risk serving a corrupted result.
var ErrDiverged = errors.New("coord: replica response diverged from quorum")

// Open validates cfg, probes every replica's health endpoint to learn
// the partitioning, and returns a ready Coordinator. Probing retries
// within the recovery budget, so shards may still be booting when Open
// runs. With Replicas > 1, a group only needs one reachable replica to
// be usable; unreachable replicas are logged and picked up by the
// heartbeat prober once they appear.
func Open(ctx context.Context, cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("coord: no shard URLs configured")
	}
	cfg = cfg.withDefaults()
	if len(cfg.Shards)%cfg.Replicas != 0 {
		return nil, fmt.Errorf("coord: %d shard URLs do not divide into groups of %d replicas",
			len(cfg.Shards), cfg.Replicas)
	}
	groups := len(cfg.Shards) / cfg.Replicas
	c := &Coordinator{
		cfg:         cfg,
		groups:      groups,
		lo:          make([]uint32, groups),
		hi:          make([]uint32, groups),
		lastContact: make([]atomic.Int64, len(cfg.Shards)),
	}
	haveRange := make([]bool, groups)
	deadline := time.Now().Add(cfg.RecoveryBudget)
	for u := range cfg.Shards {
		g := u / cfg.Replicas
		for attempt := 1; ; attempt++ {
			id, lo, hi, err := c.probeHealth(ctx, u)
			if err == nil {
				if id != g {
					return nil, fmt.Errorf("coord: URL %q configured as shard %d but reports id %d (shard order must match ids)",
						cfg.Shards[u], g, id)
				}
				if haveRange[g] && (c.lo[g] != lo || c.hi[g] != hi) {
					return nil, fmt.Errorf("coord: group %d replicas disagree on their range: [%d,%d) vs [%d,%d)",
						g, c.lo[g], c.hi[g], lo, hi)
				}
				c.lo[g], c.hi[g] = lo, hi
				haveRange[g] = true
				break
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if time.Now().After(deadline) {
				if cfg.Replicas == 1 {
					return nil, fmt.Errorf("coord: shard %d (%s) unreachable: %w", g, cfg.Shards[u], err)
				}
				// A replicated group tolerates unreachable members as long
				// as one answers — required for a standby taking over a
				// cluster that is mid-failure.
				log.Printf("coord: group %d replica %d (%s) unreachable at open: %v",
					g, u%cfg.Replicas, cfg.Shards[u], err)
				break
			}
			sleepCtx(ctx, cfg.Backoff.Delay(attempt, uint64(u)))
		}
	}
	for g, ok := range haveRange {
		if !ok {
			return nil, fmt.Errorf("coord: group %d has no reachable replica", g)
		}
	}
	// Ranges must tile [0, n) in group order — anything else means the
	// shards were launched with inconsistent -shards/-shard-id flags.
	prev := uint32(0)
	for g := range c.lo {
		if c.lo[g] != prev || c.hi[g] < c.lo[g] {
			return nil, fmt.Errorf("coord: shard %d owns [%d,%d) but the previous shard ends at %d; partitions must tile",
				g, c.lo[g], c.hi[g], prev)
		}
		prev = c.hi[g]
	}
	c.n = int(prev)
	if c.n == 0 {
		return nil, fmt.Errorf("coord: shards report an empty graph")
	}
	return c, nil
}

// NumVertices returns the cluster-wide vertex count the shards report.
func (c *Coordinator) NumVertices() int { return c.n }

// probeHealth parses replica u's health line and records the contact.
// The returned id is the shard's group id.
func (c *Coordinator) probeHealth(ctx context.Context, u int) (id int, lo, hi uint32, err error) {
	rctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, c.cfg.Shards[u]+"/shard/health", nil)
	if err != nil {
		return 0, 0, 0, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256))
	if err != nil {
		return 0, 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("health: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	// Sscanf matches the prefix, so both the legacy line and the
	// replica-suffixed one parse.
	if _, err := fmt.Sscanf(string(body), "shard %d [%d,%d)", &id, &lo, &hi); err != nil {
		return 0, 0, 0, fmt.Errorf("health: unparseable reply %q", bytes.TrimSpace(body))
	}
	c.lastContact[u].Store(time.Now().UnixNano())
	return id, lo, hi, nil
}

// Run executes one distributed BFS from source, restarting the epoch
// (bounded) when shards lose state and degrading to a partial result
// when whole groups stay dead. Concurrent Runs are not supported — the
// round protocol is per-coordinator sequential.
func (c *Coordinator) Run(ctx context.Context, source uint32) (*Result, error) {
	return c.run(ctx, source, 0, 0, nil)
}

// Resume continues the in-flight traversal recorded in the configured
// journal: it re-sends the journaled round's candidate frontiers under
// the journaled epoch id, relying on the shards' idempotent round
// protocol (replicas that already processed that round replay their
// cached responses byte-exactly; the rest process it normally). Returns
// (nil, nil) when the journal holds no unfinished epoch.
func (c *Coordinator) Resume(ctx context.Context) (*Result, error) {
	if c.cfg.Journal == nil {
		return nil, fmt.Errorf("coord: Resume requires a journal")
	}
	e := c.cfg.Journal.State().Epoch
	if e == nil || e.Done {
		return nil, nil
	}
	if len(e.Cand) != c.groups {
		return nil, fmt.Errorf("coord: journaled epoch has %d candidate frontiers, cluster has %d groups",
			len(e.Cand), c.groups)
	}
	cand := make([]*Frontier, c.groups)
	for g, enc := range e.Cand {
		f, err := DecodeFrontier(enc)
		if err != nil {
			return nil, fmt.Errorf("coord: journaled candidate for group %d: %w", g, err)
		}
		if f.Lo != c.lo[g] || f.Hi != c.hi[g] {
			return nil, fmt.Errorf("coord: journaled candidate for group %d covers [%d,%d), group owns [%d,%d)",
				g, f.Lo, f.Hi, c.lo[g], c.hi[g])
		}
		cand[g] = f
	}
	log.Printf("coord: resuming in-flight epoch %d from round %d (source %d)", e.Epoch, e.Round, e.Source)
	return c.run(ctx, e.Source, e.Epoch, e.Round, cand)
}

// run is the shared engine behind Run and Resume: heartbeats, the
// bounded epoch-restart loop, and result assembly. A non-nil resumeCand
// makes the first attempt continue epoch resumeEpoch at resumeRound;
// restarts after that fall back to fresh epochs.
func (c *Coordinator) run(ctx context.Context, source uint32, resumeEpoch uint64, resumeRound uint32, resumeCand []*Frontier) (*Result, error) {
	if int(source) >= c.n {
		return nil, fmt.Errorf("coord: source %d out of range [0,%d)", source, c.n)
	}

	// Background heartbeats keep lastContact fresh for the liveness
	// rule; they stop when the run does.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	for u := range c.cfg.Shards {
		go func(u int) {
			t := time.NewTicker(c.cfg.HeartbeatInterval)
			defer t.Stop()
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-t.C:
					c.probeHealth(hbCtx, u) // success updates lastContact
				}
			}
		}(u)
	}

	res := &Result{Source: source}
	c.retries.Store(0)
	c.failovers.Store(0)
	c.divergences.Store(0)
	c.hedges.Store(0)
	c.hedgeWins.Store(0)
	defer func() {
		res.Retries = int(c.retries.Load())
		res.Failovers = int(c.failovers.Load())
		res.Divergences = int(c.divergences.Load())
		res.Hedges = int(c.hedges.Load())
		res.HedgeWins = int(c.hedgeWins.Load())
	}()
	for restart := 0; ; restart++ {
		// Epochs are wall-clock-derived so a restarted coordinator never
		// reuses an epoch id some shard still holds state for.
		epoch := uint64(time.Now().UnixNano()) + uint64(restart)
		startRound := uint32(0)
		var cand []*Frontier
		if restart == 0 && resumeCand != nil {
			epoch, startRound, cand = resumeEpoch, resumeRound, resumeCand
		}
		err := c.runEpoch(ctx, epoch, source, res, startRound, cand)
		if err == nil {
			res.Epoch = epoch
			return res, nil
		}
		// A no-quorum divergence poisons the epoch the same way lost round
		// state does: nothing trustworthy can be served from it, but a
		// fresh epoch may succeed (transient corruption, replica now dead).
		if !errors.Is(err, errEpochRestart) && !errors.Is(err, ErrDiverged) {
			return nil, err
		}
		if restart+1 >= c.cfg.MaxEpochRestarts {
			return nil, fmt.Errorf("coord: giving up after %d epoch restarts: %w", restart+1, err)
		}
		res.EpochRestarts++
		log.Printf("coord: epoch %d abandoned (%v); restarting", epoch, err)
	}
}

// journalRound durably records the about-to-be-sent round's candidate
// frontiers, so a standby coordinator can resume from exactly here.
func (c *Coordinator) journalRound(epoch uint64, source, round uint32, cand []*Frontier) error {
	j := c.cfg.Journal
	if j == nil {
		return nil
	}
	e := &EpochState{Epoch: epoch, Fence: c.cfg.Fence, Source: source, Round: round}
	e.Cand = make([][]byte, len(cand))
	for g, f := range cand {
		e.Cand[g] = f.Encode()
	}
	if err := j.AppendEpoch(e); err != nil && !errors.Is(err, errStaleRecord) {
		// A stale refusal happens only when resuming the already-journaled
		// round — the state is as durable as we need it.
		return fmt.Errorf("coord: journaling round %d: %w", round, err)
	}
	return nil
}

// journalDone marks the journaled epoch finished.
func (c *Coordinator) journalDone(epoch uint64, source, lastRound uint32) error {
	j := c.cfg.Journal
	if j == nil {
		return nil
	}
	e := &EpochState{Epoch: epoch, Fence: c.cfg.Fence, Source: source, Round: lastRound, Done: true}
	if err := j.AppendEpoch(e); err != nil && !errors.Is(err, errStaleRecord) {
		return fmt.Errorf("coord: journaling epoch completion: %w", err)
	}
	return nil
}

// runEpoch drives one traversal attempt under one epoch id, starting at
// startRound with the given candidate frontiers (nil = fresh epoch from
// round 0), filling res on success.
func (c *Coordinator) runEpoch(ctx context.Context, epoch uint64, source uint32, res *Result, startRound uint32, cand []*Frontier) error {
	ngroups := c.groups
	// dead is per replica URL, for this epoch: a dead replica missed
	// rounds and cannot rejoin until the next epoch.
	dead := make([]bool, len(c.cfg.Shards))
	for u := range dead {
		// Replicas never yet contacted (down since before Open) start
		// dead for the epoch rather than stalling round 0 for the full
		// recovery budget; the heartbeat prober readmits them next epoch.
		if c.cfg.Replicas > 1 && c.lastContact[u].Load() == 0 {
			dead[u] = true
		}
	}
	res.ClaimedPerRound = nil
	res.Rounds = 0
	res.Incomplete = false
	res.DeadShards = nil

	if cand == nil {
		// cand[g] is group g's candidate frontier for the current round.
		cand = make([]*Frontier, ngroups)
		for g := range cand {
			cand[g] = NewFrontier(epoch, 0, uint32(g), c.lo[g], c.hi[g])
		}
		cand[PartitionOwner(c.n, ngroups, source)].Set(source)
	}

	lastRound := startRound
	for round := startRound; ; round++ {
		lastRound = round
		if err := c.journalRound(epoch, source, round, cand); err != nil {
			return err
		}
		// Every live group gets a round message every round — empty
		// frontiers included — so round sequencing never gaps. All live
		// replicas of a group receive the same message (the barrier keeps
		// them in lockstep, which is what makes mid-epoch failover
		// possible).
		type reply struct {
			group int
			resp  *ExpandResponse
			err   error
		}
		replies := make([]reply, 0, ngroups)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for g := 0; g < ngroups; g++ {
			if c.groupDead(g, dead) {
				continue
			}
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				resp, err := c.expandGroup(ctx, g, cand[g], dead, res)
				mu.Lock()
				replies = append(replies, reply{g, resp, err})
				mu.Unlock()
			}(g)
		}
		wg.Wait()

		var claimed int64
		next := make([]*Frontier, ngroups)
		for g := range next {
			next[g] = NewFrontier(epoch, round+1, uint32(g), c.lo[g], c.hi[g])
		}
		for _, r := range replies {
			switch {
			case r.err == nil:
				claimed += int64(r.resp.Claimed)
				for _, f := range r.resp.Out {
					if int(f.Shard) >= ngroups {
						return fmt.Errorf("%w: discovery frame for shard %d of %d", ErrWire, f.Shard, ngroups)
					}
					if err := next[f.Shard].Union(f); err != nil {
						return err
					}
				}
			case errors.Is(r.err, errEpochRestart):
				return r.err
			case errors.Is(r.err, errShardDead):
				log.Printf("coord: epoch %d round %d: group %d fully dead (%v); degrading", epoch, round, r.group, r.err)
			default:
				return r.err
			}
		}

		if claimed > 0 {
			res.ClaimedPerRound = append(res.ClaimedPerRound, claimed)
			res.Rounds = int(round) + 1
		}
		if claimed == 0 || c.allGroupsDead(dead) {
			break
		}
		for g := range next {
			// Candidates owned by dead groups are dropped: nobody can
			// claim them. (Bumping round tags on the survivors happens
			// via the fresh frontiers above.)
			cand[g] = next[g]
		}
	}

	// Collect the committed depth slices from the survivors.
	depth := make([]int32, c.n)
	for i := range depth {
		depth[i] = -1
	}
	res.Visited = 0
	for g := 0; g < ngroups; g++ {
		if c.groupDead(g, dead) {
			res.Incomplete = true
			res.DeadShards = append(res.DeadShards, g)
			continue
		}
		if c.hi[g] == c.lo[g] {
			continue
		}
		d, err := c.depthsGroup(ctx, g, epoch, dead)
		if err != nil {
			if errors.Is(err, errShardDead) {
				// The whole group died after its last round but before
				// reporting: its slice is lost; degrade rather than fail.
				log.Printf("coord: epoch %d: group %d died before reporting depths; degrading", epoch, g)
				res.Incomplete = true
				res.DeadShards = append(res.DeadShards, g)
				continue
			}
			return err
		}
		if d.Lo != c.lo[g] || d.Hi != c.hi[g] {
			return fmt.Errorf("%w: shard %d reported depths for [%d,%d), owns [%d,%d)",
				ErrWire, g, d.Lo, d.Hi, c.lo[g], c.hi[g])
		}
		copy(depth[d.Lo:d.Hi], d.Depth)
		for _, v := range d.Depth {
			if v >= 0 {
				res.Visited++
			}
		}
	}
	res.Depth = depth
	return c.journalDone(epoch, source, lastRound)
}

// groupDead reports whether every replica of group g is dead.
func (c *Coordinator) groupDead(g int, dead []bool) bool {
	for r := 0; r < c.cfg.Replicas; r++ {
		if !dead[g*c.cfg.Replicas+r] {
			return false
		}
	}
	return true
}

func (c *Coordinator) allGroupsDead(dead []bool) bool {
	for g := 0; g < c.groups; g++ {
		if !c.groupDead(g, dead) {
			return false
		}
	}
	return true
}

// expandGroup delivers one round message to every live replica of group
// g in parallel and returns the group's answer for the round. Replicas
// are deterministic lockstep copies, so honest responses to one round
// are byte-identical; with AuditReplicas set the successful responses
// are cross-checked (CRC32 of canonical bytes) and the strict-majority
// quorum is served — divergent minority replicas are silent corruption,
// marked dead for the epoch with ErrDiverged. After the first valid
// response the group waits at most hedgeDelay for stragglers (the
// hedge): a gray-failed slow-but-alive replica cannot stall the epoch —
// its request is cancelled, it is abandoned for the epoch, and the round
// proceeds on its siblings' answers. Replicas that fail — exhausted
// recovery budget, or lost their round state while a sibling still has
// it — are marked dead for the epoch and the round proceeds on the
// survivors: that is the failover. Typed outcomes:
//
//   - ErrFenced from any replica is fatal (this coordinator is deposed);
//   - ErrDiverged (wrapped) when auditing found no strict majority to
//     serve (caller restarts the epoch rather than serve corruption);
//   - errEpochRestart when no replica succeeded but at least one is
//     alive-but-stateless (only a fresh epoch can proceed);
//   - errShardDead when the entire group is dead (caller degrades).
func (c *Coordinator) expandGroup(ctx context.Context, g int, f *Frontier, dead []bool, res *Result) (*ExpandResponse, error) {
	R := c.cfg.Replicas
	type reply struct {
		u    int
		resp *ExpandResponse
		crc  uint32
		err  error
	}
	var live []int
	for r := 0; r < R; r++ {
		if u := g*R + r; !dead[u] {
			live = append(live, u)
		}
	}
	// Stragglers are cancelled when the group stops waiting; the buffered
	// channel lets their goroutines deliver and exit regardless, so a
	// hedged round leaks no in-flight request goroutine.
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan reply, len(live))
	for _, u := range live {
		go func(u int) {
			start := time.Now()
			resp, crc, err := c.expand(gctx, u, f, res)
			if err == nil {
				c.recordLatency(time.Since(start))
			}
			ch <- reply{u, resp, crc, err}
		}(u)
	}

	replies := make([]reply, 0, len(live))
	succ := 0
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	defer func() {
		if hedgeTimer != nil {
			hedgeTimer.Stop()
		}
	}()
	hedged := false
	for outstanding := len(live); outstanding > 0; {
		select {
		case r := <-ch:
			outstanding--
			replies = append(replies, r)
			if errors.Is(r.err, ErrFenced) {
				return nil, r.err
			}
			if r.err == nil {
				succ++
				if hedgeC == nil && outstanding > 0 {
					if d := c.hedgeDelay(); d > 0 {
						hedgeTimer = time.NewTimer(d)
						hedgeC = hedgeTimer.C
					}
				}
			}
		case <-hedgeC:
			// The hedge: a valid response is in hand and a straggler has
			// overstayed its budget. Stop waiting — the round proceeds on
			// the responses already held.
			hedged = true
			c.hedges.Add(1)
			outstanding = 0
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if hedged {
		cancel() // release stragglers' in-flight requests now, not at return
		answered := make(map[int]bool, len(replies))
		for _, r := range replies {
			answered[r.u] = true
		}
		for _, u := range live {
			if !answered[u] {
				// A straggler misses this round, so lockstep is broken for
				// it: dead for the epoch, readmitted next epoch.
				dead[u] = true
				c.failovers.Add(1)
				log.Printf("coord: epoch %d round %d: group %d replica %d overstayed the hedge budget; abandoned for epoch",
					f.Epoch, f.Round, g, u%R)
			}
		}
	}

	// The audit: bucket successful responses by canonical-bytes CRC and
	// serve only a strict majority. Divergent minorities are marked dead
	// with ErrDiverged; with no strict majority (two replicas that
	// disagree, or a three-way split) nothing trustworthy can be served
	// and the epoch restarts.
	if c.cfg.AuditReplicas && succ > 1 {
		counts := make(map[uint32]int, 2)
		for _, r := range replies {
			if r.err == nil {
				counts[r.crc]++
			}
		}
		if len(counts) > 1 {
			var winner uint32
			haveQuorum := false
			for crc, n := range counts {
				if 2*n > succ {
					winner, haveQuorum = crc, true
				}
			}
			if !haveQuorum {
				return nil, fmt.Errorf("%w: group %d round %d: %d distinct answers among %d replicas, no quorum",
					ErrDiverged, g, f.Round, len(counts), succ)
			}
			for i := range replies {
				r := &replies[i]
				if r.err == nil && r.crc != winner {
					dead[r.u] = true
					c.divergences.Add(1)
					r.err = fmt.Errorf("%w: group %d round %d replica %d outvoted %d-to-%d",
						ErrDiverged, g, f.Round, r.u%R, counts[winner], counts[r.crc])
					log.Printf("coord: %v; replica dead for epoch", r.err)
				}
			}
		}
	}

	var best *ExpandResponse
	restartable := false
	for _, r := range replies {
		switch {
		case r.err == nil:
			if best == nil {
				best = r.resp
			}
		case errors.Is(r.err, ErrFenced):
			return nil, r.err
		case errors.Is(r.err, errEpochRestart):
			restartable = true
		case errors.Is(r.err, errShardDead), errors.Is(r.err, ErrDiverged):
		default:
			return nil, r.err
		}
	}
	if best != nil {
		for _, r := range replies {
			// Diverged replicas were already marked and counted above.
			if r.err != nil && !errors.Is(r.err, ErrDiverged) {
				dead[r.u] = true
				c.failovers.Add(1)
				log.Printf("coord: epoch %d round %d: group %d replica %d dead for epoch (%v); failing over",
					f.Epoch, f.Round, g, r.u%R, r.err)
			}
		}
		if hedged {
			c.hedgeWins.Add(1)
		}
		return best, nil
	}
	for _, r := range replies {
		if errors.Is(r.err, errShardDead) {
			dead[r.u] = true
			if restartable {
				c.failovers.Add(1)
			}
		}
	}
	if restartable {
		return nil, fmt.Errorf("%w: group %d has live replicas but none hold epoch %d round %d state",
			errEpochRestart, g, f.Epoch, f.Round)
	}
	return nil, fmt.Errorf("%w: all %d replicas of group %d", errShardDead, R, g)
}

// recordLatency feeds a successful expand round-trip into the latency
// window the adaptive hedge budget is derived from.
func (c *Coordinator) recordLatency(d time.Duration) {
	c.latMu.Lock()
	c.latRing[c.latPos] = d
	c.latPos = (c.latPos + 1) % len(c.latRing)
	if c.latLen < len(c.latRing) {
		c.latLen++
	}
	c.latMu.Unlock()
}

// hedgeDelay is how long past a round's first valid response a group
// keeps waiting for stragglers: the configured HedgeAfter, or (when
// zero) an adaptive budget of 4× the p99 of recently observed healthy
// RPC latencies — generous enough that ordinary jitter never trips it,
// tight enough that a gray-failed replica cannot stall the epoch for the
// full recovery budget. Returns 0 (hedging disabled) for negative
// HedgeAfter or before any latency has been observed.
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeAfter != 0 {
		if c.cfg.HedgeAfter < 0 {
			return 0
		}
		return c.cfg.HedgeAfter
	}
	c.latMu.Lock()
	n := c.latLen
	lats := make([]time.Duration, n)
	copy(lats, c.latRing[:n])
	c.latMu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	d := 4 * lats[(n*99)/100]
	const floor = 25 * time.Millisecond
	if d < floor {
		d = floor
	}
	if d > c.cfg.RPCTimeout {
		d = c.cfg.RPCTimeout
	}
	return d
}

// depthsGroup fetches group g's committed depth slice for epoch from
// any live replica, failing over in replica order. The round barrier
// guarantees every live replica processed every round, so any of them
// holds the complete slice.
func (c *Coordinator) depthsGroup(ctx context.Context, g int, epoch uint64, dead []bool) (*DepthSlice, error) {
	R := c.cfg.Replicas
	var lastErr error
	for r := 0; r < R; r++ {
		u := g*R + r
		if dead[u] {
			continue
		}
		d, err := c.depths(ctx, u, epoch)
		switch {
		case err == nil:
			return d, nil
		case errors.Is(err, ErrFenced):
			return nil, err
		case errors.Is(err, errShardDead), errors.Is(err, errEpochRestart):
			// Dead, or alive but lost the epoch post-round: either way this
			// replica cannot report; try a sibling.
			dead[u] = true
			lastErr = err
		default:
			return nil, err
		}
	}
	if lastErr == nil {
		lastErr = errors.New("no live replica")
	}
	return nil, fmt.Errorf("%w: group %d depths: %v", errShardDead, g, lastErr)
}

// expand delivers one round message to replica u, retrying transient
// failures with jittered backoff until the shard answers, demands an
// epoch restart, or exhausts its recovery budget. The returned uint32 is
// the CRC32 of the response's canonical payload bytes — the quantity the
// replica audit compares: shards cache and replay their encoded response
// bytes, so honest replies to one round are byte-identical across a
// group.
func (c *Coordinator) expand(ctx context.Context, u int, f *Frontier, res *Result) (*ExpandResponse, uint32, error) {
	body, err := c.rpc(ctx, u, http.MethodPost, "/shard/expand", f.Encode(), res)
	if err != nil {
		return nil, 0, err
	}
	resp, err := DecodeExpandResponse(body)
	if err != nil {
		return nil, 0, err
	}
	if resp.Epoch != f.Epoch || resp.Round != f.Round || resp.Shard != f.Shard {
		return nil, 0, fmt.Errorf("%w: replica %s answered (epoch %d, round %d, shard %d) to (epoch %d, round %d, shard %d)",
			ErrWire, c.cfg.Shards[u], resp.Epoch, resp.Round, resp.Shard, f.Epoch, f.Round, f.Shard)
	}
	if c.cfg.Injector != nil {
		// The coord.diverge site simulates silent corruption of this one
		// replica's answer after it passed the wire checks. The key is
		// structured as (replica, round) rather than drawn from a shared
		// sequence so a given replica diverges on the same rounds
		// regardless of goroutine scheduling.
		key := uint64(u)<<32 | uint64(f.Round)
		if d := faultinject.Decide(c.cfg.Injector, faultinject.SiteCoordDiverge, key); d.Fault() {
			resp.Claimed++
			return resp, auditCRC(resp.Encode()), nil
		}
	}
	return resp, auditCRC(body), nil
}

// auditCRC hashes a response frame's payload for the replica audit. The
// frame's last 4 bytes are its own CRC32 trailer; hashing the whole
// frame would fold the trailer back in and yield the CRC-32 residue
// constant (0x2144DF1C) for every intact frame, collapsing all replies
// into one audit bucket. Hashing the payload alone keeps distinct
// contents distinct.
func auditCRC(frame []byte) uint32 {
	if len(frame) >= 4 {
		frame = frame[:len(frame)-4]
	}
	return crc32.ChecksumIEEE(frame)
}

// depths fetches replica u's committed depth slice for epoch.
func (c *Coordinator) depths(ctx context.Context, u int, epoch uint64) (*DepthSlice, error) {
	body, err := c.rpc(ctx, u, http.MethodGet, fmt.Sprintf("/shard/depths?epoch=%d", epoch), nil, nil)
	if err != nil {
		return nil, err
	}
	return DecodeDepthSlice(body)
}

// rpc performs one logical request with the full fault-tolerance
// stack: per-attempt deadline, injected send faults, bounded retry with
// jittered backoff, heartbeat-informed liveness, and typed outcomes for
// epoch conflicts (409 → errEpochRestart), fencing rejections (409 with
// FencedHeader → ErrFenced) and death (errShardDead).
func (c *Coordinator) rpc(ctx context.Context, u int, method, path string, body []byte, res *Result) ([]byte, error) {
	roundStart := time.Now()
	// hardAttempts bounds pathological livelock: a shard whose health
	// endpoint answers while its work endpoint fails forever would
	// otherwise reset the recovery clock indefinitely.
	hardAttempts := 8 * c.cfg.MaxAttempts
	for attempt := 1; ; attempt++ {
		reply, status, fenced, err := c.attempt(ctx, u, method, path, body)
		if err == nil && status == http.StatusOK {
			c.lastContact[u].Store(time.Now().UnixNano())
			return reply, nil
		}
		if err == nil && status == http.StatusConflict {
			c.lastContact[u].Store(time.Now().UnixNano())
			if fenced {
				// A newer coordinator holds the lease: stop coordinating,
				// do not retry, do not restart the epoch.
				return nil, fmt.Errorf("%w: replica %s: %s", ErrFenced, c.cfg.Shards[u], bytes.TrimSpace(reply))
			}
			// The shard is alive but lost (or never had) this epoch's
			// round state: only a fresh epoch can proceed.
			return nil, fmt.Errorf("%w: replica %s: %s", errEpochRestart, c.cfg.Shards[u], bytes.TrimSpace(reply))
		}
		if err == nil {
			err = fmt.Errorf("replica %s: HTTP %d: %s", c.cfg.Shards[u], status, bytes.TrimSpace(reply))
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Liveness rule: a shard gets its guaranteed attempt budget, and
		// after that stays retryable only while its last sign of life
		// (round start or heartbeat) is within the recovery budget.
		alive := time.Now()
		ref := roundStart
		if lc := time.Unix(0, c.lastContact[u].Load()); lc.After(ref) {
			ref = lc
		}
		if attempt >= hardAttempts ||
			(attempt >= c.cfg.MaxAttempts && alive.Sub(ref) > c.cfg.RecoveryBudget) {
			return nil, fmt.Errorf("%w: replica %s after %d attempts over %v: %v",
				errShardDead, c.cfg.Shards[u], attempt, time.Since(roundStart).Round(time.Millisecond), err)
		}
		if res != nil {
			c.retries.Add(1)
		}
		if err := sleepCtx(ctx, c.cfg.Backoff.Delay(attempt, rpcBackoffKey(u, path, body))); err != nil {
			return nil, err
		}
	}
}

// attempt issues one HTTP request with the per-attempt deadline,
// consulting the fault injector first (an injected error simulates a
// request lost on the wire; an injected delay a slow link). fenced
// reports whether the reply carried the fencing-rejection marker.
func (c *Coordinator) attempt(ctx context.Context, u int, method, path string, body []byte) (reply []byte, status int, fenced bool, err error) {
	if c.cfg.Injector != nil {
		d := faultinject.Decide(c.cfg.Injector, faultinject.SiteCoordSend, c.seq.Next(faultinject.SiteCoordSend))
		if d.Delay > 0 {
			if err := sleepCtx(ctx, d.Delay); err != nil {
				return nil, 0, false, err
			}
		}
		if d.Err != nil {
			return nil, 0, false, fmt.Errorf("replica %s: %w", c.cfg.Shards[u], d.Err)
		}
	}
	rctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, c.cfg.Shards[u]+path, rd)
	if err != nil {
		return nil, 0, false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	if c.cfg.Fence > 0 {
		req.Header.Set(FenceHeader, strconv.FormatUint(c.cfg.Fence, 10))
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, 0, false, err
	}
	defer resp.Body.Close()
	reply, err = io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
	if err != nil {
		return nil, 0, false, err
	}
	return reply, resp.StatusCode, resp.Header.Get(FencedHeader) == "1", nil
}

// rpcBackoffKey decorrelates concurrent retriers: distinct replicas and
// requests jitter independently.
func rpcBackoffKey(u int, path string, body []byte) uint64 {
	h := uint64(u)<<32 ^ uint64(len(body))
	for _, b := range []byte(path) {
		h = h*131 + uint64(b)
	}
	return h
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
