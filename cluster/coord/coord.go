package coord

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fastbfs/cluster"
	"fastbfs/internal/faultinject"
)

// Config parameterizes a Coordinator. The zero value of every field is
// replaced with a usable default, so Coordinator{Shards: urls} works.
type Config struct {
	// Shards lists the shard base URLs in shard-id order.
	Shards []string
	// RPCTimeout bounds each individual request attempt (default 5s).
	RPCTimeout time.Duration
	// MaxAttempts is the guaranteed per-round attempt budget per shard
	// before the recovery clock can declare it dead (default 4).
	MaxAttempts int
	// Backoff schedules the delay between retries. A zero value gets
	// 50ms base, 2s cap, 0.5 jitter.
	Backoff cluster.Backoff
	// RecoveryBudget is how long past its last sign of life (heartbeat
	// or round start, whichever is later) a failing shard may stay
	// unreachable before it is declared dead and the run degrades
	// (default 15s).
	RecoveryBudget time.Duration
	// HeartbeatInterval paces the health prober (default 500ms).
	HeartbeatInterval time.Duration
	// MaxEpochRestarts bounds full-traversal restarts caused by shards
	// that lost their round state (default 3).
	MaxEpochRestarts int
	// Injector, when non-nil, disturbs the coordinator's send path
	// (faultinject.SiteCoordSend) for chaos tests.
	Injector *faultinject.Plan
	// Client issues the HTTP requests; http.DefaultClient when nil.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.Backoff == (cluster.Backoff{}) {
		c.Backoff = cluster.Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}
	}
	if c.RecoveryBudget <= 0 {
		c.RecoveryBudget = 15 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.MaxEpochRestarts <= 0 {
		c.MaxEpochRestarts = 3
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return c
}

// Result is a distributed traversal's outcome. When every shard
// survived (or recovered within budget), Depth is exactly the serial
// BFS depth array. When a shard stayed dead past the recovery budget,
// Incomplete is set and Depth covers only the reachable subset the
// surviving shards computed — dead shards' ranges read -1, and vertices
// whose only paths ran through dead shards may read -1 or an
// overestimate of their true depth.
type Result struct {
	Source uint32
	Depth  []int32
	// Rounds is the number of BFS levels executed (claiming rounds).
	Rounds int
	// Visited counts vertices with Depth >= 0.
	Visited int64
	// ClaimedPerRound[r] is the cluster-wide number of vertices first
	// reached at depth r — the BFS level sizes, for round-for-round
	// validation against a serial run.
	ClaimedPerRound []int64
	// Epoch identifies the (final) epoch that produced Depth.
	Epoch uint64
	// Incomplete marks a degraded result (some shard stayed dead).
	Incomplete bool
	// DeadShards lists the shard ids declared dead, in id order.
	DeadShards []int
	// Retries counts failed request attempts that were retried.
	Retries int
	// EpochRestarts counts full-traversal restarts.
	EpochRestarts int
}

// Coordinator drives level-synchronous distributed BFS over HTTP shard
// workers, surviving shard crashes, lost messages and restarts.
type Coordinator struct {
	cfg Config
	seq faultinject.Sequencer

	// Discovered at Open: the cluster-wide vertex count and each
	// shard's owned range (validated to tile [0, n)).
	n  int
	lo []uint32
	hi []uint32

	lastContact []atomic.Int64 // unix nanos of last successful contact per shard
	retries     atomic.Int64   // failed attempts retried this Run (parallel senders)
}

// errEpochRestart is the internal signal that a shard lost its round
// state and the epoch must be re-run from round 0.
var errEpochRestart = errors.New("coord: shard lost round state; epoch restart required")

// errShardDead is the internal signal that a shard exhausted its
// recovery budget this round.
var errShardDead = errors.New("coord: shard declared dead")

// Open validates cfg, probes every shard's health endpoint to learn the
// partitioning, and returns a ready Coordinator. Probing retries within
// the recovery budget, so shards may still be booting when Open runs.
func Open(ctx context.Context, cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("coord: no shard URLs configured")
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:         cfg,
		lo:          make([]uint32, len(cfg.Shards)),
		hi:          make([]uint32, len(cfg.Shards)),
		lastContact: make([]atomic.Int64, len(cfg.Shards)),
	}
	deadline := time.Now().Add(cfg.RecoveryBudget)
	for i := range cfg.Shards {
		for attempt := 1; ; attempt++ {
			id, lo, hi, err := c.probeHealth(ctx, i)
			if err == nil {
				if id != i {
					return nil, fmt.Errorf("coord: URL %q configured as shard %d but reports id %d (shard order must match ids)",
						cfg.Shards[i], i, id)
				}
				c.lo[i], c.hi[i] = lo, hi
				break
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("coord: shard %d (%s) unreachable: %w", i, cfg.Shards[i], err)
			}
			sleepCtx(ctx, cfg.Backoff.Delay(attempt, uint64(i)))
		}
	}
	// Ranges must tile [0, n) in shard order — anything else means the
	// shards were launched with inconsistent -shards/-shard-id flags.
	prev := uint32(0)
	for i := range c.lo {
		if c.lo[i] != prev || c.hi[i] < c.lo[i] {
			return nil, fmt.Errorf("coord: shard %d owns [%d,%d) but the previous shard ends at %d; partitions must tile",
				i, c.lo[i], c.hi[i], prev)
		}
		prev = c.hi[i]
	}
	c.n = int(prev)
	if c.n == 0 {
		return nil, fmt.Errorf("coord: shards report an empty graph")
	}
	return c, nil
}

// NumVertices returns the cluster-wide vertex count the shards report.
func (c *Coordinator) NumVertices() int { return c.n }

// probeHealth parses one shard's health line and records the contact.
func (c *Coordinator) probeHealth(ctx context.Context, i int) (id int, lo, hi uint32, err error) {
	rctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, c.cfg.Shards[i]+"/shard/health", nil)
	if err != nil {
		return 0, 0, 0, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256))
	if err != nil {
		return 0, 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("health: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	if _, err := fmt.Sscanf(string(body), "shard %d [%d,%d)", &id, &lo, &hi); err != nil {
		return 0, 0, 0, fmt.Errorf("health: unparseable reply %q", bytes.TrimSpace(body))
	}
	c.lastContact[i].Store(time.Now().UnixNano())
	return id, lo, hi, nil
}

// Run executes one distributed BFS from source, restarting the epoch
// (bounded) when shards lose state and degrading to a partial result
// when shards stay dead. Concurrent Runs are not supported — the round
// protocol is per-coordinator sequential.
func (c *Coordinator) Run(ctx context.Context, source uint32) (*Result, error) {
	if int(source) >= c.n {
		return nil, fmt.Errorf("coord: source %d out of range [0,%d)", source, c.n)
	}

	// Background heartbeats keep lastContact fresh for the liveness
	// rule; they stop when the run does.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	for i := range c.cfg.Shards {
		go func(i int) {
			t := time.NewTicker(c.cfg.HeartbeatInterval)
			defer t.Stop()
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-t.C:
					c.probeHealth(hbCtx, i) // success updates lastContact
				}
			}
		}(i)
	}

	res := &Result{Source: source}
	c.retries.Store(0)
	defer func() { res.Retries = int(c.retries.Load()) }()
	for restart := 0; ; restart++ {
		// Epochs are wall-clock-derived so a restarted coordinator never
		// reuses an epoch id some shard still holds state for.
		epoch := uint64(time.Now().UnixNano()) + uint64(restart)
		err := c.runEpoch(ctx, epoch, source, res)
		if err == nil {
			res.Epoch = epoch
			return res, nil
		}
		if !errors.Is(err, errEpochRestart) {
			return nil, err
		}
		if restart+1 >= c.cfg.MaxEpochRestarts {
			return nil, fmt.Errorf("coord: giving up after %d epoch restarts: %w", restart+1, err)
		}
		res.EpochRestarts++
		log.Printf("coord: epoch %d abandoned (%v); restarting", epoch, err)
	}
}

// runEpoch drives one complete traversal attempt under one epoch id,
// filling res on success.
func (c *Coordinator) runEpoch(ctx context.Context, epoch uint64, source uint32, res *Result) error {
	nshards := len(c.cfg.Shards)
	dead := make([]bool, nshards)
	res.ClaimedPerRound = nil
	res.Rounds = 0
	res.Incomplete = false
	res.DeadShards = nil

	// cand[i] is shard i's candidate frontier for the current round.
	cand := make([]*Frontier, nshards)
	for i := range cand {
		cand[i] = NewFrontier(epoch, 0, uint32(i), c.lo[i], c.hi[i])
	}
	cand[PartitionOwner(c.n, nshards, source)].Set(source)

	for round := uint32(0); ; round++ {
		// Every live shard gets a round message every round — empty
		// frontiers included — so round sequencing never gaps.
		type reply struct {
			shard int
			resp  *ExpandResponse
			err   error
		}
		replies := make([]reply, 0, nshards)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i := 0; i < nshards; i++ {
			if dead[i] {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := c.expand(ctx, i, cand[i], res)
				mu.Lock()
				replies = append(replies, reply{i, resp, err})
				mu.Unlock()
			}(i)
		}
		wg.Wait()

		var claimed int64
		next := make([]*Frontier, nshards)
		for i := range next {
			next[i] = NewFrontier(epoch, round+1, uint32(i), c.lo[i], c.hi[i])
		}
		for _, r := range replies {
			switch {
			case r.err == nil:
				claimed += int64(r.resp.Claimed)
				for _, f := range r.resp.Out {
					if int(f.Shard) >= nshards {
						return fmt.Errorf("%w: discovery frame for shard %d of %d", ErrWire, f.Shard, nshards)
					}
					if err := next[f.Shard].Union(f); err != nil {
						return err
					}
				}
			case errors.Is(r.err, errEpochRestart):
				return r.err
			case errors.Is(r.err, errShardDead):
				log.Printf("coord: epoch %d round %d: shard %d dead (%v); degrading", epoch, round, r.shard, r.err)
				dead[r.shard] = true
			default:
				return r.err
			}
		}

		if claimed > 0 {
			res.ClaimedPerRound = append(res.ClaimedPerRound, claimed)
			res.Rounds = int(round) + 1
		}
		if claimed == 0 || allDead(dead) {
			break
		}
		for i := range next {
			// Candidates owned by dead shards are dropped: nobody can
			// claim them. (Bumping round tags on the survivors happens
			// via the fresh frontiers above.)
			cand[i] = next[i]
		}
	}

	// Collect the committed depth slices from the survivors.
	depth := make([]int32, c.n)
	for i := range depth {
		depth[i] = -1
	}
	res.Visited = 0
	for i := 0; i < nshards; i++ {
		if dead[i] {
			res.Incomplete = true
			res.DeadShards = append(res.DeadShards, i)
			continue
		}
		if c.hi[i] == c.lo[i] {
			continue
		}
		d, err := c.depths(ctx, i, epoch)
		if err != nil {
			if errors.Is(err, errShardDead) {
				// Died after its last round but before reporting: its
				// slice is lost; degrade rather than fail.
				log.Printf("coord: epoch %d: shard %d died before reporting depths; degrading", epoch, i)
				res.Incomplete = true
				res.DeadShards = append(res.DeadShards, i)
				continue
			}
			return err
		}
		if d.Lo != c.lo[i] || d.Hi != c.hi[i] {
			return fmt.Errorf("%w: shard %d reported depths for [%d,%d), owns [%d,%d)",
				ErrWire, i, d.Lo, d.Hi, c.lo[i], c.hi[i])
		}
		copy(depth[d.Lo:d.Hi], d.Depth)
		for _, v := range d.Depth {
			if v >= 0 {
				res.Visited++
			}
		}
	}
	res.Depth = depth
	return nil
}

func allDead(dead []bool) bool {
	for _, d := range dead {
		if !d {
			return false
		}
	}
	return true
}

// expand delivers one round message to shard i, retrying transient
// failures with jittered backoff until the shard answers, demands an
// epoch restart, or exhausts its recovery budget.
func (c *Coordinator) expand(ctx context.Context, i int, f *Frontier, res *Result) (*ExpandResponse, error) {
	body, err := c.rpc(ctx, i, http.MethodPost, "/shard/expand", f.Encode(), res)
	if err != nil {
		return nil, err
	}
	resp, err := DecodeExpandResponse(body)
	if err != nil {
		return nil, err
	}
	if resp.Epoch != f.Epoch || resp.Round != f.Round || resp.Shard != uint32(i) {
		return nil, fmt.Errorf("%w: shard %d answered (epoch %d, round %d) to (epoch %d, round %d)",
			ErrWire, i, resp.Epoch, resp.Round, f.Epoch, f.Round)
	}
	return resp, nil
}

// depths fetches shard i's committed depth slice for epoch.
func (c *Coordinator) depths(ctx context.Context, i int, epoch uint64) (*DepthSlice, error) {
	body, err := c.rpc(ctx, i, http.MethodGet, fmt.Sprintf("/shard/depths?epoch=%d", epoch), nil, nil)
	if err != nil {
		return nil, err
	}
	return DecodeDepthSlice(body)
}

// rpc performs one logical request with the full fault-tolerance
// stack: per-attempt deadline, injected send faults, bounded retry with
// jittered backoff, heartbeat-informed liveness, and typed outcomes for
// epoch conflicts (409 → errEpochRestart) and death (errShardDead).
func (c *Coordinator) rpc(ctx context.Context, i int, method, path string, body []byte, res *Result) ([]byte, error) {
	roundStart := time.Now()
	// hardAttempts bounds pathological livelock: a shard whose health
	// endpoint answers while its work endpoint fails forever would
	// otherwise reset the recovery clock indefinitely.
	hardAttempts := 8 * c.cfg.MaxAttempts
	for attempt := 1; ; attempt++ {
		reply, status, err := c.attempt(ctx, i, method, path, body)
		if err == nil && status == http.StatusOK {
			c.lastContact[i].Store(time.Now().UnixNano())
			return reply, nil
		}
		if err == nil && status == http.StatusConflict {
			// The shard is alive but lost (or never had) this epoch's
			// round state: only a fresh epoch can proceed.
			c.lastContact[i].Store(time.Now().UnixNano())
			return nil, fmt.Errorf("%w: shard %d: %s", errEpochRestart, i, bytes.TrimSpace(reply))
		}
		if err == nil {
			err = fmt.Errorf("shard %d: HTTP %d: %s", i, status, bytes.TrimSpace(reply))
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Liveness rule: a shard gets its guaranteed attempt budget, and
		// after that stays retryable only while its last sign of life
		// (round start or heartbeat) is within the recovery budget.
		alive := time.Now()
		ref := roundStart
		if lc := time.Unix(0, c.lastContact[i].Load()); lc.After(ref) {
			ref = lc
		}
		if attempt >= hardAttempts ||
			(attempt >= c.cfg.MaxAttempts && alive.Sub(ref) > c.cfg.RecoveryBudget) {
			return nil, fmt.Errorf("%w: shard %d after %d attempts over %v: %v",
				errShardDead, i, attempt, time.Since(roundStart).Round(time.Millisecond), err)
		}
		if res != nil {
			c.retries.Add(1)
		}
		if err := sleepCtx(ctx, c.cfg.Backoff.Delay(attempt, rpcBackoffKey(i, path, body))); err != nil {
			return nil, err
		}
	}
}

// attempt issues one HTTP request with the per-attempt deadline,
// consulting the fault injector first (an injected error simulates a
// request lost on the wire; an injected delay a slow link).
func (c *Coordinator) attempt(ctx context.Context, i int, method, path string, body []byte) ([]byte, int, error) {
	if c.cfg.Injector != nil {
		d := faultinject.Decide(c.cfg.Injector, faultinject.SiteCoordSend, c.seq.Next(faultinject.SiteCoordSend))
		if d.Delay > 0 {
			if err := sleepCtx(ctx, d.Delay); err != nil {
				return nil, 0, err
			}
		}
		if d.Err != nil {
			return nil, 0, fmt.Errorf("shard %d: %w", i, d.Err)
		}
	}
	rctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, c.cfg.Shards[i]+path, rd)
	if err != nil {
		return nil, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	reply, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
	if err != nil {
		return nil, 0, err
	}
	return reply, resp.StatusCode, nil
}

// rpcBackoffKey decorrelates concurrent retriers: distinct shards and
// requests jitter independently.
func rpcBackoffKey(shard int, path string, body []byte) uint64 {
	h := uint64(shard)<<32 ^ uint64(len(body))
	for _, b := range []byte(path) {
		h = h*131 + uint64(b)
	}
	return h
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
