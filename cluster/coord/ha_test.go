package coord

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"fastbfs/cluster"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/faultinject"
)

// --- HA wire records -------------------------------------------------

func TestLeaseRoundTrip(t *testing.T) {
	l := &Lease{Token: 42, Expires: 1_700_000_000_123_456_789, Holder: "http://coord-a:9090"}
	enc := l.Encode()
	got, err := DecodeLease(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Token != l.Token || got.Expires != l.Expires || got.Holder != l.Holder {
		t.Fatalf("round trip got %+v, want %+v", got, l)
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatal("re-encode is not byte-identical")
	}
	// A flipped byte must fail the CRC, not decode to garbage.
	bad := append([]byte(nil), enc...)
	bad[len(bad)/2] ^= 0x40
	if _, err := DecodeLease(bad); !errors.Is(err, ErrWire) {
		t.Fatalf("corrupt lease decoded: err = %v", err)
	}
}

func TestGroupAssignmentRoundTrip(t *testing.T) {
	a := &GroupAssignment{Groups: 2, Replicas: 2, URLs: []string{"http://s0", "http://s1", "http://s2", "http://s3"}}
	enc := a.Encode()
	got, err := DecodeGroupAssignment(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Groups != 2 || got.Replicas != 2 || len(got.URLs) != 4 {
		t.Fatalf("round trip got %+v", got)
	}
	if got.URL(1, 0) != "http://s2" || got.URL(0, 1) != "http://s1" {
		t.Fatalf("group-major URL lookup broken: %q, %q", got.URL(1, 0), got.URL(0, 1))
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatal("re-encode is not byte-identical")
	}
	// Groups*Replicas must equal the member count.
	bad := &GroupAssignment{Groups: 3, Replicas: 2, URLs: []string{"a", "b", "c", "d"}}
	if _, err := DecodeGroupAssignment(bad.Encode()); !errors.Is(err, ErrWire) {
		t.Fatalf("inconsistent assignment decoded: err = %v", err)
	}
}

// testEpochState builds a valid in-flight EpochState over two groups.
func testEpochState() *EpochState {
	f0 := NewFrontier(7, 3, 0, 0, 100)
	f0.Set(5)
	f1 := NewFrontier(7, 3, 1, 100, 200)
	return &EpochState{
		Epoch: 7, Fence: 2, Source: 5, Round: 3,
		Cand: [][]byte{f0.Encode(), f1.Encode()},
	}
}

func TestEpochStateRoundTrip(t *testing.T) {
	e := testEpochState()
	enc := e.Encode()
	got, err := DecodeEpochState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 7 || got.Fence != 2 || got.Source != 5 || got.Round != 3 || got.Done || len(got.Cand) != 2 {
		t.Fatalf("round trip got %+v", got)
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatal("re-encode is not byte-identical")
	}

	done := &EpochState{Epoch: 9, Fence: 2, Source: 5, Round: 12, Done: true}
	got, err = DecodeEpochState(done.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Done || got.Round != 12 {
		t.Fatalf("done round trip got %+v", got)
	}

	// A "done" record carrying candidates is corruption, not state.
	bad := &EpochState{Epoch: 9, Round: 1, Done: true, Cand: [][]byte{NewFrontier(9, 1, 0, 0, 10).Encode()}}
	if _, err := DecodeEpochState(bad.Encode()); !errors.Is(err, ErrWire) {
		t.Fatalf("done state with candidates decoded: err = %v", err)
	}
	// A candidate tagged for the wrong round cannot be replayed.
	wrong := testEpochState()
	wrong.Cand[1] = NewFrontier(7, 4, 1, 100, 200).Encode()
	if _, err := DecodeEpochState(wrong.Encode()); !errors.Is(err, ErrWire) {
		t.Fatalf("mis-tagged candidate decoded: err = %v", err)
	}
}

func TestSplitFramesRoundTrip(t *testing.T) {
	recs := [][]byte{(&Lease{Token: 1, Holder: "h"}).Encode(), {}, testEpochState().Encode()}
	var buf []byte
	for _, r := range recs {
		buf = AppendFrame(buf, r)
	}
	got, err := SplitFrames(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("split %d frames, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("frame %d differs", i)
		}
	}
	if _, err := SplitFrames(buf[:len(buf)-1]); !errors.Is(err, ErrWire) {
		t.Fatalf("truncated frame buffer split: err = %v", err)
	}
	if _, err := SplitFrames([]byte{0xFF, 0xFF}); !errors.Is(err, ErrWire) {
		t.Fatalf("dangling header split: err = %v", err)
	}
}

// The HA decoders share the FuzzDecodeFrontier contract: never panic,
// reject anything non-canonical with ErrWire, and re-encode accepted
// payloads byte-for-byte.

func FuzzDecodeLease(f *testing.F) {
	f.Add((&Lease{Token: 1, Expires: 123, Holder: "http://a"}).Encode())
	f.Add((&Lease{}).Encode())
	f.Add([]byte{})
	f.Add([]byte(leaseMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := DecodeLease(data)
		if err != nil {
			if !errors.Is(err, ErrWire) {
				t.Fatalf("rejection not tagged ErrWire: %v", err)
			}
			return
		}
		if !bytes.Equal(l.Encode(), data) {
			t.Fatalf("accepted %d bytes but re-encoding differs", len(data))
		}
	})
}

func FuzzDecodeGroupAssignment(f *testing.F) {
	f.Add((&GroupAssignment{Groups: 2, Replicas: 2, URLs: []string{"a", "b", "c", "d"}}).Encode())
	f.Add((&GroupAssignment{Groups: 1, Replicas: 1, URLs: []string{""}}).Encode())
	f.Add([]byte{})
	f.Add([]byte(assignmentMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeGroupAssignment(data)
		if err != nil {
			if !errors.Is(err, ErrWire) {
				t.Fatalf("rejection not tagged ErrWire: %v", err)
			}
			return
		}
		if !bytes.Equal(a.Encode(), data) {
			t.Fatalf("accepted %d bytes but re-encoding differs", len(data))
		}
	})
}

func FuzzDecodeEpochState(f *testing.F) {
	f.Add(testEpochState().Encode())
	f.Add((&EpochState{Epoch: 9, Round: 12, Done: true}).Encode())
	f.Add((&EpochState{}).Encode())
	f.Add([]byte{})
	f.Add([]byte(epochMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEpochState(data)
		if err != nil {
			if !errors.Is(err, ErrWire) {
				t.Fatalf("rejection not tagged ErrWire: %v", err)
			}
			return
		}
		if !bytes.Equal(e.Encode(), data) {
			t.Fatalf("accepted %d bytes but re-encoding differs", len(data))
		}
	})
}

// --- Coordinator journal ---------------------------------------------

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	lease := &Lease{Token: 3, Expires: 99, Holder: "http://a"}
	asg := &GroupAssignment{Groups: 2, Replicas: 1, URLs: []string{"http://s0", "http://s1"}}
	epoch := testEpochState()
	if err := j.AppendLease(lease); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendAssignment(asg); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendEpoch(epoch); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.TornBytes != 0 || j2.SnapshotCorrupt {
		t.Fatalf("clean journal reopened with TornBytes=%d SnapshotCorrupt=%v", j2.TornBytes, j2.SnapshotCorrupt)
	}
	st := j2.State()
	if st.Lease == nil || !bytes.Equal(st.Lease.Encode(), lease.Encode()) {
		t.Fatalf("lease lost across reopen: %+v", st.Lease)
	}
	if st.Assignment == nil || !bytes.Equal(st.Assignment.Encode(), asg.Encode()) {
		t.Fatalf("assignment lost across reopen: %+v", st.Assignment)
	}
	if st.Epoch == nil || !bytes.Equal(st.Epoch.Encode(), epoch.Encode()) {
		t.Fatalf("epoch state lost across reopen: %+v", st.Epoch)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	lease := &Lease{Token: 5, Holder: "http://a"}
	if err := j.AppendLease(lease); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a framed record whose bytes are junk.
	logPath := filepath.Join(dir, "state.log")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := AppendFrame(nil, []byte("FBFSLSE1 but then garbage"))
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatalf("torn tail must never refuse boot: %v", err)
	}
	if j2.TornBytes != int64(len(torn)) {
		t.Fatalf("TornBytes = %d, torn tail was %d bytes", j2.TornBytes, len(torn))
	}
	st := j2.State()
	if st.Lease == nil || st.Lease.Token != 5 {
		t.Fatalf("valid prefix lost: %+v", st.Lease)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// The torn tail was truncated away: a third open is clean.
	j3, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.TornBytes != 0 {
		t.Fatalf("tail not truncated: third open reports %d torn bytes", j3.TornBytes)
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for tok := uint64(1); tok <= 3; tok++ {
		if err := j.AppendLease(&Lease{Token: tok, Holder: "http://a"}); err != nil {
			t.Fatal(err)
		}
	}
	// The third append crossed the threshold: state lives in state.snap
	// and the log is reset to its magic.
	if _, err := os.Stat(filepath.Join(dir, "state.snap")); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	fi, err := os.Stat(filepath.Join(dir, "state.log"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(len("FBFSCJL1")) {
		t.Fatalf("log is %d bytes after compaction, want magic only", fi.Size())
	}
	if err := j.AppendLease(&Lease{Token: 4, Holder: "http://a"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st := j2.State(); st.Lease == nil || st.Lease.Token != 4 {
		t.Fatalf("state after snapshot+log replay: %+v", st.Lease)
	}
}

func TestJournalCorruptSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two appends force a compaction (snapshot holds token 2), then one
	// more lands in the fresh log.
	for tok := uint64(1); tok <= 3; tok++ {
		if err := j.AppendLease(&Lease{Token: tok, Holder: "http://a"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	snapPath := filepath.Join(dir, "state.snap")
	snap, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	snap[len(snap)-3] ^= 0xA5
	if err := os.WriteFile(snapPath, snap, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, 2)
	if err != nil {
		t.Fatalf("corrupt snapshot must never refuse boot: %v", err)
	}
	defer j2.Close()
	if !j2.SnapshotCorrupt {
		t.Fatal("SnapshotCorrupt not reported")
	}
	// The log retains everything since the last compaction.
	if st := j2.State(); st.Lease == nil || st.Lease.Token != 3 {
		t.Fatalf("log-only recovery got %+v", st.Lease)
	}
}

func TestJournalApplyStaleAndGarbage(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	fresh := (&Lease{Token: 7, Holder: "http://a"}).Encode()
	if applied, err := j.Apply(fresh); err != nil || !applied {
		t.Fatalf("fresh record: applied=%v err=%v", applied, err)
	}
	// A mirror push that regresses the token is skipped without error —
	// duplicated and reordered delivery must not bloat the log or fail.
	stale := (&Lease{Token: 6, Holder: "http://b"}).Encode()
	if applied, err := j.Apply(stale); err != nil || applied {
		t.Fatalf("stale record: applied=%v err=%v", applied, err)
	}
	if st := j.State(); st.Lease.Token != 7 {
		t.Fatalf("stale record folded in: token %d", st.Lease.Token)
	}
	if _, err := j.Apply([]byte("not a record")); !errors.Is(err, ErrWire) {
		t.Fatalf("garbage applied: err = %v", err)
	}

	// Epoch state regressions within an epoch are likewise skipped.
	e := testEpochState()
	if applied, err := j.Apply(e.Encode()); err != nil || !applied {
		t.Fatalf("epoch record: applied=%v err=%v", applied, err)
	}
	earlier := testEpochState()
	earlier.Round = 2
	f0 := NewFrontier(7, 2, 0, 0, 100)
	f1 := NewFrontier(7, 2, 1, 100, 200)
	earlier.Cand = [][]byte{f0.Encode(), f1.Encode()}
	if applied, err := j.Apply(earlier.Encode()); err != nil || applied {
		t.Fatalf("regressed epoch round: applied=%v err=%v", applied, err)
	}
}

// --- Replica groups: failover and fencing ----------------------------

// newReplicaCluster builds groups x replicas in-process shard servers in
// group-major order and a coordinator Config with a short recovery
// budget, so a killed replica is declared dead for the epoch quickly.
func newReplicaCluster(t *testing.T, g *graph.Graph, groups, replicas int, ckptDirs []string, inj *faultinject.Plan) *testCluster {
	t.Helper()
	tc := &testCluster{cfg: Config{
		Replicas:          replicas,
		RPCTimeout:        5 * time.Second,
		MaxAttempts:       3,
		Backoff:           cluster.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Jitter: 0.5, Seed: 1},
		RecoveryBudget:    400 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
	}}
	for gid := 0; gid < groups; gid++ {
		for r := 0; r < replicas; r++ {
			dir := ""
			if ckptDirs != nil {
				dir = ckptDirs[gid*replicas+r]
			}
			s, err := NewReplicaShard(g, gid, r, groups, dir, inj)
			if err != nil {
				t.Fatal(err)
			}
			p := &restartProxy{inner: s.Handler()}
			srv := httptest.NewServer(p)
			t.Cleanup(srv.Close)
			tc.shards = append(tc.shards, s)
			tc.proxies = append(tc.proxies, p)
			tc.servers = append(tc.servers, srv)
			tc.cfg.Shards = append(tc.cfg.Shards, srv.URL)
		}
	}
	return tc
}

// TestReplicaFailoverExact: with R=2, SIGKILLing one replica mid-epoch
// (it processes a round, drops the reply, and never comes back) costs
// exactness nothing — the sibling replica holds identical state, the
// round fails over, and the traversal finishes the same epoch with
// depths matching serial BFS.
func TestReplicaFailoverExact(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(9, 8), 42)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := serialDepths(t, g, 1)
	tc := newReplicaCluster(t, g, 2, 2, nil, nil)
	// Group 0's primary replica dies at its 2nd expand, forever.
	tc.proxies[0].script(2, -1, nil)
	c := tc.open(t)
	res, err := c.Run(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	assertExactDepths(t, res, want)
	if res.Failovers == 0 {
		t.Fatal("replica died mid-epoch but no failover was recorded")
	}
	if res.EpochRestarts != 0 {
		t.Fatalf("failover escalated to %d epoch restarts; the sibling replica should have absorbed it", res.EpochRestarts)
	}
}

// TestReplicaGroupDeathDegrades: replication only protects a group while
// at least one replica survives. Killing every replica of one group
// falls back to the degraded partial-result path: HTTP 206 territory,
// with the dead group listed.
func TestReplicaGroupDeathDegrades(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(9, 8), 42)
	if err != nil {
		t.Fatal(err)
	}
	tc := newReplicaCluster(t, g, 2, 2, nil, nil)
	// Both replicas of group 1 die at their first expand.
	tc.proxies[2].script(1, -1, nil)
	tc.proxies[3].script(1, -1, nil)
	c := tc.open(t)
	res, err := c.Run(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incomplete {
		t.Fatal("whole-group death did not degrade the result")
	}
	if len(res.DeadShards) != 1 || res.DeadShards[0] != 1 {
		t.Fatalf("DeadShards = %v, want [1]", res.DeadShards)
	}
	if res.Depth[1] != 0 {
		t.Fatalf("source depth %d in degraded result", res.Depth[1])
	}
}

// TestFencingRejectsStaleCoordinator: a coordinator holding an older
// fencing token gets ErrFenced from every shard once a newer one has
// been admitted — and the admitted token survives a shard restart via
// the round checkpoint.
func TestFencingRejectsStaleCoordinator(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(9, 8), 42)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := serialDepths(t, g, 1)
	dirs := []string{t.TempDir(), t.TempDir()}
	tc := newTestCluster(t, g, 2, dirs)

	oldCfg := tc.cfg
	oldCfg.Fence = 5
	older, err := Open(context.Background(), oldCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := older.Run(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	assertExactDepths(t, res, want)

	newCfg := tc.cfg
	newCfg.Fence = 7
	newer, err := Open(context.Background(), newCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err = newer.Run(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	assertExactDepths(t, res, want)

	// The deposed coordinator's rounds are now rejected, not half-applied.
	if _, err := older.Run(context.Background(), 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale coordinator ran: err = %v", err)
	}

	// The fence rides the checkpoint: a shard restarted from disk still
	// rejects the stale token.
	s, err := NewShard(g, 0, 2, dirs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Status(); st.Fence != 7 {
		t.Fatalf("restarted shard restored fence %d, want 7", st.Fence)
	}
	if _, err := s.Depths(res.Epoch, 5); !errors.Is(err, ErrFenced) {
		t.Fatalf("restarted shard served a stale token: err = %v", err)
	}
}

// --- Standby resume ---------------------------------------------------

// TestStandbyResume: a journaled coordinator is killed mid-epoch; a
// successor opened over the same journal (with the next fencing token)
// resumes the in-flight epoch from the journaled round and finishes it
// exactly — no epoch restart, and no shard ever re-ran round 0.
func TestStandbyResume(t *testing.T) {
	g, err := gen.Grid2D(30, 20, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := serialDepths(t, g, 0)
	// A small per-expand delay keeps rounds slow enough to interrupt the
	// run deterministically mid-epoch (the grid has ~48 rounds).
	inj := &faultinject.Plan{Seed: 11, Rules: map[faultinject.Site]faultinject.Rule{
		faultinject.SiteShardExpand: {DelayProb: 1, MaxDelay: 3 * time.Millisecond},
	}}
	tc := newReplicaCluster(t, g, 2, 1, nil, inj)
	stateDir := t.TempDir()

	jA, err := OpenJournal(stateDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := tc.cfg
	cfgA.Fence = 1
	cfgA.Journal = jA
	coordA, err := Open(context.Background(), cfgA)
	if err != nil {
		t.Fatal(err)
	}

	runCtx, kill := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() {
		_, err := coordA.Run(runCtx, 0)
		runDone <- err
	}()
	// Kill the coordinator once the journal proves the epoch is in
	// flight past round 2.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := jA.State(); st.Epoch != nil && !st.Epoch.Done && st.Epoch.Round >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("journal never recorded round 3")
		}
		time.Sleep(time.Millisecond)
	}
	kill()
	if err := <-runDone; err == nil {
		t.Fatal("interrupted run reported success")
	}
	if err := jA.Close(); err != nil {
		t.Fatal(err)
	}

	// The successor: same journal directory, next fencing token.
	jB, err := OpenJournal(stateDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer jB.Close()
	interrupted := jB.State().Epoch
	if interrupted == nil || interrupted.Done {
		t.Fatalf("journal lost the in-flight epoch: %+v", interrupted)
	}
	cfgB := tc.cfg
	cfgB.Fence = 2
	cfgB.Journal = jB
	coordB, err := Open(context.Background(), cfgB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coordB.Resume(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("Resume found nothing to do despite an unfinished journaled epoch")
	}
	assertExactDepths(t, res, want)
	if res.Epoch != interrupted.Epoch {
		t.Fatalf("resume ran epoch %d, journal held %d", res.Epoch, interrupted.Epoch)
	}
	if res.EpochRestarts != 0 {
		t.Fatalf("resume restarted the epoch %d times; checkpointed rounds should replay", res.EpochRestarts)
	}
	// Each shard saw exactly one round 0 across both coordinators: the
	// resume replayed cached rounds instead of resetting the epoch.
	for i, s := range tc.shards {
		if n := s.Resets(); n != 1 {
			t.Fatalf("shard %d reset its epoch state %d times, want 1", i, n)
		}
	}
	if st := jB.State(); st.Epoch == nil || !st.Epoch.Done {
		t.Fatal("completed epoch not marked done in the journal")
	}

	// A second Resume finds nothing in flight.
	if res, err := coordB.Resume(context.Background()); err != nil || res != nil {
		t.Fatalf("Resume after completion: res=%v err=%v", res, err)
	}
}

// TestReplicaClusterDrainsGoroutines: a full replica-cluster run with a
// failover leaves no goroutines behind once the servers shut down.
func TestReplicaClusterDrainsGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g, err := gen.RMAT(gen.Graph500Params(9, 8), 42)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := serialDepths(t, g, 1)
	tc := newReplicaCluster(t, g, 2, 2, nil, nil)
	client := &http.Client{}
	tc.cfg.Client = client
	tc.proxies[1].script(2, -1, nil)
	c := tc.open(t)
	res, err := c.Run(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	assertExactDepths(t, res, want)
	for _, srv := range tc.servers {
		srv.Close()
	}
	client.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
