package coord

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
)

// Checkpoint is a shard's durable per-round state: everything needed to
// resume the round protocol after a crash. Resp holds the encoded
// ExpandResponse of the last processed round, so a coordinator retry of
// that round after a restart replays the identical bytes — the
// idempotency guarantee survives the crash, not just the process.
type Checkpoint struct {
	Epoch  uint64
	Round  uint32 // next round the shard expects
	Source uint32
	// Fence is the highest fencing token the shard has admitted; it
	// rides the round checkpoint so a restarted replica keeps rejecting
	// a deposed coordinator's stale rounds (best effort: the token is
	// only as durable as the last checkpointed round).
	Fence  uint64
	Lo, Hi uint32
	Depth  []int32
	Resp   []byte // encoded ExpandResponse of round Round-1; may be empty
}

const (
	checkpointMagic = "FBFSCKP2"
	// checkpointMagicV1 is the pre-fencing format, still loadable
	// (fence defaults to 0) so an upgraded shard keeps its round state.
	checkpointMagicV1 = "FBFSCKP1"
	// maxCheckpointResp bounds the cached-response field on load; a
	// larger value is a corrupt length, not a real response.
	maxCheckpointResp = 1 << 30
)

// ErrCheckpoint rejects a corrupt checkpoint file. Loaders treat it
// like a missing file (fresh start) — a half-written checkpoint from a
// crash mid-save must never block a shard from booting.
var ErrCheckpoint = errors.New("coord: corrupt checkpoint")

// checkpointPath returns the checkpoint file location inside dir.
func checkpointPath(dir string) string { return filepath.Join(dir, "shard.ckpt") }

// SaveCheckpoint atomically persists c into dir (write temp, fsync,
// rename, fsync dir): readers see the previous checkpoint or this one,
// never a torn mix.
func SaveCheckpoint(dir string, c *Checkpoint) error {
	if uint32(len(c.Depth)) != c.Hi-c.Lo {
		return fmt.Errorf("coord: checkpoint depth length %d does not cover [%d,%d)", len(c.Depth), c.Lo, c.Hi)
	}
	buf := make([]byte, 0, len(checkpointMagic)+8+8+4*4+4*len(c.Depth)+4+len(c.Resp)+4)
	buf = append(buf, checkpointMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, c.Epoch)
	buf = binary.LittleEndian.AppendUint32(buf, c.Round)
	buf = binary.LittleEndian.AppendUint32(buf, c.Source)
	buf = binary.LittleEndian.AppendUint64(buf, c.Fence)
	buf = binary.LittleEndian.AppendUint32(buf, c.Lo)
	buf = binary.LittleEndian.AppendUint32(buf, c.Hi)
	for _, d := range c.Depth {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Resp)))
	buf = append(buf, c.Resp...)
	buf = appendCRC(buf, 0)

	tmp := checkpointPath(dir) + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, checkpointPath(dir)); err != nil {
		return err
	}
	return syncDir(dir)
}

// LoadCheckpoint reads the checkpoint from dir. A missing file returns
// (nil, nil): no state, fresh start. A corrupt file returns a nil
// checkpoint and an ErrCheckpoint the caller may log — it must still
// boot fresh rather than refuse.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	b, err := os.ReadFile(checkpointPath(dir))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	if len(b) < len(checkpointMagic) {
		return nil, fmt.Errorf("%w: truncated at %d bytes", ErrCheckpoint, len(b))
	}
	// fixed is the byte length of magic + scalar header for the format
	// at hand; v1 files lack the 8-byte fence field.
	fixed := len(checkpointMagic) + 8 + 8 + 4*4
	switch string(b[:len(checkpointMagic)]) {
	case checkpointMagic:
	case checkpointMagicV1:
		fixed -= 8
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrCheckpoint)
	}
	if len(b) < fixed+4+4 {
		return nil, fmt.Errorf("%w: truncated at %d bytes", ErrCheckpoint, len(b))
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCheckpoint)
	}
	c := &Checkpoint{
		Epoch:  binary.LittleEndian.Uint64(b[8:]),
		Round:  binary.LittleEndian.Uint32(b[16:]),
		Source: binary.LittleEndian.Uint32(b[20:]),
	}
	off := 24
	if string(b[:len(checkpointMagic)]) == checkpointMagic {
		c.Fence = binary.LittleEndian.Uint64(b[off:])
		off += 8
	}
	c.Lo = binary.LittleEndian.Uint32(b[off:])
	c.Hi = binary.LittleEndian.Uint32(b[off+4:])
	if c.Hi < c.Lo {
		return nil, fmt.Errorf("%w: range [%d,%d) invalid", ErrCheckpoint, c.Lo, c.Hi)
	}
	ndepth := int(c.Hi - c.Lo)
	if len(b) < fixed+4*ndepth+4+4 {
		return nil, fmt.Errorf("%w: %d bytes cannot hold %d depths", ErrCheckpoint, len(b), ndepth)
	}
	c.Depth = make([]int32, ndepth)
	for i := range c.Depth {
		c.Depth[i] = int32(binary.LittleEndian.Uint32(b[fixed+4*i:]))
	}
	off = fixed + 4*ndepth
	rlen := binary.LittleEndian.Uint32(b[off:])
	off += 4
	if rlen > maxCheckpointResp || off+int(rlen)+4 != len(b) {
		return nil, fmt.Errorf("%w: response field length %d inconsistent with %d-byte file", ErrCheckpoint, rlen, len(b))
	}
	if rlen > 0 {
		c.Resp = append([]byte(nil), b[off:off+int(rlen)]...)
	}
	return c, nil
}

// writeFileSync writes data to path and fsyncs before closing, so the
// bytes are durable before the caller renames the file into place.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
