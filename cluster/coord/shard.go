package coord

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"

	"fastbfs/graph"
	"fastbfs/internal/faultinject"
)

// Shard is one worker of the distributed BFS: it owns the contiguous
// vertex range [Lo, Hi) of its graph and answers the coordinator's
// round protocol. All state transitions happen under one mutex — rounds
// are level-synchronous, so the shard is never asked to do two things
// at once by a healthy coordinator, and the lock makes a confused or
// retrying coordinator safe too.
//
// The round protocol is strictly sequenced per epoch: the shard tracks
// the next round it expects, replays its checkpointed response for the
// immediately previous round (duplicate delivery), and rejects anything
// else with a typed sequencing error the coordinator resolves by
// restarting the epoch. Every processed round is checkpointed to disk
// (when a checkpoint dir is configured) before the response leaves the
// shard, so a crash after processing never loses a round the
// coordinator believes happened.
type Shard struct {
	g      *graph.Graph
	id     int
	shards int
	lo, hi uint32
	dir    string // checkpoint dir; "" disables persistence

	inj *faultinject.Plan
	seq faultinject.Sequencer

	mu    sync.Mutex
	epoch uint64
	next  uint32 // next round expected within epoch
	src   uint32
	depth []int32
	resp  []byte // encoded response of round next-1
}

// ErrRoundSequence is a shard's typed refusal of an out-of-sequence
// round message: wrong epoch, or a round that is neither the expected
// one nor the immediately previous (replayable) one. The coordinator
// treats it as "this shard lost state" and restarts the epoch.
var ErrRoundSequence = errors.New("coord: round out of sequence")

// NewShard builds the shard with id of shards over g, restoring state
// from ckptDir when a valid checkpoint for this partition exists. A
// missing or corrupt checkpoint is a fresh start (corruption is logged,
// never fatal: refusing to boot would turn one torn write into a
// permanently dead shard).
func NewShard(g *graph.Graph, id, shards int, ckptDir string, inj *faultinject.Plan) (*Shard, error) {
	if shards < 1 || id < 0 || id >= shards {
		return nil, fmt.Errorf("coord: shard %d of %d invalid", id, shards)
	}
	lo, hi := PartitionRange(g.NumVertices(), shards, id)
	s := &Shard{g: g, id: id, shards: shards, lo: lo, hi: hi, dir: ckptDir, inj: inj}
	if ckptDir != "" {
		c, err := LoadCheckpoint(ckptDir)
		switch {
		case errors.Is(err, ErrCheckpoint):
			log.Printf("shard %d: discarding corrupt checkpoint: %v", id, err)
		case err != nil:
			return nil, err
		case c != nil && (c.Lo != lo || c.Hi != hi):
			log.Printf("shard %d: checkpoint covers [%d,%d), partition is [%d,%d); discarding",
				id, c.Lo, c.Hi, lo, hi)
		case c != nil:
			s.epoch, s.next, s.src, s.depth, s.resp = c.Epoch, c.Round, c.Source, c.Depth, c.Resp
			log.Printf("shard %d: restored checkpoint epoch %d round %d", id, c.Epoch, c.Round)
		}
	}
	return s, nil
}

// Range returns the shard's owned vertex range [lo, hi).
func (s *Shard) Range() (lo, hi uint32) { return s.lo, s.hi }

// Expand answers one round message: claim the candidate vertices this
// shard owns at depth == round, expand the claimed frontier, and return
// the discoveries bucketed per destination shard. The returned bytes
// are the encoded ExpandResponse (pre-encoded so replays are
// byte-identical).
func (s *Shard) Expand(req *Frontier) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.inj != nil {
		d := s.inj.Decide(faultinject.SiteShardExpand, s.seq.Next(faultinject.SiteShardExpand))
		if d.Panic {
			panic(faultinject.PanicValue{Site: faultinject.SiteShardExpand})
		}
		if d.Err != nil {
			return nil, d.Err
		}
	}
	if req.Shard != uint32(s.id) || req.Lo != s.lo || req.Hi != s.hi {
		return nil, fmt.Errorf("%w: frontier for shard %d [%d,%d), this is shard %d [%d,%d)",
			ErrWire, req.Shard, req.Lo, req.Hi, s.id, s.lo, s.hi)
	}

	switch {
	case req.Epoch == s.epoch && req.Round+1 == s.next && s.resp != nil:
		// Duplicate of the round just processed: replay the cached
		// response byte-for-byte. The coordinator's retry after a lost
		// response lands here.
		return s.resp, nil
	case req.Epoch == s.epoch && req.Round == s.next:
		// The expected next round: process below.
	case req.Round == 0:
		// Round 0 of any epoch starts that epoch fresh: this is both how
		// epochs begin and how the coordinator restarts one after a shard
		// lost its state.
		s.epoch, s.next, s.resp = req.Epoch, 0, nil
		s.depth = nil
	default:
		return nil, fmt.Errorf("%w: shard %d at epoch %d round %d, message is epoch %d round %d",
			ErrRoundSequence, s.id, s.epoch, s.next, req.Epoch, req.Round)
	}

	if s.depth == nil {
		s.depth = make([]int32, s.hi-s.lo)
		for i := range s.depth {
			s.depth[i] = -1
		}
	}

	resp := &ExpandResponse{Epoch: req.Epoch, Round: req.Round, Shard: uint32(s.id)}
	out := make([]*Frontier, s.shards)
	n := s.g.NumVertices()
	req.ForEach(func(v uint32) {
		if s.depth[v-s.lo] != -1 {
			return // claimed in an earlier round; not a discovery now
		}
		s.depth[v-s.lo] = int32(req.Round)
		resp.Claimed++
		if req.Round == 0 {
			s.src = v
		}
		for _, w := range s.g.Neighbors1(v) {
			o := PartitionOwner(n, s.shards, w)
			if out[o] == nil {
				lo, hi := PartitionRange(n, s.shards, o)
				out[o] = NewFrontier(req.Epoch, req.Round, uint32(o), lo, hi)
			}
			out[o].Set(w)
		}
	})
	for _, f := range out {
		if f != nil && !f.Empty() {
			resp.Out = append(resp.Out, f)
		}
	}

	enc := resp.Encode()
	s.next = req.Round + 1
	s.resp = enc
	if s.dir != "" {
		ck := &Checkpoint{
			Epoch: s.epoch, Round: s.next, Source: s.src,
			Lo: s.lo, Hi: s.hi, Depth: s.depth, Resp: enc,
		}
		if err := SaveCheckpoint(s.dir, ck); err != nil {
			// An unsaveable checkpoint must fail the round: returning
			// success without durability would break replay-after-crash.
			return nil, fmt.Errorf("coord: shard %d checkpoint: %w", s.id, err)
		}
	}
	return enc, nil
}

// Depths returns the shard's committed depth slice for epoch, refusing
// other epochs (the coordinator must never mix epochs in one result).
func (s *Shard) Depths(epoch uint64) (*DepthSlice, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epoch || s.depth == nil {
		return nil, fmt.Errorf("%w: depths requested for epoch %d, shard %d is at epoch %d",
			ErrRoundSequence, epoch, s.id, s.epoch)
	}
	d := &DepthSlice{Epoch: s.epoch, Shard: uint32(s.id), Lo: s.lo, Hi: s.hi}
	d.Depth = append([]int32(nil), s.depth...)
	return d, nil
}

// maxShardBody bounds request payloads: a frontier over the largest
// legal partition plus framing.
const maxShardBody = 1 << 30

// Handler returns the shard's HTTP API:
//
//	POST /shard/expand  — body: Frontier frame; 200: ExpandResponse
//	GET  /shard/depths?epoch=E — 200: DepthSlice
//	GET  /shard/health  — 200: shard id + partition (heartbeat target)
//
// Sequencing violations map to 409 (the coordinator's cue to restart
// the epoch), malformed payloads to 400.
func (s *Shard) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /shard/expand", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxShardBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := DecodeFrontier(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.Expand(req)
		if err != nil {
			http.Error(w, err.Error(), shardStatus(err))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(resp)
	})
	mux.HandleFunc("GET /shard/depths", func(w http.ResponseWriter, r *http.Request) {
		var epoch uint64
		if _, err := fmt.Sscanf(r.URL.Query().Get("epoch"), "%d", &epoch); err != nil {
			http.Error(w, "missing or bad epoch parameter", http.StatusBadRequest)
			return
		}
		d, err := s.Depths(epoch)
		if err != nil {
			http.Error(w, err.Error(), shardStatus(err))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(d.Encode())
	})
	mux.HandleFunc("GET /shard/health", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "shard %d [%d,%d)\n", s.id, s.lo, s.hi)
	})
	return mux
}

// shardStatus maps shard errors to HTTP statuses: sequencing conflicts
// are 409 (retry cannot help; restart the epoch), wire garbage 400,
// anything else 500.
func shardStatus(err error) int {
	switch {
	case errors.Is(err, ErrRoundSequence):
		return http.StatusConflict
	case errors.Is(err, ErrWire):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
