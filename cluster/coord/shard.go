package coord

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"fastbfs/graph"
	"fastbfs/internal/faultinject"
)

// Shard is one worker of the distributed BFS: it owns the contiguous
// vertex range [Lo, Hi) of its graph and answers the coordinator's
// round protocol. All state transitions happen under one mutex — rounds
// are level-synchronous, so the shard is never asked to do two things
// at once by a healthy coordinator, and the lock makes a confused or
// retrying coordinator safe too.
//
// The round protocol is strictly sequenced per epoch: the shard tracks
// the next round it expects, replays its checkpointed response for the
// immediately previous round (duplicate delivery), and rejects anything
// else with a typed sequencing error the coordinator resolves by
// restarting the epoch. Every processed round is checkpointed to disk
// (when a checkpoint dir is configured) before the response leaves the
// shard, so a crash after processing never loses a round the
// coordinator believes happened.
type Shard struct {
	g       *graph.Graph
	id      int
	replica int
	shards  int
	lo, hi  uint32
	dir     string // checkpoint dir; "" disables persistence

	inj *faultinject.Plan
	seq faultinject.Sequencer

	mu     sync.Mutex
	epoch  uint64
	next   uint32 // next round expected within epoch
	src    uint32
	depth  []int32
	resp   []byte // encoded response of round next-1
	fence  uint64 // highest fencing token admitted
	resets uint64 // round-0 epoch resets observed (fresh epochs + restarts)
}

// ErrRoundSequence is a shard's typed refusal of an out-of-sequence
// round message: wrong epoch, or a round that is neither the expected
// one nor the immediately previous (replayable) one. The coordinator
// treats it as "this shard lost state" and restarts the epoch.
var ErrRoundSequence = errors.New("coord: round out of sequence")

// ErrFenced is a shard's typed refusal of a request whose fencing token
// is lower than one it has already admitted: the sender is a deposed
// coordinator whose lease was taken over. Unlike ErrRoundSequence this
// is not a cue to restart the epoch — the sender must stop coordinating
// entirely.
var ErrFenced = errors.New("coord: request fenced off by a newer coordinator")

// NewShard builds the shard with id of shards over g, restoring state
// from ckptDir when a valid checkpoint for this partition exists. A
// missing or corrupt checkpoint is a fresh start (corruption is logged,
// never fatal: refusing to boot would turn one torn write into a
// permanently dead shard).
func NewShard(g *graph.Graph, id, shards int, ckptDir string, inj *faultinject.Plan) (*Shard, error) {
	return NewReplicaShard(g, id, 0, shards, ckptDir, inj)
}

// NewReplicaShard is NewShard with an explicit replica index inside the
// shard's group. The replica index is identity only — the partition
// range depends solely on the group id, so every replica of a group
// owns the same [lo, hi) and runs the identical round protocol.
func NewReplicaShard(g *graph.Graph, id, replica, shards int, ckptDir string, inj *faultinject.Plan) (*Shard, error) {
	if shards < 1 || id < 0 || id >= shards {
		return nil, fmt.Errorf("coord: shard %d of %d invalid", id, shards)
	}
	if replica < 0 {
		return nil, fmt.Errorf("coord: replica %d invalid", replica)
	}
	lo, hi := PartitionRange(g.NumVertices(), shards, id)
	s := &Shard{g: g, id: id, replica: replica, shards: shards, lo: lo, hi: hi, dir: ckptDir, inj: inj}
	if ckptDir != "" {
		c, err := LoadCheckpoint(ckptDir)
		switch {
		case errors.Is(err, ErrCheckpoint):
			log.Printf("shard %d: discarding corrupt checkpoint: %v", id, err)
		case err != nil:
			return nil, err
		case c != nil && (c.Lo != lo || c.Hi != hi):
			log.Printf("shard %d: checkpoint covers [%d,%d), partition is [%d,%d); discarding",
				id, c.Lo, c.Hi, lo, hi)
		case c != nil:
			s.epoch, s.next, s.src, s.depth, s.resp = c.Epoch, c.Round, c.Source, c.Depth, c.Resp
			s.fence = c.Fence
			log.Printf("shard %d: restored checkpoint epoch %d round %d fence %d", id, c.Epoch, c.Round, c.Fence)
		}
	}
	return s, nil
}

// Range returns the shard's owned vertex range [lo, hi).
func (s *Shard) Range() (lo, hi uint32) { return s.lo, s.hi }

// ShardStatus is a snapshot of a shard's protocol state for readiness
// probes: group identity and role, last checkpointed position, and the
// fencing token currently in force.
type ShardStatus struct {
	Group   int    `json:"group"`
	Replica int    `json:"replica"`
	Role    string `json:"role"` // "primary" (replica 0) or "secondary"
	Lo      uint32 `json:"lo"`
	Hi      uint32 `json:"hi"`
	Epoch   uint64 `json:"epoch"`
	Round   uint32 `json:"round"`
	Fence   uint64 `json:"fence"`
	Resets  uint64 `json:"resets"`
}

// Status returns the shard's current protocol snapshot.
func (s *Shard) Status() ShardStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	role := "primary"
	if s.replica != 0 {
		role = "secondary"
	}
	return ShardStatus{
		Group: s.id, Replica: s.replica, Role: role,
		Lo: s.lo, Hi: s.hi,
		Epoch: s.epoch, Round: s.next, Fence: s.fence, Resets: s.resets,
	}
}

// admitFence runs the fencing check under s.mu: requests carrying a
// token below the highest one seen are from a deposed coordinator and
// are refused; a higher token raises the bar. Token 0 is the legacy
// unfenced protocol — it is admitted only until a fenced coordinator
// (token >= 1) has been seen. The raised bar is persisted with the next
// round checkpoint (best effort: a fence learned between checkpoints
// dies with the process, and the standby's strictly-higher token makes
// that safe).
func (s *Shard) admitFence(fence uint64) error {
	if s.inj != nil {
		d := s.inj.Decide(faultinject.SiteShardLease, s.seq.Next(faultinject.SiteShardLease))
		if d.Delay > 0 {
			s.mu.Unlock()
			time.Sleep(d.Delay)
			s.mu.Lock()
		}
		if d.Err != nil {
			return d.Err
		}
	}
	if fence < s.fence {
		return fmt.Errorf("%w: token %d below admitted %d", ErrFenced, fence, s.fence)
	}
	if fence > s.fence {
		s.fence = fence
	}
	return nil
}

// Expand answers one round message: claim the candidate vertices this
// shard owns at depth == round, expand the claimed frontier, and return
// the discoveries bucketed per destination shard. The returned bytes
// are the encoded ExpandResponse (pre-encoded so replays are
// byte-identical). fence is the sender's fencing token (0 = legacy
// unfenced).
func (s *Shard) Expand(req *Frontier, fence uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if err := s.admitFence(fence); err != nil {
		return nil, err
	}
	if s.inj != nil {
		d := s.inj.Decide(faultinject.SiteShardExpand, s.seq.Next(faultinject.SiteShardExpand))
		if d.Delay > 0 {
			// Deliberately slept under s.mu: the injected latency slows the
			// whole round, which is what crash harnesses need to land a
			// SIGKILL mid-epoch deterministically.
			time.Sleep(d.Delay)
		}
		if d.Panic {
			panic(faultinject.PanicValue{Site: faultinject.SiteShardExpand})
		}
		if d.Err != nil {
			return nil, d.Err
		}
	}
	if s.inj != nil {
		// shard.stall is a delay-only gray failure: the replica stays
		// alive (health still answers; nothing errors) but holds its round
		// response long enough that an unhedged coordinator would stall
		// the whole epoch on it. The hedge is what absorbs this.
		d := s.inj.Decide(faultinject.SiteShardStall, s.seq.Next(faultinject.SiteShardStall))
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
	}
	if req.Shard != uint32(s.id) || req.Lo != s.lo || req.Hi != s.hi {
		return nil, fmt.Errorf("%w: frontier for shard %d [%d,%d), this is shard %d [%d,%d)",
			ErrWire, req.Shard, req.Lo, req.Hi, s.id, s.lo, s.hi)
	}

	switch {
	case req.Epoch == s.epoch && req.Round+1 == s.next && s.resp != nil:
		// Duplicate of the round just processed: replay the cached
		// response byte-for-byte. The coordinator's retry after a lost
		// response lands here.
		return s.resp, nil
	case req.Epoch == s.epoch && req.Round == s.next:
		// The expected next round: process below.
	case req.Round == 0:
		// Round 0 of any epoch starts that epoch fresh: this is both how
		// epochs begin and how the coordinator restarts one after a shard
		// lost its state.
		s.epoch, s.next, s.resp = req.Epoch, 0, nil
		s.depth = nil
		s.resets++
	default:
		return nil, fmt.Errorf("%w: shard %d at epoch %d round %d, message is epoch %d round %d",
			ErrRoundSequence, s.id, s.epoch, s.next, req.Epoch, req.Round)
	}

	if s.depth == nil {
		s.depth = make([]int32, s.hi-s.lo)
		for i := range s.depth {
			s.depth[i] = -1
		}
	}

	resp := &ExpandResponse{Epoch: req.Epoch, Round: req.Round, Shard: uint32(s.id)}
	out := make([]*Frontier, s.shards)
	n := s.g.NumVertices()
	req.ForEach(func(v uint32) {
		if s.depth[v-s.lo] != -1 {
			return // claimed in an earlier round; not a discovery now
		}
		s.depth[v-s.lo] = int32(req.Round)
		resp.Claimed++
		if req.Round == 0 {
			s.src = v
		}
		for _, w := range s.g.Neighbors1(v) {
			o := PartitionOwner(n, s.shards, w)
			if out[o] == nil {
				lo, hi := PartitionRange(n, s.shards, o)
				out[o] = NewFrontier(req.Epoch, req.Round, uint32(o), lo, hi)
			}
			out[o].Set(w)
		}
	})
	for _, f := range out {
		if f != nil && !f.Empty() {
			resp.Out = append(resp.Out, f)
		}
	}

	enc := resp.Encode()
	s.next = req.Round + 1
	s.resp = enc
	if s.dir != "" {
		ck := &Checkpoint{
			Epoch: s.epoch, Round: s.next, Source: s.src, Fence: s.fence,
			Lo: s.lo, Hi: s.hi, Depth: s.depth, Resp: enc,
		}
		if err := SaveCheckpoint(s.dir, ck); err != nil {
			// An unsaveable checkpoint must fail the round: returning
			// success without durability would break replay-after-crash.
			return nil, fmt.Errorf("coord: shard %d checkpoint: %w", s.id, err)
		}
	}
	return enc, nil
}

// Resets returns how many round-0 epoch resets the shard has absorbed;
// resume tests use it to prove a standby takeover did NOT restart the
// in-flight epoch.
func (s *Shard) Resets() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resets
}

// Depths returns the shard's committed depth slice for epoch, refusing
// other epochs (the coordinator must never mix epochs in one result).
func (s *Shard) Depths(epoch uint64, fence uint64) (*DepthSlice, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitFence(fence); err != nil {
		return nil, err
	}
	if epoch != s.epoch || s.depth == nil {
		return nil, fmt.Errorf("%w: depths requested for epoch %d, shard %d is at epoch %d",
			ErrRoundSequence, epoch, s.id, s.epoch)
	}
	d := &DepthSlice{Epoch: s.epoch, Shard: uint32(s.id), Lo: s.lo, Hi: s.hi}
	d.Depth = append([]int32(nil), s.depth...)
	return d, nil
}

// maxShardBody bounds request payloads: a frontier over the largest
// legal partition plus framing.
const maxShardBody = 1 << 30

// Fencing travels in HTTP headers, not the wire records: the records
// stay coordinator-agnostic (a replayed response is byte-identical no
// matter who asked) while every request still declares its sender's
// authority.
const (
	// FenceHeader carries the sender's fencing token on shard requests.
	// Absent means token 0, the legacy unfenced protocol.
	FenceHeader = "X-Fastbfs-Fence"
	// FencedHeader marks a 409 as a fencing rejection (value "1"), so
	// clients can tell ErrFenced from an ErrRoundSequence conflict
	// without parsing error strings.
	FencedHeader = "X-Fastbfs-Fenced"
)

// requestFence extracts the sender's fencing token from a request.
func requestFence(r *http.Request) uint64 {
	h := r.Header.Get(FenceHeader)
	if h == "" {
		return 0
	}
	var fence uint64
	fmt.Sscanf(h, "%d", &fence)
	return fence
}

// shardError writes err with its mapped status, tagging fencing
// rejections with FencedHeader.
func shardError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrFenced) {
		w.Header().Set(FencedHeader, "1")
	}
	http.Error(w, err.Error(), shardStatus(err))
}

// Handler returns the shard's HTTP API:
//
//	POST /shard/expand  — body: Frontier frame; 200: ExpandResponse
//	GET  /shard/depths?epoch=E — 200: DepthSlice
//	GET  /shard/health  — 200: shard id + partition + replica (heartbeat target)
//
// Sequencing violations and fencing rejections map to 409 (fencing ones
// additionally carry FencedHeader), malformed payloads to 400.
func (s *Shard) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /shard/expand", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxShardBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := DecodeFrontier(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.Expand(req, requestFence(r))
		if err != nil {
			shardError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(resp)
	})
	mux.HandleFunc("GET /shard/depths", func(w http.ResponseWriter, r *http.Request) {
		var epoch uint64
		if _, err := fmt.Sscanf(r.URL.Query().Get("epoch"), "%d", &epoch); err != nil {
			http.Error(w, "missing or bad epoch parameter", http.StatusBadRequest)
			return
		}
		d, err := s.Depths(epoch, requestFence(r))
		if err != nil {
			shardError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(d.Encode())
	})
	mux.HandleFunc("GET /shard/health", func(w http.ResponseWriter, r *http.Request) {
		// The trailing "replica %d" is new; coordinators parsing only the
		// "shard %d [%d,%d)" prefix (via Sscanf) still match.
		fmt.Fprintf(w, "shard %d [%d,%d) replica %d\n", s.id, s.lo, s.hi, s.replica)
	})
	return mux
}

// shardStatus maps shard errors to HTTP statuses: sequencing conflicts
// and fencing rejections are 409 (retry cannot help), wire garbage 400,
// anything else 500.
func shardStatus(err error) int {
	switch {
	case errors.Is(err, ErrRoundSequence), errors.Is(err, ErrFenced):
		return http.StatusConflict
	case errors.Is(err, ErrWire):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
