// Package coord turns the single-process cluster simulation
// (cluster.Sim) into a real multi-process deployment: a Coordinator
// drives level-synchronous BFS rounds over HTTP against N Shard
// processes, each owning a contiguous 1D vertex partition
// (owner-computes, per Buluç & Madduri's distributed BFS formulation).
// Frontier exchange is bitmap-compressed — one bit per vertex of the
// destination shard's owned range — and every wire payload is CRC-framed
// so torn or corrupted messages are rejected, never half-applied.
//
// Fault tolerance is the design center, not an afterthought:
//
//   - Round messages are idempotent. Every expand request carries
//     (epoch, round); a shard that already processed a round replays its
//     checkpointed response, so duplicate and retried deliveries are
//     harmless.
//   - The coordinator retries failed RPCs with deadlines and jittered
//     exponential backoff (cluster.Backoff), detects shard failures by
//     heartbeat, and replays rounds against shards that restart from
//     their per-round checkpoint.
//   - A shard that restarts without state forces an epoch restart: the
//     whole traversal re-runs under a fresh epoch (bounded count), which
//     is always safe because epochs never share state.
//   - A shard that stays dead past the recovery budget degrades the run:
//     the surviving shards finish and the Result carries the reachable
//     subset with Incomplete set, instead of hanging or erroring out.
//
// This file defines the wire formats; shard.go and coord.go implement
// the two processes.
package coord

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"

	"fastbfs/graph"
)

// Wire magics. Eight bytes each, like the graph-file and manifest
// framing, so a payload routed to the wrong decoder fails immediately.
const (
	frontierMagic = "FBFSFRN1"
	expandMagic   = "FBFSEXP1"
	depthsMagic   = "FBFSDEP1"
)

// maxWireFrames bounds the per-destination frames inside one expand
// response; a destination per shard means anything past this is a
// corrupt count field, not a real cluster.
const maxWireFrames = 1 << 16

// ErrWire rejects a malformed, truncated or checksum-mismatched wire
// payload. It is the cluster analogue of graph.ErrChecksum: a payload
// either decodes in full or is refused — never partially applied.
var ErrWire = errors.New("coord: malformed wire payload")

// PartitionRange returns the contiguous vertex range [lo, hi) owned by
// shard i of shards over an n-vertex graph: equal ceil(n/shards)-sized
// blocks, with the tail shards owning less (possibly empty) ranges.
func PartitionRange(n, shards, i int) (lo, hi uint32) {
	per := (n + shards - 1) / shards
	l := i * per
	if l > n {
		l = n
	}
	h := l + per
	if h > n {
		h = n
	}
	return uint32(l), uint32(h)
}

// PartitionOwner returns the shard owning vertex v under the same
// partitioning.
func PartitionOwner(n, shards int, v uint32) int {
	per := (n + shards - 1) / shards
	o := int(v) / per
	if o >= shards {
		o = shards - 1
	}
	return o
}

// Frontier is a bitmap of vertices inside one shard's owned range — the
// unit of frontier exchange. The coordinator sends one per shard per
// round (the round's claim candidates); shards return one per
// destination shard (the round's discoveries).
type Frontier struct {
	Epoch uint64
	Round uint32
	// Shard is the destination shard (the owner of [Lo, Hi)).
	Shard  uint32
	Lo, Hi uint32
	words  []uint32
}

// NewFrontier returns an empty frontier over [lo, hi) destined for
// shard.
func NewFrontier(epoch uint64, round, shard, lo, hi uint32) *Frontier {
	return &Frontier{
		Epoch: epoch, Round: round, Shard: shard, Lo: lo, Hi: hi,
		words: make([]uint32, frontierWords(lo, hi)),
	}
}

func frontierWords(lo, hi uint32) int {
	if hi <= lo {
		return 0
	}
	return int(hi-lo+31) / 32
}

// Set marks vertex v (which must lie in [Lo, Hi)).
func (f *Frontier) Set(v uint32) {
	i := v - f.Lo
	f.words[i>>5] |= 1 << (i & 31)
}

// Has reports whether vertex v is marked.
func (f *Frontier) Has(v uint32) bool {
	if v < f.Lo || v >= f.Hi {
		return false
	}
	i := v - f.Lo
	return f.words[i>>5]&(1<<(i&31)) != 0
}

// Count returns the number of marked vertices.
func (f *Frontier) Count() int {
	c := 0
	for _, w := range f.words {
		c += bits.OnesCount32(w)
	}
	return c
}

// Empty reports whether no vertex is marked.
func (f *Frontier) Empty() bool {
	for _, w := range f.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every marked vertex in ascending order.
func (f *Frontier) ForEach(fn func(v uint32)) {
	for wi, w := range f.words {
		for w != 0 {
			b := bits.TrailingZeros32(w)
			v := f.Lo + uint32(wi<<5+b)
			if v < f.Hi {
				fn(v)
			}
			w &^= 1 << b
		}
	}
}

// Union ors o into f; both must cover the identical range.
func (f *Frontier) Union(o *Frontier) error {
	if o.Lo != f.Lo || o.Hi != f.Hi {
		return fmt.Errorf("coord: union over mismatched ranges [%d,%d) vs [%d,%d)", f.Lo, f.Hi, o.Lo, o.Hi)
	}
	for i, w := range o.words {
		f.words[i] |= w
	}
	return nil
}

// frontierEncodedLen is the exact wire size of a frontier over the
// given range: magic + epoch + round/shard/lo/hi/nwords + words + crc.
func frontierEncodedLen(lo, hi uint32) int {
	return len(frontierMagic) + 8 + 5*4 + 4*frontierWords(lo, hi) + 4
}

// AppendEncode appends the frontier's wire encoding to dst.
func (f *Frontier) AppendEncode(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, frontierMagic...)
	dst = binary.LittleEndian.AppendUint64(dst, f.Epoch)
	dst = binary.LittleEndian.AppendUint32(dst, f.Round)
	dst = binary.LittleEndian.AppendUint32(dst, f.Shard)
	dst = binary.LittleEndian.AppendUint32(dst, f.Lo)
	dst = binary.LittleEndian.AppendUint32(dst, f.Hi)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.words)))
	for _, w := range f.words {
		dst = binary.LittleEndian.AppendUint32(dst, w)
	}
	return appendCRC(dst, start)
}

// Encode returns the frontier's wire encoding.
func (f *Frontier) Encode() []byte {
	return f.AppendEncode(make([]byte, 0, frontierEncodedLen(f.Lo, f.Hi)))
}

// DecodeFrontier parses exactly one frontier frame occupying all of b.
func DecodeFrontier(b []byte) (*Frontier, error) {
	f, n, err := decodeFrontierPrefix(b)
	if err != nil {
		return nil, err
	}
	if n != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after frontier frame", ErrWire, len(b)-n)
	}
	return f, nil
}

// decodeFrontierPrefix parses one frontier frame from the head of b,
// returning it and the bytes consumed.
func decodeFrontierPrefix(b []byte) (*Frontier, int, error) {
	const fixed = len(frontierMagic) + 8 + 5*4
	if len(b) < fixed+4 {
		return nil, 0, fmt.Errorf("%w: frontier frame truncated at %d bytes", ErrWire, len(b))
	}
	if string(b[:len(frontierMagic)]) != frontierMagic {
		return nil, 0, fmt.Errorf("%w: bad frontier magic", ErrWire)
	}
	f := &Frontier{
		Epoch: binary.LittleEndian.Uint64(b[8:]),
		Round: binary.LittleEndian.Uint32(b[16:]),
		Shard: binary.LittleEndian.Uint32(b[20:]),
		Lo:    binary.LittleEndian.Uint32(b[24:]),
		Hi:    binary.LittleEndian.Uint32(b[28:]),
	}
	nwords := binary.LittleEndian.Uint32(b[32:])
	if f.Hi < f.Lo || f.Hi > graph.MaxVertices {
		return nil, 0, fmt.Errorf("%w: frontier range [%d,%d) invalid", ErrWire, f.Lo, f.Hi)
	}
	if int(nwords) != frontierWords(f.Lo, f.Hi) {
		return nil, 0, fmt.Errorf("%w: frontier has %d words, range [%d,%d) needs %d",
			ErrWire, nwords, f.Lo, f.Hi, frontierWords(f.Lo, f.Hi))
	}
	total := fixed + 4*int(nwords) + 4
	if len(b) < total {
		return nil, 0, fmt.Errorf("%w: frontier frame truncated: %d of %d bytes", ErrWire, len(b), total)
	}
	if err := checkCRC(b[:total]); err != nil {
		return nil, 0, err
	}
	f.words = make([]uint32, nwords)
	for i := range f.words {
		f.words[i] = binary.LittleEndian.Uint32(b[fixed+4*i:])
	}
	// Bits past Hi inside the last word would be invisible to ForEach
	// but corrupt Count; reject them as the garbage they are.
	if n := int(f.Hi-f.Lo) & 31; n != 0 && nwords > 0 {
		if f.words[nwords-1]&^(1<<n-1) != 0 {
			return nil, 0, fmt.Errorf("%w: frontier bits set past range end", ErrWire)
		}
	}
	return f, total, nil
}

// ExpandResponse is a shard's answer to one round: how many owned
// vertices it newly claimed, and the discovered neighbors grouped into
// per-destination frontier bitmaps (only non-empty destinations are
// present).
type ExpandResponse struct {
	Epoch uint64
	Round uint32
	// Shard is the responding shard.
	Shard   uint32
	Claimed uint64
	Out     []*Frontier
}

// Encode returns the response's wire encoding: an outer CRC-framed
// envelope carrying the (already self-framed) per-destination frontiers.
func (r *ExpandResponse) Encode() []byte {
	size := len(expandMagic) + 8 + 4 + 4 + 8 + 4 + 4
	for _, f := range r.Out {
		size += 4 + frontierEncodedLen(f.Lo, f.Hi)
	}
	dst := make([]byte, 0, size)
	dst = append(dst, expandMagic...)
	dst = binary.LittleEndian.AppendUint64(dst, r.Epoch)
	dst = binary.LittleEndian.AppendUint32(dst, r.Round)
	dst = binary.LittleEndian.AppendUint32(dst, r.Shard)
	dst = binary.LittleEndian.AppendUint64(dst, r.Claimed)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Out)))
	for _, f := range r.Out {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(frontierEncodedLen(f.Lo, f.Hi)))
		dst = f.AppendEncode(dst)
	}
	return appendCRC(dst, 0)
}

// DecodeExpandResponse parses a response frame occupying all of b.
func DecodeExpandResponse(b []byte) (*ExpandResponse, error) {
	const fixed = len(expandMagic) + 8 + 4 + 4 + 8 + 4
	if len(b) < fixed+4 {
		return nil, fmt.Errorf("%w: expand response truncated at %d bytes", ErrWire, len(b))
	}
	if string(b[:len(expandMagic)]) != expandMagic {
		return nil, fmt.Errorf("%w: bad expand-response magic", ErrWire)
	}
	if err := checkCRC(b); err != nil {
		return nil, err
	}
	r := &ExpandResponse{
		Epoch:   binary.LittleEndian.Uint64(b[8:]),
		Round:   binary.LittleEndian.Uint32(b[16:]),
		Shard:   binary.LittleEndian.Uint32(b[20:]),
		Claimed: binary.LittleEndian.Uint64(b[24:]),
	}
	nframes := binary.LittleEndian.Uint32(b[32:])
	if nframes > maxWireFrames {
		return nil, fmt.Errorf("%w: %d frames in expand response", ErrWire, nframes)
	}
	rest := b[fixed : len(b)-4]
	for i := uint32(0); i < nframes; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: expand response frame %d missing length", ErrWire, i)
		}
		flen := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(flen) > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: expand response frame %d overruns envelope", ErrWire, i)
		}
		f, err := DecodeFrontier(rest[:flen])
		if err != nil {
			return nil, err
		}
		if f.Epoch != r.Epoch || f.Round != r.Round {
			return nil, fmt.Errorf("%w: frame %d tagged (epoch %d, round %d) inside envelope (epoch %d, round %d)",
				ErrWire, i, f.Epoch, f.Round, r.Epoch, r.Round)
		}
		r.Out = append(r.Out, f)
		rest = rest[flen:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in expand response", ErrWire, len(rest))
	}
	return r, nil
}

// DepthSlice is a shard's final answer: the committed depths of its
// owned range for one epoch (-1 = unreached).
type DepthSlice struct {
	Epoch  uint64
	Shard  uint32
	Lo, Hi uint32
	Depth  []int32
}

// Encode returns the slice's wire encoding.
func (d *DepthSlice) Encode() []byte {
	dst := make([]byte, 0, len(depthsMagic)+8+3*4+4*len(d.Depth)+4)
	dst = append(dst, depthsMagic...)
	dst = binary.LittleEndian.AppendUint64(dst, d.Epoch)
	dst = binary.LittleEndian.AppendUint32(dst, d.Shard)
	dst = binary.LittleEndian.AppendUint32(dst, d.Lo)
	dst = binary.LittleEndian.AppendUint32(dst, d.Hi)
	for _, v := range d.Depth {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return appendCRC(dst, 0)
}

// DecodeDepthSlice parses a depth-slice frame occupying all of b.
func DecodeDepthSlice(b []byte) (*DepthSlice, error) {
	const fixed = len(depthsMagic) + 8 + 3*4
	if len(b) < fixed+4 {
		return nil, fmt.Errorf("%w: depth slice truncated at %d bytes", ErrWire, len(b))
	}
	if string(b[:len(depthsMagic)]) != depthsMagic {
		return nil, fmt.Errorf("%w: bad depth-slice magic", ErrWire)
	}
	d := &DepthSlice{
		Epoch: binary.LittleEndian.Uint64(b[8:]),
		Shard: binary.LittleEndian.Uint32(b[16:]),
		Lo:    binary.LittleEndian.Uint32(b[20:]),
		Hi:    binary.LittleEndian.Uint32(b[24:]),
	}
	if d.Hi < d.Lo || d.Hi > graph.MaxVertices {
		return nil, fmt.Errorf("%w: depth slice range [%d,%d) invalid", ErrWire, d.Lo, d.Hi)
	}
	if want := fixed + 4*int(d.Hi-d.Lo) + 4; len(b) != want {
		return nil, fmt.Errorf("%w: depth slice is %d bytes, range [%d,%d) needs %d",
			ErrWire, len(b), d.Lo, d.Hi, want)
	}
	if err := checkCRC(b); err != nil {
		return nil, err
	}
	d.Depth = make([]int32, d.Hi-d.Lo)
	for i := range d.Depth {
		d.Depth[i] = int32(binary.LittleEndian.Uint32(b[fixed+4*i:]))
	}
	return d, nil
}

// appendCRC appends the CRC32 (IEEE) of dst[start:] to dst.
func appendCRC(dst []byte, start int) []byte {
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// checkCRC verifies that the last 4 bytes of b checksum the rest.
func checkCRC(b []byte) error {
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("%w: checksum mismatch", ErrWire)
	}
	return nil
}
