// High-availability wire records: the durable vocabulary of the
// replicated cluster's control plane. Three record types, each
// magic-tagged and CRC-framed exactly like the round-protocol payloads
// in wire.go, with one canonical encoding apiece:
//
//   - Lease (FBFSLSE1): who coordinates, under which monotonic fencing
//     token, and until when. The active coordinator refreshes Expires on
//     every renewal tick; a standby that stops seeing fresh leases takes
//     over with Token+1, and every shard rejects round requests carrying
//     an older token (ErrFenced), so a deposed coordinator's stale
//     rounds can never be half-applied.
//   - GroupAssignment (FBFSGRP1): the cluster membership — how many
//     partition groups, how many replicas per group, and the shard URL
//     for every (group, replica) slot in group-major order.
//   - EpochState (FBFSEPO1): one in-flight traversal's resumable state —
//     epoch id, source, fencing token, the next round to send, and the
//     encoded candidate frontier per group for exactly that round. A
//     coordinator journals this before each round escapes; a standby
//     restored from it re-sends the journaled round, which every shard
//     either processes normally or answers from its byte-exact cached
//     response — the idempotent round protocol makes coordinator
//     failover just another retry.
//
// These records travel on disk (the coordinator journal, journal.go)
// and over HTTP (GET /cluster/state, POST /cluster/mirror in cmd/bfsd),
// so their decoders follow the FuzzDecodeFrontier contract: never
// panic, reject anything non-canonical with ErrWire, and re-encode
// accepted payloads byte-for-byte.
package coord

import (
	"encoding/binary"
	"fmt"
)

// HA record magics, eight bytes each like every other frame in the
// system, so a record routed to the wrong decoder fails immediately.
const (
	leaseMagic      = "FBFSLSE1"
	assignmentMagic = "FBFSGRP1"
	epochMagic      = "FBFSEPO1"
)

// maxHolder bounds the lease holder string; longer values are a corrupt
// length field, not a real URL.
const maxHolder = 1 << 12

// Lease is the coordination lease: Token is the monotonic fencing
// token, Holder the coordinator URL that owns it, and Expires the
// wall-clock instant (unix nanoseconds) past which a standby may assume
// the holder is gone and take over with Token+1.
type Lease struct {
	Token   uint64
	Expires int64
	Holder  string
}

// Encode returns the lease's canonical wire encoding.
func (l *Lease) Encode() []byte {
	dst := make([]byte, 0, len(leaseMagic)+8+8+4+len(l.Holder)+4)
	dst = append(dst, leaseMagic...)
	dst = binary.LittleEndian.AppendUint64(dst, l.Token)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(l.Expires))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(l.Holder)))
	dst = append(dst, l.Holder...)
	return appendCRC(dst, 0)
}

// DecodeLease parses a lease frame occupying all of b.
func DecodeLease(b []byte) (*Lease, error) {
	const fixed = len(leaseMagic) + 8 + 8 + 4
	if len(b) < fixed+4 {
		return nil, fmt.Errorf("%w: lease truncated at %d bytes", ErrWire, len(b))
	}
	if string(b[:len(leaseMagic)]) != leaseMagic {
		return nil, fmt.Errorf("%w: bad lease magic", ErrWire)
	}
	hlen := binary.LittleEndian.Uint32(b[24:])
	if hlen > maxHolder {
		return nil, fmt.Errorf("%w: lease holder field of %d bytes", ErrWire, hlen)
	}
	if len(b) != fixed+int(hlen)+4 {
		return nil, fmt.Errorf("%w: lease is %d bytes, holder of %d needs %d",
			ErrWire, len(b), hlen, fixed+int(hlen)+4)
	}
	if err := checkCRC(b); err != nil {
		return nil, err
	}
	return &Lease{
		Token:   binary.LittleEndian.Uint64(b[8:]),
		Expires: int64(binary.LittleEndian.Uint64(b[16:])),
		Holder:  string(b[fixed : fixed+int(hlen)]),
	}, nil
}

// GroupAssignment is the cluster's membership: Groups partition groups,
// Replicas shards per group, and the URL of every (group, replica) slot
// in group-major order (URLs[g*Replicas+r]).
type GroupAssignment struct {
	Groups   uint32
	Replicas uint32
	URLs     []string
}

// URL returns the shard URL of (group, replica).
func (a *GroupAssignment) URL(group, replica int) string {
	return a.URLs[group*int(a.Replicas)+replica]
}

// Encode returns the assignment's canonical wire encoding.
func (a *GroupAssignment) Encode() []byte {
	size := len(assignmentMagic) + 4 + 4 + 4
	for _, u := range a.URLs {
		size += 4 + len(u)
	}
	dst := make([]byte, 0, size)
	dst = append(dst, assignmentMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, a.Groups)
	dst = binary.LittleEndian.AppendUint32(dst, a.Replicas)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(a.URLs)))
	for _, u := range a.URLs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(u)))
		dst = append(dst, u...)
	}
	return appendCRC(dst, 0)
}

// DecodeGroupAssignment parses an assignment frame occupying all of b.
func DecodeGroupAssignment(b []byte) (*GroupAssignment, error) {
	const fixed = len(assignmentMagic) + 4 + 4 + 4
	if len(b) < fixed+4 {
		return nil, fmt.Errorf("%w: assignment truncated at %d bytes", ErrWire, len(b))
	}
	if string(b[:len(assignmentMagic)]) != assignmentMagic {
		return nil, fmt.Errorf("%w: bad assignment magic", ErrWire)
	}
	if err := checkCRC(b); err != nil {
		return nil, err
	}
	a := &GroupAssignment{
		Groups:   binary.LittleEndian.Uint32(b[8:]),
		Replicas: binary.LittleEndian.Uint32(b[12:]),
	}
	n := binary.LittleEndian.Uint32(b[16:])
	if n > maxWireFrames {
		return nil, fmt.Errorf("%w: assignment lists %d members", ErrWire, n)
	}
	if a.Groups == 0 || a.Replicas == 0 || uint64(a.Groups)*uint64(a.Replicas) != uint64(n) {
		return nil, fmt.Errorf("%w: assignment of %d groups x %d replicas lists %d URLs",
			ErrWire, a.Groups, a.Replicas, n)
	}
	rest := b[fixed : len(b)-4]
	a.URLs = make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: assignment member %d missing length", ErrWire, i)
		}
		ulen := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if ulen > maxHolder || uint64(ulen) > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: assignment member %d overruns frame", ErrWire, i)
		}
		a.URLs = append(a.URLs, string(rest[:ulen]))
		rest = rest[ulen:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in assignment", ErrWire, len(rest))
	}
	return a, nil
}

// EpochState is one traversal's resumable coordination state: the next
// round to send and the candidate frontier (encoded, canonical) for
// every group at exactly that round. Done marks a completed epoch and
// carries no candidates.
type EpochState struct {
	Epoch  uint64
	Fence  uint64
	Source uint32
	Round  uint32
	Done   bool
	// Cand[g] is the encoded candidate Frontier destined for group g at
	// Round. Empty when Done.
	Cand [][]byte
}

// Encode returns the epoch state's canonical wire encoding.
func (e *EpochState) Encode() []byte {
	size := len(epochMagic) + 8 + 8 + 4 + 4 + 1 + 4
	for _, c := range e.Cand {
		size += 4 + len(c)
	}
	dst := make([]byte, 0, size)
	dst = append(dst, epochMagic...)
	dst = binary.LittleEndian.AppendUint64(dst, e.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, e.Fence)
	dst = binary.LittleEndian.AppendUint32(dst, e.Source)
	dst = binary.LittleEndian.AppendUint32(dst, e.Round)
	if e.Done {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Cand)))
	for _, c := range e.Cand {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c)))
		dst = append(dst, c...)
	}
	return appendCRC(dst, 0)
}

// DecodeEpochState parses an epoch-state frame occupying all of b.
// Every candidate must itself be a canonical Frontier frame tagged with
// the record's epoch and round and destined for its own slot — a
// journaled round a standby cannot actually replay is corruption, not
// state.
func DecodeEpochState(b []byte) (*EpochState, error) {
	const fixed = len(epochMagic) + 8 + 8 + 4 + 4 + 1 + 4
	if len(b) < fixed+4 {
		return nil, fmt.Errorf("%w: epoch state truncated at %d bytes", ErrWire, len(b))
	}
	if string(b[:len(epochMagic)]) != epochMagic {
		return nil, fmt.Errorf("%w: bad epoch-state magic", ErrWire)
	}
	if err := checkCRC(b); err != nil {
		return nil, err
	}
	e := &EpochState{
		Epoch:  binary.LittleEndian.Uint64(b[8:]),
		Fence:  binary.LittleEndian.Uint64(b[16:]),
		Source: binary.LittleEndian.Uint32(b[24:]),
		Round:  binary.LittleEndian.Uint32(b[28:]),
	}
	switch b[32] {
	case 0:
	case 1:
		e.Done = true
	default:
		return nil, fmt.Errorf("%w: epoch-state done flag %d", ErrWire, b[32])
	}
	n := binary.LittleEndian.Uint32(b[33:])
	if n > maxWireFrames {
		return nil, fmt.Errorf("%w: epoch state lists %d candidates", ErrWire, n)
	}
	if e.Done && n != 0 {
		return nil, fmt.Errorf("%w: completed epoch state carries %d candidates", ErrWire, n)
	}
	rest := b[fixed : len(b)-4]
	for i := uint32(0); i < n; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: epoch-state candidate %d missing length", ErrWire, i)
		}
		clen := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(clen) > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: epoch-state candidate %d overruns frame", ErrWire, i)
		}
		f, err := DecodeFrontier(rest[:clen])
		if err != nil {
			return nil, fmt.Errorf("epoch-state candidate %d: %w", i, err)
		}
		if f.Epoch != e.Epoch || f.Round != e.Round || f.Shard != i {
			return nil, fmt.Errorf("%w: candidate %d tagged (epoch %d, round %d, group %d) inside state (epoch %d, round %d)",
				ErrWire, i, f.Epoch, f.Round, f.Shard, e.Epoch, e.Round)
		}
		e.Cand = append(e.Cand, append([]byte(nil), rest[:clen]...))
		rest = rest[clen:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in epoch state", ErrWire, len(rest))
	}
	return e, nil
}

// AppendFrame appends one length-prefixed record to dst — the framing
// the coordinator journal and the /cluster/state reply share.
func AppendFrame(dst, rec []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec)))
	return append(dst, rec...)
}

// SplitFrames splits a concatenation of length-prefixed records.
func SplitFrames(b []byte) ([][]byte, error) {
	var out [][]byte
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: dangling %d-byte frame header", ErrWire, len(b))
		}
		n := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint64(n) > uint64(len(b)) {
			return nil, fmt.Errorf("%w: frame of %d bytes overruns buffer of %d", ErrWire, n, len(b))
		}
		out = append(out, b[:n])
		b = b[n:]
	}
	return out, nil
}
