package coord

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fastbfs/bfs"
	"fastbfs/cluster"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/faultinject"
)

// testCluster spins up nshards in-process shard servers over g and a
// coordinator configured with fast test timings.
type testCluster struct {
	shards  []*Shard
	servers []*httptest.Server
	proxies []*restartProxy
	cfg     Config
}

func newTestCluster(t *testing.T, g *graph.Graph, nshards int, ckptDirs []string) *testCluster {
	t.Helper()
	tc := &testCluster{cfg: Config{
		RPCTimeout:        5 * time.Second,
		MaxAttempts:       4,
		Backoff:           cluster.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Jitter: 0.5, Seed: 1},
		RecoveryBudget:    10 * time.Second,
		HeartbeatInterval: 20 * time.Millisecond,
	}}
	for i := 0; i < nshards; i++ {
		dir := ""
		if ckptDirs != nil {
			dir = ckptDirs[i]
		}
		s, err := NewShard(g, i, nshards, dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		p := &restartProxy{inner: s.Handler()}
		srv := httptest.NewServer(p)
		t.Cleanup(srv.Close)
		tc.shards = append(tc.shards, s)
		tc.proxies = append(tc.proxies, p)
		tc.servers = append(tc.servers, srv)
		tc.cfg.Shards = append(tc.cfg.Shards, srv.URL)
	}
	return tc
}

func (tc *testCluster) open(t *testing.T) *Coordinator {
	t.Helper()
	c, err := Open(context.Background(), tc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// restartProxy wraps a shard handler and scripts its failure story:
// after killAt expand requests it "crashes" (the killing request is
// processed — its checkpoint lands — but the response is dropped),
// serves failWhileDown 500s, then either comes back as reborn (a fresh
// Shard, e.g. restored from checkpoint) or stays dead forever.
type restartProxy struct {
	mu      sync.Mutex
	inner   http.Handler
	expands int

	killAt        int // 0 = never fail
	failWhileDown int // 500s served before rebirth; <0 = dead forever
	reborn        func() http.Handler

	down   bool
	failed int
}

func (p *restartProxy) script(killAt, failWhileDown int, reborn func() http.Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.killAt, p.failWhileDown, p.reborn = killAt, failWhileDown, reborn
}

func (p *restartProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		p.failed++
		if p.failWhileDown >= 0 && p.failed >= p.failWhileDown {
			p.inner = p.reborn()
			p.down = false
		}
		http.Error(w, "injected: shard down", http.StatusInternalServerError)
		return
	}
	isExpand := strings.HasSuffix(r.URL.Path, "/shard/expand")
	if isExpand {
		p.expands++
		if p.killAt > 0 && p.expands == p.killAt {
			// Process the round (the shard checkpoints it) but lose the
			// response on the wire — the worst-timed crash.
			p.inner.ServeHTTP(httptest.NewRecorder(), r)
			p.down = true
			http.Error(w, "injected: crashed before replying", http.StatusInternalServerError)
			return
		}
	}
	p.inner.ServeHTTP(w, r)
}

// serialDepths runs the repo's serial BFS and returns the depth array
// plus the per-level size histogram.
func serialDepths(t *testing.T, g *graph.Graph, source uint32) ([]int32, []int64) {
	t.Helper()
	r, err := bfs.RunSerial(g, source)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	depth := make([]int32, n)
	var levels []int64
	for v := 0; v < n; v++ {
		d := r.Depth(uint32(v))
		depth[v] = d
		if d >= 0 {
			for int(d) >= len(levels) {
				levels = append(levels, 0)
			}
			levels[d]++
		}
	}
	return depth, levels
}

func assertExactDepths(t *testing.T, res *Result, want []int32) {
	t.Helper()
	if res.Incomplete {
		t.Fatalf("result marked incomplete (dead shards %v) on a healthy cluster", res.DeadShards)
	}
	if len(res.Depth) != len(want) {
		t.Fatalf("depth array covers %d vertices, want %d", len(res.Depth), len(want))
	}
	for v := range want {
		if res.Depth[v] != want[v] {
			t.Fatalf("vertex %d: distributed depth %d, serial %d", v, res.Depth[v], want[v])
		}
	}
}

// TestDistributedExactDepths: a 3-shard cluster reproduces serial BFS
// depths byte-for-byte on an RMAT graph and a grid, including the
// round-for-round level sizes.
func TestDistributedExactDepths(t *testing.T) {
	rmat, err := gen.RMAT(gen.Graph500Params(10, 8), 42)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := gen.Grid2D(40, 25, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range []struct {
		name   string
		g      *graph.Graph
		source uint32
	}{{"rmat", rmat, 1}, {"grid", grid, 0}} {
		t.Run(tg.name, func(t *testing.T) {
			want, levels := serialDepths(t, tg.g, tg.source)
			tc := newTestCluster(t, tg.g, 3, nil)
			c := tc.open(t)
			if c.NumVertices() != tg.g.NumVertices() {
				t.Fatalf("coordinator discovered %d vertices, graph has %d", c.NumVertices(), tg.g.NumVertices())
			}
			res, err := c.Run(context.Background(), tg.source)
			if err != nil {
				t.Fatal(err)
			}
			assertExactDepths(t, res, want)
			if len(res.ClaimedPerRound) != len(levels) {
				t.Fatalf("%d rounds claimed vertices, serial BFS has %d levels", len(res.ClaimedPerRound), len(levels))
			}
			for r, n := range levels {
				if res.ClaimedPerRound[r] != n {
					t.Fatalf("round %d claimed %d vertices, serial level size is %d", r, res.ClaimedPerRound[r], n)
				}
			}
			if res.Retries != 0 || res.EpochRestarts != 0 {
				t.Fatalf("healthy cluster reported %d retries, %d epoch restarts", res.Retries, res.EpochRestarts)
			}
		})
	}
}

// TestDistributedMatchesSim: the real HTTP cluster and the in-process
// cluster.Sim agree depth-for-depth and level-for-level — the process
// boundary must not change the algorithm.
func TestDistributedMatchesSim(t *testing.T) {
	g, err := gen.Kronecker(10, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	const source = 3
	sim, err := cluster.NewSim(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Run(context.Background(), source)
	if err != nil {
		t.Fatal(err)
	}
	tc := newTestCluster(t, g, 4, nil)
	res, err := tc.open(t).Run(context.Background(), source)
	if err != nil {
		t.Fatal(err)
	}
	for v := range simRes.Depth {
		if res.Depth[v] != simRes.Depth[v] {
			t.Fatalf("vertex %d: HTTP cluster depth %d, Sim depth %d", v, res.Depth[v], simRes.Depth[v])
		}
	}
	// Sim counts expansion steps; the last one discovers nothing new, so
	// levels = Steps when the deepest level has no out-frontier... compare
	// via depths instead: deepest level index must equal Rounds-1.
	var maxd int32 = -1
	for _, d := range simRes.Depth {
		if d > maxd {
			maxd = d
		}
	}
	if int(maxd)+1 != res.Rounds {
		t.Fatalf("cluster ran %d claiming rounds, depth histogram has %d levels", res.Rounds, maxd+1)
	}
}

// TestChaoticWireStillExact: deterministic injected send failures and
// shard-side expand faults force retries, yet the committed depths stay
// byte-exact — the idempotent round protocol absorbs every replay.
func TestChaoticWireStillExact(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(9, 8), 11)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := serialDepths(t, g, 2)

	// Shard-side faults ride the shards' own injector.
	shardPlan := &faultinject.Plan{Seed: 33, Rules: map[faultinject.Site]faultinject.Rule{
		faultinject.SiteShardExpand: {FaultProb: 0.2},
	}}
	tc := &testCluster{cfg: Config{
		RPCTimeout:        5 * time.Second,
		MaxAttempts:       6,
		Backoff:           cluster.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Jitter: 0.5, Seed: 2},
		RecoveryBudget:    10 * time.Second,
		HeartbeatInterval: 20 * time.Millisecond,
		Injector: &faultinject.Plan{Seed: 44, Rules: map[faultinject.Site]faultinject.Rule{
			faultinject.SiteCoordSend: {FaultProb: 0.25},
		}},
	}}
	for i := 0; i < 3; i++ {
		s, err := NewShard(g, i, 3, "", shardPlan)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(s.Handler())
		t.Cleanup(srv.Close)
		tc.cfg.Shards = append(tc.cfg.Shards, srv.URL)
	}
	res, err := tc.open(t).Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	assertExactDepths(t, res, want)
	if res.Retries == 0 {
		t.Fatal("fault plan produced no retries; chaos test is vacuous")
	}
}

// TestShardRestartFromCheckpoint: a shard crashes at the worst moment —
// after processing and checkpointing a round but before its response
// escapes — and a replacement process restored from the checkpoint
// replays the identical response. Depths stay exact, no epoch restart.
func TestShardRestartFromCheckpoint(t *testing.T) {
	g, err := gen.Grid2D(30, 30, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := serialDepths(t, g, 0)
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	tc := newTestCluster(t, g, 3, dirs)
	// Shard 1 dies on its 5th round, serves 2 errors, then "restarts"
	// from its checkpoint directory.
	tc.proxies[1].script(5, 2, func() http.Handler {
		s, err := NewShard(g, 1, 3, dirs[1], nil)
		if err != nil {
			t.Errorf("restart: %v", err)
			return http.NotFoundHandler()
		}
		return s.Handler()
	})
	res, err := tc.open(t).Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertExactDepths(t, res, want)
	if res.Retries == 0 {
		t.Fatal("crash produced no retries; the kill never happened")
	}
	if res.EpochRestarts != 0 {
		t.Fatalf("checkpointed restart forced %d epoch restarts; replay should have sufficed", res.EpochRestarts)
	}
}

// TestShardRestartWithoutCheckpoint: the replacement shard comes back
// empty-handed (checkpoint lost with the machine). Its sequencing
// refusal forces a bounded epoch restart, after which depths are again
// exact.
func TestShardRestartWithoutCheckpoint(t *testing.T) {
	g, err := gen.Grid2D(25, 25, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := serialDepths(t, g, 0)
	tc := newTestCluster(t, g, 3, nil)
	tc.proxies[2].script(4, 2, func() http.Handler {
		s, err := NewShard(g, 2, 3, "", nil) // fresh state, no checkpoint
		if err != nil {
			t.Errorf("restart: %v", err)
			return http.NotFoundHandler()
		}
		return s.Handler()
	})
	res, err := tc.open(t).Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertExactDepths(t, res, want)
	if res.EpochRestarts == 0 {
		t.Fatal("stateless restart did not force an epoch restart; sequencing check is not working")
	}
}

// TestPermanentShardDeath: a shard that never comes back must not hang
// the run — past the recovery budget the coordinator degrades to a
// typed partial result over the surviving shards.
func TestPermanentShardDeath(t *testing.T) {
	g, err := gen.Grid2D(20, 20, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	serial, _ := serialDepths(t, g, 0)
	tc := newTestCluster(t, g, 3, nil)
	tc.cfg.RecoveryBudget = 300 * time.Millisecond
	tc.cfg.MaxAttempts = 2
	tc.proxies[1].script(3, -1, nil) // dies on round 3, dead forever
	c := tc.open(t)
	start := time.Now()
	res, err := c.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incomplete {
		t.Fatal("run with a permanently dead shard not marked Incomplete")
	}
	if len(res.DeadShards) != 1 || res.DeadShards[0] != 1 {
		t.Fatalf("DeadShards = %v, want [1]", res.DeadShards)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("degraded run took %v; recovery budget is not bounding detection", elapsed)
	}
	// The partial result is sound: the dead shard's range reads -1, the
	// source is still depth 0, and no surviving vertex claims a depth
	// better than the true shortest path.
	lo, hi := tc.shards[1].Range()
	for v := lo; v < hi; v++ {
		if res.Depth[v] != -1 {
			t.Fatalf("vertex %d in dead shard's range has depth %d, want -1", v, res.Depth[v])
		}
	}
	if res.Depth[0] != 0 {
		t.Fatalf("source depth %d after degradation", res.Depth[0])
	}
	for v, d := range res.Depth {
		if d < 0 {
			continue
		}
		if serial[v] < 0 || d < serial[v] {
			t.Fatalf("vertex %d: degraded depth %d beats serial %d — impossible path invented", v, d, serial[v])
		}
	}
	if res.Visited == 0 || res.Visited >= int64(g.NumVertices()) {
		t.Fatalf("degraded run visited %d of %d vertices; expected a proper subset", res.Visited, g.NumVertices())
	}
}

// TestOpenValidation: misconfigured clusters are refused at Open — a
// shard reporting the wrong id, and an unreachable shard after the
// budget.
func TestOpenValidation(t *testing.T) {
	g, err := gen.UniformRandom(500, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Shard launched as id 1 but configured first.
	s1, err := NewShard(g, 1, 2, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := NewShard(g, 0, 2, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(s1.Handler())
	defer srv1.Close()
	srv0 := httptest.NewServer(s0.Handler())
	defer srv0.Close()
	cfg := Config{
		Shards:         []string{srv1.URL, srv0.URL},
		RecoveryBudget: 500 * time.Millisecond,
		Backoff:        cluster.Backoff{Base: 10 * time.Millisecond},
	}
	if _, err := Open(context.Background(), cfg); err == nil {
		t.Fatal("Open accepted shards configured out of id order")
	}
	// Unreachable shard: Open must fail within the budget, not hang.
	cfg.Shards = []string{srv0.URL, "http://127.0.0.1:1"}
	start := time.Now()
	if _, err := Open(context.Background(), cfg); err == nil {
		t.Fatal("Open accepted an unreachable shard")
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("Open did not respect the recovery budget for unreachable shards")
	}
}
