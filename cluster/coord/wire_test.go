package coord

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"testing"

	"fastbfs/internal/xrand"
)

// TestPartition: ranges tile [0, n) exactly, owners agree with ranges,
// and edge shapes (n < shards, n == 0 ranges, single shard) hold.
func TestPartition(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{100, 3}, {1, 1}, {7, 3}, {8, 3}, {9, 3}, {2, 5}, {1 << 20, 7}, {16, 16}, {5, 8},
	} {
		prev := uint32(0)
		for i := 0; i < tc.shards; i++ {
			lo, hi := PartitionRange(tc.n, tc.shards, i)
			if lo != prev {
				t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d (ranges must tile)", tc.n, tc.shards, i, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d shards=%d: shard %d range [%d,%d) inverted", tc.n, tc.shards, i, lo, hi)
			}
			for v := lo; v < hi; v++ {
				if o := PartitionOwner(tc.n, tc.shards, v); o != i {
					t.Fatalf("n=%d shards=%d: vertex %d in shard %d's range but owned by %d", tc.n, tc.shards, v, i, o)
				}
			}
			prev = hi
		}
		if int(prev) != tc.n {
			t.Fatalf("n=%d shards=%d: ranges cover [0,%d), want [0,%d)", tc.n, tc.shards, prev, tc.n)
		}
	}
}

// randomFrontier fills a frontier over [lo, hi) with a deterministic
// pseudo-random vertex subset.
func randomFrontier(epoch uint64, round, shard, lo, hi uint32, seed uint64, density int) *Frontier {
	f := NewFrontier(epoch, round, shard, lo, hi)
	h := seed
	for v := lo; v < hi; v++ {
		h = xrand.SplitMix64(h)
		if density > 0 && h%uint64(density) == 0 {
			f.Set(v)
		}
	}
	return f
}

// TestFrontierRoundTrip: Encode/DecodeFrontier is the identity over
// randomized ranges and densities, and set/count/iterate agree.
func TestFrontierRoundTrip(t *testing.T) {
	cases := []struct {
		lo, hi  uint32
		density int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 31, 2}, {0, 32, 2}, {0, 33, 2},
		{100, 1000, 3}, {4096, 4096 + 277, 1}, {7, 64, 5}, {1 << 20, 1<<20 + 2048, 10},
	}
	for i, tc := range cases {
		f := randomFrontier(uint64(i)+3, uint32(i), uint32(i%4), tc.lo, tc.hi, 99*uint64(i+1), tc.density)
		var want []uint32
		f.ForEach(func(v uint32) { want = append(want, v) })
		if len(want) != f.Count() {
			t.Fatalf("case %d: ForEach yielded %d vertices, Count says %d", i, len(want), f.Count())
		}
		if f.Empty() != (len(want) == 0) {
			t.Fatalf("case %d: Empty()=%v with %d vertices", i, f.Empty(), len(want))
		}
		enc := f.Encode()
		if len(enc) != frontierEncodedLen(tc.lo, tc.hi) {
			t.Fatalf("case %d: encoded %d bytes, frontierEncodedLen says %d", i, len(enc), frontierEncodedLen(tc.lo, tc.hi))
		}
		g, err := DecodeFrontier(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if g.Epoch != f.Epoch || g.Round != f.Round || g.Shard != f.Shard || g.Lo != f.Lo || g.Hi != f.Hi {
			t.Fatalf("case %d: header mangled: %+v vs %+v", i, g, f)
		}
		var got []uint32
		g.ForEach(func(v uint32) { got = append(got, v) })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: decoded vertex set differs: %v vs %v", i, got, want)
		}
		for _, v := range want {
			if !g.Has(v) {
				t.Fatalf("case %d: decoded frontier missing %d", i, v)
			}
		}
	}
}

// TestFrontierUnion: union is bitwise-or over identical ranges and
// refuses mismatched ranges.
func TestFrontierUnion(t *testing.T) {
	a := NewFrontier(1, 2, 0, 10, 200)
	b := NewFrontier(1, 2, 0, 10, 200)
	a.Set(11)
	a.Set(63)
	b.Set(63)
	b.Set(199)
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 || !a.Has(11) || !a.Has(63) || !a.Has(199) {
		t.Fatalf("union produced wrong set (count %d)", a.Count())
	}
	c := NewFrontier(1, 2, 0, 0, 200)
	if err := a.Union(c); err == nil {
		t.Fatal("union over mismatched ranges must error")
	}
}

// TestFrontierDecodeRejects: every class of malformed payload fails
// with ErrWire — truncation at each boundary, bad magic, flipped bits,
// trailing garbage, inconsistent word counts, and out-of-range bits.
func TestFrontierDecodeRejects(t *testing.T) {
	f := randomFrontier(9, 4, 1, 64, 300, 5, 2)
	enc := f.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeFrontier(enc[:cut]); !errors.Is(err, ErrWire) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrWire", cut, err)
		}
	}
	for _, corrupt := range []func([]byte){
		func(b []byte) { b[0] ^= 0xff },               // magic
		func(b []byte) { b[len(b)-1] ^= 1 },           // crc
		func(b []byte) { b[len(frontierMagic)] ^= 1 }, // epoch
		func(b []byte) { b[40] ^= 0x80 },              // a bitmap word
	} {
		bad := append([]byte(nil), enc...)
		corrupt(bad)
		if _, err := DecodeFrontier(bad); !errors.Is(err, ErrWire) {
			t.Fatalf("corrupted payload decoded: %v", err)
		}
	}
	if _, err := DecodeFrontier(append(append([]byte(nil), enc...), 0)); !errors.Is(err, ErrWire) {
		t.Fatal("trailing byte accepted")
	}
	// A frame whose bits spill past Hi must be refused even with a valid
	// CRC: re-frame a wider bitmap under a narrower header.
	g := NewFrontier(9, 4, 1, 0, 40)
	g.Set(39)
	raw := g.Encode()
	// Set bit 41 (bit 9 of word 1 = bit 1 of that word's second byte,
	// outside [0,40)) and re-checksum.
	raw[len(frontierMagic)+8+5*4+4+1] |= 1 << 1
	raw = appendCRC(raw[:len(raw)-4], 0)
	if _, err := DecodeFrontier(raw); !errors.Is(err, ErrWire) {
		t.Fatalf("out-of-range bit accepted: %v", err)
	}
}

// TestExpandResponseRoundTrip: envelope round-trips with zero, one and
// several embedded frames, and rejects frames tagged with a different
// epoch or round than the envelope.
func TestExpandResponseRoundTrip(t *testing.T) {
	mk := func(n int) *ExpandResponse {
		r := &ExpandResponse{Epoch: 77, Round: 5, Shard: 2, Claimed: 123456}
		for i := 0; i < n; i++ {
			lo := uint32(i * 100)
			r.Out = append(r.Out, randomFrontier(77, 5, uint32(i), lo, lo+90, uint64(i)*13+1, 3))
		}
		return r
	}
	for _, n := range []int{0, 1, 3} {
		r := mk(n)
		got, err := DecodeExpandResponse(r.Encode())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Epoch != r.Epoch || got.Round != r.Round || got.Shard != r.Shard || got.Claimed != r.Claimed {
			t.Fatalf("n=%d: header mangled: %+v", n, got)
		}
		if len(got.Out) != n {
			t.Fatalf("n=%d: %d frames decoded", n, len(got.Out))
		}
		for i, f := range got.Out {
			if !bytes.Equal(f.Encode(), r.Out[i].Encode()) {
				t.Fatalf("n=%d: frame %d differs after round trip", n, i)
			}
		}
	}
	// Mis-tagged inner frame: valid CRCs everywhere, but the frame claims
	// a different round than its envelope — exactly the replay confusion
	// the tagging exists to catch.
	r := mk(1)
	r.Out[0].Round = 6
	if _, err := DecodeExpandResponse(r.Encode()); !errors.Is(err, ErrWire) {
		t.Fatalf("mis-tagged frame accepted: %v", err)
	}
	// Truncations of a healthy envelope.
	enc := mk(2).Encode()
	for _, cut := range []int{0, 5, 20, 35, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeExpandResponse(enc[:cut]); !errors.Is(err, ErrWire) {
			t.Fatalf("truncation to %d bytes accepted: %v", cut, err)
		}
	}
}

// TestDepthSliceRoundTrip: depth slices round-trip and reject size or
// checksum lies.
func TestDepthSliceRoundTrip(t *testing.T) {
	d := &DepthSlice{Epoch: 3, Shard: 1, Lo: 50, Hi: 150, Depth: make([]int32, 100)}
	for i := range d.Depth {
		d.Depth[i] = int32(i%7) - 1
	}
	got, err := DecodeDepthSlice(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip differs: %+v", got)
	}
	enc := d.Encode()
	for _, cut := range []int{0, 10, len(enc) - 5} {
		if _, err := DecodeDepthSlice(enc[:cut]); !errors.Is(err, ErrWire) {
			t.Fatalf("truncation to %d accepted: %v", cut, err)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[30] ^= 0x10
	if _, err := DecodeDepthSlice(bad); !errors.Is(err, ErrWire) {
		t.Fatalf("corrupt depth accepted: %v", err)
	}
}

// FuzzDecodeFrontier: the decoder must never panic and must reject any
// mutation that breaks the checksum — mirroring graph.ErrChecksum
// discipline: garbage is an error, never a silently wrong frontier.
func FuzzDecodeFrontier(f *testing.F) {
	f.Add(randomFrontier(1, 0, 0, 0, 100, 5, 2).Encode())
	f.Add(NewFrontier(2, 1, 1, 64, 64).Encode())
	f.Add(randomFrontier(3, 2, 0, 1000, 1300, 17, 1).Encode())
	f.Add([]byte{})
	f.Add([]byte(frontierMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrontier(data)
		if err != nil {
			if !errors.Is(err, ErrWire) {
				t.Fatalf("non-ErrWire error: %v", err)
			}
			return
		}
		// Accepted payloads must re-encode to the identical bytes
		// (canonical encoding) and carry a consistent vertex set.
		if !bytes.Equal(fr.Encode(), data) {
			t.Fatalf("accepted non-canonical encoding")
		}
		n := 0
		fr.ForEach(func(v uint32) {
			if v < fr.Lo || v >= fr.Hi {
				t.Fatalf("vertex %d outside [%d,%d)", v, fr.Lo, fr.Hi)
			}
			n++
		})
		if n != fr.Count() {
			t.Fatalf("ForEach/Count disagree: %d vs %d", n, fr.Count())
		}
	})
}

// FuzzDecodeExpandResponse: same discipline for the envelope decoder.
func FuzzDecodeExpandResponse(f *testing.F) {
	r := &ExpandResponse{Epoch: 4, Round: 2, Shard: 0, Claimed: 9}
	r.Out = append(r.Out, randomFrontier(4, 2, 1, 0, 64, 3, 2))
	f.Add(r.Encode())
	f.Add((&ExpandResponse{Epoch: 1}).Encode())
	f.Add([]byte(expandMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeExpandResponse(data)
		if err != nil {
			if !errors.Is(err, ErrWire) {
				t.Fatalf("non-ErrWire error: %v", err)
			}
			return
		}
		if !bytes.Equal(resp.Encode(), data) {
			t.Fatalf("accepted non-canonical encoding")
		}
	})
}

// FuzzDecodeDepthSlice: same discipline for the final-answer frame —
// never panic, reject everything malformed with ErrWire, and accept
// only the canonical encoding with a depth array matching the range.
func FuzzDecodeDepthSlice(f *testing.F) {
	d := &DepthSlice{Epoch: 3, Shard: 1, Lo: 50, Hi: 150, Depth: make([]int32, 100)}
	for i := range d.Depth {
		d.Depth[i] = int32(i%7) - 1
	}
	f.Add(d.Encode())
	f.Add((&DepthSlice{Epoch: 1, Shard: 0, Lo: 0, Hi: 0}).Encode())
	f.Add((&DepthSlice{Epoch: 2, Shard: 2, Lo: 64, Hi: 65, Depth: []int32{-1}}).Encode())
	f.Add([]byte{})
	f.Add([]byte(depthsMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := DecodeDepthSlice(data)
		if err != nil {
			if !errors.Is(err, ErrWire) {
				t.Fatalf("non-ErrWire error: %v", err)
			}
			return
		}
		if !bytes.Equal(ds.Encode(), data) {
			t.Fatalf("accepted non-canonical encoding")
		}
		if len(ds.Depth) != int(ds.Hi-ds.Lo) {
			t.Fatalf("depth array length %d for range [%d,%d)", len(ds.Depth), ds.Lo, ds.Hi)
		}
	})
}

// TestCheckpointRoundTrip: save/load is the identity, missing files are
// a clean fresh start, corrupt files are typed errors, and the cached
// response survives intact.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if c, err := LoadCheckpoint(dir); c != nil || err != nil {
		t.Fatalf("empty dir: got (%v, %v), want (nil, nil)", c, err)
	}
	resp := (&ExpandResponse{Epoch: 8, Round: 2, Shard: 1, Claimed: 40}).Encode()
	want := &Checkpoint{
		Epoch: 8, Round: 3, Source: 17, Lo: 100, Hi: 180,
		Depth: make([]int32, 80), Resp: resp,
	}
	for i := range want.Depth {
		want.Depth[i] = int32(i%5) - 1
	}
	if err := SaveCheckpoint(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip differs:\n got %+v\nwant %+v", got, want)
	}
	// Overwrite with a later round: load must see the newer state.
	want.Round = 4
	want.Resp = nil
	if err := SaveCheckpoint(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err = LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 4 || len(got.Resp) != 0 {
		t.Fatalf("overwrite not visible: %+v", got)
	}
	// Corruption: flip a byte, expect ErrCheckpoint (not a crash, not a
	// silently wrong load).
	raw, err := os.ReadFile(checkpointPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(checkpointPath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(dir); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("corrupt checkpoint: got %v, want ErrCheckpoint", err)
	}
	// Truncations must also be typed errors.
	for _, cut := range []int{0, 8, 20, len(raw) - 3} {
		if err := os.WriteFile(checkpointPath(dir), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(dir); !errors.Is(err, ErrCheckpoint) {
			t.Fatalf("truncated checkpoint (%d bytes): got %v, want ErrCheckpoint", cut, err)
		}
	}
}
