package cluster

import (
	"context"
	"reflect"
	"testing"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph/gen"
)

// TestFaultyCrashMatchesSerial is the headline recovery scenario: a node
// crash at step 2 with a 2-step restart, 5% message drop and a
// seed-fixed plan must still commit depths exactly equal to the serial
// reference, with nonzero recovery cost reported.
func TestFaultyCrashMatchesSerial(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(11, 8), 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bfs.RunSerial(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{
		Seed:     42,
		Crashes:  []Crash{{Node: 1, Step: 2, Downtime: 2}},
		DropProb: 0.05,
	}
	res, err := sim.RunFaulty(context.Background(), 0, plan)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if res.Depth[v] != ref.Depth(uint32(v)) {
			t.Fatalf("vertex %d depth %d, want %d", v, res.Depth[v], ref.Depth(uint32(v)))
		}
	}
	if res.Visited != ref.Visited {
		t.Errorf("visited %d, want %d", res.Visited, ref.Visited)
	}
	if res.EdgesTraversed != ref.EdgesTraversed {
		t.Errorf("edges %d, want %d (faults must not distort base work accounting)",
			res.EdgesTraversed, ref.EdgesTraversed)
	}
	rec := res.Recovery
	if rec.Crashes != 1 {
		t.Errorf("crashes %d, want 1", rec.Crashes)
	}
	if rec.ReplayedSteps == 0 {
		t.Error("crash at step 2 produced no replayed steps")
	}
	if rec.StallSteps != 2 {
		t.Errorf("stall steps %d, want 2 (the crash's downtime)", rec.StallSteps)
	}
	if rec.ReshippedEntries == 0 {
		t.Error("recovery re-shipped no entries")
	}
	if rec.CheckpointBytes == 0 || rec.RestoredBytes == 0 {
		t.Errorf("checkpoint/restore volume not reported: ck=%d restored=%d",
			rec.CheckpointBytes, rec.RestoredBytes)
	}
	if rec.DroppedBatches == 0 || rec.RetriedBatches == 0 {
		t.Errorf("5%% drop over a deep RMAT produced no retransmissions: dropped=%d retried=%d",
			rec.DroppedBatches, rec.RetriedBatches)
	}
	if rec.Backoff == 0 {
		t.Error("retransmissions accrued no backoff")
	}
}

// TestFaultyMatchesFaultFree: the base traffic accounting of a faulted
// run (committed messages, per-step series) must equal the fault-free
// run's — retries and replays are reported separately.
func TestFaultyMatchesFaultFree(t *testing.T) {
	g, err := gen.UniformRandom(4000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := sim.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{
		Seed:     7,
		Crashes:  []Crash{{Node: 3, Step: 1, Downtime: 1}, {Node: 0, Step: 3, Downtime: 4}},
		DropProb: 0.10,
		DupProb:  0.05,
	}
	faulty, err := sim.RunFaulty(context.Background(), 0, plan)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.LocalMsgs != clean.LocalMsgs || faulty.RemoteMsgs != clean.RemoteMsgs {
		t.Errorf("committed messages local=%d remote=%d, fault-free local=%d remote=%d",
			faulty.LocalMsgs, faulty.RemoteMsgs, clean.LocalMsgs, clean.RemoteMsgs)
	}
	if !reflect.DeepEqual(faulty.PerStepRemote, clean.PerStepRemote) {
		t.Errorf("per-step remote series diverged: %v vs %v", faulty.PerStepRemote, clean.PerStepRemote)
	}
	if !reflect.DeepEqual(faulty.Depth, clean.Depth) {
		t.Error("faulted depths diverged from fault-free depths")
	}
	if faulty.Recovery.Crashes != 2 {
		t.Errorf("crashes %d, want 2", faulty.Recovery.Crashes)
	}
	if faulty.Recovery.DuplicatedBatches == 0 {
		t.Error("5%% duplication produced no duplicated batches")
	}
}

// TestFaultDeterminism: the same plan seed must yield byte-identical
// results — depths, base accounting and every recovery metric — across
// repeated runs, despite the per-node goroutines.
func TestFaultDeterminism(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(10, 8), 5)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bfs.RunSerial(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 99, 31337} {
		plan := &FaultPlan{
			Seed:     seed,
			Crashes:  []Crash{{Node: 2, Step: 2, Downtime: 1}},
			DropProb: 0.08,
			DupProb:  0.04,
		}
		sim, err := NewSim(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		first, err := sim.RunFaulty(context.Background(), 0, plan)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 3; run++ {
			again, err := sim.RunFaulty(context.Background(), 0, plan)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again.Recovery, first.Recovery) {
				t.Fatalf("seed %d run %d: recovery metrics diverged:\n%+v\n%+v",
					seed, run, again.Recovery, first.Recovery)
			}
			if !reflect.DeepEqual(again, first) {
				t.Fatalf("seed %d run %d: results diverged", seed, run)
			}
		}
		for v := 0; v < g.NumVertices(); v++ {
			if first.Depth[v] != ref.Depth(uint32(v)) {
				t.Fatalf("seed %d: vertex %d depth %d, want %d",
					seed, v, first.Depth[v], ref.Depth(uint32(v)))
			}
		}
	}
}

// TestFaultyDeliveryExhaustion: when every delivery attempt of a batch
// drops, the traversal must return a descriptive error — never commit a
// partial step as an answer.
func TestFaultyDeliveryExhaustion(t *testing.T) {
	g, err := gen.UniformRandom(2000, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{Seed: 5, DropProb: 0.9, MaxAttempts: 2}
	if _, err := sim.RunFaulty(context.Background(), 0, plan); err == nil {
		t.Fatal("90% drop with 2 attempts completed; want a delivery error")
	}
}

// TestFaultySlowNode: an injected straggler slows the run down but
// changes nothing about the committed result.
func TestFaultySlowNode(t *testing.T) {
	g, err := gen.UniformRandom(1000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := sim.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	slow, err := sim.RunFaulty(context.Background(), 0,
		&FaultPlan{Slow: []SlowNode{{Node: 0, Delay: 5 * time.Millisecond}}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(slow.Depth, clean.Depth) {
		t.Error("straggler changed depths")
	}
	if elapsed := time.Since(start); elapsed < time.Duration(clean.Steps)*5*time.Millisecond {
		t.Errorf("straggler delay not applied: %d steps in %v", clean.Steps, elapsed)
	}
}

// TestFaultPlanValidation rejects malformed plans up front.
func TestFaultPlanValidation(t *testing.T) {
	g, err := gen.UniformRandom(100, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, plan := range map[string]*FaultPlan{
		"drop=1":         {DropProb: 1},
		"negative dup":   {DupProb: -0.1},
		"crash node oob": {Crashes: []Crash{{Node: 2, Step: 1}}},
		"crash step 0":   {Crashes: []Crash{{Node: 0, Step: 0}}},
		"negative down":  {Crashes: []Crash{{Node: 0, Step: 1, Downtime: -1}}},
		"slow node oob":  {Slow: []SlowNode{{Node: 5}}},
	} {
		if _, err := sim.RunFaulty(context.Background(), 0, plan); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestFaultyCanceledContext: cancellation aborts between steps with
// ctx.Err(), and an already-canceled context never starts.
func TestFaultyCanceledContext(t *testing.T) {
	g, err := gen.UniformRandom(2000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.RunFaulty(ctx, 0, nil); err != context.Canceled {
		t.Fatalf("canceled context: got %v, want context.Canceled", err)
	}
	// A live run still completes under a generous deadline.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if _, err := sim.RunFaulty(ctx2, 0, nil); err != nil {
		t.Fatalf("run under deadline: %v", err)
	}
}
