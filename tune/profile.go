// Package tune closes the loop the paper opened: instead of only
// predicting BFS performance, the analytical model (model package,
// Eqns IV.1–IV.4) picks the engine configuration per graph. Calibrate
// runs a short calibration pass at graph-load time — degree/skew stats
// plus a few micro-probe BFS levels from sampled sources — and feeds
// the measured shape to model.SelectVIS, model.PredictDirections and
// model.PredictHybrid to choose every knob the engine exposes: the
// visited-structure variant, the direction-optimizing α/β (and whether
// hybrid pays at all), prefetch distance, batched binning, the MS-BFS
// lane width, and heap-vs-mmap residency. The result is a Profile: a
// small, JSON-serializable value the serve package applies to engine
// pools and batching schedules and journals in its durable manifest so
// restarts keep the tuned configuration without re-calibrating.
package tune

import (
	"fmt"

	"fastbfs/bfs"
)

// Profile provenance values (Source field).
const (
	// SourceDefault marks a profile whose knobs are the engine defaults:
	// the graph was too small or degenerate for calibration to deviate
	// safely (tuning overhead would dwarf any win, and timing noise
	// would dominate the model's signal).
	SourceDefault = "default"
	// SourceCalibrated marks a profile chosen by a fresh calibration
	// pass against the analytical model.
	SourceCalibrated = "calibrated"
	// SourceJournal marks a calibrated profile restored from the durable
	// manifest instead of re-calibrated — the kill -9 restart path.
	SourceJournal = "journal"
)

// VIS kind names used in profiles (stable JSON values, not the model's
// Figure 4 legend strings).
const (
	VISNameNone        = "none"
	VISNameAtomicBit   = "atomic-bit"
	VISNameByte        = "byte"
	VISNameBit         = "bit"
	VISNamePartitioned = "partitioned"
)

// Profile is one graph's tuned engine configuration plus the calibration
// evidence behind it. The zero value is NOT meaningful; build profiles
// with Calibrate or Defaults.
type Profile struct {
	// The knobs Apply writes into bfs.Options.
	Hybrid       bool    `json:"hybrid"`
	Alpha        float64 `json:"alpha,omitempty"` // 0 = engine default (15)
	Beta         float64 `json:"beta,omitempty"`  // 0 = engine default (18)
	VIS          string  `json:"vis"`
	PrefetchDist int     `json:"prefetch_dist"`
	BatchBinning bool    `json:"batch_binning"`

	// BatchWidth caps the sources per MS-BFS sweep for this graph: each
	// lane carries an 8-byte-per-vertex depth/parent array, so full
	// 64-lane sweeps on huge graphs would allocate more transient memory
	// than the graph itself. Serving schedulers clamp their round size
	// to it. 0 means no per-graph cap.
	BatchWidth int `json:"batch_width,omitempty"`

	// MmapRecommended reports that the graph's payload is large enough
	// that read-only file mapping beats heap decode (warm restarts
	// bounded by page cache, no transient decode copy). Advisory: the
	// residency of an already-loaded graph is never changed in place.
	MmapRecommended bool `json:"mmap_recommended,omitempty"`

	// Provenance.
	Source string `json:"source"`
	// PredictedMTEPS is the model's throughput for the chosen knobs;
	// DefaultPredictedMTEPS the same model on the default configuration.
	// The chosen knobs always satisfy Predicted >= DefaultPredicted —
	// the default configuration is in every candidate set.
	PredictedMTEPS        float64 `json:"predicted_mteps,omitempty"`
	DefaultPredictedMTEPS float64 `json:"default_predicted_mteps,omitempty"`
	CalibrationMS         float64 `json:"calibration_ms,omitempty"`

	// Calibration inputs: graph shape and probe coverage.
	Vertices      int     `json:"vertices,omitempty"`
	Edges         int64   `json:"edges,omitempty"`
	MeanDegree    float64 `json:"mean_degree,omitempty"`
	DegreeCV      float64 `json:"degree_cv,omitempty"` // stddev/mean skew
	ProbeDepth    int     `json:"probe_depth,omitempty"`
	ProbeComplete bool    `json:"probe_complete,omitempty"`
}

// Defaults returns a profile whose knobs mirror bfs.Default: the paper's
// best fixed single-socket configuration. Source is SourceDefault.
func Defaults() *Profile {
	return &Profile{
		VIS:          VISNamePartitioned,
		PrefetchDist: 8,
		BatchBinning: true,
		Source:       SourceDefault,
	}
}

// Apply overlays the profile's knobs on base and returns the result.
// Identity fields — Workers, Sockets, cache geometry, Symmetric,
// Instrument, StepHook — pass through untouched: the profile tunes how
// a traversal runs, not what it runs on. A nil profile is the identity.
func (p *Profile) Apply(base bfs.Options) bfs.Options {
	if p == nil {
		return base
	}
	o := base
	if k, ok := VISKindFromName(p.VIS); ok {
		o.VIS = k
	}
	o.PrefetchDist = p.PrefetchDist
	o.BatchBinning = p.BatchBinning
	o.Hybrid = p.Hybrid
	o.Alpha = p.Alpha
	o.Beta = p.Beta
	return o
}

// IsDefault reports whether the profile's knobs equal the engine
// defaults (whatever its provenance says about how they were chosen).
func (p *Profile) IsDefault() bool {
	if p == nil {
		return true
	}
	d := Defaults()
	return p.Hybrid == d.Hybrid && p.Alpha == d.Alpha && p.Beta == d.Beta &&
		p.VIS == d.VIS && p.PrefetchDist == d.PrefetchDist &&
		p.BatchBinning == d.BatchBinning && p.BatchWidth == d.BatchWidth
}

// Summary renders the chosen knobs in one log-friendly line.
func (p *Profile) Summary() string {
	if p == nil {
		return "defaults"
	}
	hy := "topdown"
	if p.Hybrid {
		a, b := p.Alpha, p.Beta
		if a == 0 {
			a = bfs.DefaultAlpha
		}
		if b == 0 {
			b = bfs.DefaultBeta
		}
		hy = fmt.Sprintf("hybrid(α=%g,β=%g)", a, b)
	}
	s := fmt.Sprintf("%s vis=%s prefetch=%d binning=%v", hy, p.VIS, p.PrefetchDist, p.BatchBinning)
	if p.BatchWidth > 0 {
		s += fmt.Sprintf(" lanes=%d", p.BatchWidth)
	}
	if p.PredictedMTEPS > 0 {
		s += fmt.Sprintf(" predicted=%.0fMTEPS", p.PredictedMTEPS)
	}
	return s
}

// VISKindName returns the stable profile name of a bfs VIS kind.
func VISKindName(k bfs.VISKind) string {
	switch k {
	case bfs.VISNone:
		return VISNameNone
	case bfs.VISAtomicBit:
		return VISNameAtomicBit
	case bfs.VISByte:
		return VISNameByte
	case bfs.VISBit:
		return VISNameBit
	case bfs.VISPartitioned:
		return VISNamePartitioned
	}
	return ""
}

// VISKindFromName parses a profile VIS name; unknown names report false
// so a profile journaled by a newer build degrades to the base option
// instead of corrupting it.
func VISKindFromName(name string) (bfs.VISKind, bool) {
	switch name {
	case VISNameNone:
		return bfs.VISNone, true
	case VISNameAtomicBit:
		return bfs.VISAtomicBit, true
	case VISNameByte:
		return bfs.VISByte, true
	case VISNameBit:
		return bfs.VISBit, true
	case VISNamePartitioned:
		return bfs.VISPartitioned, true
	}
	return 0, false
}
