package tune

import (
	"encoding/json"
	"reflect"
	"testing"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
)

// knobs projects a profile onto just its engine knobs, for equality
// against Defaults() regardless of provenance fields.
func knobs(p *Profile) Profile {
	return Profile{
		Hybrid: p.Hybrid, Alpha: p.Alpha, Beta: p.Beta,
		VIS: p.VIS, PrefetchDist: p.PrefetchDist, BatchBinning: p.BatchBinning,
	}
}

// mustGraph fails the test on a generator error.
func mustGraph(t *testing.T) func(*graph.Graph, error) *graph.Graph {
	return func(g *graph.Graph, err error) *graph.Graph {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}

// starGraph builds a symmetric hub-and-spokes star on n vertices.
func starGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	degrees := make([]int32, n)
	degrees[0] = int32(n - 1)
	for v := 1; v < n; v++ {
		degrees[v] = 1
	}
	g, err := graph.FromDegrees(degrees, func(v uint32, adj []uint32) {
		if v == 0 {
			for i := range adj {
				adj[i] = uint32(i + 1)
			}
			return
		}
		adj[0] = 0
	})
	return mustGraph(t)(g, err)
}

// forestGraph builds disjoint bidirectional chains (disconnected).
func forestGraph(t *testing.T, chains, per int) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	for c := 0; c < chains; c++ {
		base := c * per
		for i := 0; i < per-1; i++ {
			u, v := uint32(base+i), uint32(base+i+1)
			edges = append(edges, graph.Edge{U: u, V: v}, graph.Edge{U: v, V: u})
		}
	}
	g, err := graph.FromEdges(chains*per, edges)
	return mustGraph(t)(g, err)
}

// TestCornerCasesStayOnDefaults is the >5%-regression guarantee for the
// degenerate suite, made timing-free: on graphs too small or too
// pathological for the model's signal to beat noise, the tuner must
// return EXACTLY the default knobs (zero possible regression) and must
// never panic.
func TestCornerCasesStayOnDefaults(t *testing.T) {
	empty := mustGraph(t)(graph.FromEdges(0, nil))
	single := mustGraph(t)(graph.FromEdges(1, nil))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"nil", nil},
		{"empty", empty},
		{"single-vertex", single},
		{"star", starGraph(t, 512)},
		{"disconnected-forest", forestGraph(t, 16, 32)},
	}
	want := knobs(Defaults())
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prof := Calibrate(tc.g, Options{})
			if prof == nil {
				t.Fatal("Calibrate returned nil")
			}
			if got := knobs(prof); got != want {
				t.Errorf("knobs deviated from defaults: got %+v want %+v", got, want)
			}
			if prof.Source == SourceCalibrated && tc.g != nil && tc.g.NumVertices() < MinVertices {
				t.Errorf("tiny graph reported as calibrated")
			}
		})
	}
}

// TestCalibrateDeterministic pins that two passes over the same graph
// agree — calibration must not depend on timing or randomness, or the
// journaled profile would diverge from a recalibration.
func TestCalibrateDeterministic(t *testing.T) {
	g := mustGraph(t)(gen.RMAT(gen.RMATParams{A: 0.57, B: 0.19, C: 0.19, Scale: 12, EdgeFactor: 16}, 7))
	a := Calibrate(g, Options{})
	b := Calibrate(g, Options{})
	a.CalibrationMS, b.CalibrationMS = 0, 0 // the only wall-clock field
	if !reflect.DeepEqual(a, b) {
		t.Errorf("calibration not deterministic:\n a=%+v\n b=%+v", a, b)
	}
}

// TestProfileJSONRoundTrip pins that a journaled profile restores all
// knob and provenance fields.
func TestProfileJSONRoundTrip(t *testing.T) {
	g := mustGraph(t)(gen.RMAT(gen.RMATParams{A: 0.57, B: 0.19, C: 0.19, Scale: 12, EdgeFactor: 16}, 7))
	prof := Calibrate(g, Options{})
	blob, err := json.Marshal(prof)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*prof, back) {
		t.Errorf("JSON round trip changed the profile:\n in=%+v\nout=%+v", *prof, back)
	}
}

// TestApplyPreservesIdentityFields pins the Apply contract: the profile
// tunes how a traversal runs, never what it runs on.
func TestApplyPreservesIdentityFields(t *testing.T) {
	base := bfs.Default(2)
	base.Workers = 7
	base.CacheBytes = 1 << 16
	base.L2Bytes = 1 << 12
	base.Symmetric = true
	base.Instrument = true

	prof := &Profile{Hybrid: true, Alpha: 30, VIS: VISNameByte, PrefetchDist: 0}
	got := prof.Apply(base)
	if got.Workers != 7 || got.Sockets != 2 || got.CacheBytes != 1<<16 ||
		got.L2Bytes != 1<<12 || !got.Symmetric || !got.Instrument {
		t.Errorf("Apply clobbered identity fields: %+v", got)
	}
	if !got.Hybrid || got.Alpha != 30 || got.VIS != bfs.VISByte || got.PrefetchDist != 0 {
		t.Errorf("Apply did not set knobs: %+v", got)
	}
	if nilApplied := (*Profile)(nil).Apply(base); !reflect.DeepEqual(nilApplied, base) {
		t.Errorf("nil profile must be the identity")
	}
	if unknownVIS := (&Profile{VIS: "from-the-future"}).Apply(base); unknownVIS.VIS != base.VIS {
		t.Errorf("unknown VIS name must keep the base VIS, got %v", unknownVIS.VIS)
	}
}

// TestVISNameMapping pins the name<->kind bijection.
func TestVISNameMapping(t *testing.T) {
	for _, k := range []bfs.VISKind{bfs.VISNone, bfs.VISAtomicBit, bfs.VISByte, bfs.VISBit, bfs.VISPartitioned} {
		name := VISKindName(k)
		if name == "" {
			t.Fatalf("no name for kind %v", k)
		}
		back, ok := VISKindFromName(name)
		if !ok || back != k {
			t.Errorf("VIS mapping not a bijection: %v -> %q -> %v (%v)", k, name, back, ok)
		}
	}
	if _, ok := VISKindFromName("nope"); ok {
		t.Error("unknown VIS name parsed")
	}
}

// TestCalibrateRMATPicksHybridAndStaysExact is the tuner's end-to-end
// check on the workload it exists for: a scale-14 R-MAT must calibrate
// (not bail to defaults), choose the direction-optimizing hybrid (the
// measured ~4-5x win on this shape), and — the part that matters — an
// engine built from the profile must produce depths identical to the
// serial reference. Tuning may only change speed, never answers.
func TestCalibrateRMATPicksHybridAndStaysExact(t *testing.T) {
	g := mustGraph(t)(gen.RMAT(gen.RMATParams{A: 0.57, B: 0.19, C: 0.19, Scale: 14, EdgeFactor: 16}, 20120521+42))
	prof := Calibrate(g, Options{})
	if prof.Source != SourceCalibrated {
		t.Fatalf("scale-14 R-MAT should calibrate, got source %q", prof.Source)
	}
	if !prof.Hybrid {
		t.Errorf("model should enable hybrid on the R-MAT shape: %s", prof.Summary())
	}
	if prof.PredictedMTEPS < prof.DefaultPredictedMTEPS {
		t.Errorf("chosen profile predicts worse than default: %.1f < %.1f",
			prof.PredictedMTEPS, prof.DefaultPredictedMTEPS)
	}
	if prof.BatchWidth < 1 || prof.BatchWidth > 64 {
		t.Errorf("batch width out of range: %d", prof.BatchWidth)
	}

	opts := prof.Apply(bfs.Default(1))
	e, err := bfs.NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	source := uint32(0)
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(uint32(v)) > 64 {
			source = uint32(v)
			break
		}
	}
	res, err := e.RunContext(t.Context(), source)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bfs.RunSerial(g, source)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if got, want := res.Depth(uint32(v)), ref.Depth(uint32(v)); got != want {
			t.Fatalf("tuned engine depth mismatch at v=%d: got %d want %d", v, got, want)
		}
	}
}

// TestBatchWidthBudget pins the lane clamp: a graph large enough that 64
// lanes of 8-byte state would blow the budget gets a narrower width.
func TestBatchWidthBudget(t *testing.T) {
	opt := Options{LaneMemBudget: 1 << 20, MaxBatch: 64} // 1 MiB budget
	if w := laneWidth(1<<20, opt.withDefaults()); w != 1 {
		// 8 bytes/vertex/lane * 1M vertices = 8 MiB/lane > 1 MiB budget
		t.Errorf("laneWidth = %d, want 1", w)
	}
	if w := laneWidth(1024, opt.withDefaults()); w != 64 {
		t.Errorf("laneWidth small graph = %d, want 64", w)
	}
}
