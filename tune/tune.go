package tune

import (
	"time"

	"fastbfs/graph"
	"fastbfs/internal/bitmap"
	"fastbfs/model"
)

// Calibration thresholds. Below them Calibrate returns pure defaults:
// on tiny or degenerate graphs (empty, single-vertex, a small star, a
// disconnected forest of twigs) every configuration finishes in
// microseconds, timing noise dwarfs any model signal, and the safest
// profile is exactly the paper's fixed best configuration.
const (
	// MinVertices and MinEdges gate calibration.
	MinVertices = 1024
	MinEdges    = 32 << 10

	// ExhaustiveProbeEdges is the graph size up to which the probe runs
	// the BFS to completion (an exact per-level profile costs under ~20ms
	// serial); larger graphs get ProbeLevels levels plus extrapolation.
	ExhaustiveProbeEdges = 4 << 20

	// HybridMargin is the predicted-MTEPS factor by which the hybrid
	// blend must beat the top-down prediction before the tuner enables
	// direction-optimizing traversal (which also costs a transpose on
	// directed graphs).
	HybridMargin = 1.1

	// DefaultLaneMemBudget bounds the transient memory of one MS-BFS
	// sweep (8 bytes per vertex per lane); BatchWidth is clamped so a
	// full-width sweep stays under it.
	DefaultLaneMemBudget = 1 << 30

	// DefaultMmapMinBytes is the graph payload beyond which read-only
	// file mapping is recommended over heap decode.
	DefaultMmapMinBytes = 256 << 20

	// maxProfileLevels bounds the extrapolated per-level profile.
	maxProfileLevels = 128
)

// Options parameterizes Calibrate. The zero value calibrates for the
// engine's own defaults: one simulated socket, the paper's 8 MiB LLC.
type Options struct {
	// Sockets is the engine's simulated socket count (default 1).
	Sockets int
	// CacheBytes is the LLC budget driving VIS partitioning and the
	// model's residency terms; 0 means the engine default (8 MiB).
	CacheBytes int64
	// L2Bytes is the per-core L2; 0 means the engine default (256 KiB).
	L2Bytes int64
	// ProbeSources is how many sampled sources to probe (default 3).
	ProbeSources int
	// ProbeLevels bounds each probe BFS on large graphs (default 3).
	ProbeLevels int
	// MaxBatch caps BatchWidth (default 64, the MS-BFS lane count).
	MaxBatch int
	// LaneMemBudget and MmapMinBytes override the package defaults.
	LaneMemBudget int64
	MmapMinBytes  int64
}

func (o Options) withDefaults() Options {
	if o.Sockets <= 0 {
		o.Sockets = 1
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 8 << 20
	}
	if o.L2Bytes <= 0 {
		o.L2Bytes = 256 << 10
	}
	if o.ProbeSources <= 0 {
		o.ProbeSources = 3
	}
	if o.ProbeLevels <= 0 {
		o.ProbeLevels = 3
	}
	if o.MaxBatch <= 0 || o.MaxBatch > 64 {
		o.MaxBatch = 64
	}
	if o.LaneMemBudget <= 0 {
		o.LaneMemBudget = DefaultLaneMemBudget
	}
	if o.MmapMinBytes <= 0 {
		o.MmapMinBytes = DefaultMmapMinBytes
	}
	return o
}

// platform returns the model platform the decisions are priced on: the
// paper's calibrated Nehalem with the engine's actual cache geometry
// substituted, so the model's residency crossovers (VIS partitions,
// depth-array overflow, adjacency fit) land where the engine's will.
// The paper platform is used deliberately instead of host measurement:
// every choice below is a RATIO of two predictions on the same machine
// constants, which makes calibration deterministic and host-independent.
func (o Options) platform() model.Platform {
	p := model.NehalemX5570()
	p.Sockets = o.Sockets
	p.LLCBytes = o.CacheBytes
	p.L2Bytes = o.L2Bytes
	return p
}

// Calibrate runs the calibration pass and returns the tuned profile.
// It never returns nil and never panics on degenerate input: graphs too
// small for the model's signal to beat timing noise get the engine
// defaults verbatim (Source == SourceDefault). The pass costs one
// degree scan plus a few bounded serial BFS probes — microseconds to
// low milliseconds, paid once per graph load.
func Calibrate(g *graph.Graph, opt Options) *Profile {
	opt = opt.withDefaults()
	start := time.Now()
	prof := Defaults()
	if g == nil {
		return prof
	}
	st := graph.ComputeStats(g)
	prof.Vertices = st.Vertices
	prof.Edges = st.Edges
	prof.MeanDegree = st.MeanDegree
	if st.MeanDegree > 0 {
		prof.DegreeCV = st.DegreeStdDev / st.MeanDegree
	}
	payload := 8*int64(st.Vertices+1) + 4*st.Edges
	prof.MmapRecommended = payload >= opt.MmapMinBytes
	prof.BatchWidth = laneWidth(st.Vertices, opt)
	if st.Vertices < MinVertices || st.Edges < MinEdges {
		prof.CalibrationMS = float64(time.Since(start)) / 1e6
		return prof
	}

	// Micro-probe: per-level frontier/edge profile from sampled sources.
	probe := bestProbe(g, st, opt)
	if probe.Visited <= 1 || probe.EdgesSeen == 0 {
		// Every sampled source dead-ends immediately (e.g. a forest of
		// isolated twigs): nothing to model, serve on defaults.
		prof.CalibrationMS = float64(time.Since(start)) / 1e6
		return prof
	}
	frontier, edges := extendProfile(probe, st)
	prof.ProbeDepth = len(probe.Frontier)
	prof.ProbeComplete = probe.Complete

	// Model workload with the engine's own cache geometry (the nVIS and
	// nPBV the engine would derive from these options).
	nVIS := bitmap.Partitions(st.Vertices, opt.CacheBytes)
	w := model.Workload{
		Vertices: int64(st.Vertices),
		Visited:  sum(frontier),
		Edges:    sum(edges),
		Depth:    len(frontier),
		NVIS:     nVIS,
		NPBV:     opt.Sockets << uint(bitmap.Log2(bitmap.NextPow2(nVIS))),
	}
	p := opt.platform()

	// Knob 1 — VIS representation: argmin predicted cycles/edge across
	// the atomic-free Figure 4 family.
	defPred, derr := model.PredictVIS(p, w, opt.Sockets, model.VariantPartitioned)
	variant, bestPred, err := model.SelectVIS(p, w, opt.Sockets)
	if err != nil || derr != nil {
		prof.CalibrationMS = float64(time.Since(start)) / 1e6
		return prof
	}
	prof.VIS = visName(variant)
	prof.DefaultPredictedMTEPS = defPred.MTEPS
	prof.PredictedMTEPS = bestPred.MTEPS

	// Knob 2 — hybrid and α/β: replay the direction rule over the
	// profile for a small candidate grid and price each split with
	// PredictHybrid; enable only on a clear predicted win over the
	// chosen top-down configuration.
	if a, b, hMTEPS, ok := pickHybrid(p, w, frontier, edges, int64(st.Vertices), st.Edges, opt.Sockets); ok &&
		hMTEPS > HybridMargin*bestPred.MTEPS {
		prof.Hybrid = true
		prof.Alpha, prof.Beta = a, b
		prof.PredictedMTEPS = hMTEPS
	}

	// Knob 3 — prefetch distance: software prefetch exists to hide DRAM
	// latency on adjacency reads (§III-B); when the whole adjacency fits
	// the model's LLC residency budget (N_S·|C|/2) there is no DRAM
	// latency to hide and the prefetch instructions are pure overhead.
	adjBytes := float64(8*int64(st.Vertices+1) + 4*st.Edges)
	if adjBytes <= float64(opt.Sockets)*float64(opt.CacheBytes)/2 {
		prof.PrefetchDist = 0
	}

	// Knob 4 — batched binning amortizes per-entry bin computation over
	// blocks; levels averaging fewer than a cache line of frontier
	// entries never fill a block and pay setup for nothing.
	if w.Depth > 0 && w.Visited/int64(w.Depth) < 64 {
		prof.BatchBinning = false
	}

	prof.Source = SourceCalibrated
	prof.CalibrationMS = float64(time.Since(start)) / 1e6
	return prof
}

// bestProbe probes up to opt.ProbeSources sampled above-average-degree
// sources and returns the probe that visited the most vertices — the
// one most representative of queries into the giant component. Small
// graphs are probed to completion (exact profile); large ones for
// ProbeLevels levels.
func bestProbe(g *graph.Graph, st graph.Stats, opt Options) graph.Probe {
	levels := opt.ProbeLevels
	if st.Edges <= ExhaustiveProbeEdges {
		levels = 0 // run to completion: exact per-level profile
	}
	var best graph.Probe
	for _, src := range probeSources(g, st, opt.ProbeSources) {
		p := graph.ProbeBFS(g, src, levels)
		if p.Visited > best.Visited {
			best = p
		}
	}
	return best
}

// probeSources samples up to k deterministic sources with at least
// average degree, falling back to any non-isolated vertex.
func probeSources(g *graph.Graph, st graph.Stats, k int) []uint32 {
	n := st.Vertices
	if n == 0 {
		return nil
	}
	srcs := make([]uint32, 0, k)
	step := n/(k*8) + 1
	for v := 0; v < n && len(srcs) < k; v += step {
		if float64(g.Degree(uint32(v))) >= st.MeanDegree {
			srcs = append(srcs, uint32(v))
		}
	}
	for v := 0; v < n && len(srcs) < k; v++ {
		if g.Degree(uint32(v)) > 0 {
			srcs = append(srcs, uint32(v))
		}
	}
	return srcs
}

// extendProfile turns a (possibly level-bounded) probe into a full-depth
// per-level profile for the model replay. A complete probe is used
// verbatim. A bounded one is extrapolated: the frontier keeps growing at
// the last observed branching factor until the estimated reachable set
// (the non-isolated vertices) is covered, with the remaining edges
// spread proportionally — the geometric-growth-then-absorption shape of
// low-diameter graphs, which is exactly the class big enough to need a
// bounded probe.
func extendProfile(p graph.Probe, st graph.Stats) (frontier, edges []int64) {
	frontier = append([]int64(nil), p.Frontier...)
	edges = append([]int64(nil), p.Edges...)
	if p.Complete || len(frontier) == 0 {
		return frontier, edges
	}
	reach := int64(st.Vertices - st.Isolated)
	remV := reach - p.Visited
	remE := st.Edges - p.EdgesSeen
	if remV <= 0 || remE <= 0 {
		return frontier, edges
	}
	growth := 2.0
	if n := len(frontier); n >= 2 && frontier[n-2] > 0 {
		if r := float64(frontier[n-1]) / float64(frontier[n-2]); r > growth {
			growth = r
		}
	}
	rho := float64(remE) / float64(remV)
	if rho < 1 {
		rho = 1
	}
	f := frontier[len(frontier)-1]
	for remV > 0 && len(frontier) < maxProfileLevels {
		next := int64(float64(f) * growth)
		if next < 1 {
			next = 1
		}
		if next > remV {
			next = remV
		}
		e := int64(float64(next) * rho)
		if e > remE {
			e = remE
		}
		if e < next {
			e = next
		}
		frontier = append(frontier, next)
		edges = append(edges, e)
		remV -= next
		remE -= e
		f = next
	}
	if remE > 0 && len(edges) > 0 {
		edges[len(edges)-1] += remE
	}
	return frontier, edges
}

// hybridCandidates is the α/β grid the tuner prices. 0 selects the
// engine default (α=15, β=18); the others bracket it: α=8 switches
// later (top-down runs longer), α=30 earlier, β=24 returns to top-down
// later on the tail.
var hybridCandidates = [][2]float64{{0, 0}, {8, 0}, {30, 0}, {0, 24}}

// pickHybrid replays the α/β direction rule over the per-level profile
// for each candidate, splits the profile into the implied top-down and
// bottom-up workloads, and returns the candidate with the best
// predicted throughput. ok is false when no candidate produces a
// priceable hybrid split (the rule never switches).
//
// The returned MTEPS uses COMPARABLE accounting: PredictHybrid's MTEPS
// is per edge the hybrid EXAMINES, but the hybrid's whole win is
// examining fewer edges, so comparing that number against the top-down
// prediction would hide the speedup entirely. Each candidate's total
// predicted cycles (blended cycles/edge × its own examined edges) is
// re-divided by the FULL top-down edge count — the same numerator the
// top-down prediction uses — making the two directly comparable.
func pickHybrid(p model.Platform, w model.Workload, frontier, edges []int64, vertices, totalEdges int64, sockets int) (alpha, beta, mteps float64, ok bool) {
	for _, cand := range hybridCandidates {
		dirs := model.PredictDirections(vertices, totalEdges, frontier, edges, cand[0], cand[1])
		td, bu := splitProfile(w, frontier, edges, dirs)
		if bu.Levels == 0 || bu.Claimed == 0 || bu.Edges == 0 || bu.Scanned == 0 {
			continue
		}
		hp, err := model.PredictHybrid(p, td, bu, sockets)
		if err != nil || hp.CyclesPerEdge <= 0 {
			continue
		}
		cycles := hp.CyclesPerEdge * float64(td.Edges+bu.Edges)
		comparable := p.FreqGHz * 1e9 * float64(w.Edges) / cycles / 1e6
		if !ok || comparable > mteps {
			alpha, beta, mteps, ok = cand[0], cand[1], comparable, true
		}
	}
	return alpha, beta, mteps, ok
}

// splitProfile separates the per-level profile into the model's two
// workloads under a direction assignment. Bottom-up edge counts are
// re-estimated with the early-exit bound — each scanned vertex tests a
// couple of in-neighbors before finding a frontier parent (that bound,
// not the full in-degree, is the hybrid win) — and capped by the
// top-down volume of the same level.
func splitProfile(base model.Workload, frontier, edges []int64, dirs []bool) (model.Workload, model.BUWorkload) {
	td := base
	td.Visited, td.Edges, td.Depth = 1, 0, 0
	bu := model.BUWorkload{Vertices: base.Vertices}
	visited := int64(0)
	for l := range frontier {
		if l < len(dirs) && dirs[l] {
			var claimed int64
			if l+1 < len(frontier) {
				claimed = frontier[l+1]
			}
			scanned := base.Vertices - visited - frontier[l]
			if scanned < 1 {
				scanned = 1
			}
			est := scanned + 2*claimed
			if est > edges[l] && edges[l] > 0 {
				est = edges[l]
			}
			bu.Levels++
			bu.Claimed += claimed
			bu.Scanned += scanned
			bu.Edges += est
		} else {
			td.Depth++
			td.Edges += edges[l]
			td.Visited += frontier[l]
		}
		visited += frontier[l]
	}
	if td.Depth == 0 {
		td.Depth = 1
	}
	if td.Edges == 0 {
		td.Edges = 1
	}
	return td, bu
}

// laneWidth clamps the MS-BFS batch width so one sweep's per-lane
// depth/parent arrays (8 bytes per vertex per lane) stay under the lane
// memory budget.
func laneWidth(vertices int, opt Options) int {
	if vertices <= 0 {
		return opt.MaxBatch
	}
	w := int(opt.LaneMemBudget / (8 * int64(vertices)))
	if w > opt.MaxBatch {
		w = opt.MaxBatch
	}
	if w < 1 {
		w = 1
	}
	return w
}

// visName maps a model Figure 4 variant to the profile's VIS name.
func visName(v model.VISVariant) string {
	switch v {
	case model.VariantNone:
		return VISNameNone
	case model.VariantAtomicBit:
		return VISNameAtomicBit
	case model.VariantByte:
		return VISNameByte
	case model.VariantBit:
		return VISNameBit
	}
	return VISNamePartitioned
}

func sum(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}
