package graph

import (
	"fmt"
	"math"
)

// Stats summarizes the structure of a graph. Depth statistics refer to a
// BFS from vertex 0 (or the first non-isolated vertex) and approximate
// the paper's "Depth" column of Table II.
type Stats struct {
	Vertices     int
	Edges        int64
	MinDegree    int
	MaxDegree    int
	MeanDegree   float64
	DegreeStdDev float64
	Isolated     int // vertices with no out-edges
}

// ComputeStats scans the graph once and returns degree statistics.
func ComputeStats(g *Graph) Stats {
	n := g.NumVertices()
	s := Stats{Vertices: n, Edges: g.NumEdges(), MinDegree: math.MaxInt}
	if n == 0 {
		s.MinDegree = 0
		return s
	}
	var sum, sumSq float64
	for v := 0; v < n; v++ {
		d := g.Degree(uint32(v))
		if d == 0 {
			s.Isolated++
		}
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		sum += float64(d)
		sumSq += float64(d) * float64(d)
	}
	s.MeanDegree = sum / float64(n)
	variance := sumSq/float64(n) - s.MeanDegree*s.MeanDegree
	if variance > 0 {
		s.DegreeStdDev = math.Sqrt(variance)
	}
	return s
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("V=%d E=%d deg[min=%d mean=%.2f max=%d sd=%.2f] isolated=%d",
		s.Vertices, s.Edges, s.MinDegree, s.MeanDegree, s.MaxDegree, s.DegreeStdDev, s.Isolated)
}

// DegreeHistogram returns counts of vertices per power-of-two degree
// bucket: bucket k counts degrees in [2^k, 2^(k+1)), with bucket 0 also
// counting degree 0 separately in the returned zero count.
func DegreeHistogram(g *Graph) (zero int, buckets []int64) {
	n := g.NumVertices()
	buckets = make([]int64, 33)
	for v := 0; v < n; v++ {
		d := g.Degree(uint32(v))
		if d == 0 {
			zero++
			continue
		}
		b := 0
		for x := d; x > 1; x >>= 1 {
			b++
		}
		buckets[b]++
	}
	// Trim trailing empty buckets.
	last := len(buckets)
	for last > 0 && buckets[last-1] == 0 {
		last--
	}
	return zero, buckets[:last]
}

// BFSDepth runs a serial BFS from source and returns the eccentricity
// (maximum finite depth) and the number of reached vertices. It is the
// reference used to report the "Depth" column of Table II analogues.
func BFSDepth(g *Graph, source uint32) (depth int, reached int) {
	n := g.NumVertices()
	if n == 0 {
		return 0, 0
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]uint32, 0, 1024)
	queue = append(queue, source)
	dist[source] = 0
	reached = 1
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if int(du) > depth {
			depth = int(du)
		}
		for _, v := range g.Neighbors1(u) {
			if dist[v] < 0 {
				dist[v] = du + 1
				reached++
				queue = append(queue, v)
			}
		}
	}
	return depth, reached
}

// Probe is the outcome of a level-bounded serial BFS: the per-level
// frontier and examined-edge profile the auto-tuner feeds to the
// analytical model (model.PredictDirections replays the α/β switch rule
// over exactly this shape).
type Probe struct {
	// Frontier[l] is the number of vertices expanded at level l
	// (Frontier[0] is 1, the source); Edges[l] is the adjacency entries
	// their expansion examined.
	Frontier []int64
	Edges    []int64
	// Visited and EdgesSeen total the profile.
	Visited   int64
	EdgesSeen int64
	// Complete reports that the traversal exhausted its frontier within
	// the level bound — the profile is the whole reachable component.
	Complete bool
}

// ProbeBFS runs a serial BFS from source for at most maxLevels levels
// (maxLevels <= 0 removes the bound) and returns the per-level profile.
// It allocates one int32 per vertex and touches only the edges of the
// levels it expands, so a bounded probe on a huge graph costs a few
// frontier expansions, not a full traversal.
func ProbeBFS(g *Graph, source uint32, maxLevels int) Probe {
	var p Probe
	n := g.NumVertices()
	if n == 0 || int(source) >= n {
		p.Complete = true
		return p
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	frontier := []uint32{source}
	dist[source] = 0
	for level := 0; len(frontier) > 0; level++ {
		if maxLevels > 0 && level >= maxLevels {
			return p // bounded: profile covers the expanded prefix only
		}
		var edges int64
		var next []uint32
		for _, u := range frontier {
			adj := g.Neighbors1(u)
			edges += int64(len(adj))
			for _, v := range adj {
				if dist[v] < 0 {
					dist[v] = int32(level + 1)
					next = append(next, v)
				}
			}
		}
		p.Frontier = append(p.Frontier, int64(len(frontier)))
		p.Edges = append(p.Edges, edges)
		p.Visited += int64(len(frontier))
		p.EdgesSeen += edges
		frontier = next
	}
	p.Complete = true
	return p
}

// LargestReach returns a source vertex whose BFS reaches the most
// vertices among `tries` deterministic candidates, along with the reach.
// Generators with isolated vertices (R-MAT) use it to pick good roots.
func LargestReach(g *Graph, tries int) (source uint32, reached int) {
	n := g.NumVertices()
	if n == 0 {
		return 0, 0
	}
	if tries < 1 {
		tries = 1
	}
	step := n / tries
	if step == 0 {
		step = 1
	}
	for c := 0; c < n && tries > 0; c += step {
		if g.Degree(uint32(c)) == 0 {
			continue
		}
		tries--
		_, r := BFSDepth(g, uint32(c))
		if r > reached {
			reached, source = r, uint32(c)
		}
		if reached > n/2 {
			break
		}
	}
	return source, reached
}
