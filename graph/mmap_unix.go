//go:build unix

package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"runtime"
	"syscall"
	"unsafe"
)

// LoadMmap loads a CSR graph file by mapping it read-only instead of
// decoding it onto the heap: the returned graph's Offsets and Neighbors
// slices alias the mapping directly, so a warm restart is bounded by
// page-cache hits rather than a full re-parse, and the kernel may
// reclaim cold pages under memory pressure. The CRC32 footer (when
// present) is verified over the mapped bytes before the graph is
// returned, and traversal results are byte-identical to a heap load —
// the on-disk arrays ARE the in-memory arrays.
//
// The file must not be modified or truncated while mapped (the mapping
// is MAP_SHARED; external writes would corrupt a verified graph, and
// truncation turns reads into SIGBUS). The mapping is released by a
// finalizer when the Graph becomes unreachable.
//
// On big-endian hosts (where the on-disk little-endian arrays cannot be
// aliased) this transparently falls back to the heap loader.
func LoadMmap(path string) (*Graph, error) {
	if !hostLittleEndian() {
		return Load(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(headerLen) {
		return nil, fmt.Errorf("graph: mmap %s: %d bytes is shorter than a CSR header", path, size)
	}
	if size > int64(^uint(0)>>1) {
		return nil, fmt.Errorf("graph: mmap %s: file size %d overflows the address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	g, err := decodeMapped(data)
	if err != nil {
		_ = syscall.Munmap(data)
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	g.mappedBytes = size
	runtime.SetFinalizer(g, func(*Graph) { _ = syscall.Munmap(data) })
	return g, nil
}

// decodeMapped builds a Graph whose slices alias the mapped file bytes,
// after validating the header, the exact payload length, the CRC32
// footer and the structural invariants. It allocates nothing per edge.
func decodeMapped(data []byte) (*Graph, error) {
	if string(data[:len(csrMagic)]) != csrMagic {
		return nil, fmt.Errorf("graph: bad magic %q", data[:len(csrMagic)])
	}
	v := binary.LittleEndian.Uint64(data[len(csrMagic):])
	e := binary.LittleEndian.Uint64(data[len(csrMagic)+8:])
	if v > MaxVertices {
		return nil, fmt.Errorf("graph: vertex count %d exceeds MaxVertices", v)
	}
	if e > MaxStreamEdges {
		return nil, fmt.Errorf("graph: edge count %d exceeds MaxStreamEdges", e)
	}
	need := uint64(headerLen) + 8*(v+1) + 4*e
	switch trailing := uint64(len(data)) - need; {
	case uint64(len(data)) < need:
		return nil, fmt.Errorf("graph: header declares %d vertices / %d edges (%d bytes) but file holds %d",
			v, e, need, len(data))
	case trailing == 0:
		// Legacy footerless file: nothing to verify.
	case trailing == uint64(footerLen):
		foot := data[need:]
		if string(foot[4:]) != crcMagic {
			return nil, fmt.Errorf("graph: unrecognized trailing data %q (corrupt checksum footer?)", foot)
		}
		if want, sum := binary.LittleEndian.Uint32(foot), crc32.ChecksumIEEE(data[:need]); want != sum {
			return nil, fmt.Errorf("%w: footer declares %#08x, payload hashes to %#08x", ErrChecksum, want, sum)
		}
	default:
		return nil, fmt.Errorf("graph: %d unrecognized trailing bytes after the CSR arrays", trailing)
	}
	// The offsets start at byte 24 of a page-aligned mapping, so the
	// int64 view is 8-aligned; the neighbor view after 8*(v+1) more
	// bytes stays 4-aligned.
	offsets := unsafe.Slice((*int64)(unsafe.Pointer(&data[headerLen])), v+1)
	var neighbors []uint32
	if e > 0 {
		neighbors = unsafe.Slice((*uint32)(unsafe.Pointer(&data[uint64(headerLen)+8*(v+1)])), e)
	}
	g := &Graph{Offsets: offsets, Neighbors: neighbors}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// hostLittleEndian reports whether multi-byte integers can alias the
// file's little-endian encoding directly.
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}
