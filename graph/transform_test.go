package graph

import (
	"testing"
)

func TestTranspose(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {0, 2}, {2, 3}, {3, 0}})
	tr := g.Transpose()
	if tr.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d", tr.NumEdges())
	}
	for u := uint32(0); u < 4; u++ {
		for _, v := range g.Neighbors1(u) {
			if !tr.HasEdge(v, u) {
				t.Fatalf("edge (%d,%d) missing reversed", u, v)
			}
		}
	}
	// Double transpose restores the edge multiset.
	back := tr.Transpose()
	for u := uint32(0); u < 4; u++ {
		if back.Degree(u) != g.Degree(u) {
			t.Fatalf("degree of %d changed after double transpose", u)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeParallelMatchesSerial(t *testing.T) {
	// Big enough to clear FromEdgesParallel's serial cutoff (4096 edges),
	// with skewed degrees, duplicate edges, self-loops and isolated
	// vertices. Byte-identical output is required, not just an equal
	// edge multiset: the hybrid engine treats the two as interchangeable.
	const n = 3000
	var edges []Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{uint32(i), uint32(i + 1)})
	}
	for i := 0; i < n; i += 3 {
		edges = append(edges, Edge{uint32(i), 0})             // hub in-degree
		edges = append(edges, Edge{7, uint32(i)})             // hub out-degree
		edges = append(edges, Edge{uint32(i), uint32(i)})     // self-loop
		edges = append(edges, Edge{uint32(i), uint32(n - 1)}) // duplicates below
		edges = append(edges, Edge{uint32(i), uint32(n - 1)})
	}
	g := mustFromEdges(t, n+50, edges) // 50 isolated vertices at the top
	want := g.Transpose()
	for _, workers := range []int{1, 2, 3, 7, 16} {
		got := g.TransposeParallel(workers)
		if len(got.Offsets) != len(want.Offsets) || len(got.Neighbors) != len(want.Neighbors) {
			t.Fatalf("workers=%d: shape mismatch", workers)
		}
		for i := range want.Offsets {
			if got.Offsets[i] != want.Offsets[i] {
				t.Fatalf("workers=%d: Offsets[%d] = %d, want %d", workers, i, got.Offsets[i], want.Offsets[i])
			}
		}
		for i := range want.Neighbors {
			if got.Neighbors[i] != want.Neighbors[i] {
				t.Fatalf("workers=%d: Neighbors[%d] = %d, want %d", workers, i, got.Neighbors[i], want.Neighbors[i])
			}
		}
	}
	// Default worker count (workers <= 0) must take the same path.
	got := g.TransposeParallel(0)
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range want.Neighbors {
		if got.Neighbors[i] != want.Neighbors[i] {
			t.Fatalf("default workers: Neighbors[%d] mismatch", i)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := mustFromEdges(t, 5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 4}})
	sub, back, err := g.InducedSubgraph([]uint32{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 {
		t.Fatalf("V = %d", sub.NumVertices())
	}
	// Surviving edges: 1->2 and 1->4 (0 and 3 removed).
	if sub.NumEdges() != 2 {
		t.Fatalf("E = %d, want 2", sub.NumEdges())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(0, 2) {
		t.Error("induced edges wrong")
	}
	if back[0] != 1 || back[1] != 2 || back[2] != 4 {
		t.Errorf("back map wrong: %v", back)
	}
	if _, _, err := g.InducedSubgraph([]uint32{1, 1}); err == nil {
		t.Error("duplicate vertex accepted")
	}
	if _, _, err := g.InducedSubgraph([]uint32{99}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestDegreeOrderPermutation(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{2, 0}, {2, 1}, {2, 3}, {0, 1}})
	perm := DegreeOrderPermutation(g)
	// Vertex 2 (degree 3) gets rank 0; vertex 0 (degree 1) rank 1.
	if perm[2] != 0 {
		t.Errorf("hub not first: perm = %v", perm)
	}
	if perm[0] != 1 {
		t.Errorf("second-degree vertex not second: perm = %v", perm)
	}
	r, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if r.Degree(0) != 3 {
		t.Errorf("relabeled hub degree = %d", r.Degree(0))
	}
}

func TestScramblePermutation(t *testing.T) {
	p := ScramblePermutation(100, 7)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
	// Deterministic.
	q := ScramblePermutation(100, 7)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("not deterministic")
		}
	}
	// Not identity (overwhelmingly likely for n=100).
	same := 0
	for i, v := range p {
		if int(v) == i {
			same++
		}
	}
	if same > 20 {
		t.Errorf("%d fixed points: not scrambled", same)
	}
}

func TestCountCrossRange(t *testing.T) {
	// Chain 0-1-2-3 with block size 2: only edge (1,2) crosses.
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	if c := g.CountCrossRange(2); c != 1 {
		t.Errorf("cross-range = %d, want 1", c)
	}
	if c := g.CountCrossRange(4); c != 0 {
		t.Errorf("single block cross-range = %d", c)
	}
	if c := g.CountCrossRange(0); c != 0 {
		t.Errorf("zero block size = %d", c)
	}
	// Scrambling a grid strictly increases cross-block edges.
	grid := mustFromEdges(t, 64, gridEdges(8, 8))
	scrambled, err := grid.Relabel(ScramblePermutation(64, 3))
	if err != nil {
		t.Fatal(err)
	}
	if scrambled.CountCrossRange(8) <= grid.CountCrossRange(8) {
		t.Error("scramble did not reduce locality")
	}
}

func gridEdges(rows, cols int) []Edge {
	var edges []Edge
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{id(r, c), id(r, c+1)}, Edge{id(r, c+1), id(r, c)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{id(r, c), id(r+1, c)}, Edge{id(r+1, c), id(r, c)})
			}
		}
	}
	return edges
}
