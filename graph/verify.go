package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Resident re-verification: the load-time CRC check (ReadFrom,
// LoadMmap) proves an artifact was intact when it entered memory; these
// helpers let a background scrubber keep proving it while it stays
// resident. Checksum re-hashes the canonical bytes from the in-memory
// arrays — for an mmap'd graph those alias the file, so a bit flipped
// on disk after load is visible here; for a heap graph they catch
// in-memory rot. FooterCRC reads what the artifact claims on disk.
// VerifyResident compares the two.

// Checksum recomputes the canonical CRC32 of the graph: the same bytes
// WriteTo hashes before emitting the footer (magic, header, offsets,
// neighbors). pace, when non-nil, is called with the byte count after
// each chunk so a low-priority scrubber can rate-limit the walk.
func (g *Graph) Checksum(pace func(bytes int)) uint32 {
	crc := crc32.NewIEEE()
	step := func(p []byte) {
		crc.Write(p) // never errors
		if pace != nil {
			pace(len(p))
		}
	}
	var hdr [headerLen]byte
	copy(hdr[:], csrMagic)
	binary.LittleEndian.PutUint64(hdr[len(csrMagic):], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[len(csrMagic)+8:], uint64(g.NumEdges()))
	step(hdr[:])

	buf := make([]byte, readChunk)
	for off := 0; off < len(g.Offsets); {
		n := min(len(g.Offsets)-off, readChunk/8)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(g.Offsets[off+i]))
		}
		step(buf[:8*n])
		off += n
	}
	for off := 0; off < len(g.Neighbors); {
		n := min(len(g.Neighbors)-off, readChunk/4)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], g.Neighbors[off+i])
		}
		step(buf[:4*n])
		off += n
	}
	return crc.Sum32()
}

// FooterCRC reads the integrity footer of a CSR graph file without
// loading the arrays. ok is false for a legacy footerless file (nothing
// to verify against); any other shape mismatch between the header's
// declared sizes and the file length is an error.
func FooterCRC(path string) (crc uint32, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	var hdr [headerLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, false, fmt.Errorf("graph: reading header: %w", err)
	}
	if string(hdr[:len(csrMagic)]) != csrMagic {
		return 0, false, fmt.Errorf("graph: bad magic %q", hdr[:len(csrMagic)])
	}
	v := binary.LittleEndian.Uint64(hdr[len(csrMagic):])
	e := binary.LittleEndian.Uint64(hdr[len(csrMagic)+8:])
	if v > MaxVertices || e > MaxStreamEdges {
		return 0, false, fmt.Errorf("graph: header declares %d vertices / %d edges", v, e)
	}
	st, err := f.Stat()
	if err != nil {
		return 0, false, err
	}
	need := int64(headerLen) + 8*int64(v+1) + 4*int64(e)
	switch st.Size() {
	case need:
		return 0, false, nil // legacy footerless artifact
	case need + int64(footerLen):
		var foot [footerLen]byte
		if _, err := f.ReadAt(foot[:], need); err != nil {
			return 0, false, fmt.Errorf("graph: reading footer: %w", err)
		}
		if string(foot[4:]) != crcMagic {
			return 0, false, fmt.Errorf("graph: unrecognized trailing data %q (corrupt checksum footer?)", foot[:])
		}
		return binary.LittleEndian.Uint32(foot[:4]), true, nil
	default:
		return 0, false, fmt.Errorf("graph: file is %d bytes but header implies %d (+%d footer)",
			st.Size(), need, footerLen)
	}
}

// VerifyResident checks a resident graph against its on-disk artifact's
// CRC32 footer. A mismatch wraps ErrChecksum. Legacy footerless
// artifacts verify vacuously (there is no recorded truth to compare);
// pace is forwarded to Checksum for rate limiting.
func VerifyResident(g *Graph, path string, pace func(int)) error {
	want, ok, err := FooterCRC(path)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	if got := g.Checksum(pace); got != want {
		return fmt.Errorf("%w: artifact %s footer declares %#08x, resident arrays hash to %#08x",
			ErrChecksum, path, want, got)
	}
	return nil
}
