package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary format: a small header followed by the raw CSR arrays in
// little-endian order. The format is versioned so cmd/graphgen outputs
// stay loadable.
//
//	magic   [8]byte  "FBFSCSR1"
//	V       uint64
//	E       uint64
//	offsets V+1 × int64
//	adj     E   × uint32
const csrMagic = "FBFSCSR1"

// WriteTo serializes the graph to w in the binary CSR format and returns
// the number of bytes written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := int64(0)
	put := func(p []byte) error {
		k, err := bw.Write(p)
		n += int64(k)
		return err
	}
	if err := put([]byte(csrMagic)); err != nil {
		return n, err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.NumEdges()))
	if err := put(hdr[:]); err != nil {
		return n, err
	}
	var buf [8]byte
	for _, o := range g.Offsets {
		binary.LittleEndian.PutUint64(buf[:], uint64(o))
		if err := put(buf[:8]); err != nil {
			return n, err
		}
	}
	for _, v := range g.Neighbors {
		binary.LittleEndian.PutUint32(buf[:4], v)
		if err := put(buf[:4]); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a graph in the binary CSR format.
func ReadFrom(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(csrMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != csrMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	v := binary.LittleEndian.Uint64(hdr[0:])
	e := binary.LittleEndian.Uint64(hdr[8:])
	if v > MaxVertices {
		return nil, fmt.Errorf("graph: vertex count %d exceeds MaxVertices", v)
	}
	g := &Graph{
		Offsets:   make([]int64, v+1),
		Neighbors: make([]uint32, e),
	}
	raw := make([]byte, 8*(v+1))
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	for i := range g.Offsets {
		g.Offsets[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	raw = make([]byte, 4*e)
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, fmt.Errorf("graph: reading neighbors: %w", err)
	}
	for i := range g.Neighbors {
		g.Neighbors[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Save writes the graph to the named file.
func (g *Graph) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := g.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a graph from the named file.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
