package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
)

// Binary format: a small header followed by the raw CSR arrays in
// little-endian order, then an integrity footer. The format is
// versioned so cmd/graphgen outputs stay loadable.
//
//	magic   [8]byte  "FBFSCSR1"
//	V       uint64
//	E       uint64
//	offsets V+1 × int64
//	adj     E   × uint32
//	crc     uint32   CRC32 (IEEE) of every byte above
//	fmagic  [8]byte  "FBFSCRC1"
//
// The footer is what lets a serving daemon reject a bit-rotted or
// half-copied graph file at load time instead of traversing garbage.
// Files written before the footer existed end right after the arrays;
// ReadFrom still accepts them (nothing to verify). The one blind spot
// of that back-compat rule: a corruption that removes EXACTLY the
// 12-byte footer makes a modern file look legacy and skips
// verification.
const csrMagic = "FBFSCSR1"

// crcMagic marks the integrity footer; see the format comment.
const crcMagic = "FBFSCRC1"

// footerLen is the integrity footer size: CRC32 + footer magic.
const footerLen = 4 + len(crcMagic)

// ErrChecksum is the sentinel wrapped by CRC-mismatch load failures.
var ErrChecksum = errors.New("graph: checksum mismatch")

// WriteTo serializes the graph to w in the binary CSR format (including
// the CRC32 footer) and returns the number of bytes written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	crc := crc32.NewIEEE()
	n := int64(0)
	put := func(p []byte) error {
		crc.Write(p) // never errors
		k, err := bw.Write(p)
		n += int64(k)
		return err
	}
	if err := put([]byte(csrMagic)); err != nil {
		return n, err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.NumEdges()))
	if err := put(hdr[:]); err != nil {
		return n, err
	}
	var buf [8]byte
	for _, o := range g.Offsets {
		binary.LittleEndian.PutUint64(buf[:], uint64(o))
		if err := put(buf[:8]); err != nil {
			return n, err
		}
	}
	for _, v := range g.Neighbors {
		binary.LittleEndian.PutUint32(buf[:4], v)
		if err := put(buf[:4]); err != nil {
			return n, err
		}
	}
	var foot [footerLen]byte
	binary.LittleEndian.PutUint32(foot[0:], crc.Sum32())
	copy(foot[4:], crcMagic)
	if err := put(foot[:]); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// MaxStreamEdges bounds the header-declared edge count a CSR stream may
// announce: 2^40 adjacency entries (4 TiB) is far past single-node
// memory, so anything larger is a corrupt or hostile header, not data.
const MaxStreamEdges = 1 << 40

// headerLen is the fixed prefix: magic + V + E.
const headerLen = len(csrMagic) + 16

// ReadFrom deserializes a graph in the binary CSR format.
//
// The header-declared V and E are attacker-controlled until proven
// otherwise, so they are validated against sane bounds before any
// allocation; when r is seekable the declared payload is also checked
// against the actual remaining stream length, and either way the arrays
// are allocated incrementally as data arrives — a lying header meets
// EOF, not a multi-gigabyte make().
func ReadFrom(r io.Reader) (*Graph, error) {
	// Measure the remaining stream length up front (before any buffered
	// reads make the underlying offset meaningless).
	streamLen := int64(-1)
	if sk, ok := r.(io.Seeker); ok {
		if cur, err := sk.Seek(0, io.SeekCurrent); err == nil {
			if end, err := sk.Seek(0, io.SeekEnd); err == nil {
				if _, err := sk.Seek(cur, io.SeekStart); err != nil {
					return nil, fmt.Errorf("graph: rewinding stream: %w", err)
				}
				streamLen = end - cur
			}
		}
	}

	br := bufio.NewReaderSize(r, 1<<20)
	crc := crc32.NewIEEE()
	magic := make([]byte, len(csrMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != csrMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	crc.Write(magic)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	crc.Write(hdr[:])
	v := binary.LittleEndian.Uint64(hdr[0:])
	e := binary.LittleEndian.Uint64(hdr[8:])
	if v > MaxVertices {
		return nil, fmt.Errorf("graph: vertex count %d exceeds MaxVertices", v)
	}
	if e > MaxStreamEdges {
		return nil, fmt.Errorf("graph: edge count %d exceeds MaxStreamEdges", e)
	}
	if streamLen >= 0 {
		need := int64(headerLen) + 8*int64(v+1) + 4*int64(e)
		if streamLen < need {
			return nil, fmt.Errorf("graph: header declares %d vertices / %d edges (%d bytes) but stream holds %d",
				v, e, need, streamLen)
		}
	}

	offsets, err := readInt64s(br, v+1, crc)
	if err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	neighbors, err := readUint32s(br, e, crc)
	if err != nil {
		return nil, fmt.Errorf("graph: reading neighbors: %w", err)
	}
	if err := verifyFooter(br, crc.Sum32()); err != nil {
		return nil, err
	}
	g := &Graph{Offsets: offsets, Neighbors: neighbors}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// verifyFooter checks the optional integrity footer after the arrays.
// A clean EOF means a legacy footerless file (accepted unverified); a
// well-formed footer must match the computed CRC; a partial footer or
// unrecognized trailing data is corruption — current writers always
// emit a footer and legacy writers emit nothing, so a stream that ends
// with anything else was damaged in storage or transit.
func verifyFooter(br *bufio.Reader, sum uint32) error {
	var foot [footerLen]byte
	n, err := io.ReadFull(br, foot[:])
	switch {
	case err == io.EOF:
		return nil // legacy file: arrays end the stream
	case err == io.ErrUnexpectedEOF:
		return fmt.Errorf("graph: truncated checksum footer (%d trailing bytes)", n)
	case err != nil:
		return fmt.Errorf("graph: reading checksum footer: %w", err)
	}
	if string(foot[4:]) != crcMagic {
		return fmt.Errorf("graph: unrecognized trailing data %q (corrupt checksum footer?)", foot[:])
	}
	if want := binary.LittleEndian.Uint32(foot[0:]); want != sum {
		return fmt.Errorf("%w: footer declares %#08x, payload hashes to %#08x", ErrChecksum, want, sum)
	}
	return nil
}

// readChunk is the incremental-allocation granularity: slices grow by at
// most this many bytes of decoded entries per read, so memory tracks
// data actually received rather than the header's claim.
const readChunk = 1 << 20

// readInt64s decodes n little-endian int64s, allocating incrementally
// and folding the raw bytes into crc.
func readInt64s(br *bufio.Reader, n uint64, crc hash.Hash32) ([]int64, error) {
	out := make([]int64, 0, min64(n, readChunk/8))
	buf := make([]byte, readChunk)
	for uint64(len(out)) < n {
		want := 8 * min64(n-uint64(len(out)), readChunk/8)
		if _, err := io.ReadFull(br, buf[:want]); err != nil {
			return nil, err
		}
		crc.Write(buf[:want])
		for i := uint64(0); i < want; i += 8 {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[i:])))
		}
	}
	return out, nil
}

// readUint32s decodes n little-endian uint32s, allocating incrementally
// and folding the raw bytes into crc.
func readUint32s(br *bufio.Reader, n uint64, crc hash.Hash32) ([]uint32, error) {
	out := make([]uint32, 0, min64(n, readChunk/4))
	buf := make([]byte, readChunk)
	for uint64(len(out)) < n {
		want := 4 * min64(n-uint64(len(out)), readChunk/4)
		if _, err := io.ReadFull(br, buf[:want]); err != nil {
			return nil, err
		}
		crc.Write(buf[:want])
		for i := uint64(0); i < want; i += 4 {
			out = append(out, binary.LittleEndian.Uint32(buf[i:]))
		}
	}
	return out, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Save writes the graph to the named file.
func (g *Graph) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := g.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a graph from the named file.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
