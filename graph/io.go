package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary format: a small header followed by the raw CSR arrays in
// little-endian order. The format is versioned so cmd/graphgen outputs
// stay loadable.
//
//	magic   [8]byte  "FBFSCSR1"
//	V       uint64
//	E       uint64
//	offsets V+1 × int64
//	adj     E   × uint32
const csrMagic = "FBFSCSR1"

// WriteTo serializes the graph to w in the binary CSR format and returns
// the number of bytes written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := int64(0)
	put := func(p []byte) error {
		k, err := bw.Write(p)
		n += int64(k)
		return err
	}
	if err := put([]byte(csrMagic)); err != nil {
		return n, err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.NumEdges()))
	if err := put(hdr[:]); err != nil {
		return n, err
	}
	var buf [8]byte
	for _, o := range g.Offsets {
		binary.LittleEndian.PutUint64(buf[:], uint64(o))
		if err := put(buf[:8]); err != nil {
			return n, err
		}
	}
	for _, v := range g.Neighbors {
		binary.LittleEndian.PutUint32(buf[:4], v)
		if err := put(buf[:4]); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// MaxStreamEdges bounds the header-declared edge count a CSR stream may
// announce: 2^40 adjacency entries (4 TiB) is far past single-node
// memory, so anything larger is a corrupt or hostile header, not data.
const MaxStreamEdges = 1 << 40

// headerLen is the fixed prefix: magic + V + E.
const headerLen = len(csrMagic) + 16

// ReadFrom deserializes a graph in the binary CSR format.
//
// The header-declared V and E are attacker-controlled until proven
// otherwise, so they are validated against sane bounds before any
// allocation; when r is seekable the declared payload is also checked
// against the actual remaining stream length, and either way the arrays
// are allocated incrementally as data arrives — a lying header meets
// EOF, not a multi-gigabyte make().
func ReadFrom(r io.Reader) (*Graph, error) {
	// Measure the remaining stream length up front (before any buffered
	// reads make the underlying offset meaningless).
	streamLen := int64(-1)
	if sk, ok := r.(io.Seeker); ok {
		if cur, err := sk.Seek(0, io.SeekCurrent); err == nil {
			if end, err := sk.Seek(0, io.SeekEnd); err == nil {
				if _, err := sk.Seek(cur, io.SeekStart); err != nil {
					return nil, fmt.Errorf("graph: rewinding stream: %w", err)
				}
				streamLen = end - cur
			}
		}
	}

	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(csrMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != csrMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	v := binary.LittleEndian.Uint64(hdr[0:])
	e := binary.LittleEndian.Uint64(hdr[8:])
	if v > MaxVertices {
		return nil, fmt.Errorf("graph: vertex count %d exceeds MaxVertices", v)
	}
	if e > MaxStreamEdges {
		return nil, fmt.Errorf("graph: edge count %d exceeds MaxStreamEdges", e)
	}
	if streamLen >= 0 {
		need := int64(headerLen) + 8*int64(v+1) + 4*int64(e)
		if streamLen < need {
			return nil, fmt.Errorf("graph: header declares %d vertices / %d edges (%d bytes) but stream holds %d",
				v, e, need, streamLen)
		}
	}

	offsets, err := readInt64s(br, v+1)
	if err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	neighbors, err := readUint32s(br, e)
	if err != nil {
		return nil, fmt.Errorf("graph: reading neighbors: %w", err)
	}
	g := &Graph{Offsets: offsets, Neighbors: neighbors}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// readChunk is the incremental-allocation granularity: slices grow by at
// most this many bytes of decoded entries per read, so memory tracks
// data actually received rather than the header's claim.
const readChunk = 1 << 20

// readInt64s decodes n little-endian int64s, allocating incrementally.
func readInt64s(br *bufio.Reader, n uint64) ([]int64, error) {
	out := make([]int64, 0, min64(n, readChunk/8))
	buf := make([]byte, readChunk)
	for uint64(len(out)) < n {
		want := 8 * min64(n-uint64(len(out)), readChunk/8)
		if _, err := io.ReadFull(br, buf[:want]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < want; i += 8 {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[i:])))
		}
	}
	return out, nil
}

// readUint32s decodes n little-endian uint32s, allocating incrementally.
func readUint32s(br *bufio.Reader, n uint64) ([]uint32, error) {
	out := make([]uint32, 0, min64(n, readChunk/4))
	buf := make([]byte, readChunk)
	for uint64(len(out)) < n {
		want := 4 * min64(n-uint64(len(out)), readChunk/4)
		if _, err := io.ReadFull(br, buf[:want]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < want; i += 4 {
			out = append(out, binary.LittleEndian.Uint32(buf[i:]))
		}
	}
	return out, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Save writes the graph to the named file.
func (g *Graph) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := g.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a graph from the named file.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
