//go:build !unix

package graph

// LoadMmap falls back to the heap loader on platforms without a usable
// mmap: results are identical, only the residency behavior differs
// (MappedBytes reports 0).
func LoadMmap(path string) (*Graph, error) {
	return Load(path)
}
