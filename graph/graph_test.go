package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

func mustFromEdges(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {0, 2}, {1, 2}, {3, 0}, {0, 1}})
	if g.NumVertices() != 4 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("E = %d", g.NumEdges())
	}
	if g.Degree(0) != 3 || g.Degree(1) != 1 || g.Degree(2) != 0 || g.Degree(3) != 1 {
		t.Fatalf("degrees wrong: %d %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2), g.Degree(3))
	}
	if !g.HasEdge(0, 1) || g.HasEdge(2, 0) {
		t.Error("HasEdge wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromEdges(-1, nil); err == nil {
		t.Error("negative vertex count accepted")
	}
}

func TestFromDegrees(t *testing.T) {
	g, err := FromDegrees([]int32{2, 0, 1}, func(v uint32, adj []uint32) {
		for i := range adj {
			adj[i] = (v + uint32(i) + 1) % 3
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("E = %d", g.NumEdges())
	}
	if got := g.Neighbors1(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("adj(0) = %v", got)
	}
	if _, err := FromDegrees([]int32{-1}, nil); err == nil {
		t.Error("negative degree accepted")
	}
}

func TestSymmetrize(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{0, 1}, {1, 2}})
	s := g.Symmetrize()
	if s.NumEdges() != 4 {
		t.Fatalf("E = %d, want 4", s.NumEdges())
	}
	for _, e := range []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !s.HasEdge(e.U, e.V) {
			t.Errorf("missing edge %v", e)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDedup(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{0, 2}, {0, 1}, {0, 2}, {0, 1}, {1, 1}})
	d := g.Dedup()
	if d.NumEdges() != 3 {
		t.Fatalf("E = %d, want 3", d.NumEdges())
	}
	adj := d.Neighbors1(0)
	if len(adj) != 2 || adj[0] != 1 || adj[1] != 2 {
		t.Fatalf("adj(0) = %v, want [1 2]", adj)
	}
	if !d.HasEdge(1, 1) {
		t.Error("self-loop dropped")
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	perm := []uint32{2, 0, 3, 1}
	r, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed")
	}
	for u := uint32(0); u < 4; u++ {
		for _, v := range g.Neighbors1(u) {
			if !r.HasEdge(perm[u], perm[v]) {
				t.Fatalf("edge (%d,%d) lost after relabel", u, v)
			}
		}
	}
	if _, err := g.Relabel([]uint32{0, 0, 1, 2}); err == nil {
		t.Error("non-permutation accepted")
	}
	if _, err := g.Relabel([]uint32{0}); err == nil {
		t.Error("short permutation accepted")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g := mustFromEdges(t, 5, []Edge{{0, 1}, {1, 2}, {4, 0}, {3, 3}})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
		t.Fatal("shape mismatch after round trip")
	}
	for i := range g.Offsets {
		if g.Offsets[i] != h.Offsets[i] {
			t.Fatal("offsets differ")
		}
	}
	for i := range g.Neighbors {
		if g.Neighbors[i] != h.Neighbors[i] {
			t.Fatal("neighbors differ")
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a graph"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{0, 1}, {1, 2}})
	path := t.TempDir() + "/g.csr"
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	h, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 {
		t.Fatalf("loaded E = %d", h.NumEdges())
	}
}

// TestFromEdgesProperty: CSR construction preserves the edge multiset.
func TestFromEdgesProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 64
		edges := make([]Edge, len(raw))
		for i, x := range raw {
			edges[i] = Edge{U: uint32(x) % n, V: uint32(x>>8) % n}
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		if g.NumEdges() != int64(len(edges)) {
			return false
		}
		// Count degree per source and compare.
		var deg [n]int
		for _, e := range edges {
			deg[e.U]++
		}
		for v := 0; v < n; v++ {
			if g.Degree(uint32(v)) != deg[v] {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 0}})
	s := ComputeStats(g)
	if s.Vertices != 4 || s.Edges != 4 {
		t.Fatalf("stats shape: %+v", s)
	}
	if s.MinDegree != 0 || s.MaxDegree != 3 || s.Isolated != 2 {
		t.Fatalf("degree stats: %+v", s)
	}
	if s.MeanDegree != 1.0 {
		t.Fatalf("mean = %v", s.MeanDegree)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 0}, {1, 0}})
	zero, buckets := DegreeHistogram(g)
	if zero != 2 {
		t.Fatalf("zero = %d", zero)
	}
	// Vertex 0 has degree 4 (bucket 2), vertex 1 degree 1 (bucket 0).
	if len(buckets) != 3 || buckets[0] != 1 || buckets[2] != 1 {
		t.Fatalf("buckets = %v", buckets)
	}
}

func TestBFSDepth(t *testing.T) {
	// Path 0-1-2-3 (directed chain).
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	depth, reached := BFSDepth(g, 0)
	if depth != 3 || reached != 4 {
		t.Fatalf("depth=%d reached=%d", depth, reached)
	}
	depth, reached = BFSDepth(g, 3)
	if depth != 0 || reached != 1 {
		t.Fatalf("sink: depth=%d reached=%d", depth, reached)
	}
}

func TestLargestReach(t *testing.T) {
	// Two components: {0,1,2} reachable from 0; {3} isolated-ish.
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {1, 2}, {3, 3}})
	src, reached := LargestReach(g, 4)
	if reached < 3 {
		t.Fatalf("LargestReach found %d from %d, want >=3", reached, src)
	}
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Error("zero graph not empty")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	s := ComputeStats(&g)
	if s.Vertices != 0 {
		t.Error("stats on empty graph")
	}
}
