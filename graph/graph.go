// Package graph provides the compressed adjacency representation used by
// the fastbfs traversal engine, together with builders, statistics and a
// compact binary serialization.
//
// The representation mirrors the paper's "2D Adjacency Array": for vertex
// i, the neighbor ids are the slice Neighbors[Offsets[i]:Offsets[i+1]]
// (CSR). Vertex ids are uint32 and must stay below 2^31 because the
// engine's Potential Boundary Vertex encoding reserves the top bit for
// parent markers.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"fastbfs/internal/par"
)

// MaxVertices is the largest vertex count the engine supports; the top
// bit of a vertex id is reserved for PBV parent markers.
const MaxVertices = 1 << 31

// mustPar re-raises a recovered worker panic on the calling goroutine.
// It is used where the enclosing API has no error return: the failure
// stays loud, but surfaces where callers can recover it instead of
// killing the process from an anonymous goroutine.
func mustPar(err error) {
	if err != nil {
		panic(err)
	}
}

// Edge is a directed edge from U to V.
type Edge struct {
	U, V uint32
}

// Graph is a directed graph in CSR form. The zero value is an empty
// graph. Graphs built by this package always have len(Offsets) ==
// NumVertices()+1 and monotonically non-decreasing offsets.
type Graph struct {
	// Offsets has one entry per vertex plus a terminator; the neighbors
	// of v are Neighbors[Offsets[v]:Offsets[v+1]].
	Offsets []int64
	// Neighbors stores the concatenated adjacency lists.
	Neighbors []uint32

	// mappedBytes, when non-zero, records that the CSR arrays alias a
	// read-only file mapping of this many bytes (see LoadMmap). The
	// mapping is released by a finalizer once the Graph is unreachable,
	// so a mapped graph must never be mutated and its slices must not
	// outlive the Graph value they came from.
	mappedBytes int64
}

// MappedBytes reports the size of the read-only file mapping backing
// this graph's CSR arrays, or 0 for a heap-allocated graph. Serving
// layers use it to account mapped versus heap residency: mapped bytes
// are reclaimable page cache, heap bytes are not.
func (g *Graph) MappedBytes() int64 { return g.mappedBytes }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.Offsets) == 0 {
		return 0
	}
	return len(g.Offsets) - 1
}

// NumEdges returns the number of directed edges (adjacency entries).
func (g *Graph) NumEdges() int64 {
	if len(g.Offsets) == 0 {
		return 0
	}
	return g.Offsets[len(g.Offsets)-1]
}

// Degree returns the out-degree of v.
func (g *Graph) Degree(v uint32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors1 returns the adjacency slice of v. The slice aliases the
// graph's storage and must not be modified.
func (g *Graph) Neighbors1(v uint32) []uint32 {
	return g.Neighbors[g.Offsets[v]:g.Offsets[v+1]]
}

// HasEdge reports whether the directed edge (u,v) is present. The
// adjacency list of u is scanned linearly (lists are not required to be
// sorted).
func (g *Graph) HasEdge(u, v uint32) bool {
	for _, w := range g.Neighbors1(u) {
		if w == v {
			return true
		}
	}
	return false
}

// Validate checks structural invariants: offset monotonicity, terminator
// consistency and neighbor ids in range. It is O(V+E).
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n == 0 {
		if len(g.Neighbors) != 0 {
			return errors.New("graph: neighbors without vertices")
		}
		return nil
	}
	if n > MaxVertices {
		return fmt.Errorf("graph: %d vertices exceeds MaxVertices", n)
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph: Offsets[0] = %d, want 0", g.Offsets[0])
	}
	for i := 0; i < n; i++ {
		if g.Offsets[i+1] < g.Offsets[i] {
			return fmt.Errorf("graph: Offsets not monotone at %d", i)
		}
	}
	if g.Offsets[n] != int64(len(g.Neighbors)) {
		return fmt.Errorf("graph: terminator %d != len(Neighbors) %d",
			g.Offsets[n], len(g.Neighbors))
	}
	var bad error
	if err := par.For(par.DefaultWorkers(), len(g.Neighbors), func(lo, hi int) {
		for _, v := range g.Neighbors[lo:hi] {
			if int(v) >= n {
				bad = fmt.Errorf("graph: neighbor id %d out of range", v)
				return
			}
		}
	}); err != nil {
		return err
	}
	return bad
}

// FromEdges builds a CSR graph with numVertices vertices from a directed
// edge list. Duplicate edges and self-loops are kept as given (the paper
// takes input graphs as-is). The build is a parallel counting sort on
// the source vertex; edges is left unmodified.
func FromEdges(numVertices int, edges []Edge) (*Graph, error) {
	if numVertices < 0 || numVertices > MaxVertices {
		return nil, fmt.Errorf("graph: invalid vertex count %d", numVertices)
	}
	offsets := make([]int64, numVertices+1)
	for _, e := range edges {
		if int(e.U) >= numVertices || int(e.V) >= numVertices {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range", e.U, e.V)
		}
		offsets[e.U+1]++
	}
	for i := 0; i < numVertices; i++ {
		offsets[i+1] += offsets[i]
	}
	neighbors := make([]uint32, len(edges))
	cursor := make([]int64, numVertices)
	copy(cursor, offsets[:numVertices])
	for _, e := range edges {
		neighbors[cursor[e.U]] = e.V
		cursor[e.U]++
	}
	return &Graph{Offsets: offsets, Neighbors: neighbors}, nil
}

// FromDegrees builds a CSR graph given each vertex's out-degree and a
// fill function that writes the adjacency slice of each vertex. fill is
// invoked in parallel over vertex ranges; it must only write the slice it
// is given. This is the allocation-efficient path used by generators
// that know degrees up front.
func FromDegrees(degrees []int32, fill func(v uint32, adj []uint32)) (*Graph, error) {
	n := len(degrees)
	if n > MaxVertices {
		return nil, fmt.Errorf("graph: %d vertices exceeds MaxVertices", n)
	}
	offsets := make([]int64, n+1)
	for i, d := range degrees {
		if d < 0 {
			return nil, fmt.Errorf("graph: negative degree at vertex %d", i)
		}
		offsets[i+1] = offsets[i] + int64(d)
	}
	neighbors := make([]uint32, offsets[n])
	g := &Graph{Offsets: offsets, Neighbors: neighbors}
	// fill is caller-supplied code running on pool workers; a panic in it
	// comes back as an error rather than crashing the process.
	if err := par.For(par.DefaultWorkers(), n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			fill(uint32(v), neighbors[offsets[v]:offsets[v+1]])
		}
	}); err != nil {
		return nil, fmt.Errorf("graph: FromDegrees fill: %w", err)
	}
	return g, nil
}

// Symmetrize returns a new graph in which every edge (u,v) also appears
// as (v,u). Self-loops are kept once. Duplicate edges are preserved; use
// Dedup afterwards if a simple graph is required.
func (g *Graph) Symmetrize() *Graph {
	n := g.NumVertices()
	deg := make([]int64, n+1)
	for v := 0; v < n; v++ {
		deg[v+1] += g.Offsets[v+1] - g.Offsets[v]
	}
	for _, w := range g.Neighbors {
		deg[w+1]++
	}
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	neighbors := make([]uint32, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors1(uint32(v)) {
			neighbors[cursor[v]] = w
			cursor[v]++
		}
	}
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors1(uint32(v)) {
			neighbors[cursor[w]] = uint32(v)
			cursor[w]++
		}
	}
	return &Graph{Offsets: offsets, Neighbors: neighbors}
}

// Dedup returns a new graph with each adjacency list sorted and
// duplicate neighbors removed. Self-loops are preserved (once).
func (g *Graph) Dedup() *Graph {
	n := g.NumVertices()
	deg := make([]int32, n)
	sorted := make([]uint32, len(g.Neighbors))
	copy(sorted, g.Neighbors)
	mustPar(par.For(par.DefaultWorkers(), n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			adj := sorted[g.Offsets[v]:g.Offsets[v+1]]
			sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
			d := 0
			for i := range adj {
				if i == 0 || adj[i] != adj[i-1] {
					adj[d] = adj[i]
					d++
				}
			}
			deg[v] = int32(d)
		}
	}))
	out, _ := FromDegrees(deg, func(v uint32, adj []uint32) {
		copy(adj, sorted[g.Offsets[v]:g.Offsets[v]+int64(len(adj))])
	})
	return out
}

// Relabel returns a new graph whose vertex v has the id perm[v]; perm
// must be a permutation of [0, NumVertices). It is used to destroy or
// create locality for experiments (the paper deliberately does not
// reorder inputs; the ablation benches do).
func (g *Graph) Relabel(perm []uint32) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: perm length %d != %d vertices", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int(p) >= n || seen[p] {
			return nil, errors.New("graph: perm is not a permutation")
		}
		seen[p] = true
	}
	inv := make([]uint32, n)
	for v, p := range perm {
		inv[p] = uint32(v)
	}
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[perm[v]] = int32(g.Degree(uint32(v)))
	}
	return FromDegrees(deg, func(nv uint32, adj []uint32) {
		old := inv[nv]
		src := g.Neighbors1(old)
		for i, w := range src {
			adj[i] = perm[w]
		}
	})
}
