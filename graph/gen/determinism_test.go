package gen

import (
	"testing"

	"fastbfs/graph"
)

// allGenerators enumerates every generator with fixed small parameters.
func allGenerators() map[string]func(seed uint64) (*graph.Graph, error) {
	return map[string]func(seed uint64) (*graph.Graph, error){
		"ur":     func(s uint64) (*graph.Graph, error) { return UniformRandom(500, 6, s) },
		"random": func(s uint64) (*graph.Graph, error) { return RandomEdges(500, 2000, s) },
		"rmat":   func(s uint64) (*graph.Graph, error) { return RMAT(Graph500Params(9, 8), s) },
		"kron":   func(s uint64) (*graph.Graph, error) { return Kronecker(9, 8, s) },
		"grid":   func(s uint64) (*graph.Graph, error) { return Grid2D(20, 25, 10, s) },
		"pa":     func(s uint64) (*graph.Graph, error) { return PreferentialAttachment(300, 3, s) },
		"stress": func(s uint64) (*graph.Graph, error) { return StressBipartite(400, 5, s) },
		"sworld": func(s uint64) (*graph.Graph, error) { return SmallWorld(400, 6, 0.2, s) },
	}
}

func equalGraphs(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			return false
		}
	}
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			return false
		}
	}
	return true
}

// TestAllGeneratorsDeterministic: every generator is a pure function of
// its seed (the reproducibility guarantee all experiments rely on), and
// distinct seeds give distinct graphs for the randomized families.
func TestAllGeneratorsDeterministic(t *testing.T) {
	for name, build := range allGenerators() {
		a, err := build(7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := build(7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !equalGraphs(a, b) {
			t.Errorf("%s: same seed produced different graphs", name)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: invalid graph: %v", name, err)
		}
		c, err := build(8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Deterministic topologies (mesh-like) are seed-independent;
		// randomized families must differ.
		if name != "grid" && equalGraphs(a, c) {
			t.Errorf("%s: different seeds produced identical graphs", name)
		}
	}
	// BandedMesh takes no seed: only determinism and validity to check.
	m1, err := BandedMesh(6, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := BandedMesh(6, 7, 8)
	if !equalGraphs(m1, m2) {
		t.Error("mesh not deterministic")
	}
}
