package gen

import (
	"math"
	"testing"

	"fastbfs/graph"
)

func TestUniformRandomShape(t *testing.T) {
	g, err := UniformRandom(1000, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 || g.NumEdges() != 8000 {
		t.Fatalf("shape: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < 1000; v++ {
		if g.Degree(uint32(v)) != 8 {
			t.Fatalf("vertex %d degree %d, want 8", v, g.Degree(uint32(v)))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRandomDeterministic(t *testing.T) {
	a, _ := UniformRandom(500, 4, 7)
	b, _ := UniformRandom(500, 4, 7)
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	c, _ := UniformRandom(500, 4, 8)
	same := 0
	for i := range a.Neighbors {
		if a.Neighbors[i] == c.Neighbors[i] {
			same++
		}
	}
	if same == len(a.Neighbors) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestUniformRandomNeighborSpread(t *testing.T) {
	// Neighbors should cover the id range roughly uniformly.
	g, _ := UniformRandom(4096, 16, 3)
	var lowHalf int
	for _, v := range g.Neighbors {
		if v < 2048 {
			lowHalf++
		}
	}
	frac := float64(lowHalf) / float64(len(g.Neighbors))
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("low-half fraction %.3f, want ~0.5", frac)
	}
}

func TestRandomEdges(t *testing.T) {
	g, err := RandomEdges(1000, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 5000 {
		t.Fatalf("E = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMATShape(t *testing.T) {
	p := Graph500Params(12, 8)
	g, err := RMAT(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1<<12 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if g.NumEdges() != 8<<12 {
		t.Fatalf("E = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRMATSkew: R-MAT with a=0.57 concentrates edges on low vertex ids
// — the power-law skew the paper's load-balancing targets. The top
// sixteenth of the id space must receive far fewer endpoints than the
// bottom sixteenth, and the max degree must dwarf the average.
func TestRMATSkew(t *testing.T) {
	g, err := RMAT(Graph500Params(14, 8), 11)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	var low, high int
	for _, v := range g.Neighbors {
		if int(v) < n/16 {
			low++
		} else if int(v) >= n-n/16 {
			high++
		}
	}
	if low < 4*high {
		t.Errorf("R-MAT skew weak: low=%d high=%d", low, high)
	}
	s := graph.ComputeStats(g)
	if float64(s.MaxDegree) < 10*s.MeanDegree {
		t.Errorf("max degree %d not heavy-tailed vs mean %.1f", s.MaxDegree, s.MeanDegree)
	}
	if s.Isolated == 0 {
		t.Error("R-MAT should leave isolated vertices (paper: 'a number of isolated vertices')")
	}
}

func TestRMATUndirected(t *testing.T) {
	p := Graph500Params(10, 4)
	p.Undirected = true
	g, err := RMAT(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2*4<<10 {
		t.Fatalf("E = %d, want both directions", g.NumEdges())
	}
}

func TestRMATValidation(t *testing.T) {
	if _, err := RMAT(RMATParams{A: 0.6, B: 0.3, C: 0.3, Scale: 10, EdgeFactor: 4}, 1); err == nil {
		t.Error("probabilities > 1 accepted")
	}
	if _, err := RMAT(Graph500Params(0, 4), 1); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := RMAT(Graph500Params(10, 0), 1); err == nil {
		t.Error("edge factor 0 accepted")
	}
}

func TestKronecker(t *testing.T) {
	g, err := Kronecker(10, 8, 77)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 || g.NumEdges() != 2*8*1024 {
		t.Fatalf("shape V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	// Scrambled labels: the hub should NOT be vertex 0 systematically;
	// check that low ids no longer dominate.
	n := g.NumVertices()
	var low int
	for _, v := range g.Neighbors {
		if int(v) < n/16 {
			low++
		}
	}
	frac := float64(low) / float64(len(g.Neighbors))
	if frac > 0.3 {
		t.Errorf("Kronecker labels look unscrambled: low fraction %.2f", frac)
	}
}

func TestGrid2DStructure(t *testing.T) {
	g, err := Grid2D(10, 7, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 70 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	// Interior degree 4, corner degree 2.
	if g.Degree(0) != 2 {
		t.Errorf("corner degree %d", g.Degree(0))
	}
	if g.Degree(uint32(3*7+3)) != 4 {
		t.Errorf("interior degree %d", g.Degree(uint32(3*7+3)))
	}
	// Symmetric by construction.
	for u := uint32(0); u < 70; u++ {
		for _, v := range g.Neighbors1(u) {
			if !g.HasEdge(v, u) {
				t.Fatalf("grid edge (%d,%d) not symmetric", u, v)
			}
		}
	}
	// Diameter of a grid ≈ rows+cols.
	depth, reached := graph.BFSDepth(g, 0)
	if reached != 70 {
		t.Fatalf("grid not connected: %d", reached)
	}
	if depth != 9+6 {
		t.Errorf("grid depth %d, want 15", depth)
	}
}

func TestGrid2DShortcuts(t *testing.T) {
	base, _ := Grid2D(50, 50, 0, 1)
	fast, err := Grid2D(50, 50, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fast.NumEdges() <= base.NumEdges() {
		t.Error("shortcuts added no edges")
	}
	d0, _ := graph.BFSDepth(base, 0)
	d1, _ := graph.BFSDepth(fast, 0)
	if d1 >= d0 {
		t.Errorf("shortcuts did not reduce depth: %d -> %d", d0, d1)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g, err := PreferentialAttachment(2000, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	// Heavy tail: max degree far above the mean.
	if float64(s.MaxDegree) < 5*s.MeanDegree {
		t.Errorf("PA max degree %d vs mean %.1f: not heavy-tailed", s.MaxDegree, s.MeanDegree)
	}
	// Social graphs have tiny diameters.
	depth, reached := graph.BFSDepth(g, 0)
	if reached != 2000 {
		t.Errorf("PA graph disconnected: reached %d", reached)
	}
	if depth > 10 {
		t.Errorf("PA depth %d, want small-world", depth)
	}
	if _, err := PreferentialAttachment(10, 10, 1); err == nil {
		t.Error("m >= n accepted")
	}
}

func TestStressBipartite(t *testing.T) {
	g, err := StressBipartite(1000, 5, 21)
	if err != nil {
		t.Fatal(err)
	}
	half := uint32(500)
	for u := uint32(0); u < 1000; u++ {
		for _, v := range g.Neighbors1(u) {
			if (u < half) == (v < half) {
				t.Fatalf("edge (%d,%d) stays within one side", u, v)
			}
		}
	}
}

func TestBandedMesh(t *testing.T) {
	g, err := BandedMesh(5, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 210 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	// 7-point stencil: interior degree 6, corner degree 3, symmetric,
	// connected with depth = sum of dims - 3.
	for u := uint32(0); u < 210; u++ {
		for _, v := range g.Neighbors1(u) {
			if !g.HasEdge(v, u) {
				t.Fatalf("mesh edge (%d,%d) not symmetric", u, v)
			}
		}
	}
	depth, reached := graph.BFSDepth(g, 0)
	if reached != 210 {
		t.Fatalf("mesh disconnected: %d", reached)
	}
	if depth != 4+5+6 {
		t.Errorf("mesh depth %d, want 15", depth)
	}
}

func TestWithPathTail(t *testing.T) {
	base, _ := UniformRandom(100, 4, 1)
	g, err := WithPathTail(base, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 150 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	depth, _ := graph.BFSDepth(g, 0)
	if depth < 50 {
		t.Errorf("path tail did not extend depth: %d", depth)
	}
	// The tail is bidirectional: from the far end we can get back.
	_, reached := graph.BFSDepth(g, 149)
	if reached < 100 {
		t.Errorf("tail not attached bidirectionally: reached %d", reached)
	}
}

func TestSmallWorld(t *testing.T) {
	g, err := SmallWorld(1000, 6, 0.1, 31)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 1000; v++ {
		if g.Degree(uint32(v)) != 6 {
			t.Fatalf("degree %d at %d", g.Degree(uint32(v)), v)
		}
	}
	// Rewiring shrinks diameter versus the pure ring lattice.
	ring, _ := SmallWorld(1000, 6, 0, 31)
	dRing, _ := graph.BFSDepth(ring, 0)
	dSW, _ := graph.BFSDepth(g, 0)
	if dSW >= dRing {
		t.Errorf("rewiring did not shrink depth: ring %d, sw %d", dRing, dSW)
	}
	if _, err := SmallWorld(10, 20, 0.1, 1); err == nil {
		t.Error("k >= n accepted")
	}
}
