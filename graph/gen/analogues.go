package gen

import (
	"fmt"

	"fastbfs/graph"
	"fastbfs/internal/par"
	"fastbfs/internal/xrand"
)

// Grid2D generates a rows×cols 4-connected grid (each interior vertex has
// edges to its N/S/E/W neighbors, both directions). With extraPerMile
// long-range shortcut edges per 1000 vertices it approximates a road
// network: very low degree (≈4 like the USA graphs' 2.4) and a diameter
// of about rows+cols. Vertex id = r*cols + c.
func Grid2D(rows, cols int, extraPerMile int, seed uint64) (*graph.Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("gen: invalid grid %dx%d", rows, cols)
	}
	n := rows * cols
	if n > graph.MaxVertices {
		return nil, fmt.Errorf("gen: grid %dx%d too large", rows, cols)
	}
	deg := make([]int32, n)
	if err := par.For(par.DefaultWorkers(), n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			r, c := v/cols, v%cols
			d := int32(0)
			if r > 0 {
				d++
			}
			if r < rows-1 {
				d++
			}
			if c > 0 {
				d++
			}
			if c < cols-1 {
				d++
			}
			deg[v] = d
		}
	}); err != nil {
		return nil, err
	}
	g, err := graph.FromDegrees(deg, func(v uint32, adj []uint32) {
		r, c := int(v)/cols, int(v)%cols
		i := 0
		if r > 0 {
			adj[i] = v - uint32(cols)
			i++
		}
		if r < rows-1 {
			adj[i] = v + uint32(cols)
			i++
		}
		if c > 0 {
			adj[i] = v - 1
			i++
		}
		if c < cols-1 {
			adj[i] = v + 1
			i++
		}
	})
	if err != nil || extraPerMile <= 0 {
		return g, err
	}
	// Shortcut edges (highways): sparse random symmetric pairs.
	extra := int64(n) * int64(extraPerMile) / 1000
	edges := make([]graph.Edge, 0, 2*extra)
	rng := xrand.New(seed ^ 0x0ad0)
	for i := int64(0); i < extra; i++ {
		u := uint32(rng.Uint64n(uint64(n)))
		v := uint32(rng.Uint64n(uint64(n)))
		edges = append(edges, graph.Edge{U: u, V: v}, graph.Edge{U: v, V: u})
	}
	h, err := graph.FromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	return merge(g, h), nil
}

// merge concatenates the adjacency lists of two graphs over the same
// vertex set.
func merge(a, b *graph.Graph) *graph.Graph {
	n := a.NumVertices()
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(a.Degree(uint32(v)) + b.Degree(uint32(v)))
	}
	g, _ := graph.FromDegrees(deg, func(v uint32, adj []uint32) {
		k := copy(adj, a.Neighbors1(v))
		copy(adj[k:], b.Neighbors1(v))
	})
	return g
}

// PreferentialAttachment generates a Barabási–Albert-style social-network
// analogue: vertices arrive in order and attach m undirected edges to
// endpoints sampled proportionally to current degree (implemented with
// the standard "repeated endpoints list" trick, subsampled to bound
// memory). Degrees are heavy-tailed; diameter is O(log n) like the
// Orkut/Facebook rows of Table II.
func PreferentialAttachment(n, m int, seed uint64) (*graph.Graph, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("gen: invalid PA parameters n=%d m=%d", n, m)
	}
	if m >= n {
		return nil, fmt.Errorf("gen: PA m=%d must be < n=%d", m, n)
	}
	rng := xrand.New(seed ^ 0x50c1a1)
	// targets holds one entry per edge endpoint, so sampling uniformly
	// from it is degree-proportional sampling.
	targets := make([]uint32, 0, 2*int64(n)*int64(m))
	edges := make([]graph.Edge, 0, 2*int64(n)*int64(m))
	// Seed clique over the first m+1 vertices.
	for u := 0; u <= m; u++ {
		for v := 0; v <= m; v++ {
			if u == v {
				continue
			}
			edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
		}
		for i := 0; i < m; i++ {
			targets = append(targets, uint32(u))
		}
	}
	for v := m + 1; v < n; v++ {
		for i := 0; i < m; i++ {
			t := targets[rng.Intn(len(targets))]
			edges = append(edges,
				graph.Edge{U: uint32(v), V: t},
				graph.Edge{U: t, V: uint32(v)})
			targets = append(targets, t)
		}
		for i := 0; i < m; i++ {
			targets = append(targets, uint32(v))
		}
	}
	return graph.FromEdgesParallel(n, edges, 0)
}

// StressBipartite generates the paper's worst-case load-balancing graph:
// a bipartite graph in which every frontier alternates between vertices
// that all live in the low half of the id range and vertices that all
// live in the high half — so under a static socket partition the entire
// frontier lands on one socket at every step.
//
// Side A is ids [0, n/2); side B is ids [n/2, n). Every A vertex has
// `degree` random neighbors in B and vice versa.
func StressBipartite(n, degree int, seed uint64) (*graph.Graph, error) {
	if n < 2 || degree < 1 {
		return nil, fmt.Errorf("gen: invalid stress parameters n=%d degree=%d", n, degree)
	}
	half := uint64(n / 2)
	deg := make([]int32, n)
	for i := range deg {
		deg[i] = int32(degree)
	}
	return graph.FromDegrees(deg, func(v uint32, adj []uint32) {
		g := xrand.New(seed ^ xrand.SplitMix64(uint64(v)+0x57e55))
		if uint64(v) < half { // A -> B
			for i := range adj {
				adj[i] = uint32(half + g.Uint64n(uint64(n)-half))
			}
		} else { // B -> A
			for i := range adj {
				adj[i] = uint32(g.Uint64n(half))
			}
		}
	})
}

// BandedMesh generates an Nlpkkt160-style analogue: a 3-D 7-point mesh
// (banded sparse matrix structure) whose frontier sweeps through the id
// space as a wave, exercising the same socket imbalance the paper
// observed on Nlpkkt160. dims are the mesh dimensions.
func BandedMesh(nx, ny, nz int) (*graph.Graph, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("gen: invalid mesh %dx%dx%d", nx, ny, nz)
	}
	n := nx * ny * nz
	if n > graph.MaxVertices {
		return nil, fmt.Errorf("gen: mesh %dx%dx%d too large", nx, ny, nz)
	}
	idx := func(x, y, z int) uint32 { return uint32((z*ny+y)*nx + x) }
	deg := make([]int32, n)
	if err := par.For(par.DefaultWorkers(), n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			x := v % nx
			y := (v / nx) % ny
			z := v / (nx * ny)
			d := int32(0)
			if x > 0 {
				d++
			}
			if x < nx-1 {
				d++
			}
			if y > 0 {
				d++
			}
			if y < ny-1 {
				d++
			}
			if z > 0 {
				d++
			}
			if z < nz-1 {
				d++
			}
			deg[v] = d
		}
	}); err != nil {
		return nil, err
	}
	return graph.FromDegrees(deg, func(v uint32, adj []uint32) {
		x := int(v) % nx
		y := (int(v) / nx) % ny
		z := int(v) / (nx * ny)
		i := 0
		if x > 0 {
			adj[i] = idx(x-1, y, z)
			i++
		}
		if x < nx-1 {
			adj[i] = idx(x+1, y, z)
			i++
		}
		if y > 0 {
			adj[i] = idx(x, y-1, z)
			i++
		}
		if y < ny-1 {
			adj[i] = idx(x, y+1, z)
			i++
		}
		if z > 0 {
			adj[i] = idx(x, y, z-1)
			i++
		}
		if z < nz-1 {
			adj[i] = idx(x, y, z+1)
			i++
		}
	})
}

// WithPathTail grafts a simple path of pathLen fresh vertices onto vertex
// anchor of g, returning a new graph with NumVertices+pathLen vertices.
// It manufactures the long-diameter tails of graphs like Wikipedia
// (depth 460 despite social-like structure).
func WithPathTail(g *graph.Graph, anchor uint32, pathLen int) (*graph.Graph, error) {
	n := g.NumVertices()
	if int(anchor) >= n {
		return nil, fmt.Errorf("gen: anchor %d out of range", anchor)
	}
	if pathLen < 1 {
		return nil, fmt.Errorf("gen: pathLen %d < 1", pathLen)
	}
	total := n + pathLen
	deg := make([]int32, total)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(uint32(v)))
	}
	deg[anchor]++ // edge to first path vertex
	for i := 0; i < pathLen; i++ {
		deg[n+i] = 2 // back + forward
	}
	deg[total-1] = 1 // last path vertex: back only
	return graph.FromDegrees(deg, func(v uint32, adj []uint32) {
		switch {
		case int(v) < n:
			k := copy(adj, g.Neighbors1(v))
			if v == anchor {
				adj[k] = uint32(n)
			}
		case int(v) == total-1:
			adj[0] = v - 1
		default:
			if int(v) == n {
				adj[0] = anchor
			} else {
				adj[0] = v - 1
			}
			adj[1] = v + 1
		}
	})
}

// SmallWorld generates a Watts–Strogatz-style ring lattice over n
// vertices where each vertex links to its k nearest ring neighbors and
// each link is rewired to a uniform random endpoint with probability p.
func SmallWorld(n, k int, p float64, seed uint64) (*graph.Graph, error) {
	if n <= 0 || k <= 0 || k >= n || p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: invalid small-world parameters n=%d k=%d p=%v", n, k, p)
	}
	deg := make([]int32, n)
	for i := range deg {
		deg[i] = int32(k)
	}
	return graph.FromDegrees(deg, func(v uint32, adj []uint32) {
		g := xrand.New(seed ^ xrand.SplitMix64(uint64(v)+0x3a11))
		for i := 0; i < k; i++ {
			// Neighbors alternate ahead/behind on the ring.
			off := i/2 + 1
			var w int
			if i%2 == 0 {
				w = (int(v) + off) % n
			} else {
				w = (int(v) - off + n) % n
			}
			if g.Float64() < p {
				w = g.Intn(n)
			}
			adj[i] = uint32(w)
		}
	})
}
