// Package gen provides deterministic synthetic graph generators matching
// the families the paper evaluates: Uniformly Random graphs, random-edge
// graphs, R-MAT / Graph500 Kronecker graphs, and the real-world analogue
// families used to stand in for the (non-redistributable) Table II inputs
// — road grids, preferential-attachment social graphs, bipartite stress
// cases, banded meshes and long-diameter variants.
//
// Every generator is a pure function of its parameters and seed, so all
// experiments in this repository are exactly reproducible.
package gen

import (
	"fmt"

	"fastbfs/graph"
	"fastbfs/internal/par"
	"fastbfs/internal/xrand"
)

// UniformRandom generates a "UR" graph in the paper's sense: every one of
// the n vertices has exactly degree out-neighbors, each chosen uniformly
// at random (self-loops and duplicates allowed, as in GTgraph).
func UniformRandom(n, degree int, seed uint64) (*graph.Graph, error) {
	if n <= 0 || degree < 0 {
		return nil, fmt.Errorf("gen: invalid UR parameters n=%d degree=%d", n, degree)
	}
	deg := make([]int32, n)
	for i := range deg {
		deg[i] = int32(degree)
	}
	return graph.FromDegrees(deg, func(v uint32, adj []uint32) {
		g := xrand.New(seed ^ xrand.SplitMix64(uint64(v)+1))
		for i := range adj {
			adj[i] = uint32(g.Uint64n(uint64(n)))
		}
	})
}

// RandomEdges generates a graph with m directed edges whose endpoints are
// both uniform (the "random graphs where both source and destination ...
// are chosen randomly" variant the paper footnotes). Vertex degrees are
// Binomial(m, 1/n).
func RandomEdges(n int, m int64, seed uint64) (*graph.Graph, error) {
	if n <= 0 || m < 0 {
		return nil, fmt.Errorf("gen: invalid random-edge parameters n=%d m=%d", n, m)
	}
	edges := make([]graph.Edge, m)
	workers := par.DefaultWorkers()
	if err := par.For(workers, int(m), func(lo, hi int) {
		g := xrand.New(seed ^ xrand.SplitMix64(uint64(lo)+0x9e37))
		for i := lo; i < hi; i++ {
			edges[i] = graph.Edge{
				U: uint32(g.Uint64n(uint64(n))),
				V: uint32(g.Uint64n(uint64(n))),
			}
		}
	}); err != nil {
		return nil, err
	}
	return graph.FromEdgesParallel(n, edges, workers)
}

// RMATParams are the recursive-matrix quadrant probabilities. The
// paper's (and Graph500's) parameters are A=0.57, B=C=0.19, D=0.05.
type RMATParams struct {
	A, B, C float64 // D is implied: 1-A-B-C
	// Scale is log2 of the vertex count.
	Scale int
	// EdgeFactor is edges per vertex; the generator emits
	// EdgeFactor << Scale directed edges.
	EdgeFactor int
	// Noise perturbs the quadrant probabilities per recursion level as in
	// GTgraph ("smooth" R-MAT); 0 disables.
	Noise float64
	// Undirected, when set, also emits the reverse of every edge
	// (Graph500 kernels treat the graph as undirected).
	Undirected bool
}

// Graph500Params returns the standard Graph500/paper R-MAT parameters at
// the given scale and edge factor.
func Graph500Params(scale, edgeFactor int) RMATParams {
	return RMATParams{A: 0.57, B: 0.19, C: 0.19, Scale: scale, EdgeFactor: edgeFactor}
}

// RMAT generates a power-law graph by the recursive matrix method of
// Chakrabarti, Zhan and Faloutsos (SDM 2004). Duplicate edges and
// self-loops are kept, as the paper's evaluation does.
func RMAT(p RMATParams, seed uint64) (*graph.Graph, error) {
	if p.Scale < 1 || p.Scale > 30 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of range [1,30]", p.Scale)
	}
	if p.EdgeFactor < 1 {
		return nil, fmt.Errorf("gen: RMAT edge factor %d < 1", p.EdgeFactor)
	}
	d := 1 - p.A - p.B - p.C
	if p.A < 0 || p.B < 0 || p.C < 0 || d < 0 {
		return nil, fmt.Errorf("gen: RMAT probabilities invalid (a=%v b=%v c=%v)", p.A, p.B, p.C)
	}
	n := 1 << p.Scale
	m := int64(p.EdgeFactor) << p.Scale
	total := m
	if p.Undirected {
		total *= 2
	}
	edges := make([]graph.Edge, total)
	if err := par.For(par.DefaultWorkers(), int(m), func(lo, hi int) {
		g := xrand.New(seed ^ xrand.SplitMix64(uint64(lo)+0xabcd))
		for i := lo; i < hi; i++ {
			u, v := rmatEdge(g, p)
			edges[i] = graph.Edge{U: u, V: v}
			if p.Undirected {
				edges[int64(i)+m] = graph.Edge{U: v, V: u}
			}
		}
	}); err != nil {
		return nil, err
	}
	return graph.FromEdgesParallel(n, edges, 0)
}

// rmatEdge draws one edge by descending the recursive matrix.
func rmatEdge(g *xrand.Gen, p RMATParams) (u, v uint32) {
	a, b, c := p.A, p.B, p.C
	for level := 0; level < p.Scale; level++ {
		aa, bb, cc := a, b, c
		if p.Noise > 0 {
			// Symmetric multiplicative noise, renormalized.
			f := 1 + p.Noise*(2*g.Float64()-1)
			aa *= f
			f = 1 + p.Noise*(2*g.Float64()-1)
			bb *= f
			f = 1 + p.Noise*(2*g.Float64()-1)
			cc *= f
			sum := aa + bb + cc + (1 - a - b - c)
			aa /= sum
			bb /= sum
			cc /= sum
		}
		r := g.Float64()
		u <<= 1
		v <<= 1
		switch {
		case r < aa:
			// top-left: no bits set
		case r < aa+bb:
			v |= 1
		case r < aa+bb+cc:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return u, v
}

// Kronecker generates a Graph500-reference-style graph: R-MAT with the
// standard parameters, emitted undirected, with vertex labels scrambled
// by a deterministic permutation the way the reference code does to
// destroy locality. This is the "Toy++" analogue generator.
func Kronecker(scale, edgeFactor int, seed uint64) (*graph.Graph, error) {
	p := Graph500Params(scale, edgeFactor)
	p.Undirected = true
	g, err := RMAT(p, seed)
	if err != nil {
		return nil, err
	}
	perm := xrand.New(seed ^ 0x5ca1ab1e).Perm(g.NumVertices())
	return g.Relabel(perm)
}
