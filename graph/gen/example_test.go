package gen_test

import (
	"fmt"

	"fastbfs/graph/gen"
)

// ExampleUniformRandom builds the paper's UR workload class.
func ExampleUniformRandom() {
	g, err := gen.UniformRandom(1000, 8, 42)
	if err != nil {
		panic(err)
	}
	fmt.Println(g.NumVertices(), g.NumEdges(), g.Degree(0))
	// Output: 1000 8000 8
}

// ExampleRMAT builds a Graph500-parameter power-law graph.
func ExampleRMAT() {
	g, err := gen.RMAT(gen.Graph500Params(10, 16), 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(g.NumVertices(), g.NumEdges())
	// Output: 1024 16384
}

// ExampleGrid2D builds a road-network analogue.
func ExampleGrid2D() {
	g, err := gen.Grid2D(3, 3, 0, 0)
	if err != nil {
		panic(err)
	}
	// The center of a 3x3 grid has all four neighbors.
	fmt.Println(g.Degree(4))
	// Output: 4
}
