package graph

import "testing"

// chain builds a directed path 0 -> 1 -> ... -> n-1.
func chain(t *testing.T, n int) *Graph {
	t.Helper()
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{U: uint32(i), V: uint32(i + 1)})
	}
	return mustFromEdges(t, n, edges)
}

// TestProbeBFSUnbounded pins the per-level profile on a known shape: a
// directed chain has one vertex and one edge per level (none at the
// tail) and the probe must report the whole component as Complete.
func TestProbeBFSUnbounded(t *testing.T) {
	g := chain(t, 6)
	p := ProbeBFS(g, 0, 0)
	if !p.Complete {
		t.Fatal("unbounded probe not Complete")
	}
	if len(p.Frontier) != 6 {
		t.Fatalf("levels = %d, want 6", len(p.Frontier))
	}
	for l, f := range p.Frontier {
		if f != 1 {
			t.Errorf("frontier[%d] = %d, want 1", l, f)
		}
		wantEdges := int64(1)
		if l == 5 {
			wantEdges = 0 // tail vertex has no out-edges
		}
		if p.Edges[l] != wantEdges {
			t.Errorf("edges[%d] = %d, want %d", l, p.Edges[l], wantEdges)
		}
	}
	if p.Visited != 6 || p.EdgesSeen != 5 {
		t.Errorf("totals visited=%d edges=%d, want 6/5", p.Visited, p.EdgesSeen)
	}
}

// TestProbeBFSBounded pins the level bound: the profile covers exactly
// the expanded prefix and is marked incomplete.
func TestProbeBFSBounded(t *testing.T) {
	g := chain(t, 10)
	p := ProbeBFS(g, 0, 3)
	if p.Complete {
		t.Fatal("bounded probe on a longer chain claims Complete")
	}
	if len(p.Frontier) != 3 || p.Visited != 3 || p.EdgesSeen != 3 {
		t.Fatalf("bounded profile = %+v, want 3 levels of 1 vertex / 1 edge", p)
	}
	// A bound past the eccentricity still completes.
	if p = ProbeBFS(g, 0, 100); !p.Complete || p.Visited != 10 {
		t.Errorf("generous bound: %+v, want complete 10-vertex profile", p)
	}
}

// TestProbeBFSDegenerate: empty graphs and out-of-range sources return
// an empty Complete profile rather than panicking.
func TestProbeBFSDegenerate(t *testing.T) {
	empty := mustFromEdges(t, 0, nil)
	if p := ProbeBFS(empty, 0, 3); !p.Complete || p.Visited != 0 || len(p.Frontier) != 0 {
		t.Errorf("empty graph probe = %+v", p)
	}
	g := chain(t, 4)
	if p := ProbeBFS(g, 99, 3); !p.Complete || p.Visited != 0 {
		t.Errorf("out-of-range source probe = %+v", p)
	}
}

// TestProbeBFSMatchesBFSDepth: on a disconnected graph the probe's
// totals agree with the BFSDepth reference for the same component.
func TestProbeBFSMatchesBFSDepth(t *testing.T) {
	// Two components: a 4-cycle and an isolated pair.
	g := mustFromEdges(t, 6, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0},
		{U: 4, V: 5}, {U: 5, V: 4},
	})
	p := ProbeBFS(g, 0, 0)
	depth, reached := BFSDepth(g, 0)
	if int64(reached) != p.Visited {
		t.Errorf("probe visited %d, BFSDepth reached %d", p.Visited, reached)
	}
	if len(p.Frontier) != depth+1 {
		t.Errorf("probe levels %d, eccentricity %d", len(p.Frontier), depth)
	}
	if p.Visited != 4 {
		t.Errorf("probe leaked across components: visited %d, want 4", p.Visited)
	}
}
