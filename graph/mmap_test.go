package graph_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
)

func saveTemp(t *testing.T, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := g.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	return path
}

// TestLoadMmapIdentical is the core mmap contract: a mapped graph is
// indistinguishable from a heap-loaded one — same arrays, same
// traversal behavior — because the on-disk arrays ARE the in-memory
// arrays.
func TestLoadMmapIdentical(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(10, 8), 7)
	if err != nil {
		t.Fatal(err)
	}
	path := saveTemp(t, g)

	heap, err := graph.Load(path)
	if err != nil {
		t.Fatalf("heap load: %v", err)
	}
	mapped, err := graph.LoadMmap(path)
	if err != nil {
		t.Fatalf("mmap load: %v", err)
	}
	if !reflect.DeepEqual(heap.Offsets, mapped.Offsets) {
		t.Fatal("offsets differ between heap and mmap load")
	}
	if !reflect.DeepEqual(heap.Neighbors, mapped.Neighbors) {
		t.Fatal("neighbors differ between heap and mmap load")
	}
	if heap.MappedBytes() != 0 {
		t.Fatalf("heap graph claims %d mapped bytes", heap.MappedBytes())
	}
	if runtime.GOOS == "linux" && mapped.MappedBytes() == 0 {
		t.Fatal("mmap-loaded graph reports no mapped bytes")
	}

	// Traversals over the mapped graph must be byte-identical to the
	// heap graph — parents included, not just depths.
	for _, source := range []uint32{0, 1, uint32(g.NumVertices() / 2)} {
		rh, err := bfs.Run(heap, source, bfs.Default(1))
		if err != nil {
			t.Fatalf("heap run: %v", err)
		}
		hDP := append([]uint64(nil), rh.DP...)
		rm, err := bfs.Run(mapped, source, bfs.Default(1))
		if err != nil {
			t.Fatalf("mmap run: %v", err)
		}
		if !reflect.DeepEqual(hDP, rm.DP) {
			t.Fatalf("source %d: DP arrays differ between heap and mmap graphs", source)
		}
	}
	runtime.KeepAlive(mapped)
}

func TestLoadMmapEmptyAndTiny(t *testing.T) {
	// (The zero-value empty graph is absent: WriteTo emits no offset
	// terminator for it, so it does not round-trip through ReadFrom
	// either — a pre-existing format corner, not an mmap one.)
	for name, g := range map[string]*graph.Graph{
		"one-vertex":  {Offsets: []int64{0, 0}},
		"self-loop":   {Offsets: []int64{0, 1}, Neighbors: []uint32{0}},
		"two-vertex":  {Offsets: []int64{0, 1, 2}, Neighbors: []uint32{1, 0}},
		"no-edges-3v": {Offsets: []int64{0, 0, 0, 0}},
	} {
		t.Run(name, func(t *testing.T) {
			path := saveTemp(t, g)
			m, err := graph.LoadMmap(path)
			if err != nil {
				t.Fatalf("mmap: %v", err)
			}
			if m.NumVertices() != g.NumVertices() || m.NumEdges() != g.NumEdges() {
				t.Fatalf("got %d/%d vertices/edges, want %d/%d",
					m.NumVertices(), m.NumEdges(), g.NumVertices(), g.NumEdges())
			}
			runtime.KeepAlive(m)
		})
	}
}

func TestLoadMmapRejectsCorruption(t *testing.T) {
	g, err := gen.UniformRandom(1000, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := saveTemp(t, g)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bit-flip", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[len(bad)/2] ^= 0x01
		p := filepath.Join(t.TempDir(), "bad.csr")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := graph.LoadMmap(p); !errors.Is(err, graph.ErrChecksum) {
			t.Fatalf("bit-flipped file: err = %v, want ErrChecksum", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "trunc.csr")
		if err := os.WriteFile(p, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := graph.LoadMmap(p); err == nil {
			t.Fatal("truncated file loaded without error")
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "trail.csr")
		if err := os.WriteFile(p, append(append([]byte{}, data...), 0xde, 0xad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := graph.LoadMmap(p); err == nil {
			t.Fatal("file with trailing garbage loaded without error")
		}
	})
	t.Run("legacy-footerless", func(t *testing.T) {
		// A pre-footer file is the arrays alone; it must still load
		// (nothing to verify), matching ReadFrom's back-compat rule.
		p := filepath.Join(t.TempDir(), "legacy.csr")
		if err := os.WriteFile(p, data[:len(data)-12], 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := graph.LoadMmap(p)
		if err != nil {
			t.Fatalf("legacy file: %v", err)
		}
		if m.NumEdges() != g.NumEdges() {
			t.Fatalf("legacy load lost edges: %d vs %d", m.NumEdges(), g.NumEdges())
		}
		runtime.KeepAlive(m)
	})
}
