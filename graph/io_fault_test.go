package graph

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// serialize returns the canonical bytes of a small test graph.
func serialize(t *testing.T) []byte {
	t.Helper()
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadFromTruncations: every strict prefix of a valid stream must be
// rejected, never crash, and never yield a graph.
func TestReadFromTruncations(t *testing.T) {
	full := serialize(t)
	for cut := 0; cut < len(full); cut++ {
		if g, err := ReadFrom(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted: %v", cut, len(full), g)
		}
	}
	// The full stream still parses.
	if _, err := ReadFrom(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream rejected: %v", err)
	}
}

// TestReadFromHugeHeader: an absurd vertex count must fail fast (no
// multi-GB allocation from attacker-controlled headers is attempted for
// counts beyond MaxVertices).
func TestReadFromHugeHeader(t *testing.T) {
	full := serialize(t)
	bad := append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(bad[8:], 1<<40) // V
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("absurd vertex count accepted")
	}
}

// TestReadFromCorruptNeighbor: out-of-range neighbor ids must fail
// validation on load.
func TestReadFromCorruptNeighbor(t *testing.T) {
	full := serialize(t)
	bad := append([]byte(nil), full...)
	// The last 4 bytes are the final neighbor id; point it out of range.
	binary.LittleEndian.PutUint32(bad[len(bad)-4:], 999)
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
}

// TestReadFromInconsistentOffsets: a non-monotone offset array must be
// rejected.
func TestReadFromInconsistentOffsets(t *testing.T) {
	full := serialize(t)
	bad := append([]byte(nil), full...)
	// Offsets start at byte 24 (8 magic + 16 header); corrupt the second.
	binary.LittleEndian.PutUint64(bad[24+8:], 1<<30)
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("inconsistent offsets accepted")
	}
}
