package graph

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// serialize returns the canonical bytes of a small test graph.
func serialize(t *testing.T) []byte {
	t.Helper()
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadFromTruncations: every strict prefix of a valid stream must be
// rejected, never crash, and never yield a graph.
func TestReadFromTruncations(t *testing.T) {
	full := serialize(t)
	for cut := 0; cut < len(full); cut++ {
		if g, err := ReadFrom(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted: %v", cut, len(full), g)
		}
	}
	// The full stream still parses.
	if _, err := ReadFrom(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream rejected: %v", err)
	}
}

// TestReadFromHugeHeader: an absurd vertex count must fail fast (no
// multi-GB allocation from attacker-controlled headers is attempted for
// counts beyond MaxVertices).
func TestReadFromHugeHeader(t *testing.T) {
	full := serialize(t)
	bad := append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(bad[8:], 1<<40) // V
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("absurd vertex count accepted")
	}
}

// TestReadFromCorruptNeighbor: out-of-range neighbor ids must fail
// validation on load.
func TestReadFromCorruptNeighbor(t *testing.T) {
	full := serialize(t)
	bad := append([]byte(nil), full...)
	// The last 4 bytes are the final neighbor id; point it out of range.
	binary.LittleEndian.PutUint32(bad[len(bad)-4:], 999)
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
}

// TestReadFromInconsistentOffsets: a non-monotone offset array must be
// rejected.
func TestReadFromInconsistentOffsets(t *testing.T) {
	full := serialize(t)
	bad := append([]byte(nil), full...)
	// Offsets start at byte 24 (8 magic + 16 header); corrupt the second.
	binary.LittleEndian.PutUint64(bad[24+8:], 1<<30)
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("inconsistent offsets accepted")
	}
}

// TestReadFromHugeEdgeCount: an edge count past MaxStreamEdges must be
// rejected before any allocation is attempted.
func TestReadFromHugeEdgeCount(t *testing.T) {
	full := serialize(t)
	bad := append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(bad[16:], 1<<50) // E
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("absurd edge count accepted")
	}
}

// TestReadFromLyingSeekableHeader: a seekable stream whose header
// declares more payload than the stream holds must be rejected by the
// length check, before reading (or allocating for) the arrays.
func TestReadFromLyingSeekableHeader(t *testing.T) {
	full := serialize(t)
	bad := append([]byte(nil), full...)
	// Claim 1M vertices on a tiny stream: without the length check this
	// would try to read (and incrementally allocate toward) 8 MB.
	binary.LittleEndian.PutUint64(bad[8:], 1<<20)
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("lying header accepted on seekable stream")
	}
}

// noSeek hides the Seek method so ReadFrom takes the stream path.
type noSeek struct{ io.Reader }

// TestReadFromNonSeekable: the chunked stream path parses a valid graph
// and still rejects every truncation (memory growth is bounded by the
// bytes actually received, so a lying header just hits EOF).
func TestReadFromNonSeekable(t *testing.T) {
	full := serialize(t)
	g, err := ReadFrom(noSeek{bytes.NewReader(full)})
	if err != nil {
		t.Fatalf("non-seekable full stream rejected: %v", err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("parsed %d vertices %d edges, want 4/4", g.NumVertices(), g.NumEdges())
	}
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadFrom(noSeek{bytes.NewReader(full[:cut])}); err == nil {
			t.Fatalf("non-seekable truncation at %d accepted", cut)
		}
	}
	// A lying header on a non-seekable stream fails at EOF.
	bad := append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(bad[8:], 1<<20)
	if _, err := ReadFrom(noSeek{bytes.NewReader(bad)}); err == nil {
		t.Error("lying header accepted on non-seekable stream")
	}
}

// TestReadFromRoundTrip: WriteTo output parses back byte-identically on
// a graph large enough to cross several read chunks.
func TestReadFromRoundTrip(t *testing.T) {
	edges := make([]Edge, 0, 3000)
	for i := 0; i < 1000; i++ {
		u := uint32(i)
		edges = append(edges, Edge{u, (u + 1) % 1000}, Edge{u, (u + 7) % 1000}, Edge{u, (u + 31) % 1000})
	}
	g := mustFromEdges(t, 1000, edges)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, wrap := range []func(*bytes.Reader) io.Reader{
		func(r *bytes.Reader) io.Reader { return r },
		func(r *bytes.Reader) io.Reader { return noSeek{r} },
	} {
		got, err := ReadFrom(wrap(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Offsets) != len(g.Offsets) || len(got.Neighbors) != len(g.Neighbors) {
			t.Fatal("round-trip changed array lengths")
		}
		for i := range g.Offsets {
			if got.Offsets[i] != g.Offsets[i] {
				t.Fatalf("offset %d: %d != %d", i, got.Offsets[i], g.Offsets[i])
			}
		}
		for i := range g.Neighbors {
			if got.Neighbors[i] != g.Neighbors[i] {
				t.Fatalf("neighbor %d: %d != %d", i, got.Neighbors[i], g.Neighbors[i])
			}
		}
	}
}

// FuzzReadFrom: no input — truncated, bit-flipped, or adversarially
// constructed — may panic the parser or produce a structurally invalid
// graph. Accepted inputs must satisfy every CSR invariant.
func FuzzReadFrom(f *testing.F) {
	valid := serializeF(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte(csrMagic))
	hugeV := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hugeV[8:], 1<<40)
	f.Add(hugeV)
	hugeE := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hugeE[16:], 1<<50)
	f.Add(hugeE)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, r := range []io.Reader{bytes.NewReader(data), noSeek{bytes.NewReader(data)}} {
			g, err := ReadFrom(r)
			if err != nil {
				continue
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("accepted graph fails validation: %v", err)
			}
		}
	})
}

// serializeF is serialize for fuzz targets (testing.F is not a *testing.T).
func serializeF(f *testing.F) []byte {
	f.Helper()
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}
