package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// serialize returns the canonical bytes of a small test graph.
func serialize(t *testing.T) []byte {
	t.Helper()
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadFromTruncations: every strict prefix of a valid stream must be
// rejected, never crash, and never yield a graph — with one documented
// exception: cutting EXACTLY the 12-byte CRC footer produces a stream
// indistinguishable from a legacy footerless file, which back-compat
// requires accepting (see the format comment in io.go).
func TestReadFromTruncations(t *testing.T) {
	full := serialize(t)
	legacyCut := len(full) - footerLen
	for cut := 0; cut < len(full); cut++ {
		g, err := ReadFrom(bytes.NewReader(full[:cut]))
		if cut == legacyCut {
			if err != nil {
				t.Fatalf("footerless (legacy-shaped) stream rejected: %v", err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("truncation at %d of %d accepted: %v", cut, len(full), g)
		}
	}
	// The full stream still parses.
	if _, err := ReadFrom(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream rejected: %v", err)
	}
}

// TestReadFromHugeHeader: an absurd vertex count must fail fast (no
// multi-GB allocation from attacker-controlled headers is attempted for
// counts beyond MaxVertices).
func TestReadFromHugeHeader(t *testing.T) {
	full := serialize(t)
	bad := append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(bad[8:], 1<<40) // V
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("absurd vertex count accepted")
	}
}

// TestReadFromCorruptNeighbor: out-of-range neighbor ids must fail
// validation on load. The footer is stripped so the stream is legacy-
// shaped: this exercises structural validation itself, not the CRC
// (which would otherwise catch the flip first — see TestReadFromChecksum).
func TestReadFromCorruptNeighbor(t *testing.T) {
	full := serialize(t)
	bad := append([]byte(nil), full[:len(full)-footerLen]...)
	// The last 4 bytes are now the final neighbor id; point it out of range.
	binary.LittleEndian.PutUint32(bad[len(bad)-4:], 999)
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
}

// TestReadFromInconsistentOffsets: a non-monotone offset array must be
// rejected (footerless stream, so structural validation does the work).
func TestReadFromInconsistentOffsets(t *testing.T) {
	full := serialize(t)
	bad := append([]byte(nil), full[:len(full)-footerLen]...)
	// Offsets start at byte 24 (8 magic + 16 header); corrupt the second.
	binary.LittleEndian.PutUint64(bad[24+8:], 1<<30)
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("inconsistent offsets accepted")
	}
}

// TestReadFromChecksum covers the CRC footer state machine: a payload
// bit-flip is caught by the checksum with the typed sentinel, a corrupt
// footer magic or partially-truncated footer is rejected as trailing
// garbage, and the writer's own output always verifies.
func TestReadFromChecksum(t *testing.T) {
	full := serialize(t)

	// Any single payload bit-flip must yield ErrChecksum (the header
	// fields are skipped: flips there fail earlier, structural checks).
	flip := append([]byte(nil), full...)
	flip[headerLen+3] ^= 0x40 // inside the offsets array
	if _, err := ReadFrom(bytes.NewReader(flip)); !errors.Is(err, ErrChecksum) {
		t.Errorf("payload bit-flip: err = %v, want ErrChecksum", err)
	}

	// A bit-flip in the stored CRC itself also reports a mismatch.
	flip = append([]byte(nil), full...)
	flip[len(full)-footerLen] ^= 0x01
	if _, err := ReadFrom(bytes.NewReader(flip)); !errors.Is(err, ErrChecksum) {
		t.Errorf("CRC bit-flip: err = %v, want ErrChecksum", err)
	}

	// A corrupt footer magic cannot be verified OR safely ignored.
	flip = append([]byte(nil), full...)
	flip[len(full)-1] ^= 0x01
	if _, err := ReadFrom(bytes.NewReader(flip)); err == nil {
		t.Error("corrupt footer magic accepted")
	}

	// A footer truncated mid-way is trailing garbage, not legacy.
	for cut := len(full) - footerLen + 1; cut < len(full); cut++ {
		if _, err := ReadFrom(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("partial footer (cut %d) accepted", cut)
		}
	}
}

// TestReadFromHugeEdgeCount: an edge count past MaxStreamEdges must be
// rejected before any allocation is attempted.
func TestReadFromHugeEdgeCount(t *testing.T) {
	full := serialize(t)
	bad := append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(bad[16:], 1<<50) // E
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("absurd edge count accepted")
	}
}

// TestReadFromLyingSeekableHeader: a seekable stream whose header
// declares more payload than the stream holds must be rejected by the
// length check, before reading (or allocating for) the arrays.
func TestReadFromLyingSeekableHeader(t *testing.T) {
	full := serialize(t)
	bad := append([]byte(nil), full...)
	// Claim 1M vertices on a tiny stream: without the length check this
	// would try to read (and incrementally allocate toward) 8 MB.
	binary.LittleEndian.PutUint64(bad[8:], 1<<20)
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("lying header accepted on seekable stream")
	}
}

// noSeek hides the Seek method so ReadFrom takes the stream path.
type noSeek struct{ io.Reader }

// TestReadFromNonSeekable: the chunked stream path parses a valid graph
// and still rejects every truncation (memory growth is bounded by the
// bytes actually received, so a lying header just hits EOF).
func TestReadFromNonSeekable(t *testing.T) {
	full := serialize(t)
	g, err := ReadFrom(noSeek{bytes.NewReader(full)})
	if err != nil {
		t.Fatalf("non-seekable full stream rejected: %v", err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("parsed %d vertices %d edges, want 4/4", g.NumVertices(), g.NumEdges())
	}
	legacyCut := len(full) - footerLen
	for cut := 0; cut < len(full); cut++ {
		_, err := ReadFrom(noSeek{bytes.NewReader(full[:cut])})
		if cut == legacyCut {
			if err != nil {
				t.Fatalf("non-seekable footerless stream rejected: %v", err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("non-seekable truncation at %d accepted", cut)
		}
	}
	// A lying header on a non-seekable stream fails at EOF.
	bad := append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(bad[8:], 1<<20)
	if _, err := ReadFrom(noSeek{bytes.NewReader(bad)}); err == nil {
		t.Error("lying header accepted on non-seekable stream")
	}
}

// TestReadFromRoundTrip: WriteTo output parses back byte-identically on
// a graph large enough to cross several read chunks.
func TestReadFromRoundTrip(t *testing.T) {
	edges := make([]Edge, 0, 3000)
	for i := 0; i < 1000; i++ {
		u := uint32(i)
		edges = append(edges, Edge{u, (u + 1) % 1000}, Edge{u, (u + 7) % 1000}, Edge{u, (u + 31) % 1000})
	}
	g := mustFromEdges(t, 1000, edges)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, wrap := range []func(*bytes.Reader) io.Reader{
		func(r *bytes.Reader) io.Reader { return r },
		func(r *bytes.Reader) io.Reader { return noSeek{r} },
	} {
		got, err := ReadFrom(wrap(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Offsets) != len(g.Offsets) || len(got.Neighbors) != len(g.Neighbors) {
			t.Fatal("round-trip changed array lengths")
		}
		for i := range g.Offsets {
			if got.Offsets[i] != g.Offsets[i] {
				t.Fatalf("offset %d: %d != %d", i, got.Offsets[i], g.Offsets[i])
			}
		}
		for i := range g.Neighbors {
			if got.Neighbors[i] != g.Neighbors[i] {
				t.Fatalf("neighbor %d: %d != %d", i, got.Neighbors[i], g.Neighbors[i])
			}
		}
	}
}

// FuzzReadFrom: no input — truncated, bit-flipped, or adversarially
// constructed — may panic the parser or produce a structurally invalid
// graph. Accepted inputs must satisfy every CSR invariant.
func FuzzReadFrom(f *testing.F) {
	valid := serializeF(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte(csrMagic))
	hugeV := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hugeV[8:], 1<<40)
	f.Add(hugeV)
	hugeE := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hugeE[16:], 1<<50)
	f.Add(hugeE)
	// Footer corpora: legacy footerless, truncated footer, bit-flipped
	// CRC, bit-flipped footer magic, bit-flipped payload under a valid
	// footer.
	f.Add(valid[:len(valid)-footerLen])
	f.Add(valid[:len(valid)-footerLen/2])
	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-footerLen] ^= 0x01
	f.Add(badCRC)
	badMagic := append([]byte(nil), valid...)
	badMagic[len(badMagic)-1] ^= 0x80
	f.Add(badMagic)
	badPayload := append([]byte(nil), valid...)
	badPayload[headerLen] ^= 0x20
	f.Add(badPayload)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, r := range []io.Reader{bytes.NewReader(data), noSeek{bytes.NewReader(data)}} {
			g, err := ReadFrom(r)
			if err != nil {
				continue
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("accepted graph fails validation: %v", err)
			}
		}
	})
}

// serializeF is serialize for fuzz targets (testing.F is not a *testing.T).
func serializeF(f *testing.F) []byte {
	f.Helper()
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}
