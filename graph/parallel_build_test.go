package graph

import (
	"testing"
	"testing/quick"
)

// TestFromEdgesParallelMatchesSerial: both builders must produce
// byte-identical CSR output (stability included).
func TestFromEdgesParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 7, 100, 5000} {
		for _, m := range []int{0, 1, 100, 20000} {
			edges := randomEdges(n, m)
			want, err := FromEdges(n, edges)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 3, 8} {
				got, err := FromEdgesParallel(n, edges, workers)
				if err != nil {
					t.Fatalf("n=%d m=%d w=%d: %v", n, m, workers, err)
				}
				if len(got.Offsets) != len(want.Offsets) {
					t.Fatalf("offsets length mismatch")
				}
				for i := range want.Offsets {
					if got.Offsets[i] != want.Offsets[i] {
						t.Fatalf("n=%d m=%d w=%d: offset %d differs", n, m, workers, i)
					}
				}
				for i := range want.Neighbors {
					if got.Neighbors[i] != want.Neighbors[i] {
						t.Fatalf("n=%d m=%d w=%d: neighbor %d differs (stability broken)",
							n, m, workers, i)
					}
				}
			}
		}
	}
}

func TestFromEdgesParallelValidation(t *testing.T) {
	if _, err := FromEdgesParallel(2, make([]Edge, 5000), 4); err != nil {
		t.Fatalf("valid zero edges rejected: %v", err)
	}
	bad := make([]Edge, 5000)
	bad[4321] = Edge{U: 9, V: 0}
	if _, err := FromEdgesParallel(2, bad, 4); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromEdgesParallel(-1, nil, 4); err == nil {
		t.Error("negative vertex count accepted")
	}
}

// TestFromEdgesParallelProperty: random inputs, random worker counts —
// always equal to the serial builder.
func TestFromEdgesParallelProperty(t *testing.T) {
	f := func(raw []uint32, w8 uint8) bool {
		const n = 128
		edges := make([]Edge, len(raw))
		for i, x := range raw {
			edges[i] = Edge{U: x % n, V: (x >> 16) % n}
		}
		workers := int(w8)%8 + 1
		a, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		b, err := FromEdgesParallel(n, edges, workers)
		if err != nil {
			return false
		}
		for i := range a.Offsets {
			if a.Offsets[i] != b.Offsets[i] {
				return false
			}
		}
		for i := range a.Neighbors {
			if a.Neighbors[i] != b.Neighbors[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFromEdgesParallel(b *testing.B) {
	const n, m = 1 << 16, 1 << 20
	edges := randomEdges(n, m)
	b.SetBytes(int64(m) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdgesParallel(n, edges, 0); err != nil {
			b.Fatal(err)
		}
	}
}
