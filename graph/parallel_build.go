package graph

import (
	"fmt"

	"fastbfs/internal/par"
)

// FromEdgesParallel builds the same CSR as FromEdges using a two-level
// parallel bucket sort: edges are first partitioned by source-vertex
// range across workers, then each range runs an independent counting
// sort. The output is byte-identical to FromEdges (stable within each
// adjacency list), so the two are interchangeable; this one is the
// kernel-1 path for large edge lists on multi-core hosts.
func FromEdgesParallel(numVertices int, edges []Edge, workers int) (*Graph, error) {
	if numVertices < 0 || numVertices > MaxVertices {
		return nil, fmt.Errorf("graph: invalid vertex count %d", numVertices)
	}
	if workers < 1 {
		workers = par.DefaultWorkers()
	}
	if workers > numVertices {
		workers = numVertices
	}
	if len(edges) < 4096 || workers == 1 {
		return FromEdges(numVertices, edges)
	}

	// Vertex ranges, one per worker: range(v) via the balanced block map.
	rangeOf := func(v uint32) int {
		q, r := numVertices/workers, numVertices%workers
		// Invert par.Range: ranges [0,r) have size q+1.
		if int(v) < r*(q+1) {
			return int(v) / (q + 1)
		}
		return r + (int(v)-r*(q+1))/q
	}

	// Pass 1: per-chunk histograms over ranges, with validation.
	counts := make([][]int64, workers)
	var badEdge error
	if err := par.Run(workers, func(c int) {
		lo, hi := par.Range(len(edges), c, workers)
		h := make([]int64, workers)
		for _, e := range edges[lo:hi] {
			if int(e.U) >= numVertices || int(e.V) >= numVertices {
				badEdge = fmt.Errorf("graph: edge (%d,%d) out of range", e.U, e.V)
				return
			}
			h[rangeOf(e.U)]++
		}
		counts[c] = h
	}); err != nil {
		return nil, err
	}
	if badEdge != nil {
		return nil, badEdge
	}

	// Prefix: staging cursor per (range, chunk), range-major so each
	// range's edges are contiguous and in original chunk order (keeps
	// the build stable and identical to FromEdges).
	cursor := make([][]int64, workers) // [chunk][range]
	for c := range cursor {
		cursor[c] = make([]int64, workers)
	}
	pos := int64(0)
	rangeStart := make([]int64, workers+1)
	for r := 0; r < workers; r++ {
		rangeStart[r] = pos
		for c := 0; c < workers; c++ {
			cursor[c][r] = pos
			pos += counts[c][r]
		}
	}
	rangeStart[workers] = pos

	// Pass 2: scatter edges into the range-grouped staging area.
	staged := make([]Edge, len(edges))
	if err := par.Run(workers, func(c int) {
		lo, hi := par.Range(len(edges), c, workers)
		cur := cursor[c]
		for _, e := range edges[lo:hi] {
			r := rangeOf(e.U)
			staged[cur[r]] = e
			cur[r]++
		}
	}); err != nil {
		return nil, err
	}

	// Pass 3: per-range counting sort into the final CSR. Ranges own
	// disjoint vertices, so offset/neighbor writes never conflict.
	offsets := make([]int64, numVertices+1)
	if err := par.Run(workers, func(r int) {
		for _, e := range staged[rangeStart[r]:rangeStart[r+1]] {
			offsets[e.U+1]++
		}
	}); err != nil {
		return nil, err
	}
	for i := 0; i < numVertices; i++ {
		offsets[i+1] += offsets[i]
	}
	neighbors := make([]uint32, len(edges))
	if err := par.Run(workers, func(r int) {
		vLo, vHi := par.Range(numVertices, r, workers)
		cur := make([]int64, vHi-vLo)
		for v := vLo; v < vHi; v++ {
			cur[v-vLo] = offsets[v]
		}
		for _, e := range staged[rangeStart[r]:rangeStart[r+1]] {
			neighbors[cur[e.U-uint32(vLo)]] = e.V
			cur[e.U-uint32(vLo)]++
		}
	}); err != nil {
		return nil, err
	}
	return &Graph{Offsets: offsets, Neighbors: neighbors}, nil
}
