package graph

import (
	"fmt"
	"sort"

	"fastbfs/internal/par"
)

// Transpose returns the graph with every edge reversed. For symmetric
// graphs the result equals the input (up to adjacency order).
func (g *Graph) Transpose() *Graph {
	n := g.NumVertices()
	deg := make([]int64, n+1)
	for _, w := range g.Neighbors {
		deg[w+1]++
	}
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	neighbors := make([]uint32, len(g.Neighbors))
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors1(uint32(v)) {
			neighbors[cursor[w]] = uint32(v)
			cursor[w]++
		}
	}
	return &Graph{Offsets: offsets, Neighbors: neighbors}
}

// TransposeParallel is Transpose built with the parallel CSR machinery:
// the reversed edge list is materialized in adjacency order (so the
// stable parallel counting sort yields in-neighbors in ascending source
// order) and handed to FromEdgesParallel. The output is byte-identical
// to Transpose; workers <= 0 means par.DefaultWorkers(). This is the
// hybrid-traversal warm-up path — the transpose of a directed graph is
// built once per Engine and amortized across queries.
func (g *Graph) TransposeParallel(workers int) *Graph {
	if workers < 1 {
		workers = par.DefaultWorkers()
	}
	n := g.NumVertices()
	edges := make([]Edge, len(g.Neighbors))
	mustPar(par.For(workers, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			for k := g.Offsets[v]; k < g.Offsets[v+1]; k++ {
				edges[k] = Edge{U: g.Neighbors[k], V: uint32(v)}
			}
		}
	}))
	t, err := FromEdgesParallel(n, edges, workers)
	if err != nil {
		// Unreachable for a well-formed graph (the only build errors are
		// out-of-range endpoints); keep the serial path as the safety net.
		return g.Transpose()
	}
	return t
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// relabeled to [0, len(vertices)) in the given order, plus the mapping
// from new ids back to original ids. Duplicate vertices are rejected.
func (g *Graph) InducedSubgraph(vertices []uint32) (*Graph, []uint32, error) {
	n := g.NumVertices()
	newID := make(map[uint32]uint32, len(vertices))
	for i, v := range vertices {
		if int(v) >= n {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range", v)
		}
		if _, dup := newID[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d", v)
		}
		newID[v] = uint32(i)
	}
	deg := make([]int32, len(vertices))
	adjacency := make([][]uint32, len(vertices))
	for i, v := range vertices {
		for _, w := range g.Neighbors1(v) {
			if nw, ok := newID[w]; ok {
				adjacency[i] = append(adjacency[i], nw)
			}
		}
		deg[i] = int32(len(adjacency[i]))
	}
	sub, err := FromDegrees(deg, func(v uint32, adj []uint32) {
		copy(adj, adjacency[v])
	})
	if err != nil {
		return nil, nil, err
	}
	back := append([]uint32(nil), vertices...)
	return sub, back, nil
}

// DegreeOrderPermutation returns a permutation that relabels vertices in
// descending degree order (perm[v] = new id of v). Applying it with
// Relabel clusters hubs at low ids — the locality-improving reordering
// the paper deliberately does NOT apply to its inputs ("we take in the
// input graphs as given, and do not reorder the vertices"), provided
// here for the reordering ablation.
func DegreeOrderPermutation(g *Graph) []uint32 {
	n := g.NumVertices()
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return g.Degree(order[i]) > g.Degree(order[j])
	})
	perm := make([]uint32, n)
	for rank, v := range order {
		perm[v] = uint32(rank)
	}
	return perm
}

// ScramblePermutation returns a deterministic pseudo-random permutation
// derived from seed, used to destroy locality (the inverse ablation).
func ScramblePermutation(n int, seed uint64) []uint32 {
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	// SplitMix-driven Fisher-Yates, inlined to avoid an xrand dependency
	// cycle concern — graph already depends only on par.
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// CountCrossRange counts edges whose endpoints fall in different blocks
// of size blockSize — a locality metric used by the reordering ablation
// (fewer cross-block edges = better page locality).
func (g *Graph) CountCrossRange(blockSize int) int64 {
	if blockSize <= 0 {
		return 0
	}
	n := g.NumVertices()
	counts := make([]int64, par.DefaultWorkers())
	mustPar(par.Run(len(counts), func(w int) {
		lo, hi := par.Range(n, w, len(counts))
		var c int64
		for v := lo; v < hi; v++ {
			bv := v / blockSize
			for _, u := range g.Neighbors1(uint32(v)) {
				if int(u)/blockSize != bv {
					c++
				}
			}
		}
		counts[w] = c
	}))
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}
