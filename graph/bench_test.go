package graph

import (
	"testing"

	"fastbfs/internal/xrand"
)

func randomEdges(n int, m int) []Edge {
	g := xrand.New(7)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{
			U: uint32(g.Uint64n(uint64(n))),
			V: uint32(g.Uint64n(uint64(n))),
		}
	}
	return edges
}

// BenchmarkFromEdges measures CSR construction (the Graph500 kernel-1
// analogue inside this package).
func BenchmarkFromEdges(b *testing.B) {
	const n, m = 1 << 16, 1 << 20
	edges := randomEdges(n, m)
	b.SetBytes(int64(m) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(n, edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymmetrize(b *testing.B) {
	const n, m = 1 << 16, 1 << 19
	g, err := FromEdges(n, randomEdges(n, m))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Symmetrize()
	}
}

func BenchmarkTranspose(b *testing.B) {
	const n, m = 1 << 16, 1 << 19
	g, err := FromEdges(n, randomEdges(n, m))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Transpose()
	}
}

func BenchmarkBFSDepth(b *testing.B) {
	const n, m = 1 << 16, 1 << 19
	g, err := FromEdges(n, randomEdges(n, m))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFSDepth(g, 0)
	}
}
