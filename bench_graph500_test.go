package fastbfs

import (
	"testing"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/graph500"
)

// BenchmarkGraph500Kernel2 times one validated-workload BFS (kernel 2)
// on a scale-16 Kronecker graph — the unit of the benchmark the paper
// targets (validation excluded from timing, as the spec prescribes).
func BenchmarkGraph500Kernel2(b *testing.B) {
	g := cachedGraph(b, "g500/16", func() (*graph.Graph, error) {
		return kroneckerForBench(16, 16)
	})
	roots := graph500.SampleRoots(g, 4, 7)
	e, err := bfs.NewEngine(g, bfs.Default(2))
	if err != nil {
		b.Fatal(err)
	}
	var edges int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(roots[i%len(roots)])
		if err != nil {
			b.Fatal(err)
		}
		edges += res.EdgesTraversed
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(edges)/sec/1e6, "MTEPS")
	}
}

// BenchmarkGraph500Kernel1 times Kronecker construction.
func BenchmarkGraph500Kernel1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := kroneckerForBench(15, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func kroneckerForBench(scale, ef int) (*graph.Graph, error) {
	return gen.Kronecker(scale, ef, 20100521)
}
