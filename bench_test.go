// Package fastbfs holds the repository-level benchmark harness: one
// benchmark family per table/figure of the paper's evaluation (§V), each
// reporting MTEPS alongside ns/op. The full parameter sweeps (paper-
// shaped tables) are produced by cmd/bfsbench; these benches pin one
// representative configuration per series so `go test -bench=.` tracks
// the same comparisons continuously.
package fastbfs

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"fastbfs/bfs"
	"fastbfs/experiments"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/model"
)

// graphCache builds each benchmark graph once per process.
var graphCache sync.Map

func cachedGraph(b *testing.B, key string, build func() (*graph.Graph, error)) *graph.Graph {
	b.Helper()
	if g, ok := graphCache.Load(key); ok {
		return g.(*graph.Graph)
	}
	g, err := build()
	if err != nil {
		b.Fatal(err)
	}
	graphCache.Store(key, g)
	return g
}

func urGraph(b *testing.B, n, deg int) *graph.Graph {
	return cachedGraph(b, fmt.Sprintf("ur/%d/%d", n, deg), func() (*graph.Graph, error) {
		return gen.UniformRandom(n, deg, 1)
	})
}

func rmatGraph(b *testing.B, scale, ef int) *graph.Graph {
	return cachedGraph(b, fmt.Sprintf("rmat/%d/%d", scale, ef), func() (*graph.Graph, error) {
		return gen.RMAT(gen.Graph500Params(scale, ef), 2)
	})
}

func stressGraph(b *testing.B, n, deg int) *graph.Graph {
	return cachedGraph(b, fmt.Sprintf("stress/%d/%d", n, deg), func() (*graph.Graph, error) {
		return gen.StressBipartite(n, deg, 3)
	})
}

// benchBFS runs repeated traversals of g under o, reporting MTEPS.
func benchBFS(b *testing.B, g *graph.Graph, o bfs.Options, source uint32) {
	b.Helper()
	e, err := bfs.NewEngine(g, o)
	if err != nil {
		b.Fatal(err)
	}
	var edges int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(source)
		if err != nil {
			b.Fatal(err)
		}
		edges += res.EdgesTraversed
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(edges)/sec/1e6, "MTEPS")
	}
	b.ReportMetric(float64(edges)/float64(b.N), "edges/op")
}

// smallLLC mirrors the experiment harness's scaled cache (8 MiB / 64).
const smallLLC = 128 << 10

func paperOptions(vis bfs.VISKind, scheme bfs.Scheme) bfs.Options {
	o := bfs.Default(2)
	o.VIS = vis
	o.Scheme = scheme
	o.CacheBytes = smallLLC
	o.L2Bytes = smallLLC / 32
	return o
}

// BenchmarkFig4VIS compares the visited-structure variants of Figure 4
// on a UR graph sized so the bit structure no longer fits the (scaled)
// cache.
func BenchmarkFig4VIS(b *testing.B) {
	g := urGraph(b, 1<<20, 8)
	for _, vis := range []bfs.VISKind{
		bfs.VISNone, bfs.VISAtomicBit, bfs.VISByte, bfs.VISBit, bfs.VISPartitioned,
	} {
		b.Run(vis.String(), func(b *testing.B) {
			benchBFS(b, g, paperOptions(vis, bfs.SchemeLoadBalanced), 0)
		})
	}
}

// BenchmarkFig5Scheme compares the multi-socket schemes of Figure 5 on
// the three workload families at |V| = 256K (16M / 64).
func BenchmarkFig5Scheme(b *testing.B) {
	families := map[string]*graph.Graph{
		"UR":     urGraph(b, 1<<18, 8),
		"RMAT":   rmatGraph(b, 18, 8),
		"Stress": stressGraph(b, 1<<18, 8),
	}
	for _, name := range []string{"UR", "RMAT", "Stress"} {
		g := families[name]
		for _, scheme := range []bfs.Scheme{
			bfs.SchemeSinglePhase, bfs.SchemeSocketAware, bfs.SchemeLoadBalanced,
		} {
			b.Run(name+"/"+scheme.String(), func(b *testing.B) {
				benchBFS(b, g, paperOptions(bfs.VISPartitioned, scheme), 0)
			})
		}
	}
}

// BenchmarkFig6Comparison pits the paper's full configuration against
// the atomic-bitmap single-phase baseline (Figure 6).
func BenchmarkFig6Comparison(b *testing.B) {
	for _, fam := range []struct {
		name string
		g    *graph.Graph
	}{
		{"UR", urGraph(b, 1<<18, 16)},
		{"RMAT", rmatGraph(b, 18, 16)},
	} {
		b.Run(fam.name+"/baseline-atomic", func(b *testing.B) {
			o := paperOptions(bfs.VISAtomicBit, bfs.SchemeSinglePhase)
			o.Rearrange, o.BatchBinning, o.PrefetchDist = false, false, 0
			benchBFS(b, fam.g, o, 0)
		})
		b.Run(fam.name+"/ours", func(b *testing.B) {
			benchBFS(b, fam.g, paperOptions(bfs.VISPartitioned, bfs.SchemeLoadBalanced), 0)
		})
	}
}

// BenchmarkFig7Analogues traverses each Table II analogue at bench scale
// (Figure 7). Generation happens once and is excluded from timing.
func BenchmarkFig7Analogues(b *testing.B) {
	type entry struct {
		name string
		g    *graph.Graph
	}
	cached, _ := graphCache.Load("analogues")
	var list []entry
	if cached == nil {
		analogues, err := experiments.BuildAnalogues(experiments.Config{Scale: 1024, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range analogues {
			list = append(list, entry{a.Name, a.G})
		}
		graphCache.Store("analogues", list)
	} else {
		list = cached.([]entry)
	}
	for _, a := range list {
		b.Run(a.name, func(b *testing.B) {
			root, _ := graph.LargestReach(a.g, 4)
			benchBFS(b, a.g, paperOptions(bfs.VISPartitioned, bfs.SchemeLoadBalanced), root)
		})
	}
}

// BenchmarkFig8Instrumented measures the cost of the per-step metric and
// traffic accounting used for Figure 8's model validation.
func BenchmarkFig8Instrumented(b *testing.B) {
	g := rmatGraph(b, 18, 8)
	for _, instr := range []bool{false, true} {
		name := "plain"
		if instr {
			name = "instrumented"
		}
		b.Run(name, func(b *testing.B) {
			o := paperOptions(bfs.VISPartitioned, bfs.SchemeLoadBalanced)
			o.Instrument = instr
			benchBFS(b, g, o, 0)
		})
	}
}

// BenchmarkTable1Model measures one full model evaluation (all of
// Eqns IV.1–IV.4) — the per-configuration cost of Table I-based
// predictions.
func BenchmarkTable1Model(b *testing.B) {
	p := model.NehalemX5570()
	w := model.WorkedExampleWorkload()
	for i := 0; i < b.N; i++ {
		if _, err := model.Predict(p, w, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Generation measures synthetic graph construction rates
// for the main generator families backing Table II.
func BenchmarkTable2Generation(b *testing.B) {
	b.Run("UR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gen.UniformRandom(1<<17, 16, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RMAT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gen.RMAT(gen.Graph500Params(17, 16), uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gen.Grid2D(360, 360, 0, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblations measures the latency-hiding features of §V-A:
// rearrangement, batched binning, prefetch distance and PBV encoding.
func BenchmarkAblations(b *testing.B) {
	g := rmatGraph(b, 18, 16)
	full := paperOptions(bfs.VISPartitioned, bfs.SchemeLoadBalanced)
	variants := []struct {
		name string
		mod  func(bfs.Options) bfs.Options
	}{
		{"full", func(o bfs.Options) bfs.Options { return o }},
		{"no-rearrange", func(o bfs.Options) bfs.Options { o.Rearrange = false; return o }},
		{"no-batch", func(o bfs.Options) bfs.Options { o.BatchBinning = false; return o }},
		{"no-prefetch", func(o bfs.Options) bfs.Options { o.PrefetchDist = 0; return o }},
		{"pair-encoding", func(o bfs.Options) bfs.Options { o.Encoding = bfs.EncodingPair; return o }},
		{"marker-encoding", func(o bfs.Options) bfs.Options { o.Encoding = bfs.EncodingMarker; return o }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			benchBFS(b, g, v.mod(full), 0)
		})
	}
}

// BenchmarkHybridDirection compares the direction-optimizing hybrid
// against pure top-down on the ablation R-MAT. Hybrid runs EXAMINE far
// fewer edges by design, so per-run MTEPS would understate them; both
// series therefore report MTEPS* with the top-down examined-edge count
// as numerator — wall-clock per traversal is the honest axis.
func BenchmarkHybridDirection(b *testing.B) {
	g := rmatGraph(b, 18, 16)
	full := paperOptions(bfs.VISPartitioned, bfs.SchemeLoadBalanced)
	ref, err := bfs.NewEngine(g, full)
	if err != nil {
		b.Fatal(err)
	}
	refRes, err := ref.Run(0)
	if err != nil {
		b.Fatal(err)
	}
	refEdges := refRes.EdgesTraversed

	variants := []struct {
		name string
		mod  func(bfs.Options) bfs.Options
	}{
		{"topdown", func(o bfs.Options) bfs.Options { return o }},
		{"hybrid", func(o bfs.Options) bfs.Options { o.Hybrid = true; return o }},
		{"hybrid-forced", func(o bfs.Options) bfs.Options {
			o.Hybrid = true
			o.Alpha, o.Beta = math.Inf(1), math.Inf(1)
			return o
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			e, err := bfs.NewEngine(g, v.mod(full))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(0); err != nil { // warmup (lazy transpose)
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(refEdges)*float64(b.N)/sec/1e6, "MTEPS*")
			}
		})
	}
}

// BenchmarkTranspose measures in-adjacency construction — the one-time
// cost a directed hybrid traversal pays before its first switch.
func BenchmarkTranspose(b *testing.B) {
	g := rmatGraph(b, 18, 16)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if g.Transpose() == nil {
				b.Fatal("nil transpose")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if g.TransposeParallel(0) == nil {
				b.Fatal("nil transpose")
			}
		}
	})
}

// BenchmarkSyncVsAsync compares the synchronous engine against the
// asynchronous (label-correcting) class the paper contrasts in §I, on a
// low-diameter power-law graph and a high-diameter road grid.
func BenchmarkSyncVsAsync(b *testing.B) {
	lowDiam := rmatGraph(b, 17, 16)
	highDiam := cachedGraph(b, "grid/360", func() (*graph.Graph, error) {
		return gen.Grid2D(360, 360, 0, 9)
	})
	for _, w := range []struct {
		name string
		g    *graph.Graph
	}{{"rmat", lowDiam}, {"grid", highDiam}} {
		b.Run(w.name+"/sync", func(b *testing.B) {
			benchBFS(b, w.g, paperOptions(bfs.VISPartitioned, bfs.SchemeLoadBalanced), 0)
		})
		b.Run(w.name+"/async", func(b *testing.B) {
			var edges int64
			for i := 0; i < b.N; i++ {
				res, err := bfs.RunAsync(w.g, 0, 4)
				if err != nil {
					b.Fatal(err)
				}
				edges += res.EdgesTraversed
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(edges)/sec/1e6, "MTEPS")
			}
		})
		b.Run(w.name+"/worksteal", func(b *testing.B) {
			var edges int64
			for i := 0; i < b.N; i++ {
				res, err := bfs.RunWorkStealing(w.g, 0, 4)
				if err != nil {
					b.Fatal(err)
				}
				edges += res.EdgesTraversed
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(edges)/sec/1e6, "MTEPS")
			}
		})
	}
}

// BenchmarkSerialReference is the Figure 1 baseline: the plain queue BFS.
func BenchmarkSerialReference(b *testing.B) {
	g := urGraph(b, 1<<18, 16)
	var edges int64
	for i := 0; i < b.N; i++ {
		res, err := bfs.RunSerial(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		edges += res.EdgesTraversed
	}
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(edges)/sec/1e6, "MTEPS")
	}
}
