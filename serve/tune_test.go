package serve

// Serving-layer tests of model-driven auto-tuning: profiles enter the
// serving table at load, ride the durable journal across restarts, pin
// to defaults on request, and never change query answers.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/tune"
)

// tuneGraph is large enough to clear the tuner's degeneracy guards
// (|V| >= 1024, |E| >= 32768) so calibration actually runs.
func tuneGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.Graph500Params(12, 16), 42)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sameKnobs compares the engine-facing knobs of two profiles,
// ignoring provenance (Source, CalibrationMS).
func sameKnobs(a, b *tune.Profile) bool {
	return a.Hybrid == b.Hybrid && a.Alpha == b.Alpha && a.Beta == b.Beta &&
		a.VIS == b.VIS && a.PrefetchDist == b.PrefetchDist &&
		a.BatchBinning == b.BatchBinning && a.BatchWidth == b.BatchWidth
}

// TestAutoTuneQueryParity: with auto-tuning on, queries still match the
// serial reference (tuning may change speed, never answers), and the
// profile is visible through /stats and /readyz surfaces.
func TestAutoTuneQueryParity(t *testing.T) {
	g := tuneGraph(t)
	s := newTestService(t, g, Config{AutoTune: true})

	prof := s.TuneProfile("g")
	if prof == nil || prof.Source != tune.SourceCalibrated {
		t.Fatalf("profile = %+v, want calibrated", prof)
	}
	want := serialDepths(t, g, 3)
	resp, err := s.Query(context.Background(), Request{Graph: "g", Source: 3, AllDepths: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if resp.Depths[v] != want[v] {
			t.Fatalf("tuned depth(%d) = %d, want %d", v, resp.Depths[v], want[v])
		}
	}

	st := s.Stats()
	if st.TuneCalibrations != 1 {
		t.Errorf("tune_calibrations = %d, want 1", st.TuneCalibrations)
	}
	if len(st.Tunings) != 1 || st.Tunings[0].Graph != "g" {
		t.Fatalf("stats tunings = %+v, want one entry for g", st.Tunings)
	}
	if st.Tunings[0].MeasuredMTEPS <= 0 {
		t.Errorf("measured MTEPS not accumulating after a query: %+v", st.Tunings[0])
	}
	rs := s.Ready()
	if len(rs.Graphs) != 1 || rs.Graphs[0].Tune != tune.SourceCalibrated {
		t.Errorf("readyz tune provenance = %+v, want calibrated", rs.Graphs)
	}
	if rs.Graphs[0].TuneMeasuredMTEPS <= 0 {
		t.Errorf("readyz measured MTEPS = %v, want > 0", rs.Graphs[0].TuneMeasuredMTEPS)
	}
}

// TestAutoTuneOffNoProfile: the default configuration is unchanged by
// this feature — no profile, no stats entries, no readyz fields.
func TestAutoTuneOffNoProfile(t *testing.T) {
	s := newTestService(t, tuneGraph(t), Config{})
	if prof := s.TuneProfile("g"); prof != nil {
		t.Fatalf("profile = %+v, want nil with AutoTune off", prof)
	}
	st := s.Stats()
	if st.TuneCalibrations != 0 || len(st.Tunings) != 0 {
		t.Errorf("untuned service leaked tuning stats: %+v", st)
	}
	if rs := s.Ready(); rs.Graphs[0].Tune != "" {
		t.Errorf("untuned readyz reports provenance %q", rs.Graphs[0].Tune)
	}
}

// TestTuneProfileDurableReuse is the kill-and-restart guarantee: the
// journaled profile is reused verbatim (Source flipped to "journal")
// and the restarted service runs zero calibrations.
func TestTuneProfileDurableReuse(t *testing.T) {
	stateDir := t.TempDir()
	path := saveGraph(t, tuneGraph(t), "g.csr")

	s1 := New(Config{StateDir: stateDir, AutoTune: true})
	if _, err := s1.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.LoadGraph("g", path); err != nil {
		t.Fatal(err)
	}
	prof1 := s1.TuneProfile("g")
	if prof1 == nil || prof1.Source != tune.SourceCalibrated {
		t.Fatalf("first boot profile = %+v, want calibrated", prof1)
	}
	seq := s1.Stats().JournalSeq
	shutdown(t, s1)

	s2 := New(Config{StateDir: stateDir, AutoTune: true})
	defer shutdown(t, s2)
	sum, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Tuned) != 1 || sum.Tuned[0] != "g" || len(sum.Recalibrated) != 0 {
		t.Fatalf("recovery summary tuned=%v recalibrated=%v, want journal reuse of g",
			sum.Tuned, sum.Recalibrated)
	}
	if got := s2.Stats().TuneCalibrations; got != 0 {
		t.Errorf("restart ran %d calibrations, want 0 (journal reuse)", got)
	}
	if got := s2.Stats().JournalSeq; got != seq {
		t.Errorf("restart moved the journal: seq %d -> %d", seq, got)
	}
	prof2 := s2.TuneProfile("g")
	if prof2 == nil || prof2.Source != tune.SourceJournal {
		t.Fatalf("restart profile = %+v, want journal provenance", prof2)
	}
	if !sameKnobs(prof1, prof2) {
		t.Errorf("journal round trip changed knobs:\n s1=%+v\n s2=%+v", prof1, prof2)
	}
	if prof2.PredictedMTEPS != prof1.PredictedMTEPS {
		t.Errorf("predicted MTEPS drifted across restart: %v -> %v",
			prof1.PredictedMTEPS, prof2.PredictedMTEPS)
	}
}

// TestLoadTuneOverride: the per-load Tune field wins over Config in
// both directions — false pins defaults under AutoTune, true forces a
// calibration on an untuned service.
func TestLoadTuneOverride(t *testing.T) {
	path := saveGraph(t, tuneGraph(t), "g.csr")
	no, yes := false, true

	s1 := New(Config{AutoTune: true})
	defer func() { _ = s1.Shutdown(context.Background()) }()
	if _, err := s1.LoadGraphOptions("pinned", path, LoadOptions{Tune: &no}); err != nil {
		t.Fatal(err)
	}
	if prof := s1.TuneProfile("pinned"); prof != nil {
		t.Fatalf(`"tune":false still produced a profile: %+v`, prof)
	}

	s2 := New(Config{})
	defer func() { _ = s2.Shutdown(context.Background()) }()
	if _, err := s2.LoadGraphOptions("forced", path, LoadOptions{Tune: &yes}); err != nil {
		t.Fatal(err)
	}
	if prof := s2.TuneProfile("forced"); prof == nil || prof.Source != tune.SourceCalibrated {
		t.Fatalf(`"tune":true did not calibrate: %+v`, prof)
	}
}

// TestHTTPLoadTuneField: the JSON load body accepts "tune" (the handler
// rejects unknown fields, so this pins the wire contract) and the
// override reaches the serving table.
func TestHTTPLoadTuneField(t *testing.T) {
	path := saveGraph(t, tuneGraph(t), "g.csr")
	s := New(Config{AutoTune: true})
	defer func() { _ = s.Shutdown(context.Background()) }()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/graphs/load", "application/json",
		strings.NewReader(`{"name":"g","path":"`+path+`","tune":false}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf(`load with "tune":false = %d`, resp.StatusCode)
	}
	if prof := s.TuneProfile("g"); prof != nil {
		t.Fatalf("HTTP tune:false ignored, profile = %+v", prof)
	}
}
