// Model-driven auto-tuning at graph load (see the tune package). The
// service calibrates once per loaded graph — off to the side, before
// the serving-table swap — and the resulting profile becomes serving
// state: the graph's engine pool is built with the tuned options, the
// batching scheduler clamps its round width to the tuned lane count,
// and the durable manifest journals the profile inside the graph's
// record so a kill -9 restart reuses it without re-calibrating.
package serve

import (
	"sync/atomic"

	"fastbfs/graph"
	"fastbfs/tune"
)

// logf routes daemon-visible notices (calibration results, journal
// reuse) to Config.Logf; nil drops them.
func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// calibrateOptions derives the tuner's view of the engine configuration
// this service builds pools with.
func (s *Service) calibrateOptions() tune.Options {
	return tune.Options{
		Sockets:    max(s.opts.Sockets, 1),
		CacheBytes: s.opts.CacheBytes,
		L2Bytes:    s.opts.L2Bytes,
		MaxBatch:   s.cfg.MaxBatch,
	}
}

// calibrateProfile runs the calibration pass for one graph. It never
// fails a load: any panic out of the tuner (a bug, not an expected
// path) is contained here and demoted to the default profile — serving
// a graph on defaults always beats not serving it.
func (s *Service) calibrateProfile(name string, g *graph.Graph) (prof *tune.Profile) {
	defer func() {
		if rec := recover(); rec != nil {
			prof = tune.Defaults()
			s.logf("serve: graph %q: calibration panicked (%v); serving on defaults", name, rec)
		}
	}()
	prof = tune.Calibrate(g, s.calibrateOptions())
	s.stats.tuneCalibrations.Add(1)
	s.logf("serve: graph %q: calibrated tuning profile: %s (%.1fms)", name, prof.Summary(), prof.CalibrationMS)
	return prof
}

// maybeCalibrate decides the profile for a graph entering the serving
// table. reqTune is the per-load override ("tune":false pins defaults);
// nil defers to Config.AutoTune. A nil return means "no tuning state at
// all" (pure defaults, nothing journaled beyond the spec).
func (s *Service) maybeCalibrate(name string, g *graph.Graph, reqTune *bool) *tune.Profile {
	enabled := s.cfg.AutoTune
	if reqTune != nil {
		enabled = *reqTune
	}
	if !enabled {
		return nil
	}
	return s.calibrateProfile(name, g)
}

// TuneStatus is one graph's tuning state as /stats reports it.
type TuneStatus struct {
	Graph string `json:"graph"`
	// Profile is the serving profile (Source says whether it came from a
	// fresh calibration, the journal, or is the pinned default).
	Profile *tune.Profile `json:"profile"`
	// MeasuredMTEPS is the graph's observed serving throughput —
	// traversed edges over busy traversal time across batched sweeps and
	// single-source runs — comparable against Profile.PredictedMTEPS.
	// 0 until the graph has served at least one traversal.
	MeasuredMTEPS float64 `json:"measured_mteps,omitempty"`
}

// measuredMTEPS reads a graph's serving-throughput accumulators.
func measuredMTEPS(edges, nanos *atomic.Int64) float64 {
	e, n := edges.Load(), nanos.Load()
	if e <= 0 || n <= 0 {
		return 0
	}
	return float64(e) * 1e3 / float64(n) // edges/ns × 1e3 = M edges/s
}

// TuneStatuses reports the tuning state of every resident graph, sorted
// is left to the caller (Stats sorts by graph name for stable output).
func (s *Service) TuneStatuses() []TuneStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TuneStatus, 0, len(s.graphs))
	for _, gs := range s.graphs {
		if gs.profile == nil {
			continue
		}
		out = append(out, TuneStatus{
			Graph:         gs.name,
			Profile:       gs.profile,
			MeasuredMTEPS: measuredMTEPS(&gs.qEdges, &gs.qNanos),
		})
	}
	return out
}

// TuneProfile returns the serving profile for one graph (nil when the
// graph is untuned or unknown). Tests and ops tooling.
func (s *Service) TuneProfile(name string) *tune.Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gs := s.graphs[name]; gs != nil {
		return gs.profile
	}
	return nil
}
