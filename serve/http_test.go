package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"fastbfs/graph/gen"
)

func postQuery(t *testing.T, url string, req Request) (*http.Response, *Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, &out
}

func TestHTTPQueryRoundtrip(t *testing.T) {
	g, err := gen.Grid2D(10, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, g, Config{})
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	// Grid vertex id r*cols+c has depth r+c from vertex 0.
	hr, resp := postQuery(t, ts.URL, Request{Graph: "g", Source: 0, Targets: []uint32{9, 99}})
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d", hr.StatusCode)
	}
	if d := resp.Targets[0].Depth; d != 9 {
		t.Errorf("depth(9) = %d, want 9", d)
	}
	if d := resp.Targets[1].Depth; d != 18 {
		t.Errorf("depth(99) = %d, want 18", d)
	}

	// healthz flips 200 → 503 at drain.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hresp.StatusCode)
	}

	// graphs and stats respond with JSON.
	gresp, err := http.Get(ts.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var infos []GraphInfo
	if err := json.NewDecoder(gresp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if len(infos) != 1 || infos[0].Vertices != 100 {
		t.Fatalf("graphs = %+v", infos)
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsSnapshot
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Requests == 0 {
		t.Errorf("stats show no requests: %+v", st)
	}

	s.BeginDrain()
	hresp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", hresp.StatusCode)
	}
	hr, _ = postQuery(t, ts.URL, Request{Graph: "g", Source: 0})
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining query = %d, want 503", hr.StatusCode)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	g, err := gen.UniformRandom(500, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, g, Config{})
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	hr, _ := postQuery(t, ts.URL, Request{Graph: "missing", Source: 0})
	if hr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown graph = %d, want 404", hr.StatusCode)
	}
	hr, _ = postQuery(t, ts.URL, Request{Graph: "g", Source: 50000})
	if hr.StatusCode != http.StatusBadRequest {
		t.Errorf("bad source = %d, want 400", hr.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query = %d, want 405", resp.StatusCode)
	}
}

// TestHTTPConcurrentClients exercises the full HTTP path under the race
// detector with parallel clients on distinct sources.
func TestHTTPConcurrentClients(t *testing.T) {
	g := testGraph(t)
	s := newTestService(t, g, Config{BatchThreshold: 2})
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	const clients = 16
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			source := uint32((c * 17) % g.NumVertices())
			body, err := json.Marshal(Request{Graph: "g", Source: source, Targets: []uint32{source}})
			if err != nil {
				errs[c] = err
				return
			}
			hr, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[c] = err
				return
			}
			defer hr.Body.Close()
			if hr.StatusCode != http.StatusOK {
				errs[c] = fmt.Errorf("status %d", hr.StatusCode)
				return
			}
			var resp Response
			if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
				errs[c] = err
				return
			}
			if resp.Targets[0].Depth != 0 {
				errs[c] = fmt.Errorf("depth(source) = %d, want 0", resp.Targets[0].Depth)
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
}
