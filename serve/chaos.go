// Chaos plumbing: the serve package's fault-injection points. All of
// them are inert when Config.Injector is nil (one predictable branch
// per site); with an injector — normally a deterministic seed-hashed
// faultinject.Plan — the query path can be disturbed at every layer:
//
//	engine.step  — delay or panic inside a running engine (StepHook)
//	pool.acquire — spurious ErrEngineBusy-style acquire failures
//	sweep.run    — delay, error or panic of a whole batched round
//	graph.load   — mid-stream I/O errors while loading a graph file
//
// Client-side sites (client.drop, client.stall) are decided by chaos
// clients themselves; the service only ever sees their consequences
// (contexts cancelled mid-wait, responses read slowly).
package serve

import (
	"io"
	"time"

	"fastbfs/internal/faultinject"
)

// chaosStepHook is installed as the engines' StepHook when an injector
// is configured: per completed engine step it may sleep (slow
// traversal) or panic (mid-run crash, recovered by the engine's
// parallel runtime and quarantined by the pool).
func (s *Service) chaosStepHook(step int) {
	key := s.seq.Next(faultinject.SiteEngineStep)
	d := faultinject.Decide(s.inj, faultinject.SiteEngineStep, key)
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	if d.Panic {
		panic(faultinject.PanicValue{Site: faultinject.SiteEngineStep, Key: key})
	}
	// Decision errors are meaningless mid-step; only Delay/Panic apply.
}

// chaosAcquire decides the fate of one pool acquire: an injected error
// simulates a spurious ErrEngineBusy / failed engine build.
func (s *Service) chaosAcquire() error {
	if s.inj == nil {
		return nil
	}
	key := s.seq.Next(faultinject.SiteAcquire)
	d := faultinject.Decide(s.inj, faultinject.SiteAcquire, key)
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	return d.Err
}

// chaosSweep decides the fate of one batched round: it may delay the
// sweep, fail it with an error, or panic (recovered by the round's
// guard, failing every flight in the round).
func (s *Service) chaosSweep() error {
	if s.inj == nil {
		return nil
	}
	key := s.seq.Next(faultinject.SiteSweep)
	d := faultinject.Decide(s.inj, faultinject.SiteSweep, key)
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	if d.Panic {
		panic(faultinject.PanicValue{Site: faultinject.SiteSweep, Key: key})
	}
	return d.Err
}

// chaosLoadReader wraps a graph-file reader according to the
// graph.load site: a firing fault makes the reader fail mid-stream
// after a hash-chosen prefix, exercising ReadFrom's error paths the
// way a dying disk would.
func (s *Service) chaosLoadReader(r io.Reader) io.Reader {
	if s.inj == nil {
		return r
	}
	key := s.seq.Next(faultinject.SiteGraphLoad)
	d := faultinject.Decide(s.inj, faultinject.SiteGraphLoad, key)
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	if d.Err == nil {
		return r
	}
	// Fail after a deterministic prefix in [0, 64 KiB): sometimes inside
	// the header, sometimes mid-array.
	prefix := int64((key*8191 + 17) % (64 << 10))
	return &failingReader{r: r, remaining: prefix, err: d.Err}
}

// failingReader passes through remaining bytes, then fails every read
// with err — a deterministic stand-in for a mid-stream I/O error.
type failingReader struct {
	r         io.Reader
	remaining int64
	err       error
}

func (f *failingReader) Read(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, f.err
	}
	if int64(len(p)) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.r.Read(p)
	f.remaining -= int64(n)
	return n, err
}
