package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
)

// testGraph is a small RMAT graph shared by most tests.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.Graph500Params(11, 8), 42)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newTestService(t testing.TB, g *graph.Graph, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	if err := s.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func serialDepths(t testing.TB, g *graph.Graph, source uint32) []int32 {
	t.Helper()
	ref, err := bfs.RunSerial(g, source)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int32, g.NumVertices())
	for v := range out {
		out[v] = ref.Depth(uint32(v))
	}
	return out
}

func TestQueryMatchesSerial(t *testing.T) {
	g := testGraph(t)
	s := newTestService(t, g, Config{})
	want := serialDepths(t, g, 7)
	resp, err := s.Query(context.Background(), Request{Graph: "g", Source: 7, AllDepths: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Depths) != len(want) {
		t.Fatalf("got %d depths, want %d", len(resp.Depths), len(want))
	}
	for v := range want {
		if resp.Depths[v] != want[v] {
			t.Fatalf("depth(%d) = %d, want %d", v, resp.Depths[v], want[v])
		}
	}
	if resp.Visited == 0 || resp.Steps == 0 {
		t.Errorf("empty summary: visited %d steps %d", resp.Visited, resp.Steps)
	}
}

// TestConcurrentDistinctSourcesMatchSerial is the concurrency
// acceptance check: parallel clients querying distinct sources all
// receive depths identical to the serial reference.
func TestConcurrentDistinctSourcesMatchSerial(t *testing.T) {
	g := testGraph(t)
	s := newTestService(t, g, Config{BatchThreshold: 4, BatchLinger: 5 * time.Millisecond})
	const clients = 32
	sources := make([]uint32, clients)
	wants := make([][]int32, clients)
	for c := range sources {
		sources[c] = uint32((c * 61) % g.NumVertices())
		wants[c] = serialDepths(t, g, sources[c])
	}
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := s.Query(context.Background(), Request{Graph: "g", Source: sources[c], AllDepths: true})
			if err != nil {
				errs[c] = err
				return
			}
			for v := range wants[c] {
				if resp.Depths[v] != wants[c][v] {
					errs[c] = errors.New("depth mismatch")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
}

// TestBatchedSweepServesLoad drives enough concurrent load through a
// lingering dispatcher that queries are served by multi-source sweeps,
// and checks their results against the serial reference.
func TestBatchedSweepServesLoad(t *testing.T) {
	g := testGraph(t)
	s := newTestService(t, g, Config{
		BatchThreshold: 2,
		BatchLinger:    100 * time.Millisecond,
		CacheEntries:   -1, // force every query through the scheduler
	})
	const clients = 64
	sources := make([]uint32, clients)
	wants := make([][]int32, clients)
	for c := range sources {
		sources[c] = uint32((c * 131) % g.NumVertices())
		wants[c] = serialDepths(t, g, sources[c])
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	batched := make([]bool, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := s.Query(context.Background(), Request{Graph: "g", Source: sources[c], AllDepths: true})
			if err != nil {
				errs[c] = err
				return
			}
			batched[c] = resp.Batched
			for v := range wants[c] {
				if resp.Depths[v] != wants[c][v] {
					errs[c] = errors.New("depth mismatch in batched result")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	st := s.Stats()
	if st.Sweeps == 0 || st.BatchedQueries == 0 {
		t.Fatalf("no batched sweeps under load: %+v", st)
	}
	anyBatched := false
	for _, b := range batched {
		anyBatched = anyBatched || b
	}
	if !anyBatched {
		t.Error("no response was marked batched")
	}
}

// TestOverloadRejected fills the admission queue while the dispatcher
// lingers and checks the overflow query is rejected distinctly.
func TestOverloadRejected(t *testing.T) {
	g := testGraph(t)
	s := newTestService(t, g, Config{
		MaxQueue:     2,
		BatchLinger:  300 * time.Millisecond,
		CacheEntries: -1,
		ShedTarget:   time.Minute, // the queued flights stay "fresh": pure tail drop
	})
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(src uint32) {
			defer wg.Done()
			<-release
			_, err := s.Query(context.Background(), Request{Graph: "g", Source: src})
			if err != nil {
				t.Errorf("admitted query failed: %v", err)
			}
		}(uint32(i))
	}
	close(release)
	// Wait until both flights are admitted (queued, dispatcher lingering).
	deadline := time.Now().Add(2 * time.Second)
	for s.QueueDepth() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("flights never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Query(context.Background(), Request{Graph: "g", Source: 99}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow query: err = %v, want ErrOverloaded", err)
	}
	wg.Wait()
	if st := s.Stats(); st.Rejected == 0 {
		t.Errorf("rejection not counted: %+v", st)
	}
}

func TestDeadlineExpires(t *testing.T) {
	g := testGraph(t)
	s := newTestService(t, g, Config{CacheEntries: -1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Query(ctx, Request{Graph: "g", Source: 0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The service recovers: the same source answers fine afterwards.
	resp, err := s.Query(context.Background(), Request{Graph: "g", Source: 0, Targets: []uint32{0}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Targets[0].Depth != 0 {
		t.Fatalf("depth(source) = %d, want 0", resp.Targets[0].Depth)
	}
}

func TestDrainRejectsNewQueries(t *testing.T) {
	g := testGraph(t)
	s := newTestService(t, g, Config{})
	if _, err := s.Query(context.Background(), Request{Graph: "g", Source: 1}); err != nil {
		t.Fatal(err)
	}
	s.BeginDrain()
	if _, err := s.Query(context.Background(), Request{Graph: "g", Source: 2}); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitsAndCoalescing(t *testing.T) {
	g := testGraph(t)
	s := newTestService(t, g, Config{})
	if _, err := s.Query(context.Background(), Request{Graph: "g", Source: 5}); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Query(context.Background(), Request{Graph: "g", Source: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("second identical query not served from cache")
	}
	if st := s.Stats(); st.CacheHits == 0 {
		t.Errorf("cache hit not counted: %+v", st)
	}
}

func TestPathQuery(t *testing.T) {
	g, err := gen.Grid2D(20, 20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.AddGraph("grid", g); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	target := uint32(399) // opposite corner: depth 19+19
	resp, err := s.Query(context.Background(), Request{Graph: "grid", Source: 0, PathTo: &target})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PathFound == nil || !*resp.PathFound {
		t.Fatal("path not found")
	}
	if len(resp.Path) != 39 {
		t.Fatalf("path length %d, want 39 (depth 38)", len(resp.Path))
	}
	if resp.Path[0] != 0 || resp.Path[len(resp.Path)-1] != target {
		t.Fatalf("path endpoints %d..%d, want 0..%d", resp.Path[0], resp.Path[len(resp.Path)-1], target)
	}
	for i := 1; i < len(resp.Path); i++ {
		if !g.HasEdge(resp.Path[i-1], resp.Path[i]) {
			t.Fatalf("path hop (%d,%d) is not an edge", resp.Path[i-1], resp.Path[i])
		}
	}
}

func TestRequestValidation(t *testing.T) {
	g := testGraph(t)
	s := newTestService(t, g, Config{})
	ctx := context.Background()
	if _, err := s.Query(ctx, Request{Graph: "nope", Source: 0}); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("unknown graph: err = %v", err)
	}
	if _, err := s.Query(ctx, Request{Graph: "g", Source: 1 << 30}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad source: err = %v", err)
	}
	if _, err := s.Query(ctx, Request{Graph: "g", Source: 0, Targets: []uint32{1 << 30}}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad target: err = %v", err)
	}
}

func TestEnginePool(t *testing.T) {
	g := testGraph(t)
	p := NewEnginePool(g, bfs.Default(1), 2)
	ctx := context.Background()
	e1, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p.Created() != 2 {
		t.Fatalf("created = %d, want 2", p.Created())
	}
	// Pool exhausted: Acquire blocks until Release or ctx expiry.
	expired, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("exhausted pool: err = %v", err)
	}
	p.Release(e1)
	e3, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if e3 != e1 {
		t.Error("pool did not reuse the released engine")
	}
	if p.Created() != 2 {
		t.Fatalf("created grew to %d", p.Created())
	}
	p.Release(e2)
	p.Release(e3)
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	tr := func(s uint32) *Traversal { return &Traversal{Source: s} }
	c.put(1, tr(1))
	c.put(2, tr(2))
	if _, ok := c.get(1); !ok { // 1 now most recent
		t.Fatal("entry 1 missing")
	}
	c.put(3, tr(3)) // evicts 2
	if _, ok := c.get(2); ok {
		t.Error("LRU victim 2 still cached")
	}
	if _, ok := c.get(1); !ok {
		t.Error("recently used 1 evicted")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	d := newLRUCache(-1)
	d.put(1, tr(1))
	if _, ok := d.get(1); ok {
		t.Error("disabled cache returned a hit")
	}
}
