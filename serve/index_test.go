package serve

// Tests of the distance-oracle index tier wired through the service:
// parity of index-answered distances against serial BFS (including
// after a restart remounts the journaled artifact), build lifecycle
// (busy, cancel, drop, failure containment), torn-artifact rejection
// with fresh rebuild, and the HTTP surface.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/xrand"
)

// waitIndexState polls until the graph's index reaches want.
func waitIndexState(t *testing.T, s *Service, name, want string) IndexStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := s.IndexStatus(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State == IndexFailed && want != IndexFailed {
			t.Fatalf("index build failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("index state %q (want %q) after timeout (err %q)", st.State, want, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkDistanceOnly queries distances for targets and requires the
// response — whichever path served it — to be certified exact and
// byte-identical to what serial BFS says.
func checkDistanceOnly(t *testing.T, s *Service, name string, g *graph.Graph, src uint32, targets []uint32) *Response {
	t.Helper()
	resp, err := s.Query(context.Background(), Request{Graph: name, Source: src, Targets: targets, DistanceOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Exact == nil || !*resp.Exact {
		t.Fatalf("distance-only response is not certified exact: %+v", resp)
	}
	ref, err := bfs.RunSerial(g, src)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]TargetResult, len(targets))
	for i, v := range targets {
		d := ref.Depth(v)
		want[i] = TargetResult{Vertex: v, Reached: d >= 0, Depth: d, Parent: -1}
	}
	gotJSON, _ := json.Marshal(resp.Targets)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("source %d: distance-only targets diverge from serial BFS\n got %s\nwant %s", src, gotJSON, wantJSON)
	}
	return resp
}

// randomPairs draws query load: sources and small target sets.
func randomPairs(n int, count int, seed uint64) [][2][]uint32 {
	rng := xrand.New(seed)
	out := make([][2][]uint32, count)
	for i := range out {
		src := uint32(rng.Intn(n))
		targets := make([]uint32, 1+rng.Intn(4))
		for j := range targets {
			targets[j] = uint32(rng.Intn(n))
		}
		out[i] = [2][]uint32{{src}, targets}
	}
	return out
}

func symmetricOpts() *bfs.Options {
	opts := bfs.Default(1)
	opts.Hybrid = true
	opts.Symmetric = true
	return &opts
}

// TestIndexParityAndRestart is the serve-level half of the parity
// harness: on a symmetric RMAT graph and a grid, index-served distances
// must match serial BFS exactly, the index must keep matching after a
// restart remounts the journaled artifact, and a dropped index must
// stay dropped across a restart.
func TestIndexParityAndRestart(t *testing.T) {
	rmat, err := gen.RMAT(gen.Graph500Params(9, 8), 5)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := gen.Grid2D(24, 24, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"rmat": rmat.Symmetrize(),
		"grid": grid,
	}
	paths := map[string]string{
		"rmat": saveGraph(t, graphs["rmat"], "rmat.csr"),
		"grid": saveGraph(t, graphs["grid"], "grid.csr"),
	}
	stateDir := t.TempDir()
	cfg := Config{StateDir: stateDir, Options: symmetricOpts()}

	s1 := New(cfg)
	if _, err := s1.Recover(); err != nil {
		t.Fatal(err)
	}
	for name, p := range paths {
		if _, err := s1.LoadGraph(name, p); err != nil {
			t.Fatal(err)
		}
		if _, err := s1.BuildIndex(name, IndexOptions{Landmarks: 16}); err != nil {
			t.Fatal(err)
		}
	}
	for name, g := range graphs {
		st := waitIndexState(t, s1, name, IndexReady)
		if !st.Covered {
			t.Fatalf("%s: symmetric index not covered", name)
		}
		if st.Artifact != paths[name]+".idx" {
			t.Fatalf("%s: artifact %q, want %q", name, st.Artifact, paths[name]+".idx")
		}
		for _, pair := range randomPairs(g.NumVertices(), 60, 0xA11CE) {
			checkDistanceOnly(t, s1, name, g, pair[0][0], pair[1])
		}
	}
	stats := s1.Stats()
	if stats.IndexHits == 0 {
		t.Fatal("no distance-only query was served by the index")
	}
	if got := len(stats.Indexes); got != 2 {
		t.Fatalf("/stats lists %d indexes, want 2", got)
	}
	shutdown(t, s1)

	// Restart: the journal must remount both artifacts with the graphs.
	s2 := New(cfg)
	sum, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Indexes) != 2 || len(sum.IndexesRebuilding) != 0 {
		t.Fatalf("recovery remounted %v (rebuilding %v), want both remounted", sum.Indexes, sum.IndexesRebuilding)
	}
	for name, g := range graphs {
		before := s2.Stats().IndexHits
		for _, pair := range randomPairs(g.NumVertices(), 40, 0xBEE) {
			checkDistanceOnly(t, s2, name, g, pair[0][0], pair[1])
		}
		if s2.Stats().IndexHits == before {
			t.Fatalf("%s: remounted index served nothing", name)
		}
	}
	if err := s2.DropIndex("grid"); err != nil {
		t.Fatal(err)
	}
	shutdown(t, s2)

	// Restart again: the dropped index must not resurrect.
	s3 := New(cfg)
	sum, err = s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Indexes) != 1 || sum.Indexes[0] != "rmat" {
		t.Fatalf("after drop, recovery remounted %v, want [rmat]", sum.Indexes)
	}
	if st, err := s3.IndexStatus("grid"); err != nil || st.State != IndexNone {
		t.Fatalf("dropped index state = %v (%v), want none", st.State, err)
	}
	shutdown(t, s3)
}

// TestIndexTornArtifactRebuilt corrupts the persisted artifact between
// runs: recovery must CRC-reject it (never serving a byte of it) and
// start a fresh rebuild with the journaled parameters.
func TestIndexTornArtifactRebuilt(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(9, 8), 11)
	if err != nil {
		t.Fatal(err)
	}
	g = g.Symmetrize()
	path := saveGraph(t, g, "g.csr")
	stateDir := t.TempDir()
	cfg := Config{StateDir: stateDir, Options: symmetricOpts()}

	s1 := New(cfg)
	if _, err := s1.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.LoadGraph("g", path); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.BuildIndex("g", IndexOptions{Landmarks: 12, Policy: "random", Seed: 9}); err != nil {
		t.Fatal(err)
	}
	waitIndexState(t, s1, "g", IndexReady)
	shutdown(t, s1)

	// Tear the artifact the way a crash mid-write would.
	artifact := path + ".idx"
	raw, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(artifact, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(cfg)
	sum, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Indexes) != 0 || len(sum.IndexesRebuilding) != 1 {
		t.Fatalf("torn artifact: remounted %v, rebuilding %v; want rebuild only", sum.Indexes, sum.IndexesRebuilding)
	}
	st := waitIndexState(t, s2, "g", IndexReady)
	if st.Seed != 9 || st.Policy != "random" {
		t.Fatalf("rebuild lost its journaled parameters: %+v", st)
	}
	for _, pair := range randomPairs(g.NumVertices(), 40, 0xD00F) {
		checkDistanceOnly(t, s2, "g", g, pair[0][0], pair[1])
	}
	// The rebuild must have replaced the torn artifact with a valid one.
	raw2, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(raw2, raw[:len(raw)/2]) {
		t.Fatal("torn artifact was not rewritten")
	}
	shutdown(t, s2)
}

// TestIndexDirectedParityAndApprox exercises the directed (two-sided)
// labeling through the service, plus approx mode semantics.
func TestIndexDirectedParityAndApprox(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(9, 8), 31)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	defer func() { _ = s.Shutdown(context.Background()) }()
	if err := s.AddGraph("d", g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BuildIndex("d", IndexOptions{Landmarks: 24}); err != nil {
		t.Fatal(err)
	}
	st := waitIndexState(t, s, "d", IndexReady)
	if st.Artifact != "" {
		t.Fatalf("in-process graph grew an artifact: %q", st.Artifact)
	}
	n := g.NumVertices()
	for _, pair := range randomPairs(n, 80, 0xCAFE) {
		checkDistanceOnly(t, s, "d", g, pair[0][0], pair[1])
	}

	// Approx accepts upper bounds: any reported distance must be ≥ the
	// true one (and reachability claims must be true).
	rng := xrand.New(7)
	for i := 0; i < 40; i++ {
		src, dst := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		resp, err := s.Query(context.Background(), Request{
			Graph: "d", Source: src, Targets: []uint32{dst}, DistanceOnly: true, Approx: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := bfs.RunSerial(g, src)
		if err != nil {
			t.Fatal(err)
		}
		got, want := resp.Targets[0].Depth, ref.Depth(dst)
		if resp.Exact != nil && *resp.Exact {
			if got != want {
				t.Fatalf("exact approx answer %d != %d for %d→%d", got, want, src, dst)
			}
		} else if got >= 0 && (want < 0 || got < want) {
			t.Fatalf("approx bound %d below true distance %d for %d→%d", got, want, src, dst)
		}
	}
}

// TestIndexBuildFailureContained builds over a graph whose BFS depth
// exceeds the 16-bit label encoding: the build must fail into the
// failed state without disturbing query serving.
func TestIndexBuildFailureContained(t *testing.T) {
	const n = 66000 // one past maxDepth16 as a path
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: uint32(i), V: uint32(i + 1)}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	defer func() { _ = s.Shutdown(context.Background()) }()
	if err := s.AddGraph("deep", g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BuildIndex("deep", IndexOptions{Landmarks: 1}); err != nil {
		t.Fatal(err)
	}
	st := waitIndexState(t, s, "deep", IndexFailed)
	if !strings.Contains(st.Error, "depth") {
		t.Fatalf("failure reason %q does not mention depth", st.Error)
	}
	if got := s.Stats().IndexBuildsFailed; got != 1 {
		t.Fatalf("index_builds_failed = %d, want 1", got)
	}
	// Serving is untouched: distance-only falls back to exact BFS.
	resp := checkDistanceOnly(t, s, "deep", g, 0, []uint32{uint32(n - 1)})
	if resp.Index {
		t.Fatal("failed index somehow answered a query")
	}
	// A failed state can be cleared and rebuilt.
	if err := s.DropIndex("deep"); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.IndexStatus("deep"); st.State != IndexNone {
		t.Fatalf("state after dropping failed index = %s", st.State)
	}
}

// TestIndexLifecycleErrors covers the request-validation and state
// machine edges: busy, unknown graph, bad parameters, drop of nothing,
// and cancel-by-drop mid-build.
func TestIndexLifecycleErrors(t *testing.T) {
	g, err := gen.Grid2D(16, 16, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Options: symmetricOpts()})
	defer func() { _ = s.Shutdown(context.Background()) }()
	if err := s.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}

	if _, err := s.BuildIndex("missing", IndexOptions{}); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("build on unknown graph: %v", err)
	}
	if _, err := s.BuildIndex("g", IndexOptions{Policy: "bogus"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad policy: %v", err)
	}
	if _, err := s.BuildIndex("g", IndexOptions{Landmarks: -1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative landmarks: %v", err)
	}
	if err := s.DropIndex("g"); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("drop of absent index: %v", err)
	}
	if err := s.DropIndex("missing"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("drop on unknown graph: %v", err)
	}

	// Busy: fake a building state (deterministic, no race with a real
	// build), then verify a second request bounces and drop cancels.
	s.mu.Lock()
	gs := s.graphs["g"]
	gs.idxState = IndexBuilding
	s.mu.Unlock()
	if _, err := s.BuildIndex("g", IndexOptions{}); !errors.Is(err, ErrIndexBusy) {
		t.Fatalf("second build: %v", err)
	}
	if err := s.DropIndex("g"); err != nil {
		t.Fatalf("drop of building index: %v", err)
	}
	if st, _ := s.IndexStatus("g"); st.State != IndexNone {
		t.Fatalf("state after cancelling build = %s", st.State)
	}

	// Malformed distance-only requests.
	for _, req := range []Request{
		{Graph: "g", Source: 0, DistanceOnly: true},
		{Graph: "g", Source: 0, DistanceOnly: true, Targets: []uint32{1}, AllDepths: true},
		{Graph: "g", Source: 0, Targets: []uint32{1}, Approx: true},
	} {
		if _, err := s.Query(context.Background(), req); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("request %+v: %v, want bad request", req, err)
		}
	}
}

// TestIndexHTTP drives the index tier through its HTTP surface.
func TestIndexHTTP(t *testing.T) {
	g, err := gen.Grid2D(20, 20, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Options: symmetricOpts()})
	defer func() { _ = s.Shutdown(context.Background()) }()
	if err := s.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	post := func(path, body string) (*http.Response, error) {
		return http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	}
	resp, err := post("/graphs/g/index", `{"landmarks": 8}`)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST index = %d, want 202", resp.StatusCode)
	}
	waitIndexState(t, s, "g", IndexReady)

	var st IndexStatus
	resp, err = http.Get(srv.URL + "/graphs/g/index")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != IndexReady || st.Landmarks == 0 {
		t.Fatalf("GET index = %+v", st)
	}

	// A certified distance-only query over HTTP carries the index/exact
	// markers. Query source→landmark: landmark endpoints are always
	// certified, so this is guaranteed to be an index hit.
	lm := s.graphs["g"].idx.Load().Landmarks[0]
	body := fmt.Sprintf(`{"graph":"g","source":0,"targets":[%d],"distance_only":true}`, lm)
	resp, err = post("/query", body)
	if err != nil {
		t.Fatal(err)
	}
	var qr Response
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !qr.Index || qr.Exact == nil || !*qr.Exact {
		t.Fatalf("HTTP distance-only response lacks index markers: %+v", qr)
	}
	ref, err := bfs.RunSerial(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Targets) != 1 || qr.Targets[0].Depth != ref.Depth(lm) {
		t.Fatalf("HTTP index answer %+v, want depth %d", qr.Targets, ref.Depth(lm))
	}

	// /graphs and /stats surface the index state.
	for _, gi := range s.Graphs() {
		if gi.Name == "g" && gi.Index != IndexReady {
			t.Fatalf("GraphInfo.Index = %q", gi.Index)
		}
	}
	if got := s.Stats().IndexHits; got == 0 {
		t.Fatal("stats report no index hits")
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/graphs/g/index", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE index = %d, want 200", resp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", resp.StatusCode)
	}
}

// TestIndexSmokeScale is the CI index-smoke parity check: a scale-N
// symmetric R-MAT (INDEX_SMOKE_SCALE, skipped when unset) served
// through the full stack, with every index-answered distance compared
// against serial BFS. Run under -race in CI at scale 14.
func TestIndexSmokeScale(t *testing.T) {
	scale := 0
	if v := os.Getenv("INDEX_SMOKE_SCALE"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &scale); err != nil {
			t.Fatalf("bad INDEX_SMOKE_SCALE %q: %v", v, err)
		}
	}
	if scale == 0 {
		t.Skip("set INDEX_SMOKE_SCALE to run the large parity smoke")
	}
	rmat, err := gen.RMAT(gen.Graph500Params(scale, 16), 20120563)
	if err != nil {
		t.Fatal(err)
	}
	g := rmat.Symmetrize()
	s := New(Config{Options: symmetricOpts()})
	defer func() { _ = s.Shutdown(context.Background()) }()
	if err := s.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BuildIndex("g", IndexOptions{Landmarks: 64}); err != nil {
		t.Fatal(err)
	}
	st := waitIndexState(t, s, "g", IndexReady)
	if !st.Covered {
		t.Fatalf("symmetric build not covered: %+v", st)
	}
	for _, p := range randomPairs(g.NumVertices(), 120, 7) {
		checkDistanceOnly(t, s, "g", g, p[0][0], p[1])
	}
	sn := s.Stats()
	if sn.IndexHits == 0 {
		t.Fatal("no index hits recorded during parity sweep")
	}
	t.Logf("scale %d: %d hits, %d fallbacks, %d label bytes",
		scale, sn.IndexHits, sn.IndexFallbacks, st.LabelBytes)
}
