package serve

// In-process tests of the durable control plane: journaled mutations,
// readiness gating during recovery, mmap residency accounting, and the
// transpose-cache release on every path a graph leaves the table.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
)

// graphNames lists the resident graph names, sorted.
func graphNames(s *Service) []string {
	var names []string
	for _, gi := range s.Graphs() {
		names = append(names, gi.Name)
	}
	sort.Strings(names)
	return names
}

func shutdown(t *testing.T, s *Service) {
	t.Helper()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestDurableRecoverRoundtrip(t *testing.T) {
	stateDir := t.TempDir()
	g1, err := gen.Grid2D(12, 12, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gen.Grid2D(9, 9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p1 := saveGraph(t, g1, "g1.csr")
	p2 := saveGraph(t, g2, "g2.csr")
	mmapTrue := true

	s1 := New(Config{StateDir: stateDir})
	if _, err := s1.Recover(); err != nil {
		t.Fatalf("recover (empty dir): %v", err)
	}
	if _, err := s1.LoadGraphOptions("a", p1, LoadOptions{Mmap: &mmapTrue}); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.LoadGraph("b", p2); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.LoadGraph("gone", p2); err != nil {
		t.Fatal(err)
	}
	if err := s1.UnloadGraph("gone"); err != nil {
		t.Fatal(err)
	}
	st := s1.Stats()
	if st.JournalSeq != 4 {
		t.Fatalf("journal seq = %d, want 4", st.JournalSeq)
	}
	if st.ResidentMappedBytes != graphResidentBytes(g1) {
		t.Fatalf("resident mapped = %d, want %d", st.ResidentMappedBytes, graphResidentBytes(g1))
	}
	wantDepths, err := s1.Query(context.Background(), Request{Graph: "a", Source: 0, AllDepths: true})
	if err != nil {
		t.Fatal(err)
	}
	shutdown(t, s1)

	// Restart: not ready (and loads rejected) until Recover completes.
	s2 := New(Config{StateDir: stateDir})
	defer shutdown(t, s2)
	if rs := s2.Ready(); rs.Ready || !rs.Recovering {
		t.Fatalf("pre-recovery ready state = %+v, want not ready, recovering", rs)
	}
	if _, err := s2.LoadGraph("x", p2); !errors.Is(err, ErrNotRecovered) {
		t.Fatalf("load before Recover: err = %v, want ErrNotRecovered", err)
	}
	sum, err := s2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !reflect.DeepEqual(sum.Graphs, []string{"a", "b"}) || len(sum.Failed) != 0 {
		t.Fatalf("recovery summary = %+v, want graphs a,b", sum)
	}
	if rs := s2.Ready(); !rs.Ready || rs.Recovering {
		t.Fatalf("post-recovery ready state = %+v", rs)
	}
	if got := graphNames(s2); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("recovered graphs = %v", got)
	}
	// The mmap mode is itself durable.
	for _, gi := range s2.Graphs() {
		if gi.Name == "a" && !gi.Mapped {
			t.Fatal("graph a recovered without its recorded mmap mode")
		}
		if gi.Name == "b" && gi.Mapped {
			t.Fatal("graph b recovered mapped but was loaded on-heap")
		}
	}
	got, err := s2.Query(context.Background(), Request{Graph: "a", Source: 0, AllDepths: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Depths, wantDepths.Depths) {
		t.Fatal("depths after recovery differ from pre-restart depths")
	}
	if st := s2.Stats(); st.RecoveryMS < 0 || st.JournalSeq != 4 {
		t.Fatalf("post-recovery stats = %+v", st)
	}
	if _, err := s2.Recover(); err == nil {
		t.Fatal("second Recover did not error")
	}
}

func TestDurableTornTailRecovered(t *testing.T) {
	stateDir := t.TempDir()
	g, err := gen.Grid2D(10, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := saveGraph(t, g, "g.csr")

	s1 := New(Config{StateDir: stateDir})
	if _, err := s1.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.LoadGraph("a", p); err != nil {
		t.Fatal(err)
	}
	shutdown(t, s1)
	// A crash mid-append leaves a partial frame at the tail.
	j := filepath.Join(stateDir, journalName)
	f, err := os.OpenFile(j, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x80, 0x00, 0x00, 0x00, 0xaa, 0xbb}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := New(Config{StateDir: stateDir})
	defer shutdown(t, s2)
	sum, err := s2.Recover()
	if err != nil {
		t.Fatalf("recover over torn tail: %v", err)
	}
	if !reflect.DeepEqual(sum.Graphs, []string{"a"}) {
		t.Fatalf("recovered %v, want a", sum.Graphs)
	}
	if sum.Journal.TornBytes != 6 {
		t.Fatalf("torn bytes = %d, want 6", sum.Journal.TornBytes)
	}
}

func TestDurableEvictionJournaled(t *testing.T) {
	stateDir := t.TempDir()
	small, err := gen.Grid2D(10, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := gen.Grid2D(40, 40, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	pSmall := saveGraph(t, small, "small.csr")
	pBig := saveGraph(t, big, "big.csr")

	budget := graphResidentBytes(big) + graphResidentBytes(small)
	s1 := New(Config{StateDir: stateDir, MaxResidentBytes: budget})
	if _, err := s1.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.LoadGraph("old", pSmall); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.LoadGraph("keep", pSmall); err != nil {
		t.Fatal(err)
	}
	// Loading big exceeds the budget; "old" (LRU) must be evicted, and
	// the eviction journaled so a restart does not resurrect it.
	if _, err := s1.Query(context.Background(), Request{Graph: "keep", Source: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.LoadGraph("big", pBig); err != nil {
		t.Fatal(err)
	}
	if got := graphNames(s1); !reflect.DeepEqual(got, []string{"big", "keep"}) {
		t.Fatalf("after eviction: %v", got)
	}
	shutdown(t, s1)

	s2 := New(Config{StateDir: stateDir, MaxResidentBytes: budget})
	defer shutdown(t, s2)
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := graphNames(s2); !reflect.DeepEqual(got, []string{"big", "keep"}) {
		t.Fatalf("recovered %v, want big,keep (evicted graph resurrected?)", got)
	}
}

func TestDurableMissingFileSkippedAtRecovery(t *testing.T) {
	stateDir := t.TempDir()
	g, err := gen.Grid2D(10, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	pKeep := saveGraph(t, g, "keep.csr")
	pGone := saveGraph(t, g, "gone.csr")

	s1 := New(Config{StateDir: stateDir})
	if _, err := s1.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.LoadGraph("keep", pKeep); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.LoadGraph("gone", pGone); err != nil {
		t.Fatal(err)
	}
	shutdown(t, s1)
	if err := os.Remove(pGone); err != nil {
		t.Fatal(err)
	}

	// Never refuse to boot: the missing graph is reported, not fatal.
	s2 := New(Config{StateDir: stateDir})
	defer shutdown(t, s2)
	sum, err := s2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !reflect.DeepEqual(sum.Graphs, []string{"keep"}) || !reflect.DeepEqual(sum.Failed, []string{"gone"}) {
		t.Fatalf("summary = %+v, want keep recovered, gone failed", sum)
	}
	if rs := s2.Ready(); !rs.Ready {
		t.Fatalf("service not ready after partial recovery: %+v", rs)
	}
}

// TestTransposeReleasedOnRetirePaths is the leak regression test for
// the package-level transpose cache: every path a graph leaves the
// serving table (unload, budget eviction, atomic replacement) must
// release its cached in-adjacency, or both CSRs stay reachable forever.
func TestTransposeReleasedOnRetirePaths(t *testing.T) {
	mk := func(seed uint64) *graphPair {
		g, err := gen.UniformRandom(400, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		return &graphPair{g: g, path: saveGraph(t, g, "g.csr")}
	}

	t.Run("unload", func(t *testing.T) {
		p := mk(1)
		s := New(Config{})
		defer shutdown(t, s)
		if err := s.AddGraph("u", p.g); err != nil {
			t.Fatal(err)
		}
		bfs.InAdjacency(p.g) // what a hybrid traversal would cache
		if err := s.UnloadGraph("u"); err != nil {
			t.Fatal(err)
		}
		if bfs.InAdjacencyCached(p.g) {
			t.Fatal("transpose still cached after UnloadGraph — leak")
		}
	})

	t.Run("evict", func(t *testing.T) {
		p1, p2 := mk(2), mk(3)
		budget := graphResidentBytes(p1.g) + graphResidentBytes(p2.g)/2
		s := New(Config{MaxResidentBytes: budget})
		defer shutdown(t, s)
		if err := s.AddGraph("victim", p1.g); err != nil {
			t.Fatal(err)
		}
		bfs.InAdjacency(p1.g)
		// Loading the second graph must evict the idle first one.
		if _, err := s.LoadGraph("second", p2.path); err != nil {
			t.Fatal(err)
		}
		if got := graphNames(s); !reflect.DeepEqual(got, []string{"second"}) {
			t.Fatalf("graphs = %v, want just second", got)
		}
		if bfs.InAdjacencyCached(p1.g) {
			t.Fatal("transpose still cached after LRU eviction — leak")
		}
	})

	t.Run("replace", func(t *testing.T) {
		p := mk(4)
		s := New(Config{})
		defer shutdown(t, s)
		if err := s.AddGraph("r", p.g); err != nil {
			t.Fatal(err)
		}
		bfs.InAdjacency(p.g)
		if _, err := s.LoadGraph("r", p.path); err != nil { // atomic replace
			t.Fatal(err)
		}
		if bfs.InAdjacencyCached(p.g) {
			t.Fatal("old graph's transpose still cached after replacement — leak")
		}
	})
}

type graphPair struct {
	g    *graph.Graph
	path string
}
