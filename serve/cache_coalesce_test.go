package serve

import (
	"context"
	"sync"
	"testing"
)

// TestLRUCacheConcurrent hammers one lruCache from many goroutines: a
// hit must always return the exact traversal stored under that source —
// never a half-built or mismatched entry — while eviction churns the
// list. Run under -race this also proves the lock discipline.
func TestLRUCacheConcurrent(t *testing.T) {
	c := newLRUCache(4)
	const workers = 8
	const ops = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				src := uint32((w + i) % 16) // 16 sources over 4 slots: constant eviction
				if i%3 == 0 {
					c.put(src, &Traversal{Source: src, Steps: int(src) + 1})
				}
				if tr, ok := c.get(src); ok {
					if tr.Source != src || tr.Steps != int(src)+1 {
						t.Errorf("cache returned foreign entry: asked %d, got source %d steps %d",
							src, tr.Source, tr.Steps)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.len() > 4 {
		t.Fatalf("cache grew past capacity: %d", c.len())
	}
}

// TestCacheEvictionDuringCoalescedFill squeezes many concurrent queries
// over more sources than the cache holds through a tiny engine pool:
// singleflight fills, coalesced waiters and LRU evictions interleave
// constantly, and every response — cached, coalesced or fresh — must
// carry depths identical to the serial reference.
func TestCacheEvictionDuringCoalescedFill(t *testing.T) {
	g := testGraph(t)
	s := newTestService(t, g, Config{
		CacheEntries:   1, // every second distinct source evicts the other
		PoolSize:       1,
		BatchThreshold: 100, // keep the per-engine path (engine results get cached)
	})
	const nSources = 3
	wants := make([][]int32, nSources)
	for i := range wants {
		wants[i] = serialDepths(t, g, uint32(i))
	}
	const workers = 12
	const rounds = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				src := uint32((w*7 + i) % nSources)
				resp, err := s.Query(context.Background(), Request{Graph: "g", Source: src, AllDepths: true})
				if err != nil {
					t.Errorf("worker %d round %d: %v", w, i, err)
					return
				}
				for v, want := range wants[src] {
					if resp.Depths[v] != want {
						t.Errorf("worker %d round %d: depth(%d) from %d = %d, want %d",
							w, i, v, src, resp.Depths[v], want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.CacheHits == 0 || st.Coalesced == 0 {
		t.Logf("note: cacheHits=%d coalesced=%d (load pattern may vary)", st.CacheHits, st.Coalesced)
	}
}
