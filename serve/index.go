// Distance-oracle tier: landmark labelings (package index) built as
// budget-accounted background jobs and served on the query fast path.
//
// A build is one cancellable goroutine per graph: it sweeps the graph
// with the MS-BFS kernel (sharing the engines' cached transpose on
// directed graphs), persists the artifact next to the graph file with
// the same CRC-footer discipline as the graph format, journals the
// completed build in the durable manifest, and only then mounts the
// labeling into the serving state — so a crash at any point either
// recovers a complete, checksummed artifact or nothing. Builds are
// isolated like engine runs: a panic inside a build is recovered,
// recorded as a failed build, and fed to the graph's circuit breaker;
// it never disturbs query serving or other graphs.
//
// On the query path, a distance-only request consults the mounted
// labeling first. Certified answers (see index.Answer) return without
// any traversal, marked "index":true and "exact":true; uncertified
// ones fall back to the exact BFS flight path and count as fallbacks.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"time"

	"fastbfs/bfs"
	"fastbfs/index"
	"fastbfs/internal/par"
)

// Index lifecycle states as reported by /stats and GraphInfo.
const (
	IndexNone     = "none"
	IndexBuilding = "building"
	IndexReady    = "ready"
	IndexFailed   = "failed"
)

// indexStateName maps the internal zero value onto the reported one.
func indexStateName(state string) string {
	if state == "" {
		return IndexNone
	}
	return state
}

var (
	// ErrIndexBusy rejects a build request for a graph whose index is
	// already building.
	ErrIndexBusy = errors.New("serve: index build already in progress")
	// ErrNoIndex rejects a drop or status request for a graph that has
	// no index state at all.
	ErrNoIndex = errors.New("serve: graph has no index")
)

// IndexOptions parameterize a build request.
type IndexOptions struct {
	// Landmarks is the primary landmark count (default 64 — one MS-BFS
	// batch).
	Landmarks int `json:"landmarks,omitempty"`
	// Policy is the landmark selection policy: "degree" (default) or
	// "random".
	Policy string `json:"policy,omitempty"`
	// Seed drives the random policy.
	Seed uint64 `json:"seed,omitempty"`
	// Force rebuilds even when a ready index is already mounted (the
	// old one keeps serving until the new one swaps in).
	Force bool `json:"force,omitempty"`
}

// IndexStatus is one graph's distance-oracle state for /stats and the
// index endpoints.
type IndexStatus struct {
	Graph string `json:"graph"`
	State string `json:"state"` // none | building | ready | failed
	// Ready-state detail (zero until mounted).
	Landmarks  int    `json:"landmarks,omitempty"`
	Covered    bool   `json:"covered,omitempty"`
	LabelBytes int64  `json:"label_bytes,omitempty"`
	Mapped     bool   `json:"mapped,omitempty"`
	Artifact   string `json:"artifact,omitempty"`
	Policy     string `json:"policy,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	// Serving counters.
	Hits      int64 `json:"hits"`
	Fallbacks int64 `json:"fallbacks"`
	// Error is the failure message when State is failed.
	Error string `json:"error,omitempty"`
}

// indexStatusLocked snapshots one graph's index state under Service.mu.
func indexStatusLocked(gs *graphState) IndexStatus {
	st := IndexStatus{
		Graph:     gs.name,
		State:     indexStateName(gs.idxState),
		Hits:      gs.idxHits.Load(),
		Fallbacks: gs.idxFallbacks.Load(),
		Error:     gs.idxErr,
	}
	if ix := gs.idx.Load(); ix != nil {
		st.Landmarks = len(ix.Landmarks)
		st.Covered = ix.Covered
		st.LabelBytes = ix.LabelBytes()
		st.Mapped = gs.idxMapped
		st.Policy = ix.Policy.String()
		st.Seed = ix.Seed
	}
	if gs.idxSpec != nil {
		st.Artifact = gs.idxSpec.Path
	}
	return st
}

// IndexStatus reports the named graph's distance-oracle state.
func (s *Service) IndexStatus(name string) (IndexStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gs := s.graphs[name]
	if gs == nil {
		return IndexStatus{}, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	return indexStatusLocked(gs), nil
}

// IndexStatuses lists index state for every graph that has any (for
// /stats), sorted by graph name.
func (s *Service) IndexStatuses() []IndexStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []IndexStatus
	for _, gs := range s.graphs {
		if gs.idxState == "" {
			continue
		}
		out = append(out, indexStatusLocked(gs))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Graph < out[j].Graph })
	return out
}

// BuildIndex starts a background index build for the named graph and
// returns immediately with the building status. A second request while
// one is in flight fails with ErrIndexBusy; a request against a ready
// index is a no-op unless opt.Force. The build is cancellable (drop
// the index, unload the graph, or drain the service) and its failure
// modes — including panics — are contained to the index state.
func (s *Service) BuildIndex(name string, opt IndexOptions) (IndexStatus, error) {
	pol, err := index.ParsePolicy(opt.Policy)
	if err != nil {
		return IndexStatus{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if opt.Landmarks < 0 || opt.Landmarks > index.MaxLandmarks {
		return IndexStatus{}, fmt.Errorf("%w: landmarks %d out of range [0, %d]", ErrBadRequest, opt.Landmarks, index.MaxLandmarks)
	}
	landmarks := opt.Landmarks
	if landmarks == 0 {
		landmarks = 64
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return IndexStatus{}, ErrDraining
	}
	gs := s.graphs[name]
	if gs == nil {
		s.mu.Unlock()
		return IndexStatus{}, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	switch gs.idxState {
	case IndexBuilding:
		st := indexStatusLocked(gs)
		s.mu.Unlock()
		return st, ErrIndexBusy
	case IndexReady:
		if !opt.Force {
			st := indexStatusLocked(gs)
			s.mu.Unlock()
			return st, nil
		}
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	gs.idxState = IndexBuilding
	gs.idxErr = ""
	gs.idxCancel = cancel
	st := indexStatusLocked(gs)
	s.stats.indexBuilds.Add(1)
	s.wg.Add(1)
	s.mu.Unlock()

	go s.runIndexBuild(ctx, cancel, gs, landmarks, pol, opt.Seed)
	return st, nil
}

// runIndexBuild is the background build job for one graph snapshot. It
// never touches the serving table until the very end, and only under
// the lock after re-checking that gs is still the graph being served.
func (s *Service) runIndexBuild(ctx context.Context, cancel context.CancelFunc, gs *graphState, landmarks int, pol index.Policy, seed uint64) {
	defer s.wg.Done()
	defer cancel()

	ix, err := func() (ix *index.Index, err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = &par.PanicError{Worker: -1, Value: rec, Stack: debug.Stack()}
			}
		}()
		opts := index.Options{
			Landmarks: landmarks,
			Policy:    pol,
			Seed:      seed,
			Symmetric: s.opts.Symmetric,
			Workers:   s.cfg.Workers,
		}
		if !s.opts.Symmetric {
			// Share the per-graph cached transpose with the engines.
			opts.In = bfs.InAdjacency(gs.g)
		}
		return index.Build(ctx, gs.g, opts)
	}()

	// Persist BEFORE journaling and mounting: the artifact is written to
	// a temp file, fsync'd, and renamed into place, so the journal never
	// points at a file that was not completely written. A torn write
	// from a crash mid-Save leaves either no file or a CRC-failing one —
	// both trigger a fresh rebuild at recovery, never wrong answers.
	artifact := ""
	if err == nil && gs.path != "" {
		artifact = gs.path + ".idx"
		if serr := ix.Save(artifact); serr != nil {
			err = fmt.Errorf("serve: persisting index artifact: %w", serr)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.graphs[gs.name] != gs {
		// The graph was unloaded or replaced mid-build; this labeling
		// describes a snapshot nobody serves anymore.
		return
	}
	if gs.idxState != IndexBuilding {
		// DropIndex won the race: the build was disowned before it
		// finished, so neither its result nor its error is published.
		return
	}
	gs.idxCancel = nil
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// A cancelled build is not a failure: back to "none".
			gs.idxState, gs.idxErr = "", ""
			return
		}
		gs.idxState = IndexFailed
		gs.idxErr = err.Error()
		s.stats.indexBuildsFailed.Add(1)
		if poisoned(err) {
			// Same containment as an engine run that died mid-traversal:
			// count the recovered panic and feed the graph's breaker.
			s.stats.panicsRecovered.Add(1)
			gs.breaker.onFailure(false)
		}
		return
	}
	if s.draining {
		gs.idxState, gs.idxErr = "", ""
		return
	}

	spec := &IndexSpec{
		Path:      artifact,
		Landmarks: landmarks,
		Policy:    pol.String(),
		Seed:      seed,
		Mmap:      s.cfg.MmapLoads,
	}
	// Journal-before-mount, mirroring graph loads: once mounted (and so
	// observable through /query), the build survives a restart.
	if s.manifest != nil && s.manifest.Contains(gs.name) && artifact != "" {
		if jerr := s.manifest.AppendIndex(gs.name, *spec); jerr != nil {
			gs.idxState = IndexFailed
			gs.idxErr = fmt.Sprintf("index built but not durable: %v", jerr)
			s.stats.indexBuildsFailed.Add(1)
			return
		}
	}
	if merr := s.mountIndexLocked(gs, ix, spec); merr != nil {
		gs.idxState = IndexFailed
		gs.idxErr = merr.Error()
		s.stats.indexBuildsFailed.Add(1)
	}
}

// mountIndexLocked installs a labeling as gs's serving index, charging
// its label bytes to the resident budget (evicting idle graphs
// LRU-first, like a graph load) and replacing any previous index.
func (s *Service) mountIndexLocked(gs *graphState, ix *index.Index, spec *IndexSpec) error {
	resident := ix.LabelBytes()
	mapped := ix.MappedBytes() > 0
	if budget := s.cfg.MaxResidentBytes; budget > 0 {
		for s.resident-gs.idxResident+resident > budget {
			if !s.evictOneLocked(gs.name) {
				return fmt.Errorf("%w: index for %q needs %d bytes but %d of %d budget are resident and nothing is idle",
					ErrResidentBudget, gs.name, resident, s.resident, budget)
			}
		}
	}
	s.unmountIndexLocked(gs)
	s.resident += resident
	if mapped {
		s.residentMapped += resident
	}
	gs.idxResident = resident
	gs.idxMapped = mapped
	gs.idxSpec = spec
	gs.idxState = IndexReady
	gs.idxErr = ""
	gs.idx.Store(ix)
	return nil
}

// unmountIndexLocked detaches gs's mounted index (if any) and releases
// its resident accounting. Queries that already loaded the pointer
// finish against the detached labeling.
func (s *Service) unmountIndexLocked(gs *graphState) {
	s.resident -= gs.idxResident
	if gs.idxMapped {
		s.residentMapped -= gs.idxResident
	}
	gs.idxResident, gs.idxMapped = 0, false
	gs.idxSpec = nil
	gs.idxState, gs.idxErr = "", ""
	gs.idx.Store(nil)
}

// DropIndex removes the named graph's index: a building one is
// cancelled, a ready one is unmounted (journaled first in durable
// mode, so a restart does not resurrect it), a failed one is cleared.
func (s *Service) DropIndex(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	gs := s.graphs[name]
	if gs == nil {
		return fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	switch gs.idxState {
	case IndexBuilding:
		if gs.idxCancel != nil {
			gs.idxCancel()
			gs.idxCancel = nil
		}
		// A force-rebuild keeps the previous index serving while it
		// builds; dropping mid-build drops that one too.
		if gs.idx.Load() != nil && s.manifest != nil && s.manifest.Contains(name) {
			if err := s.manifest.AppendDropIndex(name); err != nil {
				return fmt.Errorf("serve: index drop for %q not durable: %w", name, err)
			}
		}
		s.unmountIndexLocked(gs)
		return nil
	case IndexReady:
		if s.manifest != nil && s.manifest.Contains(name) {
			if err := s.manifest.AppendDropIndex(name); err != nil {
				return fmt.Errorf("serve: index drop for %q not durable: %w", name, err)
			}
		}
		s.unmountIndexLocked(gs)
		return nil
	case IndexFailed:
		gs.idxState, gs.idxErr = "", ""
		return nil
	}
	return fmt.Errorf("%w: %q", ErrNoIndex, name)
}

// answerFromIndex tries to serve a distance-only request from the
// mounted labeling. nil means "no certified answer here" — the caller
// proceeds down the exact BFS path. With req.Approx the oracle's
// upper bounds are accepted for uncertified pairs and the response
// carries "exact":false.
func (s *Service) answerFromIndex(gs *graphState, req Request) *Response {
	ix := gs.idx.Load()
	if ix == nil || !ix.Matches(gs.g) {
		return nil
	}
	start := time.Now()
	targets := make([]TargetResult, len(req.Targets))
	exact := true
	for i, t := range req.Targets {
		a := ix.Query(req.Source, t)
		d := a.Dist
		if !a.Exact {
			if !req.Approx {
				gs.idxFallbacks.Add(1)
				s.stats.indexFallbacks.Add(1)
				return nil
			}
			exact = false
			d = a.UB // may be -1: the oracle cannot prove reachability
		}
		targets[i] = TargetResult{Vertex: t, Reached: d >= 0, Depth: d, Parent: -1}
	}
	gs.idxHits.Add(1)
	s.stats.indexHits.Add(1)
	return &Response{
		Graph:     gs.name,
		Source:    req.Source,
		Index:     true,
		Exact:     &exact,
		ElapsedUS: time.Since(start).Microseconds(),
		Targets:   targets,
	}
}
