// Graph lifecycle while serving: load and unload graphs without
// restarting the daemon, under a resident-bytes budget, with readiness
// distinct from liveness.
//
// Loads are survivable by construction: the file is read and validated
// (including the CRC32 footer, when present) entirely off to the side;
// only a fully-decoded graph is swapped into the serving table, under
// the service lock, as a single map-pointer update. Queries admitted
// against a replaced graph finish on the old state — its engines,
// cache and breaker stay reachable from their dispatcher until the
// last flight resolves, then the whole object graph is collected.
package serve

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"fastbfs/graph"
	"fastbfs/index"
	"fastbfs/tune"
)

var (
	// ErrLoadFailed is the sentinel matched by *LoadError: the graph
	// file could not be read, decoded or validated. The serving table
	// is untouched by a failed load.
	ErrLoadFailed = errors.New("serve: graph load failed")
	// ErrResidentBudget rejects a load that would exceed
	// MaxResidentBytes even after evicting every idle graph.
	ErrResidentBudget = errors.New("serve: resident-bytes budget exceeded")
)

// LoadError describes a failed graph load; it wraps the underlying I/O,
// decode or checksum error.
type LoadError struct {
	Name string
	Path string
	Err  error
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("serve: loading graph %q from %s: %v", e.Name, e.Path, e.Err)
}

// Unwrap exposes the underlying failure (e.g. graph.ErrChecksum).
func (e *LoadError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrLoadFailed) true for load failures.
func (e *LoadError) Is(target error) bool { return target == ErrLoadFailed }

// graphResidentBytes is the resident payload of one graph: the CSR
// offsets (8 bytes per vertex + 1) and neighbor IDs (4 bytes each).
// Engine and cache memory is deliberately excluded — it is bounded by
// PoolSize and CacheEntries, not by graph count.
func graphResidentBytes(g *graph.Graph) int64 {
	return 8*int64(len(g.Offsets)) + 4*int64(len(g.Neighbors))
}

// ErrNotRecovered rejects durable mutations on a StateDir service whose
// Recover has not run yet: journaling before replay would interleave new
// records into an un-replayed journal.
var ErrNotRecovered = errors.New("serve: state dir configured but Recover has not completed")

// LoadOptions selects how LoadGraphOptions materializes a graph file.
type LoadOptions struct {
	// Mmap maps the file read-only (graph.LoadMmap) instead of decoding
	// it onto the heap; nil means Config.MmapLoads decides.
	Mmap *bool
	// Tune overrides Config.AutoTune for this load: false pins the
	// engine defaults (no calibration), true forces a calibration pass
	// even on a service with AutoTune off. nil defers to the config.
	Tune *bool
}

// LoadGraph reads a CSR graph file and makes it queryable under name,
// atomically replacing any existing graph of that name, using the
// service's default load mode.
func (s *Service) LoadGraph(name, path string) (GraphInfo, error) {
	return s.LoadGraphOptions(name, path, LoadOptions{})
}

// LoadGraphOptions reads a CSR graph file and makes it queryable under
// name, atomically replacing any existing graph of that name. Decoding
// and validation (structure and CRC32 footer) happen before the swap,
// so a corrupt or truncated file never disturbs serving — the typed
// *LoadError tells the caller why. Loads count into /readyz's loading
// state but do not block queries.
//
// In durable mode (Config.StateDir) the load is journaled — written and
// fsync'd — before the serving table changes; a success return
// therefore means the graph survives any subsequent crash and restart.
func (s *Service) LoadGraphOptions(name, path string, opt LoadOptions) (GraphInfo, error) {
	if name == "" {
		return GraphInfo{}, fmt.Errorf("%w: empty graph name", ErrBadRequest)
	}
	if s.Draining() {
		return GraphInfo{}, ErrDraining
	}
	if s.cfg.StateDir != "" && s.recovering.Load() {
		return GraphInfo{}, ErrNotRecovered
	}
	s.loading.Add(1)
	defer s.loading.Add(-1)

	mmap := s.cfg.MmapLoads
	if opt.Mmap != nil {
		mmap = *opt.Mmap
	}
	g, err := s.loadGraphFile(path, mmap)
	if err != nil {
		s.stats.graphLoadsFailed.Add(1)
		return GraphInfo{}, &LoadError{Name: name, Path: path, Err: err}
	}

	// Calibrate before taking the service lock: the pass is pure CPU
	// work against the freshly loaded graph. The profile travels inside
	// the load's journal record, so the same fsync that makes the load
	// durable makes the tuning durable.
	prof := s.maybeCalibrate(name, g, opt.Tune)

	s.mu.Lock()
	var spec *GraphSpec
	if s.manifest != nil {
		spec = &GraphSpec{Name: name, Path: path, Mmap: mmap, Tune: prof}
	}
	err = s.registerGraphLocked(name, g, true, path, spec, prof)
	var info GraphInfo
	if err == nil {
		gs := s.graphs[name]
		info = GraphInfo{
			Name:          gs.name,
			Vertices:      gs.g.NumVertices(),
			Edges:         gs.g.NumEdges(),
			ResidentBytes: gs.resident,
			Mapped:        gs.mapped,
			Breaker:       BreakerClosed,
		}
	}
	s.mu.Unlock()
	if err != nil {
		s.stats.graphLoadsFailed.Add(1)
		return GraphInfo{}, err
	}
	s.stats.graphLoads.Add(1)
	return info, nil
}

// loadGraphFile materializes one graph file, either mapped read-only or
// decoded onto the heap. Both paths verify the CRC footer and the
// structural invariants; they differ only in residency.
func (s *Service) loadGraphFile(path string, mmap bool) (*graph.Graph, error) {
	if mmap {
		return graph.LoadMmap(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadFrom(s.chaosLoadReader(f))
}

// UnloadGraph removes a graph from the serving table. In-flight
// queries against it complete normally on the detached state; new
// queries get ErrUnknownGraph. In durable mode the unload is journaled
// before the table changes: if the record cannot be made durable the
// graph stays loaded and the caller gets the journal error, so the
// serving table never silently diverges from what a restart restores.
func (s *Service) UnloadGraph(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	gs := s.graphs[name]
	if gs == nil {
		return fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	if s.manifest != nil && s.manifest.Contains(name) {
		if err := s.manifest.AppendUnload(name); err != nil {
			return fmt.Errorf("serve: unload %q not durable: %w", name, err)
		}
	}
	delete(s.graphs, name)
	s.retireLocked(gs)
	s.stats.graphUnloads.Add(1)
	return nil
}

// RecoverySummary reports what Recover restored.
type RecoverySummary struct {
	// Graphs are the names recovered and serving, in journal order.
	Graphs []string
	// Failed are journaled graphs that could not be reloaded (file
	// missing, corrupt, or over budget); the service boots without
	// them rather than refusing to start.
	Failed []string
	// Indexes are the graphs whose journaled index artifact was
	// remounted and is serving again.
	Indexes []string
	// IndexesRebuilding are the graphs whose journaled index artifact
	// could not be remounted (missing, torn/CRC-rejected, or built for
	// a different graph snapshot); the artifact is never served — a
	// fresh background rebuild with the journaled parameters was
	// started instead.
	IndexesRebuilding []string
	// Tuned are the graphs whose journaled tuning profile was reused
	// as-is — the kill -9 restart path that skips re-calibration.
	Tuned []string
	// Recalibrated are the graphs that had no journaled profile (specs
	// written before tuning existed) and were calibrated fresh during
	// recovery, with the new profile journaled via an opTune record.
	Recalibrated []string
	// Duration is the wall time recovery took, including graph loads.
	Duration time.Duration
	// Journal is the manifest state after replay.
	Journal ManifestStats
}

// Recover opens the manifest under Config.StateDir and restores the
// durable serving table: snapshot + journal are replayed (a torn or
// corrupt journal tail is truncated, never fatal) and every recorded
// graph is reloaded in its recorded mode (mmap or heap). Until Recover
// returns the service reports not Ready and rejects durable mutations;
// queries against already-restored graphs are answered during recovery.
//
// A graph whose file cannot be reloaded is skipped and reported in the
// summary — recovery restores as much of the pre-crash table as the
// filesystem still supports, and never refuses to boot. On a service
// without a StateDir, Recover is a no-op.
func (s *Service) Recover() (RecoverySummary, error) {
	if s.cfg.StateDir == "" {
		return RecoverySummary{}, nil
	}
	start := time.Now()
	s.mu.Lock()
	if s.manifest != nil {
		s.mu.Unlock()
		return RecoverySummary{}, errors.New("serve: Recover called twice")
	}
	m, err := OpenManifest(s.cfg.StateDir, s.cfg.SnapshotEvery)
	if err != nil {
		s.mu.Unlock()
		return RecoverySummary{}, err
	}
	// Thread the chaos injector into the journal before any append can
	// happen: the manifest.append site is what drives degraded-
	// durability tests deterministically.
	m.inj, m.seqr = s.inj, &s.seq
	s.manifest = m
	s.mu.Unlock()

	var sum RecoverySummary
	var rebuilds []GraphSpec             // graphs whose index artifact must be rebuilt
	var retunes map[string]*tune.Profile // fresh profiles to journal post-replay
	for _, spec := range m.State() {
		g, err := s.loadGraphFile(spec.Path, spec.Mmap)
		var prof *tune.Profile
		if err == nil {
			if spec.Tune != nil {
				// The whole point of journaling the profile: reuse it
				// verbatim, no calibration pass on the restart path.
				reused := *spec.Tune
				reused.Source = tune.SourceJournal
				prof = &reused
				sum.Tuned = append(sum.Tuned, spec.Name)
				s.logf("serve: graph %q: reusing journaled tuning profile: %s", spec.Name, prof.Summary())
			} else if s.cfg.AutoTune {
				// Spec journaled before tuning existed: calibrate now
				// and make it durable once replay has finished.
				prof = s.calibrateProfile(spec.Name, g)
				if retunes == nil {
					retunes = make(map[string]*tune.Profile)
				}
				retunes[spec.Name] = prof
				sum.Recalibrated = append(sum.Recalibrated, spec.Name)
			}
			s.mu.Lock()
			// Already journaled — spec nil keeps replay idempotent.
			err = s.registerGraphLocked(spec.Name, g, true, spec.Path, nil, prof)
			s.mu.Unlock()
		}
		if err != nil {
			s.stats.graphLoadsFailed.Add(1)
			sum.Failed = append(sum.Failed, spec.Name)
			continue
		}
		sum.Graphs = append(sum.Graphs, spec.Name)
		if spec.Index == nil {
			continue
		}
		// Remount the journaled index artifact. Whatever goes wrong —
		// missing file, torn write (CRC-rejected by Decode), or an
		// artifact for a different graph snapshot — the artifact is
		// never served; the index is rebuilt fresh instead.
		if err := s.remountIndex(spec.Name, g, *spec.Index); err != nil {
			rebuilds = append(rebuilds, spec)
			continue
		}
		sum.Indexes = append(sum.Indexes, spec.Name)
	}
	s.recovering.Store(false)
	// Post-replay journaling (must not interleave with replay): fresh
	// profiles for pre-tuning specs become durable opTune records, so
	// the NEXT restart reuses them instead of calibrating again.
	for name, prof := range retunes {
		_ = m.AppendTune(name, prof) // best effort; next boot just recalibrates
	}
	// Rebuilds kick off only after recovering clears: they journal a
	// fresh opIndex record on completion, which must not interleave
	// with replay.
	for _, spec := range rebuilds {
		opt := IndexOptions{Landmarks: spec.Index.Landmarks, Policy: spec.Index.Policy, Seed: spec.Index.Seed, Force: true}
		if _, err := s.BuildIndex(spec.Name, opt); err == nil {
			sum.IndexesRebuilding = append(sum.IndexesRebuilding, spec.Name)
		}
	}
	sum.Duration = time.Since(start)
	s.recoveryDur.Store(int64(sum.Duration))
	sum.Journal = m.Stats()
	return sum, nil
}

// remountIndex loads one journaled index artifact and mounts it for an
// already-recovered graph. The artifact passes the same gauntlet a
// fresh load of the graph file does: structural validation, the CRC32
// footer, and a shape check against the graph it claims to serve.
func (s *Service) remountIndex(name string, g *graph.Graph, spec IndexSpec) error {
	if spec.Path == "" {
		return fmt.Errorf("serve: index record for %q has no artifact path", name)
	}
	load := index.Load
	if spec.Mmap {
		load = index.LoadMmap
	}
	ix, err := load(spec.Path)
	if err != nil {
		return err
	}
	if !ix.Matches(g) {
		return fmt.Errorf("serve: index artifact %s was built for a different graph snapshot", spec.Path)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gs := s.graphs[name]
	if gs == nil {
		return fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	return s.mountIndexLocked(gs, ix, &spec)
}

// GraphReady is one graph's contribution to readiness.
type GraphReady struct {
	Name         string `json:"name"`
	Breaker      string `json:"breaker"`
	BreakerOpens int64  `json:"breaker_opens"`
	// Tune is the provenance of the graph's tuning profile ("default",
	// "calibrated" or "journal"; empty = untuned service).
	Tune string `json:"tune,omitempty"`
	// TunePredictedMTEPS is the model's throughput for the profile;
	// TuneMeasuredMTEPS the observed serving throughput so far (0 until
	// the graph has served a traversal). Their ratio is the model's
	// live report card.
	TunePredictedMTEPS float64 `json:"tune_predicted_mteps,omitempty"`
	TuneMeasuredMTEPS  float64 `json:"tune_measured_mteps,omitempty"`
	// Quarantined reports that the integrity scrubber found a checksum
	// mismatch in this graph's resident bytes and forced its breaker
	// open; ScrubError is the mismatch detail. The scrubber lifts the
	// quarantine automatically once a remount (or the healed file)
	// verifies again.
	Quarantined bool   `json:"quarantined,omitempty"`
	ScrubError  string `json:"scrub_error,omitempty"`
}

// ReadyState is the /readyz payload: Ready is the single bit a load
// balancer needs; the rest says why it is false. A service is ready
// when it is not draining, has no graph load in progress, and every
// breaker is closed — unlike /healthz, which only says the process is
// up and not draining.
type ReadyState struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	Loading  int  `json:"loading"`
	// Recovering is true on a durable (StateDir) service until Recover
	// has replayed the journal and reloaded the recorded graphs; load
	// balancers must not route here before then.
	Recovering bool `json:"recovering,omitempty"`
	// IndexBuilds is the number of index builds currently running.
	// Builds are background work and do not gate Ready.
	IndexBuilds   int   `json:"index_builds,omitempty"`
	ResidentBytes int64 `json:"resident_bytes"`
	// Durability is "durable" while journal appends succeed and
	// "degraded" after a disk fault flipped the manifest read-only
	// (mutating admin ops refused, queries still exact); empty on a
	// stateless service. Degraded durability does not gate Ready —
	// the graphs still serve exact answers.
	Durability string       `json:"durability,omitempty"`
	Graphs     []GraphReady `json:"graphs"`
}

// Ready reports whether the service should receive traffic.
func (s *Service) Ready() ReadyState {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := ReadyState{
		Draining:      s.draining,
		Loading:       int(s.loading.Load()),
		Recovering:    s.recovering.Load(),
		ResidentBytes: s.resident,
		Graphs:        make([]GraphReady, 0, len(s.graphs)),
	}
	if s.manifest != nil {
		rs.Durability = DurabilityDurable
		if degraded, _ := s.manifest.Degraded(); degraded {
			rs.Durability = DurabilityDegraded
		}
	}
	ready := !rs.Draining && rs.Loading == 0 && !rs.Recovering
	for _, gs := range s.graphs {
		state, opens := gs.breaker.snapshot()
		if state != BreakerClosed {
			ready = false
		}
		if gs.idxState == IndexBuilding {
			rs.IndexBuilds++
		}
		gr := GraphReady{
			Name: gs.name, Breaker: state, BreakerOpens: opens,
			Quarantined: gs.scrubQuarantined, ScrubError: gs.scrubErr,
		}
		if gs.profile != nil {
			gr.Tune = gs.profile.Source
			gr.TunePredictedMTEPS = gs.profile.PredictedMTEPS
			gr.TuneMeasuredMTEPS = measuredMTEPS(&gs.qEdges, &gs.qNanos)
		}
		rs.Graphs = append(rs.Graphs, gr)
	}
	sort.Slice(rs.Graphs, func(i, j int) bool { return rs.Graphs[i].Name < rs.Graphs[j].Name })
	rs.Ready = ready
	return rs
}
