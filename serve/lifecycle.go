// Graph lifecycle while serving: load and unload graphs without
// restarting the daemon, under a resident-bytes budget, with readiness
// distinct from liveness.
//
// Loads are survivable by construction: the file is read and validated
// (including the CRC32 footer, when present) entirely off to the side;
// only a fully-decoded graph is swapped into the serving table, under
// the service lock, as a single map-pointer update. Queries admitted
// against a replaced graph finish on the old state — its engines,
// cache and breaker stay reachable from their dispatcher until the
// last flight resolves, then the whole object graph is collected.
package serve

import (
	"errors"
	"fmt"
	"os"
	"sort"

	"fastbfs/graph"
)

var (
	// ErrLoadFailed is the sentinel matched by *LoadError: the graph
	// file could not be read, decoded or validated. The serving table
	// is untouched by a failed load.
	ErrLoadFailed = errors.New("serve: graph load failed")
	// ErrResidentBudget rejects a load that would exceed
	// MaxResidentBytes even after evicting every idle graph.
	ErrResidentBudget = errors.New("serve: resident-bytes budget exceeded")
)

// LoadError describes a failed graph load; it wraps the underlying I/O,
// decode or checksum error.
type LoadError struct {
	Name string
	Path string
	Err  error
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("serve: loading graph %q from %s: %v", e.Name, e.Path, e.Err)
}

// Unwrap exposes the underlying failure (e.g. graph.ErrChecksum).
func (e *LoadError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrLoadFailed) true for load failures.
func (e *LoadError) Is(target error) bool { return target == ErrLoadFailed }

// graphResidentBytes is the resident payload of one graph: the CSR
// offsets (8 bytes per vertex + 1) and neighbor IDs (4 bytes each).
// Engine and cache memory is deliberately excluded — it is bounded by
// PoolSize and CacheEntries, not by graph count.
func graphResidentBytes(g *graph.Graph) int64 {
	return 8*int64(len(g.Offsets)) + 4*int64(len(g.Neighbors))
}

// LoadGraph reads a CSR graph file and makes it queryable under name,
// atomically replacing any existing graph of that name. Decoding and
// validation (structure and CRC32 footer) happen before the swap, so a
// corrupt or truncated file never disturbs serving — the typed
// *LoadError tells the caller why. Loads count into /readyz's loading
// state but do not block queries.
func (s *Service) LoadGraph(name, path string) (GraphInfo, error) {
	if name == "" {
		return GraphInfo{}, fmt.Errorf("%w: empty graph name", ErrBadRequest)
	}
	if s.Draining() {
		return GraphInfo{}, ErrDraining
	}
	s.loading.Add(1)
	defer s.loading.Add(-1)

	f, err := os.Open(path)
	if err != nil {
		s.stats.graphLoadsFailed.Add(1)
		return GraphInfo{}, &LoadError{Name: name, Path: path, Err: err}
	}
	g, err := graph.ReadFrom(s.chaosLoadReader(f))
	f.Close()
	if err != nil {
		s.stats.graphLoadsFailed.Add(1)
		return GraphInfo{}, &LoadError{Name: name, Path: path, Err: err}
	}

	s.mu.Lock()
	err = s.registerGraphLocked(name, g, true)
	var info GraphInfo
	if err == nil {
		gs := s.graphs[name]
		info = GraphInfo{
			Name:          gs.name,
			Vertices:      gs.g.NumVertices(),
			Edges:         gs.g.NumEdges(),
			ResidentBytes: gs.resident,
			Breaker:       BreakerClosed,
		}
	}
	s.mu.Unlock()
	if err != nil {
		s.stats.graphLoadsFailed.Add(1)
		return GraphInfo{}, err
	}
	s.stats.graphLoads.Add(1)
	return info, nil
}

// UnloadGraph removes a graph from the serving table. In-flight
// queries against it complete normally on the detached state; new
// queries get ErrUnknownGraph.
func (s *Service) UnloadGraph(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	gs := s.graphs[name]
	if gs == nil {
		return fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	delete(s.graphs, name)
	s.resident -= gs.resident
	s.stats.graphUnloads.Add(1)
	return nil
}

// GraphReady is one graph's contribution to readiness.
type GraphReady struct {
	Name         string `json:"name"`
	Breaker      string `json:"breaker"`
	BreakerOpens int64  `json:"breaker_opens"`
}

// ReadyState is the /readyz payload: Ready is the single bit a load
// balancer needs; the rest says why it is false. A service is ready
// when it is not draining, has no graph load in progress, and every
// breaker is closed — unlike /healthz, which only says the process is
// up and not draining.
type ReadyState struct {
	Ready         bool         `json:"ready"`
	Draining      bool         `json:"draining"`
	Loading       int          `json:"loading"`
	ResidentBytes int64        `json:"resident_bytes"`
	Graphs        []GraphReady `json:"graphs"`
}

// Ready reports whether the service should receive traffic.
func (s *Service) Ready() ReadyState {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := ReadyState{
		Draining:      s.draining,
		Loading:       int(s.loading.Load()),
		ResidentBytes: s.resident,
		Graphs:        make([]GraphReady, 0, len(s.graphs)),
	}
	ready := !rs.Draining && rs.Loading == 0
	for _, gs := range s.graphs {
		state, opens := gs.breaker.snapshot()
		if state != BreakerClosed {
			ready = false
		}
		rs.Graphs = append(rs.Graphs, GraphReady{Name: gs.name, Breaker: state, BreakerOpens: opens})
	}
	sort.Slice(rs.Graphs, func(i, j int) bool { return rs.Graphs[i].Name < rs.Graphs[j].Name })
	rs.Ready = ready
	return rs
}
