package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph/gen"
	"fastbfs/internal/faultinject"
)

// envInt reads an integer knob from the environment (the CI chaos-smoke
// job scales the soak up without recompiling).
func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// soakAllowed is the closed set of errors a chaos-soaked query may
// legitimately return; anything else is a bug surfaced by the harness.
func soakAllowed(err error) bool {
	return errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrShed) ||
		errors.Is(err, ErrBreakerOpen) ||
		errors.Is(err, ErrWatchdog) ||
		errors.Is(err, ErrEngineFault) ||
		errors.Is(err, bfs.ErrEngineBusy) ||
		errors.Is(err, faultinject.ErrInjected) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// TestChaosSoak is the acceptance soak: thousands of queries race
// injected engine panics, spurious acquire failures, sweep crashes,
// artificial latency and disconnecting clients — all from one fixed
// seed. Every non-rejected response must carry depths byte-identical
// to the serial reference, no admission ticket may leak, and once
// injection stops the daemon must return to ready (breakers closed)
// with no leftover goroutines after shutdown.
//
// CHAOS_SCALE / CHAOS_QUERIES scale it up for CI's chaos-smoke job.
func TestChaosSoak(t *testing.T) {
	scale := envInt("CHAOS_SCALE", 11)
	queries := envInt("CHAOS_QUERIES", 5000)
	if testing.Short() {
		queries = min(queries, 500)
	}

	g, err := gen.RMAT(gen.Graph500Params(scale, 8), 42)
	if err != nil {
		t.Fatal(err)
	}

	plan := &faultinject.Plan{
		Seed: 42,
		Rules: map[faultinject.Site]faultinject.Rule{
			faultinject.SiteEngineStep: {FaultProb: 0.002, Panic: true, DelayProb: 0.02, MaxDelay: 200 * time.Microsecond},
			faultinject.SiteAcquire:    {FaultProb: 0.02, Err: bfs.ErrEngineBusy, DelayProb: 0.05, MaxDelay: 100 * time.Microsecond},
			faultinject.SiteSweep:      {FaultProb: 0.01, Panic: true, DelayProb: 0.05, MaxDelay: 200 * time.Microsecond},
			faultinject.SiteClientDrop: {FaultProb: 0.02, Err: faultinject.ErrInjected},
			faultinject.SiteClientStall: {DelayProb: 0.02, MaxDelay: 2 * time.Millisecond,
				FaultProb: 0, Err: nil},
		},
	}

	baseline := runtime.NumGoroutine()
	s := New(Config{
		PoolSize:         2,
		MaxQueue:         64,
		BatchThreshold:   4,
		CacheEntries:     16,
		DefaultTimeout:   5 * time.Second,
		BreakerThreshold: 8,
		BreakerCooldown:  50 * time.Millisecond,
		WatchdogMult:     8,
		ShedTarget:       100 * time.Millisecond,
		Injector:         plan,
	})
	if err := s.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}

	// Serial reference depths for a rotating set of sources.
	const nSources = 64
	sources := make([]uint32, nSources)
	wants := make([][]int32, nSources)
	for i := range sources {
		sources[i] = uint32((i * 131) % g.NumVertices())
		wants[i] = serialDepths(t, g, sources[i])
	}

	const workers = 32
	perWorker := queries / workers
	var clientSeq faultinject.Sequencer
	var ok, failed atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < perWorker; q++ {
				idx := (w*perWorker + q) % nSources
				timeout := 5 * time.Second
				// A "dropped" client gives up almost immediately,
				// abandoning its flight mid-queue or mid-run.
				drop := faultinject.Decide(plan, faultinject.SiteClientDrop,
					clientSeq.Next(faultinject.SiteClientDrop))
				if drop.Err != nil {
					timeout = time.Duration(1+q%3) * time.Millisecond
				}
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				resp, err := s.Query(ctx, Request{Graph: "g", Source: sources[idx], AllDepths: true})
				cancel()
				if err != nil {
					failed.Add(1)
					if !soakAllowed(err) {
						select {
						case errCh <- fmt.Errorf("worker %d query %d: unexpected error %w", w, q, err):
						default:
						}
					}
					continue
				}
				// A "stalled" client reads its response slowly; the result
				// it finally reads must still be exact.
				stall := faultinject.Decide(plan, faultinject.SiteClientStall,
					clientSeq.Next(faultinject.SiteClientStall))
				if stall.Delay > 0 {
					time.Sleep(stall.Delay)
				}
				for v, want := range wants[idx] {
					if resp.Depths[v] != want {
						select {
						case errCh <- fmt.Errorf("worker %d: depth(%d) from source %d = %d, want %d",
							w, v, sources[idx], resp.Depths[v], want):
						default:
						}
						break
					}
				}
				ok.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if ok.Load() == 0 {
		t.Fatal("no query succeeded under chaos")
	}

	st := s.Stats()
	t.Logf("soak: %d ok, %d failed; stats %+v", ok.Load(), failed.Load(), st)
	if st.PanicsRecovered == 0 && st.Rejected == 0 && st.Expired == 0 && failed.Load() == 0 {
		t.Error("chaos plan never engaged — injection rates or sites are dead")
	}

	// Injection stops: the service must return to fully ready (breakers
	// closed, queue drained) and keep answering exactly.
	plan.SetEnabled(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := s.Query(context.Background(), Request{Graph: "g", Source: sources[0]}); err == nil {
			if rs := s.Ready(); rs.Ready && s.QueueDepth() == 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never recovered after injection stopped: ready=%+v depth=%d",
				s.Ready(), s.QueueDepth())
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := s.Query(context.Background(), Request{Graph: "g", Source: sources[1], AllDepths: true})
	if err != nil {
		t.Fatalf("post-chaos query failed: %v", err)
	}
	for v, want := range wants[1] {
		if resp.Depths[v] != want {
			t.Fatalf("post-chaos depth(%d) = %d, want %d", v, resp.Depths[v], want)
		}
	}

	// Shutdown leaks nothing: goroutines settle back to the baseline.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	gdeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(gdeadline) {
			t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestBreakerTripsAndRecovers: consecutive engine panics trip the
// graph's breaker (typed fast-fail with Retry-After), /readyz goes
// unready, and once the fault clears a half-open probe recloses it.
// Along the way each poisoned engine is quarantined and rebuilt.
func TestBreakerTripsAndRecovers(t *testing.T) {
	g := testGraph(t)
	plan := &faultinject.Plan{
		Seed: 1,
		Rules: map[faultinject.Site]faultinject.Rule{
			faultinject.SiteEngineStep: {FaultProb: 1, Panic: true},
		},
	}
	s := newTestService(t, g, Config{
		CacheEntries:     -1,
		BatchThreshold:   100, // force the per-engine path
		BreakerThreshold: 3,
		BreakerCooldown:  300 * time.Millisecond,
		Injector:         plan,
	})

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		_, err := s.Query(ctx, Request{Graph: "g", Source: uint32(i)})
		if !errors.Is(err, ErrEngineFault) {
			t.Fatalf("query %d: err = %v, want ErrEngineFault", i, err)
		}
	}
	_, err := s.Query(ctx, Request{Graph: "g", Source: 50})
	var boe *BreakerOpenError
	if !errors.As(err, &boe) {
		t.Fatalf("after %d faults: err = %v, want BreakerOpenError", 3, err)
	}
	if boe.Graph != "g" || boe.RetryAfter <= 0 {
		t.Fatalf("breaker error lacks retry hint: %+v", boe)
	}
	if rs := s.Ready(); rs.Ready {
		t.Fatal("service ready with an open breaker")
	}

	// Fault clears; after cooldown one probe recloses the breaker.
	plan.SetEnabled(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.Query(ctx, Request{Graph: "g", Source: 60}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never reclosed after fault cleared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rs := s.Ready(); !rs.Ready {
		t.Fatalf("service not ready after recovery: %+v", rs)
	}
	st := s.Stats()
	if st.PanicsRecovered == 0 || st.EnginesRetired == 0 || st.BreakerRejected == 0 {
		t.Errorf("containment counters flat: %+v", st)
	}
	if st.GraphEvictions != 0 {
		t.Errorf("unexpected evictions: %+v", st)
	}
}

// stallInjector stalls the first engine step it sees for a fixed
// duration, then goes quiet — a deterministic stand-in for a wedged
// traversal.
type stallInjector struct {
	d     time.Duration
	fired atomic.Bool
}

func (si *stallInjector) Decide(site faultinject.Site, key uint64) faultinject.Decision {
	if site == faultinject.SiteEngineStep && si.fired.CompareAndSwap(false, true) {
		return faultinject.Decision{Delay: si.d}
	}
	return faultinject.Decision{}
}

// TestWatchdogFreesStuckTraversal: a traversal wedged far past its
// budget is hard-cancelled by the watchdog and its waiter receives
// ErrWatchdog promptly — it does not hang for the stall's duration.
func TestWatchdogFreesStuckTraversal(t *testing.T) {
	g, err := gen.Grid2D(20, 20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	const stall = 600 * time.Millisecond
	s := newTestService(t, g, Config{
		CacheEntries:   -1,
		BatchThreshold: 100,
		DefaultTimeout: 20 * time.Millisecond, // watchdog budget for deadline-less queries
		WatchdogMult:   2,
		Injector:       &stallInjector{d: stall},
	})
	start := time.Now()
	_, qerr := s.Query(context.Background(), Request{Graph: "g", Source: 0})
	waited := time.Since(start)
	if !errors.Is(qerr, ErrWatchdog) {
		t.Fatalf("err = %v (after %v), want ErrWatchdog", qerr, waited)
	}
	if waited >= stall {
		t.Fatalf("waiter hung %v — watchdog did not free it before the stall ended", waited)
	}
	if st := s.Stats(); st.WatchdogFired == 0 {
		t.Errorf("watchdog not counted: %+v", st)
	}
	// The stalled engine unwinds (rctx was cancelled) and the service
	// keeps answering.
	if _, err := s.Query(context.Background(), Request{Graph: "g", Source: 1}); err != nil {
		t.Fatalf("query after watchdog: %v", err)
	}
}

// TestDeadlineStormReleasesTickets is the regression test for the
// queued-ticket leak: a storm of queries whose contexts expire while
// still queued must release every admission ticket, leaving the queue
// empty and the service accepting fresh work.
func TestDeadlineStormReleasesTickets(t *testing.T) {
	g := testGraph(t)
	s := newTestService(t, g, Config{
		MaxQueue:     8,
		BatchLinger:  20 * time.Millisecond,
		CacheEntries: -1,
		ShedTarget:   -1, // isolate the abandon path from shedding
	})
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%5)*time.Millisecond)
			defer cancel()
			_, err := s.Query(ctx, Request{Graph: "g", Source: uint32(i % 100)})
			if err != nil && !errors.Is(err, context.DeadlineExceeded) &&
				!errors.Is(err, context.Canceled) && !errors.Is(err, ErrOverloaded) {
				t.Errorf("query %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	// Every ticket must come back; before the abandon fix, flights whose
	// waiters all expired while queued pinned the queue full forever.
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("leaked admission tickets: queue depth %d after storm", s.QueueDepth())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := s.Query(context.Background(), Request{Graph: "g", Source: 7}); err != nil {
		t.Fatalf("fresh query after storm: %v", err)
	}
	if st := s.Stats(); st.Abandoned == 0 {
		t.Errorf("no abandoned flights counted in a deadline storm: %+v", st)
	}
}

// TestShedOldestUnderOverload: with the queue full of stale flights, a
// newcomer is admitted by shedding the oldest queued flight (typed
// ErrShed) instead of being tail-dropped.
func TestShedOldestUnderOverload(t *testing.T) {
	g := testGraph(t)
	s := newTestService(t, g, Config{
		MaxQueue:     2,
		BatchLinger:  300 * time.Millisecond,
		CacheEntries: -1,
		ShedTarget:   10 * time.Millisecond,
	})
	errs := make([]error, 2)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-release
			_, errs[i] = s.Query(context.Background(), Request{Graph: "g", Source: uint32(i)})
		}(i)
	}
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for s.QueueDepth() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("flights never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(30 * time.Millisecond) // age the queue past ShedTarget
	if _, err := s.Query(context.Background(), Request{Graph: "g", Source: 99}); err != nil {
		t.Fatalf("newcomer rejected despite sheddable queue: %v", err)
	}
	wg.Wait()
	shed := 0
	for i, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, ErrShed):
			shed++
		default:
			t.Fatalf("queued client %d: unexpected error %v", i, err)
		}
	}
	if shed != 1 {
		t.Fatalf("%d flights shed, want exactly 1 (the oldest)", shed)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Errorf("shed not counted: %+v", st)
	}
}
