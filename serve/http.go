package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// maxRequestBody bounds a /query body; requests are tiny (a source plus
// a target list), so 1 MiB is generous.
const maxRequestBody = 1 << 20

// NewHandler exposes a Service over HTTP/JSON:
//
//	POST /query    — Request in, Response out
//	GET  /healthz  — 200 when serving, 503 while draining
//	GET  /graphs   — resident graphs with vertex/edge counts
//	GET  /stats    — StatsSnapshot
//
// Error mapping: bad request 400, unknown graph 404, overload 429,
// draining 503, deadline exceeded 504.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		timeout := s.cfg.DefaultTimeout
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		resp, err := s.Query(ctx, req)
		if err != nil {
			status := statusFor(err)
			writeError(w, status, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Graphs())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

// statusFor maps service errors onto HTTP statuses; the admission
// rejections get distinct, retry-meaningful codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // the client hanging up is not our error
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
