package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"fastbfs/bfs"
)

// maxRequestBody bounds a request body; requests are tiny (a source
// plus a target list, or a graph name and path), so 1 MiB is generous.
const maxRequestBody = 1 << 20

// NewHandler exposes a Service over HTTP/JSON:
//
//	POST /query          — Request in, Response out
//	GET  /healthz        — liveness: 200 when serving, 503 while draining
//	GET  /readyz         — readiness: 200 only when not draining, no load
//	                       in progress, and every circuit breaker closed;
//	                       503 with the full ReadyState otherwise
//	GET  /graphs         — resident graphs with sizes and breaker states
//	POST /graphs/load    — {"name","path","mmap"?,"tune"?}: load or
//	                       atomically replace; journaled first in durable
//	                       mode; "tune":false pins engine defaults
//	                       (skips auto-calibration) for this graph
//	POST /graphs/unload  — {"name"}: remove a graph from serving
//	GET  /stats          — StatsSnapshot
//
// Distance-oracle index tier (see index.go):
//
//	POST   /graphs/{g}/index — {"landmarks"?,"policy"?,"seed"?,"force"?}:
//	                           start a background build; 202 Accepted
//	GET    /graphs/{g}/index — IndexStatus for one graph
//	DELETE /graphs/{g}/index — cancel a building index or drop a ready one
//
// Error mapping: bad request 400, unknown graph or index 404, index
// build already running 409, overload/shed 429 (+ Retry-After), load
// failure 422, resident budget 507, breaker open 503 (+ Retry-After),
// draining 503, watchdog/deadline 504, engine fault 500.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		timeout := s.cfg.DefaultTimeout
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		resp, err := s.Query(ctx, req)
		if err != nil {
			setRetryAfter(w, err)
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		rs := s.Ready()
		status := http.StatusOK
		if !rs.Ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, rs)
	})
	mux.HandleFunc("GET /graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Graphs())
	})
	mux.HandleFunc("POST /graphs/load", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name string `json:"name"`
			Path string `json:"path"`
			// Mmap overrides the service's default load mode: map the
			// file read-only instead of decoding it onto the heap.
			Mmap *bool `json:"mmap,omitempty"`
			// Tune overrides Config.AutoTune for this load: false pins
			// the engine defaults, true forces a calibration pass.
			Tune *bool `json:"tune,omitempty"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		if req.Path == "" {
			writeError(w, http.StatusBadRequest, "missing graph path")
			return
		}
		info, err := s.LoadGraphOptions(req.Name, req.Path, LoadOptions{Mmap: req.Mmap, Tune: req.Tune})
		if err != nil {
			setRetryAfter(w, err)
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("POST /graphs/unload", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name string `json:"name"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		if err := s.UnloadGraph(req.Name); err != nil {
			setRetryAfter(w, err)
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "unloaded", "name": req.Name})
	})
	mux.HandleFunc("POST /graphs/{g}/index", func(w http.ResponseWriter, r *http.Request) {
		var opt IndexOptions
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&opt); err != nil && !errors.Is(err, io.EOF) {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		st, err := s.BuildIndex(r.PathValue("g"), opt)
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		// 202: the build runs in the background; poll GET for progress.
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /graphs/{g}/index", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.IndexStatus(r.PathValue("g"))
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /graphs/{g}/index", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("g")
		if err := s.DropIndex(name); err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "dropped", "graph": name})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

// statusFor maps service errors onto HTTP statuses; the admission and
// containment rejections get distinct, retry-meaningful codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownGraph), errors.Is(err, ErrNoIndex):
		return http.StatusNotFound
	case errors.Is(err, ErrIndexBusy):
		return http.StatusConflict
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrLoadFailed):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrResidentBudget):
		return http.StatusInsufficientStorage
	case errors.Is(err, ErrBreakerOpen),
		errors.Is(err, ErrDraining),
		errors.Is(err, ErrNotRecovered),
		errors.Is(err, ErrNotDurable),
		errors.Is(err, bfs.ErrEngineBusy):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrWatchdog), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// setRetryAfter attaches a Retry-After hint to retryable rejections: the
// breaker's own cooldown remainder when it is open, a nominal second for
// overload — long enough to let a dispatch round drain — and a few
// seconds for the startup-recovery 503, since journal replay plus graph
// reloads usually finish within that.
func setRetryAfter(w http.ResponseWriter, err error) {
	var boe *BreakerOpenError
	switch {
	case errors.As(err, &boe):
		secs := int(boe.RetryAfter/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrShed):
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrNotRecovered):
		w.Header().Set("Retry-After", "5")
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // the client hanging up is not our error
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
