package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph/gen"
)

// TestHybridServiceMatchesSerial drives a hybrid-configured service with
// enough concurrent load that both paths execute — pooled hybrid engines
// (small rounds) and direction-optimizing batched sweeps — and checks
// every response against the serial reference. The graph is directed, so
// the shared transpose cache is exercised by both paths.
func TestHybridServiceMatchesSerial(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500Params(11, 8), 42)
	if err != nil {
		t.Fatal(err)
	}
	opts := bfs.Default(1)
	opts.Hybrid = true
	s := newTestService(t, g, Config{
		BatchThreshold: 2,
		BatchLinger:    100 * time.Millisecond,
		CacheEntries:   -1, // every query goes through the scheduler
		Options:        &opts,
	})
	const clients = 48
	sources := make([]uint32, clients)
	wants := make([][]int32, clients)
	for c := range sources {
		sources[c] = uint32((c * 211) % g.NumVertices())
		wants[c] = serialDepths(t, g, sources[c])
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := s.Query(context.Background(), Request{Graph: "g", Source: sources[c], AllDepths: true})
			if err != nil {
				errs[c] = err
				return
			}
			for v := range wants[c] {
				if resp.Depths[v] != wants[c][v] {
					errs[c] = errors.New("hybrid depth mismatch")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	if st := s.Stats(); st.Sweeps == 0 {
		t.Fatalf("no batched sweeps under hybrid load: %+v", st)
	}
}
