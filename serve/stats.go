package serve

import "sync/atomic"

// stats is the service's hot-path counter block (atomics, no locks).
type stats struct {
	requests       atomic.Int64
	cacheHits      atomic.Int64
	coalesced      atomic.Int64
	rejected       atomic.Int64
	expired        atomic.Int64
	abandoned      atomic.Int64
	shed           atomic.Int64
	sweeps         atomic.Int64
	batchedQueries atomic.Int64
	engineRuns     atomic.Int64

	breakerRejected atomic.Int64
	watchdogFired   atomic.Int64
	panicsRecovered atomic.Int64
	enginesRetired  atomic.Int64

	graphLoads       atomic.Int64
	graphLoadsFailed atomic.Int64
	graphUnloads     atomic.Int64
	graphEvictions   atomic.Int64

	indexBuilds       atomic.Int64
	indexBuildsFailed atomic.Int64
	indexHits         atomic.Int64
	indexFallbacks    atomic.Int64

	tuneCalibrations atomic.Int64

	scrubPasses      atomic.Int64
	scrubCorruptions atomic.Int64
	scrubRecoveries  atomic.Int64
}

// StatsSnapshot is a point-in-time copy of the service counters.
type StatsSnapshot struct {
	// Requests counts every Query call; CacheHits the ones answered from
	// the LRU; Coalesced the ones that attached to an already-in-flight
	// traversal of the same source.
	Requests  int64 `json:"requests"`
	CacheHits int64 `json:"cache_hits"`
	Coalesced int64 `json:"coalesced"`
	// Rejected counts admission failures (overload, breaker, draining);
	// Expired counts waiters whose own deadline fired before their
	// traversal; Abandoned the queued flights released early because
	// their last waiter left; Shed the queued flights dropped
	// oldest-first to admit fresh work under overload.
	Rejected  int64 `json:"rejected"`
	Expired   int64 `json:"expired"`
	Abandoned int64 `json:"abandoned"`
	Shed      int64 `json:"shed"`
	// Sweeps counts multi-source batch executions; BatchedQueries the
	// queries they served; EngineRuns the per-source fallback runs.
	Sweeps         int64 `json:"sweeps"`
	BatchedQueries int64 `json:"batched_queries"`
	EngineRuns     int64 `json:"engine_runs"`
	// Containment: BreakerRejected counts queries failed fast by an open
	// breaker; WatchdogFired the dispatch rounds hard-cancelled past
	// their wall-clock budget; PanicsRecovered the traversals that died
	// mid-run and were converted to typed errors; EnginesRetired the
	// poisoned engines quarantined out of their pools.
	BreakerRejected int64 `json:"breaker_rejected"`
	WatchdogFired   int64 `json:"watchdog_fired"`
	PanicsRecovered int64 `json:"panics_recovered"`
	EnginesRetired  int64 `json:"engines_retired"`
	// Lifecycle: loads/unloads/evictions of resident graphs.
	GraphLoads       int64 `json:"graph_loads"`
	GraphLoadsFailed int64 `json:"graph_loads_failed"`
	GraphUnloads     int64 `json:"graph_unloads"`
	GraphEvictions   int64 `json:"graph_evictions"`
	ResidentBytes    int64 `json:"resident_bytes"`
	// ResidentMappedBytes is the portion of ResidentBytes that aliases
	// read-only file mappings (reclaimable page cache) rather than heap.
	ResidentMappedBytes int64 `json:"resident_mapped_bytes"`
	// Distance-oracle tier: IndexBuilds counts build jobs started (and
	// IndexBuildsFailed the ones that errored or panicked); IndexHits
	// counts distance-only queries fully answered by a label join with
	// no traversal; IndexFallbacks the ones the oracle could not certify
	// that fell back to an exact BFS. Indexes is the per-graph state.
	IndexBuilds       int64         `json:"index_builds,omitempty"`
	IndexBuildsFailed int64         `json:"index_builds_failed,omitempty"`
	IndexHits         int64         `json:"index_hits,omitempty"`
	IndexFallbacks    int64         `json:"index_fallbacks,omitempty"`
	Indexes           []IndexStatus `json:"indexes,omitempty"`
	// Auto-tuning: TuneCalibrations counts calibration passes run by
	// this process (a journaled-profile reuse does NOT count — that is
	// the point of journaling); Tunings is the per-graph profile plus
	// predicted-vs-measured MTEPS.
	TuneCalibrations int64        `json:"tune_calibrations,omitempty"`
	Tunings          []TuneStatus `json:"tunings,omitempty"`
	// Integrity scrubbing: ScrubPasses counts completed scrub sweeps;
	// ScrubCorruptions the artifacts that failed re-verification (each
	// quarantine or index-drop transition counts once, however many
	// passes the fault persists); ScrubRecoveries the graphs restored to
	// serving (remounted from disk, or re-verified in place after the
	// underlying file healed).
	ScrubPasses      int64 `json:"scrub_passes,omitempty"`
	ScrubCorruptions int64 `json:"scrub_corruptions,omitempty"`
	ScrubRecoveries  int64 `json:"scrub_recoveries,omitempty"`
	// QueueDepth is the current admitted-but-unresolved count.
	QueueDepth int  `json:"queue_depth"`
	Draining   bool `json:"draining"`
	// Durable control plane (zero values in stateless mode): Recovering
	// is true until startup replay completes; JournalSeq is the last
	// durable record; JournalRecords the journal length since the last
	// snapshot (what a restart replays); SnapshotSeq the seq the
	// snapshot covers; RecoveryMS how long the last Recover took.
	Recovering     bool   `json:"recovering,omitempty"`
	JournalSeq     uint64 `json:"journal_seq,omitempty"`
	JournalRecords int    `json:"journal_records,omitempty"`
	SnapshotSeq    uint64 `json:"snapshot_seq,omitempty"`
	RecoveryMS     int64  `json:"recovery_ms,omitempty"`
	// Durability is "durable" while journal appends succeed, "degraded"
	// after a disk fault (appends refused, queries still exact) until a
	// probe append restores it; empty in stateless mode. DegradedReason
	// carries the fault; Degradations counts lifetime transitions.
	Durability     string `json:"durability,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	Degradations   int64  `json:"degradations,omitempty"`
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() StatsSnapshot {
	s.mu.Lock()
	manifest := s.manifest
	mapped := s.residentMapped
	s.mu.Unlock()
	snap := StatsSnapshot{
		Requests:            s.stats.requests.Load(),
		CacheHits:           s.stats.cacheHits.Load(),
		Coalesced:           s.stats.coalesced.Load(),
		Rejected:            s.stats.rejected.Load(),
		Expired:             s.stats.expired.Load(),
		Abandoned:           s.stats.abandoned.Load(),
		Shed:                s.stats.shed.Load(),
		Sweeps:              s.stats.sweeps.Load(),
		BatchedQueries:      s.stats.batchedQueries.Load(),
		EngineRuns:          s.stats.engineRuns.Load(),
		BreakerRejected:     s.stats.breakerRejected.Load(),
		WatchdogFired:       s.stats.watchdogFired.Load(),
		PanicsRecovered:     s.stats.panicsRecovered.Load(),
		EnginesRetired:      s.stats.enginesRetired.Load(),
		GraphLoads:          s.stats.graphLoads.Load(),
		GraphLoadsFailed:    s.stats.graphLoadsFailed.Load(),
		GraphUnloads:        s.stats.graphUnloads.Load(),
		GraphEvictions:      s.stats.graphEvictions.Load(),
		IndexBuilds:         s.stats.indexBuilds.Load(),
		IndexBuildsFailed:   s.stats.indexBuildsFailed.Load(),
		IndexHits:           s.stats.indexHits.Load(),
		IndexFallbacks:      s.stats.indexFallbacks.Load(),
		Indexes:             s.IndexStatuses(),
		TuneCalibrations:    s.stats.tuneCalibrations.Load(),
		ScrubPasses:         s.stats.scrubPasses.Load(),
		ScrubCorruptions:    s.stats.scrubCorruptions.Load(),
		ScrubRecoveries:     s.stats.scrubRecoveries.Load(),
		Tunings:             s.TuneStatuses(),
		ResidentBytes:       s.ResidentBytes(),
		ResidentMappedBytes: mapped,
		QueueDepth:          s.QueueDepth(),
		Draining:            s.Draining(),
		Recovering:          s.recovering.Load(),
		RecoveryMS:          s.recoveryDur.Load() / 1e6,
	}
	if manifest != nil {
		ms := manifest.Stats()
		snap.JournalSeq = ms.Seq
		snap.JournalRecords = ms.Records
		snap.SnapshotSeq = ms.SnapshotSeq
		snap.Durability = ms.Durability
		snap.DegradedReason = ms.DegradedReason
		snap.Degradations = ms.Degradations
	}
	return snap
}
