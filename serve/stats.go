package serve

import "sync/atomic"

// stats is the service's hot-path counter block (atomics, no locks).
type stats struct {
	requests       atomic.Int64
	cacheHits      atomic.Int64
	coalesced      atomic.Int64
	rejected       atomic.Int64
	expired        atomic.Int64
	sweeps         atomic.Int64
	batchedQueries atomic.Int64
	engineRuns     atomic.Int64
}

// StatsSnapshot is a point-in-time copy of the service counters.
type StatsSnapshot struct {
	// Requests counts every Query call; CacheHits the ones answered from
	// the LRU; Coalesced the ones that attached to an already-in-flight
	// traversal of the same source.
	Requests  int64 `json:"requests"`
	CacheHits int64 `json:"cache_hits"`
	Coalesced int64 `json:"coalesced"`
	// Rejected counts admission failures (overload or draining); Expired
	// counts waiters whose own deadline fired before their traversal.
	Rejected int64 `json:"rejected"`
	Expired  int64 `json:"expired"`
	// Sweeps counts multi-source batch executions; BatchedQueries the
	// queries they served; EngineRuns the per-source fallback runs.
	Sweeps         int64 `json:"sweeps"`
	BatchedQueries int64 `json:"batched_queries"`
	EngineRuns     int64 `json:"engine_runs"`
	// QueueDepth is the current admitted-but-unresolved count.
	QueueDepth int `json:"queue_depth"`
	Draining   bool `json:"draining"`
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() StatsSnapshot {
	return StatsSnapshot{
		Requests:       s.stats.requests.Load(),
		CacheHits:      s.stats.cacheHits.Load(),
		Coalesced:      s.stats.coalesced.Load(),
		Rejected:       s.stats.rejected.Load(),
		Expired:        s.stats.expired.Load(),
		Sweeps:         s.stats.sweeps.Load(),
		BatchedQueries: s.stats.batchedQueries.Load(),
		EngineRuns:     s.stats.engineRuns.Load(),
		QueueDepth:     s.QueueDepth(),
		Draining:       s.Draining(),
	}
}
