package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBreakerOpen is the sentinel matched (via errors.Is) by
// *BreakerOpenError rejections; handlers map it to 503 + Retry-After.
var ErrBreakerOpen = errors.New("serve: circuit breaker open")

// BreakerOpenError rejects a query because the target graph's circuit
// breaker is open after repeated engine-side failures. RetryAfter hints
// when the breaker will admit its next half-open probe.
type BreakerOpenError struct {
	Graph      string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("serve: graph %q: circuit breaker open (retry in %v)", e.Graph, e.RetryAfter)
}

// Is makes errors.Is(err, ErrBreakerOpen) true for breaker rejections.
func (e *BreakerOpenError) Is(target error) bool { return target == ErrBreakerOpen }

// Breaker states, reported by /readyz and /stats.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// breaker is a per-graph circuit breaker over engine-side failures
// (panics, watchdog kills, injected faults — never caller-budget
// expiries). Closed it admits everything and counts consecutive
// failures; at threshold it opens, failing queries fast with a typed
// 503 until cooldown elapses; then it goes half-open and admits ONE
// probe traversal — success recloses it, failure reopens the cooldown.
type breaker struct {
	threshold int           // consecutive failures to trip; <= 0 disables
	cooldown  time.Duration // open → half-open delay

	mu          sync.Mutex
	state       string
	consecutive int
	openedAt    time.Time
	probing     bool  // a half-open probe is in flight
	forced      bool  // quarantined from outside (scrubber); no probes
	opens       int64 // cumulative trips, for stats
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, state: BreakerClosed}
}

// allow decides whether a new flight may start. probe marks the flight
// as the half-open probe whose outcome drives the state machine;
// retryAfter is meaningful only when !ok.
func (b *breaker) allow() (ok, probe bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.forced {
		// Quarantined: cooldown never admits a probe — only the party
		// that forced the breaker open (the scrubber, once the artifact
		// verifies again) can reclose it.
		return false, false, b.cooldown
	}
	if b.threshold <= 0 {
		return true, false, 0
	}
	switch b.state {
	case BreakerClosed:
		return true, false, 0
	case BreakerOpen:
		if wait := b.cooldown - time.Since(b.openedAt); wait > 0 {
			return false, false, wait
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, true, 0
	default: // half-open
		if b.probing {
			return false, false, b.cooldown
		}
		b.probing = true
		return true, true, 0
	}
}

// onSuccess records a completed traversal: it resets the failure streak
// and, after a successful half-open probe, recloses the breaker.
func (b *breaker) onSuccess(probe bool) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consecutive = 0
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.consecutive = 0
		b.probing = false
	}
	// Open: a straggler from before the trip; cooldown governs.
}

// onFailure records an engine-side failure; at threshold consecutive
// failures the breaker trips (and a failed half-open probe re-trips).
func (b *breaker) onFailure(probe bool) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.trip()
	}
}

// onNeutral records an outcome that says nothing about engine health
// (shed, caller deadline): a neutral probe frees the half-open slot so
// the next query can probe instead.
func (b *breaker) onNeutral(probe bool) {
	if b.threshold <= 0 || !probe {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// forceOpen quarantines the breaker from outside the failure-streak
// path (the integrity scrubber, on a checksum mismatch). It overrides a
// disabled threshold — an artifact that fails its CRC must not serve
// regardless of breaker config — and suppresses half-open probes: no
// query outcome can reclose a forced-open breaker, only clearForced.
func (b *breaker) forceOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.forced {
		return
	}
	b.forced = true
	b.trip()
}

// clearForced lifts a forceOpen quarantine and recloses the breaker.
// A no-op when the breaker was not forced (an organically open breaker
// keeps its own cooldown state machine).
func (b *breaker) clearForced() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.forced {
		return
	}
	b.forced = false
	b.state = BreakerClosed
	b.consecutive = 0
	b.probing = false
}

// trip opens the breaker; callers hold b.mu.
func (b *breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = time.Now()
	b.consecutive = 0
	b.probing = false
	b.opens++
}

// snapshot returns the current state name and cumulative trip count.
func (b *breaker) snapshot() (state string, opens int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.forced {
		return BreakerOpen, b.opens
	}
	if b.threshold <= 0 {
		return BreakerClosed, 0
	}
	// An expired cooldown is still reported as open until a query
	// arrives to claim the half-open probe; report it half-open so
	// /readyz shows the breaker is willing to probe.
	if b.state == BreakerOpen && time.Since(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen, b.opens
	}
	return b.state, b.opens
}
