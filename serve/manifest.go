// Durable control plane: a crash-recoverable record of which graphs the
// service is meant to be serving, kept under a state directory so that a
// restart — graceful or SIGKILL — restores the exact acknowledged
// serving table instead of an empty one.
//
// Two files live in the state dir:
//
//	manifest.log   append-only journal of admin mutations
//	manifest.snap  snapshot of the full graph set at some journal seq
//
// The journal starts with an 8-byte magic and then holds framed records:
//
//	length  uint32  payload bytes (bounded by maxManifestRecord)
//	crc     uint32  CRC32 (IEEE) of the payload
//	payload []byte  JSON manifestRecord {seq, op, name, path, mmap}
//
// Every append is written and fsync'd before the mutation is
// acknowledged, so an acked load/unload survives any later crash. A
// crash mid-append leaves a torn tail: on open the journal is scanned
// record by record and truncated at the first frame that is short,
// oversized, CRC-mismatched, non-JSON or out of sequence — recovery
// keeps the longest valid prefix and NEVER refuses to boot.
//
// Snapshot compaction: after SnapshotEvery appended records the full
// graph set is written to manifest.snap.tmp, fsync'd, renamed over
// manifest.snap (atomic on POSIX), the directory fsync'd, and only then
// is the journal truncated back to its magic. A crash between the
// rename and the truncate is harmless: journal records with seq <= the
// snapshot's seq are skipped during replay.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"fastbfs/internal/faultinject"
	"fastbfs/tune"
)

const (
	manifestMagic = "FBFSMAN1"
	snapshotMagic = "FBFSSNP1"

	journalName  = "manifest.log"
	snapshotName = "manifest.snap"

	// maxManifestRecord bounds one framed payload; records are small
	// JSON objects, so anything larger is a corrupt length field.
	maxManifestRecord = 1 << 20

	// DefaultSnapshotEvery is the compaction threshold when
	// Config.SnapshotEvery is zero.
	DefaultSnapshotEvery = 64
)

// Manifest operations, as recorded in the journal.
const (
	opLoad      = "load"
	opUnload    = "unload"
	opIndex     = "index"
	opDropIndex = "dropindex"
	opTune      = "tune"
	// opProbe is a durable no-op: appended to test whether the journal
	// is writable again after a disk fault flipped the manifest into
	// degraded mode. apply() skips it like any unknown op, so probe
	// records are invisible to replay on every reader, old or new.
	opProbe = "probe"
)

// ErrNotDurable rejects mutating admin operations while the manifest is
// degraded: a journal append failed with a disk fault (ENOSPC, EIO), so
// a mutation could not be made durable and is refused rather than
// acknowledged-then-forgotten. Existing graphs keep serving; a
// successful probe append (Probe) restores durability.
var ErrNotDurable = errors.New("serve: manifest degraded: journal not writable")

// Durability states, as reported by /readyz and /stats.
const (
	DurabilityDurable  = "durable"
	DurabilityDegraded = "degraded"
)

// IndexSpec is one durable index registration: where the artifact lives
// and the build parameters, so a restart can remount it — or rebuild it
// with identical parameters if the artifact is torn.
type IndexSpec struct {
	// Path is the index artifact file (conventionally <graph>.idx).
	Path string `json:"path"`
	// Landmarks/Policy/Seed are the build parameters.
	Landmarks int    `json:"landmarks"`
	Policy    string `json:"policy"`
	Seed      uint64 `json:"seed,omitempty"`
	// Mmap records whether the artifact is remounted via mmap.
	Mmap bool `json:"mmap,omitempty"`
}

// GraphSpec is one durable graph registration: enough to reload the
// graph after a restart. Generated (in-memory) graphs have no path and
// are not journaled.
type GraphSpec struct {
	Name string `json:"name"`
	Path string `json:"path"`
	Mmap bool   `json:"mmap,omitempty"`
	// Index, when non-nil, records a completed index build for this
	// graph (an opIndex journal record folds it in; a fresh opLoad
	// replaces the spec wholesale and so drops it).
	Index *IndexSpec `json:"index,omitempty"`
	// Tune, when non-nil, is the graph's calibrated tuning profile
	// (tune package). A fresh load journals it inline with the load
	// record — one fsync covers both — so a restart reuses the profile
	// without re-calibrating; an opTune record folds a profile into an
	// already-journaled spec (the recovery-time retune path for records
	// written before tuning existed).
	Tune *tune.Profile `json:"tune,omitempty"`
}

// manifestRecord is one journal entry. Seq is assigned at append time
// and is strictly increasing across the journal's lifetime (snapshots
// remember the last seq they cover).
type manifestRecord struct {
	Seq uint64 `json:"seq"`
	Op  string `json:"op"`
	GraphSpec
}

// manifestSnapshot is the manifest.snap payload.
type manifestSnapshot struct {
	Seq    uint64      `json:"seq"`
	Taken  time.Time   `json:"taken"`
	Graphs []GraphSpec `json:"graphs"`
}

// ManifestStats is the observable state of a manifest, surfaced through
// /stats.
type ManifestStats struct {
	// Seq is the last durably appended record's sequence number.
	Seq uint64 `json:"journal_seq"`
	// Records is the journal length: records appended since the last
	// snapshot (what a restart must replay).
	Records int `json:"journal_records"`
	// SnapshotSeq is the seq covered by manifest.snap (0 = none).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// SnapshotAt is when the snapshot was taken (zero = none).
	SnapshotAt time.Time `json:"snapshot_at"`
	// TornBytes counts journal bytes dropped at open because the tail
	// was torn or corrupt (0 after a clean shutdown).
	TornBytes int64 `json:"torn_bytes"`
	// Durability is "durable" or "degraded"; DegradedReason carries the
	// disk fault that degraded the journal, empty while durable.
	// Degradations counts durable→degraded transitions over the
	// manifest's lifetime (restored probes do not reset it).
	Durability     string `json:"durability"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	Degradations   int64  `json:"degradations,omitempty"`
}

// Manifest is the durable graph registry: an open journal plus the
// in-memory graph set it implies. All methods are safe for concurrent
// use; appends serialize on an internal mutex (admin mutations are rare
// and each pays one fsync).
type Manifest struct {
	mu   sync.Mutex
	dir  string
	f    *os.File // journal, positioned at its end
	size int64    // current journal byte length

	seq      uint64 // last durable seq
	snapSeq  uint64
	snapAt   time.Time
	records  int // journal records since snapshot
	every    int // compaction threshold
	torn     int64
	order    []string // graph names in first-load order
	state    map[string]GraphSpec
	closed   bool
	compactE error // last compaction failure (appends still durable)

	// Degraded durability: a failed append (real disk fault or injected
	// manifest.append decision) sets degraded; mutating appends then
	// fail fast with ErrNotDurable until a probe append succeeds.
	degraded   bool
	degReason  string
	degradedCt int64 // cumulative degradations, for stats

	// Fault injection (nil in production): consulted once per append.
	inj  faultinject.Injector
	seqr *faultinject.Sequencer
}

// OpenManifest opens (creating if needed) the durable manifest under
// dir, replaying snapshot + journal. A torn or corrupt journal tail is
// truncated to the last valid record; a missing or unreadable snapshot
// is treated as empty. Only real I/O failures (unusable directory,
// unwritable journal) return an error.
func OpenManifest(dir string, snapshotEvery int) (*Manifest, error) {
	if snapshotEvery <= 0 {
		snapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: manifest: %w", err)
	}
	m := &Manifest{
		dir:   dir,
		every: snapshotEvery,
		state: make(map[string]GraphSpec),
	}
	m.loadSnapshot()

	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: manifest: %w", err)
	}
	m.f = f
	if err := m.replayJournal(); err != nil {
		f.Close()
		return nil, err
	}
	return m, nil
}

// loadSnapshot reads manifest.snap into m.state. The snapshot is
// written atomically (tmp + rename), so a damaged one means storage
// rot; per the never-refuse-to-boot rule it is ignored and recovery
// proceeds from the journal alone.
func (m *Manifest) loadSnapshot() {
	data, err := os.ReadFile(filepath.Join(m.dir, snapshotName))
	if err != nil {
		return // missing or unreadable: start empty
	}
	if len(data) < len(snapshotMagic)+8 || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return
	}
	payload, _, ok := decodeFrame(data[len(snapshotMagic):])
	if !ok {
		return
	}
	var snap manifestSnapshot
	if json.Unmarshal(payload, &snap) != nil {
		return
	}
	for _, spec := range snap.Graphs {
		if spec.Name == "" || spec.Path == "" {
			continue
		}
		m.apply(manifestRecord{Op: opLoad, GraphSpec: spec})
	}
	m.seq = snap.Seq
	m.snapSeq = snap.Seq
	m.snapAt = snap.Taken
}

// replayJournal scans the journal from the start, applies every valid
// record with seq > snapSeq, and truncates the file at the first
// invalid frame (the torn-tail rule). A journal whose 8-byte magic is
// missing or wrong is unreadable as a whole and is reset to empty.
func (m *Manifest) replayJournal() error {
	data, err := io.ReadAll(m.f)
	if err != nil {
		return fmt.Errorf("serve: manifest: reading journal: %w", err)
	}
	if len(data) < len(manifestMagic) || string(data[:len(manifestMagic)]) != manifestMagic {
		m.torn = int64(len(data))
		return m.resetJournal()
	}
	valid := int64(len(manifestMagic)) // byte offset of the last valid frame end
	rest := data[len(manifestMagic):]
	for len(rest) > 0 {
		payload, n, ok := decodeFrame(rest)
		if !ok {
			break
		}
		var rec manifestRecord
		if json.Unmarshal(payload, &rec) != nil || rec.Seq <= m.seq {
			// Not JSON, or sequence went backwards: corruption. The one
			// benign backward case — records at or below the snapshot's
			// seq left behind by a crash between snapshot rename and
			// journal truncate — is records whose seq <= snapSeq while
			// m.seq still equals snapSeq; those are skipped, not fatal.
			if rec.Seq != 0 && rec.Seq <= m.snapSeq && m.seq == m.snapSeq {
				valid += int64(n)
				rest = rest[n:]
				continue
			}
			break
		}
		m.apply(rec)
		m.seq = rec.Seq
		m.records++
		valid += int64(n)
		rest = rest[n:]
	}
	m.torn = int64(len(data)) - valid
	if m.torn > 0 {
		if err := m.f.Truncate(valid); err != nil {
			return fmt.Errorf("serve: manifest: truncating torn tail: %w", err)
		}
		if err := m.f.Sync(); err != nil {
			return fmt.Errorf("serve: manifest: %w", err)
		}
	}
	if _, err := m.f.Seek(valid, io.SeekStart); err != nil {
		return fmt.Errorf("serve: manifest: %w", err)
	}
	m.size = valid
	return nil
}

// resetJournal rewrites the journal as empty (magic only). Used when
// the file header itself is unreadable.
func (m *Manifest) resetJournal() error {
	if err := m.f.Truncate(0); err != nil {
		return fmt.Errorf("serve: manifest: resetting journal: %w", err)
	}
	if _, err := m.f.WriteAt([]byte(manifestMagic), 0); err != nil {
		return fmt.Errorf("serve: manifest: %w", err)
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("serve: manifest: %w", err)
	}
	if _, err := m.f.Seek(int64(len(manifestMagic)), io.SeekStart); err != nil {
		return fmt.Errorf("serve: manifest: %w", err)
	}
	m.size = int64(len(manifestMagic))
	return nil
}

// decodeFrame parses one framed record from the head of b, returning
// the payload, the total frame length consumed, and whether the frame
// was intact (length sane, payload complete, CRC matching).
func decodeFrame(b []byte) (payload []byte, n int, ok bool) {
	if len(b) < 8 {
		return nil, 0, false
	}
	length := binary.LittleEndian.Uint32(b[0:])
	crc := binary.LittleEndian.Uint32(b[4:])
	if length == 0 || length > maxManifestRecord || uint64(len(b)) < 8+uint64(length) {
		return nil, 0, false
	}
	payload = b[8 : 8+length]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, false
	}
	return payload, 8 + int(length), true
}

// encodeFrame appends the framed payload to dst.
func encodeFrame(dst, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	return append(append(dst, hdr[:]...), payload...)
}

// apply folds one record into the in-memory graph set.
func (m *Manifest) apply(rec manifestRecord) {
	switch rec.Op {
	case opLoad:
		if rec.Name == "" || rec.Path == "" {
			return
		}
		if _, exists := m.state[rec.Name]; !exists {
			m.order = append(m.order, rec.Name)
		}
		m.state[rec.Name] = rec.GraphSpec
	case opUnload:
		if _, exists := m.state[rec.Name]; exists {
			delete(m.state, rec.Name)
			for i, n := range m.order {
				if n == rec.Name {
					m.order = append(m.order[:i], m.order[i+1:]...)
					break
				}
			}
		}
	case opIndex:
		// An index is only meaningful attached to a durably loaded
		// graph; an orphan record (graph unloaded by a later-lost
		// journal suffix, or hand-edited state) is skipped.
		if spec, exists := m.state[rec.Name]; exists && rec.Index != nil {
			spec.Index = rec.Index
			m.state[rec.Name] = spec
		}
	case opDropIndex:
		if spec, exists := m.state[rec.Name]; exists {
			spec.Index = nil
			m.state[rec.Name] = spec
		}
	case opTune:
		// Like opIndex: a tuning profile only means something attached
		// to a durably loaded graph; orphan records are skipped.
		if spec, exists := m.state[rec.Name]; exists && rec.Tune != nil {
			spec.Tune = rec.Tune
			m.state[rec.Name] = spec
		}
	}
	// Unknown ops are skipped: a newer writer's record must not stop an
	// older reader from recovering the rest of the journal.
}

// Contains reports whether name is in the durable graph set. Lifecycle
// code uses it to journal unloads/evictions only for graphs that were
// durably loaded in the first place.
func (m *Manifest) Contains(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.state[name]
	return ok
}

// State returns the durable graph set in first-load order.
func (m *Manifest) State() []GraphSpec {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]GraphSpec, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, m.state[name])
	}
	return out
}

// Stats snapshots the manifest's observable state.
func (m *Manifest) Stats() ManifestStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := ManifestStats{
		Seq:          m.seq,
		Records:      m.records,
		SnapshotSeq:  m.snapSeq,
		SnapshotAt:   m.snapAt,
		TornBytes:    m.torn,
		Durability:   DurabilityDurable,
		Degradations: m.degradedCt,
	}
	if m.degraded {
		st.Durability = DurabilityDegraded
		st.DegradedReason = m.degReason
	}
	return st
}

// AppendLoad durably records that spec's graph is (re)loaded. It
// returns only after the record is written AND fsync'd; callers must
// not acknowledge the mutation on error.
func (m *Manifest) AppendLoad(spec GraphSpec) error {
	return m.append(manifestRecord{Op: opLoad, GraphSpec: spec})
}

// AppendUnload durably records that the named graph left the serving
// table (explicit unload or budget eviction).
func (m *Manifest) AppendUnload(name string) error {
	return m.append(manifestRecord{Op: opUnload, GraphSpec: GraphSpec{Name: name, Path: "-"}})
}

// AppendIndex durably records a completed index build for the named
// graph. Callers persist the artifact (fsync'd, atomically renamed)
// BEFORE appending, so a recovered record always points at a complete
// file — or at worst one that fails its CRC and triggers a rebuild.
func (m *Manifest) AppendIndex(name string, idx IndexSpec) error {
	return m.append(manifestRecord{Op: opIndex, GraphSpec: GraphSpec{Name: name, Path: "-", Index: &idx}})
}

// AppendTune durably records a calibrated tuning profile for the named
// graph. Fresh loads journal their profile inside the load record
// instead (one fsync); AppendTune exists for recovery-time retunes of
// specs journaled before tuning existed.
func (m *Manifest) AppendTune(name string, prof *tune.Profile) error {
	return m.append(manifestRecord{Op: opTune, GraphSpec: GraphSpec{Name: name, Path: "-", Tune: prof}})
}

// AppendDropIndex durably records that the named graph's index was
// dropped; a restart will not remount it.
func (m *Manifest) AppendDropIndex(name string) error {
	return m.append(manifestRecord{Op: opDropIndex, GraphSpec: GraphSpec{Name: name, Path: "-"}})
}

func (m *Manifest) append(rec manifestRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("serve: manifest: closed")
	}
	if m.degraded {
		// Fail fast: the journal already proved unwritable, so the
		// mutation cannot be made durable. No disk touch here — the
		// probe path owns re-testing the device.
		return fmt.Errorf("%w: %s", ErrNotDurable, m.degReason)
	}
	return m.appendLocked(rec)
}

// appendLocked writes, fsyncs and applies one record; callers hold
// m.mu. Any disk failure — real or injected at the manifest.append
// site — degrades the manifest: the serving table keeps answering
// queries exactly, but mutating operations are refused until a probe
// append proves the journal writable again.
func (m *Manifest) appendLocked(rec manifestRecord) error {
	rec.Seq = m.seq + 1
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: manifest: %w", err)
	}
	if m.inj != nil {
		var key uint64
		if m.seqr != nil {
			key = m.seqr.Next(faultinject.SiteManifestAppend)
		}
		d := faultinject.Decide(m.inj, faultinject.SiteManifestAppend, key)
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		if d.Err != nil {
			m.degradeLocked(d.Err)
			// Wrap ErrNotDurable so the op that discovered the disk
			// fault is refused the same typed way as the ones after it.
			return fmt.Errorf("%w: appending: %v", ErrNotDurable, d.Err)
		}
	}
	frame := encodeFrame(nil, payload)
	if _, err := m.f.WriteAt(frame, m.size); err != nil {
		// Best effort: drop the partial frame so it cannot be mistaken
		// for a torn tail of acknowledged data.
		_ = m.f.Truncate(m.size)
		m.degradeLocked(err)
		return fmt.Errorf("%w: appending: %v", ErrNotDurable, err)
	}
	if err := m.f.Sync(); err != nil {
		_ = m.f.Truncate(m.size)
		m.degradeLocked(err)
		return fmt.Errorf("%w: fsync: %v", ErrNotDurable, err)
	}
	m.size += int64(len(frame))
	m.seq = rec.Seq
	m.records++
	m.apply(rec)
	if m.records >= m.every {
		// Compaction failure never fails the append — the record above
		// is already durable; the journal just stays long.
		m.compactE = m.compactLocked()
	}
	return nil
}

// degradeLocked flips the manifest into non-durable mode; callers hold
// m.mu. Idempotent: the first fault's reason sticks until restored.
func (m *Manifest) degradeLocked(cause error) {
	if m.degraded {
		return
	}
	m.degraded = true
	m.degReason = cause.Error()
	m.degradedCt++
}

// Probe attempts a durable no-op append to test whether the journal is
// writable again. On success a degraded manifest is restored to durable
// mode; on a manifest that is already durable it is a no-op. The probe
// record uses an op unknown to apply(), so it is invisible to replay.
func (m *Manifest) Probe() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("serve: manifest: closed")
	}
	if !m.degraded {
		return nil
	}
	// A still-failing disk leaves the degraded state untouched
	// (degradeLocked is idempotent); a clean write-and-fsync is proof
	// of recovery.
	if err := m.appendLocked(manifestRecord{Op: opProbe}); err != nil {
		return err
	}
	m.degraded = false
	m.degReason = ""
	return nil
}

// Degraded reports whether the manifest is in non-durable mode, and the
// disk fault that put it there.
func (m *Manifest) Degraded() (bool, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded, m.degReason
}

// Compact forces snapshot compaction now (tests and ops tooling).
func (m *Manifest) Compact() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compactLocked()
}

// compactLocked writes the current graph set as a snapshot covering
// m.seq, then truncates the journal. Ordering is what makes a crash at
// any point here safe: the snapshot is durable (tmp, fsync, rename,
// dir fsync) BEFORE any journal byte is dropped.
func (m *Manifest) compactLocked() error {
	snap := manifestSnapshot{
		Seq:    m.seq,
		Taken:  time.Now().UTC(),
		Graphs: make([]GraphSpec, 0, len(m.order)),
	}
	for _, name := range m.order {
		snap.Graphs = append(snap.Graphs, m.state[name])
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("serve: manifest: snapshot: %w", err)
	}
	buf := encodeFrame([]byte(snapshotMagic), payload)
	tmp := filepath.Join(m.dir, snapshotName+".tmp")
	if err := writeFileSync(tmp, buf); err != nil {
		return fmt.Errorf("serve: manifest: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(m.dir, snapshotName)); err != nil {
		return fmt.Errorf("serve: manifest: snapshot: %w", err)
	}
	syncDir(m.dir)
	if err := m.f.Truncate(int64(len(manifestMagic))); err != nil {
		return fmt.Errorf("serve: manifest: truncating journal: %w", err)
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("serve: manifest: %w", err)
	}
	m.size = int64(len(manifestMagic))
	m.snapSeq = m.seq
	m.snapAt = snap.Taken
	m.records = 0
	return nil
}

// CompactionErr reports the last background compaction failure, if any
// (appends stay durable regardless).
func (m *Manifest) CompactionErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compactE
}

// Close releases the journal file handle. Appended records are already
// durable; Close exists for tests and orderly shutdown.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	return m.f.Close()
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename within it is durable. Failure
// is ignored: some filesystems reject directory fsync, and the rename
// itself is still ordered after the file's own fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
