// Background integrity scrubber: the load-time CRC check proves an
// artifact was intact when it entered memory; the scrubber keeps
// proving it while it stays resident. Every ScrubInterval it re-hashes
// each resident graph and index against its on-disk CRC32 footer —
// rate-limited so the walk stays low-priority next to query serving —
// and drives recovery when the hashes stop matching:
//
//	graph mismatch  → quarantine (breaker forced open, /readyz not
//	                  ready) → remount from disk; a remount that fails
//	                  its own load-time CRC leaves the graph quarantined
//	                  and is retried every pass until the file heals
//	index mismatch  → unmount (queries fall back to the always-exact
//	                  BFS path) → background rebuild with the journaled
//	                  parameters, which rewrites the artifact
//
// For mmap'd artifacts the resident arrays alias the file, so disk bit
// rot after load is visible in the resident hash; for heap artifacts
// the walk catches in-memory rot (a pure disk flip under a heap graph
// surfaces at the next load instead). The scrubber also doubles as the
// durability prober: while the manifest is degraded after a disk
// fault, each pass attempts the probe append that restores it.
//
// The scrub.corrupt faultinject site simulates a mismatch (once per
// artifact per pass) without touching disk, which is how chaos tests
// exercise the quarantine → remount path deterministically.
package serve

import (
	"fmt"
	"sort"
	"time"

	"fastbfs/graph"
	"fastbfs/index"
	"fastbfs/internal/faultinject"
)

// scrubLoop runs scrub passes until drain or hard shutdown.
func (s *Service) scrubLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.scrubPass()
		case <-s.drained:
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}

// scrubPass re-verifies every resident artifact once and probes a
// degraded manifest. Exported operations it triggers (remounts,
// rebuilds) go through the same paths admin requests use.
func (s *Service) scrubPass() {
	// Probe the journal first: durability restores independently of
	// artifact health.
	s.mu.Lock()
	m := s.manifest
	s.mu.Unlock()
	if m != nil {
		if degraded, reason := m.Degraded(); degraded {
			if err := m.Probe(); err == nil {
				s.logf("serve: scrub: journal probe append succeeded; durability restored (was: %s)", reason)
			}
		}
	}

	// Snapshot the serving table; artifacts are visited in name order so
	// the scrub.corrupt injection sequence is deterministic.
	type scrubTarget struct {
		gs   *graphState
		ix   *index.Index
		spec *IndexSpec
	}
	s.mu.Lock()
	targets := make([]scrubTarget, 0, len(s.graphs))
	for _, gs := range s.graphs {
		t := scrubTarget{gs: gs}
		if gs.idxState == IndexReady && gs.idxSpec != nil && gs.idxSpec.Path != "" {
			if ix := gs.idx.Load(); ix != nil {
				spec := *gs.idxSpec
				t.ix, t.spec = ix, &spec
			}
		}
		targets = append(targets, t)
	}
	s.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].gs.name < targets[j].gs.name })

	for _, t := range targets {
		s.scrubGraph(t.gs)
		if t.ix != nil {
			s.scrubIndex(t.gs, t.ix, t.spec)
		}
	}
	s.stats.scrubPasses.Add(1)
}

// scrubPace returns the rate-limit callback for one verify walk: it
// accumulates hashed bytes and sleeps whenever the debt at ScrubRate
// exceeds a scheduling-worthy quantum.
func (s *Service) scrubPace() func(int) {
	rate := s.cfg.ScrubRate
	if rate <= 0 {
		return nil
	}
	const quantum = time.Millisecond
	var debt int64
	return func(n int) {
		debt += int64(n)
		if owed := time.Duration(debt * int64(time.Second) / rate); owed >= quantum {
			debt = 0
			time.Sleep(owed)
		}
	}
}

// chaosScrubVerify consults the scrub.corrupt site for one artifact:
// a firing fault stands in for a checksum mismatch.
func (s *Service) chaosScrubVerify() error {
	if s.inj == nil {
		return nil
	}
	key := s.seq.Next(faultinject.SiteScrubCorrupt)
	d := faultinject.Decide(s.inj, faultinject.SiteScrubCorrupt, key)
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	if d.Err != nil {
		return fmt.Errorf("serve: scrub: injected checksum mismatch: %w", d.Err)
	}
	return nil
}

// scrubGraph re-verifies one resident graph and drives the quarantine /
// remount state machine. Counters move only on transitions: one
// corruption per quarantine, one recovery per return to serving.
func (s *Service) scrubGraph(gs *graphState) {
	if gs.path == "" {
		return // in-process graph: no artifact recording what it should be
	}
	verr := graph.VerifyResident(gs.g, gs.path, s.scrubPace())
	if verr == nil {
		verr = s.chaosScrubVerify()
	}

	if verr == nil {
		// Healthy — or healed: an mmap'd graph whose file was restored
		// in place verifies again without a reload.
		s.mu.Lock()
		healed := s.graphs[gs.name] == gs && gs.scrubQuarantined
		if healed {
			gs.scrubQuarantined, gs.scrubErr = false, ""
		}
		s.mu.Unlock()
		if healed {
			gs.breaker.clearForced()
			s.stats.scrubRecoveries.Add(1)
			s.logf("serve: scrub: graph %q verifies again; quarantine lifted", gs.name)
		}
		return
	}

	s.mu.Lock()
	if s.graphs[gs.name] != gs {
		s.mu.Unlock()
		return // replaced or unloaded mid-walk; the verdict is stale
	}
	fresh := !gs.scrubQuarantined
	gs.scrubQuarantined = true
	gs.scrubErr = verr.Error()
	s.mu.Unlock()
	gs.breaker.forceOpen()
	if fresh {
		// Drop cached traversals: any computed between the rot and its
		// detection may embed the corruption.
		gs.cache.purge()
		s.stats.scrubCorruptions.Add(1)
		s.logf("serve: scrub: graph %q failed integrity re-verify, quarantined: %v", gs.name, verr)
	}
	s.scrubRemount(gs)
}

// scrubRemount reloads a quarantined graph's artifact from disk; the
// load re-runs the full CRC gauntlet, so only a healthy file replaces
// the quarantined state. The tuning profile carries over (the graph
// bytes are the same ones it was calibrated on) and a mounted index is
// remounted — or rebuilt — the same way recovery does it.
func (s *Service) scrubRemount(gs *graphState) {
	g, err := s.loadGraphFile(gs.path, gs.mapped)
	if err != nil {
		s.logf("serve: scrub: graph %q: remount from %s failed, still quarantined: %v", gs.name, gs.path, err)
		return
	}
	s.mu.Lock()
	if s.graphs[gs.name] != gs {
		s.mu.Unlock()
		return
	}
	var idxSpec *IndexSpec
	if gs.idxSpec != nil {
		spec := *gs.idxSpec
		idxSpec = &spec
	}
	// spec nil: the manifest already records this graph at this path.
	err = s.registerGraphLocked(gs.name, g, true, gs.path, nil, gs.profile)
	s.mu.Unlock()
	if err != nil {
		s.logf("serve: scrub: graph %q: reinstalling remounted graph failed: %v", gs.name, err)
		return
	}
	s.stats.scrubRecoveries.Add(1)
	s.logf("serve: scrub: graph %q remounted from disk; quarantine lifted", gs.name)
	if idxSpec != nil {
		if rerr := s.remountIndex(gs.name, g, *idxSpec); rerr != nil {
			opt := IndexOptions{Landmarks: idxSpec.Landmarks, Policy: idxSpec.Policy, Seed: idxSpec.Seed, Force: true}
			if _, berr := s.BuildIndex(gs.name, opt); berr != nil {
				s.logf("serve: scrub: graph %q: index remount (%v) and rebuild (%v) both failed", gs.name, rerr, berr)
			}
		}
	}
}

// scrubIndex re-verifies one mounted index. A mismatch is cheaper to
// recover than a graph's: the labeling is an accelerator, so it is
// unmounted on the spot — distance queries fall back to the always-
// exact BFS path — and rebuilt in the background with the journaled
// parameters, which rewrites the artifact.
func (s *Service) scrubIndex(gs *graphState, ix *index.Index, spec *IndexSpec) {
	verr := index.VerifyResident(ix, spec.Path, s.scrubPace())
	if verr == nil {
		verr = s.chaosScrubVerify()
	}
	if verr == nil {
		return
	}
	s.mu.Lock()
	if s.graphs[gs.name] != gs || gs.idx.Load() != ix {
		s.mu.Unlock()
		return // the labeling was swapped mid-walk; the verdict is stale
	}
	s.unmountIndexLocked(gs)
	s.mu.Unlock()
	s.stats.scrubCorruptions.Add(1)
	s.logf("serve: scrub: index for %q failed integrity re-verify, unmounted (exact-BFS fallback): %v", gs.name, verr)
	opt := IndexOptions{Landmarks: spec.Landmarks, Policy: spec.Policy, Seed: spec.Seed, Force: true}
	if _, err := s.BuildIndex(gs.name, opt); err != nil {
		s.logf("serve: scrub: index rebuild for %q could not start: %v", gs.name, err)
	}
}
