package serve

// Silent-fault defense tests for the serving tier: the background
// integrity scrubber's quarantine / remount / heal state machine for
// graphs, the unmount-and-rebuild path for index artifacts, and the
// degraded-durability mode the manifest enters when its journal stops
// accepting appends.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"testing"

	"fastbfs/graph/gen"
	"fastbfs/internal/faultinject"
)

// artifactFooterLen is the CRC32 + magic trailer both graph and index
// artifacts end with (4 bytes of checksum, 8 of magic).
const artifactFooterLen = 12

// flipByte XORs one byte of a file in place, simulating bit rot.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// TestScrubBitFlipQuarantinesThenHealsMmapGraph: a bit flipped on disk
// under an mmap'd graph is visible in the resident arrays. The scrub
// pass must quarantine the graph (breaker forced open, not ready, no
// corrupted answers), keep it quarantined while the file stays bad
// (the remount re-runs the load CRC and refuses the artifact), and
// lift the quarantine on its own once the file heals in place.
func TestScrubBitFlipQuarantinesThenHealsMmapGraph(t *testing.T) {
	g, err := gen.Grid2D(16, 16, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := serialDepths(t, g, 0)
	p := saveGraph(t, g, "g.csr")
	mmap := true
	s := New(Config{})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	if _, err := s.LoadGraphOptions("g", p, LoadOptions{Mmap: &mmap}); err != nil {
		t.Fatal(err)
	}
	// Prime the result cache: quarantine must fence cached answers too,
	// not just fresh traversals.
	if _, err := s.Query(context.Background(), Request{Graph: "g", Source: 0, AllDepths: true}); err != nil {
		t.Fatal(err)
	}

	// Flip the last neighbors byte: inside the payload, so the footer
	// still records the honest checksum the resident bytes no longer
	// hash to.
	off := fileSize(t, p) - artifactFooterLen - 1
	flipByte(t, p, off)
	s.scrubPass()

	st := s.Stats()
	if st.ScrubPasses != 1 || st.ScrubCorruptions != 1 || st.ScrubRecoveries != 0 {
		t.Fatalf("after corrupt pass: passes %d corruptions %d recoveries %d, want 1/1/0",
			st.ScrubPasses, st.ScrubCorruptions, st.ScrubRecoveries)
	}
	rs := s.Ready()
	if rs.Ready {
		t.Fatal("service still ready while serving graph is quarantined")
	}
	if len(rs.Graphs) != 1 || !rs.Graphs[0].Quarantined || rs.Graphs[0].ScrubError == "" {
		t.Fatalf("readyz graph state = %+v, want quarantined with a scrub error", rs.Graphs)
	}
	if _, err := s.Query(context.Background(), Request{Graph: "g", Source: 0, AllDepths: true}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("query on quarantined graph: err = %v, want ErrBreakerOpen", err)
	}

	// A second pass with the file still bad must not double-count the
	// corruption, and must keep refusing the remount.
	s.scrubPass()
	if st := s.Stats(); st.ScrubCorruptions != 1 || st.ScrubRecoveries != 0 {
		t.Fatalf("second corrupt pass: corruptions %d recoveries %d, want 1/0", st.ScrubCorruptions, st.ScrubRecoveries)
	}

	// Heal the file in place: the mmap aliases it, so the next pass
	// verifies the resident bytes again and lifts the quarantine
	// without a reload.
	flipByte(t, p, off)
	s.scrubPass()
	if st := s.Stats(); st.ScrubCorruptions != 1 || st.ScrubRecoveries != 1 {
		t.Fatalf("after heal pass: corruptions %d recoveries %d, want 1/1", st.ScrubCorruptions, st.ScrubRecoveries)
	}
	if rs := s.Ready(); !rs.Ready || rs.Graphs[0].Quarantined {
		t.Fatalf("after heal: ready state = %+v, want ready and unquarantined", rs)
	}
	resp, err := s.Query(context.Background(), Request{Graph: "g", Source: 0, AllDepths: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Depths, want) {
		t.Fatal("depths after quarantine recovery differ from serial reference")
	}
}

// TestScrubChaosQuarantineRemountsFromDisk: the scrub.corrupt site
// simulates in-memory rot under a heap graph — the resident hash "goes
// bad" while the artifact on disk stays honest. The same pass must
// quarantine the graph and recover it by remounting from disk.
func TestScrubChaosQuarantineRemountsFromDisk(t *testing.T) {
	g, err := gen.Grid2D(16, 16, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := serialDepths(t, g, 0)
	p := saveGraph(t, g, "g.csr")
	s := New(Config{Injector: &faultinject.Plan{Seed: 1, Rules: map[faultinject.Site]faultinject.Rule{
		faultinject.SiteScrubCorrupt: {FaultProb: 1},
	}}})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	if _, err := s.LoadGraph("g", p); err != nil {
		t.Fatal(err)
	}

	s.scrubPass()
	if st := s.Stats(); st.ScrubCorruptions != 1 || st.ScrubRecoveries != 1 {
		t.Fatalf("chaos pass: corruptions %d recoveries %d, want 1/1 (quarantine then remount)",
			st.ScrubCorruptions, st.ScrubRecoveries)
	}
	if rs := s.Ready(); !rs.Ready || rs.Graphs[0].Quarantined {
		t.Fatalf("after remount: ready state = %+v, want ready and unquarantined", rs)
	}

	// With the injection off, the remounted graph passes a clean sweep.
	s.inj = nil
	s.scrubPass()
	if st := s.Stats(); st.ScrubCorruptions != 1 {
		t.Fatalf("clean pass after remount recorded %d corruptions, want 1", st.ScrubCorruptions)
	}
	resp, err := s.Query(context.Background(), Request{Graph: "g", Source: 0, AllDepths: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Depths, want) {
		t.Fatal("depths after chaos remount differ from serial reference")
	}
}

// TestScrubIndexMismatchUnmountsAndRebuilds: a corrupted index
// artifact is cheaper than a corrupted graph — the labeling is only an
// accelerator, so the scrubber unmounts it on the spot (queries fall
// back to exact BFS) and rebuilds it in the background, which rewrites
// the artifact.
func TestScrubIndexMismatchUnmountsAndRebuilds(t *testing.T) {
	g, err := gen.Grid2D(16, 16, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := serialDepths(t, g, 0)
	p := saveGraph(t, g, "g.csr")
	s := New(Config{})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	if _, err := s.LoadGraph("g", p); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BuildIndex("g", IndexOptions{Landmarks: 8}); err != nil {
		t.Fatal(err)
	}
	st := waitIndexState(t, s, "g", IndexReady)
	if st.Artifact == "" {
		t.Fatal("index built from a pathed graph recorded no artifact")
	}

	// Flip a byte of the artifact's recorded CRC: the resident labeling
	// no longer matches what the disk claims it should be.
	flipByte(t, st.Artifact, fileSize(t, st.Artifact)-artifactFooterLen)
	s.scrubPass()
	if sn := s.Stats(); sn.ScrubCorruptions != 1 {
		t.Fatalf("index mismatch pass recorded %d corruptions, want 1", sn.ScrubCorruptions)
	}
	// Queries stay exact throughout: with the labeling unmounted they
	// ride the BFS path.
	resp, err := s.Query(context.Background(), Request{Graph: "g", Source: 0, AllDepths: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Depths, want) {
		t.Fatal("depths while index rebuilds differ from serial reference")
	}

	// The background rebuild remounts a fresh labeling and rewrites the
	// artifact; the next sweep finds nothing wrong with it.
	waitIndexState(t, s, "g", IndexReady)
	s.scrubPass()
	if sn := s.Stats(); sn.ScrubCorruptions != 1 {
		t.Fatalf("rebuilt index failed its re-verify: %d corruptions, want 1", sn.ScrubCorruptions)
	}
}

// TestManifestDegradeRestore: a failed journal append flips the
// manifest read-only — mutating admin operations are refused with
// ErrNotDurable while queries keep serving exactly — and a successful
// probe append (driven by the scrub pass) restores durable mode. The
// journal that results replays cleanly.
func TestManifestDegradeRestore(t *testing.T) {
	stateDir := t.TempDir()
	g, err := gen.Grid2D(12, 12, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := serialDepths(t, g, 0)
	pa := saveGraph(t, g, "a.csr")
	pb := saveGraph(t, g, "b.csr")

	s := New(Config{StateDir: stateDir})
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadGraph("a", pa); err != nil {
		t.Fatal(err)
	}

	// Every append now hits a simulated disk fault.
	s.manifest.inj = &faultinject.Plan{Seed: 1, Rules: map[faultinject.Site]faultinject.Rule{
		faultinject.SiteManifestAppend: {FaultProb: 1},
	}}
	if _, err := s.LoadGraph("b", pb); err == nil {
		t.Fatal("load succeeded although its journal append failed")
	}
	st := s.Stats()
	if st.Durability != DurabilityDegraded || st.DegradedReason == "" || st.Degradations != 1 {
		t.Fatalf("post-fault stats = durability %q reason %q degradations %d, want degraded/reason/1",
			st.Durability, st.DegradedReason, st.Degradations)
	}
	if rs := s.Ready(); rs.Durability != DurabilityDegraded || !rs.Ready {
		t.Fatalf("readyz = %+v, want ready with degraded durability (queries still exact)", rs)
	}
	// Fail fast now: no disk touch, typed refusal.
	if _, err := s.LoadGraph("c", pb); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("mutation while degraded: err = %v, want ErrNotDurable", err)
	}
	resp, err := s.Query(context.Background(), Request{Graph: "a", Source: 0, AllDepths: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Depths, want) {
		t.Fatal("depths while degraded differ from serial reference")
	}

	// The disk "heals": the scrub pass's probe append restores durable
	// mode and mutations work again.
	s.manifest.inj = nil
	s.scrubPass()
	if st := s.Stats(); st.Durability != DurabilityDurable || st.Degradations != 1 {
		t.Fatalf("post-probe stats = durability %q degradations %d, want durable/1", st.Durability, st.Degradations)
	}
	if _, err := s.LoadGraph("b", pb); err != nil {
		t.Fatalf("load after restore: %v", err)
	}
	shutdown(t, s)

	// The journal the episode left behind replays to exactly the loads
	// that were acknowledged.
	s2 := New(Config{StateDir: stateDir})
	defer shutdown(t, s2)
	sum, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum.Graphs, []string{"a", "b"}) {
		t.Fatalf("recovered graphs = %v, want [a b]", sum.Graphs)
	}
}

// TestHTTPDegradedDurabilityAndRetryAfter: the HTTP surface of the two
// degraded modes. A load during startup recovery is a 503 with the
// nominal Retry-After hint; a load against a degraded manifest is a
// 503 whose /readyz shows "durability":"degraded" until the probe
// restores it.
func TestHTTPDegradedDurabilityAndRetryAfter(t *testing.T) {
	stateDir := t.TempDir()
	g, err := gen.Grid2D(12, 12, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := saveGraph(t, g, "g.csr")
	s := New(Config{StateDir: stateDir})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	load := func(name string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"name": name, "path": p})
		resp, err := http.Post(ts.URL+"/graphs/load", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	readyz := func() ReadyState {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rs ReadyState
		if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
			t.Fatal(err)
		}
		return rs
	}

	// Before Recover: 503 plus a Retry-After so load balancers and
	// operators back off instead of hammering the replaying journal.
	if resp := load("g"); resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "5" {
		t.Fatalf("load before recovery: status %d Retry-After %q, want 503 with Retry-After 5",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if resp := load("g"); resp.StatusCode != http.StatusOK {
		t.Fatalf("load after recovery: status %d", resp.StatusCode)
	}

	s.manifest.inj = &faultinject.Plan{Seed: 1, Rules: map[faultinject.Site]faultinject.Rule{
		faultinject.SiteManifestAppend: {FaultProb: 1},
	}}
	if resp := load("h"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("load with failing journal: status %d, want 503", resp.StatusCode)
	}
	if rs := readyz(); rs.Durability != DurabilityDegraded {
		t.Fatalf("readyz durability = %q, want %q", rs.Durability, DurabilityDegraded)
	}
	// Degraded mode fails fast with the same typed 503.
	if resp := load("h"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("load while degraded: status %d, want 503", resp.StatusCode)
	}

	s.manifest.inj = nil
	s.scrubPass()
	if rs := readyz(); rs.Durability != DurabilityDurable {
		t.Fatalf("readyz durability after probe = %q, want %q", rs.Durability, DurabilityDurable)
	}
	if resp := load("h"); resp.StatusCode != http.StatusOK {
		t.Fatalf("load after durability restored: status %d", resp.StatusCode)
	}
}
