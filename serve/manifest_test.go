package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// reopen closes m and opens a fresh manifest over the same dir, as a
// restart would.
func reopen(t *testing.T, m *Manifest, every int) *Manifest {
	t.Helper()
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	m2, err := OpenManifest(m.dir, every)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return m2
}

func specs(names ...string) []GraphSpec {
	out := make([]GraphSpec, len(names))
	for i, n := range names {
		out[i] = GraphSpec{Name: n, Path: "/g/" + n + ".csr"}
	}
	return out
}

func TestManifestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir, 100)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, s := range specs("a", "b", "c") {
		if err := m.AppendLoad(s); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := m.AppendUnload("b"); err != nil {
		t.Fatalf("unload: %v", err)
	}
	// Reload of an existing name keeps its position but updates the spec.
	if err := m.AppendLoad(GraphSpec{Name: "a", Path: "/g/a2.csr", Mmap: true}); err != nil {
		t.Fatalf("reload: %v", err)
	}

	m2 := reopen(t, m, 100)
	defer m2.Close()
	got := m2.State()
	want := []GraphSpec{{Name: "a", Path: "/g/a2.csr", Mmap: true}, {Name: "c", Path: "/g/c.csr"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("state after reopen = %+v, want %+v", got, want)
	}
	st := m2.Stats()
	if st.Seq != 5 || st.Records != 5 || st.TornBytes != 0 {
		t.Fatalf("stats = %+v, want seq 5, 5 records, no torn bytes", st)
	}
}

func TestManifestTornTailTruncated(t *testing.T) {
	for name, garbage := range map[string][]byte{
		"partial-frame": {0xff, 0x03, 0x00, 0x00, 0x12, 0x34}, // length says 1023, nothing follows
		"random-bytes":  {0x41, 0x42, 0x43},
		"huge-length":   {0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00, 0x01},
		"zero-length":   {0x00, 0x00, 0x00, 0x00, 0x99, 0x99, 0x99, 0x99},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			m, err := OpenManifest(dir, 100)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			for _, s := range specs("a", "b") {
				if err := m.AppendLoad(s); err != nil {
					t.Fatalf("append: %v", err)
				}
			}
			m.Close()
			journal := filepath.Join(dir, journalName)
			clean, err := os.ReadFile(journal)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(journal, append(clean, garbage...), 0o644); err != nil {
				t.Fatal(err)
			}

			m2, err := OpenManifest(dir, 100)
			if err != nil {
				t.Fatalf("open with torn tail: %v", err)
			}
			defer m2.Close()
			if got := m2.State(); !reflect.DeepEqual(got, specs("a", "b")) {
				t.Fatalf("state = %+v, want a,b", got)
			}
			if st := m2.Stats(); st.TornBytes != int64(len(garbage)) {
				t.Fatalf("TornBytes = %d, want %d", st.TornBytes, len(garbage))
			}
			// The torn bytes were physically truncated, so the journal is
			// clean for subsequent appends…
			if data, _ := os.ReadFile(journal); !bytes.Equal(data, clean) {
				t.Fatalf("journal not truncated back to the valid prefix")
			}
			// …and an append after recovery is replayable.
			if err := m2.AppendLoad(GraphSpec{Name: "c", Path: "/g/c.csr"}); err != nil {
				t.Fatalf("append after truncation: %v", err)
			}
			m3 := reopen(t, m2, 100)
			defer m3.Close()
			if got := m3.State(); !reflect.DeepEqual(got, specs("a", "b", "c")) {
				t.Fatalf("state after append+reopen = %+v", got)
			}
		})
	}
}

func TestManifestMidRecordBitFlip(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs("a", "b", "c") {
		if err := m.AppendLoad(s); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	journal := filepath.Join(dir, journalName)
	data, _ := os.ReadFile(journal)
	// Flip one bit inside the SECOND record's payload: the CRC must
	// reject it, keeping record 1 and dropping records 2..3 (a valid
	// prefix, never a hole).
	firstEnd := frameEnd(t, data, 1)
	data[firstEnd+10] ^= 0x40
	if err := os.WriteFile(journal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m2, err := OpenManifest(dir, 100)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer m2.Close()
	if got := m2.State(); !reflect.DeepEqual(got, specs("a")) {
		t.Fatalf("state = %+v, want just a", got)
	}
}

// frameEnd returns the byte offset just past the nth frame (1-based).
func frameEnd(t *testing.T, data []byte, n int) int {
	t.Helper()
	off := len(manifestMagic)
	for i := 0; i < n; i++ {
		if off+8 > len(data) {
			t.Fatalf("journal shorter than %d frames", n)
		}
		l := int(binary.LittleEndian.Uint32(data[off:]))
		off += 8 + l
	}
	return off
}

func TestManifestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs("a", "b", "c", "d", "e", "f") {
		if err := m.AppendLoad(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.CompactionErr(); err != nil {
		t.Fatalf("compaction: %v", err)
	}
	st := m.Stats()
	if st.SnapshotSeq == 0 {
		t.Fatal("no snapshot taken after passing the threshold")
	}
	if st.Records >= 6 {
		t.Fatalf("journal not compacted: %d records", st.Records)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}

	m2 := reopen(t, m, 4)
	defer m2.Close()
	if got := m2.State(); !reflect.DeepEqual(got, specs("a", "b", "c", "d", "e", "f")) {
		t.Fatalf("state after compaction+reopen = %+v", got)
	}
	if got := m2.Stats().Seq; got != st.Seq {
		t.Fatalf("seq after reopen = %d, want %d", got, st.Seq)
	}
}

// TestManifestCompactionCrashWindow simulates a crash between the
// snapshot rename and the journal truncate: the journal still holds
// records the snapshot already covers. Replay must skip them instead of
// double-applying or treating them as corruption.
func TestManifestCompactionCrashWindow(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs("a", "b") {
		if err := m.AppendLoad(s); err != nil {
			t.Fatal(err)
		}
	}
	journal := filepath.Join(dir, journalName)
	preCompact, _ := os.ReadFile(journal)
	if err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendUnload("a"); err != nil {
		t.Fatal(err)
	}
	postCompact, _ := os.ReadFile(journal)
	m.Close()
	// Reconstruct the crash-window file: old pre-compaction records
	// followed by the post-compaction append.
	window := append(append([]byte{}, preCompact...), postCompact[len(manifestMagic):]...)
	if err := os.WriteFile(journal, window, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := OpenManifest(dir, 100)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer m2.Close()
	if got := m2.State(); !reflect.DeepEqual(got, specs("b")) {
		t.Fatalf("state = %+v, want just b (a loaded in snapshot, unloaded after)", got)
	}
	if got := m2.Stats().Seq; got != 3 {
		t.Fatalf("seq = %d, want 3", got)
	}
}

func TestManifestCorruptSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs("a", "b") {
		if err := m.AppendLoad(s); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	// A corrupt snapshot (storage rot) must not stop boot; the journal
	// alone still recovers the full set here because it was never
	// compacted.
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("FBFSSNP1garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	m2, err := OpenManifest(dir, 100)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer m2.Close()
	if got := m2.State(); !reflect.DeepEqual(got, specs("a", "b")) {
		t.Fatalf("state = %+v, want a,b", got)
	}
}

func TestManifestUnloadUnknownTolerated(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AppendUnload("never-loaded"); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendLoad(specs("a")[0]); err != nil {
		t.Fatal(err)
	}
	m2 := reopen(t, m, 100)
	defer m2.Close()
	if got := m2.State(); !reflect.DeepEqual(got, specs("a")) {
		t.Fatalf("state = %+v, want a", got)
	}
}

// FuzzManifestReplay feeds arbitrary journal bytes to OpenManifest:
// whatever the bytes, opening must not panic, must recover SOME valid
// prefix, and must leave the journal in a state where appends work and
// a second open agrees with the first (replay is deterministic and
// self-healing).
func FuzzManifestReplay(f *testing.F) {
	// Seed corpus: empty, magic-only, one valid record, a torn tail,
	// bit-flipped payloads, oversized lengths.
	f.Add([]byte{})
	f.Add([]byte(manifestMagic))
	valid := func() []byte {
		payload, _ := json.Marshal(manifestRecord{Seq: 1, Op: opLoad, GraphSpec: GraphSpec{Name: "g", Path: "/g.csr"}})
		return encodeFrame([]byte(manifestMagic), payload)
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)-2] ^= 0x80
	f.Add(flipped)
	f.Add(append(append([]byte{}, valid...), 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0))
	f.Add([]byte("FBFSMAN1\x00\x00\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), data, 0o644); err != nil {
			t.Skip()
		}
		m, err := OpenManifest(dir, 8)
		if err != nil {
			// Only real I/O errors may surface; none should occur on a
			// plain tempdir.
			t.Fatalf("OpenManifest: %v", err)
		}
		state1 := m.State()
		seq1 := m.Stats().Seq
		// The recovered prefix must be appendable…
		if err := m.AppendLoad(GraphSpec{Name: "after", Path: "/after.csr"}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		m.Close()
		// …and a reopen must see the same prefix plus the append.
		m2, err := OpenManifest(dir, 8)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer m2.Close()
		state2 := m2.State()
		if !m2.Contains("after") {
			t.Fatalf("append lost across reopen")
		}
		// Dropping the appended record, the prefix must match.
		var prefix []GraphSpec
		for _, s := range state2 {
			if s.Name != "after" {
				prefix = append(prefix, s)
			}
		}
		var want []GraphSpec
		for _, s := range state1 {
			if s.Name != "after" {
				want = append(want, s)
			}
		}
		if !reflect.DeepEqual(prefix, want) {
			t.Fatalf("prefix diverged: first open %+v, reopen %+v", want, prefix)
		}
		if m2.Stats().Seq < seq1 {
			t.Fatalf("seq went backwards: %d -> %d", seq1, m2.Stats().Seq)
		}
	})
}
