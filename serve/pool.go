package serve

import (
	"context"
	"sync"

	"fastbfs/bfs"
	"fastbfs/graph"
)

// EnginePool hands out up to size reusable bfs.Engines over one graph.
// Engines are built lazily — a service holding many graphs only pays
// engine memory for the graphs that see per-source traffic — and
// returned engines are reused in LIFO order (warmest buffers first).
// The pool leans on the bfs package's engine-reuse contract: every Run
// fully resets engine state, so a pooled engine is indistinguishable
// from a fresh one.
type EnginePool struct {
	g    *graph.Graph
	opts bfs.Options
	size int

	mu      sync.Mutex
	created int
	free    chan *bfs.Engine // buffered to size; Release never blocks
}

// NewEnginePool builds an empty pool of the given capacity (min 1).
func NewEnginePool(g *graph.Graph, opts bfs.Options, size int) *EnginePool {
	if size < 1 {
		size = 1
	}
	return &EnginePool{g: g, opts: opts, size: size, free: make(chan *bfs.Engine, size)}
}

// Acquire returns a free engine, building one if the pool is below
// capacity, or blocks until a Release or ctx.Done().
func (p *EnginePool) Acquire(ctx context.Context) (*bfs.Engine, error) {
	select {
	case e := <-p.free:
		return e, nil
	default:
	}
	p.mu.Lock()
	if p.created < p.size {
		p.created++
		p.mu.Unlock()
		e, err := bfs.NewEngine(p.g, p.opts)
		if err != nil {
			p.mu.Lock()
			p.created--
			p.mu.Unlock()
			return nil, err
		}
		return e, nil
	}
	p.mu.Unlock()
	select {
	case e := <-p.free:
		return e, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Discard retires an engine obtained from Acquire instead of returning
// it: used to quarantine an engine whose traversal died mid-run (its
// worker state is unknown, so the reuse contract no longer holds). The
// freed capacity is rebuilt lazily — the next Acquire that finds the
// pool below size constructs a fresh engine.
func (p *EnginePool) Discard(e *bfs.Engine) {
	p.mu.Lock()
	p.created--
	p.mu.Unlock()
}

// Release returns an engine obtained from Acquire.
func (p *EnginePool) Release(e *bfs.Engine) {
	select {
	case p.free <- e:
	default:
		panic("serve: EnginePool.Release without matching Acquire")
	}
}

// Size is the pool capacity; Created is how many engines exist so far.
func (p *EnginePool) Size() int { return p.size }

// Created reports how many engines have been built.
func (p *EnginePool) Created() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}
