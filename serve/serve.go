// Package serve is the fastbfs traversal query service: it holds graphs
// resident in memory and answers many concurrent BFS queries over them,
// which is what turns the paper's single-shot engine into something that
// can sit behind heavy traffic.
//
// The layering, top to bottom:
//
//   - Admission control. Every query passes a service-wide bounded
//     queue; when it is full the query is rejected immediately with
//     ErrOverloaded (HTTP 429) instead of queueing unboundedly, and
//     after BeginDrain new queries get ErrDraining (HTTP 503) while
//     admitted ones complete. Each query carries a deadline; an
//     in-flight traversal past its deadline is cancelled through the
//     engine's RunContext.
//   - Result cache + singleflight. Completed traversals are kept in a
//     bounded per-graph LRU keyed by source (engine options are fixed
//     per service, so (graph, source, options) reduces to (graph,
//     source)); concurrent queries for the same source coalesce onto
//     one in-flight traversal.
//   - Batching scheduler. Queued sources drain through a per-graph
//     dispatcher. When a dispatch round holds at least BatchThreshold
//     distinct sources they run as ONE bit-parallel multi-source sweep
//     (internal/msbfs, up to 64 sources per sweep); smaller rounds fall
//     back to per-source runs on pooled engines. Batching is
//     load-adaptive: while one round executes, arrivals accumulate, so
//     aggregate throughput grows with offered load instead of
//     collapsing.
//   - Engine pool. Per graph, up to PoolSize reusable bfs.Engines
//     (lazily built); the pool relies on the bfs package's documented
//     engine-reuse contract and ErrEngineBusy guard.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/internal/msbfs"
)

// Service errors, mapped onto HTTP statuses by the handler in http.go.
var (
	// ErrOverloaded rejects a query because the admission queue is full.
	ErrOverloaded = errors.New("serve: overloaded: admission queue full")
	// ErrDraining rejects a query because the service is shutting down.
	ErrDraining = errors.New("serve: draining")
	// ErrUnknownGraph rejects a query naming a graph that is not loaded.
	ErrUnknownGraph = errors.New("serve: unknown graph")
	// ErrBadRequest rejects a malformed query (e.g. source out of range).
	ErrBadRequest = errors.New("serve: bad request")
)

// Config tunes a Service. The zero value gets sensible defaults.
type Config struct {
	// PoolSize is the number of reusable engines per graph (default 2).
	PoolSize int
	// MaxQueue bounds admitted-but-unresolved traversals service-wide;
	// beyond it queries fail with ErrOverloaded (default 256).
	MaxQueue int
	// MaxBatch caps sources per multi-source sweep (default and max
	// msbfs.MaxLanes = 64).
	MaxBatch int
	// BatchThreshold is the minimum dispatch-round size that uses the
	// bit-parallel sweep instead of per-source engines (default 4).
	BatchThreshold int
	// BatchLinger, when positive, makes the dispatcher wait once per
	// round for more sources to arrive before running an undersized
	// batch. Zero (the default) favors latency: batching then emerges
	// purely from arrivals during the previous round's execution.
	BatchLinger time.Duration
	// CacheEntries is the per-graph LRU capacity in traversals (each
	// entry holds an 8-byte word per vertex). Default 32; negative
	// disables caching.
	CacheEntries int
	// DefaultTimeout bounds queries that arrive without a deadline
	// (default 5s).
	DefaultTimeout time.Duration
	// Workers is the parallelism of batched sweeps (default GOMAXPROCS).
	Workers int
	// Options configures the per-source engines; nil means
	// bfs.Default(1). Options.Hybrid also switches batched sweeps to
	// the direction-optimizing msbfs kernel, reusing the same cached
	// per-graph transpose as the engines.
	Options *bfs.Options
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.MaxBatch <= 0 || c.MaxBatch > msbfs.MaxLanes {
		c.MaxBatch = msbfs.MaxLanes
	}
	if c.BatchThreshold <= 0 {
		c.BatchThreshold = 4
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 32
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Service answers BFS queries over a set of resident graphs.
type Service struct {
	cfg  Config
	opts bfs.Options

	baseCtx    context.Context // cancelled only at hard shutdown
	baseCancel context.CancelFunc

	mu       sync.Mutex
	graphs   map[string]*graphState
	queued   int // flights admitted and not yet resolved
	draining bool
	wg       sync.WaitGroup // live dispatcher goroutines

	stats stats
}

// graphState is one resident graph plus its pool, cache and scheduler
// state. pending/flights/dispatching are guarded by Service.mu.
type graphState struct {
	name  string
	g     *graph.Graph
	pool  *EnginePool
	cache *lruCache

	flights     map[uint32]*flight // in-flight + queued, by source
	pending     []*flight          // queued, dispatch order
	dispatching bool
	lingered    bool
}

// flight is one traversal that one or more queries wait on.
type flight struct {
	source   uint32
	deadline time.Time // max over attached waiters; zero = none
	done     chan struct{}
	tr       *Traversal
	err      error
}

// New builds an empty service; add graphs with AddGraph.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	opts := bfs.Default(1)
	if cfg.Options != nil {
		opts = *cfg.Options
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Service{
		cfg:        cfg,
		opts:       opts,
		baseCtx:    ctx,
		baseCancel: cancel,
		graphs:     make(map[string]*graphState),
	}
}

// AddGraph makes g queryable under name. The graph must not be mutated
// afterwards; it is shared by every engine and sweep.
func (s *Service) AddGraph(name string, g *graph.Graph) error {
	if name == "" {
		return fmt.Errorf("%w: empty graph name", ErrBadRequest)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("serve: graph %q: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if _, dup := s.graphs[name]; dup {
		return fmt.Errorf("serve: graph %q already loaded", name)
	}
	s.graphs[name] = &graphState{
		name:    name,
		g:       g,
		pool:    NewEnginePool(g, s.opts, s.cfg.PoolSize),
		cache:   newLRUCache(s.cfg.CacheEntries),
		flights: make(map[uint32]*flight),
	}
	return nil
}

// GraphInfo describes one resident graph.
type GraphInfo struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
}

// Graphs lists the resident graphs.
func (s *Service) Graphs() []GraphInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for _, gs := range s.graphs {
		out = append(out, GraphInfo{Name: gs.name, Vertices: gs.g.NumVertices(), Edges: gs.g.NumEdges()})
	}
	return out
}

// Draining reports whether BeginDrain has been called.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth reports admitted-but-unresolved traversals (for tests and
// /stats).
func (s *Service) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// BeginDrain stops admitting queries; already-admitted flights complete.
func (s *Service) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Shutdown drains gracefully: no new queries, wait for in-flight
// traversals. If ctx expires first, outstanding traversals are hard-
// cancelled (their waiters get context errors) and Shutdown returns
// ctx.Err() once they unwind.
func (s *Service) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Query answers one request, blocking until the result, the caller's
// ctx deadline, or a rejection. Safe for arbitrary concurrency.
func (s *Service) Query(ctx context.Context, req Request) (*Response, error) {
	s.stats.requests.Add(1)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.stats.rejected.Add(1)
		return nil, ErrDraining
	}
	gs := s.graphs[req.Graph]
	s.mu.Unlock()
	if gs == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, req.Graph)
	}
	if err := req.validate(gs.g); err != nil {
		return nil, err
	}

	if tr, ok := gs.cache.get(req.Source); ok {
		s.stats.cacheHits.Add(1)
		return buildResponse(gs, req, tr, true)
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.stats.rejected.Add(1)
		return nil, ErrDraining
	}
	f := gs.flights[req.Source]
	if f == nil {
		if s.queued >= s.cfg.MaxQueue {
			s.mu.Unlock()
			s.stats.rejected.Add(1)
			return nil, ErrOverloaded
		}
		f = &flight{source: req.Source, done: make(chan struct{})}
		f.deadline, _ = ctx.Deadline()
		gs.flights[req.Source] = f
		gs.pending = append(gs.pending, f)
		s.queued++
		if !gs.dispatching {
			gs.dispatching = true
			s.wg.Add(1)
			go s.dispatch(gs)
		}
	} else {
		s.stats.coalesced.Add(1)
		// Extend the flight's deadline to cover this waiter too; the
		// dispatcher reads it under s.mu when the flight starts, so the
		// extension holds for flights still queued.
		if dl, ok := ctx.Deadline(); !f.deadline.IsZero() && (!ok || dl.After(f.deadline)) {
			if ok {
				f.deadline = dl
			} else {
				f.deadline = time.Time{}
			}
		}
	}
	s.mu.Unlock()

	select {
	case <-f.done:
		if f.err != nil {
			return nil, f.err
		}
		return buildResponse(gs, req, f.tr, false)
	case <-ctx.Done():
		// The flight keeps running for any other waiters; this caller
		// gives up. Flights with no surviving waiters die through their
		// own (maxed) deadline.
		s.stats.expired.Add(1)
		return nil, ctx.Err()
	}
}

// dispatch drains gs.pending in rounds until it is empty, then exits.
// Exactly one dispatcher runs per graph at a time.
func (s *Service) dispatch(gs *graphState) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		if len(gs.pending) == 0 {
			gs.dispatching = false
			s.mu.Unlock()
			return
		}
		// Optionally linger once per round to let a batch accumulate.
		if lin := s.cfg.BatchLinger; lin > 0 && !gs.lingered && len(gs.pending) < s.cfg.MaxBatch {
			gs.lingered = true
			s.mu.Unlock()
			select {
			case <-time.After(lin):
			case <-s.baseCtx.Done():
			}
			continue
		}
		gs.lingered = false
		k := min(len(gs.pending), s.cfg.MaxBatch)
		round := append([]*flight(nil), gs.pending[:k]...)
		gs.pending = append(gs.pending[:0:0], gs.pending[k:]...)
		// Snapshot each flight's deadline while holding the lock (late
		// coalescing waiters may still extend queued flights), and merge
		// them for the batched path: the sweep runs until the last
		// waiter's deadline; earlier waiters stop waiting on their own.
		deadlines := make([]time.Time, len(round))
		deadline, infinite := time.Time{}, false
		for i, f := range round {
			deadlines[i] = f.deadline
			if f.deadline.IsZero() {
				infinite = true
			} else if f.deadline.After(deadline) {
				deadline = f.deadline
			}
		}
		s.mu.Unlock()

		rctx := s.baseCtx
		var cancel context.CancelFunc
		if !infinite && !deadline.IsZero() {
			rctx, cancel = context.WithDeadline(rctx, deadline)
		}
		if len(round) >= s.cfg.BatchThreshold && len(round) > 1 {
			s.runBatched(gs, rctx, round)
		} else {
			s.runSingles(gs, round, deadlines)
		}
		if cancel != nil {
			cancel()
		}
	}
}

// runBatched serves one round as a single bit-parallel sweep. When the
// service's engine options request hybrid traversal, the sweep is
// direction-optimizing too: it shares the per-graph cached transpose
// with the pooled engines (bfs.InAdjacency), so daemon-side batched
// queries get the same bottom-up win as single-source ones.
func (s *Service) runBatched(gs *graphState, ctx context.Context, round []*flight) {
	sources := make([]uint32, len(round))
	for i, f := range round {
		sources[i] = f.source
	}
	var res *msbfs.Result
	var err error
	if s.opts.Hybrid {
		var in *graph.Graph
		if !s.opts.Symmetric {
			in = bfs.InAdjacency(gs.g)
		}
		res, err = msbfs.RunHybridContext(ctx, gs.g, in, sources, s.cfg.Workers)
	} else {
		res, err = msbfs.RunContext(ctx, gs.g, sources, s.cfg.Workers)
	}
	if err != nil {
		for _, f := range round {
			s.resolve(gs, f, nil, err)
		}
		return
	}
	s.stats.sweeps.Add(1)
	s.stats.batchedQueries.Add(int64(len(round)))
	perLane := res.Elapsed / time.Duration(len(round))
	for k, f := range round {
		s.resolve(gs, f, newLaneTraversal(res, k, perLane), nil)
	}
}

// runSingles serves a small round on pooled engines, one goroutine per
// flight; the pool bounds actual parallelism. deadlines[i] is flight
// i's deadline as snapshotted under the service lock at dispatch.
func (s *Service) runSingles(gs *graphState, round []*flight, deadlines []time.Time) {
	var wg sync.WaitGroup
	for i, f := range round {
		wg.Add(1)
		go func(f *flight, deadline time.Time) {
			defer wg.Done()
			fctx := s.baseCtx
			if !deadline.IsZero() {
				var cancel context.CancelFunc
				fctx, cancel = context.WithDeadline(s.baseCtx, deadline)
				defer cancel()
			}
			e, err := gs.pool.Acquire(fctx)
			if err != nil {
				s.resolve(gs, f, nil, err)
				return
			}
			r, err := e.RunContext(fctx, f.source)
			var tr *Traversal
			if err == nil {
				tr = newEngineTraversal(r)
			}
			gs.pool.Release(e)
			s.stats.engineRuns.Add(1)
			s.resolve(gs, f, tr, err)
		}(f, deadlines[i])
	}
	wg.Wait()
}

// resolve publishes a flight's outcome and retires it from the
// singleflight table and the admission queue.
func (s *Service) resolve(gs *graphState, f *flight, tr *Traversal, err error) {
	if err == nil && tr != nil {
		gs.cache.put(f.source, tr)
	}
	s.mu.Lock()
	delete(gs.flights, f.source)
	s.queued--
	s.mu.Unlock()
	f.tr, f.err = tr, err
	close(f.done)
}
